// Training demonstrates the full Section VI pipeline end to end on a small
// synthetic city: simulate a historical day under the behavior policy to
// generate MDP experience, train the value network with the blended
// TD + target loss, then run the learned WATTER-expect policy online and
// compare it against the untrained variants.
package main

import (
	"fmt"
	"os"

	"watter/internal/dataset"
	"watter/internal/exp"
)

func main() {
	p := exp.DefaultParams(dataset.XIA())
	p.Orders = 1200
	p.Workers = 110
	p.Train.HistoricalOrders = 1000
	p.Train.TrainSteps = 1500

	runner := exp.NewRunner()
	runner.Out = os.Stderr

	fmt.Println("offline stage: behavior simulation -> GMM fit -> value-network training")
	trained := runner.Train(p)
	fmt.Printf("  replay memory:   %d transitions\n", trained.Trainer.ReplayLen())
	fmt.Printf("  value network:   %d parameters\n", trained.Trainer.Network().NumParams())
	fmt.Println("  extra-time GMM:")
	for _, c := range trained.GMM.Components {
		fmt.Printf("    weight %.3f mean %6.1f s stddev %6.1f s\n", c.Weight, c.Mean, c.StdDev)
	}

	fmt.Println("\nonline stage: learned thresholds vs the fixed strategies")
	for _, alg := range []string{"WATTER-online", "WATTER-timeout", "WATTER-expect"} {
		res, err := runner.RunOne(alg, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		mt := res.Metrics
		fmt.Printf("  %-16s extra=%8.0fs unified=%9.0f rate=%5.1f%% avg-group=%.2f\n",
			alg, mt.ExtraTime(), mt.UnifiedCost(), 100*mt.ServiceRate(), mt.AvgGroupSize())
	}
	fmt.Println("\nThe learned policy should match or beat both fixed strategies on")
	fmt.Println("extra time by holding orders only where the spatio-temporal state")
	fmt.Println("predicts a better group is coming.")
}
