// Citysim runs a full synthetic-city evening peak through all five
// algorithms (GDP, GAS, and the three WATTER variants) and prints a
// side-by-side comparison — a miniature of the paper's Figure 3 columns.
//
//	go run ./examples/citysim            # CDC, harness defaults
//	go run ./examples/citysim -city nyc -n 3000 -m 220
package main

import (
	"flag"
	"fmt"
	"os"

	"watter/internal/dataset"
	"watter/internal/exp"
)

func main() {
	var (
		city = flag.String("city", "cdc", "city: nyc, cdc, xia")
		n    = flag.Int("n", 0, "orders (0 = default)")
		m    = flag.Int("m", 0, "workers (0 = default)")
	)
	flag.Parse()

	profile, err := dataset.ByName(*city)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p := exp.DefaultParams(profile)
	if *n > 0 {
		p.Orders = *n
	}
	if *m > 0 {
		p.Workers = *m
	}

	runner := exp.NewRunner()
	runner.Out = os.Stderr
	fmt.Printf("%s evening peak: n=%d orders, m=%d workers, tau=%.1f, eta=%.1f\n\n",
		profile.Name, p.Orders, p.Workers, p.TauScale, p.Eta)
	fmt.Printf("%-16s %14s %14s %13s %16s %10s\n",
		"algorithm", "extra time(s)", "unified cost", "service rate", "runtime(s/order)", "avg group")
	for _, alg := range exp.AlgNames {
		res, err := runner.RunOne(alg, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		mt := res.Metrics
		fmt.Printf("%-16s %14.0f %14.0f %12.1f%% %16.6f %10.2f\n",
			alg, mt.ExtraTime(), mt.UnifiedCost(), 100*mt.ServiceRate(),
			mt.RunningTime(), mt.AvgGroupSize())
	}
	fmt.Println("\nAt default scale WATTER-expect shows the best unified cost and the")
	fmt.Println("top service rate, and leads the WATTER family on extra time; below")
	fmt.Println("default load the greedy GDP baseline can stay ahead (see")
	fmt.Println("EXPERIMENTS.md for the regime analysis).")
}
