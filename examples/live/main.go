// Live demonstrates the event-driven platform API: orders stream into a
// Platform one at a time while a consumer goroutine watches the typed
// event bus — admissions, dispatches, rejections and per-tick metric
// snapshots — exactly the surface a dashboard or admission controller
// would build on. Batch replay (watter.Run) reproduces the paper's
// evaluation; this is the live-traffic mode the platform grew for.
//
//	go run ./examples/live
//	go run ./examples/live -city nyc -n 800 -timeout
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"watter"
	"watter/internal/dataset"
)

func main() {
	var (
		city    = flag.String("city", "cdc", "city: nyc, cdc, xia")
		n       = flag.Int("n", 500, "orders to stream")
		m       = flag.Int("m", 60, "workers")
		timeout = flag.Bool("timeout", false, "use WATTER-timeout instead of WATTER-online")
	)
	flag.Parse()

	profile, err := dataset.ByName(*city)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	built := profile.Build()
	orders := built.Orders(watter.WorkloadConfig{Orders: *n, Seed: 1})
	workers := built.Workers(*m, 4, 2)

	alg := watter.NewOnline()
	if *timeout {
		alg = watter.NewTimeout()
	}
	p, err := watter.New(built.Net, workers,
		watter.WithTick(10),
		watter.WithAlgorithm(alg),
		watter.WithMeasuredTime(false),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Subscribe before the first Submit (and on the feeding goroutine —
	// Events is not safe to call concurrently with Submit/Close), then
	// hand the channel to the consumer: a minimal live dashboard.
	// Dispatch sizes accumulate into a histogram; every 30th tick prints
	// a status line.
	events := p.Events()
	done := make(chan struct{})
	sizes := map[int]int{}
	var rejected int
	go func() {
		defer close(done)
		ticks := 0
		for ev := range events {
			switch e := ev.(type) {
			case watter.GroupDispatched:
				sizes[e.Size()]++
			case watter.OrderRejected:
				rejected++
			case watter.TickCompleted:
				ticks++
				if ticks%30 == 0 {
					m := e.Metrics
					fmt.Printf("[t=%5.0fs] served=%4d rejected=%4d extra=%7.0fs rate=%5.1f%%\n",
						e.Time, m.Served, m.Rejected, m.ExtraTime(), 100*m.ServiceRate())
				}
			}
		}
	}()

	// The feeder: orders arrive in release order, as a live ingest would
	// deliver them. Submit validates and errors instead of coercing.
	sort.SliceStable(orders, func(i, j int) bool { return orders[i].Release < orders[j].Release })
	for _, o := range orders {
		if err := p.Submit(o); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	metrics, err := p.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done

	fmt.Printf("\n%s %s over %d streamed orders, %d workers:\n", profile.Name, alg.Name(), *n, *m)
	fmt.Printf("  %s\n", metrics)
	fmt.Printf("  dispatch sizes: ")
	var keys []int
	for k := range sizes {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Printf("%dx%d ", k, sizes[k])
	}
	fmt.Printf("(events saw %d rejections; metrics say %d)\n", rejected, metrics.Rejected)
}
