// Threshold walks through Section V of the paper on synthetic data: fit a
// Gaussian Mixture Model to historical extra times with EM, inspect the
// CDF, and maximize the reduced METRS objective (p - θ)·F(θ) per order to
// obtain the expected threshold θ* — comparing golden-section search with
// the paper's gradient descent.
package main

import (
	"fmt"
	"math/rand"

	"watter/internal/gmm"
)

func main() {
	// Synthetic "historical extra times": a fast cluster (well-grouped hot
	// area orders) and a slow cluster (awkward suburban orders).
	rng := rand.New(rand.NewSource(7))
	var hist []float64
	for i := 0; i < 5000; i++ {
		if rng.Float64() < 0.65 {
			hist = append(hist, abs(90+rng.NormFloat64()*25))
		} else {
			hist = append(hist, abs(320+rng.NormFloat64()*70))
		}
	}

	model, err := gmm.Fit(hist, gmm.DefaultFitOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println("fitted GMM over 5000 historical extra times:")
	for _, c := range model.Components {
		fmt.Printf("  weight %.3f  mean %6.1f s  stddev %6.1f s\n", c.Weight, c.Mean, c.StdDev)
	}

	fmt.Println("\nCDF F(θ) — probability a dispatch with threshold θ fires:")
	for _, th := range []float64{50, 100, 150, 200, 300, 400} {
		fmt.Printf("  F(%3.0f) = %.3f\n", th, model.CDF(th))
	}

	fmt.Println("\noptimal threshold θ* = argmax (p-θ)F(θ) per order penalty p:")
	fmt.Printf("  %8s %10s %10s %12s\n", "p (s)", "θ* golden", "θ* grad", "gain (p-θ)F")
	for _, p := range []float64{150, 250, 400, 600, 900} {
		golden := gmm.OptimalThreshold(model, p)
		grad := gmm.GradientThreshold(model, p, 2000, 0)
		fmt.Printf("  %8.0f %10.1f %10.1f %12.1f\n", p, golden, grad, gmm.Gain(model, p, golden))
	}

	fmt.Println("\nReading: impatient orders (small p) get θ* near their whole budget —")
	fmt.Println("dispatch almost immediately; patient orders (large p) get θ* just past")
	fmt.Println("the fast cluster — hold out for a good group, but no longer.")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
