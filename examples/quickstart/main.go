// Quickstart reproduces the paper's running example (Figure 1 / Table I /
// Example 1): four orders on a six-node road network with two workers, and
// shows how the four dispatch philosophies differ on it — exactly the story
// the paper's introduction tells.
package main

import (
	"fmt"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/roadnet"
	"watter/internal/route"
)

func main() {
	net := roadnet.NewExampleNetwork()
	name := func(n geo.NodeID) string { return roadnet.ExampleNodes[n] }
	node := func(s string) geo.NodeID {
		for i, nm := range roadnet.ExampleNodes {
			if nm == s {
				return geo.NodeID(i)
			}
		}
		panic("unknown node " + s)
	}

	// Table I, with generous deadlines so every grouping is legal (travel
	// times are in seconds; one edge = 60 s).
	mk := func(id int, rel float64, pu, do string) *order.Order {
		p, d := node(pu), node(do)
		direct := net.Cost(p, d)
		return &order.Order{
			ID: id, Pickup: p, Dropoff: d, Riders: 1,
			Release: rel, Deadline: rel + 4*direct, WaitLimit: 2 * direct,
			DirectCost: direct,
		}
	}
	o1 := mk(1, 5, "a", "c")
	o2 := mk(2, 8, "d", "f")
	o3 := mk(3, 10, "d", "c")
	o4 := mk(4, 12, "e", "f")

	planner := route.NewPlanner(net)
	show := func(label string, groups [][]*order.Order) {
		var total float64
		fmt.Printf("%-28s", label)
		for _, g := range groups {
			plan, ok := planner.PlanGroup(g, 20, 4)
			if !ok {
				fmt.Printf(" [infeasible]")
				continue
			}
			total += plan.Cost
			fmt.Printf(" ⟨")
			prev := ""
			for _, s := range plan.Stops {
				if nm := name(s.Node); nm != prev {
					if prev != "" {
						fmt.Printf(",")
					}
					fmt.Printf("%s", nm)
					prev = nm
				}
			}
			fmt.Printf("⟩=%.0fmin", plan.Cost/60)
		}
		fmt.Printf("  → total %.0f min\n", total/60)
	}

	fmt.Println("Paper Example 1 — road network of Figure 1, orders of Table I")
	fmt.Println("(route costs exclude the worker's approach, as in the paper)")
	fmt.Println()
	// (1) Non-sharing: every order is a solo trip.
	show("non-sharing:", [][]*order.Order{{o1}, {o2}, {o3}, {o4}})
	// (3) Batch-based (10 s batches): o1+o3 grouped, o2 and o4 solo.
	show("batch (o1,o3 | o2 | o4):", [][]*order.Order{{o1, o3}, {o2}, {o4}})
	// (4) Pooling: wait a little longer and the ideal pairs emerge.
	show("WATTER (o1,o3 | o2,o4):", [][]*order.Order{{o1, o3}, {o2, o4}})

	fmt.Println()
	fmt.Println("Waiting two more seconds for o4 turns 4 solo routes (8 min of")
	fmt.Println("passenger travel) into 2 shared routes (5 min) — the")
	fmt.Println("\"wait to be faster\" effect of the paper's Example 1.")
}
