#!/bin/sh
# timed.sh NAME CMD [ARG...] — run CMD, appending "NAME  <seconds>s" to
# /tmp/ci_step_times.txt. The ci workflow wraps its heavy steps with this
# and prints the collected table in a final always() step, so a slow run
# shows at a glance which step ate the wall clock without spelunking logs.
name="$1"
shift
start=$(date +%s)
"$@"
rc=$?
end=$(date +%s)
printf '%-44s %5ss\n' "$name" "$((end - start))" >>/tmp/ci_step_times.txt
exit $rc
