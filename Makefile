# Mirrors .github/workflows/ci.yml: `make ci` runs exactly what CI runs.

GO ?= go

.PHONY: build examples test race bench lint detlint staticcheck govulncheck fmt ci fixtures benchsweep benchroute benchstream benchpool benchshard benchproxy benchload benchgate clean

build:
	$(GO) build ./...

# Compile every example program (CI runs this so examples never rot).
examples:
	$(GO) build -o /dev/null ./examples/...

test:
	$(GO) test ./...

# Shuffled so test-order coupling fails here before it fails in CI.
race:
	$(GO) test -race -shuffle=on ./...

# Smoke-run every benchmark once (no timing stability, just "they run").
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

lint:
	@fmtout="$$(gofmt -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/detlint ./...

# Determinism-contract analyzers alone: the syntactic four (maprange/
# walltime/globalrand/floatrange — DESIGN.md §11) plus the
# interprocedural three (specpure/hotalloc/goroutinewrite — §12);
# lint runs them too.
detlint:
	$(GO) run ./cmd/detlint ./...

# CI runs govulncheck with network access; locally it runs when on PATH.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it)"; \
	fi

# CI installs staticcheck itself; locally it runs when on PATH.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

fmt:
	gofmt -w .

ci: lint staticcheck govulncheck build examples test race bench

# Regenerate the checked-in DIMACS fixture from its generator (the
# importer test fails if the two ever drift).
fixtures:
	$(GO) run ./cmd/dimacsgen -w 6 -h 5 -cell 150 -speed 8 -jitter 0.4 -seed 42 \
		-out internal/roadnet/testdata/grid6x5

# Regenerate the sequential-vs-parallel engine baseline.
benchsweep:
	$(GO) run ./cmd/watterbench -benchsweep BENCH_sweep.json

# Regenerate the routing engine vs cold-Dijkstra baseline.
benchroute:
	$(GO) run ./cmd/watterbench -benchroute BENCH_routing.json

# Regenerate the event-bus vs batch-replay overhead baseline.
benchstream:
	$(GO) run ./cmd/watterbench -benchstream BENCH_stream.json

# Regenerate the pool-maintenance plan-cache baseline.
benchpool:
	$(GO) run ./cmd/watterbench -benchpool BENCH_pool.json

# Regenerate the slot-sharded dispatch engine baseline.
benchshard:
	$(GO) run ./cmd/watterbench -benchshard BENCH_shard.json

# Regenerate the multi-city proxy baseline (isolation + HA bit-identity).
benchproxy:
	$(GO) run ./cmd/watterproxy -quiet -json BENCH_proxy.json

# Regenerate the open-loop load-harness baseline (arrival rows + max
# sustainable rate; everything virtual-clock deterministic).
benchload:
	$(GO) run ./cmd/watterload -quiet -json BENCH_load.json

# Gate freshly produced /tmp reports against the committed baselines —
# exactly the final CI step (run the bench steps first to produce them).
benchgate:
	$(GO) run ./cmd/benchgate \
		BENCH_sweep.json=/tmp/bench_sweep_ci.json \
		BENCH_routing.json=/tmp/bench_route_ci.json \
		BENCH_stream.json=/tmp/bench_stream_ci.json \
		BENCH_pool.json=/tmp/bench_pool_ci.json \
		BENCH_shard.json=/tmp/bench_shard_ci.json \
		BENCH_proxy.json=/tmp/bench_proxy_ci.json \
		BENCH_load.json=/tmp/bench_load_ci.json

clean:
	$(GO) clean
	rm -f watterbench wattersim wattertrain benchgate
