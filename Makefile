# Mirrors .github/workflows/ci.yml: `make ci` runs exactly what CI runs.

GO ?= go

.PHONY: build examples test race bench lint fmt ci benchsweep benchroute benchstream benchpool clean

build:
	$(GO) build ./...

# Compile every example program (CI runs this so examples never rot).
examples:
	$(GO) build -o /dev/null ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke-run every benchmark once (no timing stability, just "they run").
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

lint:
	@fmtout="$$(gofmt -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .

ci: lint build examples test race bench

# Regenerate the sequential-vs-parallel engine baseline.
benchsweep:
	$(GO) run ./cmd/watterbench -benchsweep BENCH_sweep.json

# Regenerate the routing engine vs cold-Dijkstra baseline.
benchroute:
	$(GO) run ./cmd/watterbench -benchroute BENCH_routing.json

# Regenerate the event-bus vs batch-replay overhead baseline.
benchstream:
	$(GO) run ./cmd/watterbench -benchstream BENCH_stream.json

# Regenerate the pool-maintenance plan-cache baseline.
benchpool:
	$(GO) run ./cmd/watterbench -benchpool BENCH_pool.json

clean:
	$(GO) clean
	rm -f watterbench wattersim wattertrain
