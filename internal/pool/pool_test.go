package pool

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"watter/internal/geo"
	"watter/internal/gridindex"
	"watter/internal/order"
	"watter/internal/roadnet"
	"watter/internal/route"
)

func testPool(radius int) (*Pool, *roadnet.GridCity, *route.Planner) {
	net := roadnet.NewGridCity(20, 20, 100, 10)
	planner := route.NewPlanner(net)
	ix := gridindex.New(net, 10)
	opt := DefaultOptions()
	opt.CandidateRadius = radius
	return New(planner, ix, opt), net, planner
}

func mk(net roadnet.Network, id int, pickup, dropoff geo.NodeID, release, tau float64) *order.Order {
	direct := net.Cost(pickup, dropoff)
	return &order.Order{
		ID: id, Pickup: pickup, Dropoff: dropoff, Riders: 1,
		Release: release, Deadline: release + tau*direct,
		WaitLimit: 0.8 * direct, DirectCost: direct,
	}
}

func TestInsertCreatesEdges(t *testing.T) {
	p, net, _ := testPool(-1)
	a := mk(net, 1, net.Node(0, 0), net.Node(8, 0), 0, 2.0)
	b := mk(net, 2, net.Node(1, 0), net.Node(9, 0), 0, 2.0)
	far := mk(net, 3, net.Node(0, 19), net.Node(19, 19), 0, 1.05)

	if added := p.Insert(a, 0); added != 0 {
		t.Fatalf("first insert added %d edges", added)
	}
	if added := p.Insert(b, 0); added != 1 {
		t.Fatalf("corridor pair added %d edges, want 1", added)
	}
	if added := p.Insert(far, 0); added != 0 {
		t.Fatalf("far tight order added %d edges, want 0", added)
	}
	if p.Len() != 3 {
		t.Fatalf("len = %d", p.Len())
	}
	if p.Degree(1) != 1 || p.Degree(2) != 1 || p.Degree(3) != 0 {
		t.Fatalf("degrees = %d,%d,%d", p.Degree(1), p.Degree(2), p.Degree(3))
	}
	if _, ok := p.EdgeExpiry(1, 2); !ok {
		t.Fatal("edge 1-2 missing")
	}
}

func TestInsertDuplicateIgnored(t *testing.T) {
	p, net, _ := testPool(-1)
	a := mk(net, 1, net.Node(0, 0), net.Node(5, 0), 0, 2.0)
	p.Insert(a, 0)
	if added := p.Insert(a, 0); added != 0 || p.Len() != 1 {
		t.Fatalf("duplicate insert: added=%d len=%d", added, p.Len())
	}
}

func TestBestGroupPrefersSharing(t *testing.T) {
	p, net, _ := testPool(-1)
	a := mk(net, 1, net.Node(0, 0), net.Node(8, 0), 0, 2.0)
	b := mk(net, 2, net.Node(1, 0), net.Node(9, 0), 0, 2.0)
	p.Insert(a, 0)
	if _, _, ok := p.BestGroup(1); ok {
		t.Fatal("a lone order must have no shared best group")
	}
	p.Insert(b, 0)
	g, exp, ok := p.BestGroup(1)
	if !ok {
		t.Fatal("best group missing after pair insert")
	}
	if g.Size() != 2 {
		t.Fatalf("best group size %d, want the shared pair", g.Size())
	}
	if exp < 0 {
		t.Fatalf("expiry %v in the past", exp)
	}
	// The pair group still exists as an edge for later rounds.
	if p.Degree(1) != 1 {
		t.Fatal("edge lost")
	}
}

func TestBestGroupSharedWhenDetourFree(t *testing.T) {
	p, net, _ := testPool(-1)
	// Identical itineraries: sharing is free (zero detour for both), so
	// the 2-group ties the singletons at 0 average extra; pool must keep
	// the singleton due to strict improvement, but the edge must exist and
	// the pair plan must cost the same as one trip.
	a := mk(net, 1, net.Node(0, 0), net.Node(8, 0), 0, 2.0)
	b := mk(net, 2, net.Node(0, 0), net.Node(8, 0), 0, 2.0)
	p.Insert(a, 0)
	p.Insert(b, 0)
	if p.Degree(1) != 1 {
		t.Fatal("identical orders must be shareable")
	}
	plan, ok := route.NewPlanner(net).PlanGroup([]*order.Order{a, b}, 0, 4)
	if !ok || math.Abs(plan.Cost-a.DirectCost) > 1e-9 {
		t.Fatalf("pair plan cost %v, want %v", plan.Cost, a.DirectCost)
	}
}

func TestRemoveCleansEdgesAndBestGroups(t *testing.T) {
	p, net, _ := testPool(-1)
	a := mk(net, 1, net.Node(0, 0), net.Node(8, 0), 10, 2.0)
	b := mk(net, 2, net.Node(1, 0), net.Node(9, 0), 0, 2.0)
	p.Insert(b, 0)
	p.Insert(a, 10)
	// At now=10, b has waited 10s; grouping with a may now beat b's
	// singleton (response time is sunk either way). Whatever the best is,
	// removing a must leave b consistent.
	p.Remove(1, 20)
	if p.Contains(1) {
		t.Fatal("removed order still present")
	}
	if p.Degree(2) != 0 {
		t.Fatal("stale edge to removed order")
	}
	if g, _, ok := p.BestGroup(2); ok {
		t.Fatalf("no shared partner left, but best group = %+v", g)
	}
}

func TestRemoveGroup(t *testing.T) {
	p, net, _ := testPool(-1)
	a := mk(net, 1, net.Node(0, 0), net.Node(8, 0), 0, 2.0)
	b := mk(net, 2, net.Node(1, 0), net.Node(9, 0), 0, 2.0)
	c := mk(net, 3, net.Node(2, 0), net.Node(9, 1), 0, 2.0)
	p.Insert(a, 0)
	p.Insert(b, 0)
	p.Insert(c, 0)
	g := &order.Group{Orders: []*order.Order{a, b}}
	p.RemoveGroup(g, 0)
	if p.Len() != 1 || !p.Contains(3) {
		t.Fatalf("len=%d after group removal", p.Len())
	}
}

func TestEdgeExpiryEq3(t *testing.T) {
	p, net, planner := testPool(-1)
	a := mk(net, 1, net.Node(0, 0), net.Node(8, 0), 0, 2.0)
	b := mk(net, 2, net.Node(1, 0), net.Node(9, 0), 0, 2.0)
	p.Insert(a, 0)
	p.Insert(b, 0)
	exp, ok := p.EdgeExpiry(1, 2)
	if !ok {
		t.Fatal("edge missing")
	}
	plan, _ := planner.PlanGroup([]*order.Order{a, b}, 0, 4)
	want := math.Inf(1)
	for _, o := range []*order.Order{a, b} {
		st, _ := plan.ServiceTime(o.ID)
		if e := o.Deadline - st; e < want {
			want = e
		}
	}
	if math.Abs(exp-want) > 1e-9 {
		t.Fatalf("edge expiry %v, want %v (Eq. 3)", exp, want)
	}
}

func TestExpireEdgesDropsStalePairs(t *testing.T) {
	p, net, _ := testPool(-1)
	a := mk(net, 1, net.Node(0, 0), net.Node(8, 0), 0, 1.5)
	b := mk(net, 2, net.Node(1, 0), net.Node(9, 0), 0, 1.5)
	p.Insert(a, 0)
	p.Insert(b, 0)
	exp, ok := p.EdgeExpiry(1, 2)
	if !ok {
		t.Fatal("edge missing")
	}
	expired := p.ExpireEdges(exp + 1)
	if _, still := p.EdgeExpiry(1, 2); still {
		t.Fatal("expired edge survived")
	}
	// Orders themselves may also be past their own deadlines by then.
	for _, id := range expired {
		if !p.Order(id).Expired(exp + 1) {
			t.Fatalf("order %d reported expired but is not", id)
		}
	}
}

func TestExpireReportsUnservableOrders(t *testing.T) {
	p, net, _ := testPool(-1)
	a := mk(net, 1, net.Node(0, 0), net.Node(8, 0), 0, 1.2) // slack 16s
	p.Insert(a, 0)
	if got := p.ExpireEdges(10); len(got) != 0 {
		t.Fatalf("order expired too early: %v", got)
	}
	got := p.ExpireEdges(17)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("expired = %v, want [1]", got)
	}
}

func TestCliqueEnumerationFindsTriple(t *testing.T) {
	p, net, _ := testPool(-1)
	// Three nearly identical itineraries released earlier; by now their
	// response times are sunk, so the 3-group (tiny detours) has the best
	// average extra time at a later decision point. We verify a 3-clique
	// group is discoverable as *some* order's best.
	now := 0.0
	a := mk(net, 1, net.Node(0, 0), net.Node(10, 0), now, 2.0)
	b := mk(net, 2, net.Node(0, 0), net.Node(10, 0), now, 2.0)
	c := mk(net, 3, net.Node(0, 0), net.Node(10, 0), now, 2.0)
	p.Insert(a, now)
	p.Insert(b, now)
	p.Insert(c, now)
	if p.Degree(1) != 2 || p.Degree(2) != 2 || p.Degree(3) != 2 {
		t.Fatalf("triangle degrees = %d,%d,%d", p.Degree(1), p.Degree(2), p.Degree(3))
	}
	// Identical itineraries: the 3-group plan must cost one direct trip.
	planner := route.NewPlanner(net)
	plan, ok := planner.PlanGroup([]*order.Order{a, b, c}, now, 4)
	if !ok || math.Abs(plan.Cost-a.DirectCost) > 1e-9 {
		t.Fatalf("triple plan cost = %v", plan.Cost)
	}
}

func TestCapacityBoundsCliqueSize(t *testing.T) {
	net := roadnet.NewGridCity(20, 20, 100, 10)
	planner := route.NewPlanner(net)
	ix := gridindex.New(net, 10)
	opt := DefaultOptions()
	opt.Capacity = 2
	opt.CandidateRadius = -1
	p := New(planner, ix, opt)
	for i := 1; i <= 4; i++ {
		p.Insert(mk(net, i, net.Node(0, 0), net.Node(10, 0), 0, 3.0), 0)
	}
	for _, id := range p.OrderIDs() {
		g, _, ok := p.BestGroup(id)
		if !ok {
			t.Fatalf("order %d has no best group", id)
		}
		if g.Riders() > 2 {
			t.Fatalf("best group exceeds capacity: %d riders", g.Riders())
		}
	}
}

func TestSpatialPrefilterStillFindsNearbyPairs(t *testing.T) {
	p, net, _ := testPool(2)
	a := mk(net, 1, net.Node(5, 5), net.Node(12, 5), 0, 2.0)
	b := mk(net, 2, net.Node(6, 5), net.Node(13, 5), 0, 2.0)
	p.Insert(a, 0)
	if added := p.Insert(b, 0); added != 1 {
		t.Fatalf("nearby pair not found with prefilter: %d edges", added)
	}
}

func TestDemandDistributions(t *testing.T) {
	p, net, _ := testPool(-1)
	p.Insert(mk(net, 1, net.Node(0, 0), net.Node(19, 19), 0, 2.0), 0)
	p.Insert(mk(net, 2, net.Node(0, 0), net.Node(19, 19), 0, 2.0), 0)
	pu, do := p.DemandDistributions()
	if math.Abs(pu[0]-1) > 1e-12 {
		t.Fatalf("pickup demand = %v", pu[0])
	}
	if math.Abs(do[len(do)-1]-1) > 1e-12 {
		t.Fatalf("dropoff demand tail = %v", do[len(do)-1])
	}
	p.Remove(1, 0)
	p.Remove(2, 0)
	pu, _ = p.DemandDistributions()
	for _, v := range pu {
		if v != 0 {
			t.Fatalf("demand not cleaned: %v", pu)
		}
	}
}

// TestPoolInvariantsProperty drives random insert/remove/expire traffic and
// checks structural invariants after every step: symmetric adjacency, no
// self-edges, best groups only reference pooled members, best-group plans
// stay deadline-feasible at their recorded expiry.
func TestPoolInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, net, _ := testPool(-1)
		now := 0.0
		nextID := 1
		live := map[int]bool{}
		for step := 0; step < 60; step++ {
			now += rng.Float64() * 20
			switch op := rng.Intn(4); {
			case op <= 1: // insert
				pu := net.Node(rng.Intn(20), rng.Intn(20))
				do := net.Node(rng.Intn(20), rng.Intn(20))
				if pu == do {
					continue
				}
				o := mk(net, nextID, pu, do, now, 1.3+rng.Float64())
				p.Insert(o, now)
				live[nextID] = true
				nextID++
			case op == 2: // remove random
				if len(live) == 0 {
					continue
				}
				for id := range live {
					p.Remove(id, now)
					delete(live, id)
					break
				}
			default: // expire
				for _, id := range p.ExpireEdges(now) {
					p.Remove(id, now)
					delete(live, id)
				}
			}
			if !checkInvariants(t, p, now) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func checkInvariants(t *testing.T, p *Pool, now float64) bool {
	t.Helper()
	for _, id := range p.OrderIDs() {
		n := p.nodes[id]
		for peer := range n.edges {
			if peer == id {
				t.Errorf("self edge on %d", id)
				return false
			}
			pn := p.nodes[peer]
			if pn == nil {
				t.Errorf("edge %d->%d dangles", id, peer)
				return false
			}
			if _, ok := pn.edges[id]; !ok {
				t.Errorf("asymmetric edge %d->%d", id, peer)
				return false
			}
		}
		if n.best != nil {
			for _, m := range n.best.Orders {
				if !p.Contains(m.ID) {
					t.Errorf("best group of %d references evicted order %d", id, m.ID)
					return false
				}
			}
			if !groupContains(n.best, id) {
				t.Errorf("best group of %d does not contain it", id)
				return false
			}
			// τg must really be the deadline-feasibility horizon.
			for _, m := range n.best.Orders {
				st, ok := n.best.Plan.ServiceTime(m.ID)
				if !ok {
					t.Errorf("plan of best group of %d misses member %d", id, m.ID)
					return false
				}
				if n.bestExpiry+st > m.Deadline+1e-6 {
					t.Errorf("bestExpiry %v breaks member %d deadline", n.bestExpiry, m.ID)
					return false
				}
			}
		}
	}
	return true
}

func BenchmarkPoolInsert(b *testing.B) {
	net := roadnet.NewGridCity(40, 40, 150, 8)
	planner := route.NewPlanner(net)
	ix := gridindex.New(net, 10)
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	var p *Pool
	for i := 0; i < b.N; i++ {
		if i%512 == 0 {
			p = New(planner, ix, DefaultOptions())
		}
		pu := net.Node(rng.Intn(40), rng.Intn(40))
		do := net.Node(rng.Intn(40), rng.Intn(40))
		o := mk(net, i, pu, do, float64(i), 1.6)
		p.Insert(o, float64(i))
	}
}
