package pool

import (
	"slices"

	"watter/internal/order"
)

// enumerateCliques visits cliques of the shareability graph that contain
// n's order, in sizes 2..MaxGroupSize, calling consider for each member
// slice. Expansion is depth-first over the (sorted) neighborhood with the
// standard common-neighbor intersection, so every visited set is a clique
// by construction; rider-count pruning cuts branches that can never fit the
// vehicle. MaxCliquesPerUpdate bounds the total number of visits.
//
// All working storage (the neighbor list, the per-depth candidate lists and
// the member stack) lives in pooled scratch: candidate lists for deeper
// levels are appended to one shared stack buffer and truncated on
// backtrack, so a refresh allocates nothing however many cliques it
// explores. The member slice handed to consider is scratch too — consider
// must copy whatever it keeps (the plan cache does).
func (p *Pool) enumerateCliques(n *node, now float64, consider func([]*order.Order)) {
	buf := p.cliqueBuf[:0]
	for peer, e := range n.edges {
		if e.expiry >= now {
			buf = append(buf, peer)
		}
	}
	slices.Sort(buf) // sorted iteration keeps enumeration deterministic
	if len(buf) == 0 {
		p.cliqueBuf = buf
		return
	}

	budget := p.opt.MaxCliquesPerUpdate
	unlimited := budget <= 0

	members := append(p.memberBuf[:0], n.o)
	riders := n.o.Riders

	var expand func(lo, hi int)
	expand = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !unlimited && budget <= 0 {
				return
			}
			peer := p.nodes[buf[i]]
			if peer == nil {
				continue
			}
			if riders+peer.o.Riders > p.opt.Capacity {
				continue
			}
			members = append(members, peer.o)
			riders += peer.o.Riders
			if !unlimited {
				budget--
			}
			consider(members)
			if len(members) < p.opt.MaxGroupSize {
				// Candidates after i that are adjacent to the new member
				// (and, inductively, to all previous members) with a live
				// edge keep the set a clique. They are pushed onto the
				// shared stack past this level's slice and popped after the
				// recursive expansion returns.
				mark := len(buf)
				for _, cid := range buf[i+1 : hi] {
					if e, ok := peer.edges[cid]; ok && e.expiry >= now {
						buf = append(buf, cid)
					}
				}
				if len(buf) > mark {
					expand(mark, len(buf))
				}
				buf = buf[:mark]
			}
			riders -= peer.o.Riders
			members = members[:len(members)-1]
		}
	}
	expand(0, len(buf))
	p.cliqueBuf = buf
	p.memberBuf = members[:0]
}
