package pool

import (
	"sort"

	"watter/internal/order"
)

// enumerateCliques visits cliques of the shareability graph that contain
// n's order, in sizes 2..MaxGroupSize, calling consider for each member
// slice. Expansion is depth-first over the (sorted) neighborhood with the
// standard common-neighbor intersection, so every visited set is a clique
// by construction; rider-count pruning cuts branches that can never fit the
// vehicle. MaxCliquesPerUpdate bounds the total number of visits.
func (p *Pool) enumerateCliques(n *node, now float64, consider func([]*order.Order)) {
	neighbors := make([]int, 0, len(n.edges))
	for peer, e := range n.edges {
		if e.expiry >= now {
			neighbors = append(neighbors, peer)
		}
	}
	sort.Ints(neighbors)
	if len(neighbors) == 0 {
		return
	}

	budget := p.opt.MaxCliquesPerUpdate
	unlimited := budget <= 0

	members := []*order.Order{n.o}
	riders := n.o.Riders

	var expand func(cands []int)
	expand = func(cands []int) {
		for i, id := range cands {
			if !unlimited && budget <= 0 {
				return
			}
			peer := p.nodes[id]
			if peer == nil {
				continue
			}
			if riders+peer.o.Riders > p.opt.Capacity {
				continue
			}
			members = append(members, peer.o)
			riders += peer.o.Riders
			if !unlimited {
				budget--
			}
			consider(members)
			if len(members) < p.opt.MaxGroupSize {
				// Candidates after i that are adjacent to the new member
				// (and, inductively, to all previous members) with a live
				// edge keep the set a clique.
				var next []int
				for _, cid := range cands[i+1:] {
					if e, ok := peer.edges[cid]; ok && e.expiry >= now {
						next = append(next, cid)
					}
				}
				if len(next) > 0 {
					expand(next)
				}
			}
			riders -= peer.o.Riders
			members = members[:len(members)-1]
		}
	}
	expand(neighbors)
}
