package pool

import (
	"math/rand"
	"testing"

	"watter/internal/gridindex"
	"watter/internal/order"
	"watter/internal/roadnet"
	"watter/internal/route"
)

// reverseExec runs tasks back to front — an adversarial scheduling the
// merge must be immune to (results are pure, the merge order is fixed).
type reverseExec struct{ ran int }

func (e *reverseExec) Run(tasks []func()) {
	for i := len(tasks) - 1; i >= 0; i-- {
		tasks[i]()
	}
	e.ran += len(tasks)
}

// TestPrewarmPairsDecisionsIdentical drives two pools through the same
// random insert/expire/remove trace — one prewarming every insert through
// an adversarially scheduled executor, one inserting cold — and requires
// identical shareability edges and bit-identical best groups throughout.
func TestPrewarmPairsDecisionsIdentical(t *testing.T) {
	warm, net, _ := testPool(2)
	cold, _, _ := testPool(2)
	exec := &reverseExec{}
	rng := rand.New(rand.NewSource(5))

	now := 0.0
	for id := 1; id <= 120; id++ {
		now += rng.Float64() * 8
		pu := net.Node(rng.Intn(20), rng.Intn(20))
		do := net.Node(rng.Intn(20), rng.Intn(20))
		if pu == do {
			continue
		}
		o := mk(net, id, pu, do, now, 1.4+rng.Float64())
		warm.PrewarmPairs(o, now, exec)
		aw := warm.Insert(o, now)
		warm.FlushPrewarmedNegatives()
		ac := cold.Insert(cloneOrder(o), now)
		if aw != ac {
			t.Fatalf("insert %d: warm added %d edges, cold %d", id, aw, ac)
		}
		if warm.CachedPlans() != cold.CachedPlans() {
			t.Fatalf("insert %d: warm cache holds %d entries, cold %d (prewarmed negatives must not outlive the insert)",
				id, warm.CachedPlans(), cold.CachedPlans())
		}
		if id%7 == 0 {
			for _, ex := range warm.ExpireEdges(now) {
				warm.Remove(ex, now)
			}
			for _, ex := range cold.ExpireEdges(now) {
				cold.Remove(ex, now)
			}
		}
		for _, oid := range warm.OrderIDs() {
			wg, we, wok := warm.BestGroup(oid)
			cg, ce, cok := cold.BestGroup(oid)
			if wok != cok || we != ce {
				t.Fatalf("order %d after insert %d: warm (ok=%v exp=%v) vs cold (ok=%v exp=%v)",
					oid, id, wok, we, cok, ce)
			}
			if wok && (wg.Plan.Cost != cg.Plan.Cost || wg.Key() != cg.Key()) {
				t.Fatalf("order %d: warm best %s cost %v, cold best %s cost %v",
					oid, wg.Key(), wg.Plan.Cost, cg.Key(), cg.Plan.Cost)
			}
		}
	}
	if exec.ran == 0 {
		t.Fatal("no prewarm task ever ran; the test exercised nothing")
	}
	// The warm pool must have answered inserts from prewarmed entries.
	if warm.CacheStats().Hits+warm.CacheStats().NegativeHits == 0 {
		t.Fatal("prewarmed entries were never hit")
	}
}

// cloneOrder keeps the two pools from sharing order pointers (the pool
// stores what it is given).
func cloneOrder(o *order.Order) *order.Order { c := *o; return &c }

// TestPrewarmDisabledCacheNoop: with the plan cache off there is nowhere
// to merge results, so prewarm must do nothing (the equivalence arms of
// the benchmarks rely on the uncached pool staying untouched).
func TestPrewarmDisabledCacheNoop(t *testing.T) {
	net := roadnet.NewGridCity(20, 20, 100, 10)
	planner := route.NewPlanner(net)
	ix := gridindex.New(net, 10)
	opt := DefaultOptions()
	opt.DisablePlanCache = true
	p := New(planner, ix, opt)
	exec := &reverseExec{}
	o := mk(net, 1, net.Node(0, 0), net.Node(5, 0), 0, 2)
	p.PrewarmPairs(o, 0, exec)
	if exec.ran != 0 {
		t.Fatalf("prewarm ran %d tasks with the cache disabled", exec.ran)
	}
	if p.CachedPlans() != 0 {
		t.Fatalf("disabled cache holds %d entries", p.CachedPlans())
	}
}
