package pool

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"watter/internal/gridindex"
	"watter/internal/order"
	"watter/internal/roadnet"
	"watter/internal/route"
)

// entryMembers reports whether any live cache entry references the order.
func cacheReferences(p *Pool, id int) bool {
	if p.cache == nil {
		return false
	}
	for _, ent := range p.cache.entries {
		for _, m := range ent.members {
			if m.ID == id {
				return true
			}
		}
	}
	return false
}

func TestPlanCacheWarmsAndHits(t *testing.T) {
	p, net, _ := testPool(-1)
	a := mk(net, 1, net.Node(0, 0), net.Node(10, 0), 0, 2.0)
	b := mk(net, 2, net.Node(1, 0), net.Node(11, 0), 0, 2.0)
	c := mk(net, 3, net.Node(2, 0), net.Node(12, 0), 0, 2.0)
	p.Insert(a, 0)
	p.Insert(b, 0)
	if p.CachedPlans() == 0 || p.LegBlocks() == 0 {
		t.Fatalf("pair insert left cache cold: plans=%d blocks=%d", p.CachedPlans(), p.LegBlocks())
	}
	// Inserting c re-enumerates cliques containing the a-b pair: the pair
	// entries planned at edge creation must be served from cache.
	before := p.CacheStats()
	p.Insert(c, 0)
	after := p.CacheStats()
	if after.Hits <= before.Hits {
		t.Fatalf("no cache hits across inserts: %+v -> %+v", before, after)
	}
	// A tick-time refresh of unchanged nodes must be almost all hits.
	preMiss := p.CacheStats().Misses
	p.ExpireEdges(5)
	if p.CacheStats().Misses != preMiss {
		t.Fatalf("refresh at t=5 re-planned cached cliques: %+v", p.CacheStats())
	}
}

func TestPlanCacheEvictionOnRemove(t *testing.T) {
	p, net, _ := testPool(-1)
	for i := 1; i <= 4; i++ {
		p.Insert(mk(net, i, net.Node(i-1, 0), net.Node(10+i, 0), 0, 2.0), 0)
	}
	if !cacheReferences(p, 2) {
		t.Fatal("no cache entries reference order 2; test is vacuous")
	}
	p.Remove(2, 1)
	if cacheReferences(p, 2) {
		t.Fatal("cache entries referencing removed order 2 survived")
	}
	if p.CacheStats().Evicted == 0 {
		t.Fatal("eviction counter not advanced")
	}
	if p.legs.BlocksFor(2) != 0 {
		t.Fatal("leg blocks referencing removed order 2 survived")
	}
}

func TestPlanCacheEvictionOnRemoveGroup(t *testing.T) {
	p, net, _ := testPool(-1)
	var orders []*order.Order
	for i := 1; i <= 3; i++ {
		o := mk(net, i, net.Node(i-1, 0), net.Node(10+i, 0), 0, 2.0)
		orders = append(orders, o)
		p.Insert(o, 0)
	}
	g, _, ok := p.BestGroup(1)
	if !ok {
		t.Fatal("no best group to dispatch")
	}
	p.RemoveGroup(g, 1)
	for _, o := range orders {
		if groupContains(g, o.ID) && cacheReferences(p, o.ID) {
			t.Fatalf("cache entries referencing dispatched order %d survived", o.ID)
		}
	}
}

// TestPlanCacheExpiryRenewal drives the clock past a cached entry's τg and
// checks the lookup replans in place instead of serving the stale route —
// and that a renewal coming back infeasible turns the entry permanently
// negative.
func TestPlanCacheExpiryRenewal(t *testing.T) {
	p, net, _ := testPool(-1)
	a := mk(net, 1, net.Node(0, 0), net.Node(10, 0), 0, 2.0)
	b := mk(net, 2, net.Node(1, 0), net.Node(11, 0), 0, 2.0)
	p.Insert(a, 0)
	p.Insert(b, 0)
	ent := p.planEntryFor(p.canonical(a, b), 0)
	if !ent.feasible {
		t.Fatal("corridor pair must be feasible")
	}
	st := p.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("lookup after insert missed: %+v", st)
	}
	// Within τg the entry is served verbatim.
	if again := p.planEntryFor(p.canonical(a, b), ent.expiry); again != ent {
		t.Fatal("lookup within τg did not return the cached entry")
	}
	// Past τg the entry must be replanned at the current clock. For this
	// corridor every pair route drops b at the same offset, so the replan
	// comes back infeasible and the entry turns negative.
	st = p.CacheStats()
	after := p.planEntryFor(p.canonical(a, b), ent.expiry+1)
	if p.CacheStats().Renewed != st.Renewed+1 {
		t.Fatalf("lookup past τg did not renew: %+v", p.CacheStats())
	}
	if after != ent {
		t.Fatal("renewal must replace the entry in place")
	}
	if after.feasible && after.expiry < ent.expiry+1 {
		t.Fatalf("renewed entry still stale: τg=%v at now=%v", after.expiry, ent.expiry+1)
	}
	if after.feasible {
		t.Fatalf("corridor pair should be infeasible past τg (svc is route-invariant here), got τg=%v", after.expiry)
	}
	// Once negative, the entry is permanent: later lookups are negative
	// hits, never replans.
	st = p.CacheStats()
	p.planEntryFor(p.canonical(a, b), ent.expiry+50)
	got := p.CacheStats()
	if got.NegativeHits != st.NegativeHits+1 || got.Renewed != st.Renewed || got.Misses != st.Misses {
		t.Fatalf("negative entry not served as permanent: %+v -> %+v", st, got)
	}
}

// TestPlanCacheNegativePermanence builds a triangle whose pairs are all
// feasible but whose 3-clique is not: the triple must become a permanent
// negative entry served without replanning.
func TestPlanCacheNegativePermanence(t *testing.T) {
	p, net, _ := testPool(-1)
	// Geometry (20x20 grid, 10 s per cell): a and b are parallel generous
	// corridors at y=0 and y=4; c runs between them at y=2 with a tight
	// deadline. Each pair shares fine; any route over all three delays c's
	// dropoff past its deadline (see the derivation in the PR that added
	// the cache).
	a := mk(net, 1, net.Node(0, 0), net.Node(10, 0), 0, 2.0)
	b := mk(net, 2, net.Node(0, 4), net.Node(10, 4), 0, 2.0)
	c := mk(net, 3, net.Node(0, 2), net.Node(10, 2), 0, 1.3)
	p.Insert(a, 0)
	p.Insert(b, 0)
	p.Insert(c, 0)
	if p.Degree(1) != 2 || p.Degree(2) != 2 || p.Degree(3) != 2 {
		t.Fatalf("triangle not formed: degrees %d/%d/%d", p.Degree(1), p.Degree(2), p.Degree(3))
	}
	// Confirm the triple really is infeasible for the planner.
	planner := route.NewPlanner(net)
	if _, ok := planner.PlanGroup([]*order.Order{a, b, c}, 0, 4); ok {
		t.Fatal("triple unexpectedly feasible; negative-cache test is vacuous")
	}
	var neg *planEntry
	for _, ent := range p.cache.entries {
		if !ent.feasible {
			neg = ent
		}
	}
	if neg == nil {
		t.Fatal("no negative entry cached for the infeasible triple")
	}
	if len(neg.members) != 3 {
		t.Fatalf("negative entry has %d members, want the triple", len(neg.members))
	}
	// Later refreshes that re-enumerate the triangle serve the negative
	// entry without replanning, at any later clock.
	st := p.CacheStats()
	p.refreshBest(1, 2)
	p.refreshBest(2, 5)
	after := p.CacheStats()
	if after.NegativeHits <= st.NegativeHits {
		t.Fatalf("negative entry not reused: %+v -> %+v", st, after)
	}
	if after.Misses != st.Misses {
		t.Fatalf("negative clique was replanned: %+v -> %+v", st, after)
	}
	found := false
	for _, ent := range p.cache.entries {
		if !ent.feasible && len(ent.members) == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("negative entry vanished while all members remain pooled")
	}
	// Removing a member evicts it; re-inserting replans from scratch.
	p.Remove(3, 6)
	for _, ent := range p.cache.entries {
		if len(ent.members) == 3 {
			t.Fatal("triple entry survived member removal")
		}
	}
}

// TestCachedPlansBitIdenticalProperty drives random insert/remove/expire
// traffic through two pools — cache on and cache off — in lockstep, and
// after every step checks (1) both pools expose byte-for-byte identical
// best groups, and (2) every cached best plan equals a from-scratch
// PlanGroup of the same canonical member set at the current clock.
func TestCachedPlansBitIdenticalProperty(t *testing.T) {
	f := func(seed int64) bool {
		net := roadnet.NewGridCity(20, 20, 100, 10)
		planner := route.NewPlanner(net)
		fresh := route.NewPlanner(net)
		ix := gridindex.New(net, 10)
		optOn := DefaultOptions()
		optOn.CandidateRadius = -1
		optOff := optOn
		optOff.DisablePlanCache = true
		cached := New(planner, ix, optOn)
		plain := New(route.NewPlanner(net), gridindex.New(net, 10), optOff)

		rng := rand.New(rand.NewSource(seed))
		now := 0.0
		nextID := 1
		live := map[int]bool{}
		for step := 0; step < 50; step++ {
			now += rng.Float64() * 15
			switch op := rng.Intn(4); {
			case op <= 1: // insert
				pu := net.Node(rng.Intn(20), rng.Intn(20))
				do := net.Node(rng.Intn(20), rng.Intn(20))
				if pu == do {
					continue
				}
				o := mk(net, nextID, pu, do, now, 1.3+rng.Float64())
				cached.Insert(o, now)
				plain.Insert(o, now)
				live[nextID] = true
				nextID++
			case op == 2: // remove lowest live id (deterministic)
				id := -1
				for k := range live {
					if id < 0 || k < id {
						id = k
					}
				}
				if id < 0 {
					continue
				}
				cached.Remove(id, now)
				plain.Remove(id, now)
				delete(live, id)
			default: // expire
				e1 := cached.ExpireEdges(now)
				e2 := plain.ExpireEdges(now)
				if len(e1) != len(e2) {
					t.Errorf("expiry diverged: %v vs %v", e1, e2)
					return false
				}
				for i := range e1 {
					if e1[i] != e2[i] {
						t.Errorf("expiry diverged: %v vs %v", e1, e2)
						return false
					}
				}
				for _, id := range e1 {
					cached.Remove(id, now)
					plain.Remove(id, now)
					delete(live, id)
				}
			}
			if !compareBest(t, cached, plain, fresh, now) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// compareBest cross-checks every pooled order's best group between the
// cached and uncached pools, and against a from-scratch plan.
func compareBest(t *testing.T, cached, plain *Pool, fresh *route.Planner, now float64) bool {
	t.Helper()
	ids := cached.OrderIDs()
	pids := plain.OrderIDs()
	if len(ids) != len(pids) {
		t.Errorf("pool contents diverged: %v vs %v", ids, pids)
		return false
	}
	for _, id := range ids {
		gc, ec, okc := cached.BestGroup(id)
		gp, ep, okp := plain.BestGroup(id)
		if okc != okp {
			t.Errorf("order %d: best-group presence diverged (cached %v, plain %v)", id, okc, okp)
			return false
		}
		if !okc {
			continue
		}
		if ec != ep {
			t.Errorf("order %d: τg diverged: %v vs %v", id, ec, ep)
			return false
		}
		ci, pi := gc.IDs(), gp.IDs()
		if len(ci) != len(pi) {
			t.Errorf("order %d: group members diverged: %v vs %v", id, ci, pi)
			return false
		}
		for i := range ci {
			if ci[i] != pi[i] {
				t.Errorf("order %d: group members diverged: %v vs %v", id, ci, pi)
				return false
			}
		}
		if gc.Plan.Cost != gp.Plan.Cost {
			t.Errorf("order %d: plan cost diverged: %v vs %v", id, gc.Plan.Cost, gp.Plan.Cost)
			return false
		}
		for i := range gc.Plan.Stops {
			if gc.Plan.Stops[i] != gp.Plan.Stops[i] || gc.Plan.Arrive[i] != gp.Plan.Arrive[i] {
				t.Errorf("order %d: plans diverged at stop %d", id, i)
				return false
			}
		}
		// The cached plan must also equal a from-scratch plan of the same
		// canonical member set at the current clock: stops, arrivals and
		// cost bit for bit (the now-independence invariant).
		if ec >= now {
			ref, ok := fresh.PlanGroup(gc.Orders, now, cached.opt.Capacity)
			if !ok {
				t.Errorf("order %d: cached-feasible group replans infeasible at now=%v", id, now)
				return false
			}
			if ref.Cost != gc.Plan.Cost || len(ref.Stops) != len(gc.Plan.Stops) {
				t.Errorf("order %d: cached plan cost %v != fresh %v", id, gc.Plan.Cost, ref.Cost)
				return false
			}
			for i := range ref.Stops {
				if ref.Stops[i] != gc.Plan.Stops[i] || ref.Arrive[i] != gc.Plan.Arrive[i] {
					t.Errorf("order %d: cached plan diverged from fresh replan at stop %d", id, i)
					return false
				}
			}
			// And τg recomputed from the fresh plan must match.
			want := math.Inf(1)
			for _, o := range gc.Orders {
				st, _ := ref.ServiceTime(o.ID)
				if e := o.Deadline - st; e < want {
					want = e
				}
			}
			if want != ec {
				t.Errorf("order %d: τg %v != recomputed %v", id, ec, want)
				return false
			}
		}
	}
	return true
}
