package pool

import (
	"watter/internal/order"
	"watter/internal/route"
)

// Exec runs a batch of independent tasks — possibly in parallel — and
// returns when all have completed. The sharded dispatch engine implements
// it by fanning tasks over its shard goroutines; a nil Exec (or the serial
// fallback) simply runs them in order. Tasks must be pure computations:
// the caller merges their results deterministically afterwards, so the
// scheduling order cannot influence any pool decision.
type Exec interface {
	Run(tasks []func())
}

// PrewarmPairs computes, in parallel, the pairwise shareability plans an
// imminent Insert(o, now) will run: one cost-only route DP per candidate
// neighbor whose pair is not already cached. Each task plans into a
// private scratch leg store; the results — pure functions of the member
// pair and now — are then merged into the plan cache (and, for feasible
// pairs, the pool's leg store) on the calling goroutine, so the following
// Insert finds every pair test answered and the pool's decisions are
// bit-identical to an unwarmed insert. With the plan cache disabled this
// is a no-op: there is nowhere to put the results, and the equivalence
// arms must stay untouched.
func (p *Pool) PrewarmPairs(o *order.Order, now float64, exec Exec) {
	if p.cache == nil || exec == nil {
		return
	}
	if _, dup := p.nodes[o.ID]; dup {
		return
	}
	cands := p.candidatesAt(p.ix.CellOf(o.Pickup), o.ID)
	type pairJob struct {
		ent  *planEntry
		legs *route.LegStore
	}
	jobs := make([]pairJob, 0, len(cands))
	for _, candID := range cands {
		cand := p.nodes[candID]
		canon := p.canonical(o, cand.o)
		if _, ok := p.cache.entries[string(p.memberKey(canon))]; ok {
			continue
		}
		jobs = append(jobs, pairJob{
			ent:  &planEntry{members: append([]*order.Order(nil), canon...), svc: make([]float64, 2)},
			legs: route.NewLegStore(p.planner.Net),
		})
	}
	if len(jobs) == 0 {
		return
	}
	tasks := make([]func(), len(jobs))
	for i := range jobs {
		j := &jobs[i]
		//det:specroot each prewarm task runs on a shard goroutine and may only fill its own job slot
		tasks[i] = func() {
			j.ent.cost, j.ent.expiry, j.ent.feasible = p.planner.PlanGroupCost(
				j.ent.members, now, p.opt.Capacity, j.legs, j.ent.svc)
		}
	}
	exec.Run(tasks)
	// Deterministic merge in candidate order. Negative pairs are cached
	// too — monotone infeasibility makes them correct at any later now,
	// and the parallel DP already paid for the answer — but only until the
	// imminent Insert consumes them: an edgeless pair can never be
	// enumerated in a clique, so FlushPrewarmedNegatives drops them right
	// after, exactly as pairEntryFor never persists a failed test. Their
	// leg blocks are never adopted for the same reason.
	for i := range jobs {
		j := &jobs[i]
		key := p.memberKey(j.ent.members)
		p.cacheInsert(key, j.ent)
		if j.ent.feasible {
			p.legs.Adopt(j.legs)
		} else {
			p.prewarmNeg = append(p.prewarmNeg, string(key))
		}
	}
}

// FlushPrewarmedNegatives drops the negative pair entries the last
// PrewarmPairs merged. The caller invokes it after the Insert that
// consumed them (each is looked up exactly once — an infeasible pair
// creates no edge and is never enumerated again), returning the cache to
// the footprint a sequential, unwarmed insert would have left.
func (p *Pool) FlushPrewarmedNegatives() {
	if p.cache == nil || len(p.prewarmNeg) == 0 {
		p.prewarmNeg = p.prewarmNeg[:0]
		return
	}
	for _, key := range p.prewarmNeg {
		delete(p.cache.entries, key)
		// byOrder keeps stale keys; eviction skips them harmlessly.
	}
	p.prewarmNeg = p.prewarmNeg[:0]
}
