// Package pool implements the temporal shareability graph (paper Section
// IV): the order pool at the heart of WATTER. Orders are nodes; an edge
// (o_i, o_j, τe) records that the two orders can share a feasible route
// until timestamp τe. Shareable groups are k-cliques (Theorem IV.1 makes
// the clique a necessary condition; the route planner provides the
// sufficient check), and every pooled order keeps a pointer to its current
// best group — the clique whose minimal-cost route gives the smallest
// average extra time.
//
// Best-group maintenance is the system's hot path, so the pool memoizes
// aggressively (see plancache.go): every considered clique is first
// resolved through a plan cache keyed by its sorted member signature, the
// cost-only route DP assembles leg matrices from per-pair blocks cached at
// edge-creation time, and only cliques that actually win a best-group race
// materialize a RoutePlan. All of it is behaviorally invisible —
// Options.DisablePlanCache turns every memo off and the pool makes
// bit-identical decisions either way.
package pool

import (
	"math"
	"slices"

	"watter/internal/gridindex"
	"watter/internal/order"
	"watter/internal/route"
)

// Options tunes the pool's pruning heuristics.
type Options struct {
	// Capacity bounds both group rider counts and clique size.
	Capacity int
	// MaxGroupSize caps clique size independently of capacity (the planner
	// rejects groups above route.MaxGroupSize anyway).
	MaxGroupSize int
	// CandidateRadius is the spatial prefilter in grid cells: only orders
	// whose pickup lies within this Chebyshev cell distance are tested for
	// shareability. Negative disables the prefilter (exact, slower).
	CandidateRadius int
	// MaxCliquesPerUpdate caps the number of candidate cliques explored
	// per best-group recomputation; 0 means unlimited.
	MaxCliquesPerUpdate int
	// DisablePlanCache turns off the clique plan cache and the per-edge
	// leg-block store, forcing every best-group refresh to replan from
	// scratch. Decisions are bit-identical either way (the caches memoize
	// pure functions of the member set); the switch exists for the
	// equivalence tests and the -benchpool uncached baseline arm.
	DisablePlanCache bool
}

// DefaultOptions matches the paper's defaults (capacity 4, 10x10 grid
// prefilter of radius 2).
func DefaultOptions() Options {
	return Options{Capacity: 4, MaxGroupSize: 4, CandidateRadius: 2, MaxCliquesPerUpdate: 64}
}

// edge is a shareability relation with its expiration timestamp.
type edge struct {
	peer   int     // neighbor order ID
	expiry float64 // τe: latest dispatch time keeping the pair feasible
}

// node is a pooled order plus adjacency.
type node struct {
	o     *order.Order
	edges map[int]edge
	cell  int // pickup cell in the spatial index
	best  *order.Group
	// bestExpiry is τg of the best group (Eq. 3): the latest dispatch time
	// at which the group's plan still meets every member deadline.
	bestExpiry float64
	// bestVer counts *semantic* best-group changes: it bumps only when the
	// member set or the expiry actually differs from the previous best, not
	// when a refresh re-materializes an identical group under a new
	// pointer. The sharded engine's speculation keys its group probes on
	// this version — pointer identity would discard most of a tick's
	// speculative work every time an unrelated commit triggered a refresh
	// that rebuilt the same group.
	bestVer uint64
}

// setBest installs a node's (possibly nil) best group, bumping bestVer
// only on semantic change. Two bests are semantically equal when they have
// the same member IDs and the same expiry bits: a group probe depends only
// on (first pickup, rider count, expiry), and plans are pure functions of
// the canonical member set and the clock, so an equal-members equal-expiry
// rebuild answers every downstream question identically.
func setBest(n *node, g *order.Group, expiry float64) {
	if !sameBest(n.best, g, n.bestExpiry, expiry) {
		n.bestVer++
	}
	n.best = g
	n.bestExpiry = expiry
}

func sameBest(a, b *order.Group, ea, eb float64) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if math.Float64bits(ea) != math.Float64bits(eb) || len(a.Orders) != len(b.Orders) {
		return false
	}
	for i := range a.Orders {
		if a.Orders[i].ID != b.Orders[i].ID {
			return false
		}
	}
	return true
}

// Pool is the temporal shareability graph.
type Pool struct {
	planner *route.Planner
	ix      *gridindex.Index
	opt     Options

	nodes map[int]*node
	cells [][]int // cell -> order IDs with pickup in the cell

	// Memoization (nil when Options.DisablePlanCache): the clique plan
	// cache and the per-pair leg-block store. Lifetime is the pool's —
	// one simulation run.
	cache *planCache
	legs  *route.LegStore

	// Reusable scratch for the maintenance hot path. The pool is
	// single-goroutine (each simulation run owns its pool), so plain
	// fields suffice.
	candBuf   []int            // candidates()
	cliqueBuf []int            // enumerateCliques candidate stack
	memberBuf []*order.Order   // enumerateCliques member stack
	canonBuf  []*order.Order   // canonical (sorted-by-ID) member view
	keyBuf    []byte           // cache key rendering
	improve   map[int]improved // refreshBest deferred member updates
	pairProbe *planEntry       // reusable scratch for failed pair tests
	// prewarmNeg holds the keys of negative pair entries the last
	// PrewarmPairs merged; the insert that consumes them calls
	// FlushPrewarmedNegatives so they don't outlive their one lookup
	// (mirroring pairEntryFor's no-persist policy for failed pair tests).
	prewarmNeg []string

	// Demand distributions over cells, maintained incrementally; these are
	// the MDP state's sO vectors.
	pickupDemand  gridindex.Distribution
	dropoffDemand gridindex.Distribution
}

// improved tracks, during one refreshBest enumeration, the best candidate
// seen so far for a member other than the refreshed order.
type improved struct {
	avg float64
	ent *planEntry
}

// New builds an empty pool.
func New(planner *route.Planner, ix *gridindex.Index, opt Options) *Pool {
	if opt.Capacity <= 0 {
		opt.Capacity = 4
	}
	if opt.MaxGroupSize <= 0 || opt.MaxGroupSize > route.MaxGroupSize {
		opt.MaxGroupSize = min(opt.Capacity, route.MaxGroupSize)
	}
	p := &Pool{
		planner:       planner,
		ix:            ix,
		opt:           opt,
		nodes:         make(map[int]*node),
		cells:         make([][]int, ix.NumCells()),
		improve:       make(map[int]improved),
		pickupDemand:  ix.NewDistribution(),
		dropoffDemand: ix.NewDistribution(),
	}
	if !opt.DisablePlanCache {
		p.cache = newPlanCache()
		p.legs = route.NewLegStore(planner.Net)
	}
	return p
}

// Len returns the number of pooled orders.
func (p *Pool) Len() int { return len(p.nodes) }

// Contains reports whether the order is pooled.
func (p *Pool) Contains(id int) bool { _, ok := p.nodes[id]; return ok }

// Order returns a pooled order by ID (nil if absent).
func (p *Pool) Order(id int) *order.Order {
	if n, ok := p.nodes[id]; ok {
		return n.o
	}
	return nil
}

// OrderIDs returns the pooled order IDs in ascending order (deterministic
// iteration for the periodic check).
func (p *Pool) OrderIDs() []int {
	ids := make([]int, 0, len(p.nodes))
	for id := range p.nodes {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// Degree returns the number of shareability edges incident to the order.
func (p *Pool) Degree(id int) int {
	if n, ok := p.nodes[id]; ok {
		return len(n.edges)
	}
	return 0
}

// EdgeExpiry returns the τe of the edge between two orders, if present.
func (p *Pool) EdgeExpiry(a, b int) (float64, bool) {
	if n, ok := p.nodes[a]; ok {
		if e, ok := n.edges[b]; ok {
			return e.expiry, true
		}
	}
	return 0, false
}

// DemandDistributions returns normalized copies of the current pickup and
// dropoff demand histograms (MDP feature sO).
func (p *Pool) DemandDistributions() (pickup, dropoff gridindex.Distribution) {
	pu := make(gridindex.Distribution, len(p.pickupDemand))
	do := make(gridindex.Distribution, len(p.dropoffDemand))
	copy(pu, p.pickupDemand)
	copy(do, p.dropoffDemand)
	pu.Normalize()
	do.Normalize()
	return pu, do
}

// Insert adds an order at time now: the node is created, shareability
// edges to candidate neighbors are discovered, and best groups of the new
// order and its neighbors are refreshed. Returns the number of edges added.
func (p *Pool) Insert(o *order.Order, now float64) int {
	if _, dup := p.nodes[o.ID]; dup {
		return 0
	}
	n := &node{
		o:     o,
		edges: make(map[int]edge),
		cell:  p.ix.CellOf(o.Pickup),
	}
	p.nodes[o.ID] = n
	p.cells[n.cell] = append(p.cells[n.cell], o.ID)
	p.pickupDemand[p.ix.CellOf(o.Pickup)]++
	p.dropoffDemand[p.ix.CellOf(o.Dropoff)]++

	added := 0
	for _, candID := range p.candidates(n) {
		cand := p.nodes[candID]
		// The pairwise test doubles as the 2-clique's cache fill (and, via
		// the leg store, computes the pair's 4x4 cost block exactly once).
		// Failed tests persist nothing — an edgeless pair can never be
		// enumerated again.
		ent := p.pairEntryFor(o, cand.o, now)
		if !ent.feasible || ent.expiry < now {
			continue
		}
		n.edges[candID] = edge{peer: candID, expiry: ent.expiry}
		cand.edges[o.ID] = edge{peer: o.ID, expiry: ent.expiry}
		added++
	}
	// Incremental best-group maintenance (the paper's Appendix A shape):
	// an arrival only adds grouping options, so the new order gets a full
	// enumeration and every group visited improvement-updates the other
	// members' bests — neighbors never need a full recompute here.
	p.refreshBest(o.ID, now)
	return added
}

// Remove deletes an order (dispatched or rejected) and refreshes the best
// groups of every neighbor whose best group referenced it.
func (p *Pool) Remove(id int, now float64) {
	n, ok := p.nodes[id]
	if !ok {
		return
	}
	neighbors := make([]int, 0, len(n.edges))
	for peer := range n.edges {
		neighbors = append(neighbors, peer)
		delete(p.nodes[peer].edges, id)
	}
	slices.Sort(neighbors)
	p.dropNode(id, n)
	for _, peer := range neighbors {
		pn := p.nodes[peer]
		if pn == nil {
			continue
		}
		if pn.best != nil && groupContains(pn.best, id) {
			p.refreshBest(peer, now)
		}
	}
}

// RemoveGroup removes every member of the group, then refreshes affected
// neighbors once.
func (p *Pool) RemoveGroup(g *order.Group, now float64) {
	for _, o := range g.Orders {
		p.Remove(o.ID, now)
	}
}

func (p *Pool) dropNode(id int, n *node) {
	bucket := p.cells[n.cell]
	for i, v := range bucket {
		if v == id {
			bucket[i] = bucket[len(bucket)-1]
			p.cells[n.cell] = bucket[:len(bucket)-1]
			break
		}
	}
	p.pickupDemand[p.ix.CellOf(n.o.Pickup)]--
	p.dropoffDemand[p.ix.CellOf(n.o.Dropoff)]--
	delete(p.nodes, id)
	p.evictOrder(id)
}

// ExpireEdges drops edges and best groups that are no longer dispatchable
// at time now (graph update cases 3 and 4 of Algorithm 1), and returns the
// IDs of orders that can no longer be served alone (deadline unreachable) —
// the caller rejects those.
func (p *Pool) ExpireEdges(now float64) (expiredOrders []int) {
	type pair struct{ a, b int }
	var dead []pair
	for id, n := range p.nodes {
		for peer, e := range n.edges {
			if peer > id && e.expiry < now {
				dead = append(dead, pair{id, peer})
			}
		}
	}
	slices.SortFunc(dead, func(x, y pair) int {
		if x.a != y.a {
			return x.a - y.a
		}
		return x.b - y.b
	})
	touched := map[int]bool{}
	for _, d := range dead {
		delete(p.nodes[d.a].edges, d.b)
		delete(p.nodes[d.b].edges, d.a)
		touched[d.a] = true
		touched[d.b] = true
	}
	//det:unordered touched writes are keyed by the loop key with a constant value, Expired reads only the order's own deadline, and expiredOrders is sorted before use below
	for id, n := range p.nodes {
		if n.best != nil && n.bestExpiry < now {
			touched[id] = true
		}
		if n.o.Expired(now) {
			expiredOrders = append(expiredOrders, id)
		}
	}
	ids := make([]int, 0, len(touched))
	for id := range touched {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		p.refreshBest(id, now)
	}
	slices.Sort(expiredOrders)
	return expiredOrders
}

// BestGroup returns the order's current best *shared* group (size >= 2)
// and its expiry τg. ok is false when the order has no feasible shared
// group right now — per Algorithm 1 such orders stay pooled and wait (solo
// dispatch is the framework's timeout path, not a pool concern).
func (p *Pool) BestGroup(id int) (*order.Group, float64, bool) {
	n, ok := p.nodes[id]
	if !ok || n.best == nil {
		return nil, 0, false
	}
	return n.best, n.bestExpiry, true
}

// BestGroupVersion returns the order's best-group semantic version: the
// count of real best-group changes (member set or expiry) this node has
// seen. A speculation taken at version V is still answering the right
// question at commit time iff the version is still V — even if refreshes
// in between re-materialized the group under a new pointer. Absent orders
// report 0 (they also fail every other probe gate).
func (p *Pool) BestGroupVersion(id int) uint64 {
	if n, ok := p.nodes[id]; ok {
		return n.bestVer
	}
	return 0
}

// candidates returns the IDs of pooled orders within the spatial prefilter
// radius of n's pickup cell, ascending. The returned slice is pool scratch,
// valid until the next candidates call.
func (p *Pool) candidates(n *node) []int {
	return p.candidatesAt(n.cell, n.o.ID)
}

// candidatesAt is candidates keyed by cell, usable before the order has a
// node (the sharded engine's insert prewarm runs it pre-Insert).
//
//det:hotpath spatial prefilter runs per insert and per refresh; candidates fill the pooled buffer
func (p *Pool) candidatesAt(cell, selfID int) []int {
	out := p.candBuf[:0]
	if p.opt.CandidateRadius < 0 {
		for id := range p.nodes {
			if id != selfID {
				out = append(out, id)
			}
		}
	} else {
		for d := 0; d <= p.opt.CandidateRadius; d++ {
			//det:hotalloc non-escaping ring visitor, stack-allocated because Ring only invokes it inline
			p.ix.Ring(cell, d, func(c int) bool {
				for _, id := range p.cells[c] {
					if id != selfID {
						out = append(out, id)
					}
				}
				return true
			})
		}
	}
	slices.Sort(out)
	p.candBuf = out
	return out
}

// canonical copies the given members into the pool's canonical-view scratch
// and sorts them by ID. Every plan the pool requests — pairwise tests,
// clique candidates, materialized winners — goes through this view, so one
// member set always maps to one member indexing: the DP's (deterministic)
// tie-breaks, the cache key and the extra-time accumulation order all
// agree, whichever node's refresh reached the set first. Valid until the
// next canonical call.
//
//det:hotpath canonicalization guards every plan request; the insertion sort reuses pooled scratch
func (p *Pool) canonical(members ...*order.Order) []*order.Order {
	buf := p.canonBuf[:0]
	buf = append(buf, members...)
	// Insertion sort: k <= MaxGroupSize, no allocation.
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && buf[j].ID < buf[j-1].ID; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	p.canonBuf = buf
	return buf
}

// refreshBest recomputes the order's best shared group: the minimum
// average extra time over cliques (size >= 2) of its neighborhood up to
// MaxGroupSize, each validated by the exact route planner. Singletons are
// deliberately excluded: a fresh order's lone "group" has near-zero extra
// time by construction and would always win, collapsing every strategy
// into immediate solo dispatch.
//
// Candidates are compared cost-only (through the plan cache); group
// materialization is deferred until the enumeration settles, so only
// cliques that actually win — for the refreshed order or for a member
// picked up by the improvement rule below — ever build a RoutePlan.
func (p *Pool) refreshBest(id int, now float64) {
	n, ok := p.nodes[id]
	if !ok {
		return
	}
	bestAvg := math.Inf(1)
	var bestEnt *planEntry
	clear(p.improve)

	consider := func(members []*order.Order) {
		ent := p.planEntryFor(p.canonical(members...), now)
		if !ent.feasible || ent.expiry < now {
			return
		}
		avg := avgExtra(ent.members, ent.svc, now, p.planner.Alpha, p.planner.Beta)
		if avg < bestAvg-1e-9 {
			bestAvg = avg
			bestEnt = ent
		}
		// Improvement-only update for the other members: their stored
		// best was exact before this enumeration and new groups can only
		// lower the minimum, so comparing against the stored value keeps
		// them exact without re-enumerating their own neighborhoods.
		for _, m := range ent.members {
			if m.ID == n.o.ID {
				continue
			}
			st, seen := p.improve[m.ID]
			if !seen {
				st.avg = math.Inf(1)
				if mn := p.nodes[m.ID]; mn != nil && mn.best != nil {
					st.avg = mn.best.AvgExtraTime(now, p.planner.Alpha, p.planner.Beta)
				}
			}
			if avg < st.avg-1e-9 {
				st.avg = avg
				st.ent = ent
				p.improve[m.ID] = st
			} else if !seen {
				p.improve[m.ID] = st
			}
		}
	}

	p.enumerateCliques(n, now, consider)

	// The new best is installed in one shot (never cleared mid-enumeration)
	// so bestVer bumps exactly once per semantic change, not once per
	// refresh that happens to land on the same group.
	var newBest *order.Group
	newExpiry := math.Inf(-1)
	if bestEnt != nil {
		if g := p.groupFor(bestEnt, now); g != nil {
			newBest, newExpiry = g, bestEnt.expiry
		}
	}
	setBest(n, newBest, newExpiry)
	// Deferred member updates: each improved member materializes (or
	// shares) its winning clique's group exactly once. Map iteration order
	// is irrelevant — entries are per-member and group materialization is
	// a pure function of the entry.
	//det:unordered each member's best/bestExpiry is written once from its own entry, and groupFor is a pure function of (entry, now)
	for mid, st := range p.improve {
		if st.ent == nil {
			continue
		}
		mn := p.nodes[mid]
		if mn == nil {
			continue
		}
		if g := p.groupFor(st.ent, now); g != nil {
			setBest(mn, g, st.ent.expiry)
		}
	}
}

func groupContains(g *order.Group, id int) bool {
	for _, o := range g.Orders {
		if o.ID == id {
			return true
		}
	}
	return false
}
