package pool

import (
	"strconv"

	"watter/internal/order"
)

// The clique plan cache exploits two invariants of the exact route DP:
//
//  1. Now-independence. For a fixed member set, `now` enters PlanGroup only
//     through the deadline pruning check `now + t > deadline`. Raising now
//     monotonically shrinks the feasible route set and never adds routes,
//     so while the cached minimal route R* remains dispatchable
//     (now <= τg(R*), i.e. every deadline check along R* still passes), it
//     is still present in the shrunken set and still minimal — a fresh DP
//     at the later now reclaims exactly the same dp values, parents and
//     tie-breaks along R*'s chain. Positive entries (cost, τg, service
//     times, plan) are therefore reusable verbatim until now > τg.
//  2. Monotone infeasibility. A member set with no feasible route at now
//     has none at any later now (the feasible set only shrinks), so a
//     negative entry is permanent until a member leaves the pool.
//
// Both arguments assume the pool's clock never goes backwards, which
// Algorithm 1 guarantees (inserts, ticks and drains advance monotonically).
//
// Keys are the canonical (ascending-ID) member signature; the pool plans
// every clique in canonical member order, so cached and fresh computations
// share one member indexing and stay bit-identical. Entries are evicted
// when any member leaves the pool (Remove/RemoveGroup); a positive entry
// whose τg has passed is replanned in place at the current clock — the
// cheapest route died, but a costlier one may still be live.

// CacheStats counts plan-cache traffic over one pool lifetime.
type CacheStats struct {
	// Hits served a live positive entry; NegativeHits served a permanent
	// negative one. Both avoid a full route DP (and its leg matrix).
	Hits, NegativeHits uint64
	// Misses planned a set for the first time; Renewed replanned a positive
	// entry whose τg had passed; Evicted counts entries dropped because a
	// member left the pool.
	Misses, Renewed, Evicted uint64
	// PlansMaterialized counts full RoutePlan constructions (winning
	// cliques only); PlansReused counts wins served by an already
	// materialized group.
	PlansMaterialized, PlansReused uint64
}

// PlansAvoided is the number of route DPs the cache absorbed.
func (s CacheStats) PlansAvoided() uint64 { return s.Hits + s.NegativeHits }

// HitRate is PlansAvoided over all lookups.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.NegativeHits + s.Misses + s.Renewed
	if total == 0 {
		return 0
	}
	return float64(s.PlansAvoided()) / float64(total)
}

// planEntry memoizes one member set's route DP outcome. members and svc are
// in canonical (ascending-ID) order; group is materialized lazily, only
// when the clique actually wins some order's best-group race.
//
//det:scratch entries are written only by their constructing goroutine before cacheInsert publishes them
type planEntry struct {
	members  []*order.Order
	svc      []float64 // per-member service times T(L(i))
	cost     float64
	expiry   float64 // τg (Eq. 3)
	feasible bool
	group    *order.Group
}

// planCache is the per-pool memo. It is confined to the pool's goroutine,
// like every other piece of pool state.
type planCache struct {
	entries map[string]*planEntry
	// byOrder indexes entry keys by member ID for eviction. Lists may hold
	// stale keys (a co-member was evicted first); deleting those is a
	// no-op.
	byOrder map[int][]string
	stats   CacheStats
}

func newPlanCache() *planCache {
	return &planCache{
		entries: make(map[string]*planEntry),
		byOrder: make(map[int][]string),
	}
}

// memberKey renders the canonical member signature into the pool's reusable
// key buffer. The returned bytes are valid until the next call.
//
//det:hotpath runs once per cache probe inside the clique enumeration and reuses the pool's key buffer
func (p *Pool) memberKey(members []*order.Order) []byte {
	b := p.keyBuf[:0]
	for _, o := range members {
		b = strconv.AppendInt(b, int64(o.ID), 10)
		b = append(b, ',')
	}
	p.keyBuf = b
	return b
}

// planEntryFor returns the plan-cache entry for the canonical member set at
// time now, computing (or renewing) it when needed. With the cache disabled
// it returns a fresh transient entry — the same computation the cached path
// would run on a miss, so both modes are bit-identical decision for
// decision.
func (p *Pool) planEntryFor(canon []*order.Order, now float64) *planEntry {
	if p.cache == nil {
		ent := &planEntry{}
		p.fillEntry(ent, canon, now)
		return ent
	}
	key := p.memberKey(canon)
	if ent, ok := p.cache.entries[string(key)]; ok {
		return p.cacheServe(ent, canon, now)
	}
	ent := &planEntry{}
	p.fillEntry(ent, canon, now)
	p.cacheInsert(key, ent)
	return ent
}

// cacheServe resolves a found entry: negative and live-positive entries are
// returned verbatim; a positive entry whose τg passed is replanned in place
// at the current clock — the cached minimal route can no longer be
// dispatched, but a costlier route may still be feasible. A renewal that
// comes back infeasible turns the entry (permanently) negative.
func (p *Pool) cacheServe(ent *planEntry, canon []*order.Order, now float64) *planEntry {
	switch {
	case !ent.feasible:
		p.cache.stats.NegativeHits++
	case now <= ent.expiry:
		p.cache.stats.Hits++
	default:
		p.cache.stats.Renewed++
		ent.group = nil
		p.fillEntry(ent, canon, now)
	}
	return ent
}

// cacheInsert records a freshly planned entry under the rendered key and
// indexes it per member for eviction.
func (p *Pool) cacheInsert(key []byte, ent *planEntry) {
	p.cache.stats.Misses++
	ks := string(key)
	p.cache.entries[ks] = ent
	for _, o := range ent.members {
		p.cache.byOrder[o.ID] = append(p.cache.byOrder[o.ID], ks)
	}
}

// pairEntryFor is planEntryFor specialized for Insert's pairwise
// shareability test. An infeasible pair creates no edge, and cliques are
// enumerated over edges only, so a failed test's negative outcome (and its
// leg block) can never be looked up again — persisting them would only
// grow the memo. Feasible pairs are cached normally: the refresh that
// follows the insert hits them immediately as 2-cliques.
func (p *Pool) pairEntryFor(a, b *order.Order, now float64) *planEntry {
	canon := p.canonical(a, b)
	if p.cache == nil {
		ent := &planEntry{}
		p.fillEntry(ent, canon, now)
		return ent
	}
	key := p.memberKey(canon)
	if ent, ok := p.cache.entries[string(key)]; ok {
		// Already cached (the partner's earlier edge test).
		return p.cacheServe(ent, canon, now)
	}
	// Probe with a reusable scratch entry: a failed test allocates nothing,
	// a successful one promotes the probe into the cache (and the next test
	// gets a fresh probe).
	ent := p.pairProbe
	if ent == nil {
		ent = &planEntry{members: make([]*order.Order, 0, 2), svc: make([]float64, 2)}
	}
	ent.members = append(ent.members[:0], canon...)
	ent.svc = ent.svc[:len(ent.members)]
	ent.group = nil
	ent.cost, ent.expiry, ent.feasible = p.planner.PlanGroupCost(ent.members, now, p.opt.Capacity, p.legs, ent.svc)
	if !ent.feasible {
		p.pairProbe = ent
		if p.legs != nil {
			p.legs.DropPair(a.ID, b.ID)
		}
		return ent
	}
	p.pairProbe = nil
	p.cacheInsert(key, ent)
	return ent
}

// fillEntry runs the cost-only DP for the set and stores the outcome. The
// entry owns copies of the member slice and service-time row (the caller's
// canon slice is enumeration scratch).
func (p *Pool) fillEntry(ent *planEntry, canon []*order.Order, now float64) {
	if ent.members == nil {
		ent.members = append([]*order.Order(nil), canon...)
		ent.svc = make([]float64, len(canon))
	}
	cost, expiry, ok := p.planner.PlanGroupCost(ent.members, now, p.opt.Capacity, p.legs, ent.svc)
	ent.cost, ent.expiry, ent.feasible = cost, expiry, ok
}

// groupFor materializes (once) the entry's winning group. Only cliques that
// win a best-group race reach here; every losing candidate stays cost-only.
func (p *Pool) groupFor(ent *planEntry, now float64) *order.Group {
	if ent.group != nil {
		if p.cache != nil {
			p.cache.stats.PlansReused++
		}
		return ent.group
	}
	plan, ok := p.planner.PlanGroupShared(ent.members, now, p.opt.Capacity, p.legs)
	if !ok {
		// Unreachable while now <= expiry (the cost-only DP just accepted
		// this set); defensive so a caller bug degrades to "no group".
		return nil
	}
	if p.cache != nil {
		p.cache.stats.PlansMaterialized++
	}
	ent.group = &order.Group{Orders: ent.members, Plan: plan}
	return ent.group
}

// avgExtra is Group.AvgExtraTime computed straight from a cache entry's
// service-time row — the same order.ExtraTime terms in the same
// accumulation order (members are the group's Orders), so the two produce
// the same bits.
func avgExtra(members []*order.Order, svc []float64, now, alpha, beta float64) float64 {
	var sum float64
	for i, o := range members {
		sum += o.ExtraTime(svc[i], now, alpha, beta)
	}
	return sum / float64(len(members))
}

// evictOrder drops every cache entry and leg block involving the order;
// called whenever a node leaves the pool.
func (p *Pool) evictOrder(id int) {
	if p.legs != nil {
		p.legs.Evict(id)
	}
	if p.cache == nil {
		return
	}
	for _, key := range p.cache.byOrder[id] {
		if _, ok := p.cache.entries[key]; ok {
			delete(p.cache.entries, key)
			p.cache.stats.Evicted++
		}
	}
	delete(p.cache.byOrder, id)
}

// CacheStats returns a snapshot of plan-cache counters (zero-valued when
// the cache is disabled).
func (p *Pool) CacheStats() CacheStats {
	if p.cache == nil {
		return CacheStats{}
	}
	return p.cache.stats
}

// CachedPlans reports the number of live plan-cache entries.
func (p *Pool) CachedPlans() int {
	if p.cache == nil {
		return 0
	}
	return len(p.cache.entries)
}

// LegBlocks reports the number of live per-pair leg blocks.
func (p *Pool) LegBlocks() int {
	if p.legs == nil {
		return 0
	}
	return p.legs.Len()
}
