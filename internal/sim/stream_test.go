package sim

import (
	"strings"
	"testing"

	"watter/internal/order"
)

// TestStreamEmptyStream pins the empty-workload semantics the batch
// adapter inherits: no orders and no drain slack means no ticks at all and
// Finish at time zero; a drain slack alone keeps ticks firing through it.
func TestStreamEmptyStream(t *testing.T) {
	env, _ := newTestEnv(1)
	rec := &recorder{}
	m := Run(env, rec, nil, RunOptions{TickEvery: 10})
	if len(rec.ticks) != 0 {
		t.Fatalf("ticks on an empty stream: %v", rec.ticks)
	}
	if rec.finish != 0 || rec.inits != 1 {
		t.Fatalf("finish=%v inits=%d", rec.finish, rec.inits)
	}
	if m.Total != 0 || m.Served != 0 || m.Rejected != 0 {
		t.Fatalf("metrics = %+v", m)
	}

	env2, _ := newTestEnv(1)
	rec2 := &recorder{}
	Run(env2, rec2, nil, RunOptions{TickEvery: 10, DrainSlack: 35})
	if want := []float64{10, 20, 30}; len(rec2.ticks) != len(want) {
		t.Fatalf("drain ticks = %v, want %v", rec2.ticks, want)
	}
	if rec2.finish != 35 {
		t.Fatalf("finish = %v, want the drain slack", rec2.finish)
	}
}

// TestStreamShortDrainSlack pins that DrainSlack overrides the deadline
// horizon even when it is shorter: ticks stop at last release + slack and
// the algorithm must resolve still-pooled orders in Finish, before their
// deadlines would have expired naturally.
func TestStreamShortDrainSlack(t *testing.T) {
	env, net := newTestEnv(1)
	o := mkOrder(net, 1, 5) // deadline = 5 + 2*direct = well past 25
	if o.Deadline <= 25 {
		t.Fatalf("test premise broken: deadline %v", o.Deadline)
	}
	rec := &recorder{}
	Run(env, rec, []*order.Order{o}, RunOptions{TickEvery: 10, DrainSlack: 20})
	if want := []float64{10, 20}; len(rec.ticks) != 2 || rec.ticks[0] != want[0] || rec.ticks[1] != want[1] {
		t.Fatalf("ticks = %v, want %v", rec.ticks, want)
	}
	if rec.finish != 25 { // release 5 + slack 20, NOT the deadline
		t.Fatalf("finish = %v, want 25", rec.finish)
	}
}

// TestStreamTickBoundaryRelease pins the tie-break an order released
// exactly on a tick boundary gets: the tick fires first, then the order
// is delivered at the same timestamp.
func TestStreamTickBoundaryRelease(t *testing.T) {
	env, net := newTestEnv(1)
	rec := &recorder{}
	st, err := NewStream(env, rec, RunOptions{TickEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Submit(mkOrder(net, 1, 10)); err != nil {
		t.Fatal(err)
	}
	if len(rec.ticks) != 1 || rec.ticks[0] != 10 {
		t.Fatalf("ticks before boundary order = %v, want [10]", rec.ticks)
	}
	if len(rec.orders) != 1 || rec.orders[0] != 10 {
		t.Fatalf("order deliveries = %v", rec.orders)
	}
	if _, err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Same cadence through the batch adapter.
	env2, _ := newTestEnv(1)
	rec2 := &recorder{}
	Run(env2, rec2, []*order.Order{mkOrder(net, 2, 10)}, RunOptions{TickEvery: 10})
	if len(rec2.ticks) == 0 || rec2.ticks[0] != 10 || rec2.orders[0] != 10 {
		t.Fatalf("adapter cadence: ticks=%v orders=%v", rec2.ticks, rec2.orders)
	}
}

// TestStreamOrderingAndLifecycle covers the live-ingestion error surface:
// out-of-order submissions, submissions behind a manually advanced clock,
// and use after Close.
func TestStreamOrderingAndLifecycle(t *testing.T) {
	env, net := newTestEnv(1)
	st, err := NewStream(env, &recorder{}, RunOptions{TickEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Submit(mkOrder(net, 1, 25)); err != nil {
		t.Fatal(err)
	}
	if err := st.Submit(mkOrder(net, 2, 12)); err == nil ||
		!strings.Contains(err.Error(), "release order") {
		t.Fatalf("out-of-order submit: %v", err)
	}
	if tk, err := st.Tick(); err != nil || tk != 30 {
		t.Fatalf("manual tick = %v, %v (want 30)", tk, err)
	}
	if err := st.Submit(mkOrder(net, 3, 28)); err == nil {
		t.Fatal("submit behind the advanced clock must fail")
	}
	if err := st.Submit(mkOrder(net, 4, 30)); err != nil {
		t.Fatalf("submit at the advanced clock: %v", err)
	}
	if _, err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Submit(mkOrder(net, 5, 99)); err != ErrStreamClosed {
		t.Fatalf("submit after close: %v", err)
	}
	if _, err := st.Tick(); err != ErrStreamClosed {
		t.Fatalf("tick after close: %v", err)
	}
	if _, err := st.Close(); err != ErrStreamClosed {
		t.Fatalf("double close: %v", err)
	}
}

// TestStreamNegativeRelease pins a legacy admission the redesign must
// not lose: the batch runner simulated orders released before t=0 (the
// clock simply started there), so the monotonicity check only applies
// once an event has actually been delivered.
func TestStreamNegativeRelease(t *testing.T) {
	env, net := newTestEnv(1)
	o := mkOrder(net, 1, 0)
	o.Release, o.Deadline = -5, o.Deadline-5
	rec := &recorder{}
	m := Run(env, rec, []*order.Order{o}, RunOptions{TickEvery: 10})
	if len(rec.orders) != 1 || rec.orders[0] != -5 {
		t.Fatalf("order deliveries = %v", rec.orders)
	}
	if m.Total != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestRunOptionsValidate pins the validation that replaced the silent
// TickEvery coercion: zero, negative and non-finite values are errors,
// and DefaultRunOptions is the blessed default.
func TestRunOptionsValidate(t *testing.T) {
	if err := DefaultRunOptions().Validate(); err != nil {
		t.Fatalf("blessed defaults invalid: %v", err)
	}
	for _, bad := range []RunOptions{
		{},                              // zero TickEvery, previously coerced to 10
		{TickEvery: -1},                 // negative
		{TickEvery: 10, DrainSlack: -5}, // negative drain
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("%+v must not validate", bad)
		}
	}
	env, _ := newTestEnv(1)
	if _, err := NewStream(env, &recorder{}, RunOptions{}); err == nil {
		t.Fatal("NewStream must reject unvalidated options")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Run must panic on invalid options instead of silently coercing")
		}
	}()
	env2, _ := newTestEnv(1)
	Run(env2, &recorder{}, nil, RunOptions{})
}

// TestConfigValidate pins the platform-parameter validation that replaced
// NewEnv's silent defaulting.
func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("blessed defaults invalid: %v", err)
	}
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("zero-value config (previously coerced field by field) must not validate")
	}
	for name, mutate := range map[string]func(*Config){
		"zero grid":      func(c *Config) { c.GridN = 0 },
		"zero capacity":  func(c *Config) { c.Capacity = 0 },
		"zero penalty":   func(c *Config) { c.UnifiedPenaltyFactor = 0 },
		"negative alpha": func(c *Config) { c.Alpha = -1 },
	} {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%s must not validate", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewEnv must panic on invalid config")
		}
	}()
	newTestEnvBad()
}

func newTestEnvBad() {
	env, _ := newTestEnv(1)
	NewEnv(env.Net, nil, Config{})
}
