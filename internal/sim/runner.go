package sim

import (
	"sort"
	"time"

	"watter/internal/order"
)

// Algorithm is a dispatch policy driven by the simulator. Hooks are invoked
// with the environment clock already advanced; implementations dispatch and
// reject through the Env.
type Algorithm interface {
	// Name identifies the algorithm in reports ("WATTER-expect", "GDP", ...).
	Name() string
	// Init is called once before the run.
	Init(env *Env)
	// OnOrder is called when an order is released.
	OnOrder(o *order.Order, now float64)
	// OnTick is called every TickEvery seconds of simulated time (the
	// paper's asynchronous periodic check).
	OnTick(now float64)
	// Finish is called after the last order plus drain period; remaining
	// pooled orders must be dispatched or rejected here.
	Finish(now float64)
}

// RunOptions tunes a simulation run.
type RunOptions struct {
	// TickEvery is the periodic-check interval Δt in seconds (paper
	// default: 10 s).
	TickEvery float64
	// DrainSlack is extra simulated time after the last release during
	// which ticks keep firing so pooled orders resolve. When zero it is
	// derived from the largest order deadline.
	DrainSlack float64
	// MeasureTime enables wall-clock accounting of algorithm hooks
	// (Metrics.DecisionSeconds). Disable inside benchmarks that measure
	// externally.
	MeasureTime bool
}

// DefaultRunOptions returns the paper's Δt = 10 s with time measurement on.
func DefaultRunOptions() RunOptions {
	return RunOptions{TickEvery: 10, MeasureTime: true}
}

// Run replays the order stream through the algorithm and returns the final
// metrics. Orders are admitted in release order; the DirectCost field is
// filled here if unset.
func Run(env *Env, alg Algorithm, orders []*order.Order, opts RunOptions) *Metrics {
	if opts.TickEvery <= 0 {
		opts.TickEvery = 10
	}
	sorted := make([]*order.Order, len(orders))
	copy(sorted, orders)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Release < sorted[j].Release })

	var horizon float64
	for _, o := range sorted {
		if o.DirectCost == 0 {
			o.DirectCost = env.Net.Cost(o.Pickup, o.Dropoff)
		}
		if o.Deadline > horizon {
			horizon = o.Deadline
		}
	}
	if opts.DrainSlack > 0 {
		if len(sorted) > 0 {
			horizon = sorted[len(sorted)-1].Release + opts.DrainSlack
		} else {
			horizon = opts.DrainSlack
		}
	}

	env.Metrics = Metrics{Total: len(sorted)}
	timed := func(fn func()) {
		if !opts.MeasureTime {
			fn()
			return
		}
		start := time.Now()
		fn()
		env.Metrics.DecisionSeconds += time.Since(start).Seconds()
	}

	timed(func() { alg.Init(env) })
	nextTick := opts.TickEvery
	for _, o := range sorted {
		for nextTick <= o.Release {
			env.Clock = nextTick
			t := nextTick
			timed(func() { alg.OnTick(t) })
			nextTick += opts.TickEvery
		}
		env.Clock = o.Release
		oo := o
		timed(func() { alg.OnOrder(oo, oo.Release) })
	}
	for nextTick <= horizon {
		env.Clock = nextTick
		t := nextTick
		timed(func() { alg.OnTick(t) })
		nextTick += opts.TickEvery
	}
	env.Clock = horizon
	timed(func() { alg.Finish(horizon) })
	return &env.Metrics
}
