package sim

import (
	"watter/internal/order"
)

// Algorithm is a dispatch policy driven by the simulator. Hooks are invoked
// with the environment clock already advanced; implementations dispatch and
// reject through the Env.
type Algorithm interface {
	// Name identifies the algorithm in reports ("WATTER-expect", "GDP", ...).
	Name() string
	// Init is called once before the run.
	Init(env *Env)
	// OnOrder is called when an order is released.
	OnOrder(o *order.Order, now float64)
	// OnTick is called every TickEvery seconds of simulated time (the
	// paper's asynchronous periodic check).
	OnTick(now float64)
	// Finish is called after the last order plus drain period; remaining
	// pooled orders must be dispatched or rejected here.
	Finish(now float64)
}

// RunOptions tunes a simulation run.
type RunOptions struct {
	// TickEvery is the periodic-check interval Δt in seconds (paper
	// default: 10 s). Must be positive: there is no silent defaulting —
	// start from DefaultRunOptions.
	TickEvery float64
	// DrainSlack is extra simulated time after the last release during
	// which ticks keep firing so pooled orders resolve. When zero it is
	// derived from the largest order deadline.
	DrainSlack float64
	// MeasureTime enables wall-clock accounting of algorithm hooks
	// (Metrics.DecisionSeconds). Disable inside benchmarks that measure
	// externally.
	MeasureTime bool
}

// DefaultRunOptions returns the paper's Δt = 10 s with time measurement on.
func DefaultRunOptions() RunOptions {
	return RunOptions{TickEvery: 10, MeasureTime: true}
}

// Run is paper-replication mode: it replays a pre-materialized order
// stream through the streaming core (Stream.Replay: clone, stable-sort
// by release, submit, drain) and returns the final metrics. The caller's
// slice — including the orders it points to — is never mutated;
// admission-time enrichment (DirectCost) happens on the stream's private
// copies. Run panics on invalid options: it keeps the historical
// error-free signature, and the validated, error-returning surface is
// the platform constructor.
func Run(env *Env, alg Algorithm, orders []*order.Order, opts RunOptions) *Metrics {
	stream, err := NewStream(env, alg, opts)
	if err != nil {
		panic(err)
	}
	if err := stream.Replay(orders); err != nil {
		panic(err) // nil order, or releases that outrun their own sort
	}
	m, err := stream.Close()
	if err != nil {
		panic(err) // unreachable: Close is the stream's first and last
	}
	return m
}
