package sim

import (
	"testing"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/roadnet"
)

// TestDispatchGroupRejectsDeadlineBreakingApproach is the regression test
// for the approach-offset bug: the plan is deadline-feasible from its first
// pickup, but the only idle worker is so far away that its approach leg
// pushes the dropoff past the deadline. The old code dispatched anyway and
// recorded a served order that physically missed its deadline.
func TestDispatchGroupRejectsDeadlineBreakingApproach(t *testing.T) {
	net := roadnet.NewGridCity(10, 10, 100, 10)
	// Worker 18 blocks (180 s) from the pickup.
	w := &order.Worker{ID: 1, Loc: net.Node(9, 9), Capacity: 4}
	env := NewEnv(net, []*order.Worker{w}, DefaultConfig())
	o := &order.Order{
		ID: 1, Pickup: net.Node(0, 0), Dropoff: net.Node(5, 0), Riders: 1,
		Release: 0, Deadline: 100, WaitLimit: 40, DirectCost: 50,
	}
	plan, ok := env.Planner.PlanGroup([]*order.Order{o}, 0, 4)
	if !ok {
		t.Fatal("plan should be feasible from the pickup")
	}
	g := &order.Group{Orders: []*order.Order{o}, Plan: plan}
	// Slack is 100 - 0 - 50 = 50 s; the approach needs 180 s.
	if env.DispatchGroup(g, 0) {
		t.Fatal("dispatched a group whose worker approach breaks the deadline")
	}
	if env.Metrics.Served != 0 || w.TravelCost != 0 || w.FreeAt != 0 {
		t.Fatalf("failed dispatch mutated state: %+v, worker %+v", env.Metrics, w)
	}

	// Add a worker within the slack: dispatch must succeed and pick it.
	near := &order.Worker{ID: 2, Loc: net.Node(2, 0), Capacity: 4} // 20 s away
	env2 := NewEnv(net, []*order.Worker{w, near}, DefaultConfig())
	if !env2.DispatchGroup(g, 0) {
		t.Fatal("dispatch with a feasible worker failed")
	}
	if near.Served != 1 || w.Served != 0 {
		t.Fatalf("wrong worker dispatched: near %+v far %+v", near, w)
	}
	// Dropoff at approach + service = 20 + 50 = 70 <= deadline 100.
	if near.FreeAt != 70 {
		t.Fatalf("FreeAt = %v, want 70", near.FreeAt)
	}
}

// TestDispatchGroupFallsBackPastGridNearWorker: when the grid-nearest
// worker's road approach blows the deadline, the ring search must keep
// walking and hand the group to a farther-in-grid but road-feasible worker.
func TestDispatchGroupFallsBackPastGridNearWorker(t *testing.T) {
	var b roadnet.GraphBuilder
	pickup := b.AddNode(geo.Point{X: 0, Y: 0})
	drop := b.AddNode(geo.Point{X: 100, Y: 0})
	nearLoc := b.AddNode(geo.Point{X: 50, Y: 0}) // pickup's cell, 500 s by road
	farLoc := b.AddNode(geo.Point{X: 300, Y: 0}) // 3 cells out, 30 s by road
	mid := b.AddNode(geo.Point{X: 200, Y: 0})
	b.AddBidirectional(pickup, drop, 10)
	b.AddBidirectional(pickup, nearLoc, 500)
	b.AddBidirectional(drop, mid, 10)
	b.AddBidirectional(mid, farLoc, 10)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	slow := &order.Worker{ID: 1, Loc: nearLoc, Capacity: 4}
	fast := &order.Worker{ID: 2, Loc: farLoc, Capacity: 4}
	cfg := DefaultConfig()
	cfg.GridN = 4
	env := NewEnv(g, []*order.Worker{slow, fast}, cfg)
	o := &order.Order{
		ID: 1, Pickup: pickup, Dropoff: drop, Riders: 1,
		Release: 0, Deadline: 60, WaitLimit: 20, DirectCost: 10,
	}
	plan, ok := env.Planner.PlanGroup([]*order.Order{o}, 0, 4)
	if !ok {
		t.Fatal("plan infeasible")
	}
	grp := &order.Group{Orders: []*order.Order{o}, Plan: plan}
	// Slack = 60 - 10 = 50 s: the slow worker (500 s) cannot make it, the
	// fast one (30 s) can.
	if !env.DispatchGroup(grp, 0) {
		t.Fatal("dispatch failed despite a feasible worker")
	}
	if fast.Served != 1 || slow.Served != 0 {
		t.Fatalf("dispatched the deadline-breaking worker: slow %+v fast %+v", slow, fast)
	}
}
