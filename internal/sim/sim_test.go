package sim

import (
	"math"
	"testing"

	"watter/internal/order"
	"watter/internal/roadnet"
)

func newTestEnv(m int) (*Env, *roadnet.GridCity) {
	net := roadnet.NewGridCity(10, 10, 100, 10)
	var workers []*order.Worker
	for i := 0; i < m; i++ {
		workers = append(workers, &order.Worker{ID: i + 1, Loc: net.Node(i%10, (i*3)%10), Capacity: 4})
	}
	return NewEnv(net, workers, DefaultConfig()), net
}

func mkOrder(net *roadnet.GridCity, id int, rel float64) *order.Order {
	pu, do := net.Node(0, 0), net.Node(5, 0)
	direct := net.Cost(pu, do)
	return &order.Order{
		ID: id, Pickup: pu, Dropoff: do, Riders: 1,
		Release: rel, Deadline: rel + 2*direct, WaitLimit: 0.8 * direct,
		DirectCost: direct,
	}
}

func TestMetricsDerivations(t *testing.T) {
	m := Metrics{
		Total: 10, Served: 8, Rejected: 2,
		ServedExtra: 800, PenaltySum: 200,
		WorkerTravel: 4000, RejectUnified: 1000,
		DecisionSeconds: 0.5,
	}
	if m.ExtraTime() != 1000 {
		t.Fatalf("Φ = %v", m.ExtraTime())
	}
	if m.UnifiedCost() != 5000 {
		t.Fatalf("UC = %v", m.UnifiedCost())
	}
	if m.ServiceRate() != 0.8 {
		t.Fatalf("rate = %v", m.ServiceRate())
	}
	if m.RunningTime() != 0.05 {
		t.Fatalf("runtime = %v", m.RunningTime())
	}
	var zero Metrics
	if zero.ServiceRate() != 0 || zero.RunningTime() != 0 || zero.AvgGroupSize() != 0 {
		t.Fatal("zero-value metrics must not divide by zero")
	}
}

func TestDispatchGroupAccounting(t *testing.T) {
	env, net := newTestEnv(1)
	o := mkOrder(net, 1, 0)
	plan, ok := env.Planner.PlanGroup([]*order.Order{o}, 20, 4)
	if !ok {
		t.Fatal("plan failed")
	}
	g := &order.Group{Orders: []*order.Order{o}, Plan: plan}
	if !env.DispatchGroup(g, 20) {
		t.Fatal("dispatch failed")
	}
	w := env.Workers[0]
	approach := net.Cost(net.Node(0, 0), o.Pickup) // worker 1 starts at (0,0)
	if math.Abs(w.TravelCost-(approach+plan.Cost)) > 1e-9 {
		t.Fatalf("travel = %v", w.TravelCost)
	}
	if w.FreeAt != 20+approach+plan.Cost {
		t.Fatalf("freeAt = %v", w.FreeAt)
	}
	if w.Loc != o.Dropoff {
		t.Fatalf("loc = %v", w.Loc)
	}
	mt := env.Metrics
	if mt.Served != 1 {
		t.Fatalf("served = %d", mt.Served)
	}
	// response 20, detour 0 for a solo straight-line trip.
	if math.Abs(mt.ResponseSum-20) > 1e-9 || math.Abs(mt.DetourSum) > 1e-9 {
		t.Fatalf("response %v detour %v", mt.ResponseSum, mt.DetourSum)
	}
	if mt.GroupSizeHist[1] != 1 {
		t.Fatalf("hist = %v", mt.GroupSizeHist)
	}
	// Worker is now busy: a second dispatch must fail.
	if env.DispatchGroup(g, 21) {
		t.Fatal("busy worker accepted a second group")
	}
}

func TestDispatchGroupCapacityFilter(t *testing.T) {
	env, net := newTestEnv(1)
	env.Workers[0].Capacity = 1
	o := mkOrder(net, 1, 0)
	o.Riders = 2
	plan, _ := env.Planner.PlanGroup([]*order.Order{o}, 0, 4)
	g := &order.Group{Orders: []*order.Order{o}, Plan: plan}
	if env.DispatchGroup(g, 0) {
		t.Fatal("worker with 1 seat accepted 2 riders")
	}
}

func TestRejectAccounting(t *testing.T) {
	env, net := newTestEnv(0)
	o := mkOrder(net, 1, 0)
	env.Reject(o, 100)
	mt := env.Metrics
	if mt.Rejected != 1 {
		t.Fatalf("rejected = %d", mt.Rejected)
	}
	if math.Abs(mt.PenaltySum-o.Penalty()) > 1e-9 {
		t.Fatalf("penalty = %v", mt.PenaltySum)
	}
	if math.Abs(mt.RejectUnified-10*o.DirectCost) > 1e-9 {
		t.Fatalf("unified reject = %v", mt.RejectUnified)
	}
}

// recorder is a minimal Algorithm capturing hook invocations.
type recorder struct {
	inits   int
	orders  []float64
	ticks   []float64
	finish  float64
	env     *Env
	serveIt bool
}

func (r *recorder) Name() string { return "recorder" }
func (r *recorder) Init(env *Env) {
	r.inits++
	r.env = env
}
func (r *recorder) OnOrder(o *order.Order, now float64) {
	r.orders = append(r.orders, now)
	if r.serveIt {
		plan, ok := r.env.Planner.PlanGroup([]*order.Order{o}, now, 4)
		if ok {
			g := &order.Group{Orders: []*order.Order{o}, Plan: plan}
			if !r.env.DispatchGroup(g, now) {
				r.env.Reject(o, now)
			}
		} else {
			r.env.Reject(o, now)
		}
	} else {
		r.env.Reject(o, now)
	}
}
func (r *recorder) OnTick(now float64) { r.ticks = append(r.ticks, now) }
func (r *recorder) Finish(now float64) { r.finish = now }

func TestRunnerTickCadenceAndOrdering(t *testing.T) {
	env, net := newTestEnv(2)
	orders := []*order.Order{mkOrder(net, 1, 25), mkOrder(net, 2, 5), mkOrder(net, 3, 47)}
	rec := &recorder{}
	m := Run(env, rec, orders, RunOptions{TickEvery: 10})
	if rec.inits != 1 {
		t.Fatalf("inits = %d", rec.inits)
	}
	// Orders must arrive sorted by release.
	want := []float64{5, 25, 47}
	for i, w := range want {
		if rec.orders[i] != w {
			t.Fatalf("order times = %v", rec.orders)
		}
	}
	// Ticks at 10,20 before order@25, 30,40 before @47, then drain to the
	// horizon (max deadline).
	if len(rec.ticks) < 4 {
		t.Fatalf("ticks = %v", rec.ticks)
	}
	for i, tk := range rec.ticks {
		if tk != float64(10*(i+1)) {
			t.Fatalf("tick %d = %v", i, tk)
		}
	}
	if m.Total != 3 || m.Rejected != 3 {
		t.Fatalf("metrics = %+v", m)
	}
	if rec.finish == 0 {
		t.Fatal("finish not called")
	}
}

// TestRunnerLeavesCallerOrdersUntouched pins the batch adapter's ownership
// contract: admission-time enrichment (DirectCost) happens on the stream's
// private clones, never through the caller's pointers — while the
// simulation itself still sees the enriched value (the rejection penalty
// is 10 × the true direct cost, not zero).
func TestRunnerLeavesCallerOrdersUntouched(t *testing.T) {
	env, net := newTestEnv(1)
	o := mkOrder(net, 1, 0)
	o.DirectCost = 0
	before := *o
	m := Run(env, &recorder{}, []*order.Order{o}, RunOptions{TickEvery: 10})
	if *o != before {
		t.Fatalf("caller's order mutated: %+v -> %+v", before, *o)
	}
	if want := 10 * net.Cost(o.Pickup, o.Dropoff); m.RejectUnified != want {
		t.Fatalf("admission enrichment lost: RejectUnified = %v, want %v", m.RejectUnified, want)
	}
}

func TestRunnerMeasuresTime(t *testing.T) {
	env, net := newTestEnv(1)
	m := Run(env, &recorder{}, []*order.Order{mkOrder(net, 1, 0)}, RunOptions{TickEvery: 10, MeasureTime: true})
	if m.DecisionSeconds <= 0 {
		t.Fatal("decision time not measured")
	}
	env2, _ := newTestEnv(1)
	m2 := Run(env2, &recorder{}, []*order.Order{mkOrder(net, 1, 0)}, RunOptions{TickEvery: 10})
	if m2.DecisionSeconds != 0 {
		t.Fatal("timing must be off by default")
	}
}

func TestObserversFire(t *testing.T) {
	env, net := newTestEnv(3)
	var served, rejected int
	env.SetObservers(
		func(g *order.Group, now float64) { served += len(g.Orders) },
		func(o *order.Order, now float64) { rejected++ },
	)
	rec := &recorder{serveIt: true}
	orders := []*order.Order{mkOrder(net, 1, 0), mkOrder(net, 2, 1)}
	m := Run(env, rec, orders, RunOptions{TickEvery: 10})
	if served != m.Served || rejected != m.Rejected {
		t.Fatalf("observers saw %d/%d, metrics %d/%d", served, rejected, m.Served, m.Rejected)
	}
	if served+rejected != 2 {
		t.Fatalf("total outcomes %d", served+rejected)
	}
}

func TestDispatchGroupWith(t *testing.T) {
	env, net := newTestEnv(2)
	o := mkOrder(net, 1, 0)
	w := env.Workers[1]
	plan, ok := env.Planner.PlanGroupFrom([]*order.Order{o}, 0, 4, w.Loc)
	if !ok {
		t.Fatal("anchored plan failed")
	}
	g := &order.Group{Orders: []*order.Order{o}, Plan: plan}
	if !env.DispatchGroupWith(w, g, 0) {
		t.Fatal("dispatch-with failed")
	}
	if math.Abs(w.TravelCost-plan.Cost) > 1e-9 {
		t.Fatalf("anchored travel = %v, want %v", w.TravelCost, plan.Cost)
	}
	// Busy specific worker refuses.
	if env.DispatchGroupWith(w, g, 1) {
		t.Fatal("busy worker accepted")
	}
}
