// Package sim is the ridesharing platform simulator: it owns the clock, the
// worker fleet and the metric accounting, and drives any dispatch algorithm
// (the WATTER variants and the GDP/GAS baselines) over an online order
// stream. The four reported measurements match the paper's Section VII-A:
// Extra Time, Unified Cost, Service Rate and Running Time.
package sim

import (
	"fmt"
	"math"

	"watter/internal/geo"
	"watter/internal/gridindex"
	"watter/internal/order"
	"watter/internal/roadnet"
	"watter/internal/route"
)

// Metrics accumulates the paper's four measurements plus the raw terms they
// are derived from.
type Metrics struct {
	Total    int // |O|
	Served   int // |O+|
	Rejected int // |O-|

	// ServedExtra is Σ t_e over served orders; PenaltySum is Σ p(i) over
	// rejected orders. ExtraTime (the METRS objective Φ, Eq. 2) is their sum.
	ServedExtra float64
	PenaltySum  float64

	// ResponseSum and DetourSum decompose ServedExtra (alpha=beta=1).
	ResponseSum float64
	DetourSum   float64

	// WorkerTravel is total driving seconds across the fleet.
	// RejectUnified is the Unified Cost penalty term: 10 x cost(lp,ld) per
	// rejected order (Section VII-A, following [9]). UnifiedCost is their sum.
	WorkerTravel  float64
	RejectUnified float64

	// DecisionSeconds is the cumulative wall-clock time the algorithm spent
	// inside its hooks; RunningTime() reports the per-order average.
	DecisionSeconds float64

	// GroupSizeHist[k] counts dispatched groups with k orders (k capped at 8).
	GroupSizeHist [9]int
}

// ExtraTime returns the METRS objective Φ(W, O) (Eq. 2).
func (m *Metrics) ExtraTime() float64 { return m.ServedExtra + m.PenaltySum }

// UnifiedCost returns worker travel plus rejection penalties (per [9]).
func (m *Metrics) UnifiedCost() float64 { return m.WorkerTravel + m.RejectUnified }

// ServiceRate returns |O+| / |O| in [0,1].
func (m *Metrics) ServiceRate() float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Served) / float64(m.Total)
}

// RunningTime returns the average algorithm running time per order in
// seconds (the paper's Running Time metric).
func (m *Metrics) RunningTime() float64 {
	if m.Total == 0 {
		return 0
	}
	return m.DecisionSeconds / float64(m.Total)
}

// AvgGroupSize returns the mean dispatched group size.
func (m *Metrics) AvgGroupSize() float64 {
	groups, orders := 0, 0
	for k, c := range m.GroupSizeHist {
		groups += c
		orders += k * c
	}
	if groups == 0 {
		return 0
	}
	return float64(orders) / float64(groups)
}

// Config fixes the experiment-level parameters shared by all algorithms.
type Config struct {
	Alpha, Beta float64 // extra-time trade-off (paper default 1, 1)
	// UnifiedPenaltyFactor multiplies cost(lp,ld) for rejected orders in
	// Unified Cost; the paper uses 10.
	UnifiedPenaltyFactor float64
	// GridN is the side of the spatial index (paper default 10).
	GridN int
	// Capacity is the default vehicle capacity used for group-size limits
	// when planning before a concrete worker is chosen.
	Capacity int
}

// DefaultConfig returns the paper's default parameters.
func DefaultConfig() Config {
	return Config{Alpha: 1, Beta: 1, UnifiedPenaltyFactor: 10, GridN: 10, Capacity: 4}
}

// Env is the platform state visible to dispatch algorithms.
type Env struct {
	Net     roadnet.Network
	Planner *route.Planner
	Index   *gridindex.Index
	WIndex  *gridindex.WorkerIndex
	Workers []*order.Worker
	Cfg     Config

	Clock   float64
	Metrics Metrics

	// onServe/onReject let learners observe outcomes (experience
	// generation); nil outside training.
	onServe  func(g *order.Group, now float64)
	onReject func(o *order.Order, now float64)

	// sink receives dispatch-level outcomes for the event bus; nil
	// outside platform-driven runs. Installed via Stream.SetSink.
	sink EventSink
}

// Validate rejects parameter values the simulator cannot honor. There is
// no silent defaulting: DefaultConfig is the one blessed source of
// defaults, and deviations must be explicit.
func (c Config) Validate() error {
	switch {
	case c.Alpha < 0 || math.IsNaN(c.Alpha) || math.IsInf(c.Alpha, 0):
		return fmt.Errorf("sim: Alpha must be finite and non-negative, got %v", c.Alpha)
	case c.Beta < 0 || math.IsNaN(c.Beta) || math.IsInf(c.Beta, 0):
		return fmt.Errorf("sim: Beta must be finite and non-negative, got %v", c.Beta)
	case c.UnifiedPenaltyFactor <= 0 || math.IsNaN(c.UnifiedPenaltyFactor) || math.IsInf(c.UnifiedPenaltyFactor, 0):
		return fmt.Errorf("sim: UnifiedPenaltyFactor must be positive, got %v (the paper uses 10; start from DefaultConfig)", c.UnifiedPenaltyFactor)
	case c.GridN < 1:
		return fmt.Errorf("sim: GridN must be at least 1, got %d", c.GridN)
	case c.Capacity < 1:
		return fmt.Errorf("sim: Capacity must be at least 1, got %d", c.Capacity)
	}
	return nil
}

// NewEnv builds an environment over the network and worker fleet. Workers
// are used in place (their FreeAt/Loc fields mutate during a run). The
// config must be valid (see Config.Validate); NewEnv panics on invalid
// parameters — the platform constructor is the error-returning surface.
func NewEnv(net roadnet.Network, workers []*order.Worker, cfg Config) *Env {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	ix := gridindex.New(net, cfg.GridN)
	planner := &route.Planner{Net: net, Alpha: cfg.Alpha, Beta: cfg.Beta}
	return &Env{
		Net:     net,
		Planner: planner,
		Index:   ix,
		WIndex:  gridindex.NewWorkerIndex(ix, net, workers),
		Workers: workers,
		Cfg:     cfg,
	}
}

// SetObservers registers outcome callbacks (used by offline training).
func (e *Env) SetObservers(onServe func(*order.Group, float64), onReject func(*order.Order, float64)) {
	e.onServe = onServe
	e.onReject = onReject
}

// ClosestIdleWorker returns the nearest idle worker with enough seats, or
// nil when none exists.
func (e *Env) ClosestIdleWorker(node geo.NodeID, riders int) *order.Worker {
	return e.WIndex.ClosestIdle(node, e.Clock, riders)
}

// DispatchGroup assigns the group to the closest idle worker with enough
// capacity, updates the worker timeline and accounts all per-order metrics.
// Returns false (and records nothing) when no worker is available.
//
// Timing model: the paper measures response time until the platform
// notifies the rider (t_n = dispatch time) and T(L(i)) from the route's
// first stop. The worker's approach travel to the first stop therefore
// counts toward worker travel (Unified Cost) and the worker's busy window,
// but not toward rider extra time.
//
// The plan's arrival offsets are measured from the route's first stop, so
// the chosen worker's approach leg shifts every dropoff by the same amount.
// Deadline feasibility is therefore re-checked here with the approach
// included: only workers whose travel time to the first stop fits within
// the group's deadline slack are candidates, and the ring search falls
// through to the next-nearest worker when a closer one does not fit.
func (e *Env) DispatchGroup(g *order.Group, now float64) bool {
	if g == nil || g.Plan == nil || len(g.Orders) == 0 {
		return false
	}
	slack := approachSlack(g, now)
	if slack < 0 {
		return false // the plan itself is already past a deadline
	}
	w, approach := e.WIndex.ClosestIdleWithin(g.Plan.Stops[0].Node, now, g.Riders(), slack)
	if w == nil {
		return false
	}
	e.commitGroup(w, approach, g, now)
	return true
}

// DispatchGroupTo is DispatchGroup with a pre-selected worker and its
// already-verified approach travel time (from the caller's own
// ClosestIdleWithin probe against the group's deadline slack); it commits
// without repeating the ring search. The worker must still be idle.
func (e *Env) DispatchGroupTo(w *order.Worker, approach float64, g *order.Group, now float64) bool {
	if g == nil || g.Plan == nil || len(g.Orders) == 0 || w == nil || !w.IdleAt(now) {
		return false
	}
	if math.IsInf(approach, 1) {
		return false
	}
	e.commitGroup(w, approach, g, now)
	return true
}

// commitGroup books the group on the worker and accounts all metrics.
func (e *Env) commitGroup(w *order.Worker, approach float64, g *order.Group, now float64) {
	w.TravelCost += approach + g.Plan.Cost
	w.FreeAt = now + approach + g.Plan.Cost
	w.Loc = g.Plan.Stops[len(g.Plan.Stops)-1].Node
	w.Served++
	e.WIndex.Update(w)

	e.Metrics.WorkerTravel += approach + g.Plan.Cost
	for _, o := range g.Orders {
		st, ok := g.Plan.ServiceTime(o.ID)
		if !ok {
			continue
		}
		response := now - o.Release
		detour := st - o.DirectCost
		e.Metrics.Served++
		e.Metrics.ResponseSum += response
		e.Metrics.DetourSum += detour
		e.Metrics.ServedExtra += e.Cfg.Alpha*detour + e.Cfg.Beta*response
	}
	k := len(g.Orders)
	if k >= len(e.Metrics.GroupSizeHist) {
		k = len(e.Metrics.GroupSizeHist) - 1
	}
	e.Metrics.GroupSizeHist[k]++
	if e.sink != nil {
		e.sink.GroupDispatched(w, g, approach, now)
	}
	if e.onServe != nil {
		e.onServe(g, now)
	}
}

// approachSlack returns the largest approach travel time a worker may add
// in front of the group's route without any member missing its deadline:
// min over dropoffs of (deadline - now - arrival offset). Negative when the
// plan is stale (some deadline is unreachable even with a zero approach).
func approachSlack(g *order.Group, now float64) float64 {
	slack := math.Inf(1)
	for i, s := range g.Plan.Stops {
		if s.Kind != order.DropoffStop {
			continue
		}
		for _, o := range g.Orders {
			if o.ID != s.OrderID {
				continue
			}
			if sl := o.Deadline - now - g.Plan.Arrive[i]; sl < slack {
				slack = sl
			}
			break
		}
	}
	return slack
}

// DispatchGroupWith assigns the group to a specific worker. The group's
// plan must be anchored at the worker's current location (built with
// PlanGroupFrom), so Plan.Cost already includes the approach leg. Used by
// the batch baseline, which chooses workers itself.
func (e *Env) DispatchGroupWith(w *order.Worker, g *order.Group, now float64) bool {
	if g == nil || g.Plan == nil || len(g.Orders) == 0 || !w.IdleAt(now) {
		return false
	}
	w.TravelCost += g.Plan.Cost
	w.FreeAt = now + g.Plan.Cost
	w.Loc = g.Plan.Stops[len(g.Plan.Stops)-1].Node
	w.Served++
	e.WIndex.Update(w)

	e.Metrics.WorkerTravel += g.Plan.Cost
	for _, o := range g.Orders {
		st, ok := g.Plan.ServiceTime(o.ID)
		if !ok {
			continue
		}
		response := now - o.Release
		detour := st - o.DirectCost
		e.Metrics.Served++
		e.Metrics.ResponseSum += response
		e.Metrics.DetourSum += detour
		e.Metrics.ServedExtra += e.Cfg.Alpha*detour + e.Cfg.Beta*response
	}
	k := len(g.Orders)
	if k >= len(e.Metrics.GroupSizeHist) {
		k = len(e.Metrics.GroupSizeHist) - 1
	}
	e.Metrics.GroupSizeHist[k]++
	if e.sink != nil {
		// The plan is worker-anchored: the approach leg is folded into
		// Plan.Cost, so the event reports it as zero.
		e.sink.GroupDispatched(w, g, 0, now)
	}
	if e.onServe != nil {
		e.onServe(g, now)
	}
	return true
}

// ServeWithWorker charges travel to a specific worker without group
// accounting; the GDP baseline (whose workers run evolving multi-order
// schedules) uses it together with ServeOrder.
func (e *Env) ServeWithWorker(w *order.Worker, addedTravel float64) {
	w.TravelCost += addedTravel
	e.Metrics.WorkerTravel += addedTravel
}

// ServeOrder records a single served order with explicit response and
// detour times; w is the worker whose evolving schedule delivered it, or
// nil when no single worker is attributable (used by schedule-based
// baselines).
func (e *Env) ServeOrder(w *order.Worker, o *order.Order, response, detour float64) {
	e.Metrics.Served++
	e.Metrics.ResponseSum += response
	e.Metrics.DetourSum += detour
	e.Metrics.ServedExtra += e.Cfg.Alpha*detour + e.Cfg.Beta*response
	e.Metrics.GroupSizeHist[1]++
	if e.sink != nil {
		e.sink.OrderServed(w, o, response, detour, e.Clock)
	}
	if e.onServe != nil {
		g := &order.Group{Orders: []*order.Order{o}}
		e.onServe(g, e.Clock)
	}
}

// Reject records a rejected order: METRS penalty p(i) plus the Unified
// Cost rejection term.
func (e *Env) Reject(o *order.Order, now float64) {
	e.Metrics.Rejected++
	e.Metrics.PenaltySum += o.Penalty()
	e.Metrics.RejectUnified += e.Cfg.UnifiedPenaltyFactor * o.DirectCost
	if e.sink != nil {
		e.sink.OrderRejected(o, o.Penalty(), e.Cfg.UnifiedPenaltyFactor*o.DirectCost, now)
	}
	if e.onReject != nil {
		e.onReject(o, now)
	}
}

// String summarizes the metrics in one line.
func (m *Metrics) String() string {
	return fmt.Sprintf("served=%d rejected=%d extra=%.0fs unified=%.0f rate=%.3f runtime=%.6fs/order",
		m.Served, m.Rejected, m.ExtraTime(), m.UnifiedCost(), m.ServiceRate(), m.RunningTime())
}
