package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"watter/internal/order"
)

// EventSink receives the simulator's dispatch-level outcomes as they
// happen. The platform layer installs one to publish typed events; nil
// sinks cost nothing. Sink callbacks run synchronously on the simulation
// goroutine, inside the event that produced them, so implementations must
// not call back into the Env or Stream.
type EventSink interface {
	// OrderAdmitted fires when an order enters the platform, before the
	// algorithm sees it. DirectCost is already enriched.
	OrderAdmitted(o *order.Order, now float64)
	// GroupDispatched fires when a group (possibly a singleton) is booked
	// on a worker. approach is the worker's travel time to the route's
	// first stop; for worker-anchored plans it is zero and the approach is
	// folded into g.Plan.Cost.
	GroupDispatched(w *order.Worker, g *order.Group, approach, now float64)
	// OrderServed fires when a schedule-based baseline completes one
	// order inside a worker's evolving multi-order schedule, with the
	// response and detour seconds it charged; w may be nil when no single
	// worker is attributable.
	OrderServed(w *order.Worker, o *order.Order, response, detour, now float64)
	// OrderRejected fires when an order is rejected, with its METRS
	// penalty p(i) and the Unified Cost rejection term.
	OrderRejected(o *order.Order, penalty, unified, now float64)
	// TickCompleted fires after each periodic check, with a snapshot of
	// the metrics accumulated so far.
	TickCompleted(now float64, m Metrics)
}

// ErrStreamClosed is returned by Stream operations after Close.
var ErrStreamClosed = errors.New("sim: stream closed")

// Stream is the streaming simulation core: it owns the clock and the tick
// cadence, admits orders one at a time, and drives the algorithm's hooks
// exactly as the batch replay did — the batch Run is a thin adapter over
// it, and produces bit-identical metrics.
//
// Scheduling contract (pinned by TestStreamEdgeCases and the replay
// equivalence property test):
//
//   - ticks fire at Δt, 2Δt, ... ; every tick with time <= an order's
//     release fires before that order is delivered (an order released
//     exactly on a tick boundary arrives after that tick),
//   - orders must be submitted in non-decreasing release order, never in
//     the past of the advanced clock,
//   - Close drains: ticks keep firing up to the horizon — the largest
//     deadline seen, or last release + DrainSlack when DrainSlack > 0
//     (DrainSlack overrides the deadline horizon even when shorter) —
//     then Finish runs at the horizon.
type Stream struct {
	env  *Env
	alg  Algorithm
	opts RunOptions
	sink EventSink

	clock       float64 // last delivered event time
	delivered   bool    // whether any event has been delivered (clock is meaningful)
	nextTick    float64
	maxDeadline float64
	lastRelease float64
	submitted   int
	started     bool
	closed      bool
}

// NewStream validates the options and returns a ready stream. The
// environment's metrics are reset when the first event is delivered.
func NewStream(env *Env, alg Algorithm, opts RunOptions) (*Stream, error) {
	if env == nil {
		return nil, errors.New("sim: nil environment")
	}
	if alg == nil {
		return nil, errors.New("sim: nil algorithm")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Stream{env: env, alg: alg, opts: opts}, nil
}

// SetSink installs the event sink. Must be called before the first
// Submit/Tick/Close so no event is missed.
func (s *Stream) SetSink(sink EventSink) {
	s.sink = sink
	s.env.sink = sink
}

// Env exposes the underlying environment (observer registration, metrics).
func (s *Stream) Env() *Env { return s.env }

// Alg returns the algorithm the stream drives.
func (s *Stream) Alg() Algorithm { return s.alg }

// Clock returns the simulation time of the last delivered event.
func (s *Stream) Clock() float64 { return s.clock }

// start lazily initializes the run on the first event.
func (s *Stream) start() {
	if s.started {
		return
	}
	s.started = true
	s.env.Metrics = Metrics{}
	s.nextTick = s.opts.TickEvery
	s.timed(func() { s.alg.Init(s.env) })
}

// timed wraps a hook invocation with optional wall-clock accounting.
func (s *Stream) timed(fn func()) {
	if !s.opts.MeasureTime {
		fn()
		return
	}
	start := time.Now() //det:wallclock opt-in measured-time plumbing behind MeasureTime (platform.WithMeasuredTime)
	fn()
	//det:wallclock DecisionSeconds is the one documented wall-clock Metrics field, excluded from every bit-identity comparison
	s.env.Metrics.DecisionSeconds += time.Since(start).Seconds()
}

// Submit admits one order: all pending ticks up to its release fire
// first, then the algorithm's OnOrder hook runs at the release time. The
// stream owns admission-time enrichment — DirectCost is filled here when
// unset, on the submitted order (ownership passes to the platform; batch
// callers who need their slices untouched go through Run, which clones).
func (s *Stream) Submit(o *order.Order) error {
	if s.closed {
		return ErrStreamClosed
	}
	if o == nil {
		return errors.New("sim: nil order")
	}
	s.start()
	// Monotonicity is checked against delivered events only: before the
	// first one the clock is not meaningful, so negative releases are
	// admissible exactly as they were in the pre-redesign batch runner.
	if s.delivered && o.Release < s.clock {
		return fmt.Errorf("sim: order %d released at %.1f, but the clock is already at %.1f (orders must arrive in release order)",
			o.ID, o.Release, s.clock)
	}
	for s.nextTick <= o.Release {
		s.fireTick()
	}
	s.env.Clock = o.Release
	s.clock = o.Release
	s.delivered = true
	if o.DirectCost == 0 {
		o.DirectCost = s.env.Net.Cost(o.Pickup, o.Dropoff)
	}
	s.env.Metrics.Total++
	s.submitted++
	s.lastRelease = o.Release
	if o.Deadline > s.maxDeadline {
		s.maxDeadline = o.Deadline
	}
	if s.sink != nil {
		s.sink.OrderAdmitted(o, o.Release)
	}
	s.timed(func() { s.alg.OnOrder(o, o.Release) })
	return nil
}

// Replay feeds a pre-materialized batch workload into the stream: orders
// are cloned (the caller's slice — and the orders it points to — are
// never mutated) and stable-sorted by release before submission. This is
// the one implementation of the batch-over-streaming-core path; Run and
// Platform.Replay both delegate here, so the bit-identical replay
// contract lives in exactly one place. The stream stays open: callers
// drain with Close.
func (s *Stream) Replay(orders []*order.Order) error {
	sorted := make([]*order.Order, len(orders))
	for i, o := range orders {
		if o == nil {
			return fmt.Errorf("sim: order %d is nil", i)
		}
		c := *o
		sorted[i] = &c
	}
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Release < sorted[j].Release })
	for _, o := range sorted {
		if err := s.Submit(o); err != nil {
			return err
		}
	}
	return nil
}

// Tick fires the next periodic check immediately, regardless of pending
// orders, and returns its simulation time. Live feeds use it to let the
// platform make progress while no orders arrive.
func (s *Stream) Tick() (float64, error) {
	if s.closed {
		return 0, ErrStreamClosed
	}
	s.start()
	t := s.nextTick
	s.fireTick()
	return t, nil
}

// fireTick advances the clock to the next tick boundary and runs the
// periodic check there.
func (s *Stream) fireTick() {
	t := s.nextTick
	s.env.Clock = t
	s.clock = t
	s.delivered = true
	s.timed(func() { s.alg.OnTick(t) })
	s.nextTick += s.opts.TickEvery
	if s.sink != nil {
		s.sink.TickCompleted(t, s.env.Metrics)
	}
}

// Horizon returns the drain horizon Close would use right now: the
// largest deadline seen, or last release + DrainSlack when DrainSlack is
// set.
func (s *Stream) Horizon() float64 {
	horizon := s.maxDeadline
	if s.opts.DrainSlack > 0 {
		if s.submitted > 0 {
			horizon = s.lastRelease + s.opts.DrainSlack
		} else {
			horizon = s.opts.DrainSlack
		}
	}
	if horizon < s.clock {
		horizon = s.clock
	}
	return horizon
}

// Close drains the stream — remaining ticks fire through the horizon,
// then the algorithm's Finish hook resolves every still-pooled order —
// and returns the final metrics. The stream accepts no further events.
func (s *Stream) Close() (*Metrics, error) {
	if s.closed {
		return nil, ErrStreamClosed
	}
	s.start()
	s.closed = true
	horizon := s.Horizon()
	for s.nextTick <= horizon {
		s.fireTick()
	}
	s.env.Clock = horizon
	s.clock = horizon
	s.timed(func() { s.alg.Finish(horizon) })
	return &s.env.Metrics, nil
}

// Validate rejects option values the scheduler cannot honor. There is no
// silent defaulting: DefaultRunOptions is the one blessed source of
// defaults, and anything else must be explicit.
func (o RunOptions) Validate() error {
	if o.TickEvery <= 0 || math.IsInf(o.TickEvery, 0) || math.IsNaN(o.TickEvery) {
		return fmt.Errorf("sim: TickEvery must be a positive duration, got %v (use DefaultRunOptions for the paper's Δt = 10 s)", o.TickEvery)
	}
	if o.DrainSlack < 0 || math.IsInf(o.DrainSlack, 0) || math.IsNaN(o.DrainSlack) {
		return fmt.Errorf("sim: DrainSlack must be finite and non-negative, got %v", o.DrainSlack)
	}
	return nil
}
