package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// orderFree reports whether a map-range loop's body is order-insensitive
// by construction — i.e. executing the iterations in any order provably
// yields bit-identical program state. The classifier is deliberately
// conservative: anything it cannot prove is reported, and the author
// either rewrites the loop over sorted keys or justifies it with
// //det:unordered.
//
// The allowed statement forms and the argument for each:
//
//   - integer accumulation (x++, x--, x += e, x -= e, x *= e, x |= e,
//     x &= e, x ^= e, x &^= e): two's-complement add/sub/mul and the
//     bitwise ops are commutative and associative, so the fold result is
//     order-independent. Floating-point is NOT accepted — float addition
//     does not associate; that exact shape was PR 1's nondeterminism bug
//     and is floatrange's target.
//   - writes keyed by the loop key (dst[k] = e): source keys are unique,
//     so no destination entry is written twice and writes commute.
//   - loop-invariant writes (dst[e1] = e2, x = const): colliding writes
//     store identical values, so order cannot matter.
//   - delete(dst, e) with pure arguments: deleting a set of keys
//     commutes; repeated deletes are idempotent.
//   - integer/string min-max (if x > best { best = x }): the fold
//     computes an order-free extremum and ties carry identical values.
//     Floats are excluded: 0.0 == -0.0 compares equal with distinct
//     bits, so a float extremum is not bit-stable under reordering.
//   - collect-then-sort (xs = append(xs, e) with the slice canonically
//     sorted before its next use after the loop): the loop produces a
//     deterministic multiset and the explicit sort fixes the order. The
//     comparator of a SortFunc/sort.Slice variant is trusted to totally
//     order the collected elements — that obligation is DESIGN.md §11's
//     review checklist, a far smaller surface than the whole loop.
//   - assignments to loop-local variables, if/switch with pure
//     conditions, nested loops over pure operands, and bare continue:
//     these neither read nor write state that survives an iteration in
//     an order-dependent way.
//
// Everything else — unsorted appends to outer slices, function and
// method calls, returns/breaks (they make the result depend on which
// iteration runs first), closures, channel ops — fails the
// classification.
func orderFree(pass *Pass, rng *ast.RangeStmt, ancestors []ast.Node) bool {
	if rng.Tok == token.ASSIGN {
		// Key/value assigned to outer variables: their final value after
		// the loop depends on iteration order.
		return false
	}
	c := &classifier{pass: pass, locals: make(map[types.Object]bool)}
	c.collectLocals(rng)
	c.sortedLater = func(obj types.Object) bool {
		return sortedBeforeUse(pass, c, rng, ancestors, obj)
	}
	return c.okStmt(rng.Body)
}

type classifier struct {
	pass *Pass
	// locals holds every object declared inside the loop (including the
	// key/value variables): per-iteration state, free to mutate.
	locals map[types.Object]bool
	// sortedLater reports whether the slice object is canonically sorted
	// after the loop before any other use (nil when the caller has no
	// post-loop context, e.g. floatrange's accumulator scan).
	sortedLater func(types.Object) bool
}

// collectLocals records every definition inside the loop body plus the
// range key/value variables themselves.
func (c *classifier) collectLocals(rng *ast.RangeStmt) {
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
				c.locals[obj] = true
			}
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
				c.locals[obj] = true
			}
		}
		return true
	})
}

func (c *classifier) okStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return true
	case *ast.BlockStmt:
		for _, st := range s.List {
			if !c.okStmt(st) {
				return false
			}
		}
		return true
	case *ast.IncDecStmt:
		return c.pure(s.X) && (c.isLocal(s.X) || c.isInteger(s.X))
	case *ast.AssignStmt:
		return c.okAssign(s)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if !c.pure(v) {
					return false
				}
			}
		}
		return true
	case *ast.ExprStmt:
		// delete(dst, k) — deletions of a key set commute and repeat
		// idempotently.
		if call, ok := s.X.(*ast.CallExpr); ok && c.isBuiltin(call, "delete") {
			return c.pureAll(call.Args)
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !c.okStmt(s.Init) {
			return false
		}
		if c.minMaxPattern(s) {
			return true
		}
		return c.pure(s.Cond) && c.okStmt(s.Body) && c.okStmt(s.Else)
	case *ast.SwitchStmt:
		if s.Init != nil && !c.okStmt(s.Init) {
			return false
		}
		if s.Tag != nil && !c.pure(s.Tag) {
			return false
		}
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CaseClause)
			if !ok || !c.pureAll(cc.List) {
				return false
			}
			for _, st := range cc.Body {
				if !c.okStmt(st) {
					return false
				}
			}
		}
		return true
	case *ast.RangeStmt:
		// A nested loop is fine as long as its own body qualifies; its
		// variables were collected as locals. (A nested *map* range is
		// additionally examined by maprange on its own.)
		return c.pure(s.X) && c.okStmt(s.Body)
	case *ast.ForStmt:
		return c.okStmt(s.Init) && (s.Cond == nil || c.pure(s.Cond)) &&
			c.okStmt(s.Post) && c.okStmt(s.Body)
	case *ast.BranchStmt:
		// Filtering an iteration is order-free; break/goto/return make
		// the outcome depend on which iteration ran first.
		return s.Tok == token.CONTINUE && s.Label == nil
	default:
		return false
	}
}

func (c *classifier) okAssign(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.DEFINE:
		return c.pureAll(s.Rhs)
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		if len(s.Lhs) != 1 || !c.pure(s.Lhs[0]) || !c.pureAll(s.Rhs) {
			return false
		}
		// Local accumulators die with the iteration; outer ones must be
		// integers so the fold commutes bit-exactly.
		return c.isLocal(s.Lhs[0]) || c.isInteger(s.Lhs[0])
	case token.ASSIGN:
		if c.collectAppend(s) {
			return true
		}
		if !c.pureAll(s.Rhs) {
			return false
		}
		// Multi-assign: every target must independently qualify against
		// its own RHS.
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			} else if i == 0 && len(s.Rhs) == 1 {
				rhs = s.Rhs[0]
			}
			if !c.okAssignOne(lhs, rhs) {
				return false
			}
		}
		return true
	default:
		// Shifts, %=, /=: not commutative (or not associative) in general.
		return false
	}
}

func (c *classifier) okAssignOne(lhs, rhs ast.Expr) bool {
	if !c.pure(lhs) {
		return false
	}
	if c.isLocal(lhs) {
		return true
	}
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		if t := c.pass.TypesInfo.TypeOf(idx.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				// dst must not appear on the right: dst[k] = len(dst) is
				// order-dependent even though both sides look pure.
				dst := c.rootObj(idx.X)
				if dst != nil && (c.refersTo(rhs, dst) || c.refersTo(idx.Index, dst)) {
					return false
				}
				// Unique source keys ⇒ no write collisions.
				if id, ok := idx.Index.(*ast.Ident); ok && c.locals[c.objOf(id)] {
					return true
				}
				// Loop-invariant value ⇒ collisions store identical bits.
				if rhs != nil && c.loopInvariant(rhs) {
					return true
				}
			}
		}
		return false
	}
	// Writing a loop-invariant value to an outer variable (found = true):
	// idempotent whichever iteration does it first.
	return rhs != nil && c.loopInvariant(rhs)
}

// collectAppend recognizes `xs = append(xs, e…)` where e is pure and xs
// is either loop-local or canonically sorted after the loop before any
// other use (the collect-then-sort idiom).
func (c *classifier) collectAppend(s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !c.isBuiltin(call, "append") || len(call.Args) < 1 {
		return false
	}
	if !c.pure(s.Lhs[0]) || !c.pureAll(call.Args) {
		return false
	}
	if types.ExprString(call.Args[0]) != types.ExprString(s.Lhs[0]) {
		return false
	}
	if c.isLocal(s.Lhs[0]) {
		return true
	}
	obj := c.rootObj(s.Lhs[0])
	return obj != nil && c.sortedLater != nil && c.sortedLater(obj)
}

// sortedBeforeUse walks outward from the range statement through its
// ancestor blocks in execution order, looking for a canonicalizing sort
// of obj's slice: finding a recognized sort first proves the collected
// multiset is ordered before anything observes it; finding any other
// reference to obj first (including re-executed statements of an
// enclosing loop body) disproves it.
func sortedBeforeUse(pass *Pass, c *classifier, rng *ast.RangeStmt, ancestors []ast.Node, obj types.Object) bool {
	child := ast.Node(rng)
	for i := len(ancestors) - 1; i >= 0; i-- {
		parent := ancestors[i]
		var list []ast.Stmt
		switch p := parent.(type) {
		case *ast.BlockStmt:
			list = p.List
		case *ast.CaseClause:
			list = p.Body
		case *ast.ForStmt, *ast.RangeStmt:
			// Crossing an enclosing loop: everything in its body outside
			// our subtree re-executes each iteration, so any reference to
			// obj there observes the slice unsorted.
			if refsOutside(c, parent, child, obj) {
				return false
			}
			child = parent
			continue
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		default:
			child = parent
			continue
		}
		idx := -1
		for j, st := range list {
			if ast.Node(st) == child {
				idx = j
				break
			}
		}
		if idx >= 0 {
			for _, st := range list[idx+1:] {
				if isSortStmt(pass, st, obj) {
					return true
				}
				if stmtRefs(c, st, obj) {
					return false
				}
			}
		}
		child = parent
	}
	return false
}

// refsOutside reports whether any node of container outside the subtree
// rooted at exclude references obj.
func refsOutside(c *classifier, container, exclude ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(container, func(n ast.Node) bool {
		if found || n == exclude {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && c.objOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func stmtRefs(c *classifier, st ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.objOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// canonicalSorts lists the sort calls accepted as collect-then-sort
// canonicalizers, by package path. The *Func / *Slice variants rely on
// their comparator totally ordering the collected elements — a reviewed
// obligation (DESIGN.md §11), not a proven one.
var canonicalSorts = map[string]map[string]bool{
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
	"sort":   {"Ints": true, "Strings": true, "Float64s": true, "Slice": true, "SliceStable": true},
}

// isSortStmt reports whether st is a statement-level call to a
// recognized sort whose first argument is obj's slice.
func isSortStmt(pass *Pass, st ast.Stmt, obj types.Object) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	names, ok := canonicalSorts[fn.Pkg().Path()]
	if !ok || !names[fn.Name()] {
		return false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	o := pass.TypesInfo.Uses[id]
	if o == nil {
		o = pass.TypesInfo.Defs[id]
	}
	return o == obj
}

// minMaxPattern recognizes `if a OP b { b = a }` extremum folds over
// integer or string values (bit-stable under reordering; floats are not,
// because ±0.0 compare equal with different bits).
func (c *classifier) minMaxPattern(s *ast.IfStmt) bool {
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	asn, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asn.Tok != token.ASSIGN || len(asn.Lhs) != 1 || len(asn.Rhs) != 1 {
		return false
	}
	lhs, rhs := asn.Lhs[0], asn.Rhs[0]
	if !c.pure(lhs) || !c.pure(rhs) {
		return false
	}
	t := c.pass.TypesInfo.TypeOf(lhs)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&(types.IsInteger|types.IsString) == 0 {
		return false
	}
	l, r := types.ExprString(lhs), types.ExprString(rhs)
	a, bb := types.ExprString(cond.X), types.ExprString(cond.Y)
	return (l == a && r == bb) || (l == bb && r == a)
}

func (c *classifier) isLocal(e ast.Expr) bool {
	obj := c.rootObj(e)
	return obj != nil && c.locals[obj]
}

func (c *classifier) isInteger(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// rootObj returns the object at the base of an lvalue-ish expression
// chain (x, x.f, x[i], *x → x's object).
func (c *classifier) rootObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return c.objOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (c *classifier) objOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Defs[id]
}

// refersTo reports whether expression e mentions obj.
func (c *classifier) refersTo(e ast.Expr, obj types.Object) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.objOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// loopInvariant reports whether e mentions no loop-local object, i.e.
// evaluates to the same value on every iteration.
func (c *classifier) loopInvariant(e ast.Expr) bool {
	if e == nil {
		return false
	}
	invariant := true
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.objOf(id); obj != nil && c.locals[obj] {
				invariant = false
			}
		}
		return invariant
	})
	return invariant
}

// pure reports whether evaluating e has no side effects and calls no
// user code: literals, variable/field/index reads, operators, slicing,
// conversions, and the len/cap/min/max builtins.
func (c *classifier) pure(e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *ast.BasicLit, *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return c.pure(e.X)
	case *ast.IndexExpr:
		return c.pure(e.X) && c.pure(e.Index)
	case *ast.SliceExpr:
		return c.pure(e.X) && c.pure(e.Low) && c.pure(e.High) && c.pure(e.Max)
	case *ast.BinaryExpr:
		return c.pure(e.X) && c.pure(e.Y)
	case *ast.UnaryExpr:
		return e.Op != token.ARROW && c.pure(e.X)
	case *ast.StarExpr:
		return c.pure(e.X)
	case *ast.ParenExpr:
		return c.pure(e.X)
	case *ast.TypeAssertExpr:
		return c.pure(e.X)
	case *ast.CompositeLit:
		return c.pureAll(e.Elts)
	case *ast.KeyValueExpr:
		return c.pure(e.Key) && c.pure(e.Value)
	case *ast.CallExpr:
		if tv, ok := c.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			return c.pureAll(e.Args) // conversion
		}
		for _, name := range []string{"len", "cap", "min", "max"} {
			if c.isBuiltin(e, name) {
				return c.pureAll(e.Args)
			}
		}
		return false
	default:
		return false
	}
}

func (c *classifier) pureAll(es []ast.Expr) bool {
	for _, e := range es {
		if !c.pure(e) {
			return false
		}
	}
	return true
}

// isBuiltin reports whether call invokes the named universe builtin.
func (c *classifier) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := c.pass.TypesInfo.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}
