// Package detlint statically enforces the repo's determinism contract:
// per-seed runs must be bit-identical regardless of parallelism, caching,
// or process topology (DESIGN.md §8, §11). It is a suite of analyzers in
// the shape of golang.org/x/tools/go/analysis — the build container is
// offline, so the Analyzer/Pass/Diagnostic surface is reimplemented here
// on the standard library alone; if x/tools ever lands in go.mod the
// analyzers port by swapping this file for the real package.
//
// Analyzers:
//
//	maprange   — `for … range` over a map is flagged unless the body is
//	             order-insensitive by construction or the loop carries a
//	             justified //det:unordered annotation.
//	walltime   — time.Now / time.Since / time.Sleep (and friends) are
//	             forbidden outside package main and //det:wallclock sites.
//	globalrand — package-level math/rand functions are forbidden; all
//	             randomness flows through rand.New(rand.NewSource(seed)).
//	floatrange — floating-point accumulation inside a map-range loop is
//	             flagged even when the loop is annotated //det:unordered,
//	             because a float fold is never order-insensitive; the only
//	             escape is an explicit //det:floatfold annotation.
//
// The interprocedural layer (effects.go, DESIGN.md §12) adds write-effect
// summaries over a CHA call graph and three more analyzers:
//
//	specpure      — everything reachable from a //det:specroot must be
//	                write-free outside //det:scratch types; escape with
//	                //det:specwrite <reason>.
//	hotalloc      — //det:hotpath functions must reach no allocation
//	                sites; escape with //det:hotalloc <reason>.
//	goroutinewrite — go-launched closures must not write captured
//	                variables without a sync primitive or channel
//	                handoff; no annotation escape.
package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -json output.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run applies the analyzer to one type-checked package, reporting
	// findings through pass.Reportf.
	Run func(pass *Pass) error
}

// All returns the full detlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{MapRange, WallTime, GlobalRand, FloatRange, SpecPure, HotAlloc, GoroutineWrite}
}

// A Pass provides one analyzer run with a single type-checked package,
// mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Annot indexes //det: annotations by file line (a detlint extension;
	// x/tools analyzers would re-derive this from File.Comments).
	Annot *Annotations
	// Prog is the whole-module effects program (effects.go) shared by the
	// interprocedural analyzers; Run builds a single-package one when the
	// caller has no wider view.
	Prog *Program

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: an analyzer name, a position, and a
// human-readable message.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

// String formats the diagnostic the way go vet does:
// path:line:col: analyzer: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies every analyzer in suite to pkg and returns the findings in
// file/line order, building a single-package effects Program. Callers
// holding several packages should build one Program and use RunWith so
// the interprocedural analyzers see cross-package calls.
func Run(pkg *Package, suite []*Analyzer) ([]Diagnostic, error) {
	return RunWith(pkg, suite, NewProgram([]*Package{pkg}))
}

// RunWith applies every analyzer in suite to pkg against a shared
// whole-module Program.
func RunWith(pkg *Package, suite []*Analyzer, prog *Program) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range suite {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Annot:     pkg.Annot,
			Prog:      prog,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}
