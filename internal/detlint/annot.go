package detlint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The determinism-annotation grammar (DESIGN.md §11): a line comment of
// the form
//
//	//det:<tag> <justification>
//
// written either on the line immediately above the statement it excuses
// or trailing on the same line. The justification is mandatory — the
// meta-test in annot_audit_test.go fails the build on a bare tag — so
// every suppression stays auditable.
const (
	// TagUnordered excuses a map-range loop whose order-insensitivity the
	// author has argued but the maprange classifier cannot prove.
	TagUnordered = "unordered"
	// TagWallclock excuses a wall-clock read that feeds measured-time
	// reporting (never a simulation decision).
	TagWallclock = "wallclock"
	// TagFloatfold excuses a floating-point fold over map-range order; the
	// justification must say why the fold result is still bit-stable.
	TagFloatfold = "floatfold"
	// TagSpecroot marks a function (or function literal) as a speculation
	// root: everything reachable from it must be write-free outside
	// scratch types (the specpure analyzer).
	TagSpecroot = "specroot"
	// TagSpecwrite excuses one shared-state write on a speculation path;
	// the justification must argue why the write cannot change committed
	// per-seed results.
	TagSpecwrite = "specwrite"
	// TagScratch marks a type declaration as per-speculation scratch:
	// writes whose owner is a scratch type are private by construction.
	// Pointer fields of a scratch type are back-references to shared
	// state, not part of the arena.
	TagScratch = "scratch"
	// TagHotpath marks a function as steady-state hot: the hotalloc
	// analyzer forbids allocation sites in it and its module callees.
	TagHotpath = "hotpath"
	// TagHotalloc excuses one allocation site on a hot path; the
	// justification must argue why the allocation is amortized or cold.
	TagHotalloc = "hotalloc"
)

// KnownTags lists every valid annotation tag.
var KnownTags = []string{
	TagUnordered, TagWallclock, TagFloatfold,
	TagSpecroot, TagSpecwrite, TagScratch, TagHotpath, TagHotalloc,
}

// An Annotation is one parsed //det: comment.
type Annotation struct {
	Tag    string // one of KnownTags ("unordered", "specroot", …)
	Reason string // justification text after the tag; "" when bare
	Pos    token.Pos
}

// ParseAnnotation parses a comment's text, returning ok=false when the
// comment is not a //det: annotation at all. Unknown tags parse with
// ok=true so audits can flag them.
func ParseAnnotation(text string) (Annotation, bool) {
	body, found := strings.CutPrefix(text, "//det:")
	if !found {
		return Annotation{}, false
	}
	tag, reason, _ := strings.Cut(body, " ")
	return Annotation{Tag: strings.TrimSpace(tag), Reason: strings.TrimSpace(reason)}, true
}

// Annotations indexes every //det: comment of a package by file and line
// so analyzers can answer "is this statement excused?" in O(1).
type Annotations struct {
	fset *token.FileSet
	// byLine maps filename → line → annotation on (or ending on) it.
	byLine map[string]map[int]Annotation
}

// IndexAnnotations scans the comment lists of files (which must have been
// parsed with parser.ParseComments).
func IndexAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{fset: fset, byLine: make(map[string]map[int]Annotation)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ann, ok := ParseAnnotation(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				ann.Pos = c.Slash
				lines := a.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]Annotation)
					a.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = ann
			}
		}
	}
	return a
}

// For returns the annotation with the given tag covering the node at pos:
// either trailing on the node's line or alone on the line above it. The
// bool reports whether one was found; a bare (reason-less) annotation
// still counts here — keeping the contract honest is the audit test's
// job, not the analyzer's.
func (a *Annotations) For(pos token.Pos, tag string) (Annotation, bool) {
	if a == nil {
		return Annotation{}, false
	}
	p := a.fset.Position(pos)
	lines := a.byLine[p.Filename]
	if lines == nil {
		return Annotation{}, false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		if ann, ok := lines[line]; ok && ann.Tag == tag {
			return ann, true
		}
	}
	return Annotation{}, false
}
