package detlint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Annot *Annotations
}

// A Loader parses and type-checks packages of a single module from
// source. The offline build container has no golang.org/x/tools, so this
// plays the role of go/packages: module-internal import paths resolve to
// directories under the module root, and everything else (the standard
// library) goes through the compiler's source importer, which reads
// GOROOT/src and needs no network, build cache, or export data.
type Loader struct {
	ModPath string
	ModDir  string

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package // module packages by import path
	loading map[string]bool     // import-cycle guard
}

// NewLoader returns a loader for the module rooted at modDir, reading the
// module path from go.mod.
func NewLoader(modDir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("no module line in %s/go.mod", modDir)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModPath: modPath,
		ModDir:  modDir,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Load resolves the given patterns ("./...", "./cmd/detlint", or full
// import paths within the module) and returns the matched packages,
// type-checked, in import-path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var paths []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == l.ModPath+"/...":
			dirs, err := l.walkDirs(l.ModDir)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(l.dirImportPath(d))
			}
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			dirs, err := l.walkDirs(filepath.Join(l.ModDir, filepath.FromSlash(strings.TrimPrefix(root, "./"))))
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(l.dirImportPath(d))
			}
		case strings.HasPrefix(pat, "./"):
			add(l.dirImportPath(filepath.Join(l.ModDir, filepath.FromSlash(pat[2:]))))
		case pat == ".":
			add(l.ModPath)
		default:
			add(pat)
		}
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.loadPackage(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// walkDirs returns every directory under root containing at least one
// non-test .go file, skipping testdata, hidden, and VCS directories.
func (l *Loader) walkDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if files, err := goFilesIn(path); err == nil && len(files) > 0 {
				dirs = append(dirs, path)
			}
			return nil
		}
		return nil
	})
	return dirs, err
}

func (l *Loader) dirImportPath(dir string) string {
	rel, err := filepath.Rel(l.ModDir, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// loadPackage parses and type-checks one module package (memoized).
func (l *Loader) loadPackage(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.ModDir
	if path != l.ModPath {
		rel, ok := strings.CutPrefix(path, l.ModPath+"/")
		if !ok {
			return nil, fmt.Errorf("%s is outside module %s", path, l.ModPath)
		}
		dir = filepath.Join(l.ModDir, filepath.FromSlash(rel))
	}
	filenames, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Annot: IndexAnnotations(l.fset, files),
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal paths type-check from
// source under the module root; everything else defers to the GOROOT
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModDir, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// SortDiagnostics orders findings by file, line, column, analyzer, then
// message, so text and -json reports are byte-stable regardless of
// package traversal or analyzer execution order.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
