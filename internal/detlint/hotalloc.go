package detlint

// hotalloc enforces the steady-state allocation contract (DESIGN.md §12):
// a //det:hotpath function — pool maintenance, candidate enumeration,
// plan-cache probes — must reach no allocation site: no make/new, no
// slice/map/& composite literals, no growing append to a fresh slice, no
// capturing closures, no interface boxing, in the function or anything
// it calls in-module. //det:hotalloc <reason> excuses one site (or, on a
// declaration, a whole cold function).

import (
	"fmt"
	"go/token"
)

// HotAlloc reports allocation sites reachable from //det:hotpath
// functions.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//det:hotpath functions must reach no allocation sites (escape: //det:hotalloc)",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	prog := pass.Prog
	if prog == nil {
		return fmt.Errorf("hotalloc requires an effects Program (use RunWith)")
	}
	var pkg *Package
	for _, p := range prog.Pkgs {
		if p.Types == pass.Pkg {
			pkg = p
		}
	}
	if pkg == nil {
		return nil
	}
	reported := make(map[token.Pos]bool)
	for _, n := range prog.nodes {
		if n.pkg != pkg || n.decl == nil {
			continue
		}
		_, hot := pkg.Annot.For(n.decl.Pos(), TagHotpath)
		if !hot && !docHasTag(n.decl.Doc, TagHotpath) {
			continue
		}
		sum := prog.summaries[n]
		if sum == nil {
			continue
		}
		for _, a := range sum.allocs {
			if reported[a.pos] {
				continue
			}
			reported[a.pos] = true
			pass.Reportf(a.pos,
				"allocation on hot path: %s in %s, reachable from //det:hotpath %s; restructure onto a pooled buffer or annotate the site //det:hotalloc <why>",
				a.desc, a.origin, n.name)
		}
	}
	return nil
}
