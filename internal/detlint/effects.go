package detlint

// The interprocedural layer behind specpure and hotalloc (DESIGN.md §12):
// a CHA-style call graph over the typed AST, per-function write-effect
// summaries, and a fixpoint that propagates effects and allocation sites
// across calls. Built on the standard library alone, same constraint as
// the rest of the suite.
//
// The effect lattice per function is a set of write effects, each
// classified by what the written memory is reachable from:
//
//	global    — a package-level variable
//	recv      — the method receiver
//	param(i)  — the i-th parameter
//	captured  — a variable captured from an enclosing function
//	unknown   — havoc: an effect the analysis cannot bound (indirect
//	            calls, goroutine launches, writes of unknown provenance)
//
// Each effect carries a scratch bit: true when the owner type of the
// written location is declared //det:scratch. At call sites, callee
// recv/param effects are re-based onto the caller's argument provenance;
// effects through fresh or nil arguments drop. Interface method calls
// resolve by CHA to every in-module implementation; zero implementations
// (or a call through a func-typed field/value) degrade to havoc.
// Function literals are folded into their enclosing function — captured
// locals resolve against the enclosing environment — except literals
// launched by `go`, which havoc, and literals annotated //det:specroot,
// which additionally become standalone roots whose captured variables
// count as shared state.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// A Program is the whole-module view behind the interprocedural
// analyzers: call graph nodes, //det:scratch types, CHA indexes and the
// solved per-function summaries. Build one per lint run with NewProgram
// and share it across packages via RunWith.
type Program struct {
	Pkgs []*Package

	fset      *token.FileSet
	nodes     []*funcNode
	byObj     map[*types.Func]*funcNode
	litNodes  map[*ast.FuncLit]*funcNode
	scratch   map[*types.TypeName]bool
	named     []*types.TypeName
	summaries map[*funcNode]*summary
	chaCache  map[string][]*funcNode
}

// A funcNode is one call-graph node: a declared function/method, or a
// //det:specroot function literal analyzed standalone.
type funcNode struct {
	pkg     *Package
	obj     *types.Func // nil for a standalone literal
	decl    *ast.FuncDecl
	lit     *ast.FuncLit
	body    *ast.BlockStmt
	name    string
	lo, hi  token.Pos
	recv    *types.Var
	params  []*types.Var
	results []*types.Var
}

type provKind int

const (
	provNone provKind = iota
	provFresh
	provRecv
	provParam
	provGlobal
	provCaptured
	provUnknown
)

// prov is the provenance of a value or storage location: which root the
// memory it refers to is reachable from.
type prov struct {
	kind  provKind
	param int        // valid when kind == provParam
	capv  *types.Var // valid when kind == provCaptured
}

func (p prov) shared() bool {
	switch p.kind {
	case provNone, provFresh:
		return false
	}
	return true
}

func (p prov) String() string {
	switch p.kind {
	case provNone:
		return "none"
	case provFresh:
		return "fresh"
	case provRecv:
		return "receiver state"
	case provParam:
		return fmt.Sprintf("memory reachable from parameter %d", p.param)
	case provGlobal:
		return "package-global state"
	case provCaptured:
		name := "?"
		if p.capv != nil {
			name = p.capv.Name()
		}
		return "captured variable " + name
	}
	return "unknown provenance"
}

// joinProv is the lattice join: none is bottom, fresh stays below every
// shared class, and two distinct shared classes collapse to unknown.
func joinProv(a, b prov) prov {
	if a == b {
		return a
	}
	if a.kind == provNone {
		return b
	}
	if b.kind == provNone {
		return a
	}
	if a.kind == provFresh {
		return b
	}
	if b.kind == provFresh {
		return a
	}
	return prov{kind: provUnknown}
}

// An effect is one write a function (or anything it calls) may perform,
// classified against the caller-visible roots.
type effect struct {
	kind    provKind
	param   int
	capv    *types.Var
	scratch bool
	pos     token.Pos
	desc    string
	origin  string // name of the function containing the write site
}

func (e effect) key() string {
	return fmt.Sprintf("%d/%d/%t/%d", e.kind, e.param, e.scratch, e.pos)
}

// An allocSite is one allocation a function (or anything it calls) may
// perform; //det:hotalloc-excused sites are dropped at the origin.
type allocSite struct {
	pos    token.Pos
	desc   string
	origin string
}

const maxAllocSites = 32

// summary is the solved per-function fact: outward write effects,
// reachable allocation sites, and return-value provenance.
type summary struct {
	effects []effect
	allocs  []allocSite
	ret     prov
}

func (s *summary) fingerprint() string {
	var b strings.Builder
	for _, e := range s.effects {
		b.WriteString(e.key())
		b.WriteByte(';')
	}
	b.WriteByte('|')
	for _, a := range s.allocs {
		fmt.Fprintf(&b, "%d;", a.pos)
	}
	fmt.Fprintf(&b, "|%d/%d", s.ret.kind, s.ret.param)
	return b.String()
}

// NewProgram builds the call graph and scratch-type index over pkgs and
// solves the effect summaries to a fixpoint. The packages must share one
// FileSet (the Loader guarantees this; the golden harness passes one
// package).
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:      pkgs,
		byObj:     make(map[*types.Func]*funcNode),
		litNodes:  make(map[*ast.FuncLit]*funcNode),
		scratch:   make(map[*types.TypeName]bool),
		summaries: make(map[*funcNode]*summary),
		chaCache:  make(map[string][]*funcNode),
	}
	if len(pkgs) > 0 {
		p.fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		p.indexPackage(pkg)
	}
	p.solve()
	return p
}

func (p *Program) indexPackage(pkg *Package) {
	// Scratch types: a //det:scratch annotation on (or above) a type
	// spec marks the named type as per-speculation scratch.
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				_, onSpec := pkg.Annot.For(ts.Pos(), TagScratch)
				_, onDecl := pkg.Annot.For(gd.Pos(), TagScratch)
				if !onSpec && !onDecl {
					continue
				}
				if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					p.scratch[tn] = true
				}
			}
		}
	}
	// Named non-interface types, for CHA. Scope.Names is sorted, so the
	// CHA target order (and therefore diagnostic order) is deterministic.
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok {
			if _, isIface := named.Underlying().(*types.Interface); !isIface {
				p.named = append(p.named, tn)
			}
		}
	}
	// Call-graph nodes: every declared function with a body, plus every
	// //det:specroot function literal (analyzed standalone so captured
	// variables count as shared state).
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &funcNode{
				pkg:  pkg,
				obj:  obj,
				decl: fd,
				body: fd.Body,
				name: declDisplayName(pkg, fd),
				lo:   fd.Pos(),
				hi:   fd.End(),
			}
			sig := obj.Type().(*types.Signature)
			n.recv = sig.Recv()
			for i := 0; i < sig.Params().Len(); i++ {
				n.params = append(n.params, sig.Params().At(i))
			}
			for i := 0; i < sig.Results().Len(); i++ {
				n.results = append(n.results, sig.Results().At(i))
			}
			p.nodes = append(p.nodes, n)
			p.byObj[obj] = n
		}
		ast.Inspect(f, func(nd ast.Node) bool {
			lit, ok := nd.(*ast.FuncLit)
			if !ok {
				return true
			}
			if _, ok := pkg.Annot.For(lit.Pos(), TagSpecroot); !ok {
				return true
			}
			pos := pkg.Fset.Position(lit.Pos())
			n := &funcNode{
				pkg:  pkg,
				lit:  lit,
				body: lit.Body,
				name: fmt.Sprintf("%s.(func literal at line %d)", pkg.Types.Name(), pos.Line),
				lo:   lit.Pos(),
				hi:   lit.End(),
			}
			if sig, ok := pkg.Info.Types[lit].Type.(*types.Signature); ok {
				for i := 0; i < sig.Params().Len(); i++ {
					n.params = append(n.params, sig.Params().At(i))
				}
				for i := 0; i < sig.Results().Len(); i++ {
					n.results = append(n.results, sig.Results().At(i))
				}
			}
			p.nodes = append(p.nodes, n)
			p.litNodes[lit] = n
			return true
		})
	}
}

func declDisplayName(pkg *Package, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if se, ok := t.(*ast.StarExpr); ok {
			t = se.X
		}
		if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
			t = ix.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return pkg.Types.Name() + ".(" + id.Name + ")." + fd.Name.Name
		}
	}
	return pkg.Types.Name() + "." + fd.Name.Name
}

// solve runs chaotic iteration to the fixpoint: effect sets and alloc
// sets only grow and positions are finite, so this terminates; the round
// cap is a backstop, not a tuning knob.
func (p *Program) solve() {
	for round := 0; round < 50; round++ {
		changed := false
		for _, n := range p.nodes {
			s := p.analyzeNode(n)
			old := p.summaries[n]
			if old == nil || old.fingerprint() != s.fingerprint() {
				p.summaries[n] = s
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// Summary returns the solved summary for the function declared by obj,
// or nil when obj is not an in-module function.
func (p *Program) Summary(obj *types.Func) *summary {
	if n := p.byObj[obj]; n != nil {
		return p.summaries[n]
	}
	return nil
}

// chaTargets resolves an interface method call to every in-module
// concrete implementation (Class Hierarchy Analysis). The open-world
// caveat — implementations outside the analyzed packages — is documented
// in DESIGN.md §12.
func (p *Program) chaTargets(iface types.Type, method string) []*funcNode {
	key := iface.String() + "." + method
	if out, ok := p.chaCache[key]; ok {
		return out
	}
	ifc, ok := iface.Underlying().(*types.Interface)
	if !ok {
		p.chaCache[key] = nil
		return nil
	}
	out := []*funcNode{}
	for _, tn := range p.named {
		T := tn.Type()
		PT := types.NewPointer(T)
		if !types.Implements(T, ifc) && !types.Implements(PT, ifc) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(PT, true, tn.Pkg(), method)
		fobj, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if n := p.byObj[fobj]; n != nil {
			out = append(out, n)
		} else if n := p.byObj[fobj.Origin()]; n != nil {
			out = append(out, n)
		}
	}
	p.chaCache[key] = out
	return out
}

func namedOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

func derefType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// pointerLike reports whether values of t carry a reference through
// which a callee could write caller-visible memory.
func pointerLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// wordSized reports whether boxing a value of t into an interface needs
// no heap allocation (the value fits the interface data word).
func wordSized(t types.Type) bool {
	if t == nil {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

func pkgScoped(v *types.Var) bool {
	sc := v.Parent()
	return sc != nil && sc.Parent() == types.Universe
}
