package detlint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// This file is an analysistest-style golden harness: every package under
// testdata/src/<analyzer>/ is type-checked and run through its analyzer,
// and `// want "regex"` comments must match the produced diagnostics
// line-for-line — unexpected findings and unmatched expectations both
// fail. (golang.org/x/tools/go/analysis/analysistest itself is
// unavailable in the offline build container.)

func TestMapRangeGolden(t *testing.T)   { runGolden(t, MapRange, "maprange") }
func TestWallTimeGolden(t *testing.T)   { runGolden(t, WallTime, "walltime") }
func TestGlobalRandGolden(t *testing.T) { runGolden(t, GlobalRand, "globalrand") }
func TestFloatRangeGolden(t *testing.T) { runGolden(t, FloatRange, "floatrange") }

func TestSpecPureGolden(t *testing.T)       { runGolden(t, SpecPure, "specpure") }
func TestHotAllocGolden(t *testing.T)       { runGolden(t, HotAlloc, "hotalloc") }
func TestGoroutineWriteGolden(t *testing.T) { runGolden(t, GoroutineWrite, "goroutinewrite") }

// TestWallTimeMainExempt pins the package-main exemption: the same calls
// that fail in a library package are legal in a main.
func TestWallTimeMainExempt(t *testing.T) {
	diags := analyze(t, WallTime, filepath.Join("testdata", "src", "walltime_main"))
	if len(diags) != 0 {
		t.Fatalf("walltime flagged package main: %v", diags)
	}
}

func runGolden(t *testing.T, a *Analyzer, dir string) {
	pkgdir := filepath.Join("testdata", "src", dir)
	diags := analyze(t, a, pkgdir)

	wants, err := collectWants(pkgdir)
	if err != nil {
		t.Fatal(err)
	}
	matched := make(map[*want]bool)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !matched[w] && w.re.MatchString(d.Message) {
				matched[w] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !matched[w] {
				t.Errorf("no diagnostic at %s matching %q", key, w.re)
			}
		}
	}
}

// analyze type-checks one testdata package (std-library imports only)
// and runs a single analyzer over it.
func analyze(t *testing.T, a *Analyzer, pkgdir string) []Diagnostic {
	t.Helper()
	filenames, err := goFilesIn(pkgdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(filenames) == 0 {
		t.Fatalf("no Go files in %s", pkgdir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkgdir, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", pkgdir, err)
	}
	pkg := &Package{
		Path:  pkgdir,
		Dir:   pkgdir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Annot: IndexAnnotations(fset, files),
	}
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

type want struct {
	re *regexp.Regexp
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// collectWants scans a package directory for `// want "regex"` comments,
// keyed by "file.go:line". Multiple quoted regexes on one line expect
// multiple diagnostics.
func collectWants(pkgdir string) (map[string][]*want, error) {
	filenames, err := goFilesIn(pkgdir)
	if err != nil {
		return nil, err
	}
	wants := make(map[string][]*want)
	fset := token.NewFileSet()
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					expr := arg[1]
					if expr == "" {
						expr = strings.ReplaceAll(arg[2], `\"`, `"`)
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regex %q: %v", key, expr, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants, nil
}
