package detlint

import (
	"go/token"
	"reflect"
	"testing"
)

// TestSortDiagnosticsOrder pins the total order of diagnostic output:
// (file, line, column, analyzer, message). Both the text and -json
// printers rely on this sort, so the order is a compatibility surface —
// shuffling it breaks golden CI logs and any downstream diffing.
func TestSortDiagnosticsOrder(t *testing.T) {
	d := func(file string, line, col int, analyzer, msg string) Diagnostic {
		return Diagnostic{
			Analyzer: analyzer,
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Message:  msg,
		}
	}

	want := []Diagnostic{
		d("a/a.go", 1, 1, "hotalloc", "boxing"),
		d("a/a.go", 1, 1, "specpure", "shared write"),
		d("a/a.go", 1, 1, "specpure", "shared write via call"),
		d("a/a.go", 1, 9, "maprange", "map iteration"),
		d("a/a.go", 4, 2, "walltime", "time.Now"),
		d("b/b.go", 1, 1, "floatrange", "float accumulation"),
	}

	// Feed the exact reverse: every comparison tier must fire to
	// restore the order above.
	got := make([]Diagnostic, len(want))
	for i := range want {
		got[len(want)-1-i] = want[i]
	}

	SortDiagnostics(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortDiagnostics order mismatch:\n got: %v\nwant: %v", got, want)
	}
}

// TestSortDiagnosticsStable verifies determinism: sorting any
// permutation of the same multiset yields byte-identical output.
func TestSortDiagnosticsStable(t *testing.T) {
	base := []Diagnostic{
		{Analyzer: "specpure", Pos: token.Position{Filename: "x.go", Line: 2, Column: 3}, Message: "m1"},
		{Analyzer: "specpure", Pos: token.Position{Filename: "x.go", Line: 2, Column: 3}, Message: "m0"},
		{Analyzer: "hotalloc", Pos: token.Position{Filename: "x.go", Line: 2, Column: 3}, Message: "m2"},
	}
	a := append([]Diagnostic(nil), base...)
	b := []Diagnostic{base[2], base[0], base[1]}
	SortDiagnostics(a)
	SortDiagnostics(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("different permutations sorted differently:\n a: %v\n b: %v", a, b)
	}
	if a[0].Analyzer != "hotalloc" || a[1].Message != "m0" || a[2].Message != "m1" {
		t.Fatalf("unexpected order after sort: %v", a)
	}
}
