// Package maprangetest is maprange's golden corpus: each `want` comment
// pins a diagnostic, every unannotated loop without one must pass.
package maprangetest

import (
	"fmt"
	"slices"
	"sort"
)

// --- positive cases: order leaks out of the loop ---

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map`
		out = append(out, k)
	}
	return out // slice order is map iteration order
}

func sideEffects(m map[string]int) {
	for k, v := range m { // want `range over map`
		fmt.Println(k, v)
	}
}

func outerWrite(m map[string]int) int {
	last := 0
	for _, v := range m { // want `range over map`
		last = v // final value depends on which iteration ran last
	}
	return last
}

func earlyReturn(m map[string]int) (string, bool) {
	for k := range m { // want `range over map`
		if k != "" {
			return k, true // picks an arbitrary element
		}
	}
	return "", false
}

func stringConcat(m map[string]int) string {
	s := ""
	for k := range m { // want `range over map`
		s += k // concatenation does not commute
	}
	return s
}

func floatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want `range over map`
		sum += v // float addition does not associate
	}
	return sum
}

func floatMax(m map[int]float64) float64 {
	best := 0.0
	for _, v := range m { // want `range over map`
		if v > best {
			best = v // 0.0 vs -0.0 ties are not bit-stable
		}
	}
	return best
}

func readBeforeSort(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map`
		out = append(out, k)
	}
	n := len(out) // any reference before the sort disqualifies the idiom
	sort.Strings(out)
	_ = n
	return out
}

func keyedWriteVariantValue(m map[int]int, out map[int]int) {
	for _, v := range m { // want `range over map`
		out[v] = len(out) // colliding keys store order-dependent values
	}
}

// --- negative cases: order-insensitive by construction ---

func collectThenSort(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func collectThenSortFunc(m map[int]int) [][2]int {
	var pairs [][2]int
	for k, v := range m {
		pairs = append(pairs, [2]int{k, v})
	}
	slices.SortFunc(pairs, func(a, b [2]int) int { return a[0] - b[0] })
	return pairs
}

func nestedCollect(mm map[int]map[int]bool) []int {
	var ids []int
	for a, inner := range mm {
		for b := range inner {
			if b > a {
				ids = append(ids, a*1000+b)
			}
		}
	}
	sort.Ints(ids)
	return ids
}

func intReduction(m map[string]int) (n, total int) {
	for _, v := range m {
		n++
		total += v
	}
	return
}

func setBuild(m map[string]int, drop string) map[string]bool {
	set := make(map[string]bool, len(m))
	for k := range m {
		if k != drop {
			set[k] = true
		}
	}
	return set
}

func keyedTransform(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

func deleteKeyed(m map[int]bool, dead map[int]bool) {
	for k := range dead {
		delete(m, k)
	}
}

func intMax(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func constFlag(m map[string]int) bool {
	found := false
	for _, v := range m {
		if v > 10 {
			found = true
		}
	}
	return found
}

func localScratch(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		local := 0
		for _, v := range vs {
			local += v
		}
		if local > 0 {
			n++
		}
	}
	return n
}

func annotated(m map[string]int) []string {
	var out []string
	//det:unordered appended keys feed a human-readable summary whose order is cosmetic
	for k := range m {
		out = append(out, k)
	}
	return out
}
