// Package hotalloc exercises the hot-path allocation analyzer: direct
// sites, interprocedural propagation, amortized pooled-buffer appends,
// capturing closures, interface boxing, and the //det:hotalloc escape.
package hotalloc

type pool struct {
	buf  []int
	keys []string
}

type boxer interface{ Take(v any) }

//det:hotpath steady-state maintenance must not allocate
func (p *pool) refresh(n int) {
	p.buf = append(p.buf[:0], n) // pooled buffer: amortized, allowed
	s := make([]int, n)          // want `allocation on hot path`
	_ = s
	p.helper(n)
	m := map[int]int{} // want `allocation on hot path`
	_ = m
	f := func() int { return n } // want `allocation on hot path`
	_ = f()
}

// helper is not itself hotpath; its allocation surfaces at the hotpath
// caller, positioned here.
func (p *pool) helper(n int) {
	q := new(pool) // want `allocation on hot path`
	_ = q
	//det:hotalloc preallocated once per resize epoch, amortized to zero
	big := make([]int, n)
	_ = big
	var acc []string
	acc = append(acc, "k") // want `allocation on hot path`
	p.keys = acc
}

//det:hotpath boxing a concrete value into an interface allocates
func (p *pool) feed(b boxer, n int) {
	b.Take(n) // want `allocation on hot path`
}

// cold is fully excused at the declaration: a cache-miss path.
//
//det:hotalloc cold miss path, runs once per new key
func (p *pool) cold(n int) []int {
	return make([]int, n)
}

//det:hotpath excused callees must stay silent
func (p *pool) callsCold(n int) {
	_ = p.cold(n)
}

type sink struct{}

func (sink) Take(v any) {}
