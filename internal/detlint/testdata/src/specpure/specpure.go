// Package specpure exercises the interprocedural speculation-purity
// analyzer: roots, scratch arenas, escapes, call-graph propagation, CHA
// over interfaces, and havoc for indirect calls and goroutines.
package specpure

// engine owns shared state plus a per-speculation scratch arena.
type engine struct {
	hits    int
	cache   map[int]int
	scratch arena
	sink    store
}

//det:scratch per-speculation probe buffers, private to one shard goroutine
type arena struct {
	buf  []int
	back *engine // pointer field: a back-reference, NOT scratch
}

type store interface {
	Put(k, v int)
}

type mapStore struct{ m map[int]int }

func (s *mapStore) Put(k, v int) { s.m[k] = v } // want `speculation-impure`

var counter int

//det:specroot probe must stay read-only outside the arena
func (e *engine) probe(ids []int) {
	for _, id := range ids {
		e.probeOne(id)
	}
}

func (e *engine) probeOne(id int) {
	e.scratch.buf = append(e.scratch.buf[:0], id) // scratch arena: allowed
	e.deepWrite(id)
	e.excused(id)
	e.viaInterface(id)
	counter++ // want `speculation-impure`
}

// deepWrite is two calls below the root; its receiver write must still
// surface at the root.
func (e *engine) deepWrite(id int) {
	e.hits = id // want `speculation-impure`
}

// excused carries a declaration-level escape: nothing inside reports.
//
//det:specwrite memoized pure value, identical regardless of interleaving
func (e *engine) excused(id int) {
	e.cache[id] = id
}

// viaInterface resolves by CHA to (*mapStore).Put, whose map write is
// reported at its own site.
func (e *engine) viaInterface(id int) {
	e.sink.Put(id, id)
}

// backdoor writes through the arena's pointer field — the back-reference
// is shared state even though arena itself is scratch.
//
//det:specroot the back-pointer rule: pointer fields of scratch are shared
func (e *engine) backdoor() {
	e.scratch.back.hits++ // want `speculation-impure`
}

// freshOnly builds and mutates only local state: clean.
//
//det:specroot purely local construction must not report
func freshOnly(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	m := map[int]int{}
	m[n] = n
	return out
}

// havocRoot launches a goroutine: conservative havoc.
//
//det:specroot goroutine launches degrade to havoc
func (e *engine) havocRoot(ch chan int) {
	go func() { // want `speculation-impure`
		ch <- 1
	}()
}

// paramWriter writes through its pointer parameter; reported when the
// argument aliases shared state, dropped when the argument is fresh.
func paramWriter(p *engine) {
	p.hits = 1 // want `speculation-impure`
}

//det:specroot param effects re-base onto caller argument provenance
func (e *engine) callsParamWriter() {
	paramWriter(e) // the write in paramWriter reports, based on e
	fresh := &engine{}
	paramWriter(fresh) // fresh argument: effect drops silently
}
