// Package main pins walltime's exemption: mains report real elapsed
// time to humans and may read the wall clock freely.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	time.Sleep(time.Millisecond)
	fmt.Println(time.Since(start))
}
