// Package globalrandtest is globalrand's golden corpus.
package globalrandtest

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func bad(n int) int {
	return rand.Intn(n) // want `rand.Intn`
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle`
}

func badFloat() float64 {
	return rand.Float64() // want `rand.Float64`
}

func badV2() uint64 {
	return randv2.Uint64() // want `rand.Uint64`
}

// The blessed idiom: an explicitly-seeded instance threaded from a
// Params/Config seed. Constructors and methods are legal.
func seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

func seededV2(a, b uint64) uint64 {
	r := randv2.New(randv2.NewPCG(a, b))
	return r.Uint64()
}
