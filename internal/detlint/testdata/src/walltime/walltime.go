// Package walltimetest is walltime's golden corpus.
package walltimetest

import "time"

func bad() (time.Time, time.Duration) {
	now := time.Now()            // want `time.Now`
	d := time.Since(now)         // want `time.Since`
	time.Sleep(time.Millisecond) // want `time.Sleep`
	return now, d
}

func ticker() *time.Ticker {
	return time.NewTicker(time.Second) // want `time.NewTicker`
}

// Pure constructors and arithmetic never touch the wall clock.
func legal(ts float64) time.Duration {
	d := time.Duration(ts * float64(time.Second))
	return d.Round(time.Millisecond)
}

func annotated() time.Time {
	//det:wallclock measured-time plumbing for an observability counter
	return time.Now()
}
