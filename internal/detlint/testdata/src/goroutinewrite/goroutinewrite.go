// Package goroutinewrite exercises the captured-write race analyzer:
// unsynchronized writes flag, channel handoffs and sync-package calls
// exempt, and there is no annotation escape.
package goroutinewrite

import "sync"

func unsynchronized() int {
	x := 0
	go func() {
		x = 1 // want `go-launched closure writes captured variable x`
		x++   // want `go-launched closure writes captured variable x`
	}()
	return x
}

func viaChannel() int {
	x := 0
	done := make(chan struct{})
	go func() {
		x = 1 // ordered behind the channel send: exempt
		done <- struct{}{}
	}()
	<-done
	return x
}

func viaWaitGroup(results []int) {
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = i // wg.Done in body: exempt
		}(i)
	}
	wg.Wait()
}

func localOnly() {
	go func() {
		y := 0
		y++ // declared inside the closure: not captured
		_ = y
	}()
}

func nestedNotLaunched() {
	x := 0
	go func() {
		inner := func() {
			x = 2 // nested closure is not the go-launched body: skipped
		}
		_ = inner
		x = 1 // want `go-launched closure writes captured variable x`
	}()
	_ = x
}
