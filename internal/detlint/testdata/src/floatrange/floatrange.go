// Package floatrangetest is floatrange's golden corpus.
package floatrangetest

func sum(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `floating-point fold`
	}
	return total
}

func spelledOut(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `floating-point fold`
	}
	return total
}

func product(m map[int]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want `floating-point fold`
	}
	return p
}

type acc struct{ sum float64 }

func fieldFold(m map[int]float64, a *acc) {
	for _, v := range m {
		a.sum += v // want `floating-point fold`
	}
}

// A //det:unordered justification cannot excuse a float fold — it is
// order-dependent by definition; only //det:floatfold can.
func unorderedIsNotEnough(m map[int]float64) float64 {
	var total float64
	//det:unordered mistaken justification, the author believed float sums commute
	for _, v := range m {
		total += v // want `floating-point fold`
	}
	return total
}

// --- negative cases ---

func intFold(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v // integer addition commutes bit-exactly
	}
	return n
}

func localAccumulator(m map[int][]float64) int {
	n := 0
	for _, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v // accumulator dies with the iteration
		}
		if s > 1 {
			n++
		}
	}
	return n
}

func annotatedFold(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v //det:floatfold every value is an exact power of two, so the sum is exact and commutes
	}
	return total
}

func loopAnnotated(m map[int]float64) (a, b float64) {
	//det:floatfold both folds are over exact table values whose sums stay exact at any order
	for _, v := range m {
		a += v
		b -= v
	}
	return
}
