package detlint

// The annotation inventory behind `detlint -annotations`: every //det:
// tag in the tree with its location and justification, so annotation
// audits are reviewable at a glance (and diffable across PRs — the
// output is sorted and module-relative).

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// An AnnotationRecord is one //det: comment found in the tree.
type AnnotationRecord struct {
	Pos    token.Position `json:"-"`
	File   string         `json:"file"` // module-relative, slash-separated
	Line   int            `json:"line"`
	Tag    string         `json:"tag"`
	Reason string         `json:"reason"`
}

// CollectAnnotations walks every .go file under root — including tests
// and testdata, matching the audit test's coverage — and returns every
// //det: annotation sorted by (file, line).
func CollectAnnotations(root string) ([]AnnotationRecord, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasPrefix(name, ".") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	var recs []AnnotationRecord
	fset := token.NewFileSet()
	for _, fn := range files {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			continue // unparsable testdata is the audit test's problem
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ann, ok := ParseAnnotation(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				rel := pos.Filename
				if r, err := filepath.Rel(root, pos.Filename); err == nil {
					rel = filepath.ToSlash(r)
				}
				recs = append(recs, AnnotationRecord{
					Pos:    pos,
					File:   rel,
					Line:   pos.Line,
					Tag:    ann.Tag,
					Reason: ann.Reason,
				})
			}
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].File != recs[j].File {
			return recs[i].File < recs[j].File
		}
		return recs[i].Line < recs[j].Line
	})
	return recs, nil
}
