package detlint

// specpure enforces the speculation contract (DESIGN.md §8, §12): every
// function reachable from a //det:specroot-annotated root must be
// write-free outside //det:scratch types. Shard speculation is
// bit-identical only because probe paths never touch shared state; this
// analyzer turns that invariant into a compile-time gate.

import (
	"fmt"
	"go/token"
)

// SpecPure reports shared-state writes reachable from speculation roots.
var SpecPure = &Analyzer{
	Name: "specpure",
	Doc:  "functions reachable from a //det:specroot must not write outside //det:scratch types (escape: //det:specwrite)",
	Run:  runSpecPure,
}

func runSpecPure(pass *Pass) error {
	prog := pass.Prog
	if prog == nil {
		return fmt.Errorf("specpure requires an effects Program (use RunWith)")
	}
	var pkg *Package
	for _, p := range prog.Pkgs {
		if p.Types == pass.Pkg {
			pkg = p
		}
	}
	if pkg == nil {
		return nil
	}
	reported := make(map[token.Pos]bool)
	for _, n := range prog.nodes {
		if n.pkg != pkg {
			continue
		}
		root := false
		if n.lit != nil {
			root = true // standalone nodes exist only for annotated literals
		} else if n.decl != nil {
			_, root = pkg.Annot.For(n.decl.Pos(), TagSpecroot)
			root = root || docHasTag(n.decl.Doc, TagSpecroot)
		}
		if !root {
			continue
		}
		sum := prog.summaries[n]
		if sum == nil {
			continue
		}
		for _, e := range sum.effects {
			if e.scratch || reported[e.pos] {
				continue
			}
			reported[e.pos] = true
			pass.Reportf(e.pos,
				"speculation-impure: %s in %s, reachable from //det:specroot %s; move the state into a //det:scratch type or annotate the site //det:specwrite <why>",
				e.desc, e.origin, n.name)
		}
	}
	return nil
}
