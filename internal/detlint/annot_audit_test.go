package detlint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAnnotationsAreJustified walks every .go file in the repository
// (tests and golden testdata included) and fails on any //det:
// annotation that is bare, too thin to audit, or uses an unknown tag.
// Suppressing an analyzer is allowed only with a reviewable argument —
// this test is what keeps the escape hatch honest.
func TestAnnotationsAreJustified(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()
	nAnnot := 0
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		// Comments must come from the parser, not a text grep: analyzer
		// messages legitimately contain "//det:" inside string literals.
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return fmt.Errorf("%s: %v", path, perr)
		}
		rel, _ := filepath.Rel(root, path)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ann, ok := ParseAnnotation(c.Text)
				if !ok {
					continue
				}
				nAnnot++
				line := fset.Position(c.Slash).Line
				known := false
				for _, tag := range KnownTags {
					if ann.Tag == tag {
						known = true
					}
				}
				if !known {
					t.Errorf("%s:%d: unknown determinism annotation tag %q (known: %s)",
						rel, line, ann.Tag, strings.Join(KnownTags, ", "))
					continue
				}
				if ann.Reason == "" {
					t.Errorf("%s:%d: bare //det:%s — every suppression needs a justification string",
						rel, line, ann.Tag)
					continue
				}
				if len(strings.Fields(ann.Reason)) < 3 {
					t.Errorf("%s:%d: //det:%s justification %q is too thin to audit — explain why order/time cannot leak",
						rel, line, ann.Tag, ann.Reason)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if nAnnot == 0 {
		t.Fatal("no //det: annotations found anywhere — the walk is broken (testdata alone carries several)")
	}
}

// TestParseAnnotation pins the annotation grammar itself.
func TestParseAnnotation(t *testing.T) {
	cases := []struct {
		text   string
		ok     bool
		tag    string
		reason string
	}{
		{"//det:unordered keys feed a set", true, "unordered", "keys feed a set"},
		{"//det:wallclock observability only", true, "wallclock", "observability only"},
		{"//det:floatfold exact powers of two", true, "floatfold", "exact powers of two"},
		{"//det:unordered", true, "unordered", ""},
		{"//det:bogus some words here", true, "bogus", "some words here"},
		{"// det:unordered spaced prefix is not an annotation", false, "", ""},
		{"// plain comment", false, "", ""},
	}
	for _, c := range cases {
		ann, ok := ParseAnnotation(c.text)
		if ok != c.ok || ann.Tag != c.tag || ann.Reason != c.reason {
			t.Errorf("ParseAnnotation(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, ann.Tag, ann.Reason, ok, c.tag, c.reason, c.ok)
		}
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}
