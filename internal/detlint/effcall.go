package detlint

// Call resolution, provenance classification and call-site substitution
// for the effects engine (effects.go / effwalk.go).

import (
	"go/ast"
	"go/token"
	"go/types"
)

type callKind int

const (
	ckSkip callKind = iota // folded literal, callback through a func param
	ckConvert
	ckBuiltin
	ckStatic
	ckIface
	ckStdlib
	ckHavoc
)

type calleeSet struct {
	kind  callKind
	name  string // builtin name / method name
	nodes []*funcNode
	obj   *types.Func // stdlib model target
	recv  ast.Expr    // receiver expression for method calls
	desc  string      // havoc description
}

// resolve classifies one call expression. Calls through func-typed
// parameters are skipped (callback discipline: a literal's effects are
// folded where the literal is written), as are calls through locals
// bound to a literal in this function; other func-value calls are havoc.
func (w *walker) resolve(ce *ast.CallExpr) calleeSet {
	fun := unparen(ce.Fun)
	if tv, ok := w.info().Types[fun]; ok && tv.IsType() {
		return calleeSet{kind: ckConvert}
	}
	// Generic instantiation f[T](…): unwrap to the underlying ident.
	if ix, ok := fun.(*ast.IndexExpr); ok {
		if _, isSig := w.underlyingOf(fun).(*types.Signature); isSig {
			fun = unparen(ix.X)
		}
	}
	if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = unparen(ix.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch o := w.objOf(f).(type) {
		case *types.Builtin:
			return calleeSet{kind: ckBuiltin, name: o.Name()}
		case *types.Func:
			return w.funcTarget(o, nil)
		case *types.Var:
			if w.litBind[o] {
				return calleeSet{kind: ckSkip}
			}
			if pr := w.varClass(o); pr.kind == provParam {
				return calleeSet{kind: ckSkip}
			}
			return calleeSet{kind: ckHavoc,
				desc: "indirect call through func value " + f.Name}
		}
		return calleeSet{kind: ckHavoc, desc: "unresolved call"}
	case *ast.SelectorExpr:
		if sel := w.info().Selections[f]; sel != nil {
			switch sel.Kind() {
			case types.MethodVal:
				recvT := sel.Recv()
				if types.IsInterface(recvT) {
					return calleeSet{
						kind:  ckIface,
						name:  sel.Obj().Name(),
						nodes: w.prog.chaTargets(recvT, sel.Obj().Name()),
						recv:  f.X,
					}
				}
				if fobj, ok := sel.Obj().(*types.Func); ok {
					return w.funcTarget(fobj, f.X)
				}
			case types.FieldVal:
				return calleeSet{kind: ckHavoc,
					desc: "indirect call through func-typed field " + f.Sel.Name}
			case types.MethodExpr:
				return calleeSet{kind: ckHavoc,
					desc: "call through method expression " + f.Sel.Name}
			}
		}
		switch o := w.objOf(f.Sel).(type) {
		case *types.Func: // qualified pkg.Func
			return w.funcTarget(o, nil)
		case *types.Var:
			return calleeSet{kind: ckHavoc,
				desc: "indirect call through func-typed variable " + f.Sel.Name}
		}
		return calleeSet{kind: ckHavoc, desc: "unresolved selector call"}
	case *ast.FuncLit:
		return calleeSet{kind: ckSkip} // folded inline by the walk
	}
	return calleeSet{kind: ckHavoc, desc: "indirect call"}
}

func (w *walker) funcTarget(obj *types.Func, recv ast.Expr) calleeSet {
	if n := w.prog.byObj[obj]; n != nil {
		return calleeSet{kind: ckStatic, nodes: []*funcNode{n}, recv: recv, obj: obj}
	}
	if n := w.prog.byObj[obj.Origin()]; n != nil {
		return calleeSet{kind: ckStatic, nodes: []*funcNode{n}, recv: recv, obj: obj}
	}
	return calleeSet{kind: ckStdlib, obj: obj, recv: recv}
}

func (w *walker) call(ce *ast.CallExpr) {
	if w.skipCall[ce] {
		return
	}
	r := w.resolve(ce)
	switch r.kind {
	case ckSkip:
		return
	case ckConvert:
		if w.collect {
			w.checkConvertBoxing(ce)
		}
		return
	case ckBuiltin:
		w.builtinCall(ce, r.name)
		return
	}
	if !w.collect {
		return
	}
	w.checkBoxing(ce)
	switch r.kind {
	case ckHavoc:
		w.addRaw(effect{kind: provUnknown, pos: ce.Pos(), desc: r.desc})
		w.addAlloc(ce.Pos(), r.desc+" (may allocate)")
	case ckStdlib:
		w.stdlibCall(ce, r)
	case ckStatic, ckIface:
		if r.kind == ckIface && len(r.nodes) == 0 {
			w.addRaw(effect{kind: provUnknown, pos: ce.Pos(),
				desc: "interface method " + r.name + " has no in-module implementation"})
			w.addAlloc(ce.Pos(), "unresolved interface call "+r.name+" (may allocate)")
			return
		}
		for _, callee := range r.nodes {
			w.substitute(ce, r, callee)
		}
	}
}

func (w *walker) builtinCall(ce *ast.CallExpr, name string) {
	if !w.collect || len(ce.Args) == 0 {
		return
	}
	switch name {
	case "append":
		base := ce.Args[0]
		pr := w.provOf(base)
		if pr.shared() {
			// Amortized growth of a pooled buffer: a write through the
			// base slice, not a fresh allocation.
			w.refWrite(base, "append writes the backing array of")
		} else {
			w.addAlloc(ce.Pos(), "growing append to a fresh slice")
		}
	case "copy":
		w.refWrite(ce.Args[0], "copy into")
	case "delete":
		w.refWrite(ce.Args[0], "delete from")
	case "make":
		w.addAlloc(ce.Pos(), "make")
	case "new":
		w.addAlloc(ce.Pos(), "new")
	}
}

// stdlibCall models out-of-module functions: they may write through
// every pointer-like argument (and receiver) and return values of
// unknown provenance. sync.Pool Get/Put are modeled effect-free — the
// pool hands out private scratch by design (DESIGN.md §12 caveats).
func (w *walker) stdlibCall(ce *ast.CallExpr, r calleeSet) {
	full := r.obj.FullName()
	if full == "(*sync.Pool).Get" || full == "(*sync.Pool).Put" {
		return
	}
	// Atomic loads are pure reads of the cell; modeling their pointer
	// receiver as a potential write would poison every lock-free flag
	// read (g.pinned.Load()) on otherwise pure paths.
	if pkg := r.obj.Pkg(); pkg != nil && pkg.Path() == "sync/atomic" &&
		len(r.obj.Name()) >= 4 && r.obj.Name()[:4] == "Load" {
		return
	}
	short := r.obj.Name()
	if pkg := r.obj.Pkg(); pkg != nil {
		short = pkg.Name() + "." + r.obj.Name()
	}
	if r.recv != nil && pointerLike(w.typeOf(r.recv)) {
		w.refWrite(r.recv, "call to "+short+" may write through")
	}
	for _, a := range ce.Args {
		if pointerLike(w.typeOf(a)) {
			w.refWrite(a, "call to "+short+" may write through")
		}
	}
}

// substitute re-bases one callee summary onto this call site's argument
// provenance and merges it in.
func (w *walker) substitute(ce *ast.CallExpr, r calleeSet, callee *funcNode) {
	sum := w.prog.summaries[callee]
	if sum == nil {
		return // first fixpoint round; filled in on a later round
	}
	var sig *types.Signature
	if callee.obj != nil {
		sig = callee.obj.Type().(*types.Signature)
	}
	argFor := func(i int) (ast.Expr, bool) {
		if sig != nil && sig.Variadic() && i >= sig.Params().Len()-1 {
			// Expanded variadic args live in a fresh backing slice; only
			// an explicit s… forwards caller memory.
			if ce.Ellipsis.IsValid() && len(ce.Args) == sig.Params().Len() {
				return ce.Args[len(ce.Args)-1], true
			}
			return nil, false
		}
		if i < len(ce.Args) {
			return ce.Args[i], true
		}
		return nil, false
	}
	for _, e := range sum.effects {
		switch e.kind {
		case provGlobal, provUnknown, provCaptured:
			w.addSub(e)
		case provRecv:
			if r.recv == nil {
				w.addSub(e) // method expression oddity: keep conservative
				continue
			}
			w.rebase(e, r.recv)
		case provParam:
			if arg, ok := argFor(e.param); ok {
				w.rebase(e, arg)
			}
		}
	}
	for _, a := range sum.allocs {
		w.addAllocSite(a)
	}
}

// rebase maps a callee recv/param effect onto the provenance of the
// caller-side expression it flowed through.
func (w *walker) rebase(e effect, arg ast.Expr) {
	base := w.provOf(arg)
	if !base.shared() {
		return // effect on fresh or constant memory is caller-invisible
	}
	e.kind = base.kind
	e.param = base.param
	e.capv = base.capv
	if w.pointeeOwnerScratch(arg) {
		e.scratch = true
	}
	w.addSub(e)
}

// addRaw records an effect originating in this function, honoring the
// //det:specwrite escape at the site or on the declaration.
func (w *walker) addRaw(e effect) {
	if w.annotFor(e.pos, TagSpecwrite) || w.declExcused(TagSpecwrite) {
		return
	}
	e.origin = w.fn.name
	w.addSub(e)
}

func (w *walker) addSub(e effect) {
	k := e.key()
	if w.seenEff[k] {
		return
	}
	w.seenEff[k] = true
	w.effects = append(w.effects, e)
}

func (w *walker) addAlloc(pos token.Pos, desc string) {
	if w.annotFor(pos, TagHotalloc) || w.declExcused(TagHotalloc) {
		return
	}
	w.addAllocSite(allocSite{pos: pos, desc: desc, origin: w.fn.name})
}

func (w *walker) addAllocSite(a allocSite) {
	if w.seenAlloc[a.pos] || len(w.allocs) >= maxAllocSites {
		return
	}
	w.seenAlloc[a.pos] = true
	w.allocs = append(w.allocs, a)
}

// writeTo records the effect of writing the lvalue e.
func (w *walker) writeTo(e ast.Expr, verb string) {
	pr := w.locProv(e)
	if !pr.shared() {
		return
	}
	owner := w.ownerOf(e)
	w.addRaw(effect{
		kind:    pr.kind,
		param:   pr.param,
		capv:    pr.capv,
		scratch: owner != nil && w.prog.scratch[owner],
		pos:     e.Pos(),
		desc:    verb + " " + types.ExprString(e) + " (" + pr.String() + ")",
	})
}

// refWrite records a write through a reference value (channel send,
// copy/delete, stdlib pointer args, append backing arrays).
func (w *walker) refWrite(e ast.Expr, verb string) {
	pr := w.provOf(e)
	if !pr.shared() {
		return
	}
	w.addRaw(effect{
		kind:    pr.kind,
		param:   pr.param,
		capv:    pr.capv,
		scratch: w.pointeeOwnerScratch(e),
		pos:     e.Pos(),
		desc:    verb + " " + types.ExprString(e) + " (" + pr.String() + ")",
	})
}

// locProv is the provenance of a storage location: what the written
// memory is reachable from. Writing a local variable itself is always
// frame-private; writes escape only through pointers, slices and maps.
func (w *walker) locProv(e ast.Expr) prov {
	e = unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		v, ok := w.objOf(x).(*types.Var)
		if !ok || v.IsField() {
			return prov{kind: provNone}
		}
		if pkgScoped(v) {
			return prov{kind: provGlobal}
		}
		if !w.contains(v.Pos()) {
			return prov{kind: provCaptured, capv: v}
		}
		return prov{kind: provFresh} // local storage
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := w.objOf(id).(*types.PkgName); isPkg {
				return prov{kind: provGlobal}
			}
		}
		if sel := w.info().Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			if _, isPtr := w.underlyingOf(x.X).(*types.Pointer); isPtr {
				return w.provOf(x.X)
			}
			return w.locProv(x.X)
		}
		return prov{kind: provNone}
	case *ast.IndexExpr:
		switch w.underlyingOf(x.X).(type) {
		case *types.Slice, *types.Map, *types.Pointer:
			return w.provOf(x.X)
		case *types.Array:
			return w.locProv(x.X)
		}
		return prov{kind: provUnknown}
	case *ast.StarExpr:
		return w.provOf(x.X)
	case *ast.CompositeLit:
		return prov{kind: provFresh} // &T{…} points at a fresh allocation
	}
	return prov{kind: provUnknown}
}

// ownerOf is the named type that immediately contains the written field
// or element — the type whose //det:scratch annotation decides whether
// the write stays inside a private arena.
func (w *walker) ownerOf(e ast.Expr) *types.TypeName {
	e = unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if tn := namedOf(derefType(w.typeOf(x.X))); tn != nil {
			return tn
		}
		return w.ownerOf(x.X)
	case *ast.IndexExpr:
		if tn := namedOf(w.typeOf(x.X)); tn != nil {
			return tn
		}
		return w.ownerOf(x.X)
	case *ast.StarExpr:
		return namedOf(derefType(w.typeOf(x.X)))
	case *ast.SliceExpr:
		return w.ownerOf(x.X)
	}
	return nil
}

// provOf is the provenance of a value.
func (w *walker) provOf(e ast.Expr) prov {
	e = unparen(e)
	if tv, ok := w.info().Types[e]; ok && tv.Value != nil {
		return prov{kind: provNone} // constants
	}
	switch x := e.(type) {
	case *ast.Ident:
		switch o := w.objOf(x).(type) {
		case *types.Var:
			if o.IsField() {
				return prov{kind: provNone}
			}
			return w.varClass(o)
		}
		return prov{kind: provNone} // nil, funcs, types, consts
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := w.objOf(id).(*types.PkgName); isPkg {
				if _, isVar := w.objOf(x.Sel).(*types.Var); isVar {
					return prov{kind: provGlobal}
				}
				return prov{kind: provNone}
			}
		}
		if sel := w.info().Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			return w.provOf(x.X)
		}
		return prov{kind: provNone} // method value
	case *ast.IndexExpr:
		if _, isSig := w.underlyingOf(x).(*types.Signature); isSig {
			return prov{kind: provNone} // generic instantiation
		}
		return w.provOf(x.X)
	case *ast.IndexListExpr:
		return prov{kind: provNone}
	case *ast.StarExpr:
		return w.provOf(x.X)
	case *ast.SliceExpr:
		return w.provOf(x.X)
	case *ast.TypeAssertExpr:
		return w.provOf(x.X)
	case *ast.UnaryExpr:
		switch x.Op {
		case token.AND:
			return w.locProv(x.X)
		case token.ARROW:
			return prov{kind: provUnknown} // channel receive
		}
		return prov{kind: provNone}
	case *ast.CompositeLit, *ast.FuncLit, *ast.BasicLit:
		return prov{kind: provFresh}
	case *ast.BinaryExpr, *ast.KeyValueExpr:
		return prov{kind: provNone}
	case *ast.CallExpr:
		return w.callProv(x)
	}
	return prov{kind: provUnknown}
}

// callProv is the provenance of a call's result, substituted from the
// callee's return summary.
func (w *walker) callProv(ce *ast.CallExpr) prov {
	r := w.resolve(ce)
	switch r.kind {
	case ckConvert:
		if len(ce.Args) == 1 {
			return w.provOf(ce.Args[0])
		}
		return prov{kind: provNone}
	case ckBuiltin:
		switch r.name {
		case "append":
			if len(ce.Args) > 0 {
				return joinProv(prov{kind: provFresh}, w.provOf(ce.Args[0]))
			}
		case "make", "new", "min", "max":
			return prov{kind: provFresh}
		}
		return prov{kind: provNone}
	case ckStdlib:
		if r.obj.FullName() == "(*sync.Pool).Get" {
			return prov{kind: provFresh}
		}
		return prov{kind: provUnknown}
	case ckStatic, ckIface:
		out := prov{kind: provNone}
		for _, callee := range r.nodes {
			sum := w.prog.summaries[callee]
			if sum == nil {
				out = joinProv(out, prov{kind: provUnknown})
				continue
			}
			ret := sum.ret
			switch ret.kind {
			case provRecv:
				if r.recv != nil {
					ret = w.provOf(r.recv)
				} else {
					ret = prov{kind: provUnknown}
				}
			case provParam:
				if ret.param < len(ce.Args) {
					ret = w.provOf(ce.Args[ret.param])
				} else {
					ret = prov{kind: provUnknown}
				}
			case provCaptured:
				ret = prov{kind: provUnknown}
			}
			out = joinProv(out, ret)
		}
		if len(r.nodes) == 0 {
			return prov{kind: provUnknown}
		}
		return out
	}
	return prov{kind: provUnknown}
}

// pointeeOwnerScratch reports whether the memory an argument hands to a
// callee is part of a //det:scratch arena: &x.f is scratch when x's type
// is, a *T value when T is, and a slice/map field when the holding type
// is. A plain pointer field of a scratch type is a back-reference to
// shared state and stays non-scratch.
func (w *walker) pointeeOwnerScratch(e ast.Expr) bool {
	e = unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		return w.pointeeOwnerScratch(sl.X) // buf[:0] reslices buf's arena
	}
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		if w.namedScratch(w.typeOf(u.X)) {
			return true
		}
		if tn := w.ownerOf(u.X); tn != nil && w.prog.scratch[tn] {
			return true
		}
		return false
	}
	t := w.typeOf(e)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer:
		return w.namedScratch(derefType(t))
	case *types.Slice, *types.Map:
		if w.namedScratch(t) {
			return true
		}
		if sel, ok := e.(*ast.SelectorExpr); ok {
			return w.namedScratch(derefType(w.typeOf(sel.X)))
		}
	}
	return false
}

func (w *walker) namedScratch(t types.Type) bool {
	tn := namedOf(t)
	return tn != nil && w.prog.scratch[tn]
}

// litCaptures reports whether a function literal references a variable
// of an enclosing function (a heap-allocated closure).
func (w *walker) litCaptures(lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		if captures {
			return false
		}
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.objOf(id).(*types.Var)
		if !ok || v.IsField() || pkgScoped(v) {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			captures = true
		}
		return true
	})
	return captures
}

// checkBoxing flags call arguments whose conversion to an interface
// parameter heap-allocates (concrete, non-word-sized, non-constant).
func (w *walker) checkBoxing(ce *ast.CallExpr) {
	sig, ok := w.underlyingOf(ce.Fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range ce.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if ce.Ellipsis.IsValid() {
				continue // s… passes the slice, no per-element boxing
			}
			if sl, ok := sig.Params().At(np - 1).Type().Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		w.boxingAt(arg, pt)
	}
}

func (w *walker) checkConvertBoxing(ce *ast.CallExpr) {
	if len(ce.Args) != 1 {
		return
	}
	w.boxingAt(ce.Args[0], w.typeOf(ce.Fun))
}

func (w *walker) boxingAt(arg ast.Expr, pt types.Type) {
	if pt == nil || !types.IsInterface(pt) {
		return
	}
	at := w.typeOf(arg)
	if at == nil || types.IsInterface(at) || wordSized(at) {
		return
	}
	if b, ok := at.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return // untyped nil and friends
	}
	if tv, ok := w.info().Types[arg]; ok && tv.Value != nil {
		return // constants: noise, and often interned
	}
	w.addAlloc(arg.Pos(), "interface boxing of "+at.String())
}
