package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `for … range` over map types. Map iteration order is
// deliberately randomized by the runtime, so any loop whose effect
// depends on visit order breaks per-seed bit-identity. A loop passes
// when the orderFree classifier proves the body order-insensitive by
// construction, or when it carries a justified //det:unordered.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "flags range-over-map loops that are not provably order-insensitive; " +
		"iterate sorted keys, reduce purely, or justify with //det:unordered",
	Run: runMapRange,
}

func runMapRange(pass *Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			defer func() { stack = append(stack, n) }()
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if _, ok := pass.Annot.For(rng.For, TagUnordered); ok {
				return true
			}
			if orderFree(pass, rng, stack) {
				return true
			}
			pass.Reportf(rng.For,
				"range over map %s is not provably order-insensitive: iterate sorted keys or annotate //det:unordered <reason>",
				types.ExprString(rng.X))
			return true
		})
	}
	return nil
}

// wallFuncs are the package-level time functions that read or depend on
// the wall clock / OS timer. Pure value constructors and arithmetic
// (time.Duration, time.Unix, d.Seconds()) stay legal.
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// WallTime forbids wall-clock reads in deterministic packages. The
// simulation has exactly one clock — sim.Stream's — and a time.Now
// anywhere under it makes output depend on host speed. Exemptions:
// package main (cmd/ and examples/ report real elapsed time to humans)
// and //det:wallclock sites, the platform's measured-time plumbing.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: "forbids time.Now/Since/Sleep and friends outside package main; " +
		"measured-time plumbing must justify itself with //det:wallclock",
	Run: runWallTime,
}

func runWallTime(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" || !wallFuncs[obj.Name()] {
				return true
			}
			if fn, ok := obj.(*types.Func); !ok || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if _, ok := pass.Annot.For(sel.Pos(), TagWallclock); ok {
				return true
			}
			pass.Reportf(sel.Pos(),
				"wall-clock dependence: time.%s is forbidden in deterministic packages; use the simulation clock or annotate //det:wallclock <reason>",
				obj.Name())
			return true
		})
	}
	return nil
}

// randConstructors are the math/rand(/v2) package-level functions that
// build explicitly-seeded generators — the one blessed idiom: every
// random stream must be a rand.New(rand.NewSource(seed)) instance
// threaded from a Params/Config seed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, // math/rand
	"NewPCG": true, "NewChaCha8": true, "NewZipf": true, // math/rand/v2
}

// GlobalRand forbids the package-level math/rand functions (Intn,
// Float64, Shuffle, Perm, Seed, …), which draw from a shared global
// source: any goroutine interleaving or added call site silently shifts
// every stream after it. There is no annotation escape — the seeded
// instance idiom is always available.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "forbids package-level math/rand functions; thread a " +
		"rand.New(rand.NewSource(seed)) instance from a Params/Config seed",
	Run: runGlobalRand,
}

func runGlobalRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if p := obj.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() != nil || randConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"global randomness: rand.%s draws from the shared source; thread a rand.New(rand.NewSource(seed)) instance instead",
				fn.Name())
			return true
		})
	}
	return nil
}

// FloatRange flags floating-point accumulation into a variable that
// outlives a map-range loop. Float addition and multiplication do not
// associate, so the fold result depends on iteration order — the exact
// shape of PR 1's nondeterminism bug. This fires even inside loops
// annotated //det:unordered (such a justification is wrong for a float
// fold by definition); the only escape is an explicit //det:floatfold.
var FloatRange = &Analyzer{
	Name: "floatrange",
	Doc: "flags float accumulation across map-range iterations, where " +
		"iteration order changes the fold result bit-for-bit",
	Run: runFloatRange,
}

func runFloatRange(pass *Pass) error {
	seen := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkFloatFolds(pass, rng, seen)
			return true
		})
	}
	return nil
}

func checkFloatFolds(pass *Pass, rng *ast.RangeStmt, seen map[token.Pos]bool) {
	c := &classifier{pass: pass, locals: make(map[types.Object]bool)}
	c.collectLocals(rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asn, ok := n.(*ast.AssignStmt)
		if !ok || len(asn.Lhs) != 1 || seen[asn.Pos()] {
			return true
		}
		lhs := asn.Lhs[0]
		if !isFloatExpr(pass, lhs) || c.isLocal(lhs) {
			return true
		}
		accumulates := false
		switch asn.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			accumulates = true
		case token.ASSIGN:
			// x = x + e spelled out.
			if bin, ok := asn.Rhs[0].(*ast.BinaryExpr); ok {
				switch bin.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					l := types.ExprString(lhs)
					accumulates = types.ExprString(bin.X) == l || types.ExprString(bin.Y) == l
				}
			}
		}
		if !accumulates {
			return true
		}
		if _, ok := pass.Annot.For(asn.Pos(), TagFloatfold); ok {
			seen[asn.Pos()] = true
			return true
		}
		if _, ok := pass.Annot.For(rng.For, TagFloatfold); ok {
			seen[asn.Pos()] = true
			return true
		}
		seen[asn.Pos()] = true
		pass.Reportf(asn.Pos(),
			"floating-point fold into %s across map-range iterations: the sum depends on iteration order; iterate sorted keys or annotate //det:floatfold <reason>",
			types.ExprString(lhs))
		return true
	})
}

func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
