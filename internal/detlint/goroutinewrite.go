package detlint

// goroutinewrite flags `go`-launched closures that write variables
// captured from the enclosing scope with no synchronization discipline
// visible in the closure body — the classic shape of a data race that
// -race only catches when the schedule cooperates. Like globalrand,
// there is no annotation escape: the fix is a channel handoff, a sync
// primitive, or not sharing the variable.
//
// Heuristic exemption: a closure whose body performs a channel
// operation (send, receive, select, range over a channel) or calls into
// package sync (WaitGroup.Done, Mutex.Lock, Once.Do, …) is assumed to
// order its captured writes behind that primitive. The analyzer proves
// the absence of obviously-unsynchronized writes, not the presence of a
// correct protocol — the race detector remains the runtime gate.

import (
	"go/ast"
	"go/types"
)

// GoroutineWrite reports unsynchronized writes to captured variables in
// go-launched closures.
var GoroutineWrite = &Analyzer{
	Name: "goroutinewrite",
	Doc:  "go-launched closures must not write captured variables without a sync primitive or channel handoff (no annotation escape)",
	Run:  runGoroutineWrite,
}

func runGoroutineWrite(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(nd ast.Node) bool {
			gs, ok := nd.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoClosure(pass, lit)
			return true
		})
	}
	return nil
}

func checkGoClosure(pass *Pass, lit *ast.FuncLit) {
	if closureSynchronizes(pass, lit) {
		return
	}
	report := func(id *ast.Ident) {
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || pkgScoped(v) {
			return
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return // declared inside the closure
		}
		pass.Reportf(id.Pos(),
			"go-launched closure writes captured variable %s without a sync primitive or channel handoff; pass the result over a channel or guard it (no annotation escape)",
			v.Name())
	}
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			if x != lit {
				return false // nested closures are not go-launched here
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					report(id)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := unparen(x.X).(*ast.Ident); ok {
				report(id)
			}
		}
		return true
	})
}

// closureSynchronizes reports whether the closure body contains a
// channel operation or a call into package sync.
func closureSynchronizes(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		if found {
			return false
		}
		switch x := nd.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t, ok := pass.TypesInfo.Types[x.X]; ok && t.Type != nil {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					found = true // close(ch) publishes to the receiver
				}
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if s := pass.TypesInfo.Selections[sel]; s != nil {
					if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
						found = true
					}
				} else if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
					if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
