package detlint

// The intraprocedural half of the effects engine (effects.go): one
// walker analyzes one funcNode, computing local provenance to a small
// fixpoint and then collecting write effects and allocation sites, with
// callee summaries substituted at call sites.

import (
	"go/ast"
	"go/token"
	"go/types"
)

type walker struct {
	prog *Program
	fn   *funcNode

	env        map[*types.Var]prov
	litBind    map[*types.Var]bool // locals bound to a func literal
	envChanged bool
	collect    bool

	skipLit  map[*ast.FuncLit]bool  // go-launched literal bodies
	skipCall map[*ast.CallExpr]bool // go-launched calls
	takenLit map[*ast.CompositeLit]bool

	seenEff   map[string]bool
	seenAlloc map[token.Pos]bool
	effects   []effect
	allocs    []allocSite
	ret       prov
}

func (p *Program) analyzeNode(n *funcNode) *summary {
	w := &walker{
		prog:      p,
		fn:        n,
		env:       make(map[*types.Var]prov),
		litBind:   make(map[*types.Var]bool),
		skipLit:   make(map[*ast.FuncLit]bool),
		skipCall:  make(map[*ast.CallExpr]bool),
		takenLit:  make(map[*ast.CompositeLit]bool),
		seenEff:   make(map[string]bool),
		seenAlloc: make(map[token.Pos]bool),
	}
	if n.recv != nil {
		w.env[n.recv] = prov{kind: provRecv}
	}
	for i, pv := range n.params {
		if n.obj != nil {
			w.env[pv] = prov{kind: provParam, param: i}
		} else if pointerLike(pv.Type()) {
			// Standalone-literal parameters have no caller-side story;
			// writes through pointer-like ones degrade to havoc.
			w.env[pv] = prov{kind: provUnknown}
		} else {
			w.env[pv] = prov{kind: provFresh}
		}
	}
	for range [8]struct{}{} {
		w.envChanged = false
		w.walk()
		if !w.envChanged {
			break
		}
	}
	w.collect = true
	w.walk()
	return &summary{effects: w.effects, allocs: w.allocs, ret: w.ret}
}

func (w *walker) info() *types.Info { return w.fn.pkg.Info }

func (w *walker) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.info().Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (w *walker) objOf(id *ast.Ident) types.Object {
	if o := w.info().Uses[id]; o != nil {
		return o
	}
	return w.info().Defs[id]
}

func (w *walker) contains(pos token.Pos) bool {
	return pos >= w.fn.lo && pos < w.fn.hi
}

func (w *walker) annotFor(pos token.Pos, tag string) bool {
	_, ok := w.fn.pkg.Annot.For(pos, tag)
	return ok
}

// declExcused reports whether the containing declaration carries the
// given escape tag, excusing every site inside the function. The whole
// doc comment group is scanned so a declaration can stack several
// //det: tags (e.g. specwrite and hotalloc on one memo function).
func (w *walker) declExcused(tag string) bool {
	if w.fn.decl == nil {
		return false
	}
	return w.annotFor(w.fn.decl.Pos(), tag) || docHasTag(w.fn.decl.Doc, tag)
}

// docHasTag reports whether a doc comment group carries the given
// //det: tag on any of its lines.
func docHasTag(doc *ast.CommentGroup, tag string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if ann, ok := ParseAnnotation(c.Text); ok && ann.Tag == tag {
			return true
		}
	}
	return false
}

func (w *walker) walk() {
	ast.Inspect(w.fn.body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.GoStmt:
			// The goroutine body runs concurrently: havoc for effects,
			// one allocation for the launch. Arguments still evaluate in
			// this frame and are visited as children.
			if lit, ok := unparen(x.Call.Fun).(*ast.FuncLit); ok {
				w.skipLit[lit] = true
			}
			w.skipCall[x.Call] = true
			if w.collect {
				w.addRaw(effect{kind: provUnknown, pos: x.Pos(),
					desc: "launches a goroutine (concurrent effects are not analyzed)"})
				w.addAlloc(x.Pos(), "goroutine launch")
			}
		case *ast.FuncLit:
			if w.skipLit[x] {
				return false
			}
			// Folded inline: captured locals resolve against this env.
			// The value itself is a closure allocation when it captures.
			if w.collect && w.litCaptures(x) {
				w.addAlloc(x.Pos(), "capturing closure")
			}
		case *ast.AssignStmt:
			w.assign(x)
		case *ast.IncDecStmt:
			if w.collect {
				w.writeTo(x.X, "update of")
			}
		case *ast.SendStmt:
			if w.collect {
				w.refWrite(x.Chan, "channel send to")
			}
		case *ast.DeclStmt:
			w.declStmt(x)
		case *ast.RangeStmt:
			w.rangeVars(x)
		case *ast.TypeSwitchStmt:
			w.typeSwitchVar(x)
		case *ast.CallExpr:
			w.call(x)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := unparen(x.X).(*ast.CompositeLit); ok {
					w.takenLit[cl] = true
					if w.collect {
						w.addAlloc(x.Pos(), "&composite literal (heap allocation)")
					}
				}
			}
		case *ast.CompositeLit:
			if w.collect && !w.takenLit[x] {
				switch w.underlyingOf(x).(type) {
				case *types.Slice:
					w.addAlloc(x.Pos(), "slice composite literal")
				case *types.Map:
					w.addAlloc(x.Pos(), "map composite literal")
				}
			}
		case *ast.ReturnStmt:
			if w.collect {
				w.returnStmt(x)
			}
		}
		return true
	})
}

func (w *walker) underlyingOf(e ast.Expr) types.Type {
	t := w.typeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func (w *walker) returnStmt(x *ast.ReturnStmt) {
	if len(x.Results) == 0 {
		for _, rv := range w.fn.results {
			w.ret = joinProv(w.ret, w.varClass(rv))
		}
		return
	}
	for _, r := range x.Results {
		w.ret = joinProv(w.ret, w.provOf(r))
	}
}

// varClass is the provenance of the value a variable currently holds.
func (w *walker) varClass(v *types.Var) prov {
	if pr, ok := w.env[v]; ok {
		return pr
	}
	if v.IsField() {
		return prov{kind: provNone}
	}
	if pkgScoped(v) {
		return prov{kind: provGlobal}
	}
	if !w.contains(v.Pos()) {
		return prov{kind: provCaptured, capv: v}
	}
	return prov{kind: provFresh}
}

func (w *walker) updateEnv(v *types.Var, pr prov) {
	old, ok := w.env[v]
	nw := joinProv(old, pr)
	if !ok || nw != old {
		w.env[v] = nw
		w.envChanged = true
	}
}

func (w *walker) assign(x *ast.AssignStmt) {
	var rhs []prov
	switch {
	case len(x.Rhs) == 1 && len(x.Lhs) > 1:
		pr := w.provOf(x.Rhs[0])
		for range x.Lhs {
			rhs = append(rhs, pr)
		}
	case len(x.Rhs) == len(x.Lhs):
		for _, r := range x.Rhs {
			rhs = append(rhs, w.provOf(r))
		}
	}
	for i, lhs := range x.Lhs {
		lhs = unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			v, ok := w.objOf(id).(*types.Var)
			if !ok {
				continue
			}
			local := !pkgScoped(v) && w.contains(v.Pos())
			if local {
				if i < len(rhs) {
					w.updateEnv(v, rhs[i])
				}
				if i < len(x.Rhs) {
					if _, isLit := unparen(x.Rhs[i]).(*ast.FuncLit); isLit {
						w.litBind[v] = true
					}
				}
				continue // writing local storage is frame-private
			}
			if w.collect {
				if pkgScoped(v) {
					w.addRaw(effect{kind: provGlobal, pos: id.Pos(),
						desc: "assignment to package variable " + v.Name()})
				} else {
					w.addRaw(effect{kind: provCaptured, capv: v, pos: id.Pos(),
						desc: "assignment to captured variable " + v.Name()})
				}
			}
			continue
		}
		if w.collect {
			w.writeTo(lhs, "assignment to")
		}
	}
}

func (w *walker) declStmt(x *ast.DeclStmt) {
	gd, ok := x.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			v, ok := w.info().Defs[name].(*types.Var)
			if !ok {
				continue
			}
			pr := prov{kind: provFresh}
			if len(vs.Values) == len(vs.Names) {
				pr = w.provOf(vs.Values[i])
				if _, isLit := unparen(vs.Values[i]).(*ast.FuncLit); isLit {
					w.litBind[v] = true
				}
			} else if len(vs.Values) == 1 {
				pr = w.provOf(vs.Values[0])
			}
			w.updateEnv(v, pr)
		}
	}
}

func (w *walker) rangeVars(x *ast.RangeStmt) {
	set := func(e ast.Expr, pr prov) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if v, ok := w.objOf(id).(*types.Var); ok && !pkgScoped(v) && w.contains(v.Pos()) {
			w.updateEnv(v, pr)
		}
	}
	if x.Key != nil {
		set(x.Key, prov{kind: provFresh})
	}
	if x.Value != nil {
		pr := prov{kind: provFresh}
		if pointerLike(w.typeOf(x.Value)) {
			pr = w.provOf(x.X)
		}
		set(x.Value, pr)
	}
}

func (w *walker) typeSwitchVar(x *ast.TypeSwitchStmt) {
	as, ok := x.Assign.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	pr := prov{kind: provUnknown}
	if ta, ok := unparen(as.Rhs[0]).(*ast.TypeAssertExpr); ok {
		pr = w.provOf(ta.X)
	}
	// The per-case variables are distinct implicit objects, one per
	// case clause (Info.Implicits).
	ast.Inspect(x.Body, func(nd ast.Node) bool {
		cc, ok := nd.(*ast.CaseClause)
		if !ok {
			return true
		}
		if v, ok := w.info().Implicits[cc].(*types.Var); ok {
			w.updateEnv(v, pr)
		}
		return false
	})
	if v, ok := w.info().Defs[id].(*types.Var); ok && v != nil {
		w.updateEnv(v, pr)
	}
}
