package core

import (
	"math"
	"math/rand"
	"testing"

	"watter/internal/baseline"
	"watter/internal/order"
	"watter/internal/pool"
	"watter/internal/roadnet"
	"watter/internal/sim"
	"watter/internal/strategy"
)

// workload builds a deterministic synthetic order stream with hotspot
// structure so sharing opportunities exist.
func workload(net *roadnet.GridCity, n int, seed int64, tau float64) []*order.Order {
	rng := rand.New(rand.NewSource(seed))
	orders := make([]*order.Order, 0, n)
	for i := 0; i < n; i++ {
		// Half the demand flows from a hotspot quarter to another.
		var px, py, dx, dy int
		if rng.Intn(2) == 0 {
			px, py = rng.Intn(6), rng.Intn(6)
			dx, dy = 12+rng.Intn(6), 12+rng.Intn(6)
		} else {
			px, py = rng.Intn(net.W), rng.Intn(net.H)
			dx, dy = rng.Intn(net.W), rng.Intn(net.H)
		}
		pu, do := net.Node(px, py), net.Node(dx, dy)
		if pu == do {
			continue
		}
		direct := net.Cost(pu, do)
		release := float64(rng.Intn(600))
		orders = append(orders, &order.Order{
			ID: i + 1, Pickup: pu, Dropoff: do, Riders: 1,
			Release: release, Deadline: release + tau*direct,
			WaitLimit: 0.8 * direct, DirectCost: direct,
		})
	}
	return orders
}

func fleet(net *roadnet.GridCity, m int, seed int64) []*order.Worker {
	rng := rand.New(rand.NewSource(seed))
	ws := make([]*order.Worker, m)
	for i := range ws {
		ws[i] = &order.Worker{
			ID:       i + 1,
			Loc:      net.Node(rng.Intn(net.W), rng.Intn(net.H)),
			Capacity: 2 + rng.Intn(3),
		}
	}
	return ws
}

func runAlg(t *testing.T, alg sim.Algorithm, n, m int, tau float64) *sim.Metrics {
	t.Helper()
	net := roadnet.NewGridCity(20, 20, 100, 10)
	orders := workload(net, n, 7, tau)
	env := sim.NewEnv(net, fleet(net, m, 11), sim.DefaultConfig())
	opts := sim.DefaultRunOptions()
	opts.MeasureTime = false
	metrics := sim.Run(env, alg, orders, opts)
	assertAccounting(t, metrics, len(orders))
	return metrics
}

// assertAccounting: every order is either served or rejected, exactly once.
func assertAccounting(t *testing.T, m *sim.Metrics, total int) {
	t.Helper()
	if m.Served+m.Rejected != total {
		t.Fatalf("accounting broken: served %d + rejected %d != total %d",
			m.Served, m.Rejected, total)
	}
	if m.ServedExtra < 0 || m.PenaltySum < 0 || m.WorkerTravel < 0 {
		t.Fatalf("negative metric: %+v", m)
	}
}

func TestFrameworkOnlineServesEverythingWithBigFleet(t *testing.T) {
	m := runAlg(t, New(strategy.Online{}, pool.DefaultOptions()), 120, 60, 2.0)
	if m.ServiceRate() < 0.9 {
		t.Fatalf("online with abundant workers should serve nearly all: rate %.3f", m.ServiceRate())
	}
}

func TestFrameworkTimeoutFormsMoreGroups(t *testing.T) {
	// tau = 3.0: holding a group to its wait limit consumes ~0.8*direct of
	// deadline slack, and dispatch must still fit the worker's approach leg
	// inside what remains. Tighter deadlines would kill held groups before
	// the timeout strategy gets to release them.
	online := runAlg(t, New(strategy.Online{}, pool.DefaultOptions()), 200, 12, 3.0)
	timeout := runAlg(t, New(strategy.Timeout{Tick: 10}, pool.DefaultOptions()), 200, 12, 3.0)
	shared := func(m *sim.Metrics) int {
		s := 0
		for k := 2; k < len(m.GroupSizeHist); k++ {
			s += m.GroupSizeHist[k]
		}
		return s
	}
	if shared(timeout) <= shared(online) {
		t.Fatalf("timeout should form at least as many shared groups: timeout %d vs online %d",
			shared(timeout), shared(online))
	}
}

func TestFrameworkThresholdBetweenExtremes(t *testing.T) {
	// A moderate constant threshold must produce response times between
	// online (immediate) and timeout (max wait).
	online := runAlg(t, New(strategy.Online{}, pool.DefaultOptions()), 150, 20, 2.0)
	timeout := runAlg(t, New(strategy.Timeout{Tick: 10}, pool.DefaultOptions()), 150, 20, 2.0)
	thr := runAlg(t, New(&strategy.Threshold{
		Source: strategy.ConstantThreshold(120), Alpha: 1, Beta: 1,
	}, pool.DefaultOptions()), 150, 20, 2.0)
	avgResp := func(m *sim.Metrics) float64 {
		if m.Served == 0 {
			return 0
		}
		return m.ResponseSum / float64(m.Served)
	}
	if avgResp(online) > avgResp(timeout) {
		t.Fatalf("online resp %.1f should not exceed timeout resp %.1f",
			avgResp(online), avgResp(timeout))
	}
	if avgResp(thr) < avgResp(online)-1e-9 {
		t.Fatalf("threshold resp %.1f below online resp %.1f", avgResp(thr), avgResp(online))
	}
}

func TestFrameworkRejectsImpossibleOrder(t *testing.T) {
	net := roadnet.NewGridCity(10, 10, 100, 10)
	o := &order.Order{
		ID: 1, Pickup: net.Node(0, 0), Dropoff: net.Node(5, 0), Riders: 1,
		Release: 0, Deadline: 10, // direct is 50s: hopeless
		WaitLimit: 10, DirectCost: 50,
	}
	env := sim.NewEnv(net, fleet(roadnet.NewGridCity(10, 10, 100, 10), 3, 1), sim.DefaultConfig())
	opts := sim.DefaultRunOptions()
	opts.MeasureTime = false
	m := sim.Run(env, New(strategy.Online{}, pool.DefaultOptions()), []*order.Order{o}, opts)
	if m.Rejected != 1 || m.Served != 0 {
		t.Fatalf("impossible order must be rejected: %+v", m)
	}
	if math.Abs(m.PenaltySum-o.Penalty()) > 1e-9 {
		t.Fatalf("penalty %v, want %v", m.PenaltySum, o.Penalty())
	}
}

func TestFrameworkNoWorkersRejectsAll(t *testing.T) {
	net := roadnet.NewGridCity(10, 10, 100, 10)
	orders := workload(roadnet.NewGridCity(20, 20, 100, 10), 30, 3, 2.0)
	// Re-target orders to the smaller net to keep nodes valid.
	for _, o := range orders {
		o.Pickup = o.Pickup % 100
		o.Dropoff = o.Dropoff % 100
		if o.Pickup == o.Dropoff {
			o.Dropoff = (o.Dropoff + 1) % 100
		}
		o.DirectCost = net.Cost(o.Pickup, o.Dropoff)
		o.Deadline = o.Release + 2*o.DirectCost
		o.WaitLimit = 0.8 * o.DirectCost
	}
	env := sim.NewEnv(net, nil, sim.DefaultConfig())
	opts := sim.DefaultRunOptions()
	opts.MeasureTime = false
	m := sim.Run(env, New(strategy.Online{}, pool.DefaultOptions()), orders, opts)
	if m.Served != 0 || m.Rejected != len(orders) {
		t.Fatalf("no workers: %+v", m)
	}
}

func TestGDPBaselineRuns(t *testing.T) {
	m := runAlg(t, &baseline.GDP{}, 150, 20, 2.0)
	if m.ServiceRate() < 0.5 {
		t.Fatalf("GDP service rate suspiciously low: %.3f", m.ServiceRate())
	}
}

func TestGASBaselineRuns(t *testing.T) {
	m := runAlg(t, &baseline.GAS{BatchSeconds: 5}, 120, 20, 2.0)
	if m.ServiceRate() < 0.4 {
		t.Fatalf("GAS service rate suspiciously low: %.3f", m.ServiceRate())
	}
	shared := 0
	for k := 2; k < len(m.GroupSizeHist); k++ {
		shared += m.GroupSizeHist[k]
	}
	if shared == 0 {
		t.Fatal("GAS never grouped orders despite hotspot workload")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *sim.Metrics {
		net := roadnet.NewGridCity(20, 20, 100, 10)
		orders := workload(net, 100, 13, 2.0)
		env := sim.NewEnv(net, fleet(net, 15, 5), sim.DefaultConfig())
		opts := sim.DefaultRunOptions()
		opts.MeasureTime = false
		return sim.Run(env, New(&strategy.Threshold{
			Source: strategy.ConstantThreshold(90), Alpha: 1, Beta: 1,
		}, pool.DefaultOptions()), orders, opts)
	}
	a, b := run(), run()
	if a.Served != b.Served || a.Rejected != b.Rejected ||
		math.Abs(a.ServedExtra-b.ServedExtra) > 1e-6 ||
		math.Abs(a.WorkerTravel-b.WorkerTravel) > 1e-6 {
		t.Fatalf("nondeterministic runs:\n%v\n%v", a, b)
	}
}

func TestWorkersConserveTime(t *testing.T) {
	// A worker's accumulated travel cost can never exceed the horizon it
	// had available (FreeAt monotonicity sanity).
	net := roadnet.NewGridCity(20, 20, 100, 10)
	orders := workload(net, 120, 17, 2.0)
	workers := fleet(net, 10, 23)
	env := sim.NewEnv(net, workers, sim.DefaultConfig())
	opts := sim.DefaultRunOptions()
	opts.MeasureTime = false
	sim.Run(env, New(strategy.Online{}, pool.DefaultOptions()), orders, opts)
	var total float64
	for _, w := range workers {
		if w.TravelCost < 0 {
			t.Fatalf("negative travel for worker %d", w.ID)
		}
		total += w.TravelCost
	}
	if math.Abs(total-env.Metrics.WorkerTravel) > 1e-6 {
		t.Fatalf("fleet travel %v != metric %v", total, env.Metrics.WorkerTravel)
	}
}
