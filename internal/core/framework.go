// Package core implements the WATTER framework's order pooling management
// algorithm (paper Algorithm 1): new orders join the temporal shareability
// graph, edges and groups expire as time passes, and an asynchronous
// periodic check walks the pool deciding — per order, via a pluggable
// strategy — whether its current best group should be dispatched to the
// closest available worker.
package core

import (
	"math"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/pool"
	"watter/internal/shard"
	"watter/internal/sim"
	"watter/internal/strategy"
)

// Framework is the WATTER order pooling manager. It satisfies
// sim.Algorithm; the Decision strategy selects the WATTER variant
// (online / timeout / expect).
type Framework struct {
	Decide  strategy.Decision
	PoolOpt pool.Options
	// Tick is the periodic-check interval Δt; the framework uses it for
	// "last call" dispatches: a group (or solo order) whose feasibility
	// horizon ends before the next check is dispatched now regardless of
	// the strategy — the paper's "orders will only be rejected when they
	// cannot be served in the extreme cases".
	Tick float64
	// Shards is the slot-shard count of the dispatch engine (see
	// internal/shard). 1 — the default — runs the classic sequential
	// check; K > 1 fans the expensive read-only tick work (worker-probe
	// ring searches, singleton plans, pairwise prewarm) over K goroutines
	// while keeping every decision bit-identical to the sequential run.
	Shards int

	env    *sim.Env
	pool   *pool.Pool
	engine *shard.Engine

	// pendingNoWorker tracks group keys that were approved for dispatch
	// but had no idle worker; they retry at the next check automatically
	// because the pool state is unchanged.
	dispatched int
}

// New builds a framework with the given decision strategy and pool options
// and the paper's default Δt = 10 s.
func New(decide strategy.Decision, opt pool.Options) *Framework {
	return &Framework{Decide: decide, PoolOpt: opt, Tick: 10, Shards: 1}
}

// Name implements sim.Algorithm.
func (f *Framework) Name() string { return f.Decide.Name() }

// Pool exposes the shareability graph (read-only use: MDP featurization).
func (f *Framework) Pool() *pool.Pool { return f.pool }

// ShardEngine exposes the slot-sharded dispatch engine, nil when Shards
// <= 1 or before Init (benchmarks read its speculation stats).
func (f *Framework) ShardEngine() *shard.Engine { return f.engine }

// SetTick aligns the framework's last-call horizon with the platform's
// periodic-check interval. Must be called before Init; the platform
// constructor calls it so Δt is configured in exactly one place.
func (f *Framework) SetTick(dt float64) { f.Tick = dt }

// SetPoolOptions replaces the shareability-graph tuning before a run.
// Must be called before Init; the platform's WithPool option uses it.
func (f *Framework) SetPoolOptions(opt pool.Options) { f.PoolOpt = opt }

// SetShards sets the dispatch engine's shard count before a run (values
// below 1 mean 1: the sequential check). Must be called before Init; the
// platform's WithShards option uses it. Results are bit-identical at any
// shard count — sharding buys cores, never different dispatches.
func (f *Framework) SetShards(k int) {
	if k < 1 {
		k = 1
	}
	f.Shards = k
}

// SetCandidateRadius overrides the pool's spatial prefilter before a run
// (used by the candidate-radius ablation bench). Must be called before
// Init.
func (f *Framework) SetCandidateRadius(r int) { f.PoolOpt.CandidateRadius = r }

// SetMaxGroupSize bounds clique enumeration (used by the grouping-bound
// ablation bench). Must be called before Init.
func (f *Framework) SetMaxGroupSize(k int) { f.PoolOpt.MaxGroupSize = k }

// Init implements sim.Algorithm.
func (f *Framework) Init(env *sim.Env) {
	f.env = env
	opt := f.PoolOpt
	if opt.Capacity == 0 {
		opt.Capacity = env.Cfg.Capacity
	}
	f.pool = pool.New(env.Planner, env.Index, opt)
	f.dispatched = 0
	f.engine = nil
	if f.Shards > 1 {
		radius := opt.CandidateRadius
		if radius < 0 {
			radius = env.Index.N() // prefilter disabled: everything borders
		}
		eng, err := shard.NewEngine(f.Shards, env.Index, env.WIndex, env.Planner, env.Cfg.Capacity, radius)
		if err != nil {
			// Inputs are validated by SetShards and the table clamps k;
			// reaching here is a programming error.
			panic(err)
		}
		f.engine = eng
	}
}

// OnOrder implements sim.Algorithm: lines 2-4 of Algorithm 1. An order that
// cannot be served even alone is rejected immediately. With the sharded
// engine on, the pairwise shareability plans the insert needs are computed
// across the shards first — pure work whose merged results leave the
// pool's decisions untouched.
func (f *Framework) OnOrder(o *order.Order, now float64) {
	if o.Expired(now) || o.MaxResponse() < 0 {
		f.env.Reject(o, now)
		return
	}
	if f.engine != nil {
		f.pool.PrewarmPairs(o, now, f.engine)
		defer f.pool.FlushPrewarmedNegatives()
	}
	f.pool.Insert(o, now)
}

// OnTick implements sim.Algorithm: lines 5-16 of Algorithm 1.
func (f *Framework) OnTick(now float64) {
	// Lines 5-6: drop expired edges/groups; reject orders whose deadlines
	// became unreachable.
	for _, id := range f.pool.ExpireEdges(now) {
		o := f.pool.Order(id)
		f.pool.Remove(id, now)
		f.env.Reject(o, now)
	}
	f.checkOrders(now, false)
}

// Finish implements sim.Algorithm: the pool drains — every remaining order
// is dispatched if any feasible group and worker exist, otherwise rejected.
func (f *Framework) Finish(now float64) {
	for _, id := range f.pool.ExpireEdges(now) {
		o := f.pool.Order(id)
		f.pool.Remove(id, now)
		f.env.Reject(o, now)
	}
	f.checkOrders(now, true)
	// Whatever could not be dispatched (no worker / no feasible group) is
	// rejected so metrics account for every order.
	for _, id := range f.pool.OrderIDs() {
		o := f.pool.Order(id)
		f.pool.Remove(id, now)
		f.env.Reject(o, now)
	}
}

// checkOrders is the asynchronous periodic check (lines 8-16). When force
// is true every order with a feasible group is dispatched regardless of the
// strategy (used at drain time).
//
// Hold decisions are approach-aware: the pool's τg assumes the route starts
// at its first pickup, but a real dispatch prepends the assigned worker's
// approach leg, so a group held until the bare τg would be physically
// infeasible by the time a worker reaches it. The framework therefore
// shrinks the horizon it hands to the strategy (and its own last-call
// checks) by the current nearest idle worker's travel time.
//
// With the sharded engine on, every probe below is answered from the
// engine's speculation phase when still valid — the engine ran the
// identical searches in parallel against the tick-start state, and a
// speculation stays valid exactly while no dispatch this pass touched a
// cell the search visited. Invalidated or missing speculations fall back
// to the fresh probes of the sequential path, so the commit order and the
// resulting metrics are bit-identical at any shard count.
func (f *Framework) checkOrders(now float64, force bool) {
	// One fleet scan gates all horizon probes: with no idle worker the
	// probe would return 0 anyway, and per-order ring searches in a
	// saturated sim would only burn time.
	anyIdle := false
	for _, w := range f.env.Workers {
		if w.IdleAt(now) {
			anyIdle = true
			break
		}
	}
	ids := f.pool.OrderIDs()
	if f.engine != nil {
		f.engine.BeginTick(f.pool, ids, now, anyIdle)
	}
	for _, id := range ids {
		if !f.pool.Contains(id) {
			continue // removed earlier this pass as part of a group
		}
		o := f.pool.Order(id)
		g, expiry, ok := f.pool.BestGroup(id)
		// One probe serves both the horizon shrink and the dispatch: the
		// found (worker, approach) pair is handed straight to
		// DispatchGroupTo, since nothing mutates worker state between the
		// probe and the strategy's (pure) decision.
		var gw *order.Worker
		var gApproach float64
		if ok && anyIdle {
			hit := false
			if f.engine != nil {
				gw, gApproach, hit = f.engine.GroupProbe(id, g, expiry)
			}
			if !hit {
				gw, gApproach = f.env.WIndex.ClosestIdleWithin(
					g.Plan.Stops[0].Node, now, g.Riders(), expiry-now)
			}
			if gw != nil {
				expiry -= gApproach
			}
		}
		// Last call: the group becomes infeasible before the next check.
		groupLastCall := ok && expiry < now+f.Tick
		if ok && (force || groupLastCall || f.Decide.ShouldDispatch(g, expiry, now)) {
			if gw != nil && f.env.DispatchGroupTo(gw, gApproach, g, now) {
				f.pool.RemoveGroup(g, now)
				f.dispatched++
				continue
			}
			// No feasible worker for the group; fall through so a
			// last-call order can still try solo service before its
			// deadline dies.
		}
		// Lines 14-16: no shared group dispatched. Solo service happens
		// when the strategy serves loners eagerly (online), at the wait
		// limit, at solo last call, or at drain time.
		// The probe is skipped when the zero-approach bound already fires
		// (approach >= 0 can only strengthen it) or nobody is idle.
		soloApproach := 0.0
		if anyIdle && now+f.Tick+o.DirectCost <= o.Deadline {
			soloApproach = f.approachFor(id, o.Pickup, now, o.Riders, o.Deadline-now-o.DirectCost)
		}
		soloLastCall := now+f.Tick+soloApproach+o.DirectCost > o.Deadline
		if ok && !force && !soloLastCall {
			continue // holding a live shared group
		}
		if force || soloLastCall || f.Decide.ServeSoloEarly() || o.TimedOut(now) {
			f.serveSoloOrReject(o, now, force)
		}
	}
}

// approachFor returns the travel time of the nearest idle worker that
// could still serve within budget — the same budget-filtered cost notion
// DispatchGroup uses, so a grid-near but road-slow worker does not distort
// the horizon. Returns 0 when no idle worker fits the budget right now:
// with nobody to dispatch to, the hold decision falls back to the
// plan-only horizon instead of panicking every order into an early solo
// attempt (a closer worker may free up before the horizon dies).
func (f *Framework) approachFor(id int, node geo.NodeID, now float64, riders int, budget float64) float64 {
	var a float64
	hit := false
	if f.engine != nil {
		_, a, hit = f.engine.SoloProbe(id, budget)
	}
	if !hit {
		_, a = f.env.WIndex.ClosestIdleWithin(node, now, riders, budget)
	}
	if math.IsInf(a, 1) {
		return 0
	}
	return a
}

// serveSoloOrReject plans a singleton route for o. Served if feasible and a
// worker is idle; rejected when the route is infeasible or (at timeout /
// drain) nobody can take it.
func (f *Framework) serveSoloOrReject(o *order.Order, now float64, force bool) {
	var plan *order.RoutePlan
	var feasible, hit bool
	if f.engine != nil {
		plan, feasible, hit = f.engine.SoloPlan(o.ID)
	}
	if !hit {
		plan, feasible = f.env.Planner.PlanGroup([]*order.Order{o}, now, f.env.Cfg.Capacity)
	}
	if !feasible {
		f.pool.Remove(o.ID, now)
		f.env.Reject(o, now)
		return
	}
	g := &order.Group{Orders: []*order.Order{o}, Plan: plan}
	if f.dispatchSolo(g, o, now) {
		f.pool.Remove(o.ID, now)
		f.dispatched++
		return
	}
	if force {
		f.pool.Remove(o.ID, now)
		f.env.Reject(o, now)
	}
	// Otherwise: no idle worker; keep waiting ("served when there are
	// suitable workers, otherwise rejected") until the deadline expires.
}

// dispatchSolo books the singleton group, answering the worker probe from
// the engine's speculation when it is still valid for the plan's approach
// slack (the same budget DispatchGroup would compute); otherwise it is
// the plain DispatchGroup ring search.
func (f *Framework) dispatchSolo(g *order.Group, o *order.Order, now float64) bool {
	if f.engine != nil {
		slack := math.Inf(1)
		for i, s := range g.Plan.Stops {
			if s.Kind != order.DropoffStop || s.OrderID != o.ID {
				continue
			}
			if sl := o.Deadline - now - g.Plan.Arrive[i]; sl < slack {
				slack = sl
			}
		}
		if slack < 0 {
			return false // the plan itself is already past the deadline
		}
		if w, approach, ok := f.engine.SoloProbe(o.ID, slack); ok {
			if w == nil {
				return false
			}
			return f.env.DispatchGroupTo(w, approach, g, now)
		}
	}
	return f.env.DispatchGroup(g, now)
}
