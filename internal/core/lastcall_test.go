package core

import (
	"testing"

	"watter/internal/order"
	"watter/internal/pool"
	"watter/internal/roadnet"
	"watter/internal/sim"
	"watter/internal/strategy"
)

// holdForever is a strategy that never volunteers a dispatch — isolating
// the framework's own last-call machinery.
type holdForever struct{}

func (holdForever) Name() string                                       { return "hold" }
func (holdForever) ShouldDispatch(*order.Group, float64, float64) bool { return false }
func (holdForever) ServeSoloEarly() bool                               { return false }

func lastCallEnv(workers int) (*sim.Env, *roadnet.GridCity) {
	net := roadnet.NewGridCity(20, 20, 100, 10)
	var ws []*order.Worker
	for i := 0; i < workers; i++ {
		// Workers start at the test orders' pickup corner: last-call
		// dispatches happen with near-zero deadline slack, so only a
		// zero-approach worker can physically serve them (dispatch now
		// verifies the approach leg against every member's deadline).
		ws = append(ws, &order.Worker{ID: i + 1, Loc: net.Node(0, 0), Capacity: 4})
	}
	return sim.NewEnv(net, ws, sim.DefaultConfig()), net
}

func TestSoloLastCallBeatsDeadline(t *testing.T) {
	// One lonely order, strategy never dispatches: the framework's solo
	// last call must still serve it before the deadline dies — even
	// though its wait limit (0.8*direct) exceeds its slack (0.6*direct)
	// and is therefore unreachable.
	env, net := lastCallEnv(1)
	direct := net.Cost(net.Node(0, 0), net.Node(8, 0))
	o := &order.Order{
		ID: 1, Pickup: net.Node(0, 0), Dropoff: net.Node(8, 0), Riders: 1,
		Release: 0, Deadline: 1.6 * direct, WaitLimit: 0.8 * direct,
		DirectCost: direct,
	}
	fw := New(holdForever{}, pool.DefaultOptions())
	opts := sim.DefaultRunOptions()
	opts.MeasureTime = false
	m := sim.Run(env, fw, []*order.Order{o}, opts)
	if m.Served != 1 {
		t.Fatalf("solo last call failed: %+v", m)
	}
	// The order waited almost its whole slack: response in (slack-2*tick,
	// slack].
	slack := 0.6 * direct
	if m.ResponseSum <= slack-2*10 || m.ResponseSum > slack {
		t.Fatalf("response %v, want just under slack %v", m.ResponseSum, slack)
	}
}

func TestGroupLastCallFiresBeforeExpiry(t *testing.T) {
	// Two shareable orders, strategy never dispatches: the group's τg
	// passes before the solo deadline, so the framework must dispatch the
	// group at its last call rather than splitting it.
	env, net := lastCallEnv(2)
	mkO := func(id int, x int) *order.Order {
		pu, do := net.Node(x, 0), net.Node(x+8, 0)
		direct := net.Cost(pu, do)
		return &order.Order{
			ID: id, Pickup: pu, Dropoff: do, Riders: 1,
			Release: 0, Deadline: 1.5 * direct, WaitLimit: 0.8 * direct,
			DirectCost: direct,
		}
	}
	fw := New(holdForever{}, pool.DefaultOptions())
	opts := sim.DefaultRunOptions()
	opts.MeasureTime = false
	m := sim.Run(env, fw, []*order.Order{mkO(1, 0), mkO(2, 1)}, opts)
	if m.Served != 2 {
		t.Fatalf("group last call failed: %+v", m)
	}
	if m.GroupSizeHist[2] != 1 {
		t.Fatalf("expected one shared pair, hist %v", m.GroupSizeHist)
	}
}

func TestWaitLimitTriggersSoloWhenReachable(t *testing.T) {
	// With a generous deadline (tau=3), the wait limit (0.8*direct) is
	// reachable and must trigger solo service near t+eta, well before the
	// deadline-driven last call (slack = 2*direct).
	env, net := lastCallEnv(1)
	direct := net.Cost(net.Node(0, 0), net.Node(8, 0))
	o := &order.Order{
		ID: 1, Pickup: net.Node(0, 0), Dropoff: net.Node(8, 0), Riders: 1,
		Release: 0, Deadline: 3 * direct, WaitLimit: 0.8 * direct,
		DirectCost: direct,
	}
	fw := New(holdForever{}, pool.DefaultOptions())
	opts := sim.DefaultRunOptions()
	opts.MeasureTime = false
	m := sim.Run(env, fw, []*order.Order{o}, opts)
	if m.Served != 1 {
		t.Fatalf("wait-limit solo failed: %+v", m)
	}
	if m.ResponseSum <= o.WaitLimit-1e-9 || m.ResponseSum > o.WaitLimit+10+1e-9 {
		t.Fatalf("response %v, want in (eta, eta+tick]", m.ResponseSum)
	}
}

func TestOnlineDispatchesGroupAtFirstCheck(t *testing.T) {
	env, net := lastCallEnv(2)
	mkO := func(id int, x int, rel float64) *order.Order {
		pu, do := net.Node(x, 0), net.Node(x+8, 0)
		direct := net.Cost(pu, do)
		return &order.Order{
			ID: id, Pickup: pu, Dropoff: do, Riders: 1,
			Release: rel, Deadline: rel + 3*direct, WaitLimit: 0.8 * direct,
			DirectCost: direct,
		}
	}
	fw := New(strategy.Online{}, pool.DefaultOptions())
	opts := sim.DefaultRunOptions()
	opts.MeasureTime = false
	m := sim.Run(env, fw, []*order.Order{mkO(1, 0, 0), mkO(2, 1, 2)}, opts)
	if m.Served != 2 || m.GroupSizeHist[2] != 1 {
		t.Fatalf("online pair dispatch: %+v", m)
	}
	// Pair formed at t=2, first check at t=10: responses 10 and 8.
	if m.ResponseSum != 18 {
		t.Fatalf("responses sum %v, want 18", m.ResponseSum)
	}
}

func TestFrameworkTickDefault(t *testing.T) {
	fw := New(strategy.Online{}, pool.DefaultOptions())
	if fw.Tick != 10 {
		t.Fatalf("default tick = %v", fw.Tick)
	}
}

func TestRejectOnExpiredArrival(t *testing.T) {
	env, net := lastCallEnv(1)
	o := &order.Order{
		ID: 1, Pickup: net.Node(0, 0), Dropoff: net.Node(8, 0), Riders: 1,
		Release: 0, Deadline: 10, WaitLimit: 5, DirectCost: 80,
	}
	fw := New(strategy.Online{}, pool.DefaultOptions())
	opts := sim.DefaultRunOptions()
	opts.MeasureTime = false
	m := sim.Run(env, fw, []*order.Order{o}, opts)
	if m.Rejected != 1 || m.Served != 0 {
		t.Fatalf("dead-on-arrival order: %+v", m)
	}
}
