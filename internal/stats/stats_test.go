package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	want := math.Sqrt(2.5) // sample variance of 1..5 is 2.5
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.StdDev, want)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.StdDev != 0 || s.CI95() != 0 || s.Median != 7 {
		t.Fatalf("single-sample summary = %+v", s)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Summarize(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := map[float64]float64{0: 10, 100: 40, 50: 25, 25: 17.5}
	for p, want := range cases {
		if got := Percentile(xs, p); math.Abs(got-want) > 1e-12 {
			t.Fatalf("P%v = %v, want %v", p, got, want)
		}
	}
	// Input must not be mutated (sorted copy).
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 {
		t.Fatal("percentile mutated input")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	f := func(a, b uint8) bool {
		pa := float64(a) / 255 * 100
		pb := float64(b) / 255 * 100
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBracketsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Min <= s.Median && s.Median <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 137)
	for i := range xs {
		xs[i] = rng.NormFloat64()*40 + 7
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	s := Summarize(xs)
	if w.N() != s.N || w.Min() != s.Min || w.Max() != s.Max {
		t.Fatalf("welford = %+v, summary = %+v", w, s)
	}
	if math.Abs(w.Mean()-s.Mean) > 1e-9 || math.Abs(w.StdDev()-s.StdDev) > 1e-9 {
		t.Fatalf("mean/stddev drift: %v/%v vs %v/%v", w.Mean(), w.StdDev(), s.Mean, s.StdDev)
	}
	if math.Abs(w.CI95()-s.CI95()) > 1e-9 {
		t.Fatalf("ci95 drift: %v vs %v", w.CI95(), s.CI95())
	}
}

// TestWelfordMergeProperty: splitting a stream at any point and merging
// the two accumulators must agree with the unsplit stream — the invariant
// the sweep engine relies on to fold per-worker partials.
func TestWelfordMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 3
	}
	var whole Welford
	for _, x := range xs {
		whole.Add(x)
	}
	for _, cut := range []int{0, 1, 13, 50, 100, 101} {
		var a, b Welford
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() || math.Abs(a.Mean()-whole.Mean()) > 1e-9 ||
			math.Abs(a.StdDev()-whole.StdDev()) > 1e-9 ||
			a.Min() != whole.Min() || a.Max() != whole.Max() {
			t.Fatalf("merge at %d diverged: %+v vs %+v", cut, a, whole)
		}
	}
}

func TestWelfordZeroValue(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.StdDev() != 0 || w.CI95() != 0 {
		t.Fatalf("zero value not empty: %+v", w)
	}
	var other Welford
	other.Add(5)
	w.Merge(other)
	if w.N() != 1 || w.Mean() != 5 || w.Min() != 5 || w.Max() != 5 {
		t.Fatalf("merge into empty broken: %+v", w)
	}
	w.Merge(Welford{}) // merging empty is a no-op
	if w.N() != 1 {
		t.Fatalf("merge of empty changed n: %+v", w)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func(n int) Summary {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		return Summarize(xs)
	}
	small, big := mk(10), mk(1000)
	if big.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: n=10 %v vs n=1000 %v", small.CI95(), big.CI95())
	}
}
