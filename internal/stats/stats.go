// Package stats provides the small summary-statistics toolkit used by the
// experiment harness for multi-seed runs: means, standard deviations,
// percentiles and normal-approximation confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary; it panics on an empty sample (callers
// always control sample construction).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var vr float64
		for _, x := range xs {
			d := x - s.Mean
			vr += d * d
		}
		s.StdDev = math.Sqrt(vr / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the p-th percentile (0-100) with linear interpolation.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval around the mean (0 for samples of size < 2).
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// String formats "mean ± ci95 [min, max]".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g [%.4g, %.4g]", s.Mean, s.CI95(), s.Min, s.Max)
}

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm) with exact pairwise merging (Chan et al.) for combining
// independently-built accumulators. The sweep engine uses it for
// per-cell wall-clock summaries, which — unlike the metric summaries —
// need no retained samples. The zero value is an empty accumulator.
type Welford struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		w.min = math.Min(w.min, x)
		w.max = math.Max(w.max, x)
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into this one; the result is identical
// (up to floating-point association) to having Added both streams.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.min = math.Min(w.min, o.min)
	w.max = math.Max(w.max, o.max)
	w.n = n
}

// N returns the observation count.
func (w Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w Welford) Mean() float64 { return w.mean }

// StdDev returns the sample standard deviation (n-1 denominator; 0 for
// fewer than two observations).
func (w Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// Min returns the smallest observation (0 when empty).
func (w Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w Welford) Max() float64 { return w.max }

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval around the mean.
func (w Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.StdDev() / math.Sqrt(float64(w.n))
}

// String formats "mean ± ci95 (n)".
func (w Welford) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", w.Mean(), w.CI95(), w.n)
}
