package gridindex

import (
	"testing"

	"watter/internal/order"
)

func TestKNearestOrderingAndBound(t *testing.T) {
	net := testNet()
	ix := New(net, 10)
	var workers []*order.Worker
	for i := 0; i < 30; i++ {
		workers = append(workers, &order.Worker{
			ID: i + 1, Loc: net.Node((i*3)%20, (i*7)%20), Capacity: 4,
		})
	}
	wi := NewWorkerIndex(ix, net, workers)
	target := net.Node(10, 10)
	got := wi.KNearest(target, 5, nil)
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if net.Cost(got[i-1].Loc, target) > net.Cost(got[i].Loc, target) {
			t.Fatalf("not sorted by cost at %d", i)
		}
	}
	// The K nearest must not be farther than any excluded worker by more
	// than the one-ring approximation slack (one cell diagonal).
	worstKept := net.Cost(got[len(got)-1].Loc, target)
	slack := 2 * 2 * 100.0 / 10 // 2 cells of 2 nodes, 100 m, 10 m/s
	for _, w := range workers {
		kept := false
		for _, g := range got {
			if g.ID == w.ID {
				kept = true
			}
		}
		if !kept && net.Cost(w.Loc, target)+slack < worstKept {
			t.Fatalf("worker %d (cost %v) excluded but much closer than kept %v",
				w.ID, net.Cost(w.Loc, target), worstKept)
		}
	}
}

func TestKNearestPredicate(t *testing.T) {
	net := testNet()
	ix := New(net, 10)
	workers := []*order.Worker{
		{ID: 1, Loc: net.Node(10, 10), Capacity: 2},
		{ID: 2, Loc: net.Node(11, 10), Capacity: 4},
		{ID: 3, Loc: net.Node(12, 10), Capacity: 4},
	}
	wi := NewWorkerIndex(ix, net, workers)
	got := wi.KNearest(net.Node(10, 10), 3, func(w *order.Worker) bool {
		return w.Capacity >= 4
	})
	if len(got) != 2 {
		t.Fatalf("predicate ignored: %d workers", len(got))
	}
	for _, w := range got {
		if w.Capacity < 4 {
			t.Fatalf("predicate violated by worker %d", w.ID)
		}
	}
	if got := wi.KNearest(net.Node(0, 0), 0, nil); got != nil {
		t.Fatalf("k=0 must return nil, got %v", got)
	}
	// Asking for more than exist returns all.
	if got := wi.KNearest(net.Node(0, 0), 99, nil); len(got) != 3 {
		t.Fatalf("k>len returned %d", len(got))
	}
}
