package gridindex

import (
	"math"
	"testing"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/roadnet"
)

// detourNet builds a line city designed to break grid/road agreement:
//
//	pickup(0,0) ── 10s ── (100,0) ── 10s ── (200,0) ── 10s ── far(300,0)
//	   └────────────── 500s ─────────── near(50,0)
//	                                    island(60,0)   (no edges at all)
//
// "near" and "island" share the pickup's grid cell; "far" is three cells
// away but thirty road-seconds close.
func detourNet(t *testing.T) (*roadnet.Graph, [5]geo.NodeID) {
	t.Helper()
	var b roadnet.GraphBuilder
	pickup := b.AddNode(geo.Point{X: 0, Y: 0})
	near := b.AddNode(geo.Point{X: 50, Y: 0})
	island := b.AddNode(geo.Point{X: 60, Y: 0})
	mid1 := b.AddNode(geo.Point{X: 100, Y: 0})
	mid2 := b.AddNode(geo.Point{X: 200, Y: 0})
	far := b.AddNode(geo.Point{X: 300, Y: 0})
	b.AddBidirectional(pickup, near, 500)
	b.AddBidirectional(pickup, mid1, 10)
	b.AddBidirectional(mid1, mid2, 10)
	b.AddBidirectional(mid2, far, 10)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, [5]geo.NodeID{pickup, near, island, mid1, far}
}

// TestClosestIdleSkipsUnreachableWorker is the regression test for the
// dispatch bug: a grid-near but disconnected worker used to win the ring
// search with +Inf cost, shadowing a reachable worker two rings out, and
// DispatchGroup then rejected the order.
func TestClosestIdleSkipsUnreachableWorker(t *testing.T) {
	g, n := detourNet(t)
	pickup, island, far := n[0], n[2], n[4]
	ix := New(g, 4)
	if ix.CellOf(island) != ix.CellOf(pickup) {
		t.Fatalf("test setup: island cell %d != pickup cell %d", ix.CellOf(island), ix.CellOf(pickup))
	}
	stranded := &order.Worker{ID: 1, Loc: island, Capacity: 4}
	reachable := &order.Worker{ID: 2, Loc: far, Capacity: 4}
	wi := NewWorkerIndex(ix, g, []*order.Worker{stranded, reachable})

	got := wi.ClosestIdle(pickup, 0, 1)
	if got == nil {
		t.Fatal("no worker found despite a reachable one")
	}
	if got.ID != reachable.ID {
		t.Fatalf("picked worker %d, want reachable worker %d", got.ID, reachable.ID)
	}

	// With only the stranded worker, the query must come back empty rather
	// than hand out an infinite-cost candidate.
	wiOnly := NewWorkerIndex(ix, g, []*order.Worker{stranded})
	if w := wiOnly.ClosestIdle(pickup, 0, 1); w != nil {
		t.Fatalf("returned unreachable worker %d", w.ID)
	}
}

// TestKNearestSkipsUnreachableWorker: the k-nearest candidate list must not
// contain workers that cannot reach the target at all.
func TestKNearestSkipsUnreachableWorker(t *testing.T) {
	g, n := detourNet(t)
	pickup, near, island, far := n[0], n[1], n[2], n[4]
	ix := New(g, 4)
	workers := []*order.Worker{
		{ID: 1, Loc: island, Capacity: 4},
		{ID: 2, Loc: far, Capacity: 4},
		{ID: 3, Loc: near, Capacity: 4},
	}
	wi := NewWorkerIndex(ix, g, workers)
	got := wi.KNearest(pickup, 3, nil)
	if len(got) != 2 {
		t.Fatalf("got %d workers, want 2 (the island worker excluded)", len(got))
	}
	for _, w := range got {
		if w.ID == 1 {
			t.Fatal("unreachable worker in KNearest result")
		}
	}
	// Ordering is by road cost: far (30s) before near (500s).
	if got[0].ID != 2 || got[1].ID != 3 {
		t.Fatalf("order = [%d %d], want [2 3]", got[0].ID, got[1].ID)
	}
}

// TestClosestIdleWithinBudget: the travel-time budget excludes workers whose
// approach would blow a deadline, falling back to a farther-in-grid but
// faster-by-road candidate.
func TestClosestIdleWithinBudget(t *testing.T) {
	g, n := detourNet(t)
	pickup, near, far := n[0], n[1], n[4]
	ix := New(g, 4)
	slow := &order.Worker{ID: 1, Loc: near, Capacity: 4} // 500s by road, same cell
	fast := &order.Worker{ID: 2, Loc: far, Capacity: 4}  // 30s by road, 3 cells out
	wi := NewWorkerIndex(ix, g, []*order.Worker{slow, fast})

	w, c := wi.ClosestIdleWithin(pickup, 0, 1, 100)
	if w == nil || w.ID != fast.ID {
		t.Fatalf("got %+v, want the fast worker", w)
	}
	if c != 30 {
		t.Fatalf("cost = %v, want 30", c)
	}
	// A budget below every approach returns nothing.
	if w, _ := wi.ClosestIdleWithin(pickup, 0, 1, 20); w != nil {
		t.Fatalf("budget 20 returned worker %d", w.ID)
	}
	// Without a budget the ring search stops one ring past its first hit
	// and settles for the grid-near worker — the documented approximation.
	// The budget is what forces the walk past an infeasible early hit.
	if w, _ := wi.ClosestIdleWithin(pickup, 0, 1, math.Inf(1)); w == nil || w.ID != slow.ID {
		t.Fatal("unbounded query should stop at the first-ring hit")
	}
}
