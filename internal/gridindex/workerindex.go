package gridindex

import (
	"math"
	"sort"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/roadnet"
)

// WorkerIndex tracks workers by grid cell and answers "closest idle worker
// to node X at time T" queries with expanding ring search, the standard
// grid-accelerated dispatch lookup the paper adopts from prior studies.
// Each ring's surviving candidates are costed with one batched
// roadnet.FillCostMatrix call, so a Graph-backed network ranks the whole
// ring with pruned point-to-point searches instead of per-worker full
// Dijkstras.
type WorkerIndex struct {
	ix      *Index
	net     roadnet.Network
	cells   [][]*order.Worker // cell id -> workers whose Loc falls in it
	cellOf  map[int]int       // worker id -> cell id
	workers map[int]*order.Worker

	// Reusable batching scratch; WorkerIndex is single-goroutine state
	// (each simulation job owns its own index).
	candBuf []*order.Worker
	locBuf  []geo.NodeID
	costBuf []float64
}

// NewWorkerIndex indexes the given workers.
func NewWorkerIndex(ix *Index, net roadnet.Network, workers []*order.Worker) *WorkerIndex {
	wi := &WorkerIndex{
		ix:      ix,
		net:     net,
		cells:   make([][]*order.Worker, ix.NumCells()),
		cellOf:  make(map[int]int, len(workers)),
		workers: make(map[int]*order.Worker, len(workers)),
	}
	for _, w := range workers {
		wi.insert(w)
	}
	return wi
}

func (wi *WorkerIndex) insert(w *order.Worker) {
	c := wi.ix.CellOf(w.Loc)
	wi.cells[c] = append(wi.cells[c], w)
	wi.cellOf[w.ID] = c
	wi.workers[w.ID] = w
}

// Update must be called after a worker's Loc changes (e.g. after it
// finishes a route at a new drop-off point).
func (wi *WorkerIndex) Update(w *order.Worker) {
	old, ok := wi.cellOf[w.ID]
	if !ok {
		wi.insert(w)
		return
	}
	nc := wi.ix.CellOf(w.Loc)
	if nc == old {
		return
	}
	bucket := wi.cells[old]
	for i, ww := range bucket {
		if ww.ID == w.ID {
			bucket[i] = bucket[len(bucket)-1]
			wi.cells[old] = bucket[:len(bucket)-1]
			break
		}
	}
	wi.cells[nc] = append(wi.cells[nc], w)
	wi.cellOf[w.ID] = nc
}

// ringCosts batches the travel times from every candidate gathered for the
// current ring to node, reusing the index's scratch buffers. maxCost bounds
// each underlying search: candidates beyond it may come back +Inf, which
// every caller filters out anyway. On a Graph network this runs one pruned
// forward search per distinct candidate location (plus duplicate-location
// dedup) — a single reverse-graph sweep from node would be cheaper, but
// reverse-order float folds would break the engine's bit-equivalence
// contract with Cost, so forward searches are deliberate.
func (wi *WorkerIndex) ringCosts(node geo.NodeID, maxCost float64) []float64 {
	wi.locBuf = wi.locBuf[:0]
	for _, w := range wi.candBuf {
		wi.locBuf = append(wi.locBuf, w.Loc)
	}
	if cap(wi.costBuf) < len(wi.locBuf) {
		wi.costBuf = make([]float64, len(wi.locBuf))
	}
	wi.costBuf = wi.costBuf[:len(wi.locBuf)]
	target := [1]geo.NodeID{node}
	roadnet.FillCostMatrixWithin(wi.net, wi.locBuf, target[:], maxCost, wi.costBuf)
	return wi.costBuf
}

// ClosestIdle returns the idle worker (FreeAt <= now) with at least
// minCapacity seats whose travel time to node is smallest, or nil when no
// worker qualifies. Ring search expands outward from the node's cell and
// stops one ring after the first hit (a further ring cannot contain a
// closer worker only approximately, so one extra ring is scanned to absorb
// grid/metric mismatch).
func (wi *WorkerIndex) ClosestIdle(node geo.NodeID, now float64, minCapacity int) *order.Worker {
	w, _ := wi.ClosestIdleWithin(node, now, minCapacity, math.Inf(1))
	return w
}

// ClosestIdleWithin is ClosestIdle with a travel-time budget: workers whose
// cost to node exceeds maxCost are not candidates (the dispatcher passes
// the deadline slack the group can still absorb). Unreachable workers
// (+Inf cost) are never candidates — a grid-near but disconnected worker
// must not shadow a reachable one. Returns the worker and its travel time,
// or (nil, +Inf).
func (wi *WorkerIndex) ClosestIdleWithin(node geo.NodeID, now float64, minCapacity int, maxCost float64) (*order.Worker, float64) {
	center := wi.ix.CellOf(node)
	var best *order.Worker
	bestCost := math.Inf(1)
	maxD := wi.ix.N() // worst case scans every cell
	foundAt := -1
	seen := 0 // workers encountered (any state); == Len() means later rings are empty
	for d := 0; d <= maxD; d++ {
		wi.candBuf = wi.candBuf[:0]
		wi.ix.Ring(center, d, func(cell int) bool {
			seen += len(wi.cells[cell])
			for _, w := range wi.cells[cell] {
				if !w.IdleAt(now) || w.Capacity < minCapacity {
					continue
				}
				wi.candBuf = append(wi.candBuf, w)
			}
			return true
		})
		if len(wi.candBuf) > 0 {
			costs := wi.ringCosts(node, maxCost)
			for i, w := range wi.candBuf {
				c := costs[i]
				if math.IsInf(c, 1) || c > maxCost {
					continue // unreachable or beyond the deadline budget
				}
				if best == nil || c < bestCost || (c == bestCost && w.ID < best.ID) {
					best = w
					bestCost = c
				}
			}
		}
		if best != nil && foundAt < 0 {
			foundAt = d
		}
		if foundAt >= 0 && d >= foundAt+1 {
			break
		}
		if seen >= len(wi.workers) {
			break // every worker lives in a scanned cell; the rest is empty
		}
	}
	if best == nil {
		return nil, math.Inf(1)
	}
	return best, bestCost
}

// KNearest returns up to k workers passing pred, ordered by increasing
// travel time from their location to node. The ring search scans outward
// and stops once it has k hits and one extra ring (grid distance only
// approximates travel time). Workers that cannot reach node at all are
// excluded.
func (wi *WorkerIndex) KNearest(node geo.NodeID, k int, pred func(*order.Worker) bool) []*order.Worker {
	if k <= 0 {
		return nil
	}
	center := wi.ix.CellOf(node)
	type cand struct {
		w    *order.Worker
		cost float64
	}
	var cands []cand
	foundAt := -1
	seen := 0
	for d := 0; d <= wi.ix.N(); d++ {
		wi.candBuf = wi.candBuf[:0]
		wi.ix.Ring(center, d, func(cell int) bool {
			seen += len(wi.cells[cell])
			for _, w := range wi.cells[cell] {
				if pred != nil && !pred(w) {
					continue
				}
				wi.candBuf = append(wi.candBuf, w)
			}
			return true
		})
		if len(wi.candBuf) > 0 {
			costs := wi.ringCosts(node, math.Inf(1))
			for i, w := range wi.candBuf {
				if math.IsInf(costs[i], 1) {
					continue // disconnected: not a usable candidate
				}
				cands = append(cands, cand{w, costs[i]})
			}
		}
		if len(cands) >= k && foundAt < 0 {
			foundAt = d
		}
		if foundAt >= 0 && d >= foundAt+1 {
			break
		}
		if seen >= len(wi.workers) {
			break // all workers encountered; further rings are empty
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].w.ID < cands[j].w.ID
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]*order.Worker, len(cands))
	for i, c := range cands {
		out[i] = c.w
	}
	return out
}

// SupplyDistribution returns the normalized spatial distribution of idle
// workers at time now (the MDP state's sW vector).
func (wi *WorkerIndex) SupplyDistribution(now float64) Distribution {
	d := wi.ix.NewDistribution()
	for cell, ws := range wi.cells {
		for _, w := range ws {
			if w.IdleAt(now) {
				d[cell]++
			}
		}
	}
	d.Normalize()
	return d
}

// Len returns the number of indexed workers.
func (wi *WorkerIndex) Len() int { return len(wi.workers) }
