package gridindex

import (
	"sort"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/roadnet"
)

// WorkerIndex tracks workers by grid cell and answers "closest idle worker
// to node X at time T" queries with expanding ring search, the standard
// grid-accelerated dispatch lookup the paper adopts from prior studies.
type WorkerIndex struct {
	ix      *Index
	net     roadnet.Network
	cells   [][]*order.Worker // cell id -> workers whose Loc falls in it
	cellOf  map[int]int       // worker id -> cell id
	workers map[int]*order.Worker
}

// NewWorkerIndex indexes the given workers.
func NewWorkerIndex(ix *Index, net roadnet.Network, workers []*order.Worker) *WorkerIndex {
	wi := &WorkerIndex{
		ix:      ix,
		net:     net,
		cells:   make([][]*order.Worker, ix.NumCells()),
		cellOf:  make(map[int]int, len(workers)),
		workers: make(map[int]*order.Worker, len(workers)),
	}
	for _, w := range workers {
		wi.insert(w)
	}
	return wi
}

func (wi *WorkerIndex) insert(w *order.Worker) {
	c := wi.ix.CellOf(w.Loc)
	wi.cells[c] = append(wi.cells[c], w)
	wi.cellOf[w.ID] = c
	wi.workers[w.ID] = w
}

// Update must be called after a worker's Loc changes (e.g. after it
// finishes a route at a new drop-off point).
func (wi *WorkerIndex) Update(w *order.Worker) {
	old, ok := wi.cellOf[w.ID]
	if !ok {
		wi.insert(w)
		return
	}
	nc := wi.ix.CellOf(w.Loc)
	if nc == old {
		return
	}
	bucket := wi.cells[old]
	for i, ww := range bucket {
		if ww.ID == w.ID {
			bucket[i] = bucket[len(bucket)-1]
			wi.cells[old] = bucket[:len(bucket)-1]
			break
		}
	}
	wi.cells[nc] = append(wi.cells[nc], w)
	wi.cellOf[w.ID] = nc
}

// ClosestIdle returns the idle worker (FreeAt <= now) with at least
// minCapacity seats whose travel time to node is smallest, or nil when no
// worker qualifies. Ring search expands outward from the node's cell and
// stops one ring after the first hit (a further ring cannot contain a
// closer worker only approximately, so one extra ring is scanned to absorb
// grid/metric mismatch).
func (wi *WorkerIndex) ClosestIdle(node geo.NodeID, now float64, minCapacity int) *order.Worker {
	center := wi.ix.CellOf(node)
	var best *order.Worker
	bestCost := 0.0
	consider := func(cell int) bool {
		for _, w := range wi.cells[cell] {
			if !w.IdleAt(now) || w.Capacity < minCapacity {
				continue
			}
			c := wi.net.Cost(w.Loc, node)
			if best == nil || c < bestCost || (c == bestCost && w.ID < best.ID) {
				best = w
				bestCost = c
			}
		}
		return true
	}
	maxD := wi.ix.N() // worst case scans every cell
	foundAt := -1
	for d := 0; d <= maxD; d++ {
		wi.ix.Ring(center, d, consider)
		if best != nil && foundAt < 0 {
			foundAt = d
		}
		if foundAt >= 0 && d >= foundAt+1 {
			break
		}
	}
	return best
}

// KNearest returns up to k workers passing pred, ordered by increasing
// travel time from their location to node. The ring search scans outward
// and stops once it has k hits and one extra ring (grid distance only
// approximates travel time).
func (wi *WorkerIndex) KNearest(node geo.NodeID, k int, pred func(*order.Worker) bool) []*order.Worker {
	if k <= 0 {
		return nil
	}
	center := wi.ix.CellOf(node)
	type cand struct {
		w    *order.Worker
		cost float64
	}
	var cands []cand
	foundAt := -1
	for d := 0; d <= wi.ix.N(); d++ {
		wi.ix.Ring(center, d, func(cell int) bool {
			for _, w := range wi.cells[cell] {
				if pred != nil && !pred(w) {
					continue
				}
				cands = append(cands, cand{w, wi.net.Cost(w.Loc, node)})
			}
			return true
		})
		if len(cands) >= k && foundAt < 0 {
			foundAt = d
		}
		if foundAt >= 0 && d >= foundAt+1 {
			break
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].w.ID < cands[j].w.ID
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]*order.Worker, len(cands))
	for i, c := range cands {
		out[i] = c.w
	}
	return out
}

// SupplyDistribution returns the normalized spatial distribution of idle
// workers at time now (the MDP state's sW vector).
func (wi *WorkerIndex) SupplyDistribution(now float64) Distribution {
	d := wi.ix.NewDistribution()
	for cell, ws := range wi.cells {
		for _, w := range ws {
			if w.IdleAt(now) {
				d[cell]++
			}
		}
	}
	d.Normalize()
	return d
}

// Len returns the number of indexed workers.
func (wi *WorkerIndex) Len() int { return len(wi.workers) }
