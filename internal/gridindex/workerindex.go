package gridindex

import (
	"math"
	"sort"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/roadnet"
)

// WorkerIndex tracks workers by grid cell and answers "closest idle worker
// to node X at time T" queries with expanding ring search, the standard
// grid-accelerated dispatch lookup the paper adopts from prior studies.
// Each ring's surviving candidates are costed with one batched
// roadnet.FillCostMatrix call, so a Graph-backed network ranks the whole
// ring with pruned point-to-point searches instead of per-worker full
// Dijkstras.
//
// The index itself is single-goroutine state (each simulation job owns its
// own index), but reads can be fanned out: NewReader returns a probe handle
// with private scratch that runs the identical search over the shared cell
// buckets, so several goroutines may probe concurrently as long as nobody
// mutates the index (no Update) while they run. The sharded dispatch
// engine's speculation phase is built on exactly that contract.
type WorkerIndex struct {
	ix      *Index
	net     roadnet.Network
	cells   [][]*order.Worker // cell id -> workers whose Loc falls in it
	cellOf  map[int]int       // worker id -> cell id
	workers map[int]*order.Worker

	// Reusable batching scratch for the index's own (single-goroutine)
	// queries; concurrent readers get their own via NewReader.
	sc probeScratch

	// moveObs, when set, observes every Update with the worker's previous
	// and current cell (equal when the worker stayed put). The sharded
	// dispatch engine uses it to invalidate speculative probes that
	// considered the updated worker as a candidate.
	moveObs func(w *order.Worker, oldCell, newCell int)
}

// probeScratch is the per-caller buffer set of one ring search.
//
//det:scratch private ring-search buffers, one set per querying goroutine
type probeScratch struct {
	candBuf []*order.Worker
	locBuf  []geo.NodeID
	costBuf []float64
}

// NewWorkerIndex indexes the given workers.
func NewWorkerIndex(ix *Index, net roadnet.Network, workers []*order.Worker) *WorkerIndex {
	wi := &WorkerIndex{
		ix:      ix,
		net:     net,
		cells:   make([][]*order.Worker, ix.NumCells()),
		cellOf:  make(map[int]int, len(workers)),
		workers: make(map[int]*order.Worker, len(workers)),
	}
	for _, w := range workers {
		wi.insert(w)
	}
	return wi
}

func (wi *WorkerIndex) insert(w *order.Worker) {
	c := wi.ix.CellOf(w.Loc)
	wi.cells[c] = append(wi.cells[c], w)
	wi.cellOf[w.ID] = c
	wi.workers[w.ID] = w
}

// SetMoveObserver installs fn, called after every Update with the worker's
// previous and current cell (equal when the worker's state changed without
// leaving its cell — a dispatch that books it in place still fires). Pass
// nil to remove.
func (wi *WorkerIndex) SetMoveObserver(fn func(w *order.Worker, oldCell, newCell int)) {
	wi.moveObs = fn
}

// Update must be called after a worker's state changes (e.g. after a
// dispatch books it: FreeAt moves into the future and Loc becomes the
// route's last drop-off point).
func (wi *WorkerIndex) Update(w *order.Worker) {
	old, ok := wi.cellOf[w.ID]
	if !ok {
		wi.insert(w)
		if wi.moveObs != nil {
			c := wi.cellOf[w.ID]
			wi.moveObs(w, c, c)
		}
		return
	}
	nc := wi.ix.CellOf(w.Loc)
	if nc != old {
		bucket := wi.cells[old]
		for i, ww := range bucket {
			if ww.ID == w.ID {
				bucket[i] = bucket[len(bucket)-1]
				wi.cells[old] = bucket[:len(bucket)-1]
				break
			}
		}
		wi.cells[nc] = append(wi.cells[nc], w)
		wi.cellOf[w.ID] = nc
	}
	if wi.moveObs != nil {
		wi.moveObs(w, old, nc)
	}
}

// ringCosts batches the travel times from every candidate gathered for the
// current ring to node, reusing the caller's scratch buffers. maxCost bounds
// each underlying search: candidates beyond it may come back +Inf, which
// every caller filters out anyway. On a Graph network this runs one pruned
// forward search per distinct candidate location (plus duplicate-location
// dedup) — a single reverse-graph sweep from node would be cheaper, but
// reverse-order float folds would break the engine's bit-equivalence
// contract with Cost, so forward searches are deliberate.
func (wi *WorkerIndex) ringCosts(sc *probeScratch, node geo.NodeID, maxCost float64) []float64 {
	sc.locBuf = sc.locBuf[:0]
	for _, w := range sc.candBuf {
		sc.locBuf = append(sc.locBuf, w.Loc)
	}
	if cap(sc.costBuf) < len(sc.locBuf) {
		//det:hotalloc grows the scratch cost row once per ring-size high-water mark
		sc.costBuf = make([]float64, len(sc.locBuf))
	}
	sc.costBuf = sc.costBuf[:len(sc.locBuf)]
	target := [1]geo.NodeID{node}
	roadnet.FillCostMatrixWithin(wi.net, sc.locBuf, target[:], maxCost, sc.costBuf)
	return sc.costBuf
}

// ClosestIdle returns the idle worker (FreeAt <= now) with at least
// minCapacity seats whose travel time to node is smallest, or nil when no
// worker qualifies. Ring search expands outward from the node's cell and
// stops one ring after the first hit (a further ring cannot contain a
// closer worker only approximately, so one extra ring is scanned to absorb
// grid/metric mismatch).
func (wi *WorkerIndex) ClosestIdle(node geo.NodeID, now float64, minCapacity int) *order.Worker {
	w, _ := wi.ClosestIdleWithin(node, now, minCapacity, math.Inf(1))
	return w
}

// ClosestIdleWithin is ClosestIdle with a travel-time budget: workers whose
// cost to node exceeds maxCost are not candidates (the dispatcher passes
// the deadline slack the group can still absorb). Unreachable workers
// (+Inf cost) are never candidates — a grid-near but disconnected worker
// must not shadow a reachable one. Returns the worker and its travel time,
// or (nil, +Inf).
func (wi *WorkerIndex) ClosestIdleWithin(node geo.NodeID, now float64, minCapacity int, maxCost float64) (*order.Worker, float64) {
	return wi.closestIdleWithin(node, now, minCapacity, maxCost, &wi.sc, nil)
}

// closestIdleWithin is the one implementation of the budgeted ring search.
// The index's own queries and every ProbeReader run this exact code over
// the same cell buckets, so the two paths are bit-identical by
// construction. When cands is non-nil, every costed in-budget candidate's
// worker ID is appended to it — the exact dependency footprint a
// speculative caller needs: a dispatch can only book workers (idle ->
// busy, never the reverse within a tick), so re-running the search after
// some bookings removes candidates and never adds any. Removing a
// non-candidate (busy, under-capacity, out-of-budget or unreachable here)
// cannot change the argmin, and removing an in-budget candidate is
// exactly what the recorded IDs detect — so the search's answer is stable
// iff no recorded candidate was booked.
//
//det:hotpath the budgeted ring search backs every dispatch probe and every speculation; buffers come from the caller's scratch
func (wi *WorkerIndex) closestIdleWithin(node geo.NodeID, now float64, minCapacity int, maxCost float64, sc *probeScratch, cands *[]int32) (*order.Worker, float64) {
	center := wi.ix.CellOf(node)
	var best *order.Worker
	bestCost := math.Inf(1)
	maxD := wi.ix.N() // worst case scans every cell
	foundAt := -1
	seen := 0 // workers encountered (any state); == Len() means later rings are empty
	for d := 0; d <= maxD; d++ {
		sc.candBuf = sc.candBuf[:0]
		//det:hotalloc non-escaping ring visitor, stack-allocated because Ring only invokes it inline
		wi.ix.Ring(center, d, func(cell int) bool {
			seen += len(wi.cells[cell])
			for _, w := range wi.cells[cell] {
				if !w.IdleAt(now) || w.Capacity < minCapacity {
					continue
				}
				sc.candBuf = append(sc.candBuf, w)
			}
			return true
		})
		if len(sc.candBuf) > 0 {
			costs := wi.ringCosts(sc, node, maxCost)
			for i, w := range sc.candBuf {
				c := costs[i]
				if math.IsInf(c, 1) || c > maxCost {
					continue // unreachable or beyond the deadline budget
				}
				if cands != nil {
					*cands = append(*cands, int32(w.ID))
				}
				if best == nil || c < bestCost || (c == bestCost && w.ID < best.ID) {
					best = w
					bestCost = c
				}
			}
		}
		if best != nil && foundAt < 0 {
			foundAt = d
		}
		if foundAt >= 0 && d >= foundAt+1 {
			break
		}
		if seen >= len(wi.workers) {
			break // every worker lives in a scanned cell; the rest is empty
		}
	}
	if best == nil {
		return nil, math.Inf(1)
	}
	return best, bestCost
}

// ProbeReader is a read-only probe handle over the index with private
// scratch: several readers may run ClosestIdleWithin concurrently (against
// each other and against nothing else — the index must not be mutated while
// any reader is in flight). Each probe also records the in-budget
// candidates it costed, which is exactly the dependency footprint of its
// answer.
//
//det:scratch reader-private probe state, never shared across goroutines
type ProbeReader struct {
	wi    *WorkerIndex
	sc    probeScratch
	cands []int32
}

// NewReader returns a concurrent probe handle over the index.
func (wi *WorkerIndex) NewReader() *ProbeReader {
	return &ProbeReader{wi: wi}
}

// ClosestIdleWithin runs the identical budgeted ring search as
// WorkerIndex.ClosestIdleWithin and additionally returns the worker IDs of
// every costed in-budget candidate — the probe's answer is unchanged by
// later same-tick dispatches exactly while none of these workers is
// booked. The returned slice is the reader's scratch, valid until its next
// probe.
//
//det:specroot concurrent probes must write only their reader's own scratch
func (r *ProbeReader) ClosestIdleWithin(node geo.NodeID, now float64, minCapacity int, maxCost float64) (*order.Worker, float64, []int32) {
	r.cands = r.cands[:0]
	w, cost := r.wi.closestIdleWithin(node, now, minCapacity, maxCost, &r.sc, &r.cands)
	return w, cost, r.cands
}

// KNearest returns up to k workers passing pred, ordered by increasing
// travel time from their location to node. The ring search scans outward
// and stops once it has k hits and one extra ring (grid distance only
// approximates travel time). Workers that cannot reach node at all are
// excluded.
func (wi *WorkerIndex) KNearest(node geo.NodeID, k int, pred func(*order.Worker) bool) []*order.Worker {
	if k <= 0 {
		return nil
	}
	center := wi.ix.CellOf(node)
	type cand struct {
		w    *order.Worker
		cost float64
	}
	var cands []cand
	foundAt := -1
	seen := 0
	sc := &wi.sc
	for d := 0; d <= wi.ix.N(); d++ {
		sc.candBuf = sc.candBuf[:0]
		//det:hotalloc non-escaping ring visitor, stack-allocated because Ring only invokes it inline
		wi.ix.Ring(center, d, func(cell int) bool {
			seen += len(wi.cells[cell])
			for _, w := range wi.cells[cell] {
				if pred != nil && !pred(w) {
					continue
				}
				sc.candBuf = append(sc.candBuf, w)
			}
			return true
		})
		if len(sc.candBuf) > 0 {
			costs := wi.ringCosts(sc, node, math.Inf(1))
			for i, w := range sc.candBuf {
				if math.IsInf(costs[i], 1) {
					continue // disconnected: not a usable candidate
				}
				cands = append(cands, cand{w, costs[i]})
			}
		}
		if len(cands) >= k && foundAt < 0 {
			foundAt = d
		}
		if foundAt >= 0 && d >= foundAt+1 {
			break
		}
		if seen >= len(wi.workers) {
			break // all workers encountered; further rings are empty
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].w.ID < cands[j].w.ID
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]*order.Worker, len(cands))
	for i, c := range cands {
		out[i] = c.w
	}
	return out
}

// SupplyDistribution returns the normalized spatial distribution of idle
// workers at time now (the MDP state's sW vector).
func (wi *WorkerIndex) SupplyDistribution(now float64) Distribution {
	d := wi.ix.NewDistribution()
	for cell, ws := range wi.cells {
		for _, w := range ws {
			if w.IdleAt(now) {
				d[cell]++
			}
		}
	}
	d.Normalize()
	return d
}

// CellOfWorker returns the cell the index currently files the worker under.
func (wi *WorkerIndex) CellOfWorker(id int) (int, bool) {
	c, ok := wi.cellOf[id]
	return c, ok
}

// Len returns the number of indexed workers.
func (wi *WorkerIndex) Len() int { return len(wi.workers) }
