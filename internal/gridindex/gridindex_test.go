package gridindex

import (
	"math"
	"testing"
	"testing/quick"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/roadnet"
)

func testNet() *roadnet.GridCity { return roadnet.NewGridCity(20, 20, 100, 10) }

func TestCellOfCorners(t *testing.T) {
	net := testNet()
	ix := New(net, 10)
	if got := ix.CellOf(net.Node(0, 0)); got != 0 {
		t.Fatalf("origin cell = %d", got)
	}
	if got := ix.CellOf(net.Node(19, 19)); got != ix.NumCells()-1 {
		t.Fatalf("far corner cell = %d, want %d", got, ix.NumCells()-1)
	}
}

func TestCellOfPointClamps(t *testing.T) {
	ix := New(testNet(), 10)
	if got := ix.CellOfPoint(geo.Point{X: -1e6, Y: -1e6}); got != 0 {
		t.Fatalf("clamped low cell = %d", got)
	}
	if got := ix.CellOfPoint(geo.Point{X: 1e6, Y: 1e6}); got != ix.NumCells()-1 {
		t.Fatalf("clamped high cell = %d", got)
	}
}

func TestCellRoundTripProperty(t *testing.T) {
	net := testNet()
	ix := New(net, 10)
	n := uint32(net.NumNodes())
	f := func(raw uint32) bool {
		node := geo.NodeID(raw % n)
		cell := ix.CellOf(node)
		if cell < 0 || cell >= ix.NumCells() {
			return false
		}
		x, y := ix.CellXY(cell)
		return y*ix.N()+x == cell
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCellDist(t *testing.T) {
	ix := New(testNet(), 10)
	a := 0        // (0,0)
	b := 3*10 + 4 // (4,3)
	if got := ix.CellDist(a, b); got != 4 {
		t.Fatalf("CellDist = %d, want 4", got)
	}
	if got := ix.CellDist(b, b); got != 0 {
		t.Fatalf("self dist = %d", got)
	}
	if ix.CellDist(a, b) != ix.CellDist(b, a) {
		t.Fatal("CellDist must be symmetric")
	}
}

func TestRingCoverage(t *testing.T) {
	ix := New(testNet(), 10)
	center := 5*10 + 5
	seen := map[int]bool{}
	for d := 0; d <= ix.N(); d++ {
		ix.Ring(center, d, func(cell int) bool {
			if seen[cell] {
				t.Fatalf("cell %d visited twice", cell)
			}
			if ix.CellDist(center, cell) != d {
				t.Fatalf("cell %d at ring %d has dist %d", cell, d, ix.CellDist(center, cell))
			}
			seen[cell] = true
			return true
		})
	}
	if len(seen) != ix.NumCells() {
		t.Fatalf("rings covered %d of %d cells", len(seen), ix.NumCells())
	}
}

func TestRingEarlyStop(t *testing.T) {
	ix := New(testNet(), 10)
	calls := 0
	completed := ix.Ring(0, 1, func(cell int) bool {
		calls++
		return false
	})
	if completed || calls != 1 {
		t.Fatalf("early stop failed: completed=%v calls=%d", completed, calls)
	}
}

func TestDistributionNormalize(t *testing.T) {
	d := Distribution{2, 0, 6}
	d.Normalize()
	if math.Abs(d[0]-0.25) > 1e-12 || math.Abs(d[2]-0.75) > 1e-12 {
		t.Fatalf("normalized = %v", d)
	}
	zero := Distribution{0, 0}
	zero.Normalize() // must not NaN
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatalf("zero vector changed: %v", zero)
	}
}

func TestClosestIdleWorker(t *testing.T) {
	net := testNet()
	ix := New(net, 10)
	workers := []*order.Worker{
		{ID: 1, Loc: net.Node(0, 0), Capacity: 4},
		{ID: 2, Loc: net.Node(10, 10), Capacity: 4},
		{ID: 3, Loc: net.Node(19, 19), Capacity: 4},
	}
	wi := NewWorkerIndex(ix, net, workers)
	if wi.Len() != 3 {
		t.Fatalf("len = %d", wi.Len())
	}
	got := wi.ClosestIdle(net.Node(9, 9), 0, 1)
	if got == nil || got.ID != 2 {
		t.Fatalf("closest = %+v, want worker 2", got)
	}
	// Busy workers are skipped.
	workers[1].FreeAt = 100
	got = wi.ClosestIdle(net.Node(9, 9), 0, 1)
	if got == nil || got.ID == 2 {
		t.Fatalf("busy worker returned: %+v", got)
	}
	// They come back once free.
	got = wi.ClosestIdle(net.Node(9, 9), 100, 1)
	if got == nil || got.ID != 2 {
		t.Fatalf("freed worker not found: %+v", got)
	}
}

func TestClosestIdleCapacityFilter(t *testing.T) {
	net := testNet()
	ix := New(net, 10)
	workers := []*order.Worker{
		{ID: 1, Loc: net.Node(5, 5), Capacity: 2},
		{ID: 2, Loc: net.Node(15, 15), Capacity: 4},
	}
	wi := NewWorkerIndex(ix, net, workers)
	got := wi.ClosestIdle(net.Node(5, 5), 0, 3)
	if got == nil || got.ID != 2 {
		t.Fatalf("capacity filter failed: %+v", got)
	}
	if got := wi.ClosestIdle(net.Node(5, 5), 0, 5); got != nil {
		t.Fatalf("impossible capacity returned %+v", got)
	}
}

func TestClosestIdleMatchesBruteForce(t *testing.T) {
	net := testNet()
	ix := New(net, 10)
	var workers []*order.Worker
	for i := 0; i < 40; i++ {
		workers = append(workers, &order.Worker{
			ID:       i,
			Loc:      net.Node((i*7)%20, (i*13)%20),
			Capacity: 2 + i%3,
		})
	}
	wi := NewWorkerIndex(ix, net, workers)
	for q := 0; q < 25; q++ {
		target := net.Node((q*3)%20, (q*11)%20)
		got := wi.ClosestIdle(target, 0, 1)
		var want *order.Worker
		for _, w := range workers {
			if want == nil || net.Cost(w.Loc, target) < net.Cost(want.Loc, target) ||
				(net.Cost(w.Loc, target) == net.Cost(want.Loc, target) && w.ID < want.ID) {
				want = w
			}
		}
		if got.ID != want.ID &&
			net.Cost(got.Loc, target) != net.Cost(want.Loc, target) {
			t.Fatalf("query %d: got worker %d (cost %v), want %d (cost %v)",
				q, got.ID, net.Cost(got.Loc, target), want.ID, net.Cost(want.Loc, target))
		}
	}
}

func TestWorkerIndexUpdate(t *testing.T) {
	net := testNet()
	ix := New(net, 10)
	w := &order.Worker{ID: 1, Loc: net.Node(0, 0), Capacity: 4}
	wi := NewWorkerIndex(ix, net, []*order.Worker{w})
	w.Loc = net.Node(19, 19)
	wi.Update(w)
	got := wi.ClosestIdle(net.Node(18, 18), 0, 1)
	if got == nil || got.ID != 1 {
		t.Fatal("moved worker not found near new location")
	}
	// Same-cell move is a no-op but must stay correct.
	w.Loc = net.Node(18, 19)
	wi.Update(w)
	if got := wi.ClosestIdle(net.Node(18, 18), 0, 1); got == nil {
		t.Fatal("worker lost after same-cell update")
	}
}

func TestSupplyDistribution(t *testing.T) {
	net := testNet()
	ix := New(net, 10)
	workers := []*order.Worker{
		{ID: 1, Loc: net.Node(0, 0), Capacity: 4},
		{ID: 2, Loc: net.Node(0, 0), Capacity: 4},
		{ID: 3, Loc: net.Node(19, 19), Capacity: 4, FreeAt: 50},
	}
	wi := NewWorkerIndex(ix, net, workers)
	d := wi.SupplyDistribution(0)
	if math.Abs(d[0]-1.0) > 1e-12 {
		t.Fatalf("cell 0 share = %v (busy worker must be excluded)", d[0])
	}
	d = wi.SupplyDistribution(60)
	if math.Abs(d[0]-2.0/3) > 1e-12 {
		t.Fatalf("cell 0 share after 60s = %v", d[0])
	}
}
