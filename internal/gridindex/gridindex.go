// Package gridindex implements the n-by-n spatial grid the paper uses both
// as a search accelerator ("grid index to speed up workers and riders
// search", Section VII-A) and as the quantization behind the MDP state's
// location features (Section VI-A).
package gridindex

import (
	"math"

	"watter/internal/geo"
	"watter/internal/roadnet"
)

// Index partitions the network's bounding box into N x N uniform cells.
type Index struct {
	net    roadnet.Network
	n      int
	bounds geo.Rect
	cellW  float64
	cellH  float64
}

// New builds an index with n cells per side over the network's bounds.
func New(net roadnet.Network, n int) *Index {
	if n < 1 {
		panic("gridindex: n must be >= 1")
	}
	b := net.Bounds()
	w := b.Width()
	h := b.Height()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	return &Index{net: net, n: n, bounds: b, cellW: w / float64(n), cellH: h / float64(n)}
}

// N returns the per-side cell count.
func (ix *Index) N() int { return ix.n }

// NumCells returns N*N.
func (ix *Index) NumCells() int { return ix.n * ix.n }

// CellOfPoint returns the cell id of a planar point (clamped to bounds).
func (ix *Index) CellOfPoint(p geo.Point) int {
	p = ix.bounds.Clamp(p)
	cx := int((p.X - ix.bounds.Min.X) / ix.cellW)
	cy := int((p.Y - ix.bounds.Min.Y) / ix.cellH)
	if cx >= ix.n {
		cx = ix.n - 1
	}
	if cy >= ix.n {
		cy = ix.n - 1
	}
	return cy*ix.n + cx
}

// CellOf returns the cell id of a road-network node.
func (ix *Index) CellOf(node geo.NodeID) int {
	return ix.CellOfPoint(ix.net.Coord(node))
}

// CellXY splits a cell id into column and row.
func (ix *Index) CellXY(cell int) (x, y int) { return cell % ix.n, cell / ix.n }

// CellDist returns the Chebyshev ring distance between two cells; ring
// expansion during nearest-worker search enumerates cells by this distance.
func (ix *Index) CellDist(a, b int) int {
	ax, ay := ix.CellXY(a)
	bx, by := ix.CellXY(b)
	dx := math.Abs(float64(ax - bx))
	dy := math.Abs(float64(ay - by))
	return int(math.Max(dx, dy))
}

// Ring calls fn for every cell at exactly Chebyshev distance d from the
// center cell, skipping out-of-range cells. fn returning false stops the
// walk early; Ring reports whether the walk ran to completion.
func (ix *Index) Ring(center, d int, fn func(cell int) bool) bool {
	cx, cy := ix.CellXY(center)
	if d == 0 {
		return fn(center)
	}
	for x := cx - d; x <= cx+d; x++ {
		for y := cy - d; y <= cy+d; y++ {
			if x < 0 || y < 0 || x >= ix.n || y >= ix.n {
				continue
			}
			if x != cx-d && x != cx+d && y != cy-d && y != cy+d {
				continue // interior of the ring
			}
			if !fn(y*ix.n + x) {
				return false
			}
		}
	}
	return true
}

// Distribution is a normalized histogram over cells; the MDP state's demand
// (sO) and supply (sW) vectors are Distributions.
type Distribution []float64

// NewDistribution allocates a zero histogram for the index.
func (ix *Index) NewDistribution() Distribution {
	return make(Distribution, ix.NumCells())
}

// Normalize scales the histogram to sum to 1 (no-op for an all-zero vector).
func (d Distribution) Normalize() {
	var sum float64
	for _, v := range d {
		sum += v
	}
	if sum == 0 {
		return
	}
	for i := range d {
		d[i] /= sum
	}
}
