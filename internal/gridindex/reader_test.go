package gridindex

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/roadnet"
)

// TestProbeReaderMatchesIndex: a ProbeReader runs the identical budgeted
// ring search as the index's own ClosestIdleWithin — same worker, same
// cost, for random fleets, probe points, budgets and capacities — and the
// candidate record contains exactly the idle in-budget workers the search
// costed (in particular, always the winner).
func TestProbeReaderMatchesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := roadnet.NewGridCity(30, 30, 100, 10)
	ix := New(net, 10)
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(40)
		workers := make([]*order.Worker, n)
		for i := range workers {
			workers[i] = &order.Worker{
				ID:       i + 1,
				Loc:      net.Node(rng.Intn(30), rng.Intn(30)),
				Capacity: 1 + rng.Intn(4),
				FreeAt:   float64(rng.Intn(3)) * 50,
			}
		}
		wi := NewWorkerIndex(ix, net, workers)
		r := wi.NewReader()
		for q := 0; q < 40; q++ {
			node := net.Node(rng.Intn(30), rng.Intn(30))
			now := float64(rng.Intn(3)) * 50
			minCap := 1 + rng.Intn(4)
			maxCost := math.Inf(1)
			if rng.Intn(2) == 0 {
				maxCost = float64(rng.Intn(400))
			}
			iw, ic := wi.ClosestIdleWithin(node, now, minCap, maxCost)
			rw, rc, cands := r.ClosestIdleWithin(node, now, minCap, maxCost)
			if iw != rw || ic != rc {
				t.Fatalf("trial %d query %d: index (%v, %v) != reader (%v, %v)", trial, q, iw, ic, rw, rc)
			}
			if rw == nil {
				continue
			}
			found := false
			for _, id := range cands {
				if int(id) == rw.ID {
					found = true
				}
				// Every recorded candidate is a real in-budget idle worker.
				cw := workers[id-1]
				if !cw.IdleAt(now) || cw.Capacity < minCap || net.Cost(cw.Loc, node) > maxCost {
					t.Fatalf("trial %d query %d: recorded candidate %d is not an in-budget idle worker", trial, q, id)
				}
			}
			if !found {
				t.Fatalf("candidate record misses the winner %d: %v", rw.ID, cands)
			}
		}
	}
}

// TestProbeReadersConcurrent: multiple readers probe the same quiescent
// index concurrently and all agree with the sequential answer (run under
// -race in CI).
func TestProbeReadersConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := roadnet.NewGridCity(25, 25, 100, 10)
	ix := New(net, 10)
	workers := make([]*order.Worker, 50)
	for i := range workers {
		workers[i] = &order.Worker{
			ID: i + 1, Loc: net.Node(rng.Intn(25), rng.Intn(25)), Capacity: 4,
		}
	}
	wi := NewWorkerIndex(ix, net, workers)
	type query struct {
		node geo.NodeID
		want *order.Worker
		cost float64
	}
	queries := make([]query, 64)
	for i := range queries {
		node := net.Node(rng.Intn(25), rng.Intn(25))
		w, c := wi.ClosestIdleWithin(node, 0, 1, math.Inf(1))
		queries[i] = query{node, w, c}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := wi.NewReader()
			for i := g; i < len(queries); i += 4 {
				w, c, _ := r.ClosestIdleWithin(queries[i].node, 0, 1, math.Inf(1))
				if w != queries[i].want || c != queries[i].cost {
					t.Errorf("query %d: concurrent reader got (%v, %v), want (%v, %v)",
						i, w, c, queries[i].want, queries[i].cost)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMoveObserverFires: Update reports the old and new cell for moves and
// the (same) cell for in-place state changes.
func TestMoveObserverFires(t *testing.T) {
	net := roadnet.NewGridCity(20, 20, 100, 10)
	ix := New(net, 10)
	w := &order.Worker{ID: 1, Loc: net.Node(0, 0), Capacity: 4}
	wi := NewWorkerIndex(ix, net, []*order.Worker{w})
	var gotOld, gotNew []int
	wi.SetMoveObserver(func(_ *order.Worker, oldCell, newCell int) {
		gotOld = append(gotOld, oldCell)
		gotNew = append(gotNew, newCell)
	})
	home := ix.CellOf(w.Loc)
	// In-place booking: same cell on both sides.
	w.FreeAt = 100
	wi.Update(w)
	// Relocation to the far corner.
	w.Loc = net.Node(19, 19)
	wi.Update(w)
	far := ix.CellOf(w.Loc)
	if len(gotOld) != 2 || gotOld[0] != home || gotNew[0] != home || gotOld[1] != home || gotNew[1] != far {
		t.Fatalf("observer saw old=%v new=%v, want old=[%d %d] new=[%d %d]", gotOld, gotNew, home, home, home, far)
	}
	wi.SetMoveObserver(nil)
	w.Loc = net.Node(0, 0)
	wi.Update(w) // must not panic with the observer removed
}
