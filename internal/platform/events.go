package platform

import (
	"watter/internal/order"
	"watter/internal/sim"
)

// Event is one observable platform outcome. The concrete variants are
// OrderAdmitted, GroupDispatched, OrderRejected and TickCompleted. The
// event sequence for a given (network, fleet, workload, algorithm, seed)
// is deterministic — same events, same order, same payloads — with one
// documented exception: TickCompleted.Metrics.DecisionSeconds measures
// wall-clock and varies run to run (DESIGN.md §8).
type Event interface {
	// When returns the simulation time of the event in seconds.
	When() float64
	// event is the closed-variant marker.
	event()
}

// OrderAdmitted fires when an order enters the platform, before the
// dispatch algorithm sees it. Order is the platform's copy — DirectCost
// already enriched — and must be treated as read-only.
type OrderAdmitted struct {
	Time  float64
	Order *order.Order
}

func (e OrderAdmitted) When() float64 { return e.Time }
func (OrderAdmitted) event()          {}

// ServiceRecord is one served order's share of a dispatch: the response
// and detour seconds that feed the extra-time metric. Response is
// dispatch-time minus release — the admit→dispatch latency the load
// harness histograms — so latency tails come straight off the event bus
// with no extra bookkeeping.
type ServiceRecord struct {
	OrderID  int
	Response float64
	Detour   float64
}

// GroupDispatched fires when a group (possibly a singleton) is booked on
// a worker, or when a schedule-based baseline completes one order inside
// a worker's evolving schedule (then RouteCost is zero and Orders has one
// record). WorkerID is zero only when no single worker is attributable.
// Approach is the worker's travel time to the route's first stop;
// worker-anchored plans fold it into RouteCost and report zero.
type GroupDispatched struct {
	Time      float64
	WorkerID  int
	Approach  float64
	RouteCost float64
	Orders    []ServiceRecord
}

func (e GroupDispatched) When() float64 { return e.Time }
func (GroupDispatched) event()          {}

// Size returns the number of orders sharing the dispatched route.
func (e GroupDispatched) Size() int { return len(e.Orders) }

// OrderRejected fires when an order is rejected, carrying the METRS
// penalty p(i) and the Unified Cost rejection term it contributed.
type OrderRejected struct {
	Time           float64
	Order          *order.Order
	Penalty        float64
	UnifiedPenalty float64
}

func (e OrderRejected) When() float64 { return e.Time }
func (OrderRejected) event()          {}

// TickCompleted fires after each periodic check with a snapshot of the
// metrics accumulated so far — the live-dashboard feed. All fields of
// Metrics are deterministic except DecisionSeconds (wall-clock).
type TickCompleted struct {
	Time    float64
	Metrics sim.Metrics
}

func (e TickCompleted) When() float64 { return e.Time }
func (TickCompleted) event()          {}

// fanSink adapts the simulator's callback sink to the platform's two
// delivery paths: the synchronous observer callback (journal recorders —
// sees every event first, never buffers) and the typed event channel
// (dashboards — sends block when the buffer is full, so no event is ever
// dropped; consumers must drain or size the buffer accordingly). Either
// tap may be absent.
type fanSink struct {
	fn func(Event)
	ch chan Event
	// highWater is the deepest channel backlog ever observed at an emit;
	// blockedSends counts emits that found the buffer already full (the
	// feeder stalled until the consumer caught up). Both are written only
	// from the feeding goroutine and surface through Stats as the
	// queue-depth sampling hook the load harness builds on.
	highWater    int
	blockedSends uint64
}

// emit fans one event out to whichever taps exist, observer first.
func (b *fanSink) emit(ev Event) {
	if b.fn != nil {
		b.fn(ev)
	}
	if b.ch != nil {
		if len(b.ch) == cap(b.ch) {
			b.blockedSends++
		}
		b.ch <- ev
		if d := len(b.ch); d > b.highWater {
			b.highWater = d
		}
	}
}

func (b *fanSink) OrderAdmitted(o *order.Order, now float64) {
	b.emit(OrderAdmitted{Time: now, Order: o})
}

func (b *fanSink) GroupDispatched(w *order.Worker, g *order.Group, approach, now float64) {
	ev := GroupDispatched{
		Time:     now,
		Approach: approach,
		Orders:   make([]ServiceRecord, 0, len(g.Orders)),
	}
	if w != nil {
		ev.WorkerID = w.ID
	}
	// Both dispatch paths refuse plan-less groups before committing, so
	// g.Plan is always present here.
	ev.RouteCost = g.Plan.Cost
	for _, o := range g.Orders {
		// Mirror of the metrics accounting loop: an order without a
		// dropoff in the plan is not counted as served, so it gets no
		// service record either — the dispatched-vs-Served event
		// invariant stays exact.
		st, ok := g.Plan.ServiceTime(o.ID)
		if !ok {
			continue
		}
		ev.Orders = append(ev.Orders, ServiceRecord{
			OrderID:  o.ID,
			Response: now - o.Release,
			Detour:   st - o.DirectCost,
		})
	}
	b.emit(ev)
}

func (b *fanSink) OrderServed(w *order.Worker, o *order.Order, response, detour, now float64) {
	ev := GroupDispatched{
		Time:   now,
		Orders: []ServiceRecord{{OrderID: o.ID, Response: response, Detour: detour}},
	}
	if w != nil {
		ev.WorkerID = w.ID
	}
	b.emit(ev)
}

func (b *fanSink) OrderRejected(o *order.Order, penalty, unified, now float64) {
	b.emit(OrderRejected{Time: now, Order: o, Penalty: penalty, UnifiedPenalty: unified})
}

func (b *fanSink) TickCompleted(now float64, m sim.Metrics) {
	b.emit(TickCompleted{Time: now, Metrics: m})
}

var _ sim.EventSink = (*fanSink)(nil)
