package platform

import (
	"errors"
	"reflect"
	"testing"

	"watter/internal/core"
	"watter/internal/pool"
	"watter/internal/roadnet"
	"watter/internal/shard"
	"watter/internal/sim"
	"watter/internal/strategy"
)

// TestCloseIdempotent pins the restart-path contract: the second and every
// later Close returns the first call's exact (*Metrics, error) pair, for
// clean closes and for aborts alike.
func TestCloseIdempotent(t *testing.T) {
	net := roadnet.NewGridCity(10, 10, 100, 10)
	p, err := New(net, testFleet(net, 2), WithMeasuredTime(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(testOrder(net, 1, 5)); err != nil {
		t.Fatal(err)
	}
	m1, err1 := p.Close()
	if err1 != nil || m1 == nil {
		t.Fatalf("first close: %v, %v", m1, err1)
	}
	for i := 0; i < 3; i++ {
		m, err := p.Close()
		if m != m1 || err != nil {
			t.Fatalf("close #%d: got (%p, %v), want the memoized (%p, nil)", i+2, m, err, m1)
		}
	}

	// Abort path: Close must keep reporting the abort, never a nil error.
	p2, err := New(net, testFleet(net, 2), WithMeasuredTime(false))
	if err != nil {
		t.Fatal(err)
	}
	p2.Abort()
	p2.Abort() // idempotent, must not panic
	if _, err := p2.Close(); !errors.Is(err, ErrAborted) {
		t.Fatalf("close after abort: %v", err)
	}
	if _, err := p2.Close(); !errors.Is(err, ErrAborted) {
		t.Fatalf("second close after abort: %v", err)
	}
	if err := p2.Submit(testOrder(net, 1, 5)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after abort: %v", err)
	}
}

// TestPauseResume pins the admin freeze: paused platforms refuse ingestion
// with ErrPaused (typed, recoverable), resume restores it, and a
// pause/resume cycle that drops no traffic is metrics-neutral.
func TestPauseResume(t *testing.T) {
	net := roadnet.NewGridCity(10, 10, 100, 10)
	run := func(pause bool) *sim.Metrics {
		p, err := New(net, testFleet(net, 2), WithMeasuredTime(false))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if pause && i == 5 {
				if err := p.Pause(); err != nil {
					t.Fatal(err)
				}
				if err := p.Submit(testOrder(net, 100, 60)); !errors.Is(err, ErrPaused) {
					t.Fatalf("paused submit: %v", err)
				}
				if _, err := p.Tick(); !errors.Is(err, ErrPaused) {
					t.Fatalf("paused tick: %v", err)
				}
				if !p.Stats().Paused {
					t.Fatal("Stats does not show the pause")
				}
				if err := p.Resume(); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Submit(testOrder(net, i+1, float64(i*9))); err != nil {
				t.Fatal(err)
			}
		}
		m, err := p.Close()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain, paused := run(false), run(true)
	if *plain != *paused {
		t.Fatalf("pause/resume changed metrics:\nplain:  %+v\npaused: %+v", *plain, *paused)
	}

	p, err := New(net, testFleet(net, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Pause(); !errors.Is(err, ErrClosed) {
		t.Fatalf("pause after close: %v", err)
	}
	if err := p.Resume(); !errors.Is(err, ErrClosed) {
		t.Fatalf("resume after close: %v", err)
	}
}

// TestObserver pins the journal hook: the synchronous observer sees the
// exact event sequence the channel bus delivers, without subscribing to
// the channel at all — and when both taps exist, both see everything.
func TestObserver(t *testing.T) {
	net := roadnet.NewGridCity(10, 10, 100, 10)
	feed := func(p *Platform) {
		t.Helper()
		for i := 0; i < 8; i++ {
			if err := p.Submit(testOrder(net, i+1, float64(i*11))); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}

	var observed []Event
	p, err := New(net, testFleet(net, 2), WithMeasuredTime(false),
		WithObserver(func(ev Event) { observed = append(observed, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	feed(p)
	if len(observed) == 0 {
		t.Fatal("observer saw nothing")
	}

	// Reference arm: same workload through the channel bus only.
	p2, err := New(net, testFleet(net, 2), WithMeasuredTime(false))
	if err != nil {
		t.Fatal(err)
	}
	var busDelivered []Event
	events := p2.Events()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			busDelivered = append(busDelivered, ev)
		}
	}()
	feed(p2)
	<-done

	if len(observed) != len(busDelivered) {
		t.Fatalf("observer saw %d events, bus delivered %d", len(observed), len(busDelivered))
	}
	for i := range observed {
		if observed[i].When() != busDelivered[i].When() {
			t.Fatalf("event %d: observer t=%v, bus t=%v", i, observed[i].When(), busDelivered[i].When())
		}
	}

	// Both taps at once: the channel receives exactly what the observer saw.
	var both []Event
	p3, err := New(net, testFleet(net, 2), WithMeasuredTime(false),
		WithObserver(func(ev Event) { both = append(both, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	ch := p3.Events()
	var chGot int
	done3 := make(chan struct{})
	go func() {
		defer close(done3)
		for range ch {
			chGot++
		}
	}()
	feed(p3)
	<-done3
	if chGot != len(both) {
		t.Fatalf("dual-tap divergence: observer %d, channel %d", len(both), chGot)
	}

	if _, err := New(net, testFleet(net, 1), WithObserver(nil)); err == nil {
		t.Fatal("nil observer must be rejected")
	}
}

// TestStatsComposite pins the unified observability snapshot: the order
// ledger matches the metrics, the pool-cache and shard counters agree with
// the deprecated per-subsystem accessors, and lifecycle flags track state.
func TestStatsComposite(t *testing.T) {
	net := roadnet.NewGridCity(10, 10, 100, 10)
	fw := core.New(strategy.Online{}, pool.DefaultOptions())
	p, err := New(net, testFleet(net, 2), WithMeasuredTime(false),
		WithAlgorithm(fw), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Closed || st.Paused || st.Orders.Submitted != 0 {
		t.Fatalf("fresh platform stats: %+v", st)
	}
	for i := 0; i < 12; i++ {
		if err := p.Submit(testOrder(net, i+1, float64(i*8))); err != nil {
			t.Fatal(err)
		}
	}
	m, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if !st.Closed {
		t.Fatal("closed platform must report Closed")
	}
	if st.Orders.Submitted != m.Total || st.Orders.Served != m.Served ||
		st.Orders.Rejected != m.Rejected ||
		st.Orders.Pending != m.Total-m.Served-m.Rejected {
		t.Fatalf("order ledger diverged from metrics: %+v vs %+v", st.Orders, *m)
	}
	if !st.PoolCacheActive {
		t.Fatal("pooling framework must expose its plan cache")
	}
	if got := fw.Pool().CacheStats(); got != st.PoolCache {
		t.Fatalf("pool cache counters diverged: %+v vs %+v", st.PoolCache, got)
	}
	if !st.ShardActive {
		t.Fatal("K=2 platform must expose shard stats")
	}
	if want, ok := p.ShardStats(); !ok || want != st.Shard {
		t.Fatalf("shard counters diverged: %+v vs %+v (ok=%v)", st.Shard, want, ok)
	}

	// Baselines without pool or engine report inactive, not zero-lies.
	p2, err := New(net, testFleet(net, 1), WithAlgorithm(stub{}))
	if err != nil {
		t.Fatal(err)
	}
	if st := p2.Stats(); st.PoolCacheActive || st.ShardActive {
		t.Fatalf("stub algorithm claims subsystems: %+v", st)
	}
}

// TestStatsMerge pins the fleet-aggregation fold the proxy admin plane
// uses: counters sum, the clock takes the max, and lifecycle flags combine
// as documented (Closed ANDs, Paused ORs).
func TestStatsMerge(t *testing.T) {
	a := Stats{Clock: 50, Closed: true, Orders: OrderCounts{Submitted: 10, Served: 7, Rejected: 2, Pending: 1}}
	a.PoolCache.Hits = 5
	a.Shard.GroupHits = 3
	a.ShardActive = true
	b := Stats{Clock: 80, Paused: true, Orders: OrderCounts{Submitted: 4, Served: 4}}
	b.PoolCache.Hits = 2
	b.PoolCacheActive = true

	agg := a
	agg.Merge(b)
	if agg.Clock != 80 || agg.Closed || !agg.Paused {
		t.Fatalf("lifecycle fold wrong: %+v", agg)
	}
	if agg.Orders.Submitted != 14 || agg.Orders.Served != 11 || agg.Orders.Rejected != 2 || agg.Orders.Pending != 1 {
		t.Fatalf("ledger fold wrong: %+v", agg.Orders)
	}
	if agg.PoolCache.Hits != 7 || !agg.PoolCacheActive || agg.Shard.GroupHits != 3 || !agg.ShardActive {
		t.Fatalf("subsystem fold wrong: %+v", agg)
	}
}

// TestStatsMergeZeroValue pins the fold's edge semantics around the
// zero-value snapshot. The zero Stats is NOT a Merge identity: its
// Closed=false represents a member that is still running, so folding it
// into a closed aggregate must reopen the aggregate (closed only when
// every member is closed). Everything else — counters, clock, flags —
// must pass through unchanged.
func TestStatsMergeZeroValue(t *testing.T) {
	a := Stats{Clock: 50, Closed: true, Paused: true,
		Orders: OrderCounts{Submitted: 9, Served: 6, Rejected: 2, Pending: 1}}
	a.ShardActive = true
	a.Shard.Ticks = 4
	a.PoolCacheActive = true
	a.PoolCache.Hits = 3

	got := a
	got.Merge(Stats{})
	want := a
	want.Closed = false // zero member is "still running"
	if got != want {
		t.Fatalf("Merge(zero) = %+v, want %+v", got, want)
	}

	// Folding the other way: a zero aggregate absorbing a member keeps
	// Closed false for the same reason and copies everything else.
	got = Stats{}
	got.Merge(a)
	if got != want {
		t.Fatalf("zero.Merge(a) = %+v, want %+v", got, want)
	}
}

// TestStatsMergeClockAndFlags pins the non-additive folds: Clock is a
// max in both directions, Closed is an AND, Paused is an OR, and the
// subsystem-active flags OR (a fleet with one sharded city reports
// sharding active; a fleet with none does not).
func TestStatsMergeClockAndFlags(t *testing.T) {
	newer := Stats{Clock: 90, Closed: true}
	older := Stats{Clock: 30, Closed: true}
	x := newer
	x.Merge(older)
	if x.Clock != 90 {
		t.Fatalf("max(90, 30) clock = %v", x.Clock)
	}
	y := older
	y.Merge(newer)
	if y.Clock != 90 {
		t.Fatalf("max(30, 90) clock = %v", y.Clock)
	}
	if !x.Closed || !y.Closed {
		t.Fatal("all-closed fleet must fold to Closed")
	}
	if x.Paused || y.Paused {
		t.Fatal("no-paused fleet must fold to not Paused")
	}

	inactive := Stats{}
	inactive.Merge(Stats{})
	if inactive.ShardActive || inactive.PoolCacheActive {
		t.Fatalf("inactive+inactive claims subsystems: %+v", inactive)
	}
	one := Stats{ShardActive: true}
	one.Merge(Stats{PoolCacheActive: true})
	if !one.ShardActive || !one.PoolCacheActive {
		t.Fatalf("active flags must OR: %+v", one)
	}
}

// TestStatsMergeCoversEveryCounter self-merges a snapshot whose every
// numeric field holds a distinct value and checks each one exactly
// doubled (fields with max semantics — Clock, the event-bus high-water
// mark — stay put instead). Adding a counter to shard.Stats or
// pool.CacheStats without extending Merge fails here — the field would
// come back un-doubled.
func TestStatsMergeCoversEveryCounter(t *testing.T) {
	// High-water marks fold by max, not sum: self-merge leaves them put.
	maxFields := map[string]bool{
		"Stats.EventQueueHighWater": true,
	}
	var s Stats
	n := int64(1)
	var fill func(v reflect.Value)
	fill = func(v reflect.Value) {
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			switch f.Kind() {
			case reflect.Struct:
				fill(f)
			case reflect.Int:
				f.SetInt(n)
				n++
			case reflect.Uint64:
				f.SetUint(uint64(n))
				n++
			}
		}
	}
	fill(reflect.ValueOf(&s).Elem())
	s.Clock = 41.5

	d := s
	d.Merge(s)
	var check func(path string, orig, merged reflect.Value)
	check = func(path string, orig, merged reflect.Value) {
		for i := 0; i < orig.NumField(); i++ {
			name := path + "." + orig.Type().Field(i).Name
			o, m := orig.Field(i), merged.Field(i)
			switch o.Kind() {
			case reflect.Struct:
				check(name, o, m)
			case reflect.Int:
				if maxFields[name] {
					if m.Int() != o.Int() {
						t.Errorf("%s = %d after self-merge, want unchanged %d (max, not sum)",
							name, m.Int(), o.Int())
					}
					continue
				}
				if m.Int() != 2*o.Int() {
					t.Errorf("%s = %d after self-merge, want %d — field missing from Merge?",
						name, m.Int(), 2*o.Int())
				}
			case reflect.Uint64:
				if m.Uint() != 2*o.Uint() {
					t.Errorf("%s = %d after self-merge, want %d — field missing from Merge?",
						name, m.Uint(), 2*o.Uint())
				}
			}
		}
	}
	check("Stats", reflect.ValueOf(s), reflect.ValueOf(d))
	if d.Clock != s.Clock {
		t.Errorf("Clock = %v after self-merge, want unchanged %v (max, not sum)", d.Clock, s.Clock)
	}
}

// TestStatsInactiveSubsystems pins Platform.Stats on platforms whose
// algorithm exposes no shard engine and no pool: the flags must read
// inactive with genuinely zero counters, and a K=1 pooled platform must
// report the pool cache active but sharding inactive.
func TestStatsInactiveSubsystems(t *testing.T) {
	net := roadnet.NewGridCity(8, 8, 100, 10)

	p, err := New(net, testFleet(net, 1), WithAlgorithm(stub{}))
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.ShardActive || st.PoolCacheActive {
		t.Fatalf("stub platform claims subsystems: %+v", st)
	}
	if st.Shard != (shard.Stats{}) || st.PoolCache != (pool.CacheStats{}) {
		t.Fatalf("inactive subsystems must report zero counters: %+v", st)
	}

	solo, err := New(net, testFleet(net, 1), WithMeasuredTime(false),
		WithAlgorithm(core.New(strategy.Online{}, pool.DefaultOptions())))
	if err != nil {
		t.Fatal(err)
	}
	// The framework builds its pool lazily at algorithm init, so drive
	// one order through before reading the snapshot.
	if err := solo.Submit(testOrder(net, 1, 0)); err != nil {
		t.Fatal(err)
	}
	st = solo.Stats()
	if st.ShardActive {
		t.Fatalf("K=1 platform claims a shard engine: %+v", st)
	}
	if !st.PoolCacheActive {
		t.Fatalf("pooled K=1 platform must expose its plan cache: %+v", st)
	}
}
