package platform

import (
	"errors"
	"strings"
	"testing"

	"watter/internal/core"
	"watter/internal/order"
	"watter/internal/pool"
	"watter/internal/roadnet"
	"watter/internal/sim"
	"watter/internal/strategy"
)

func testFleet(net *roadnet.GridCity, m int) []*order.Worker {
	workers := make([]*order.Worker, m)
	for i := range workers {
		workers[i] = &order.Worker{ID: i + 1, Loc: net.Node(i%10, (i*3)%10), Capacity: 4}
	}
	return workers
}

func testOrder(net *roadnet.GridCity, id int, rel float64) *order.Order {
	pu, do := net.Node(0, 0), net.Node(5, 0)
	direct := net.Cost(pu, do)
	return &order.Order{
		ID: id, Pickup: pu, Dropoff: do, Riders: 1,
		Release: rel, Deadline: rel + 2*direct, WaitLimit: 0.8 * direct,
		DirectCost: direct,
	}
}

// TestNewValidates pins the constructor's no-silent-defaults contract:
// every invalid option surfaces as an error from New, not as a coerced
// value.
func TestNewValidates(t *testing.T) {
	net := roadnet.NewGridCity(10, 10, 100, 10)
	fleet := testFleet(net, 3)
	cases := map[string][]Option{
		"zero tick":         {WithTick(0)},
		"negative tick":     {WithTick(-3)},
		"negative drain":    {WithDrainSlack(-1)},
		"zero drain":        {WithDrainSlack(0)}, // would be silently ignored downstream
		"invalid config":    {WithConfig(sim.Config{})},
		"nil algorithm":     {WithAlgorithm(nil)},
		"bad pool":          {WithPool(pool.Options{Capacity: -1})},
		"zero event buffer": {WithEventBuffer(0)},
		"pool on schedule-based alg": {
			WithAlgorithm(stub{}), WithPool(pool.DefaultOptions()),
		},
	}
	for name, opts := range cases {
		if _, err := New(net, fleet, opts...); err == nil {
			t.Fatalf("%s: New must fail", name)
		}
	}
	if _, err := New(nil, fleet); err == nil {
		t.Fatal("nil network must fail")
	}
	if _, err := New(net, []*order.Worker{{ID: 1, Capacity: 0}}); err == nil {
		t.Fatal("seatless worker must fail")
	}
	if _, err := New(net, []*order.Worker{{ID: 0, Capacity: 4}}); err == nil {
		t.Fatal("zero worker ID must fail (0 is the no-worker event sentinel)")
	}
	if _, err := New(net, fleet); err != nil {
		t.Fatalf("valid defaults rejected: %v", err)
	}
}

// stub is a minimal non-retunable algorithm.
type stub struct{}

func (stub) Name() string                        { return "stub" }
func (stub) Init(*sim.Env)                       {}
func (stub) OnOrder(o *order.Order, now float64) {}
func (stub) OnTick(now float64)                  {}
func (stub) Finish(now float64)                  {}

// TestSubmitValidatesAndOrders pins the ingestion error surface: invalid
// orders and out-of-order releases are rejected, and the platform is
// unusable after Close.
func TestSubmitValidatesAndOrders(t *testing.T) {
	net := roadnet.NewGridCity(10, 10, 100, 10)
	p, err := New(net, testFleet(net, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(nil); err == nil {
		t.Fatal("nil order accepted")
	}
	bad := testOrder(net, 1, 50)
	bad.Riders = 0
	if err := p.Submit(bad); err == nil || !strings.Contains(err.Error(), "riders") {
		t.Fatalf("invalid order: %v", err)
	}
	if err := p.Submit(testOrder(net, 2, 50)); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(testOrder(net, 3, 20)); err == nil {
		t.Fatal("out-of-order release accepted")
	}
	m, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(testOrder(net, 4, 99)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	if _, err := p.Tick(); !errors.Is(err, ErrClosed) {
		t.Fatalf("tick after close: %v", err)
	}
	if _, err := p.Replay(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("replay after close: %v", err)
	}
	m2, err := p.Close()
	if err != nil || m2 != m {
		t.Fatalf("double close must repeat the first result: got (%p, %v), want (%p, nil)", m2, err, m)
	}
}

// TestEventSequence pins the typed event stream of a tiny deterministic
// scenario: admission before outcome, tick snapshots in time order, the
// channel closing at Close, and payloads that agree with the metrics.
func TestEventSequence(t *testing.T) {
	net := roadnet.NewGridCity(10, 10, 100, 10)
	p, err := New(net, testFleet(net, 2), WithMeasuredTime(false))
	if err != nil {
		t.Fatal(err)
	}
	events := p.Events()
	if got := p.Events(); got != events {
		t.Fatal("Events must be stable across calls")
	}
	var got []Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			got = append(got, ev)
		}
	}()
	o := testOrder(net, 1, 5)
	if err := p.Submit(o); err != nil {
		t.Fatal(err)
	}
	m, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	<-done

	var admitted, dispatched, rejected, ticks int
	lastWhen := -1.0
	for _, ev := range got {
		if ev.When() < lastWhen {
			t.Fatalf("event time went backwards: %v after %v", ev.When(), lastWhen)
		}
		lastWhen = ev.When()
		switch e := ev.(type) {
		case OrderAdmitted:
			admitted++
			if e.Order.DirectCost == 0 {
				t.Fatal("admitted order not enriched")
			}
		case GroupDispatched:
			dispatched += e.Size()
			if e.WorkerID == 0 {
				t.Fatal("dispatch without a worker")
			}
		case OrderRejected:
			rejected++
		case TickCompleted:
			ticks++
		default:
			t.Fatalf("unknown event %T", ev)
		}
	}
	if admitted != m.Total || dispatched != m.Served || rejected != m.Rejected {
		t.Fatalf("events admitted=%d dispatched=%d rejected=%d vs metrics %+v",
			admitted, dispatched, rejected, m)
	}
	if m.Served != 1 {
		t.Fatalf("scenario drifted: %+v", m)
	}
	if ticks == 0 {
		t.Fatal("no tick snapshots")
	}
}

// TestReplayMatchesBatchRun pins Replay's adapter equivalence at the
// platform level (the cross-algorithm property test lives in exp): same
// workload, same metrics as sim.Run, and the caller's orders survive
// untouched.
func TestReplayMatchesBatchRun(t *testing.T) {
	net := roadnet.NewGridCity(10, 10, 100, 10)
	mk := func() []*order.Order {
		var orders []*order.Order
		for i := 0; i < 30; i++ {
			o := testOrder(net, i+1, float64(i*7%40))
			o.DirectCost = 0 // exercise admission-time enrichment
			orders = append(orders, o)
		}
		return orders
	}
	orders := mk()
	alg := func() sim.Algorithm { return core.New(strategy.Online{}, pool.DefaultOptions()) }

	env := sim.NewEnv(net, testFleet(net, 4), sim.DefaultConfig())
	opts := sim.DefaultRunOptions()
	opts.MeasureTime = false
	batch := sim.Run(env, alg(), mk(), opts)

	p, err := New(net, testFleet(net, 4), WithMeasuredTime(false), WithAlgorithm(alg()))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := p.Replay(orders)
	if err != nil {
		t.Fatal(err)
	}
	if *batch != *streamed {
		t.Fatalf("replay diverged:\nbatch:  %+v\nstream: %+v", *batch, *streamed)
	}
	for i, o := range orders {
		if o.DirectCost != 0 {
			t.Fatalf("caller's order %d mutated: DirectCost=%v", i, o.DirectCost)
		}
	}
}

// TestReplayErrorAborts pins the failure hygiene of a mid-replay error:
// the platform closes (no further use) and the event channel closes, so
// a ranging consumer terminates instead of hanging.
func TestReplayErrorAborts(t *testing.T) {
	net := roadnet.NewGridCity(10, 10, 100, 10)
	p, err := New(net, testFleet(net, 1), WithMeasuredTime(false))
	if err != nil {
		t.Fatal(err)
	}
	events := p.Events()
	if _, err := p.Tick(); err != nil { // clock advances to 10
		t.Fatal(err)
	}
	if _, err := p.Replay([]*order.Order{testOrder(net, 1, 5)}); err == nil {
		t.Fatal("replay behind the advanced clock must fail")
	}
	for range events { // must terminate: the abort closed the bus
	}
	if err := p.Submit(testOrder(net, 2, 50)); !errors.Is(err, ErrClosed) {
		t.Fatalf("aborted platform still accepts orders: %v", err)
	}
	if _, err := p.Close(); !errors.Is(err, ErrAborted) {
		t.Fatalf("close after abort must report the abort: %v", err)
	}
}

// TestEventsLateSubscription pins the misuse guard: subscribing after
// the run started (or after Close) yields an already-closed channel — a
// ranging consumer exits immediately instead of hanging on a bus that
// will never deliver or close.
func TestEventsLateSubscription(t *testing.T) {
	net := roadnet.NewGridCity(10, 10, 100, 10)
	p, err := New(net, testFleet(net, 1), WithMeasuredTime(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	for range p.Events() { // must exit immediately, not deadlock
		t.Fatal("late subscriber received an event")
	}
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := New(net, testFleet(net, 1), WithMeasuredTime(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	for range p2.Events() {
		t.Fatal("post-close subscriber received an event")
	}
}

// TestTickDrivesPlatform pins the live-feed path: manual ticks advance
// the clock and fire periodic checks without any orders.
func TestTickDrivesPlatform(t *testing.T) {
	net := roadnet.NewGridCity(10, 10, 100, 10)
	p, err := New(net, testFleet(net, 1), WithTick(15), WithMeasuredTime(false))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{15, 30, 45} {
		got, err := p.Tick()
		if err != nil || got != want {
			t.Fatalf("tick %d = %v, %v (want %v)", i, got, err, want)
		}
	}
	if c := p.Clock(); c != 45 {
		t.Fatalf("clock = %v", c)
	}
	if m := p.Metrics(); m.Total != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if p.Algorithm().Name() != "WATTER-online" {
		t.Fatalf("default algorithm = %q", p.Algorithm().Name())
	}
}
