package platform

import (
	"watter/internal/pool"
	"watter/internal/shard"
)

// OrderCounts summarizes the platform's order ledger at a point in time.
// Pending orders were admitted but have neither been dispatched nor
// rejected yet (they sit in the pool or in a baseline's schedule).
type OrderCounts struct {
	Submitted int
	Served    int
	Rejected  int
	Pending   int
}

// Stats is the platform's one composite observability snapshot: clock,
// lifecycle state, order ledger, event-bus depth, and the per-subsystem
// counters that used to require reaching into each subsystem separately
// (the sharded dispatch engine, the shareability-graph plan cache). The
// proxy's aggregated admin stats fold snapshots of this same struct, so a
// dashboard reads one shape whether it watches one city or fifty.
type Stats struct {
	// Clock is the simulation time of the last delivered event.
	Clock float64
	// Closed and Paused mirror the platform lifecycle. A closed platform
	// that its owner still believes is running is the HA prober's "wedged
	// city" signal.
	Closed bool
	Paused bool

	Orders OrderCounts

	// EventQueueDepth is the number of published-but-unconsumed events in
	// the bus channel (0 when nothing subscribed); EventQueueCap is the
	// channel's capacity. Depth approaching capacity means the consumer is
	// the bottleneck and feeders are about to block.
	EventQueueDepth int
	EventQueueCap   int
	// EventQueueHighWater is the deepest backlog any emit has observed —
	// the sampled backpressure indicator the load harness reads — and
	// EventBlockedSends counts emits that found the buffer full and
	// stalled the feeder. A nonzero EventBlockedSends is the bus
	// saturation signal: the consumer fell a full buffer behind at least
	// once.
	EventQueueHighWater int
	EventBlockedSends   uint64

	// Shard carries the slot-sharded dispatch engine's speculation
	// counters; ShardActive is false when no engine is running (K = 1, or
	// an algorithm without a shardable check).
	Shard       shard.Stats
	ShardActive bool

	// PoolCache carries the shareability graph's plan-cache counters;
	// PoolCacheActive is false for algorithms without a pool (GDP/GAS).
	PoolCache       pool.CacheStats
	PoolCacheActive bool
}

// Stats returns the composite snapshot. It reads the platform's own state
// plus whatever subsystems the installed algorithm exposes, and is the
// blessed observability surface — the per-subsystem accessors it replaced
// survive only for backward compatibility.
func (p *Platform) Stats() Stats {
	m := p.env.Metrics
	st := Stats{
		Clock:  p.stream.Clock(),
		Closed: p.closed,
		Paused: p.paused,
		Orders: OrderCounts{
			Submitted: m.Total,
			Served:    m.Served,
			Rejected:  m.Rejected,
			Pending:   m.Total - m.Served - m.Rejected,
		},
	}
	if p.events != nil {
		st.EventQueueDepth = len(p.events)
		st.EventQueueCap = cap(p.events)
	}
	if p.sink != nil {
		st.EventQueueHighWater = p.sink.highWater
		st.EventBlockedSends = p.sink.blockedSends
	}
	if se, ok := p.stream.Alg().(interface{ ShardEngine() *shard.Engine }); ok {
		if eng := se.ShardEngine(); eng != nil {
			st.Shard = eng.Stats()
			st.ShardActive = true
		}
	}
	if ps, ok := p.stream.Alg().(interface{ Pool() *pool.Pool }); ok {
		if pl := ps.Pool(); pl != nil {
			st.PoolCache = pl.CacheStats()
			st.PoolCacheActive = true
		}
	}
	return st
}

// Merge folds another platform's snapshot into s for fleet-level
// aggregation: counters and queue depths sum, Clock takes the maximum,
// subsystem-active flags OR. Closed ANDs (an aggregate is closed only when
// every member is) while Paused ORs (any paused member makes the fleet
// partially paused — the state an operator wants surfaced).
func (s *Stats) Merge(t Stats) {
	if t.Clock > s.Clock {
		s.Clock = t.Clock
	}
	s.Closed = s.Closed && t.Closed
	s.Paused = s.Paused || t.Paused

	s.Orders.Submitted += t.Orders.Submitted
	s.Orders.Served += t.Orders.Served
	s.Orders.Rejected += t.Orders.Rejected
	s.Orders.Pending += t.Orders.Pending

	s.EventQueueDepth += t.EventQueueDepth
	s.EventQueueCap += t.EventQueueCap
	// High-water is a per-bus peak, not an additive backlog: the fleet
	// watermark is its worst member. Blocked sends are occurrences and sum.
	if t.EventQueueHighWater > s.EventQueueHighWater {
		s.EventQueueHighWater = t.EventQueueHighWater
	}
	s.EventBlockedSends += t.EventBlockedSends

	s.Shard.Ticks += t.Shard.Ticks
	s.Shard.SpecOrders += t.Shard.SpecOrders
	s.Shard.GroupHits += t.Shard.GroupHits
	s.Shard.GroupInvalid += t.Shard.GroupInvalid
	s.Shard.GroupMiss += t.Shard.GroupMiss
	s.Shard.SoloHits += t.Shard.SoloHits
	s.Shard.SoloInvalid += t.Shard.SoloInvalid
	s.Shard.SoloMiss += t.Shard.SoloMiss
	s.Shard.PlanHits += t.Shard.PlanHits
	s.Shard.PrewarmTasks += t.Shard.PrewarmTasks
	s.Shard.SlotHandoffs += t.Shard.SlotHandoffs
	s.ShardActive = s.ShardActive || t.ShardActive

	s.PoolCache.Hits += t.PoolCache.Hits
	s.PoolCache.NegativeHits += t.PoolCache.NegativeHits
	s.PoolCache.Misses += t.PoolCache.Misses
	s.PoolCache.Renewed += t.PoolCache.Renewed
	s.PoolCache.Evicted += t.PoolCache.Evicted
	s.PoolCache.PlansMaterialized += t.PoolCache.PlansMaterialized
	s.PoolCache.PlansReused += t.PoolCache.PlansReused
	s.PoolCacheActive = s.PoolCacheActive || t.PoolCacheActive
}
