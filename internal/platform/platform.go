// Package platform is the service-shaped front of the reproduction: a
// validated, event-driven ingestion API over the simulation machinery.
// Where sim.Run replays a pre-materialized workload (paper-replication
// mode), a Platform accepts orders one at a time, advances the periodic
// check on demand, and publishes typed events (order admitted / group
// dispatched / order rejected / tick completed) so callers can build live
// dashboards, loggers or admission controllers on top. Construction goes
// through functional options that validate and return errors instead of
// silently defaulting.
package platform

import (
	"errors"
	"fmt"

	"watter/internal/core"
	"watter/internal/order"
	"watter/internal/pool"
	"watter/internal/roadnet"
	"watter/internal/shard"
	"watter/internal/sim"
	"watter/internal/strategy"
)

// Lifecycle sentinels. ErrClosed is the typed "platform is closed" error:
// Submit/Tick/Replay return it (test with errors.Is) after Close or Abort.
// ErrPaused is returned while the platform is administratively paused —
// the operation is refused but the platform stays usable. ErrAborted is
// what Close reports (idempotently) for a platform that was killed by
// Abort or by a mid-replay failure instead of draining cleanly.
var (
	ErrClosed  = errors.New("platform: closed")
	ErrPaused  = errors.New("platform: paused")
	ErrAborted = errors.New("platform: aborted")
)

// Platform is a ridesharing service instance: one network, one fleet, one
// dispatch algorithm, and a streaming clock. It is not safe for
// concurrent use — one goroutine feeds it; event consumers run elsewhere.
type Platform struct {
	stream     *sim.Stream
	env        *sim.Env
	events     chan Event
	sink       *fanSink // installed on the stream once any delivery path exists
	subscribed bool     // a live sink is installed (events must be closed at Close)
	fed        bool     // the run has started; too late to subscribe
	buffer     int
	paused     bool
	closed     bool
	// Close is idempotent: the first call's result is memoized and every
	// later call returns exactly the same (*Metrics, error) pair.
	closeM   *sim.Metrics
	closeErr error
}

// config accumulates functional options before validation.
type config struct {
	cfg      sim.Config
	opts     sim.RunOptions
	alg      sim.Algorithm
	poolOpt  *pool.Options
	buffer   int
	shards   int
	observer func(Event)
}

// Option configures a Platform at construction; invalid values surface as
// errors from New.
type Option func(*config) error

// WithTick sets the periodic-check interval Δt in seconds (default 10,
// the paper's value). Must be positive.
func WithTick(dt float64) Option {
	return func(c *config) error {
		o := c.opts
		o.TickEvery = dt
		if err := o.Validate(); err != nil {
			return err
		}
		c.opts.TickEvery = dt
		return nil
	}
}

// WithDrainSlack fixes the drain horizon to last-release + slack seconds
// instead of the largest order deadline (the default). The override
// applies even when shorter than outstanding deadlines. Slack must be
// positive: zero is the runtime's "unset, use deadlines" value, so
// passing it here would be silently ignored — exactly the coercion this
// constructor exists to refuse.
func WithDrainSlack(slack float64) Option {
	return func(c *config) error {
		if slack <= 0 {
			return fmt.Errorf("platform: drain slack must be positive, got %v (omit the option to drain to the largest deadline)", slack)
		}
		o := c.opts
		o.DrainSlack = slack
		if err := o.Validate(); err != nil {
			return err
		}
		c.opts.DrainSlack = slack
		return nil
	}
}

// WithConfig replaces the platform parameters (alpha/beta, grid size,
// capacity). Start from sim.DefaultConfig and deviate explicitly.
func WithConfig(cfg sim.Config) Option {
	return func(c *config) error {
		if err := cfg.Validate(); err != nil {
			return err
		}
		c.cfg = cfg
		return nil
	}
}

// WithAlgorithm installs the dispatch policy (default: the WATTER-online
// pooling framework). If the algorithm exposes SetTick it is aligned with
// the platform's Δt at New time, so the check cadence is configured in
// exactly one place.
func WithAlgorithm(alg sim.Algorithm) Option {
	return func(c *config) error {
		if alg == nil {
			return errors.New("platform: nil algorithm")
		}
		c.alg = alg
		return nil
	}
}

// WithPool tunes the shareability graph behind the dispatch algorithm.
// The algorithm must support pool retuning (the WATTER pooling framework
// does; schedule-based baselines have no pool and reject the option).
func WithPool(opt pool.Options) Option {
	return func(c *config) error {
		switch {
		case opt.Capacity < 0:
			return fmt.Errorf("platform: pool Capacity must be non-negative (0 inherits the platform capacity), got %d", opt.Capacity)
		case opt.MaxGroupSize < 1:
			return fmt.Errorf("platform: pool MaxGroupSize must be at least 1, got %d", opt.MaxGroupSize)
		case opt.MaxCliquesPerUpdate < 0:
			return fmt.Errorf("platform: pool MaxCliquesPerUpdate must be non-negative (0 is unlimited), got %d", opt.MaxCliquesPerUpdate)
		}
		c.poolOpt = &opt
		return nil
	}
}

// WithShards sets the dispatch engine's slot-shard count: K > 1 fans the
// periodic check's expensive read-only work (worker-probe ring searches,
// singleton plans, pairwise shareability prewarm) over K goroutines while
// the platform's decisions — and therefore its metrics and its event
// stream — stay bit-identical to the default K = 1 sequential check
// (every event is still emitted from the one sequential commit pass, so
// the bus order needs no merging). Sharding is a capability of the WATTER
// pooling framework; algorithms without a shardable check (the GDP/GAS
// baselines) run unsharded regardless of K. Must be at least 1.
//
// K > 1 issues concurrent read-only queries (Cost/FillCostMatrix)
// against the platform's Network from the shard goroutines, so the
// network must tolerate concurrent queries. Every network this module
// ships — GridCity (stateless closed form) and Graph (mutex-guarded
// cache, pooled search state, hammered by the roadnet concurrency
// tests) — does; a custom Network with unguarded internal memoization
// must add its own synchronization before enabling shards.
func WithShards(k int) Option {
	return func(c *config) error {
		if k < 1 {
			return fmt.Errorf("platform: shard count must be at least 1, got %d (1 is the sequential check)", k)
		}
		c.shards = k
		return nil
	}
}

// WithMeasuredTime toggles wall-clock accounting of algorithm hooks
// (Metrics.DecisionSeconds). Default on, matching DefaultRunOptions.
func WithMeasuredTime(on bool) Option {
	return func(c *config) error {
		c.opts.MeasureTime = on
		return nil
	}
}

// WithEventBuffer sizes the event channel (default 256). Event delivery
// blocks when the buffer is full — nothing is dropped — so feeders that
// outrun their consumer need either a larger buffer or a draining
// goroutine.
func WithEventBuffer(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("platform: event buffer must hold at least 1 event, got %d", n)
		}
		c.buffer = n
		return nil
	}
}

// WithObserver installs a synchronous event callback, invoked for every
// event on the feeding goroutine as it happens — the journal-recording
// hook the multi-city proxy builds on. Unlike the Events channel the
// observer never buffers and never blocks on a consumer, so it is the
// right tap for recorders that must not miss or reorder anything. The
// callback must not call back into the Platform. It composes with
// Events(): a subscribed channel receives every event the observer saw,
// observer first.
func WithObserver(fn func(Event)) Option {
	return func(c *config) error {
		if fn == nil {
			return errors.New("platform: nil observer")
		}
		c.observer = fn
		return nil
	}
}

// tickSetter is the retuning hook the pooling framework exposes.
type tickSetter interface{ SetTick(float64) }

// poolSetter is the pool-retuning hook the pooling framework exposes.
type poolSetter interface{ SetPoolOptions(pool.Options) }

// shardSetter is the dispatch-sharding hook the pooling framework exposes.
type shardSetter interface{ SetShards(int) }

// New builds a platform over a network and fleet. Every parameter is
// validated — construction fails loudly instead of silently coercing:
//
//	p, err := platform.New(city.Net, workers,
//	    platform.WithTick(10),
//	    platform.WithPool(pool.DefaultOptions()),
//	    platform.WithAlgorithm(alg),
//	)
//
// Workers are used in place; their FreeAt/Loc fields mutate as the
// platform dispatches.
func New(net roadnet.Network, workers []*order.Worker, options ...Option) (*Platform, error) {
	if net == nil {
		return nil, errors.New("platform: nil network")
	}
	c := config{
		cfg:    sim.DefaultConfig(),
		opts:   sim.DefaultRunOptions(),
		buffer: 256,
	}
	for _, opt := range options {
		if opt == nil {
			return nil, errors.New("platform: nil option")
		}
		if err := opt(&c); err != nil {
			return nil, err
		}
	}
	for i, w := range workers {
		if w == nil {
			return nil, fmt.Errorf("platform: worker %d is nil", i)
		}
		// IDs start at 1: GroupDispatched reserves WorkerID 0 for "no
		// single worker attributable", so a zero-ID worker's dispatches
		// would be unreportable.
		if w.ID < 1 {
			return nil, fmt.Errorf("platform: worker at index %d has ID %d < 1", i, w.ID)
		}
		if w.Capacity < 1 {
			return nil, fmt.Errorf("platform: worker %d has capacity %d < 1", w.ID, w.Capacity)
		}
	}
	if c.alg == nil {
		popt := pool.DefaultOptions()
		if c.poolOpt != nil {
			popt = *c.poolOpt
		}
		c.alg = core.New(strategy.Online{}, popt)
	} else if c.poolOpt != nil {
		ps, ok := c.alg.(poolSetter)
		if !ok {
			return nil, fmt.Errorf("platform: algorithm %q does not accept pool options", c.alg.Name())
		}
		ps.SetPoolOptions(*c.poolOpt)
	}
	if ts, ok := c.alg.(tickSetter); ok {
		ts.SetTick(c.opts.TickEvery)
	}
	if c.shards > 1 {
		if ss, ok := c.alg.(shardSetter); ok {
			ss.SetShards(c.shards)
		}
	}
	env := sim.NewEnv(net, workers, c.cfg) // cfg validated above: cannot panic
	stream, err := sim.NewStream(env, c.alg, c.opts)
	if err != nil {
		return nil, err
	}
	p := &Platform{stream: stream, env: env, buffer: c.buffer}
	if c.observer != nil {
		p.ensureSink().fn = c.observer
	}
	return p, nil
}

// ensureSink lazily installs the fan-out sink on the stream. Both delivery
// paths (observer callback, event channel) hang off the one sink, so the
// stream sees a single EventSink regardless of how many taps exist.
func (p *Platform) ensureSink() *fanSink {
	if p.sink == nil {
		p.sink = &fanSink{}
		p.stream.SetSink(p.sink)
	}
	return p.sink
}

// Events returns the platform's event channel, creating it on first call.
// Subscribe from the feeding goroutine, before the first Submit/Tick —
// Events is not safe to call concurrently with Submit/Close — then hand
// the channel to the consumer; it closes when the platform does. Without
// a subscriber the bus costs nothing.
//
// Subscribing late — after the run has started or the platform has
// closed — cannot observe the events already emitted, so instead of
// handing back a channel that would miss events (or never close), Events
// returns an already-closed channel: a ranging consumer exits
// immediately rather than hanging.
func (p *Platform) Events() <-chan Event {
	if p.events == nil {
		p.events = make(chan Event, p.buffer)
		if p.fed || p.closed {
			close(p.events)
		} else {
			p.subscribed = true
			p.ensureSink().ch = p.events
		}
	}
	return p.events
}

// Submit admits one order into the platform. Orders must be valid and
// arrive in non-decreasing release order; every periodic check due before
// the release fires first. The platform takes ownership of the order and
// enriches DirectCost when unset — callers replaying a shared slice
// should go through Replay, which clones.
func (p *Platform) Submit(o *order.Order) error {
	if p.closed {
		return ErrClosed
	}
	if p.paused {
		return ErrPaused
	}
	if o == nil {
		return errors.New("platform: nil order")
	}
	if err := o.Validate(); err != nil {
		return err
	}
	p.fed = true
	return p.stream.Submit(o)
}

// Tick fires the next periodic check immediately and returns its
// simulation time — how a live feed makes the platform act while no
// orders arrive.
func (p *Platform) Tick() (float64, error) {
	if p.closed {
		return 0, ErrClosed
	}
	if p.paused {
		return 0, ErrPaused
	}
	p.fed = true
	return p.stream.Tick()
}

// Pause administratively freezes ingestion: Submit and Tick return
// ErrPaused until Resume. Pausing is metrics-neutral — the simulation runs
// on virtual time, so delaying ticks moves no boundary and changes no
// decision; only traffic the caller drops while paused is lost. Close
// still works on a paused platform (it drains and finalizes as usual).
func (p *Platform) Pause() error {
	if p.closed {
		return ErrClosed
	}
	p.paused = true
	return nil
}

// Resume lifts a Pause. Resuming an unpaused platform is a no-op.
func (p *Platform) Resume() error {
	if p.closed {
		return ErrClosed
	}
	p.paused = false
	return nil
}

// Close drains the platform — periodic checks keep firing until the
// horizon (largest outstanding deadline, or last release + drain slack),
// remaining pooled orders are dispatched or rejected — then closes the
// event channel and returns the final metrics. Close is idempotent: every
// call after the first returns the first call's exact (*Metrics, error)
// pair, so restart and teardown paths can close defensively without
// tracking who closed first.
func (p *Platform) Close() (*sim.Metrics, error) {
	if p.closed {
		return p.closeM, p.closeErr
	}
	p.closed = true
	p.closeM, p.closeErr = p.stream.Close()
	if p.subscribed {
		close(p.events)
	}
	return p.closeM, p.closeErr
}

// Abort kills the platform without draining: no final ticks, no Finish,
// in-flight pool state is simply gone — the programmatic equivalent of the
// process crashing. The event channel still closes so ranging consumers
// terminate, Submit/Tick return ErrClosed afterwards, and Close reports
// ErrAborted (idempotently). The multi-city proxy's crash injection and
// restart teardown both route through here; recovery is the owner's
// problem (replay the recorded event journal into a fresh platform).
func (p *Platform) Abort() {
	if p.closed {
		return
	}
	p.abort()
}

// Replay is paper-replication mode on the streaming core: after
// validating every order it delegates to Stream.Replay (the single
// clone + stable-sort + submit implementation sim.Run also uses) and
// closes the platform. The caller's slice is never touched, and the
// metrics are bit-identical to the legacy batch sim.Run — proven by the
// replay equivalence property test. On a mid-replay error the platform
// is aborted — closed without draining, event channel closed — so event
// consumers always terminate.
func (p *Platform) Replay(orders []*order.Order) (*sim.Metrics, error) {
	if p.closed {
		return nil, ErrClosed
	}
	if p.paused {
		return nil, ErrPaused
	}
	for i, o := range orders {
		if o == nil {
			return nil, fmt.Errorf("platform: order %d is nil", i)
		}
		if err := o.Validate(); err != nil {
			return nil, err
		}
	}
	p.fed = true
	if err := p.stream.Replay(orders); err != nil {
		p.abort()
		return nil, err
	}
	return p.Close()
}

// abort kills a platform whose run failed mid-flight: no drain, no
// Finish — but the event channel still closes so ranging consumers
// terminate instead of hanging on a bus that will never deliver again.
// Later Close calls report ErrAborted instead of pretending a clean drain
// produced metrics.
func (p *Platform) abort() {
	p.closed = true
	p.closeM, p.closeErr = nil, ErrAborted
	if p.subscribed {
		close(p.events)
	}
}

// Clock returns the simulation time of the last delivered event.
func (p *Platform) Clock() float64 { return p.stream.Clock() }

// Metrics returns a snapshot of the metrics accumulated so far.
func (p *Platform) Metrics() sim.Metrics { return p.env.Metrics }

// Env exposes the underlying simulation environment for advanced
// consumers (offline training registers outcome observers on it). The
// platform still owns the clock; treat the environment as read-mostly.
func (p *Platform) Env() *sim.Env { return p.env }

// Algorithm returns the installed dispatch policy.
func (p *Platform) Algorithm() sim.Algorithm { return p.stream.Alg() }

// ShardStats returns the slot-sharded dispatch engine's speculation
// counters. ok is false when no engine is running — the platform was built
// without WithShards (or with K = 1), or the algorithm has no shardable
// check (GDP/GAS).
//
// Deprecated: use Stats, which folds the same counters (Stats().Shard /
// Stats().ShardActive) into the unified observability snapshot alongside
// the pool cache, event-bus depth and order ledger.
func (p *Platform) ShardStats() (shard.Stats, bool) {
	type shardStatser interface{ ShardEngine() *shard.Engine }
	if ss, ok := p.stream.Alg().(shardStatser); ok {
		if eng := ss.ShardEngine(); eng != nil {
			return eng.Stats(), true
		}
	}
	return shard.Stats{}, false
}
