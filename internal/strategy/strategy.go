// Package strategy implements WATTER's dispatch decision strategies: the
// average-extra-time threshold strategy (paper Algorithm 2) plus the two
// framework baselines, online (dispatch as early as possible) and timeout
// (dispatch as late as possible). All three plug into the order pooling
// management algorithm in internal/core.
package strategy

import (
	"math"

	"watter/internal/order"
)

// Decision decides, at each periodic check, whether an order's current best
// group should be dispatched now or held for a better future group.
type Decision interface {
	// Name identifies the strategy in reports.
	Name() string
	// ShouldDispatch reports whether group g should leave the pool at time
	// now. groupExpiry is τg, the latest time the group stays feasible.
	ShouldDispatch(g *order.Group, groupExpiry, now float64) bool
	// ServeSoloEarly reports whether an order without any shared group
	// should be served alone before its wait limit elapses. Only the
	// online variant does; the others hold solo orders until timeout
	// (Algorithm 1 lines 14-16).
	ServeSoloEarly() bool
}

// Online dispatches every group at the first opportunity, mirroring
// WATTER-online: riders get the shortest possible response times at the
// price of worse groups.
type Online struct{}

// Name implements Decision.
func (Online) Name() string { return "WATTER-online" }

// ShouldDispatch implements Decision: always dispatch.
func (Online) ShouldDispatch(*order.Group, float64, float64) bool { return true }

// ServeSoloEarly implements Decision. Even the online variant keeps loners
// pooled: "If o(i) does not have a shareable group, it will remain in the
// pool and wait" (paper Section III) — what online accelerates is the
// dispatch of *groups*, not solo rides. Solo service still happens at the
// wait limit / last call via the framework.
func (Online) ServeSoloEarly() bool { return false }

// Timeout holds every group as long as possible, mirroring WATTER-timeout:
// a group is released only when a member exceeded its wait limit or the
// group is about to expire (the next check would be too late).
type Timeout struct {
	// Tick is the periodic-check interval Δt; a group expiring within the
	// next Tick seconds must go now.
	Tick float64
}

// Name implements Decision.
func (Timeout) Name() string { return "WATTER-timeout" }

// ShouldDispatch implements Decision.
func (s Timeout) ShouldDispatch(g *order.Group, groupExpiry, now float64) bool {
	if earliestTimeout(g) <= now {
		return true
	}
	tick := s.Tick
	if tick <= 0 {
		tick = 10
	}
	return groupExpiry < now+tick
}

// ServeSoloEarly implements Decision: timeout holds loners to the limit.
func (Timeout) ServeSoloEarly() bool { return false }

// ThresholdSource supplies the expected extra-time threshold θ(i) for an
// order in its current spatio-temporal environment. Implementations include
// the GMM-analytic optimizer (internal/gmm) and the learned value function
// (internal/mdp, θ = p - V(s)).
type ThresholdSource interface {
	Threshold(o *order.Order, now float64) float64
}

// ConstantThreshold returns the same θ for every order; useful as an
// ablation and in tests.
type ConstantThreshold float64

// Threshold implements ThresholdSource.
func (c ConstantThreshold) Threshold(*order.Order, float64) float64 { return float64(c) }

// Threshold is the paper's Algorithm 2: dispatch when the group's average
// extra time t̄e is at most the members' average expected threshold θ̄, or
// when a member has exceeded its wait limit η.
type Threshold struct {
	Source      ThresholdSource
	Alpha, Beta float64
	// Label overrides Name() (defaults to "WATTER-expect").
	Label string
}

// Name implements Decision.
func (s *Threshold) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "WATTER-expect"
}

// ShouldDispatch implements Decision (Algorithm 2).
func (s *Threshold) ShouldDispatch(g *order.Group, groupExpiry, now float64) bool {
	if earliestTimeout(g) <= now {
		return true // line 1-3: a member waited beyond its limit
	}
	avgExtra := g.AvgExtraTime(now, s.Alpha, s.Beta) // line 4
	var sum float64                                  // line 5: θ̄
	for _, o := range g.Orders {
		sum += s.Source.Threshold(o, now)
	}
	avgTheta := sum / float64(len(g.Orders))
	return avgExtra <= avgTheta // line 6
}

// ServeSoloEarly implements Decision: loners wait until their limit — by
// then either a group appeared or they are served alone/rejected.
func (*Threshold) ServeSoloEarly() bool { return false }

// earliestTimeout returns min_i (t(i) + η(i)) over the group.
func earliestTimeout(g *order.Group) float64 {
	earliest := math.Inf(1)
	for _, o := range g.Orders {
		if to := o.Release + o.WaitLimit; to < earliest {
			earliest = to
		}
	}
	return earliest
}
