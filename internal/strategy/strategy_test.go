package strategy

import (
	"testing"
	"testing/quick"

	"watter/internal/order"
)

func group(releases []float64, waitLimits []float64, arrive []float64, directs []float64) *order.Group {
	g := &order.Group{Plan: &order.RoutePlan{}}
	for i := range releases {
		o := &order.Order{
			ID: i + 1, Riders: 1,
			Release:    releases[i],
			WaitLimit:  waitLimits[i],
			DirectCost: directs[i],
			Deadline:   releases[i] + 10*directs[i],
		}
		g.Orders = append(g.Orders, o)
		g.Plan.Stops = append(g.Plan.Stops,
			order.Stop{Kind: order.PickupStop, OrderID: o.ID})
	}
	for i := range releases {
		g.Plan.Stops = append(g.Plan.Stops,
			order.Stop{Kind: order.DropoffStop, OrderID: i + 1})
	}
	// Arrive: pickups first (all 0), then the provided dropoff offsets.
	for range releases {
		g.Plan.Arrive = append(g.Plan.Arrive, 0)
	}
	g.Plan.Arrive = append(g.Plan.Arrive, arrive...)
	g.Plan.Cost = arrive[len(arrive)-1]
	return g
}

func TestOnlineAlwaysDispatches(t *testing.T) {
	s := Online{}
	g := group([]float64{0}, []float64{100}, []float64{50}, []float64{40})
	if !s.ShouldDispatch(g, 1e9, 0) {
		t.Fatal("online must always dispatch")
	}
	if s.ServeSoloEarly() {
		t.Fatal("online must keep loners pooled (paper Section III: orders without a shareable group wait)")
	}
	if s.Name() != "WATTER-online" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestTimeoutHoldsUntilLimit(t *testing.T) {
	s := Timeout{Tick: 10}
	// One order released at 0 with wait limit 60; group expires at 500.
	g := group([]float64{0}, []float64{60}, []float64{50}, []float64{40})
	if s.ShouldDispatch(g, 500, 30) {
		t.Fatal("timeout must hold before the limit")
	}
	if !s.ShouldDispatch(g, 500, 60) {
		t.Fatal("timeout must dispatch at the limit")
	}
	// Group expiring within the next tick forces dispatch even early.
	if !s.ShouldDispatch(g, 35, 30) {
		t.Fatal("imminent expiry must force dispatch")
	}
	if s.ServeSoloEarly() {
		t.Fatal("timeout holds loners")
	}
}

func TestTimeoutEarliestMemberWins(t *testing.T) {
	s := Timeout{Tick: 10}
	g := group([]float64{0, 40}, []float64{60, 60}, []float64{80, 90}, []float64{40, 40})
	// Earliest timeout is order 1 at t=60.
	if s.ShouldDispatch(g, 1e9, 59) {
		t.Fatal("held until earliest member limit")
	}
	if !s.ShouldDispatch(g, 1e9, 60) {
		t.Fatal("dispatch at earliest member limit")
	}
}

func TestThresholdAlgorithm2(t *testing.T) {
	s := &Threshold{Source: ConstantThreshold(100), Alpha: 1, Beta: 1}
	// Single order released at 0: dropoff offset 50, direct 40 => detour 10.
	g := group([]float64{0}, []float64{600}, []float64{50}, []float64{40})
	// At now=20: avg extra = detour 10 + response 20 = 30 <= 100 => dispatch.
	if !s.ShouldDispatch(g, 1e9, 20) {
		t.Fatal("extra below threshold must dispatch")
	}
	small := &Threshold{Source: ConstantThreshold(5), Alpha: 1, Beta: 1}
	if small.ShouldDispatch(g, 1e9, 20) {
		t.Fatal("extra above threshold must hold")
	}
	// Past the wait limit the threshold is bypassed (lines 1-3).
	if !small.ShouldDispatch(g, 1e9, 601) {
		t.Fatal("timed-out group must dispatch regardless of threshold")
	}
	if s.Name() != "WATTER-expect" {
		t.Fatalf("name = %q", s.Name())
	}
	s.Label = "WATTER-gmm"
	if s.Name() != "WATTER-gmm" {
		t.Fatal("label override failed")
	}
}

func TestThresholdAveragesOverMembers(t *testing.T) {
	// Two members: thresholds 10 and 90 => θ̄ = 50.
	src := perOrderSource{1: 10, 2: 90}
	s := &Threshold{Source: src, Alpha: 1, Beta: 1}
	// dropoffs at 45 and 50, directs 40: detours 5, 10; at now=30 with
	// releases 0 and 20: responses 30, 10 => extras 35, 20 => avg 27.5.
	g := group([]float64{0, 20}, []float64{600, 600}, []float64{45, 50}, []float64{40, 40})
	if !s.ShouldDispatch(g, 1e9, 30) {
		t.Fatalf("avg extra 27.5 <= θ̄ 50 must dispatch")
	}
	// Lower the second threshold: θ̄ = (10+20)/2 = 15 < 27.5 => hold.
	s.Source = perOrderSource{1: 10, 2: 20}
	if s.ShouldDispatch(g, 1e9, 30) {
		t.Fatal("avg extra above θ̄ must hold")
	}
}

type perOrderSource map[int]float64

func (p perOrderSource) Threshold(o *order.Order, _ float64) float64 { return p[o.ID] }

func TestConstantThreshold(t *testing.T) {
	c := ConstantThreshold(42)
	if c.Threshold(&order.Order{}, 0) != 42 {
		t.Fatal("constant threshold broken")
	}
}

// TestThresholdMonotoneProperty: raising every member's threshold can only
// flip decisions from hold to dispatch, never the reverse.
func TestThresholdMonotoneProperty(t *testing.T) {
	g := group([]float64{0, 5}, []float64{600, 600}, []float64{70, 90}, []float64{40, 60})
	f := func(rawLo, rawDelta uint16, rawNow uint8) bool {
		lo := float64(rawLo % 300)
		hi := lo + float64(rawDelta%300)
		now := 10 + float64(rawNow%200)
		sLo := &Threshold{Source: ConstantThreshold(lo), Alpha: 1, Beta: 1}
		sHi := &Threshold{Source: ConstantThreshold(hi), Alpha: 1, Beta: 1}
		dLo := sLo.ShouldDispatch(g, 1e9, now)
		dHi := sHi.ShouldDispatch(g, 1e9, now)
		return !dLo || dHi // dLo implies dHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestThresholdTimeMonotoneProperty: with a fixed threshold, once a group
// is held it stays held as time passes only if its average extra keeps
// growing — i.e. dispatch decisions never flip from dispatch back to hold
// as now increases (extra time is nondecreasing in now for a fixed plan...
// so dispatchability is monotone downward). Verify that direction.
func TestThresholdTimeMonotoneProperty(t *testing.T) {
	g := group([]float64{0}, []float64{600}, []float64{80}, []float64{50})
	s := &Threshold{Source: ConstantThreshold(100), Alpha: 1, Beta: 1}
	f := func(rawA, rawB uint8) bool {
		a := float64(rawA) * 250 / 255
		b := float64(rawB) * 250 / 255
		if a > b {
			a, b = b, a
		}
		// avg extra grows with time => if held at a, held at b... inverse:
		// if dispatchable at b (later), it was dispatchable at a.
		dA := s.ShouldDispatch(g, 1e9, a)
		dB := s.ShouldDispatch(g, 1e9, b)
		if b <= 600 { // before the wait-limit bypass kicks in
			return !dB || dA
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
