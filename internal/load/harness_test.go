package load

import (
	"testing"

	"watter/internal/dataset"
)

// TestQueueModelPinned pins the backpressure-onset definition against a
// hand-computed scenario: buffer 4, consumer draining 1 event per tick,
// two admits per tick plus the tick event itself (net +2 per tick).
//
//	tick 1: pushes at t=2, t=4, t=10   → depth 1,2,3   peak 3, no onset; drain → 2
//	tick 2: pushes at t=12, t=14, t=20 → depth 3,4,5   the t=20 push is the
//	        first to exceed the buffer → onset latches at 20; drain → 4
func TestQueueModelPinned(t *testing.T) {
	q := NewQueueModel(4, 1)
	q.Push(2)
	q.Push(4)
	q.Push(10)
	if q.Onset() != -1 || q.Peak() != 3 {
		t.Fatalf("after tick-1 pushes: onset=%v peak=%d, want -1/3", q.Onset(), q.Peak())
	}
	q.Drain()
	if q.Depth() != 2 {
		t.Fatalf("after tick-1 drain: depth=%d, want 2", q.Depth())
	}
	q.Push(12)
	q.Push(14)
	if q.Onset() != -1 {
		t.Fatalf("onset fired at depth<=buffer: %v", q.Onset())
	}
	q.Push(20)
	if q.Onset() != 20 {
		t.Fatalf("onset=%v, want 20 (first push beyond buffer 4)", q.Onset())
	}
	q.Drain()
	if q.Depth() != 4 || q.Peak() != 5 {
		t.Fatalf("after tick-2 drain: depth=%d peak=%d, want 4/5", q.Depth(), q.Peak())
	}
	// The onset is a latch: later drains never clear it.
	q.Drain()
	q.Drain()
	if q.Onset() != 20 {
		t.Fatalf("onset moved after draining: %v", q.Onset())
	}
	// Drain below zero clamps.
	big := NewQueueModel(10, 100)
	big.Push(1)
	big.Drain()
	if big.Depth() != 0 {
		t.Fatalf("drain went negative: %d", big.Depth())
	}
}

func smallConfig() Config {
	return Config{
		Workers: 40,
		Seed:    3,
		Horizon: 300,
		Arrival: ArrivalSpec{Process: Poisson, Rate: 2, Seed: 3},
	}
}

// TestHarnessDeterminism is the PR's acceptance property: two consecutive
// runs of the same Config produce bit-identical order streams, decision
// journals, and therefore bit-identical results (with MeasureTime off the
// Result struct is comparable and must be equal field-for-field).
func TestHarnessDeterminism(t *testing.T) {
	for _, proc := range []ArrivalSpec{
		{Process: Poisson, Rate: 2, Seed: 3},
		{Process: Surge, Rate: 1.5, Seed: 3},
		{Process: Pareto, Rate: 2, Seed: 3},
	} {
		cfg := smallConfig()
		cfg.Arrival = proc
		a, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", proc.Process, err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: second run: %v", proc.Process, err)
		}
		if a.StreamHash != b.StreamHash {
			t.Fatalf("%s: order streams differ: %x vs %x", proc.Process, a.StreamHash, b.StreamHash)
		}
		if a.JournalHash != b.JournalHash {
			t.Fatalf("%s: decision journals differ: %x vs %x", proc.Process, a.JournalHash, b.JournalHash)
		}
		if *a != *b {
			t.Fatalf("%s: results differ:\n%+v\nvs\n%+v", proc.Process, *a, *b)
		}
		if a.Submitted == 0 || a.Served == 0 {
			t.Fatalf("%s: degenerate run: %+v", proc.Process, a)
		}
		if a.Pending != 0 {
			t.Fatalf("%s: %d orders left unresolved after drain", proc.Process, a.Pending)
		}
	}
}

// TestHarnessBackpressure checks the onset responds to the modelled
// consumer: an ample buffer never saturates, a tiny starved buffer does,
// and the onset time is deterministic.
func TestHarnessBackpressure(t *testing.T) {
	cfg := smallConfig()
	cfg.Buffer = 4096
	cfg.DrainPerTick = 4096
	ample, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ample.BackpressureOnset != -1 {
		t.Fatalf("ample buffer saturated at t=%v", ample.BackpressureOnset)
	}
	cfg.Buffer = 8
	cfg.DrainPerTick = 1
	starved, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if starved.BackpressureOnset < 0 {
		t.Fatal("starved buffer never saturated")
	}
	if starved.PeakQueueDepth <= cfg.Buffer {
		t.Fatalf("peak depth %d never exceeded buffer %d yet onset fired", starved.PeakQueueDepth, cfg.Buffer)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.BackpressureOnset != starved.BackpressureOnset {
		t.Fatalf("onset not deterministic: %v vs %v", again.BackpressureOnset, starved.BackpressureOnset)
	}
}

// TestRetime pins the release/deadline rewrite.
func TestRetime(t *testing.T) {
	city := dataset.CDC().Build()
	orders := city.Orders(dataset.WorkloadConfig{Orders: 50, Seed: 9})
	times := make([]float64, 10)
	for i := range times {
		times[i] = float64(i) * 7
	}
	out := Retime(orders, times, 1.6)
	if len(out) != 10 {
		t.Fatalf("retimed %d orders, want 10", len(out))
	}
	for i, o := range out {
		if o.Release != times[i] {
			t.Fatalf("order %d release %v, want %v", i, o.Release, times[i])
		}
		if want := times[i] + 1.6*o.DirectCost; o.Deadline != want {
			t.Fatalf("order %d deadline %v, want %v", i, o.Deadline, want)
		}
		if err := o.Validate(); err != nil {
			t.Fatalf("retimed order invalid: %v", err)
		}
	}
}

// TestSearchMaxRate runs a tiny deterministic bisection twice and checks
// the bracketing invariants plus run-to-run bit-identity.
func TestSearchMaxRate(t *testing.T) {
	sc := SearchConfig{
		Base: Config{
			Workers: 60,
			Seed:    5,
			Horizon: 300,
			Arrival: ArrivalSpec{Process: Poisson, Seed: 5, Rate: 1},
		},
		Quantile:   0.99,
		SlackTicks: 1,
		Lo:         0.125,
		Hi:         2,
		Iters:      3,
	}
	a, err := SearchMaxRate(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SearchMaxRate(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxRate != b.MaxRate || len(a.Probes) != len(b.Probes) {
		t.Fatalf("rate search not deterministic: %v/%d vs %v/%d",
			a.MaxRate, len(a.Probes), b.MaxRate, len(b.Probes))
	}
	for i := range a.Probes {
		if a.Probes[i] != b.Probes[i] {
			t.Fatalf("probe %d differs: %+v vs %+v", i, a.Probes[i], b.Probes[i])
		}
	}
	if a.MaxRate < sc.Lo || a.MaxRate > sc.Hi {
		t.Fatalf("found rate %v outside bracket [%v, %v]", a.MaxRate, sc.Lo, sc.Hi)
	}
	// Every sustainable probe must sit at or below every unsustainable one
	// after bisection converges... not true in general for noisy systems,
	// but the reported MaxRate must itself have probed sustainable.
	found := false
	for _, p := range a.Probes {
		if p.Rate == a.MaxRate && p.Sustainable {
			found = true
		}
	}
	if !found {
		t.Fatalf("MaxRate %v was never probed sustainable: %+v", a.MaxRate, a.Probes)
	}
}
