// Package load is the open-loop load harness: it drives a Platform with a
// synthetic arrival process at a configured rate — arrivals come when the
// schedule says, not when the platform is ready, exactly like production
// traffic — and measures what the batch benches cannot: sustained
// orders/sec, admit→dispatch latency tails, and the event-bus backpressure
// onset. Everything runs on the virtual clock: an arrival schedule is a
// pure function of (process, rate, seed), so the generated order stream,
// the decision journal and every reported latency quantile are bit-identical
// run to run. Wall-clock never enters a measurement; the only wall-clock
// number anywhere near the harness is the runtime cmd/watterload reports
// for the harness itself.
package load

import (
	"fmt"
	"math"
	"math/rand"
)

// Process identifies an arrival process family.
type Process string

const (
	// Poisson is the memoryless baseline: exponential inter-arrivals at a
	// constant rate.
	Poisson Process = "poisson"
	// Surge is a non-homogeneous Poisson process: base rate outside the
	// surge window, SurgeFactor times that inside it, with an optional
	// linear ramp instead of a step.
	Surge Process = "surge"
	// Pareto draws heavy-tailed inter-arrivals (Pareto with tail index
	// ParetoAlpha), scaled so the long-run mean rate still matches Rate —
	// bursts and lulls at the same average load.
	Pareto Process = "pareto"
)

// ArrivalSpec pins one arrival process: the schedule it generates is a
// deterministic function of the spec and the horizon, nothing else.
type ArrivalSpec struct {
	Process Process
	// Rate is the mean arrival rate in orders per second (for Surge, the
	// base rate outside the surge window).
	Rate float64
	Seed int64

	// Surge shape (Process == Surge only). The window [SurgeStart,
	// SurgeStart+SurgeLen) multiplies the base rate by SurgeFactor; with
	// SurgeRamp the multiplier ramps linearly from 1 at the window edges to
	// SurgeFactor at its midpoint instead of stepping.
	SurgeFactor float64
	SurgeStart  float64
	SurgeLen    float64
	SurgeRamp   bool

	// ParetoAlpha is the tail index (must exceed 1 so the mean exists;
	// smaller is heavier). Zero defaults to 1.5.
	ParetoAlpha float64
}

// Defaults fills zero-valued shape parameters with usable values: surge
// factor 3 over the middle third of the horizon, Pareto tail index 1.5.
// Rate, Seed and Process are never defaulted — they are the experiment.
func (s ArrivalSpec) Defaults(horizon float64) ArrivalSpec {
	if s.Process == Surge {
		if s.SurgeFactor == 0 {
			s.SurgeFactor = 3
		}
		if s.SurgeLen == 0 {
			s.SurgeStart = horizon / 3
			s.SurgeLen = horizon / 3
		}
	}
	if s.Process == Pareto && s.ParetoAlpha == 0 {
		s.ParetoAlpha = 1.5
	}
	return s
}

// Validate rejects specs the generators cannot honor.
func (s ArrivalSpec) Validate() error {
	switch s.Process {
	case Poisson, Surge, Pareto:
	default:
		return fmt.Errorf("load: unknown arrival process %q (want poisson, surge or pareto)", s.Process)
	}
	if s.Rate <= 0 || math.IsInf(s.Rate, 0) || math.IsNaN(s.Rate) {
		return fmt.Errorf("load: arrival rate must be a positive finite orders/sec, got %v", s.Rate)
	}
	if s.Process == Surge {
		if s.SurgeFactor < 1 {
			return fmt.Errorf("load: surge factor must be at least 1, got %v", s.SurgeFactor)
		}
		if s.SurgeStart < 0 || s.SurgeLen < 0 {
			return fmt.Errorf("load: surge window [%v, +%v) must be non-negative", s.SurgeStart, s.SurgeLen)
		}
	}
	if s.Process == Pareto && s.ParetoAlpha <= 1 {
		return fmt.Errorf("load: Pareto tail index must exceed 1 so the mean inter-arrival exists, got %v", s.ParetoAlpha)
	}
	return nil
}

// Times generates the arrival schedule over [0, horizon): a strictly
// increasing slice of release offsets. Same (spec, horizon) ⇒ byte-identical
// slice — the determinism the whole harness inherits.
func (s ArrivalSpec) Times(horizon float64) ([]float64, error) {
	s = s.Defaults(horizon)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 || math.IsInf(horizon, 0) || math.IsNaN(horizon) {
		return nil, fmt.Errorf("load: horizon must be a positive finite duration, got %v", horizon)
	}
	rng := rand.New(rand.NewSource(mix(s.Seed, s.Process)))
	switch s.Process {
	case Poisson:
		return homogeneous(rng, s.Rate, horizon), nil
	case Surge:
		return thinned(rng, s, horizon), nil
	default: // Pareto
		return pareto(rng, s.Rate, s.ParetoAlpha, horizon), nil
	}
}

// mix folds the process name into the seed so the three processes draw
// from unrelated streams even at the same user seed.
func mix(seed int64, p Process) int64 {
	h := uint64(seed) * 0x9e3779b97f4a7c15
	for i := 0; i < len(p); i++ {
		h = (h ^ uint64(p[i])) * 0x100000001b3
	}
	return int64(h)
}

// homogeneous samples a constant-rate Poisson process by summing
// exponential inter-arrivals.
func homogeneous(rng *rand.Rand, rate, horizon float64) []float64 {
	var out []float64
	t := 0.0
	for {
		// Inverse-CDF sampling: one uniform per arrival, so the schedule is
		// a prefix-stable function of the RNG stream.
		t += -math.Log(1-rng.Float64()) / rate
		if t >= horizon {
			return out
		}
		out = append(out, t)
	}
}

// thinned samples the surge process by Lewis-Shedler thinning: propose at
// the peak rate, accept with probability λ(t)/λmax. Both draws come from
// the one stream, keeping the schedule deterministic.
func thinned(rng *rand.Rand, s ArrivalSpec, horizon float64) []float64 {
	peak := s.Rate * s.SurgeFactor
	var out []float64
	t := 0.0
	for {
		t += -math.Log(1-rng.Float64()) / peak
		if t >= horizon {
			return out
		}
		if rng.Float64()*peak < s.rateAt(t) {
			out = append(out, t)
		}
	}
}

// rateAt is the surge intensity λ(t).
func (s ArrivalSpec) rateAt(t float64) float64 {
	if t < s.SurgeStart || t >= s.SurgeStart+s.SurgeLen {
		return s.Rate
	}
	if !s.SurgeRamp {
		return s.Rate * s.SurgeFactor
	}
	// Linear ramp: 1 at the window edges, SurgeFactor at its midpoint.
	frac := (t - s.SurgeStart) / s.SurgeLen // in [0,1)
	tri := 1 - math.Abs(2*frac-1)           // 0 at edges, 1 at midpoint
	return s.Rate * (1 + (s.SurgeFactor-1)*tri)
}

// pareto sums Pareto(alpha) inter-arrivals with the scale chosen so the
// mean inter-arrival is 1/rate: xm = (alpha-1)/(alpha*rate).
func pareto(rng *rand.Rand, rate, alpha, horizon float64) []float64 {
	xm := (alpha - 1) / (alpha * rate)
	var out []float64
	t := 0.0
	for {
		u := 1 - rng.Float64() // in (0,1]
		t += xm * math.Pow(u, -1/alpha)
		if t >= horizon {
			return out
		}
		out = append(out, t)
	}
}
