package load

// QueueModel is the deterministic event-bus consumer model behind the
// backpressure-onset measurement. A real platform.Events() channel of
// capacity Buffer, drained by a consumer that polls once per tick, would
// block the feeder at the first emit that finds the buffer full; blocking
// the feeder inside a virtual-clock harness would deadlock (feeder and
// consumer share one goroutine) and, worse, would make the onset depend on
// scheduler timing. So the harness taps the synchronous observer — which
// never blocks and never reorders — and replays the channel arithmetic
// here: every event enqueues one unit, and at each tick boundary the
// modelled consumer dequeues up to DrainPerTick units. Pure integer
// arithmetic over the (deterministic) event stream ⇒ the onset point is a
// deterministic function of (workload, buffer, drain rate).
type QueueModel struct {
	// Buffer is the modelled channel capacity (platform.WithEventBuffer).
	Buffer int
	// DrainPerTick is how many events the modelled consumer dequeues at
	// each tick boundary.
	DrainPerTick int

	depth int
	peak  int
	onset float64
	armed bool
}

// NewQueueModel returns a model with the onset unset.
func NewQueueModel(buffer, drainPerTick int) *QueueModel {
	return &QueueModel{Buffer: buffer, DrainPerTick: drainPerTick, onset: -1, armed: true}
}

// Push enqueues one event at virtual time t. The first push that lifts the
// depth above Buffer — the emit at which a real channel send would have
// blocked — latches the onset time.
func (q *QueueModel) Push(t float64) {
	q.depth++
	if q.depth > q.peak {
		q.peak = q.depth
	}
	if q.armed && q.onset < 0 && q.depth > q.Buffer {
		q.onset = t
	}
}

// Drain runs the modelled consumer's per-tick dequeue.
func (q *QueueModel) Drain() {
	if q.depth <= q.DrainPerTick {
		q.depth = 0
		return
	}
	q.depth -= q.DrainPerTick
}

// Depth returns the current modelled backlog.
func (q *QueueModel) Depth() int { return q.depth }

// Peak returns the largest backlog ever observed.
func (q *QueueModel) Peak() int { return q.peak }

// Onset returns the virtual time of the first would-block emit, or -1 if
// the buffer never saturated.
func (q *QueueModel) Onset() float64 {
	if !q.armed {
		return -1
	}
	return q.onset
}
