package load

import (
	"math"
	"testing"
)

func specs() []ArrivalSpec {
	return []ArrivalSpec{
		{Process: Poisson, Rate: 2, Seed: 7},
		{Process: Surge, Rate: 2, Seed: 7, SurgeFactor: 3, SurgeStart: 200, SurgeLen: 200},
		{Process: Surge, Rate: 2, Seed: 7, SurgeFactor: 4, SurgeStart: 100, SurgeLen: 400, SurgeRamp: true},
		{Process: Pareto, Rate: 2, Seed: 7, ParetoAlpha: 1.5},
	}
}

// TestArrivalDeterminism pins the harness's root determinism claim: the
// schedule is a pure function of (process, rate, seed) — two generations
// agree bit for bit, for every process family.
func TestArrivalDeterminism(t *testing.T) {
	const horizon = 600
	for _, s := range specs() {
		a, err := s.Times(horizon)
		if err != nil {
			t.Fatalf("%s: %v", s.Process, err)
		}
		b, err := s.Times(horizon)
		if err != nil {
			t.Fatalf("%s: second run: %v", s.Process, err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: run lengths differ: %d vs %d", s.Process, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s: arrival %d differs bitwise: %v vs %v", s.Process, i, a[i], b[i])
			}
		}
	}
}

// TestArrivalSeedSensitivity guards the other direction: distinct seeds
// must produce distinct schedules (a constant generator would pass the
// determinism test vacuously).
func TestArrivalSeedSensitivity(t *testing.T) {
	for _, s := range specs() {
		a, _ := s.Times(600)
		s2 := s
		s2.Seed = s.Seed + 1
		b, _ := s2.Times(600)
		if len(a) == len(b) {
			same := true
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("%s: seeds %d and %d generated identical schedules", s.Process, s.Seed, s2.Seed)
			}
		}
	}
}

// TestArrivalShape checks the schedules are strictly increasing, inside
// the horizon, and land near the configured mean rate (wide tolerance —
// this is a sanity bound, not a statistical test).
func TestArrivalShape(t *testing.T) {
	const horizon = 2000.0
	for _, s := range specs() {
		times, err := s.Times(horizon)
		if err != nil {
			t.Fatalf("%s: %v", s.Process, err)
		}
		last := -1.0
		for i, x := range times {
			if x <= last {
				t.Fatalf("%s: arrival %d not increasing: %v after %v", s.Process, i, x, last)
			}
			if x < 0 || x >= horizon {
				t.Fatalf("%s: arrival %d outside [0, %v): %v", s.Process, i, horizon, x)
			}
			last = x
		}
		// Expected counts: Poisson/Pareto ≈ rate*horizon; surge adds the
		// window excess (step: (factor-1)*len; ramp: half that).
		expected := s.Rate * horizon
		if s.Process == Surge {
			excess := (s.SurgeFactor - 1) * s.SurgeLen
			if s.SurgeRamp {
				excess /= 2
			}
			expected += s.Rate * excess
		}
		n := float64(len(times))
		if n < expected*0.6 || n > expected*1.6 {
			t.Errorf("%s: %v arrivals, expected about %v", s.Process, n, expected)
		}
	}
}

// TestArrivalValidate exercises the rejection paths.
func TestArrivalValidate(t *testing.T) {
	bad := []ArrivalSpec{
		{Process: "uniform", Rate: 1},
		{Process: Poisson, Rate: 0},
		{Process: Poisson, Rate: math.Inf(1)},
		{Process: Surge, Rate: 1, SurgeFactor: 0.5},
		{Process: Surge, Rate: 1, SurgeFactor: 2, SurgeStart: -1, SurgeLen: 10},
		{Process: Pareto, Rate: 1, ParetoAlpha: 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v validated but should not", s)
		}
	}
	if _, err := (ArrivalSpec{Process: Poisson, Rate: 1}).Times(0); err == nil {
		t.Error("zero horizon accepted")
	}
}
