package load

import (
	"fmt"
	"math"
)

// Histogram layout: log-spaced buckets (HDR-style) with a fixed global
// geometry, so any two histograms are mergeable by adding counts
// bucket-for-bucket. Bucket 0 holds [0, histMin); bucket i ≥ 1 holds
// [histMin*growth^(i-1), histMin*growth^i). With histMin = 1 ms and 8
// buckets per octave, 256 buckets span 1 ms to ~40 years of virtual
// latency — every admit→dispatch latency a simulation can produce lands in
// range, and relative quantile error is bounded by the ~9% bucket width.
const (
	histBuckets   = 256
	histMin       = 1e-3 // seconds
	histPerOctave = 8
)

// Hist is a mergeable log-bucketed latency histogram. The zero value is
// ready to use. Recording and reading are integer/index operations on a
// fixed layout — no float folds over map order, nothing seed- or
// schedule-dependent — so a histogram is a deterministic function of the
// multiset of recorded values.
type Hist struct {
	counts [histBuckets]uint64
	total  uint64
	max    float64
	sum    float64
}

// bucketOf maps a latency in seconds onto the fixed layout.
func bucketOf(v float64) int {
	if v < histMin {
		return 0
	}
	b := 1 + int(math.Floor(math.Log2(v/histMin)*histPerOctave))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Record adds one latency observation (seconds; negatives clamp to 0).
func (h *Hist) Record(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.total }

// Max returns the largest recorded value (0 when empty).
func (h *Hist) Max() float64 { return h.max }

// Mean returns the exact arithmetic mean (0 when empty). The sum
// accumulates in record order; the harness records on one goroutine in
// event order, so the mean is as deterministic as the journal.
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// upper edge of the first bucket at which the cumulative count reaches
// ceil(q*total), clamped to the exact observed maximum. Empty histograms
// report 0.
func (h *Hist) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := uint64(math.Ceil(q * float64(h.total)))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		cum += h.counts[b]
		if cum >= need {
			// The top bucket is open-ended; its only honest upper bound is
			// the exact observed maximum, which also clamps any bucket edge
			// that overshoots the max.
			edge := bucketUpper(b)
			if b == histBuckets-1 || edge > h.max {
				return h.max
			}
			return edge
		}
	}
	return h.max
}

// bucketUpper returns the exclusive upper edge of a bucket.
func bucketUpper(b int) float64 {
	if b == 0 {
		return histMin
	}
	return histMin * math.Pow(2, float64(b)/histPerOctave)
}

// Merge folds another histogram into h. Because the layout is global and
// merging is element-wise addition (plus max/sum/total), Merge is
// associative and commutative — pinned by TestHistMergeAssociative — so
// per-shard or per-window histograms can be combined in any grouping.
func (h *Hist) Merge(o *Hist) {
	for b := range h.counts {
		h.counts[b] += o.counts[b]
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Equal reports bucket-for-bucket equality including the scalar summaries
// — the bit-identity predicate the merge-associativity test uses.
func (h *Hist) Equal(o *Hist) bool {
	if h.total != o.total || h.max != o.max || h.sum != o.sum {
		return false
	}
	return h.counts == o.counts
}

// String summarizes the histogram for logs.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d p50=%.3fs p99=%.3fs p999=%.3fs max=%.3fs",
		h.total, h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.max)
}
