package load

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math"

	"watter/internal/dataset"
	"watter/internal/order"
	"watter/internal/platform"
	"watter/internal/pool"
	"watter/internal/sim"
)

// Config is one open-loop load run: a city, a fleet, an arrival process
// and the modelled event-bus consumer.
type Config struct {
	// City is the demand/network profile (default: CDC).
	City dataset.Profile
	// Workers is the fleet size; MaxCap the per-worker capacity cap.
	Workers int
	MaxCap  int
	// Seed drives endpoint sampling and worker placement; the arrival
	// schedule has its own seed inside Arrival.
	Seed int64
	// Arrival is the arrival process driving Submit.
	Arrival ArrivalSpec
	// Horizon is the arrival window in virtual seconds; the run itself
	// drains past it until every admitted order is resolved.
	Horizon float64
	// Tick is the periodic-check interval Δt.
	Tick float64
	// TauScale/Eta shape deadlines and wait limits exactly as the dataset
	// workloads do (defaults 1.6 / 0.8).
	TauScale float64
	Eta      float64
	// Buffer and DrainPerTick parameterize the modelled event-bus consumer
	// (see QueueModel); defaults 256 and 64.
	Buffer       int
	DrainPerTick int
	// Shards is the dispatch engine's slot-shard count (0/1 sequential).
	Shards int
	// Alg overrides the dispatch algorithm (default: WATTER-online with
	// the pool sized to MaxCap).
	Alg sim.Algorithm
}

// Defaults fills zero fields with the harness defaults: the CDC profile,
// a 60-worker fleet, Δt = 10 s over a 600 s arrival window, paper-default
// deadline shaping, and a 256-deep bus drained 64 events per tick.
func (c Config) Defaults() Config {
	if c.City.Name == "" {
		c.City = dataset.CDC()
	}
	if c.Workers == 0 {
		c.Workers = 60
	}
	if c.MaxCap == 0 {
		c.MaxCap = 4
	}
	if c.Horizon == 0 {
		c.Horizon = 600
	}
	if c.Tick == 0 {
		c.Tick = 10
	}
	if c.TauScale == 0 {
		c.TauScale = 1.6
	}
	if c.Eta == 0 {
		c.Eta = 0.8
	}
	if c.Buffer == 0 {
		c.Buffer = 256
	}
	if c.DrainPerTick == 0 {
		c.DrainPerTick = 64
	}
	return c
}

// Result is one run's measurements. Every field is a deterministic
// function of the Config: latencies are virtual-clock differences, the
// backpressure onset comes from the QueueModel, and the two hashes
// fingerprint the generated order stream and the full decision journal so
// bit-identity across runs is checkable by comparing two uint64s.
type Result struct {
	Process Process
	Rate    float64
	Horizon float64

	// Scheduled is the arrival-schedule length; Submitted is how many
	// orders actually entered the platform (endpoint sampling can drop a
	// handful of degenerate pickup==dropoff draws).
	Scheduled int
	Submitted int
	Served    int
	Rejected  int
	Pending   int
	Ticks     int

	// SustainedRate is Submitted / Horizon: the arrival rate the platform
	// actually absorbed, in orders per second of virtual time.
	SustainedRate float64

	// Latency is the admit→dispatch histogram (virtual seconds from an
	// order's release to the tick that dispatched it). Rejections are
	// counted separately — a rejection is not a served order.
	Latency Hist
	P50     float64
	P99     float64
	P999    float64
	Mean    float64

	// Slip is the decision-timeliness histogram over every decision,
	// dispatch or reject: max(0, decisionTime - release - η). The pooling
	// framework waits inside the watching window η on purpose (that is the
	// paper), so raw latency can never be compared against Δt; what the
	// platform owes each order is a decision within η plus at most one
	// periodic check. Slip measures how far past that promise decisions
	// land, and is what the rate search gates against SlackTicks·Δt.
	Slip Hist
	// SlipP99 is Slip.Quantile(0.99), the headline timeliness number.
	SlipP99 float64
	// FracWithinTick is the fraction of decisions with slip at most one Δt
	// — the "decided inside the next check window" share.
	FracWithinTick float64
	// ServiceRate is Served/Submitted: the usefulness guard — a platform
	// that rejects everything instantly has perfect slip and zero value.
	ServiceRate float64

	// BackpressureOnset is the virtual time of the first modelled
	// would-block emit (-1: never saturated); PeakQueueDepth is the
	// modelled backlog peak. The platform's own channel-level counters
	// (Stats().EventQueueHighWater/EventBlockedSends) stay 0 here because
	// the harness taps the never-blocking observer instead of a channel.
	BackpressureOnset float64
	PeakQueueDepth    int

	// StreamHash fingerprints the submitted order stream (IDs, endpoints,
	// releases, deadlines); JournalHash fingerprints the typed event
	// journal (kinds, times, IDs, costs). Two runs of the same Config must
	// agree on both bit-for-bit.
	StreamHash  uint64
	JournalHash uint64

	Metrics sim.Metrics
}

// Retime rewrites a generated workload onto an arrival schedule: order i
// releases at times[i], its deadline moves to times[i] + tauScale*direct,
// and its wait limit (a function of direct cost only) is untouched. Orders
// beyond the schedule (or times beyond the workload) are dropped. The
// sweep harness reuses this to turn any arrival process into a workload
// axis.
func Retime(orders []*order.Order, times []float64, tauScale float64) []*order.Order {
	n := len(orders)
	if len(times) < n {
		n = len(times)
	}
	out := orders[:n]
	for i, o := range out {
		o.Release = times[i]
		o.Deadline = times[i] + tauScale*o.DirectCost
	}
	return out
}

// journal hashes the event stream with FNV-1a over a canonical binary
// encoding. Only deterministic payload fields are folded in (never
// DecisionSeconds, the one documented wall-clock metric).
type journal struct {
	h   hash.Hash64
	buf [8]byte
}

func newJournal() *journal { return &journal{h: fnv.New64a()} }

func (j *journal) u64(v uint64) {
	binary.LittleEndian.PutUint64(j.buf[:], v)
	j.h.Write(j.buf[:])
}
func (j *journal) f64(v float64) { j.u64(math.Float64bits(v)) }
func (j *journal) tag(b byte)    { j.h.Write([]byte{b}) }

func (j *journal) event(ev platform.Event) {
	switch e := ev.(type) {
	case platform.OrderAdmitted:
		j.tag(1)
		j.f64(e.Time)
		j.u64(uint64(e.Order.ID))
	case platform.GroupDispatched:
		j.tag(2)
		j.f64(e.Time)
		j.u64(uint64(e.WorkerID))
		j.f64(e.Approach)
		j.f64(e.RouteCost)
		for _, r := range e.Orders {
			j.u64(uint64(r.OrderID))
			j.f64(r.Response)
			j.f64(r.Detour)
		}
	case platform.OrderRejected:
		j.tag(3)
		j.f64(e.Time)
		j.u64(uint64(e.Order.ID))
		j.f64(e.Penalty)
	case platform.TickCompleted:
		j.tag(4)
		j.f64(e.Time)
		j.u64(uint64(e.Metrics.Served))
		j.u64(uint64(e.Metrics.Rejected))
	}
}

// Run executes one open-loop load run and returns its measurements.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	times, err := cfg.Arrival.Times(cfg.Horizon)
	if err != nil {
		return nil, err
	}
	city := cfg.City.Build()
	orders := city.Orders(dataset.WorkloadConfig{
		Orders: len(times), Seed: cfg.Seed, TauScale: cfg.TauScale, Eta: cfg.Eta,
	})
	orders = Retime(orders, times, cfg.TauScale)
	workers := city.Workers(cfg.Workers, cfg.MaxCap, cfg.Seed+1000)

	res := &Result{
		Process:   cfg.Arrival.Process,
		Rate:      cfg.Arrival.Rate,
		Horizon:   cfg.Horizon,
		Scheduled: len(times),
	}

	// Stream fingerprint: what the generator fed the platform.
	sh := newJournal()
	for _, o := range orders {
		sh.u64(uint64(o.ID))
		sh.u64(uint64(o.Pickup))
		sh.u64(uint64(o.Dropoff))
		sh.f64(o.Release)
		sh.f64(o.Deadline)
	}
	res.StreamHash = sh.h.Sum64()

	// waitLimit lets the observer turn a dispatch/reject time into slip
	// without carrying the order around; IDs are unique per workload.
	waitLimit := make(map[int]float64, len(orders))
	for _, o := range orders {
		waitLimit[o.ID] = o.WaitLimit
	}
	queue := NewQueueModel(cfg.Buffer, cfg.DrainPerTick)
	jh := newJournal()
	var withinTick uint64
	slipOf := func(id int, response float64) float64 {
		s := response - waitLimit[id]
		if s < 0 {
			return 0
		}
		return s
	}
	observe := func(ev platform.Event) {
		jh.event(ev)
		queue.Push(ev.When())
		switch e := ev.(type) {
		case platform.GroupDispatched:
			for _, r := range e.Orders {
				res.Latency.Record(r.Response)
				s := slipOf(r.OrderID, r.Response)
				res.Slip.Record(s)
				if s <= cfg.Tick {
					withinTick++
				}
			}
		case platform.OrderRejected:
			s := slipOf(e.Order.ID, e.Time-e.Order.Release)
			res.Slip.Record(s)
			if s <= cfg.Tick {
				withinTick++
			}
		case platform.TickCompleted:
			res.Ticks++
			queue.Drain()
		}
	}

	scfg := sim.DefaultConfig()
	scfg.Capacity = cfg.MaxCap
	opts := []platform.Option{
		platform.WithConfig(scfg),
		platform.WithTick(cfg.Tick),
		platform.WithMeasuredTime(false),
		platform.WithObserver(observe),
	}
	if cfg.Alg != nil {
		opts = append(opts, platform.WithAlgorithm(cfg.Alg))
	} else {
		popt := pool.DefaultOptions()
		popt.Capacity = cfg.MaxCap
		popt.MaxGroupSize = cfg.MaxCap
		opts = append(opts, platform.WithPool(popt))
	}
	if cfg.Shards > 1 {
		opts = append(opts, platform.WithShards(cfg.Shards))
	}
	p, err := platform.New(city.Net, workers, opts...)
	if err != nil {
		return nil, err
	}
	for _, o := range orders {
		if err := p.Submit(o); err != nil {
			p.Abort()
			return nil, fmt.Errorf("load: submit order %d at t=%.1f: %w", o.ID, o.Release, err)
		}
	}
	m, err := p.Close()
	if err != nil {
		return nil, err
	}

	res.Submitted = m.Total
	res.Served = m.Served
	res.Rejected = m.Rejected
	res.Pending = m.Total - m.Served - m.Rejected
	res.SustainedRate = float64(m.Total) / cfg.Horizon
	res.P50 = res.Latency.Quantile(0.50)
	res.P99 = res.Latency.Quantile(0.99)
	res.P999 = res.Latency.Quantile(0.999)
	res.Mean = res.Latency.Mean()
	res.SlipP99 = res.Slip.Quantile(0.99)
	if n := res.Slip.Count(); n > 0 {
		res.FracWithinTick = float64(withinTick) / float64(n)
	}
	if res.Submitted > 0 {
		res.ServiceRate = float64(res.Served) / float64(res.Submitted)
	}
	res.BackpressureOnset = queue.Onset()
	res.PeakQueueDepth = queue.Peak()
	res.JournalHash = jh.h.Sum64()
	res.Metrics = *m
	return res, nil
}
