package load

import (
	"math/rand"
	"testing"
)

// TestHistMergeAssociative pins the mergeability contract: (A⊎B)⊎C and
// A⊎(B⊎C) agree bucket for bucket, as do both orders of a commuted merge
// — the property that lets per-window or per-shard histograms combine in
// any grouping.
func TestHistMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sample := func(n int, scale float64) *Hist {
		h := &Hist{}
		for i := 0; i < n; i++ {
			h.Record(rng.ExpFloat64() * scale)
		}
		return h
	}
	a, b, c := sample(500, 1), sample(300, 40), sample(200, 0.004)

	left := &Hist{}
	left.Merge(a)
	left.Merge(b) // (A ⊎ B) ...
	left.Merge(c) // ... ⊎ C

	bc := &Hist{}
	bc.Merge(b)
	bc.Merge(c)
	right := &Hist{}
	right.Merge(a)
	right.Merge(bc) // A ⊎ (B ⊎ C)

	if !left.Equal(right) {
		t.Fatalf("merge not associative:\nleft  %v\nright %v", left, right)
	}

	ba := &Hist{}
	ba.Merge(b)
	ba.Merge(a)
	ab := &Hist{}
	ab.Merge(a)
	ab.Merge(b)
	if !ab.Equal(ba) {
		t.Fatalf("merge not commutative:\nab %v\nba %v", ab, ba)
	}
	if got, want := left.Count(), a.Count()+b.Count()+c.Count(); got != want {
		t.Fatalf("merged count %d, want %d", got, want)
	}
}

// TestHistQuantile pins the quantile semantics: an upper bound within one
// bucket width (~9%) of the true quantile, clamped to the exact max.
func TestHistQuantile(t *testing.T) {
	h := &Hist{}
	for i := 1; i <= 1000; i++ {
		h.Record(float64(i) * 0.01) // 0.01s .. 10.00s uniform
	}
	if got := h.Quantile(1); got != 10.0 {
		t.Fatalf("p100 = %v, want the exact max 10.0", got)
	}
	for _, c := range []struct{ q, want float64 }{
		{0.50, 5.0}, {0.99, 9.9}, {0.999, 9.99},
	} {
		got := h.Quantile(c.q)
		if got < c.want || got > c.want*1.095 {
			t.Errorf("q%.3f = %v, want in [%v, %v]", c.q, got, c.want, c.want*1.095)
		}
	}
	empty := &Hist{}
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram must report zero quantiles and mean")
	}
	if h.Mean() < 5.0 || h.Mean() > 5.01 {
		t.Errorf("mean = %v, want ~5.005 exactly accumulated", h.Mean())
	}
}

// TestHistEdges pins the bucket layout's boundary behavior.
func TestHistEdges(t *testing.T) {
	h := &Hist{}
	h.Record(-3)  // clamps to 0
	h.Record(0)   // bucket 0
	h.Record(1e9) // far beyond the top bucket: clamps, max stays exact
	if h.Count() != 3 {
		t.Fatalf("count %d, want 3", h.Count())
	}
	if h.Max() != 1e9 {
		t.Fatalf("max %v, want exact 1e9", h.Max())
	}
	if got := h.Quantile(1); got != 1e9 {
		t.Fatalf("p100 %v, want clamped to observed max", got)
	}
	if got := h.Quantile(0.3); got != histMin {
		t.Fatalf("q0.3 = %v, want the underflow bucket edge %v", got, histMin)
	}
}
