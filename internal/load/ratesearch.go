package load

import (
	"fmt"
	"math"
)

// SearchConfig brackets the maximum sustainable arrival rate: the largest
// rate at which the configured quantile of decision slip (time past the
// watching window η before a dispatch-or-reject decision lands — see
// Result.Slip) stays within SlackTicks periodic-check intervals AND the
// service rate holds its floor. Both legs matter: the pooling framework
// keeps decisions timely under overload by rejecting, so slip alone would
// call a reject-everything platform sustainable. Because every probe is a
// deterministic virtual-clock run and the bisection iterates a fixed
// number of times over a fixed bracket, the found rate is bit-identical
// run to run — a searchable performance number that can sit under a CI
// gate without flaking.
type SearchConfig struct {
	// Base is the run template; Base.Arrival.Rate is overwritten per probe.
	Base Config
	// Quantile is the slip quantile that must stay inside the budget
	// (default 0.99).
	Quantile float64
	// SlackTicks sets the slip budget to SlackTicks * Base.Tick seconds
	// (default 1: decided within one periodic check past the window).
	SlackTicks float64
	// MinServiceRate is the served/submitted floor a sustainable rate must
	// hold (default 0.5; set negative to disable).
	MinServiceRate float64
	// Lo and Hi bracket the search in orders/sec (defaults 0.25 and 16).
	Lo, Hi float64
	// Iters is the fixed bisection depth (default 7, resolving the bracket
	// to Hi-Lo over 2^7).
	Iters int
}

// Probe is one rate evaluation of the search.
type Probe struct {
	Rate        float64
	Slip        float64 // quantile decision slip at this rate, virtual seconds
	ServiceRate float64
	Sustainable bool
}

// SearchResult reports the bracketing outcome.
type SearchResult struct {
	// MaxRate is the largest probed rate that met the budget (0 when even
	// Lo failed).
	MaxRate float64
	// Budget and Quantile echo the resolved predicate.
	Budget   float64
	Quantile float64
	// Probes lists every evaluation in search order.
	Probes []Probe
}

func (sc SearchConfig) defaults() SearchConfig {
	sc.Base = sc.Base.Defaults()
	if sc.Base.Arrival.Process == "" {
		sc.Base.Arrival.Process = Poisson
	}
	if sc.Quantile == 0 {
		sc.Quantile = 0.99
	}
	if sc.SlackTicks == 0 {
		sc.SlackTicks = 1
	}
	if sc.MinServiceRate == 0 {
		sc.MinServiceRate = 0.5
	}
	if sc.Lo == 0 {
		sc.Lo = 0.25
	}
	if sc.Hi == 0 {
		sc.Hi = 16
	}
	if sc.Iters == 0 {
		sc.Iters = 7
	}
	return sc
}

// SearchMaxRate bisects the arrival rate for the maximum sustainable
// point. The log callback (nil ok) receives one line per probe.
func SearchMaxRate(sc SearchConfig, logf func(string, ...any)) (*SearchResult, error) {
	sc = sc.defaults()
	if sc.Quantile <= 0 || sc.Quantile > 1 {
		return nil, fmt.Errorf("load: search quantile must be in (0,1], got %v", sc.Quantile)
	}
	if sc.Lo <= 0 || sc.Hi <= sc.Lo || math.IsInf(sc.Hi, 0) {
		return nil, fmt.Errorf("load: search bracket [%v, %v] must satisfy 0 < lo < hi < inf", sc.Lo, sc.Hi)
	}
	if sc.Iters < 1 || sc.Iters > 32 {
		return nil, fmt.Errorf("load: search depth must be in [1,32], got %d", sc.Iters)
	}
	res := &SearchResult{Budget: sc.SlackTicks * sc.Base.Tick, Quantile: sc.Quantile}
	probe := func(rate float64) (bool, error) {
		cfg := sc.Base
		cfg.Arrival.Rate = rate
		r, err := Run(cfg)
		if err != nil {
			return false, err
		}
		slip := r.Slip.Quantile(sc.Quantile)
		ok := slip <= res.Budget && r.ServiceRate >= sc.MinServiceRate
		res.Probes = append(res.Probes, Probe{Rate: rate, Slip: slip, ServiceRate: r.ServiceRate, Sustainable: ok})
		if logf != nil {
			logf("load: probe rate=%.4f/s slip-q%.3g=%.2fs budget=%.2fs svc=%.2f sustainable=%v\n",
				rate, sc.Quantile, slip, res.Budget, r.ServiceRate, ok)
		}
		return ok, nil
	}

	ok, err := probe(sc.Lo)
	if err != nil {
		return nil, err
	}
	if !ok {
		return res, nil // even the floor rate slips: MaxRate stays 0
	}
	res.MaxRate = sc.Lo
	ok, err = probe(sc.Hi)
	if err != nil {
		return nil, err
	}
	if ok {
		res.MaxRate = sc.Hi
		return res, nil
	}
	lo, hi := sc.Lo, sc.Hi
	for i := 0; i < sc.Iters; i++ {
		mid := (lo + hi) / 2
		ok, err := probe(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			lo = mid
			res.MaxRate = mid
		} else {
			hi = mid
		}
	}
	return res, nil
}
