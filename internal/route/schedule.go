package route

import (
	"math"

	"watter/internal/geo"
	"watter/internal/order"
)

// Schedule is a worker's in-progress stop sequence with absolute arrival
// times. The greedy-insertion baseline (GDP) mutates schedules by inserting
// new pickup/dropoff pairs; the simulator advances them as time passes.
type Schedule struct {
	Stops []order.Stop
	// Times[i] is the absolute simulation time at which Stops[i] is
	// reached assuming the worker departs on schedule.
	Times []float64
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{
		Stops: make([]order.Stop, len(s.Stops)),
		Times: make([]float64, len(s.Times)),
	}
	copy(c.Stops, s.Stops)
	copy(c.Times, s.Times)
	return c
}

// End returns the time and location at which the schedule completes. For an
// empty schedule it returns the provided fallbacks.
func (s *Schedule) End(fallbackLoc geo.NodeID, fallbackTime float64) (geo.NodeID, float64) {
	if len(s.Stops) == 0 {
		return fallbackLoc, fallbackTime
	}
	last := len(s.Stops) - 1
	return s.Stops[last].Node, s.Times[last]
}

// Evaluate computes the arrival times for a stop sequence departing from
// `start` at time `startTime`, and checks the three feasibility constraints.
// `onboard` is the number of riders already in the vehicle at departure
// (riders whose pickup already happened and whose dropoff appears in the
// sequence). orders resolves each stop's deadline. Returns (times, total
// travel seconds, true) when feasible.
func (p *Planner) Evaluate(stops []order.Stop, orders map[int]*order.Order, start geo.NodeID, startTime float64, capacity, onboard int) ([]float64, float64, bool) {
	picked := make(map[int]bool, len(stops))
	times := make([]float64, len(stops))
	t := startTime
	var travel float64
	cur := start
	load := onboard
	for i, s := range stops {
		leg := p.Net.Cost(cur, s.Node)
		if math.IsInf(leg, 1) {
			return nil, 0, false
		}
		t += leg
		travel += leg
		times[i] = t
		cur = s.Node
		o := orders[s.OrderID]
		switch s.Kind {
		case order.PickupStop:
			if o == nil {
				return nil, 0, false
			}
			picked[s.OrderID] = true
			load += s.Riders
			if load > capacity {
				return nil, 0, false
			}
		case order.DropoffStop:
			if o == nil {
				return nil, 0, false
			}
			// Sequential constraint: a dropoff for an order that was not
			// picked up in this sequence is only legal when the rider is
			// already onboard (counted in `onboard`).
			if !picked[s.OrderID] {
				if onboard <= 0 {
					return nil, 0, false
				}
			}
			load -= s.Riders
			if load < 0 {
				return nil, 0, false
			}
			if t > o.Deadline {
				return nil, 0, false
			}
		}
	}
	return times, travel, true
}

// InsertOrder finds the cheapest feasible insertion of o's pickup and
// dropoff into the schedule (pickup at position i, dropoff at position
// j >= i), the classic insertion operator of the GDP baseline. The worker
// departs from start at startTime with `onboard` riders already in the
// vehicle. Returns the new schedule, the increase in travel seconds, and
// whether any feasible insertion exists.
func (p *Planner) InsertOrder(sch *Schedule, orders map[int]*order.Order, o *order.Order, start geo.NodeID, startTime float64, capacity, onboard int) (*Schedule, float64, bool) {
	if orders[o.ID] == nil {
		aug := make(map[int]*order.Order, len(orders)+1)
		for k, v := range orders {
			aug[k] = v
		}
		aug[o.ID] = o
		orders = aug
	}
	_, baseTravel, ok := p.Evaluate(sch.Stops, orders, start, startTime, capacity, onboard)
	if !ok {
		return nil, 0, false
	}
	n := len(sch.Stops)
	var (
		bestStops []order.Stop
		bestTimes []float64
		bestDelta = math.Inf(1)
		bestFound bool
	)
	pick := order.Stop{Node: o.Pickup, Kind: order.PickupStop, OrderID: o.ID, Riders: o.Riders}
	drop := order.Stop{Node: o.Dropoff, Kind: order.DropoffStop, OrderID: o.ID, Riders: o.Riders}
	for i := 0; i <= n; i++ {
		for j := i; j <= n; j++ {
			cand := make([]order.Stop, 0, n+2)
			cand = append(cand, sch.Stops[:i]...)
			cand = append(cand, pick)
			cand = append(cand, sch.Stops[i:j]...)
			cand = append(cand, drop)
			cand = append(cand, sch.Stops[j:]...)
			times, travel, ok := p.Evaluate(cand, orders, start, startTime, capacity, onboard)
			if !ok {
				continue
			}
			delta := travel - baseTravel
			if delta < bestDelta-1e-9 {
				bestDelta = delta
				bestStops = cand
				bestTimes = times
				bestFound = true
			}
		}
	}
	if !bestFound {
		return nil, 0, false
	}
	return &Schedule{Stops: bestStops, Times: bestTimes}, bestDelta, true
}
