package route

import (
	"math/rand"
	"reflect"
	"testing"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/roadnet"
)

// TestPlanGroupEngineMatchesSSSP: the planner's leg matrix is now filled by
// the batched ALT engine; plans must be identical — stops, arrivals and
// cost, bit for bit — to those computed over the legacy cached-Dijkstra
// oracle, for random groups on random jittered cities, with and without an
// explicit start node.
func TestPlanGroupEngineMatchesSSSP(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := roadnet.NewPerturbedGrid(10, 10, 150, 8, 0.35, seed)
		rng := rand.New(rand.NewSource(seed * 211))
		n := g.NumNodes()
		planner := NewPlanner(g)
		for rep := 0; rep < 40; rep++ {
			k := 1 + rng.Intn(3)
			orders := make([]*order.Order, k)
			now := float64(rng.Intn(100))
			for i := range orders {
				pu := geo.NodeID(rng.Intn(n))
				do := geo.NodeID(rng.Intn(n))
				direct := g.Cost(pu, do)
				orders[i] = &order.Order{
					ID: i + 1, Pickup: pu, Dropoff: do, Riders: 1 + rng.Intn(2),
					Release: now, Deadline: now + 3*direct + 120,
					WaitLimit: 60, DirectCost: direct,
				}
			}
			start := geo.InvalidNode
			if rng.Intn(2) == 0 {
				start = geo.NodeID(rng.Intn(n))
			}

			g.SetPointToPoint(true)
			planPP, okPP := planner.PlanGroupFrom(orders, now, 4, start)
			g.SetPointToPoint(false)
			planRef, okRef := planner.PlanGroupFrom(orders, now, 4, start)
			g.SetPointToPoint(true)

			if okPP != okRef {
				t.Fatalf("seed %d rep %d: feasibility diverged (engine %v, sssp %v)", seed, rep, okPP, okRef)
			}
			if !okPP {
				continue
			}
			if planPP.Cost != planRef.Cost {
				t.Fatalf("seed %d rep %d: cost %v vs %v", seed, rep, planPP.Cost, planRef.Cost)
			}
			if !reflect.DeepEqual(planPP.Stops, planRef.Stops) || !reflect.DeepEqual(planPP.Arrive, planRef.Arrive) {
				t.Fatalf("seed %d rep %d: plans diverged\nengine: %+v %v\nsssp:   %+v %v",
					seed, rep, planPP.Stops, planPP.Arrive, planRef.Stops, planRef.Arrive)
			}
		}
	}
}
