package route

import (
	"slices"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/roadnet"
)

// legBlock is the 4x4 travel-cost matrix over one order pair's four route
// events, row-major over [pickup_lo, dropoff_lo, pickup_hi, dropoff_hi]
// where lo is the member with the smaller order ID.
type legBlock [16]float64

type pairKey struct{ lo, hi int }

// LegStore memoizes per-pair leg blocks for the shareability graph's route
// planning. Every clique the pool plans is a set of orders whose pairs were
// each already cost-tested once (the pairwise shareability check), so a
// k-group's (2k)x(2k) leg matrix decomposes entirely into k*(k-1)/2 pair
// blocks — assembling it from the store replaces a batched network search
// per considered clique with plain copies. Entries are the pure,
// deterministic cost(l1, l2) values the network would return fresh, so
// store-assembled plans are bit-identical to store-free ones.
//
// A LegStore belongs to exactly one pool and is not safe for concurrent
// use; lifetime and eviction follow the pool's node set.
type LegStore struct {
	net     roadnet.Network
	blocks  map[pairKey]*legBlock
	byOrder map[int][]pairKey
	hits    uint64
	fills   uint64
}

// NewLegStore returns an empty store over the network.
func NewLegStore(net roadnet.Network) *LegStore {
	return &LegStore{
		net:     net,
		blocks:  make(map[pairKey]*legBlock),
		byOrder: make(map[int][]pairKey),
	}
}

// block returns the pair's leg block (filling it with one batched network
// query on first use) and whether the pair was given in (hi, lo) order —
// the caller needs that to map member indices onto block rows.
//
//det:specwrite memoized pure leg matrix keyed by the pair; every store has exactly one writer goroutine and the cached values are bit-identical no matter when the fill ran
func (s *LegStore) block(a, b *order.Order) (blk *legBlock, swapped bool) {
	lo, hi := a, b
	if lo.ID > hi.ID {
		lo, hi = hi, lo
		swapped = true
	}
	key := pairKey{lo.ID, hi.ID}
	if blk, ok := s.blocks[key]; ok {
		s.hits++
		return blk, swapped
	}
	//det:hotalloc one block per distinct pair, cached for the pair's lifetime and amortized over thousands of DP touches
	blk = new(legBlock)
	locs := [4]geo.NodeID{lo.Pickup, lo.Dropoff, hi.Pickup, hi.Dropoff}
	roadnet.FillCostMatrix(s.net, locs[:], locs[:], blk[:])
	s.blocks[key] = blk
	s.byOrder[lo.ID] = append(s.byOrder[lo.ID], key)
	s.byOrder[hi.ID] = append(s.byOrder[hi.ID], key)
	s.fills++
	return blk, swapped
}

// DropPair removes one pair's cached block. The pool uses it when a
// pairwise shareability test fails: with no edge the pair can never appear
// in a clique, so its block is dead weight. The byOrder index keeps a stale
// key; Evict skips it harmlessly.
func (s *LegStore) DropPair(aID, bID int) {
	if aID > bID {
		aID, bID = bID, aID
	}
	delete(s.blocks, pairKey{aID, bID})
}

// Evict drops every block involving the order (called when it leaves the
// pool). Keys for already-deleted blocks (the partner was evicted first)
// are skipped harmlessly.
func (s *LegStore) Evict(orderID int) {
	for _, key := range s.byOrder[orderID] {
		delete(s.blocks, key)
	}
	delete(s.byOrder, orderID)
}

// Adopt moves every block of the other store into this one, indexing them
// per member for eviction; blocks already present win (they hold the same
// pure cost values, so the choice is cosmetic). The sharded engine's insert
// prewarm computes pair blocks into throwaway per-task stores on shard
// goroutines, then adopts them into the pool's store on the coordinator —
// the fills counter follows the blocks so accounting matches a sequential
// fill. The other store must not be used afterwards.
func (s *LegStore) Adopt(other *LegStore) {
	// Adopt in (lo, hi) order: the byOrder index slices then grow in the
	// same order however the shard scheduler interleaved the task stores,
	// keeping even internal state bit-stable across runs.
	keys := make([]pairKey, 0, len(other.blocks))
	for key := range other.blocks {
		keys = append(keys, key)
	}
	slices.SortFunc(keys, func(a, b pairKey) int {
		if a.lo != b.lo {
			return a.lo - b.lo
		}
		return a.hi - b.hi
	})
	for _, key := range keys {
		if _, ok := s.blocks[key]; ok {
			continue
		}
		s.blocks[key] = other.blocks[key]
		s.byOrder[key.lo] = append(s.byOrder[key.lo], key)
		s.byOrder[key.hi] = append(s.byOrder[key.hi], key)
		s.fills++
	}
}

// Len reports the number of cached pair blocks.
func (s *LegStore) Len() int { return len(s.blocks) }

// BlocksFor reports how many live blocks involve the order.
func (s *LegStore) BlocksFor(orderID int) int {
	n := 0
	for _, key := range s.byOrder[orderID] {
		if _, ok := s.blocks[key]; ok {
			n++
		}
	}
	return n
}

// Stats reports block reuses and batched fills since construction.
func (s *LegStore) Stats() (hits, fills uint64) { return s.hits, s.fills }

// assembleLegs fills the (ne x ne) leg matrix for the group from the
// store's pair blocks. Each member pair contributes its cross entries; the
// within-member entries (pickup<->dropoff) ride along from whichever blocks
// contain the member — every block holding an order carries the same pure
// cost values, so repeated writes are idempotent.
func assembleLegs(store *LegStore, orders []*order.Order, ne int, legs []float64) {
	for i := 0; i < len(orders); i++ {
		for j := i + 1; j < len(orders); j++ {
			blk, swapped := store.block(orders[i], orders[j])
			ri, rj := 0, 2
			if swapped {
				ri, rj = 2, 0
			}
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					legs[(2*i+a)*ne+(2*j+b)] = blk[(ri+a)*4+(rj+b)]
					legs[(2*j+b)*ne+(2*i+a)] = blk[(rj+b)*4+(ri+a)]
					legs[(2*i+a)*ne+(2*i+b)] = blk[(ri+a)*4+(ri+b)]
					legs[(2*j+a)*ne+(2*j+b)] = blk[(rj+a)*4+(rj+b)]
				}
			}
		}
	}
}
