package route

import (
	"math"
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/roadnet"
)

// randomGroup builds k random orders with enough deadline slack that most
// groups are feasible but some are not.
// IDs are unique across calls: LegStore/plan-cache keys are order IDs, and
// live IDs are unique in any real pool.
var nextTestID int

func randomGroup(net roadnet.Network, rng *rand.Rand, side, k int) []*order.Order {
	orders := make([]*order.Order, 0, k)
	cx, cy := rng.Intn(side), rng.Intn(side)
	pick := func() geo.NodeID {
		x := min(max(cx+rng.Intn(9)-4, 0), side-1)
		y := min(max(cy+rng.Intn(9)-4, 0), side-1)
		return geo.NodeID(y*side + x)
	}
	for i := 0; i < k; i++ {
		pu, do := pick(), pick()
		if pu == do {
			do = geo.NodeID((int(do) + 1) % (side * side))
		}
		direct := net.Cost(pu, do)
		nextTestID++
		orders = append(orders, &order.Order{
			ID: nextTestID, Pickup: pu, Dropoff: do, Riders: 1,
			Release: 0, Deadline: (1.2 + rng.Float64()) * direct,
			WaitLimit: 0.8 * direct, DirectCost: direct,
		})
	}
	return orders
}

func plansEqual(a, b *order.RoutePlan) bool {
	if a.Cost != b.Cost || len(a.Stops) != len(b.Stops) {
		return false
	}
	for i := range a.Stops {
		if a.Stops[i] != b.Stops[i] || a.Arrive[i] != b.Arrive[i] {
			return false
		}
	}
	return true
}

// TestPlanGroupSharedMatchesFresh drives random groups on both network
// kinds and checks that store-assembled plans are bit-identical to plans
// built from fresh batched queries.
func TestPlanGroupSharedMatchesFresh(t *testing.T) {
	nets := map[string]roadnet.Network{
		"grid":  roadnet.NewGridCity(16, 16, 100, 10),
		"graph": roadnet.NewPerturbedGrid(16, 16, 150, 8, 0.3, 7),
	}
	for name, net := range nets {
		p := NewPlanner(net)
		store := NewLegStore(net)
		rng := rand.New(rand.NewSource(11))
		feasible := 0
		for trial := 0; trial < 120; trial++ {
			orders := randomGroup(net, rng, 16, 2+rng.Intn(3))
			fresh, okFresh := p.PlanGroup(orders, 0, 4)
			shared, okShared := p.PlanGroupShared(orders, 0, 4, store)
			if okFresh != okShared {
				t.Fatalf("%s trial %d: feasibility diverged fresh=%v shared=%v", name, trial, okFresh, okShared)
			}
			if !okFresh {
				continue
			}
			feasible++
			if !plansEqual(fresh, shared) {
				t.Fatalf("%s trial %d: store-assembled plan diverged:\nfresh:  %+v\nshared: %+v", name, trial, fresh, shared)
			}
			// Replan through the now-warm blocks: the reuse path must give
			// the same bits as the fill path.
			again, okAgain := p.PlanGroupShared(orders, 0, 4, store)
			if !okAgain || !plansEqual(fresh, again) {
				t.Fatalf("%s trial %d: warm-block replan diverged", name, trial)
			}
		}
		if feasible == 0 {
			t.Fatalf("%s: no feasible trials, test is vacuous", name)
		}
		if hits, fills := store.Stats(); hits == 0 || fills == 0 {
			t.Fatalf("%s: store never exercised (hits=%d fills=%d)", name, hits, fills)
		}
	}
}

// TestPlanGroupCostMatchesPlanGroup checks the cost-only fast path returns
// exactly the cost, per-member service times and τg the materializing path
// produces, with and without a LegStore.
func TestPlanGroupCostMatchesPlanGroup(t *testing.T) {
	net := roadnet.NewPerturbedGrid(14, 14, 150, 8, 0.3, 3)
	p := NewPlanner(net)
	store := NewLegStore(net)
	rng := rand.New(rand.NewSource(5))
	svc := make([]float64, MaxGroupSize)
	feasible := 0
	for trial := 0; trial < 150; trial++ {
		orders := randomGroup(net, rng, 14, 1+rng.Intn(4))
		var legs *LegStore
		if trial%2 == 0 {
			legs = store
		}
		plan, okPlan := p.PlanGroup(orders, 0, 4)
		cost, expiry, okCost := p.PlanGroupCost(orders, 0, 4, legs, svc)
		if okPlan != okCost {
			t.Fatalf("trial %d: feasibility diverged plan=%v cost=%v", trial, okPlan, okCost)
		}
		if !okPlan {
			continue
		}
		feasible++
		if cost != plan.Cost {
			t.Fatalf("trial %d: cost %v != plan cost %v", trial, cost, plan.Cost)
		}
		wantExpiry := math.Inf(1)
		for i, o := range orders {
			st, ok := plan.ServiceTime(o.ID)
			if !ok {
				t.Fatalf("trial %d: plan misses member %d", trial, o.ID)
			}
			if svc[i] != st {
				t.Fatalf("trial %d: svc[%d]=%v != plan service %v", trial, i, svc[i], st)
			}
			if e := o.Deadline - st; e < wantExpiry {
				wantExpiry = e
			}
		}
		if expiry != wantExpiry {
			t.Fatalf("trial %d: expiry %v != %v", trial, expiry, wantExpiry)
		}
	}
	if feasible < 20 {
		t.Fatalf("only %d feasible trials, test is weak", feasible)
	}
}

// TestLegStoreEvict checks eviction drops every block involving the order
// and that re-queries refill rather than resurrect.
func TestLegStoreEvict(t *testing.T) {
	net := roadnet.NewGridCity(10, 10, 100, 10)
	store := NewLegStore(net)
	mkO := func(id int, pu, do geo.NodeID) *order.Order {
		return &order.Order{ID: id, Pickup: pu, Dropoff: do, Riders: 1, Deadline: 1e9, DirectCost: net.Cost(pu, do)}
	}
	a, b, c := mkO(1, 0, 5), mkO(2, 10, 15), mkO(3, 20, 25)
	store.block(a, b)
	store.block(b, a) // same pair, swapped: must hit, not refill
	store.block(a, c)
	store.block(b, c)
	if store.Len() != 3 {
		t.Fatalf("blocks = %d, want 3", store.Len())
	}
	if hits, fills := store.Stats(); hits != 1 || fills != 3 {
		t.Fatalf("hits=%d fills=%d, want 1/3", hits, fills)
	}
	store.Evict(2)
	if store.Len() != 1 {
		t.Fatalf("blocks after evict = %d, want 1 (only a-c)", store.Len())
	}
	store.Evict(1)
	store.Evict(3)
	if store.Len() != 0 {
		t.Fatalf("blocks after full evict = %d", store.Len())
	}
	_, fillsBefore := store.Stats()
	store.block(a, b)
	if _, fills := store.Stats(); fills != fillsBefore+1 {
		t.Fatal("evicted block was resurrected instead of refilled")
	}
}

// TestAdoptDeterministicOrder pins a fixed map-iteration leak in Adopt:
// whatever order the donor store filled its blocks in, adopting the same
// block set must leave identical byOrder indexes, grown in (lo, hi)
// order — the sharded engine adopts per-task stores in whatever order the
// scheduler produced them, and the pool's internal state must stay
// bit-stable regardless. Repeated runs give Go's randomized map order
// every chance to expose a regression.
func TestAdoptDeterministicOrder(t *testing.T) {
	net := roadnet.NewGridCity(8, 8, 100, 10)
	rng := rand.New(rand.NewSource(5))
	orders := randomGroup(net, rng, 8, 6)

	type pair struct{ i, j int }
	var pairs []pair
	for i := range orders {
		for j := i + 1; j < len(orders); j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	fill := func(ps []pair) *LegStore {
		s := NewLegStore(net)
		for _, p := range ps {
			s.block(orders[p.i], orders[p.j])
		}
		return s
	}
	rev := make([]pair, len(pairs))
	for i, p := range pairs {
		rev[len(pairs)-1-i] = p
	}

	keyLess := func(x, y pairKey) int {
		if x.lo != y.lo {
			return x.lo - y.lo
		}
		return x.hi - y.hi
	}
	for it := 0; it < 10; it++ {
		a, b := NewLegStore(net), NewLegStore(net)
		a.Adopt(fill(pairs))
		b.Adopt(fill(rev))
		if !reflect.DeepEqual(a.byOrder, b.byOrder) {
			t.Fatalf("iteration %d: byOrder differs between fill orders:\n%v\nvs\n%v",
				it, a.byOrder, b.byOrder)
		}
		for id, keys := range a.byOrder {
			if !slices.IsSortedFunc(keys, keyLess) {
				t.Fatalf("iteration %d: byOrder[%d] not in (lo, hi) order: %v", it, id, keys)
			}
		}
	}
}
