package route

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/roadnet"
)

func testCity() *roadnet.GridCity { return roadnet.NewGridCity(20, 20, 100, 10) }

// mk builds an order with deadline tau*direct and wait limit 0.8*direct.
func mk(net roadnet.Network, id int, pickup, dropoff geo.NodeID, release, tau float64) *order.Order {
	direct := net.Cost(pickup, dropoff)
	return &order.Order{
		ID: id, Pickup: pickup, Dropoff: dropoff, Riders: 1,
		Release: release, Deadline: release + tau*direct,
		WaitLimit: 0.8 * direct, DirectCost: direct,
	}
}

func TestPlanSingleOrder(t *testing.T) {
	net := testCity()
	p := NewPlanner(net)
	o := mk(net, 1, net.Node(0, 0), net.Node(5, 0), 0, 2.0)
	plan, ok := p.PlanGroup([]*order.Order{o}, 0, 4)
	if !ok {
		t.Fatal("single order must be plannable")
	}
	if len(plan.Stops) != 2 {
		t.Fatalf("stops = %d", len(plan.Stops))
	}
	if plan.Stops[0].Kind != order.PickupStop || plan.Stops[1].Kind != order.DropoffStop {
		t.Fatalf("stop kinds wrong: %+v", plan.Stops)
	}
	if math.Abs(plan.Cost-o.DirectCost) > 1e-9 {
		t.Fatalf("cost %v != direct %v", plan.Cost, o.DirectCost)
	}
	if st, _ := plan.ServiceTime(1); math.Abs(st-o.DirectCost) > 1e-9 {
		t.Fatalf("service time %v", st)
	}
}

func TestPlanPairSharedCorridor(t *testing.T) {
	net := testCity()
	p := NewPlanner(net)
	// Two orders along the same east-bound corridor: a->c and b->d with
	// a(0,0) b(1,0) c(5,0) d(6,0). Optimal: pick a, pick b, drop c, drop d.
	a := mk(net, 1, net.Node(0, 0), net.Node(5, 0), 0, 2.0)
	b := mk(net, 2, net.Node(1, 0), net.Node(6, 0), 0, 2.0)
	plan, ok := p.PlanGroup([]*order.Order{a, b}, 0, 4)
	if !ok {
		t.Fatal("corridor pair must be shareable")
	}
	if math.Abs(plan.Cost-60) > 1e-9 { // 6 blocks * 10s
		t.Fatalf("cost = %v, want 60", plan.Cost)
	}
	// Order of stops must be pickup(1), pickup(2), dropoff(1), dropoff(2).
	wantKinds := []order.StopKind{order.PickupStop, order.PickupStop, order.DropoffStop, order.DropoffStop}
	for i, s := range plan.Stops {
		if s.Kind != wantKinds[i] {
			t.Fatalf("stop %d kind %v", i, s.Kind)
		}
	}
}

func TestSequentialConstraint(t *testing.T) {
	net := testCity()
	p := NewPlanner(net)
	o := mk(net, 1, net.Node(0, 0), net.Node(3, 0), 0, 3.0)
	plan, ok := p.PlanGroup([]*order.Order{o, mk(net, 2, net.Node(1, 0), net.Node(2, 0), 0, 3.0)}, 0, 4)
	if !ok {
		t.Fatal("plan failed")
	}
	seen := map[int]bool{}
	for _, s := range plan.Stops {
		if s.Kind == order.DropoffStop && !seen[s.OrderID] {
			t.Fatalf("dropoff before pickup for order %d", s.OrderID)
		}
		if s.Kind == order.PickupStop {
			seen[s.OrderID] = true
		}
	}
}

func TestDeadlineConstraintRejects(t *testing.T) {
	net := testCity()
	p := NewPlanner(net)
	// Tight deadline: tau = 1.0 means zero slack; grouping with a detour
	// order must fail, alone must succeed.
	tight := mk(net, 1, net.Node(0, 0), net.Node(5, 0), 0, 1.0)
	far := mk(net, 2, net.Node(0, 10), net.Node(5, 10), 0, 3.0)
	if _, ok := p.PlanGroup([]*order.Order{tight}, 0, 4); !ok {
		t.Fatal("tight order alone must be feasible")
	}
	if _, ok := p.PlanGroup([]*order.Order{tight, far}, 0, 4); ok {
		t.Fatal("grouping with a far order must violate the tight deadline")
	}
	// Dispatching late also fails: by release+slack the deadline is gone.
	if _, ok := p.PlanGroup([]*order.Order{tight}, 1, 4); ok {
		t.Fatal("late dispatch must violate zero-slack deadline")
	}
}

func TestCapacityConstraint(t *testing.T) {
	net := testCity()
	p := NewPlanner(net)
	a := mk(net, 1, net.Node(0, 0), net.Node(5, 0), 0, 3.0)
	b := mk(net, 2, net.Node(1, 0), net.Node(6, 0), 0, 3.0)
	a.Riders = 2
	b.Riders = 2
	if _, ok := p.PlanGroup([]*order.Order{a, b}, 0, 4); !ok {
		t.Fatal("4 riders fit capacity 4 on overlapping legs")
	}
	if plan, ok := p.PlanGroup([]*order.Order{a, b}, 0, 3); ok {
		// Capacity 3 cannot hold both at once; the only feasible plans
		// serve them disjointly (drop a before picking b).
		onboard := 0
		maxOnboard := 0
		for _, s := range plan.Stops {
			if s.Kind == order.PickupStop {
				onboard += s.Riders
			} else {
				onboard -= s.Riders
			}
			if onboard > maxOnboard {
				maxOnboard = onboard
			}
		}
		if maxOnboard > 3 {
			t.Fatalf("capacity violated: max onboard %d", maxOnboard)
		}
	}
	single := mk(net, 3, net.Node(0, 0), net.Node(2, 0), 0, 3.0)
	single.Riders = 5
	if _, ok := p.PlanGroup([]*order.Order{single}, 0, 4); ok {
		t.Fatal("an order larger than the vehicle must be infeasible")
	}
}

func TestPlanGroupFromStart(t *testing.T) {
	net := testCity()
	p := NewPlanner(net)
	o := mk(net, 1, net.Node(5, 5), net.Node(8, 5), 0, 3.0)
	free, ok := p.PlanGroup([]*order.Order{o}, 0, 4)
	if !ok {
		t.Fatal("free plan failed")
	}
	anchored, ok := p.PlanGroupFrom([]*order.Order{o}, 0, 4, net.Node(0, 5))
	if !ok {
		t.Fatal("anchored plan failed")
	}
	if math.Abs((anchored.Cost-free.Cost)-50) > 1e-9 { // 5 blocks to reach pickup
		t.Fatalf("anchored cost %v vs free %v", anchored.Cost, free.Cost)
	}
}

func TestPlanEmptyAndOversizedGroups(t *testing.T) {
	net := testCity()
	p := NewPlanner(net)
	if _, ok := p.PlanGroup(nil, 0, 4); ok {
		t.Fatal("empty group must fail")
	}
	var big []*order.Order
	for i := 0; i < MaxGroupSize+1; i++ {
		big = append(big, mk(net, i, net.Node(i, 0), net.Node(i+1, 0), 0, 5.0))
	}
	if _, ok := p.PlanGroup(big, 0, 10); ok {
		t.Fatal("oversized group must fail")
	}
}

func TestShareableMatchesPlanGroup(t *testing.T) {
	net := testCity()
	p := NewPlanner(net)
	a := mk(net, 1, net.Node(0, 0), net.Node(5, 0), 0, 2.0)
	b := mk(net, 2, net.Node(1, 0), net.Node(6, 0), 0, 2.0)
	p1, ok1 := p.Shareable(a, b, 0, 4)
	p2, ok2 := p.PlanGroup([]*order.Order{a, b}, 0, 4)
	if ok1 != ok2 || p1.Cost != p2.Cost {
		t.Fatalf("Shareable disagrees with PlanGroup: %v/%v %v/%v", ok1, ok2, p1.Cost, p2.Cost)
	}
}

// TestPlanOptimalityBruteForce cross-checks the DP against exhaustive
// permutation search for random 3-order groups.
func TestPlanOptimalityBruteForce(t *testing.T) {
	net := testCity()
	p := NewPlanner(net)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		var orders []*order.Order
		for i := 0; i < 3; i++ {
			pu := net.Node(rng.Intn(20), rng.Intn(20))
			do := net.Node(rng.Intn(20), rng.Intn(20))
			if pu == do {
				do = net.Node((int(do)+1)%20, rng.Intn(20))
			}
			orders = append(orders, mk(net, i, pu, do, 0, 3.0))
		}
		dpPlan, dpOK := p.PlanGroup(orders, 0, 4)
		bfCost, bfOK := bruteForceBest(net, orders, 0, 4)
		if dpOK != bfOK {
			t.Fatalf("trial %d: DP ok=%v brute ok=%v", trial, dpOK, bfOK)
		}
		if dpOK && math.Abs(dpPlan.Cost-bfCost) > 1e-6 {
			t.Fatalf("trial %d: DP cost %v, brute force %v", trial, dpPlan.Cost, bfCost)
		}
	}
}

// bruteForceBest enumerates all event permutations.
func bruteForceBest(net roadnet.Network, orders []*order.Order, now float64, capacity int) (float64, bool) {
	k := len(orders)
	ne := 2 * k
	perm := make([]int, ne)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	found := false
	var rec func(depth int)
	used := make([]bool, ne)
	seq := make([]int, 0, ne)
	rec = func(depth int) {
		if depth == ne {
			cost, ok := evalSeq(net, orders, seq, now, capacity)
			if ok && cost < best {
				best = cost
				found = true
			}
			return
		}
		for e := 0; e < ne; e++ {
			if used[e] {
				continue
			}
			if e%2 == 1 && !used[e-1] {
				continue
			}
			used[e] = true
			seq = append(seq, e)
			rec(depth + 1)
			seq = seq[:len(seq)-1]
			used[e] = false
		}
	}
	rec(0)
	return best, found
}

func evalSeq(net roadnet.Network, orders []*order.Order, seq []int, now float64, capacity int) (float64, bool) {
	var t float64
	onboard := 0
	var cur geo.NodeID = geo.InvalidNode
	for _, e := range seq {
		o := orders[e/2]
		node := o.Pickup
		if e%2 == 1 {
			node = o.Dropoff
		}
		if cur != geo.InvalidNode {
			t += net.Cost(cur, node)
		}
		cur = node
		if e%2 == 0 {
			onboard += o.Riders
			if onboard > capacity {
				return 0, false
			}
		} else {
			onboard -= o.Riders
			if now+t > o.Deadline {
				return 0, false
			}
		}
	}
	return t, true
}

// TestPlanFeasibilityProperty: any plan the DP returns satisfies all three
// constraints when replayed step by step.
func TestPlanFeasibilityProperty(t *testing.T) {
	net := testCity()
	p := NewPlanner(net)
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(kRaw)%4
		var orders []*order.Order
		for i := 0; i < k; i++ {
			pu := net.Node(rng.Intn(20), rng.Intn(20))
			do := net.Node(rng.Intn(20), rng.Intn(20))
			if pu == do {
				continue
			}
			o := mk(net, i, pu, do, float64(rng.Intn(60)), 1.5+rng.Float64())
			o.Riders = 1 + rng.Intn(2)
			orders = append(orders, o)
		}
		if len(orders) == 0 {
			return true
		}
		now := 60.0
		plan, ok := p.PlanGroup(orders, now, 4)
		if !ok {
			return true // infeasible is always an acceptable answer
		}
		return replayFeasible(net, orders, plan, now, 4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func replayFeasible(net roadnet.Network, orders []*order.Order, plan *order.RoutePlan, now float64, capacity int) bool {
	byID := map[int]*order.Order{}
	for _, o := range orders {
		byID[o.ID] = o
	}
	picked := map[int]bool{}
	onboard := 0
	var t float64
	for i, s := range plan.Stops {
		if i > 0 {
			t += net.Cost(plan.Stops[i-1].Node, s.Node)
		}
		if math.Abs(t-plan.Arrive[i]) > 1e-6 {
			return false // arrival bookkeeping broken
		}
		o := byID[s.OrderID]
		if o == nil {
			return false
		}
		if s.Kind == order.PickupStop {
			if s.Node != o.Pickup {
				return false
			}
			picked[o.ID] = true
			onboard += o.Riders
			if onboard > capacity {
				return false
			}
		} else {
			if s.Node != o.Dropoff || !picked[o.ID] {
				return false
			}
			onboard -= o.Riders
			if now+t > o.Deadline+1e-9 {
				return false
			}
		}
	}
	return onboard == 0
}

func BenchmarkPlanGroup2(b *testing.B) { benchPlan(b, 2) }
func BenchmarkPlanGroup3(b *testing.B) { benchPlan(b, 3) }
func BenchmarkPlanGroup4(b *testing.B) { benchPlan(b, 4) }
func BenchmarkPlanGroup5(b *testing.B) { benchPlan(b, 5) }

func benchPlan(b *testing.B, k int) {
	net := testCity()
	p := NewPlanner(net)
	rng := rand.New(rand.NewSource(1))
	var groups [][]*order.Order
	for g := 0; g < 64; g++ {
		var orders []*order.Order
		for i := 0; i < k; i++ {
			pu := net.Node(rng.Intn(20), rng.Intn(20))
			do := net.Node(rng.Intn(20), rng.Intn(20))
			orders = append(orders, mk(net, i, pu, do, 0, 2.5))
		}
		groups = append(groups, orders)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.PlanGroup(groups[i%len(groups)], 0, 5)
	}
}
