// Package route plans feasible routes for order groups: the exact
// minimal-cost route for a group (dynamic programming over pickup/dropoff
// subsets, used by the shareability graph) and schedule evaluation used by
// the greedy-insertion baseline.
//
// A route is feasible (paper Def. 7) when it visits each order's pickup
// before its dropoff (sequential constraint), drops every order off before
// its deadline (deadline constraint) and never carries more riders than the
// vehicle capacity (capacity constraint).
//
// Two entry points share one DP core. PlanGroup/PlanGroupFrom materialize a
// RoutePlan; PlanGroupCost is the shareability graph's hot path — it runs
// the identical DP but returns only the route cost, the group expiry τg and
// the per-member service times, allocating nothing. Both accept an optional
// LegStore so the leg matrix can be assembled from cached per-pair cost
// blocks instead of fresh network queries; every assembled entry is the same
// pure cost(l1, l2) value a fresh query would return, so the two paths are
// bit-identical by construction.
package route

import (
	"math"
	"sync"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/roadnet"
)

// MaxGroupSize bounds the DP: groups above this size are rejected outright.
// The paper's vehicle capacities go up to 5 riders, so 6 leaves headroom
// while keeping the DP table (3^k states in spirit, 2^(2k)*2k here) tiny.
const MaxGroupSize = 6

// Planner plans routes over a road network. Alpha and Beta are the extra-
// time trade-off coefficients (paper Def. 6); both default to 1 in the
// paper's experiments.
type Planner struct {
	Net   roadnet.Network
	Alpha float64
	Beta  float64
}

// NewPlanner returns a planner with the paper's default alpha = beta = 1.
func NewPlanner(net roadnet.Network) *Planner {
	return &Planner{Net: net, Alpha: 1, Beta: 1}
}

// PlanGroup finds the minimal-travel-cost feasible route for the given
// orders when dispatched at time now into a vehicle with the given rider
// capacity. The route starts at its first pickup (the paper measures
// T(L(i)) from l1). Returns (nil, false) when no feasible route exists.
//
// The search is exact: dynamic programming over (visited-event-set, last
// event) states, O(4^k * k) for k orders, trivial for k <= MaxGroupSize.
func (p *Planner) PlanGroup(orders []*order.Order, now float64, capacity int) (*order.RoutePlan, bool) {
	return p.planGroupFrom(orders, now, capacity, geo.InvalidNode, nil)
}

// PlanGroupFrom is PlanGroup with an explicit start location: arrivals then
// include the travel from start to the first pickup. Pass geo.InvalidNode
// for a free start (route begins at whichever first pickup is cheapest).
func (p *Planner) PlanGroupFrom(orders []*order.Order, now float64, capacity int, start geo.NodeID) (*order.RoutePlan, bool) {
	return p.planGroupFrom(orders, now, capacity, start, nil)
}

// PlanGroupShared is PlanGroup with the leg matrix assembled from the
// store's cached per-pair blocks (falling back to fresh network queries
// when legs is nil or the group is a singleton). The result is bit-identical
// to PlanGroup: cached blocks hold the same pure cost values.
func (p *Planner) PlanGroupShared(orders []*order.Order, now float64, capacity int, legs *LegStore) (*order.RoutePlan, bool) {
	return p.planGroupFrom(orders, now, capacity, geo.InvalidNode, legs)
}

func (p *Planner) planGroupFrom(orders []*order.Order, now float64, capacity int, start geo.NodeID, store *LegStore) (*order.RoutePlan, bool) {
	sc := scratchPool.Get().(*planScratch)
	defer scratchPool.Put(sc)
	best := p.planDP(orders, now, capacity, start, store, sc)
	if best < 0 {
		return nil, false
	}
	return materializePlan(orders, best, sc), true
}

// PlanGroupCost is the cost-only fast path of PlanGroup: it runs the exact
// same DP over the exact same leg costs but materializes nothing — no
// RoutePlan, no stops, no arrival slice. It returns the minimal route cost
// T(L), the group expiry τg (Eq. 3: min_i τ(i) - T(L(i))) and, through svc
// (caller-provided, len >= len(orders)), each member's service time T(L(i))
// in member order. ok is false when no feasible route exists — and, because
// raising now only shrinks the feasible route set, stays false for every
// later now (the monotone-infeasibility property the pool's negative cache
// relies on).
//
//det:hotpath the shareability graph's per-pair test runs millions of times per simulated day and must not allocate in steady state
func (p *Planner) PlanGroupCost(orders []*order.Order, now float64, capacity int, legs *LegStore, svc []float64) (cost, expiry float64, ok bool) {
	sc := scratchPool.Get().(*planScratch)
	defer scratchPool.Put(sc)
	best := p.planDP(orders, now, capacity, geo.InvalidNode, legs, sc)
	if best < 0 {
		return 0, 0, false
	}
	ne := 2 * len(orders)
	cost = sc.dpBuf[best]
	// Walk the parent chain recording each dropoff's arrival offset; the
	// values are the same dp entries a materialized plan would expose via
	// ServiceTime, so expiry is bit-identical to groupExpiry over a plan.
	for idx := best; idx >= 0; idx = int(sc.parentBuf[idx]) {
		if ev := idx % ne; ev%2 == 1 {
			svc[ev/2] = sc.dpBuf[idx]
		}
	}
	expiry = math.Inf(1)
	for i, o := range orders {
		if e := o.Deadline - svc[i]; e < expiry {
			expiry = e
		}
	}
	return cost, expiry, true
}

// planDP runs the feasibility DP and returns the index of the cheapest
// complete final state into sc's dp/parent tables, or -1 when the group is
// infeasible. The leg matrix comes from the store's cached pair blocks when
// store is non-nil and the group has pairs to share, from batched network
// queries otherwise; either way every entry is cost(loc[a], loc[b]).
func (p *Planner) planDP(orders []*order.Order, now float64, capacity int, start geo.NodeID, store *LegStore, sc *planScratch) int {
	k := len(orders)
	if k == 0 || k > MaxGroupSize {
		return -1
	}
	// A group whose combined riders exceed capacity can still be feasible
	// when riders never overlap; overlap is checked per transition below.
	// Only an individual order that exceeds capacity is hopeless.
	for _, o := range orders {
		if o.Riders > capacity {
			return -1
		}
	}

	ne := 2 * k // events: 2i = pickup of orders[i], 2i+1 = dropoff
	full := (1 << ne) - 1
	// legs[a*ne+b] caches cost(loc[a], loc[b]); the DP touches each pair
	// thousands of times. One batched many-to-many call fills the whole
	// table: a Graph-backed network answers it with one pruned ALT search
	// per distinct event node instead of ne full-city Dijkstras. A LegStore
	// skips even that, copying the entries out of per-pair blocks cached
	// when the pair's shareability edge was first tested.
	legs := sc.legs(ne)
	if store != nil && k >= 2 {
		assembleLegs(store, orders, ne, legs)
	} else {
		loc := sc.loc(ne)
		for i, o := range orders {
			loc[2*i] = o.Pickup
			loc[2*i+1] = o.Dropoff
		}
		roadnet.FillCostMatrix(p.Net, loc, loc, legs)
	}
	// Approach legs from the explicit start to each pickup, batched the
	// same way (one search for all k pickups).
	var t0s []float64
	if start != geo.InvalidNode {
		pickups := sc.pickups(k)
		for i, o := range orders {
			pickups[i] = o.Pickup
		}
		t0s = sc.startRow(k)
		sc.startSrc[0] = start
		roadnet.FillCostMatrix(p.Net, sc.startSrc[:], pickups, t0s)
	}
	// dp[mask*ne+last] = earliest arrival offset at event `last` having
	// completed exactly `mask`.
	size := (full + 1) * ne
	dp, parent := sc.tables(size)
	for i := range dp {
		dp[i] = math.Inf(1)
		parent[i] = -1
	}
	// Initialize with each pickup as the first stop.
	for i := range orders {
		var t0 float64
		if t0s != nil {
			t0 = t0s[i]
		}
		dp[(1<<(2*i))*ne+2*i] = t0
	}

	for mask := 1; mask <= full; mask++ {
		onboard := -1 // computed lazily: most masks are unreachable
		for last := 0; last < ne; last++ {
			cur := dp[mask*ne+last]
			if math.IsInf(cur, 1) {
				continue
			}
			if onboard < 0 {
				onboard = ridersOnboard(orders, mask)
			}
			for next := 0; next < ne; next++ {
				if mask&(1<<next) != 0 {
					continue
				}
				oi := next / 2
				if next%2 == 1 && mask&(1<<(next-1)) == 0 {
					continue // dropoff before pickup violates sequencing
				}
				if next%2 == 0 && onboard+orders[oi].Riders > capacity {
					continue // capacity exceeded at this pickup
				}
				t := cur + legs[last*ne+next]
				if next%2 == 1 && now+t > orders[oi].Deadline {
					continue // deadline violated at this dropoff
				}
				nm := mask | (1 << next)
				idx := nm*ne + next
				if t < dp[idx]-1e-12 {
					dp[idx] = t
					parent[idx] = int32(mask*ne + last)
				}
			}
		}
	}

	// Pick the cheapest complete route; ties break toward the smaller
	// final event index for determinism.
	best := -1
	bestT := math.Inf(1)
	for last := 0; last < ne; last++ {
		if t := dp[full*ne+last]; t < bestT-1e-12 {
			bestT = t
			best = full*ne + last
		}
	}
	return best
}

// materializePlan reconstructs the RoutePlan ending at state best from sc's
// dp/parent tables (fresh slices: they escape into the returned plan).
func materializePlan(orders []*order.Order, best int, sc *planScratch) *order.RoutePlan {
	ne := 2 * len(orders)
	events := make([]int, 0, ne)
	arrive := make([]float64, 0, ne)
	for idx := best; idx >= 0; idx = int(sc.parentBuf[idx]) {
		events = append(events, idx%ne)
		arrive = append(arrive, sc.dpBuf[idx])
	}
	reverseInts(events)
	reverseFloats(arrive)

	plan := &order.RoutePlan{
		Stops:  make([]order.Stop, ne),
		Arrive: arrive,
		Cost:   sc.dpBuf[best],
	}
	for i, ev := range events {
		o := orders[ev/2]
		kind := order.PickupStop
		node := o.Pickup
		if ev%2 == 1 {
			kind = order.DropoffStop
			node = o.Dropoff
		}
		plan.Stops[i] = order.Stop{Node: node, Kind: kind, OrderID: o.ID, Riders: o.Riders}
	}
	return plan
}

// Shareable reports whether two orders can be served together by a vehicle
// of the given capacity when dispatched at time now, and returns the
// minimal-cost plan when they can. This is the pairwise test that decides
// edges of the temporal shareability graph.
func (p *Planner) Shareable(a, b *order.Order, now float64, capacity int) (*order.RoutePlan, bool) {
	return p.PlanGroup([]*order.Order{a, b}, now, capacity)
}

// planScratch holds reusable DP buffers; pooled because the shareability
// graph calls the planner millions of times per simulated day.
type planScratch struct {
	locBuf    []geo.NodeID
	legBuf    []float64
	dpBuf     []float64
	parentBuf []int32

	pickupBuf []geo.NodeID
	rowBuf    []float64
	startSrc  [1]geo.NodeID
}

var scratchPool = sync.Pool{New: func() any { return &planScratch{} }}

//det:hotalloc grows the pooled scratch once per high-water mark; steady state reuses capacity
func (s *planScratch) loc(ne int) []geo.NodeID {
	if cap(s.locBuf) < ne {
		s.locBuf = make([]geo.NodeID, ne)
	}
	return s.locBuf[:ne]
}

//det:hotalloc grows the pooled scratch once per high-water mark; steady state reuses capacity
func (s *planScratch) legs(ne int) []float64 {
	if cap(s.legBuf) < ne*ne {
		s.legBuf = make([]float64, ne*ne)
	}
	return s.legBuf[:ne*ne]
}

//det:hotalloc grows the pooled scratch once per high-water mark; steady state reuses capacity
func (s *planScratch) pickups(k int) []geo.NodeID {
	if cap(s.pickupBuf) < k {
		s.pickupBuf = make([]geo.NodeID, k)
	}
	return s.pickupBuf[:k]
}

//det:hotalloc grows the pooled scratch once per high-water mark; steady state reuses capacity
func (s *planScratch) startRow(k int) []float64 {
	if cap(s.rowBuf) < k {
		s.rowBuf = make([]float64, k)
	}
	return s.rowBuf[:k]
}

//det:hotalloc grows the pooled scratch once per high-water mark; steady state reuses capacity
func (s *planScratch) tables(size int) ([]float64, []int32) {
	if cap(s.dpBuf) < size {
		s.dpBuf = make([]float64, size)
		s.parentBuf = make([]int32, size)
	}
	return s.dpBuf[:size], s.parentBuf[:size]
}

// ridersOnboard counts riders picked up but not yet dropped off in mask.
func ridersOnboard(orders []*order.Order, mask int) int {
	n := 0
	for i, o := range orders {
		picked := mask&(1<<(2*i)) != 0
		dropped := mask&(1<<(2*i+1)) != 0
		if picked && !dropped {
			n += o.Riders
		}
	}
	return n
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseFloats(s []float64) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
