package route

import (
	"math"
	"testing"

	"watter/internal/order"
	"watter/internal/roadnet"
)

func TestEvaluateSimpleSchedule(t *testing.T) {
	net := testCity()
	p := NewPlanner(net)
	o := mk(net, 1, net.Node(0, 0), net.Node(4, 0), 0, 3.0)
	stops := []order.Stop{
		{Node: o.Pickup, Kind: order.PickupStop, OrderID: 1, Riders: 1},
		{Node: o.Dropoff, Kind: order.DropoffStop, OrderID: 1, Riders: 1},
	}
	orders := map[int]*order.Order{1: o}
	times, travel, ok := p.Evaluate(stops, orders, net.Node(0, 0), 10, 4, 0)
	if !ok {
		t.Fatal("evaluate failed")
	}
	if times[0] != 10 || math.Abs(times[1]-50) > 1e-9 {
		t.Fatalf("times = %v", times)
	}
	if math.Abs(travel-40) > 1e-9 {
		t.Fatalf("travel = %v", travel)
	}
}

func TestEvaluateRejectsViolations(t *testing.T) {
	net := testCity()
	p := NewPlanner(net)
	o := mk(net, 1, net.Node(0, 0), net.Node(4, 0), 0, 1.2)
	orders := map[int]*order.Order{1: o}
	pick := order.Stop{Node: o.Pickup, Kind: order.PickupStop, OrderID: 1, Riders: 1}
	drop := order.Stop{Node: o.Dropoff, Kind: order.DropoffStop, OrderID: 1, Riders: 1}

	// Deadline violation: start far away so the dropoff is late.
	if _, _, ok := p.Evaluate([]order.Stop{pick, drop}, orders, net.Node(19, 19), 0, 4, 0); ok {
		t.Fatal("late schedule must be infeasible")
	}
	// Capacity violation.
	big := *o
	big.Riders = 9
	bp := pick
	bp.Riders = 9
	if _, _, ok := p.Evaluate([]order.Stop{bp}, map[int]*order.Order{1: &big}, o.Pickup, 0, 4, 0); ok {
		t.Fatal("overloaded pickup must be infeasible")
	}
	// Dropoff without pickup and nothing onboard.
	if _, _, ok := p.Evaluate([]order.Stop{drop}, orders, o.Pickup, 0, 4, 0); ok {
		t.Fatal("dropoff of absent rider must be infeasible")
	}
	// Dropoff of an onboard rider is fine.
	if _, _, ok := p.Evaluate([]order.Stop{drop}, orders, o.Pickup, 0, 4, 1); !ok {
		t.Fatal("dropoff of onboard rider must be feasible")
	}
	// Unknown order id.
	if _, _, ok := p.Evaluate([]order.Stop{pick, drop}, map[int]*order.Order{}, o.Pickup, 0, 4, 0); ok {
		t.Fatal("unknown order must be infeasible")
	}
}

func TestInsertOrderIntoEmptySchedule(t *testing.T) {
	net := testCity()
	p := NewPlanner(net)
	o := mk(net, 1, net.Node(2, 0), net.Node(6, 0), 0, 3.0)
	sch := &Schedule{}
	got, delta, ok := p.InsertOrder(sch, map[int]*order.Order{}, o, net.Node(0, 0), 0, 4, 0)
	if !ok {
		t.Fatal("insert into empty schedule failed")
	}
	if len(got.Stops) != 2 {
		t.Fatalf("stops = %v", got.Stops)
	}
	// Travel = 2 blocks to pickup + 4 blocks to dropoff = 60s.
	if math.Abs(delta-60) > 1e-9 {
		t.Fatalf("delta = %v", delta)
	}
}

func TestInsertOrderPrefersCheapestPosition(t *testing.T) {
	net := testCity()
	p := NewPlanner(net)
	// Existing passenger travels (0,0)->(8,0); new order (2,0)->(5,0) lies
	// entirely inside that corridor: optimal insertion adds 0 extra travel.
	a := mk(net, 1, net.Node(0, 0), net.Node(8, 0), 0, 3.0)
	b := mk(net, 2, net.Node(2, 0), net.Node(5, 0), 0, 3.0)
	orders := map[int]*order.Order{1: a}
	sch := &Schedule{
		Stops: []order.Stop{
			{Node: a.Pickup, Kind: order.PickupStop, OrderID: 1, Riders: 1},
			{Node: a.Dropoff, Kind: order.DropoffStop, OrderID: 1, Riders: 1},
		},
		Times: []float64{0, 80},
	}
	got, delta, ok := p.InsertOrder(sch, orders, b, net.Node(0, 0), 0, 4, 0)
	if !ok {
		t.Fatal("insert failed")
	}
	if math.Abs(delta) > 1e-9 {
		t.Fatalf("corridor insertion should be free, delta = %v", delta)
	}
	if len(got.Stops) != 4 {
		t.Fatalf("stops = %v", got.Stops)
	}
}

func TestInsertOrderRespectsExistingDeadlines(t *testing.T) {
	net := testCity()
	p := NewPlanner(net)
	// Existing passenger has zero slack; any detour breaks it.
	a := mk(net, 1, net.Node(0, 0), net.Node(8, 0), 0, 1.0)
	// bTight (deadline 150 s) cannot be appended after a's dropoff
	// (arrival 210 s) and any interior insertion breaks a's zero slack.
	bTight := mk(net, 2, net.Node(4, 6), net.Node(4, 9), 0, 5.0)
	// bPatient (deadline 240 s) survives being appended at the end.
	bPatient := mk(net, 3, net.Node(4, 6), net.Node(4, 9), 0, 8.0)
	orders := map[int]*order.Order{1: a}
	sch := &Schedule{
		Stops: []order.Stop{
			{Node: a.Pickup, Kind: order.PickupStop, OrderID: 1, Riders: 1},
			{Node: a.Dropoff, Kind: order.DropoffStop, OrderID: 1, Riders: 1},
		},
		Times: []float64{0, 80},
	}
	if _, _, ok := p.InsertOrder(sch, orders, bTight, net.Node(0, 0), 0, 4, 0); ok {
		t.Fatal("insertion breaking a deadline on every position must fail")
	}
	got, _, ok := p.InsertOrder(sch, orders, bPatient, net.Node(0, 0), 0, 4, 0)
	if !ok {
		t.Fatal("appending after dropoff should work for a patient order")
	}
	// The only feasible positions are after a's dropoff.
	if got.Stops[0].OrderID != 1 || got.Stops[1].OrderID != 1 {
		t.Fatalf("a's stops must stay first: %+v", got.Stops)
	}
}

func TestScheduleCloneAndEnd(t *testing.T) {
	net := testCity()
	sch := &Schedule{
		Stops: []order.Stop{{Node: net.Node(3, 3), Kind: order.DropoffStop, OrderID: 1}},
		Times: []float64{120},
	}
	c := sch.Clone()
	c.Stops[0].OrderID = 99
	c.Times[0] = 0
	if sch.Stops[0].OrderID != 1 || sch.Times[0] != 120 {
		t.Fatal("clone aliases original")
	}
	loc, tm := sch.End(net.Node(0, 0), 5)
	if loc != net.Node(3, 3) || tm != 120 {
		t.Fatalf("End = %v,%v", loc, tm)
	}
	empty := &Schedule{}
	loc, tm = empty.End(net.Node(1, 1), 7)
	if loc != net.Node(1, 1) || tm != 7 {
		t.Fatalf("empty End = %v,%v", loc, tm)
	}
}

var _ = roadnet.Network(nil) // keep import when tests shrink
