package proxy

import (
	"fmt"

	"watter/internal/platform"
)

// Admin is the proxy's operator plane — the dashboard side of the
// Codis-style split. It shares the proxy's lock, so admin actions
// serialize with traffic and land between events in the journal, never
// inside a platform call.
type Admin struct {
	x *Proxy
}

// Admin returns the operator plane. The handle is stateless; callers may
// grab it once or per call.
func (x *Proxy) Admin() Admin { return Admin{x: x} }

// CityState is a city's lifecycle state as the front tier sees it.
type CityState int

const (
	// StateRunning: the city serves traffic.
	StateRunning CityState = iota
	// StatePaused: the operator froze the city; traffic is refused with
	// platform.ErrPaused until Resume. Virtual time means the freeze is
	// metrics-neutral.
	StatePaused
	// StateDown: the city crashed and has not been restarted (auto-restart
	// off, or a restart failed).
	StateDown
	// StateClosed: the proxy itself is closed; the city finished.
	StateClosed
)

func (s CityState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StatePaused:
		return "paused"
	case StateDown:
		return "down"
	case StateClosed:
		return "closed"
	}
	return fmt.Sprintf("CityState(%d)", int(s))
}

// Health is one city's probe report.
type Health struct {
	City  string
	State CityState
	// Clock is the city's virtual time in seconds.
	Clock float64
	// Restarts counts successful journal-replay recoveries of this city.
	Restarts int
	// JournalEvents is the length of the city's recorded event sequence —
	// the replay cost of the next restart.
	JournalEvents int
	// Recovered reports that THIS probe found the city wedged and healed
	// it (auto-restart only).
	Recovered bool
	// Err carries the failure when the city is down and could not (or was
	// not allowed to) be healed.
	Err error
}

// Pause freezes one city: its Submit/Tick refuse with platform.ErrPaused
// while every other city keeps serving. The freeze is metrics-neutral
// (virtual time — delayed ticks fire identically on resume).
func (a Admin) Pause(cityID string) error {
	a.x.mu.Lock()
	defer a.x.mu.Unlock()
	if a.x.closed {
		return ErrClosed
	}
	ct, err := a.x.lookupLocked(cityID)
	if err != nil {
		return err
	}
	if ct.down {
		return fmt.Errorf("%w: %q", ErrCityDown, cityID)
	}
	if err := ct.plat.Pause(); err != nil {
		return fmt.Errorf("proxy: city %q: %w", cityID, err)
	}
	ct.paused = true
	return nil
}

// Resume unfreezes a paused city.
func (a Admin) Resume(cityID string) error {
	a.x.mu.Lock()
	defer a.x.mu.Unlock()
	if a.x.closed {
		return ErrClosed
	}
	ct, err := a.x.lookupLocked(cityID)
	if err != nil {
		return err
	}
	if ct.down {
		return fmt.Errorf("%w: %q", ErrCityDown, cityID)
	}
	if err := ct.plat.Resume(); err != nil {
		return fmt.Errorf("proxy: city %q: %w", cityID, err)
	}
	ct.paused = false
	return nil
}

// Kill crash-injects a city: the platform aborts in place, but the
// proxy's bookkeeping is deliberately NOT updated — exactly like a real
// wedge, the front tier finds out when traffic hits the city or a probe
// inspects it. Exists so HA detection and journal-replay recovery are
// testable end to end.
func (a Admin) Kill(cityID string) error {
	a.x.mu.Lock()
	defer a.x.mu.Unlock()
	if a.x.closed {
		return ErrClosed
	}
	ct, err := a.x.lookupLocked(cityID)
	if err != nil {
		return err
	}
	ct.plat.Abort()
	return nil
}

// Restart explicitly rebuilds a city from its journal — the manual
// recovery path when auto-restart is off, and a rolling-restart tool when
// the city is healthy (the live platform is aborted and rebuilt; the
// journal guarantees nothing is lost).
func (a Admin) Restart(cityID string) error {
	a.x.mu.Lock()
	defer a.x.mu.Unlock()
	if a.x.closed {
		return ErrClosed
	}
	ct, err := a.x.lookupLocked(cityID)
	if err != nil {
		return err
	}
	return a.x.restartLocked(ct)
}

// Probe health-checks every city in routing order. A wedged city — its
// platform reports closed while the front tier believes it is running —
// is detected here without waiting for traffic; under auto-restart the
// probe heals it inline (journal replay) and reports Recovered.
func (a Admin) Probe() []Health {
	a.x.mu.Lock()
	defer a.x.mu.Unlock()
	out := make([]Health, 0, len(a.x.ids))
	for _, id := range a.x.ids {
		ct := a.x.cities[id]
		h := Health{
			City:          id,
			Clock:         ct.plat.Clock(),
			Restarts:      ct.restarts,
			JournalEvents: len(ct.journal),
		}
		st := ct.plat.Stats()
		switch {
		case a.x.closed:
			h.State = StateClosed
		case ct.down || st.Closed:
			ct.down = true
			if a.x.autoRestart {
				if err := a.x.restartLocked(ct); err != nil {
					h.State, h.Err = StateDown, err
				} else {
					h.Recovered = true
					h.Restarts = ct.restarts
					h.Clock = ct.plat.Clock()
					if ct.paused {
						h.State = StatePaused
					} else {
						h.State = StateRunning
					}
				}
			} else {
				h.State = StateDown
				h.Err = fmt.Errorf("%w: %q (auto-restart disabled)", ErrCityDown, id)
			}
		case ct.paused:
			h.State = StatePaused
		default:
			h.State = StateRunning
		}
		out = append(out, h)
	}
	return out
}

// CityStats is one city's unified snapshot, tagged for the fleet view.
type CityStats struct {
	City     string
	Restarts int
	Stats    platform.Stats
}

// AdminStats is the whole-fleet observability snapshot: every city's
// unified platform.Stats (routing order) plus their fold.
type AdminStats struct {
	Cities []CityStats
	// Aggregate folds every city's snapshot with Stats.Merge: counters
	// sum, Clock is the max, Closed only when all cities closed, Paused
	// when any is.
	Aggregate platform.Stats
	// JournalEvents is the merged journal's length.
	JournalEvents int
	// Restarts is the fleet-wide recovery count.
	Restarts int
}

// CityStats returns one city's unified snapshot.
func (a Admin) CityStats(cityID string) (platform.Stats, error) {
	a.x.mu.Lock()
	defer a.x.mu.Unlock()
	ct, err := a.x.lookupLocked(cityID)
	if err != nil {
		return platform.Stats{}, err
	}
	return ct.plat.Stats(), nil
}

// Stats snapshots the whole fleet.
func (a Admin) Stats() AdminStats {
	a.x.mu.Lock()
	defer a.x.mu.Unlock()
	out := AdminStats{
		Cities:        make([]CityStats, 0, len(a.x.ids)),
		JournalEvents: len(a.x.journal),
	}
	for i, id := range a.x.ids {
		ct := a.x.cities[id]
		st := ct.plat.Stats()
		out.Cities = append(out.Cities, CityStats{City: id, Restarts: ct.restarts, Stats: st})
		out.Restarts += ct.restarts
		if i == 0 {
			// Fold from the first snapshot, not the zero value: Merge ANDs
			// Closed, and a zero-value false would poison the aggregate.
			out.Aggregate = st
		} else {
			out.Aggregate.Merge(st)
		}
	}
	return out
}
