package proxy

import (
	"fmt"

	"watter/internal/platform"
)

// The event journal doubles as the recovery log because admissions and
// tick boundaries ARE the simulation's complete input: a Platform is a
// deterministic state machine driven only by Submit and Tick (PR 3's
// scheduling contract), so replaying the journal's OrderAdmitted orders
// and TickCompleted boundaries into a fresh platform reproduces every
// decision, every event and every metric bit-for-bit. Output events
// (GroupDispatched, OrderRejected) carry no input and are skipped on
// replay — but they are not wasted: the replay cursor checks each
// re-emitted event against the recording, so the outputs serve as a
// per-event integrity proof of the recovery.

// replayJournal re-drives a fresh platform with the input sequence
// embedded in a recorded journal.
//
// Tick reconstruction: a TickCompleted at time t was produced either by
// an explicit front-tier Tick or auto-fired inside a later Submit (ticks
// due before an order's release fire first). Both paths execute the
// identical periodic check at the identical boundary, so the replay
// simply fires an explicit Tick whenever the journal shows a boundary the
// fresh platform has not reached — the clock guard keeps replay and
// recording aligned without distinguishing how the tick was originally
// triggered.
func replayJournal(p *platform.Platform, journal []platform.Event) error {
	for _, ev := range journal {
		switch e := ev.(type) {
		case platform.OrderAdmitted:
			// Clone: the journal's copy must stay pristine for the next
			// restart, and the new platform takes ownership of what it
			// admits.
			o := *e.Order
			if err := p.Submit(&o); err != nil {
				return err
			}
		case platform.TickCompleted:
			if p.Clock() < e.Time {
				if _, err := p.Tick(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// replayCursor verifies a restart against the recording: every event the
// fresh platform emits during replay must match the journal, in order,
// and the replay must consume the whole journal. Any divergence means the
// spec is not restart-safe (a stateful algorithm snuck into Options, a
// nondeterministic NewAlgorithm, a mutated network) and the restart is
// refused instead of resuming a corrupted city.
type replayCursor struct {
	journal []platform.Event
	i       int
	err     error
}

func (r *replayCursor) check(ev platform.Event) {
	if r.err != nil {
		return
	}
	if r.i >= len(r.journal) {
		r.err = fmt.Errorf("replay emitted an extra %T at t=%.1f beyond the %d recorded events",
			ev, ev.When(), len(r.journal))
		return
	}
	if !sameEvent(r.journal[r.i], ev) {
		r.err = fmt.Errorf("divergence at event %d: recorded %T at t=%.1f, replay emitted %T at t=%.1f",
			r.i, r.journal[r.i], r.journal[r.i].When(), ev, ev.When())
		return
	}
	r.i++
}

func (r *replayCursor) done() error {
	if r.err != nil {
		return r.err
	}
	if r.i != len(r.journal) {
		return fmt.Errorf("replay reproduced only %d of %d recorded events", r.i, len(r.journal))
	}
	return nil
}

// sameEvent is structural event equality, modulo the one documented
// nondeterministic field (TickCompleted.Metrics.DecisionSeconds measures
// wall-clock — DESIGN.md §8).
func sameEvent(a, b platform.Event) bool {
	switch x := a.(type) {
	case platform.OrderAdmitted:
		y, ok := b.(platform.OrderAdmitted)
		return ok && x.Time == y.Time && *x.Order == *y.Order
	case platform.TickCompleted:
		y, ok := b.(platform.TickCompleted)
		if !ok || x.Time != y.Time {
			return false
		}
		mx, my := x.Metrics, y.Metrics
		mx.DecisionSeconds, my.DecisionSeconds = 0, 0
		return mx == my
	case platform.GroupDispatched:
		y, ok := b.(platform.GroupDispatched)
		if !ok || x.Time != y.Time || x.WorkerID != y.WorkerID ||
			x.Approach != y.Approach || x.RouteCost != y.RouteCost ||
			len(x.Orders) != len(y.Orders) {
			return false
		}
		for i := range x.Orders {
			if x.Orders[i] != y.Orders[i] {
				return false
			}
		}
		return true
	case platform.OrderRejected:
		y, ok := b.(platform.OrderRejected)
		return ok && x.Time == y.Time && x.Penalty == y.Penalty &&
			x.UnifiedPenalty == y.UnifiedPenalty && *x.Order == *y.Order
	}
	return false
}
