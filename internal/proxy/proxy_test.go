package proxy

import (
	"errors"
	"testing"

	"watter/internal/core"
	"watter/internal/dataset"
	"watter/internal/order"
	"watter/internal/platform"
	"watter/internal/pool"
	"watter/internal/sim"
	"watter/internal/strategy"
)

// algFactories are the two cheap pooling policies the proof obligations
// run over (the expensive learned baselines are covered by exp's sweeps).
var algFactories = map[string]func() sim.Algorithm{
	"online":  func() sim.Algorithm { return core.New(strategy.Online{}, pool.DefaultOptions()) },
	"timeout": func() sim.Algorithm { return core.New(strategy.Timeout{Tick: 10}, pool.DefaultOptions()) },
}

// testCity materializes one city's blueprint and workload: profile-built
// network, seed-derived fleet prototypes and a release-sorted order
// stream. Workers are regenerated (not shared) per call so arms never
// alias mutable fleet state.
func testCity(profile dataset.Profile, seed int64, orders, workers int) (CitySpec, []*order.Order) {
	city := profile.Build()
	os := city.Orders(dataset.WorkloadConfig{Orders: orders, Seed: seed})
	ws := city.Workers(workers, 4, seed+1000)
	spec := CitySpec{
		ID:      profile.Name,
		Net:     city.Net,
		Workers: ws,
	}
	return spec, os
}

func threeCities(seed int64, newAlg func() sim.Algorithm) ([]CitySpec, map[string][]*order.Order) {
	profiles := []dataset.Profile{dataset.CDC(), dataset.NYC(), dataset.XIA()}
	specs := make([]CitySpec, 0, len(profiles))
	workloads := make(map[string][]*order.Order, len(profiles))
	for i, p := range profiles {
		spec, os := testCity(p, seed+int64(i)*17, 40, 6)
		spec.NewAlgorithm = newAlg
		spec.Options = []platform.Option{platform.WithMeasuredTime(false)}
		specs = append(specs, spec)
		workloads[spec.ID] = os
	}
	return specs, workloads
}

// stripWallClock zeroes the one documented nondeterministic metric field
// so comparisons are over the deterministic remainder only.
func stripWallClock(m *sim.Metrics) sim.Metrics {
	cp := *m
	cp.DecisionSeconds = 0
	return cp
}

// TestNewValidates pins the constructor's error surface.
func TestNewValidates(t *testing.T) {
	spec, _ := testCity(dataset.CDC(), 1, 5, 2)
	if _, err := New(nil); err == nil {
		t.Fatal("no cities must fail")
	}
	if _, err := New([]CitySpec{spec}, nil); err == nil {
		t.Fatal("nil option must fail")
	}
	blank := spec
	blank.ID = ""
	if _, err := New([]CitySpec{blank}); err == nil {
		t.Fatal("empty city ID must fail")
	}
	if _, err := New([]CitySpec{spec, spec}); err == nil {
		t.Fatal("duplicate city ID must fail")
	}
	nilWorker := spec
	nilWorker.Workers = []*order.Worker{nil}
	if _, err := New([]CitySpec{nilWorker}); err == nil {
		t.Fatal("nil worker must fail")
	}
	nilAlg := spec
	nilAlg.NewAlgorithm = func() sim.Algorithm { return nil }
	if _, err := New([]CitySpec{nilAlg}); err == nil {
		t.Fatal("nil-returning algorithm factory must fail")
	}
	if _, err := New([]CitySpec{spec}, WithJournalSink(nil)); err == nil {
		t.Fatal("nil journal sink must fail")
	}
}

// TestRoutingErrors pins the router's error taxonomy: unknown cities,
// closed proxies, and the idempotent Close result.
func TestRoutingErrors(t *testing.T) {
	spec, orders := testCity(dataset.CDC(), 2, 10, 3)
	spec.Options = []platform.Option{platform.WithMeasuredTime(false)}
	x, err := New([]CitySpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Submit("atlantis", orders[0]); !errors.Is(err, ErrUnknownCity) {
		t.Fatalf("unknown city: %v", err)
	}
	if _, err := x.CityJournal("atlantis"); !errors.Is(err, ErrUnknownCity) {
		t.Fatalf("unknown city journal: %v", err)
	}
	if _, err := x.Replay(map[string][]*order.Order{"atlantis": orders}); !errors.Is(err, ErrUnknownCity) {
		t.Fatalf("unknown city workload: %v", err)
	}
	m1, err := x.Close()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := x.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m1[spec.ID] != m2[spec.ID] {
		t.Fatal("double close must repeat the first result")
	}
	if err := x.Submit(spec.ID, orders[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	if _, err := x.Tick(); !errors.Is(err, ErrClosed) {
		t.Fatalf("tick after close: %v", err)
	}
	if _, err := x.Replay(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("replay after close: %v", err)
	}
	if err := x.Admin().Pause(spec.ID); !errors.Is(err, ErrClosed) {
		t.Fatalf("pause after close: %v", err)
	}
}

// TestProxyIsolation is the tentpole's first proof obligation: a proxy
// running three cities yields, per city, metrics bit-identical to that
// city run alone on a standalone Platform — for two algorithms and two
// seeds. Shared infrastructure adds zero cross-city interference.
func TestProxyIsolation(t *testing.T) {
	for name, newAlg := range algFactories {
		for _, seed := range []int64{7, 91} {
			specs, workloads := threeCities(seed, newAlg)
			x, err := New(specs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := x.Replay(workloads)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range specs {
				// Standalone arm: same blueprint, fresh fleet clone, own
				// platform — no proxy anywhere.
				ws := make([]*order.Worker, len(spec.Workers))
				for i, w := range spec.Workers {
					cp := *w
					ws[i] = &cp
				}
				p, err := platform.New(spec.Net, ws,
					platform.WithMeasuredTime(false), platform.WithAlgorithm(newAlg()))
				if err != nil {
					t.Fatal(err)
				}
				want, err := p.Replay(workloads[spec.ID])
				if err != nil {
					t.Fatal(err)
				}
				if stripWallClock(got[spec.ID]) != stripWallClock(want) {
					t.Fatalf("%s/seed%d: city %s diverged under the proxy:\nproxy:      %+v\nstandalone: %+v",
						name, seed, spec.ID, *got[spec.ID], *want)
				}
			}
		}
	}
}

// TestJournalReplayRecovery is the tentpole's second proof obligation: a
// city killed mid-run is rebuilt from its recorded journal, every
// re-emitted event verifies against the recording, and the resumed run's
// final metrics are bit-identical to an uninterrupted one — two
// algorithms, two seeds, both healing paths (traffic and probe).
func TestJournalReplayRecovery(t *testing.T) {
	for name, newAlg := range algFactories {
		for si, seed := range []int64{13, 202} {
			specs, workloads := threeCities(seed, newAlg)
			victim := specs[1].ID

			run := func(kill bool) map[string]*sim.Metrics {
				x, err := New(specs)
				if err != nil {
					t.Fatal(err)
				}
				// Interleave the three streams exactly as Replay would, but
				// by hand so the crash lands mid-flight.
				type entry struct {
					city string
					o    *order.Order
				}
				var feed []entry
				for _, spec := range specs {
					for _, o := range workloads[spec.ID] {
						cp := *o
						feed = append(feed, entry{spec.ID, &cp})
					}
				}
				for i := 1; i < len(feed); i++ {
					for j := i; j > 0 && feed[j].o.Release < feed[j-1].o.Release; j-- {
						feed[j], feed[j-1] = feed[j-1], feed[j]
					}
				}
				for i, e := range feed {
					if kill && i == len(feed)/2 {
						if err := x.Admin().Kill(victim); err != nil {
							t.Fatal(err)
						}
						// Alternate the detection path: traffic-driven heal
						// on one seed, probe-driven on the other.
						if si%2 == 1 {
							for _, h := range x.Admin().Probe() {
								if h.City == victim && !h.Recovered {
									t.Fatalf("probe did not heal %s: %+v", victim, h)
								}
							}
						}
					}
					if err := x.Submit(e.city, e.o); err != nil {
						t.Fatalf("submit %s after crash: %v", e.city, err)
					}
				}
				if kill {
					st := x.Admin().Stats()
					if st.Restarts == 0 {
						t.Fatal("no restart recorded after kill")
					}
				}
				m, err := x.Close()
				if err != nil {
					t.Fatal(err)
				}
				return m
			}

			clean, healed := run(false), run(true)
			for _, spec := range specs {
				if stripWallClock(clean[spec.ID]) != stripWallClock(healed[spec.ID]) {
					t.Fatalf("%s/seed%d: city %s not bit-identical after HA restart:\nclean:  %+v\nhealed: %+v",
						name, seed, spec.ID, *clean[spec.ID], *healed[spec.ID])
				}
			}
		}
	}
}

// TestAutoRestartDisabled pins the manual-ops path: with self-healing
// off, a crashed city stays down (traffic reports ErrCityDown, probes
// report StateDown) until Admin.Restart replays it back.
func TestAutoRestartDisabled(t *testing.T) {
	specs, workloads := threeCities(29, algFactories["online"])
	victim := specs[0].ID
	x, err := New(specs, WithAutoRestart(false))
	if err != nil {
		t.Fatal(err)
	}
	os := workloads[victim]
	half := len(os) / 2
	for _, o := range os[:half] {
		cp := *o
		if err := x.Submit(victim, &cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := x.Admin().Kill(victim); err != nil {
		t.Fatal(err)
	}
	cp := *os[half]
	if err := x.Submit(victim, &cp); !errors.Is(err, ErrCityDown) {
		t.Fatalf("traffic into a down city: %v", err)
	}
	found := false
	for _, h := range x.Admin().Probe() {
		if h.City == victim {
			found = true
			if h.State != StateDown || h.Err == nil {
				t.Fatalf("probe of a down city: %+v", h)
			}
		} else if h.State != StateRunning {
			t.Fatalf("bystander city %s not running: %+v", h.City, h)
		}
	}
	if !found {
		t.Fatal("probe skipped the victim")
	}
	if err := x.Admin().Restart(victim); err != nil {
		t.Fatal(err)
	}
	for _, o := range os[half:] {
		cp := *o
		if err := x.Submit(victim, &cp); err != nil {
			t.Fatalf("submit after manual restart: %v", err)
		}
	}
	if _, err := x.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPauseIsMetricsNeutral pins the ops guarantee that makes pause safe
// to use: freezing a city mid-run (while other cities keep serving) and
// resuming it before its next order changes nothing — virtual time means
// the skipped wall-clock never existed.
func TestPauseIsMetricsNeutral(t *testing.T) {
	specs, workloads := threeCities(43, algFactories["online"])
	frozen := specs[2].ID

	run := func(pause bool) map[string]*sim.Metrics {
		x, err := New(specs)
		if err != nil {
			t.Fatal(err)
		}
		if pause {
			if err := x.Admin().Pause(frozen); err != nil {
				t.Fatal(err)
			}
			cp := *workloads[frozen][0]
			if err := x.Submit(frozen, &cp); !errors.Is(err, platform.ErrPaused) {
				t.Fatalf("paused city accepted traffic: %v", err)
			}
			// Other cities keep serving while one is frozen.
			for _, spec := range specs[:2] {
				cp := *workloads[spec.ID][0]
				if err := x.Submit(spec.ID, &cp); err != nil {
					t.Fatal(err)
				}
				workloads[spec.ID] = workloads[spec.ID][1:]
			}
			if st, err := x.Admin().CityStats(frozen); err != nil || !st.Paused {
				t.Fatalf("frozen city stats: %+v, %v", st, err)
			}
			if err := x.Admin().Resume(frozen); err != nil {
				t.Fatal(err)
			}
		}
		m, err := x.Replay(workloads)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Run the plain arm first: the pause arm consumes workload prefixes.
	plain := run(false)
	paused := run(true)
	for _, spec := range specs {
		if stripWallClock(plain[spec.ID]) != stripWallClock(paused[spec.ID]) {
			t.Fatalf("pause changed city %s:\nplain:  %+v\npaused: %+v",
				spec.ID, *plain[spec.ID], *paused[spec.ID])
		}
	}
}

// TestJournalMergeDeterminism pins the multiplexer contract: two
// identical runs produce identical merged journals — same length, same
// city tags in the same order, structurally equal events — and the
// journal sink sees exactly the in-memory journal.
func TestJournalMergeDeterminism(t *testing.T) {
	capture := func() ([]CityEvent, []CityEvent) {
		specs, workloads := threeCities(57, algFactories["timeout"])
		var sunk []CityEvent
		x, err := New(specs, WithJournalSink(func(ev CityEvent) { sunk = append(sunk, ev) }))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := x.Replay(workloads); err != nil {
			t.Fatal(err)
		}
		return x.Journal(), sunk
	}
	j1, s1 := capture()
	j2, _ := capture()
	if len(j1) == 0 {
		t.Fatal("empty journal")
	}
	if len(s1) != len(j1) {
		t.Fatalf("sink saw %d events, journal holds %d", len(s1), len(j1))
	}
	if len(j1) != len(j2) {
		t.Fatalf("journal lengths diverged: %d vs %d", len(j1), len(j2))
	}
	for i := range j1 {
		if j1[i].City != j2[i].City || !sameEvent(j1[i].Event, j2[i].Event) {
			t.Fatalf("journal entry %d diverged: %s/%T vs %s/%T",
				i, j1[i].City, j1[i].Event, j2[i].City, j2[i].Event)
		}
		if s1[i].City != j1[i].City || !sameEvent(s1[i].Event, j1[i].Event) {
			t.Fatalf("sink entry %d is not the journal entry", i)
		}
	}
	// The merged journal partitions exactly into the per-city journals.
	specs, workloads := threeCities(57, algFactories["timeout"])
	x, err := New(specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Replay(workloads); err != nil {
		t.Fatal(err)
	}
	merged := x.Journal()
	perCity := make(map[string][]platform.Event)
	for _, ev := range merged {
		perCity[ev.City] = append(perCity[ev.City], ev.Event)
	}
	for _, spec := range specs {
		own, err := x.CityJournal(spec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(own) != len(perCity[spec.ID]) {
			t.Fatalf("city %s: merged view has %d events, own journal %d",
				spec.ID, len(perCity[spec.ID]), len(own))
		}
		for i := range own {
			if !sameEvent(own[i], perCity[spec.ID][i]) {
				t.Fatalf("city %s: journal entry %d diverged", spec.ID, i)
			}
		}
	}
}

// TestAdminStats pins the fleet observability fold: the aggregate is the
// Merge of every city's snapshot, and lifecycle flags combine correctly
// across the fleet.
func TestAdminStats(t *testing.T) {
	specs, workloads := threeCities(71, algFactories["online"])
	x, err := New(specs)
	if err != nil {
		t.Fatal(err)
	}
	st := x.Admin().Stats()
	if len(st.Cities) != 3 || st.Aggregate.Closed {
		t.Fatalf("fresh fleet stats: %+v", st)
	}
	if _, err := x.Replay(workloads); err != nil {
		t.Fatal(err)
	}
	st = x.Admin().Stats()
	if !st.Aggregate.Closed {
		t.Fatal("all cities closed but the aggregate is not")
	}
	var submitted, served int
	want := st.Cities[0].Stats
	for i, cs := range st.Cities {
		if cs.City != specs[i].ID {
			t.Fatalf("city %d out of routing order: %s", i, cs.City)
		}
		submitted += cs.Stats.Orders.Submitted
		served += cs.Stats.Orders.Served
		if i > 0 {
			want.Merge(cs.Stats)
		}
	}
	if st.Aggregate != want {
		t.Fatalf("aggregate is not the fold:\nagg:  %+v\nfold: %+v", st.Aggregate, want)
	}
	if st.Aggregate.Orders.Submitted != submitted || st.Aggregate.Orders.Served != served {
		t.Fatalf("aggregate ledger wrong: %+v (want %d/%d)", st.Aggregate.Orders, submitted, served)
	}
	if submitted == 0 || served == 0 {
		t.Fatalf("degenerate workload: submitted=%d served=%d", submitted, served)
	}
	if st.JournalEvents != len(x.Journal()) {
		t.Fatalf("journal length mismatch: %d vs %d", st.JournalEvents, len(x.Journal()))
	}
}

// TestCoordinatedTick pins the one-clock contract: a proxy Tick advances
// every running city to its next boundary and reports the latest time.
func TestCoordinatedTick(t *testing.T) {
	specs, _ := threeCities(83, algFactories["online"])
	for i := range specs {
		specs[i].Options = append(specs[i].Options, platform.WithTick(15))
	}
	x, err := New(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{15, 30} {
		got, err := x.Tick()
		if err != nil || got != want {
			t.Fatalf("tick %d = %v, %v (want %v)", i, got, err, want)
		}
	}
	if err := x.Admin().Pause(specs[0].ID); err != nil {
		t.Fatal(err)
	}
	if got, err := x.Tick(); err != nil || got != 45 {
		t.Fatalf("tick with a paused city = %v, %v", got, err)
	}
	if st, err := x.Admin().CityStats(specs[0].ID); err != nil || st.Clock != 30 {
		t.Fatalf("paused city clock moved: %+v, %v", st, err)
	}
	if st, err := x.Admin().CityStats(specs[1].ID); err != nil || st.Clock != 45 {
		t.Fatalf("running city clock = %+v, %v", st, err)
	}
	if _, err := x.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayUnknownCityDeterministic pins a fixed map-iteration leak:
// when the workload map names several cities the proxy does not own,
// Replay must always report the alphabetically first of them, not
// whichever one map iteration happened to surface. The repeated runs
// give Go's randomized map order every chance to expose a regression.
func TestReplayUnknownCityDeterministic(t *testing.T) {
	specs, workloads := threeCities(7, algFactories["online"])
	for _, id := range []string{"zz-city", "mm-city", "aa-city"} {
		workloads[id] = nil
	}
	const want = `proxy: unknown city: "aa-city"`
	for i := 0; i < 20; i++ {
		x, err := New(specs)
		if err != nil {
			t.Fatal(err)
		}
		_, err = x.Replay(workloads)
		if !errors.Is(err, ErrUnknownCity) {
			t.Fatalf("iteration %d: err = %v, want ErrUnknownCity", i, err)
		}
		if err.Error() != want {
			t.Fatalf("iteration %d: err = %q, want %q — unknown-city selection depends on map order",
				i, err.Error(), want)
		}
	}
}
