// Package proxy is the multi-city front tier of the reproduction: one
// Proxy owns N independent city Platforms, routes order streams to the
// right city, drives every city's periodic checks from one coordinated
// clock, and multiplexes the per-city event buses into a single tagged
// journal with a deterministic merge order. On top of it sits an
// admin/ops plane (per-city pause/resume, unified per-city and aggregated
// stats, an HA-style health prober) modeled on the Codis
// proxy/dashboard/HA split — where Codis shards one keyspace over N Redis
// instances behind one router, this proxy shards a dispatch service over
// N city simulations behind one API.
//
// Two properties make the front tier honest rather than decorative, and
// both are proven by bit-identity tests:
//
//   - Isolation: cities share nothing — each platform owns its network
//     handle, fleet clone and algorithm instance — so a proxy running N
//     cities yields, for every city, per-seed metrics bit-identical to
//     that city run alone on a standalone Platform, regardless of how the
//     other cities' traffic interleaves.
//   - Recoverability: every event each city ever emitted is recorded
//     synchronously (the platform observer hook — lossless, unbuffered,
//     in-order), and the admitted orders plus tick boundaries in that
//     journal are exactly the city's input sequence. A crashed city is
//     rebuilt by replaying its journal into a fresh platform; during
//     replay every re-emitted event is checked against the recording, so
//     recovery is not just believed deterministic but verified
//     event-by-event, and the resumed run's final metrics are
//     bit-identical to an uninterrupted one.
//
// The Proxy serializes all operations behind one mutex: callers may feed
// it from multiple goroutines, but the journal's merge order is the
// serialization order, so deterministic journals require a deterministic
// feed (one feeding goroutine, or the batch Replay).
package proxy

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"watter/internal/order"
	"watter/internal/platform"
	"watter/internal/roadnet"
	"watter/internal/sim"
)

// Routing and lifecycle sentinels (test with errors.Is).
var (
	// ErrClosed is returned by every operation after Proxy.Close.
	ErrClosed = errors.New("proxy: closed")
	// ErrUnknownCity is returned when a city ID matches no owned platform.
	ErrUnknownCity = errors.New("proxy: unknown city")
	// ErrCityDown is returned (wrapped, with the city named) when traffic
	// hits a crashed city and auto-restart is disabled — the operator must
	// Restart explicitly.
	ErrCityDown = errors.New("proxy: city down")
)

// CitySpec declares one city the proxy owns. The spec is a blueprint, not
// a live resource: the proxy builds a fresh platform from it at startup
// and again on every HA restart, so every field must be reusable.
type CitySpec struct {
	// ID names the city on the routing, admin and journal surfaces. IDs
	// must be unique and non-empty.
	ID string
	// Net is the city's travel-time oracle. It is shared across restarts
	// (networks are immutable or internally synchronized — see the
	// WithShards contract), never rebuilt.
	Net roadnet.Network
	// Workers are fleet prototypes: cloned on every (re)start so platform
	// incarnations never share mutable worker state, and a restart begins
	// from the same initial fleet the original run did.
	Workers []*order.Worker
	// NewAlgorithm builds a fresh dispatch policy per platform
	// incarnation. Algorithms are stateful (pool contents, schedules,
	// caches), so a restart must never reuse one; nil means the platform
	// default (WATTER-online). The factory must be deterministic — every
	// call must yield an identically-configured policy — or journal
	// replay cannot reproduce the recorded run.
	NewAlgorithm func() sim.Algorithm
	// Options are re-applied on every (re)start and must be pure
	// configuration (WithTick, WithConfig, WithPool, WithShards, ...).
	// Do not pass WithAlgorithm (stateful across restarts — use
	// NewAlgorithm) or WithObserver (the proxy appends its own journal
	// observer last, which would override it).
	Options []platform.Option
}

// CityEvent is one journal entry: a platform event tagged with the city
// that emitted it.
type CityEvent struct {
	City  string
	Event platform.Event
}

// Option configures a Proxy at construction; invalid values surface as
// errors from New.
type Option func(*config) error

type config struct {
	journalFn   func(CityEvent)
	autoRestart bool
}

// WithJournalSink installs a synchronous tap on the merged journal: fn is
// invoked for every tagged event, in merge order, on the goroutine that
// produced it (while the proxy lock is held — fn must be fast and must
// not call back into the proxy). The in-memory journal is kept either
// way; the sink is for mirroring it out (disk, message bus, dashboard).
func WithJournalSink(fn func(CityEvent)) Option {
	return func(c *config) error {
		if fn == nil {
			return errors.New("proxy: nil journal sink")
		}
		c.journalFn = fn
		return nil
	}
}

// WithAutoRestart toggles self-healing (default on): when traffic or a
// probe finds a crashed city, the proxy restarts it from its journal
// inline. Disabled, crashed cities stay down — Submit returns ErrCityDown
// — until Admin.Restart.
func WithAutoRestart(on bool) Option {
	return func(c *config) error {
		c.autoRestart = on
		return nil
	}
}

// city is one owned platform plus its front-tier bookkeeping.
type city struct {
	id    string
	index int // position in the deterministic routing order
	spec  CitySpec
	plat  *platform.Platform
	// journal is this city's complete recorded event sequence — the
	// restart source of truth. It only grows; the merged journal holds
	// the same events tagged and interleaved.
	journal  []platform.Event
	paused   bool
	down     bool
	restarts int
	// replay is non-nil while a restart is replaying the journal: it
	// suppresses re-recording and verifies every re-emitted event against
	// the recording.
	replay *replayCursor
}

// Proxy is the multi-city front tier. Safe for concurrent use; all
// operations serialize behind one mutex.
type Proxy struct {
	mu          sync.Mutex
	cities      map[string]*city
	ids         []string // deterministic iteration order = spec order
	journal     []CityEvent
	journalFn   func(CityEvent)
	autoRestart bool
	closed      bool
	closeM      map[string]*sim.Metrics
	closeErr    error
}

// New builds a proxy owning one platform per spec. Specs are validated
// (at least one city, unique non-empty IDs) and every city's platform is
// constructed eagerly, so configuration errors surface here rather than
// at first traffic.
func New(specs []CitySpec, opts ...Option) (*Proxy, error) {
	if len(specs) == 0 {
		return nil, errors.New("proxy: no cities")
	}
	c := config{autoRestart: true}
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("proxy: nil option")
		}
		if err := opt(&c); err != nil {
			return nil, err
		}
	}
	x := &Proxy{
		cities:      make(map[string]*city, len(specs)),
		journalFn:   c.journalFn,
		autoRestart: c.autoRestart,
	}
	for i, spec := range specs {
		if spec.ID == "" {
			return nil, fmt.Errorf("proxy: city %d has an empty ID", i)
		}
		if _, dup := x.cities[spec.ID]; dup {
			return nil, fmt.Errorf("proxy: duplicate city ID %q", spec.ID)
		}
		ct := &city{id: spec.ID, index: i, spec: spec}
		plat, err := x.newPlatform(ct)
		if err != nil {
			return nil, fmt.Errorf("proxy: city %q: %w", spec.ID, err)
		}
		ct.plat = plat
		x.cities[spec.ID] = ct
		x.ids = append(x.ids, spec.ID)
	}
	return x, nil
}

// newPlatform stands up a fresh platform incarnation for a city: cloned
// fleet, fresh algorithm, the spec's options, and the proxy's journal
// observer appended last so it cannot be overridden.
func (x *Proxy) newPlatform(ct *city) (*platform.Platform, error) {
	ws := make([]*order.Worker, len(ct.spec.Workers))
	for i, w := range ct.spec.Workers {
		if w == nil {
			return nil, fmt.Errorf("worker %d is nil", i)
		}
		cp := *w
		ws[i] = &cp
	}
	opts := make([]platform.Option, 0, len(ct.spec.Options)+2)
	opts = append(opts, ct.spec.Options...)
	if ct.spec.NewAlgorithm != nil {
		alg := ct.spec.NewAlgorithm()
		if alg == nil {
			return nil, errors.New("NewAlgorithm returned nil")
		}
		opts = append(opts, platform.WithAlgorithm(alg))
	}
	opts = append(opts, platform.WithObserver(func(ev platform.Event) { x.record(ct, ev) }))
	return platform.New(ct.spec.Net, ws, opts...)
}

// record is the journal hook: invoked synchronously by a city's platform
// for every event, under the proxy lock (all platform calls happen inside
// locked proxy methods), so the merged journal's order is exactly the
// serialization order of proxy operations — deterministic for any
// deterministic feed. During a restart's replay it verifies instead of
// recording.
func (x *Proxy) record(ct *city, ev platform.Event) {
	if ct.replay != nil {
		ct.replay.check(ev)
		return
	}
	ct.journal = append(ct.journal, ev)
	tagged := CityEvent{City: ct.id, Event: ev}
	x.journal = append(x.journal, tagged)
	if x.journalFn != nil {
		x.journalFn(tagged)
	}
}

// lookupLocked resolves a city ID.
func (x *Proxy) lookupLocked(cityID string) (*city, error) {
	ct := x.cities[cityID]
	if ct == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCity, cityID)
	}
	return ct, nil
}

// Submit routes one order to its city. Orders obey the platform's
// streaming contract per city (validated, non-decreasing release within
// the city); different cities' streams interleave freely. A paused city
// refuses with platform.ErrPaused. Traffic hitting a crashed city either
// heals it first (auto-restart: the journal is replayed into a fresh
// platform, then the order goes through) or reports ErrCityDown.
func (x *Proxy) Submit(cityID string, o *order.Order) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return ErrClosed
	}
	ct, err := x.lookupLocked(cityID)
	if err != nil {
		return err
	}
	if ct.paused {
		return fmt.Errorf("proxy: city %q: %w", cityID, platform.ErrPaused)
	}
	if err := x.healLocked(ct); err != nil {
		return err
	}
	return ct.plat.Submit(o)
}

// healLocked brings a city back to a servable platform, or explains why
// it can't. It is the traffic-path wedge detector: a platform that
// reports closed while the proxy believes the city is running means the
// city died under us.
func (x *Proxy) healLocked(ct *city) error {
	if !ct.down && !ct.plat.Stats().Closed {
		return nil
	}
	ct.down = true
	if !x.autoRestart {
		return fmt.Errorf("%w: %q (auto-restart disabled; use Admin.Restart)", ErrCityDown, ct.id)
	}
	return x.restartLocked(ct)
}

// Tick advances the coordinated clock: every running city fires its next
// periodic check, in the deterministic routing order. Paused cities skip
// (their virtual clock freezes; skipped boundaries fire on resume or at
// the next submit/close, so nothing is lost); crashed cities heal first
// under auto-restart. Returns the latest simulation time ticked — with a
// uniform Δt across cities, the common boundary they all reached.
func (x *Proxy) Tick() (float64, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return 0, ErrClosed
	}
	var latest float64
	for _, id := range x.ids {
		ct := x.cities[id]
		if ct.paused {
			continue
		}
		if ct.down && !x.autoRestart {
			continue // stays down until the operator restarts it
		}
		if err := x.healLocked(ct); err != nil {
			return 0, err
		}
		t, err := ct.plat.Tick()
		if err != nil {
			return 0, fmt.Errorf("proxy: city %q: %w", id, err)
		}
		if t > latest {
			latest = t
		}
	}
	return latest, nil
}

// Replay is the batch entry point: every city's pre-materialized workload
// feeds through the router in one global release-ordered interleaving
// (ties resolve by routing order, so the merge is deterministic), then
// the proxy closes and returns per-city final metrics. Orders are cloned;
// the caller's slices are never touched. Cities absent from workloads
// still run (they just drain empty at close).
func (x *Proxy) Replay(workloads map[string][]*order.Order) (map[string]*sim.Metrics, error) {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return nil, ErrClosed
	}
	type entry struct {
		city *city
		o    *order.Order
	}
	var feed []entry
	// Deterministic construction order: cities in routing order, orders in
	// slice order; the stable sort by release then keeps ties in exactly
	// this order.
	for _, id := range x.ids {
		ct := x.cities[id]
		for i, o := range workloads[id] {
			if o == nil {
				x.mu.Unlock()
				return nil, fmt.Errorf("proxy: city %q: order %d is nil", id, i)
			}
			cp := *o
			feed = append(feed, entry{city: ct, o: &cp})
		}
	}
	// Collect unknown cities and report the alphabetically first, so the
	// error a caller sees never depends on map iteration order.
	var unknown []string
	for id := range workloads {
		if _, ok := x.cities[id]; !ok {
			unknown = append(unknown, id)
		}
	}
	sort.Strings(unknown)
	if len(unknown) > 0 {
		x.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownCity, unknown[0])
	}
	sort.SliceStable(feed, func(i, j int) bool { return feed[i].o.Release < feed[j].o.Release })
	x.mu.Unlock()

	for _, e := range feed {
		if err := x.Submit(e.city.id, e.o); err != nil {
			return nil, fmt.Errorf("proxy: city %q: %w", e.city.id, err)
		}
	}
	return x.Close()
}

// Close drains every city (in routing order), memoizes and returns the
// per-city final metrics. Like Platform.Close it is idempotent: later
// calls return the first call's exact result. Crashed cities are healed
// first under auto-restart so their pooled orders still resolve; with
// auto-restart off they contribute their abort error instead of metrics.
func (x *Proxy) Close() (map[string]*sim.Metrics, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.closeLocked()
}

func (x *Proxy) closeLocked() (map[string]*sim.Metrics, error) {
	if x.closed {
		return x.closeM, x.closeErr
	}
	out := make(map[string]*sim.Metrics, len(x.ids))
	var errs []error
	for _, id := range x.ids {
		ct := x.cities[id]
		if ct.down || ct.plat.Stats().Closed {
			ct.down = true
			if x.autoRestart {
				if err := x.restartLocked(ct); err != nil {
					errs = append(errs, err)
					continue
				}
			}
		}
		m, err := ct.plat.Close()
		if err != nil {
			errs = append(errs, fmt.Errorf("proxy: city %q: %w", id, err))
			continue
		}
		out[id] = m
	}
	// Flip closed only after draining: record() consults no closed flag,
	// and the drains above must still journal their tail events.
	x.closed = true
	x.closeM = out
	x.closeErr = errors.Join(errs...)
	return x.closeM, x.closeErr
}

// restartLocked is HA recovery: tear the old incarnation down (Abort — a
// crashed platform is already dead; a live one being rolling-restarted
// must not drain, which would dispatch state the replay will rebuild),
// build a fresh platform from the spec, and replay the city's recorded
// journal into it. Every event the replay re-emits is verified against
// the recording — divergence fails the restart rather than resuming a
// corrupted city. The journal itself is never touched: it remains the
// append-only history across any number of incarnations.
func (x *Proxy) restartLocked(ct *city) error {
	if ct.plat != nil {
		ct.plat.Abort()
	}
	plat, err := x.newPlatform(ct)
	if err != nil {
		ct.down = true
		return fmt.Errorf("proxy: restart %q: %w", ct.id, err)
	}
	cur := &replayCursor{journal: ct.journal}
	ct.replay = cur
	ct.plat = plat
	rerr := replayJournal(plat, ct.journal)
	ct.replay = nil
	if rerr == nil {
		rerr = cur.done()
	}
	if rerr != nil {
		ct.down = true
		return fmt.Errorf("proxy: restart %q: journal replay: %w", ct.id, rerr)
	}
	ct.down = false
	ct.restarts++
	if ct.paused {
		// Replay needed a live platform; re-freeze now that it's rebuilt.
		_ = plat.Pause()
	}
	return nil
}

// Cities returns the city IDs in routing order.
func (x *Proxy) Cities() []string {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]string, len(x.ids))
	copy(out, x.ids)
	return out
}

// Journal returns a snapshot of the merged tagged journal.
func (x *Proxy) Journal() []CityEvent {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]CityEvent, len(x.journal))
	copy(out, x.journal)
	return out
}

// CityJournal returns a snapshot of one city's recorded event sequence —
// the exact input a restart replays.
func (x *Proxy) CityJournal(cityID string) ([]platform.Event, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	ct, err := x.lookupLocked(cityID)
	if err != nil {
		return nil, err
	}
	out := make([]platform.Event, len(ct.journal))
	copy(out, ct.journal)
	return out, nil
}
