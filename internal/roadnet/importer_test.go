package roadnet

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"strings"
	"testing"

	"watter/internal/geo"
)

// TestDIMACSRoundTrip pins the importer's losslessness contract: a
// generated city, imported and re-exported, re-imports to a graph that
// answers every query bit-identically and re-exports to identical bytes.
func TestDIMACSRoundTrip(t *testing.T) {
	var gr, co bytes.Buffer
	if err := WriteDIMACSGrid(&gr, &co, 7, 6, 150, 8, 0.4, 42); err != nil {
		t.Fatal(err)
	}
	g1, err := ReadDIMACS(bytes.NewReader(gr.Bytes()), bytes.NewReader(co.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != 42 {
		t.Fatalf("nodes = %d, want 42", g1.NumNodes())
	}
	var gr1, co1 bytes.Buffer
	if err := g1.WriteDIMACS(&gr1, &co1); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadDIMACS(bytes.NewReader(gr1.Bytes()), bytes.NewReader(co1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var gr2, co2 bytes.Buffer
	if err := g2.WriteDIMACS(&gr2, &co2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gr1.Bytes(), gr2.Bytes()) || !bytes.Equal(co1.Bytes(), co2.Bytes()) {
		t.Fatal("export -> import -> export is not byte-stable")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		from := geo.NodeID(rng.Intn(g1.NumNodes()))
		to := geo.NodeID(rng.Intn(g1.NumNodes()))
		a, b := g1.Cost(from, to), g2.Cost(from, to)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("cost(%d,%d): %v vs %v across round trip", from, to, a, b)
		}
		if ref := g1.CostSSSP(from, to); math.Float64bits(a) != math.Float64bits(ref) {
			t.Fatalf("cost(%d,%d) = %v, reference %v", from, to, a, ref)
		}
	}
}

// TestDIMACSWeights checks the centisecond contract on an unjittered grid:
// every adjacent-pair cost is exactly the base weight rounded once through
// float32.
func TestDIMACSWeights(t *testing.T) {
	var gr, co bytes.Buffer
	if err := WriteDIMACSGrid(&gr, &co, 4, 3, 145, 7, 0, 1); err != nil {
		t.Fatal(err)
	}
	g, err := ReadDIMACS(bytes.NewReader(gr.Bytes()), bytes.NewReader(co.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(float32(float64(int64(math.Round(145.0/7*100))) / 100))
	if got := g.Cost(0, 1); got != want {
		t.Fatalf("adjacent cost = %v, want %v", got, want)
	}
	if p := g.Coord(5); p.X != 145 || p.Y != 145 {
		t.Fatalf("coord(5) = %+v, want (145,145)", p)
	}
}

// TestDIMACSFixture checks the committed testdata fixture imports and,
// crucially, that regenerating it in-memory reproduces the committed bytes
// — the generator is the fixture's single source of truth (make fixtures).
func TestDIMACSFixture(t *testing.T) {
	grB, err := os.ReadFile("testdata/grid6x5.gr")
	if err != nil {
		t.Fatal(err)
	}
	coB, err := os.ReadFile("testdata/grid6x5.co")
	if err != nil {
		t.Fatal(err)
	}
	var gr, co bytes.Buffer
	if err := WriteDIMACSGrid(&gr, &co, 6, 5, 150, 8, 0.4, 42); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(grB, gr.Bytes()) || !bytes.Equal(coB, co.Bytes()) {
		t.Fatal("testdata/grid6x5.{gr,co} drifted from the generator; run `make fixtures`")
	}
	g, err := ReadDIMACS(bytes.NewReader(grB), bytes.NewReader(coB))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 30 {
		t.Fatalf("fixture nodes = %d, want 30", g.NumNodes())
	}
	if len(g.adjNode) != 2*(5*5+6*4) {
		t.Fatalf("fixture arcs = %d, want %d", len(g.adjNode), 2*(5*5+6*4))
	}
}

// TestDIMACSErrors drives the malformed-input paths.
func TestDIMACSErrors(t *testing.T) {
	co3 := "v 1 0 0\nv 2 100 0\nv 3 200 0\n"
	cases := []struct {
		name, gr, co, want string
	}{
		{"no p line", "a 1 2 5\n", co3, "arc before p line"},
		{"bad p line", "p sp x 1\n", co3, "bad node count"},
		{"arc out of range", "p sp 3 1\na 1 9 5\n", co3, "outside [1,3]"},
		{"negative weight", "p sp 3 1\na 1 2 -5\n", co3, "negative weight"},
		{"arc count mismatch", "p sp 3 2\na 1 2 5\n", co3, "declares 2 arcs, has 1"},
		{"missing coordinate", "p sp 3 1\na 1 2 5\n", "v 1 0 0\nv 3 200 0\n", "covers 2 of 3"},
		{"coord out of range", "p sp 3 1\na 1 2 5\n", "v 7 0 0\n", "outside [1,3]"},
		{"node count clash", "p sp 3 1\na 1 2 5\n", "p aux sp co 4\n" + co3, "declares 4 nodes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadDIMACS(strings.NewReader(c.gr), strings.NewReader(c.co))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}
