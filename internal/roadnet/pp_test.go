package roadnet

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"watter/internal/geo"
)

// twoComponentCity builds a graph whose left and right halves are perturbed
// grids with no edges between them: every cross-component distance is +Inf.
// The halves are interleaved in coordinate space so grid-index cells mix
// nodes from both components (the shape that exposed the unreachable-worker
// dispatch bug).
func twoComponentCity(w, h int, seed int64) (*Graph, int) {
	rng := rand.New(rand.NewSource(seed))
	var b GraphBuilder
	for comp := 0; comp < 2; comp++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				// Offset the second component by half a cell: same bounding
				// box, interleaved cells, zero shared edges.
				off := float64(comp) * 50
				b.AddNode(geo.Point{X: float64(x)*100 + off, Y: float64(y)*100 + off})
			}
		}
	}
	node := func(comp, x, y int) geo.NodeID { return geo.NodeID(comp*w*h + y*w + x) }
	for comp := 0; comp < 2; comp++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				sec := 10 * (1 + rng.Float64())
				if x+1 < w {
					b.AddBidirectional(node(comp, x, y), node(comp, x+1, y), sec)
				}
				if y+1 < h {
					b.AddBidirectional(node(comp, x, y), node(comp, x, y+1), 10*(1+rng.Float64()))
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g, w * h
}

// TestCostPPMatchesSSSPRandomGrids is the engine's exactness property test:
// on random jittered grid cities of assorted sizes (with and without
// landmarks), CostPP must agree bit-for-bit with the cached full-Dijkstra
// reference for every sampled pair.
func TestCostPPMatchesSSSPRandomGrids(t *testing.T) {
	sizes := [][2]int{{4, 4}, {5, 7}, {8, 8}, {12, 9}, {15, 15}}
	for seed := int64(1); seed <= 10; seed++ {
		wh := sizes[int(seed)%len(sizes)]
		g := NewPerturbedGrid(wh[0], wh[1], 150, 8, 0.4, seed)
		rng := rand.New(rand.NewSource(seed * 977))
		n := g.NumNodes()
		for q := 0; q < 300; q++ {
			from := geo.NodeID(rng.Intn(n))
			to := geo.NodeID(rng.Intn(n))
			got := g.CostPP(from, to)
			want := g.CostSSSP(from, to)
			if got != want {
				t.Fatalf("seed %d: CostPP(%d,%d) = %v, CostSSSP = %v (diff %g)",
					seed, from, to, got, want, got-want)
			}
		}
	}
}

// TestCostPPUnreachablePairs checks the engine on disconnected graphs:
// cross-component queries must return +Inf exactly like the reference, and
// within-component queries must still match bit-for-bit.
func TestCostPPUnreachablePairs(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g, half := twoComponentCity(6, 5, seed)
		rng := rand.New(rand.NewSource(seed * 31))
		for q := 0; q < 200; q++ {
			from := geo.NodeID(rng.Intn(2 * half))
			to := geo.NodeID(rng.Intn(2 * half))
			got := g.CostPP(from, to)
			want := g.CostSSSP(from, to)
			if got != want {
				t.Fatalf("seed %d: CostPP(%d,%d) = %v, want %v", seed, from, to, got, want)
			}
			crossComponent := (int(from) < half) != (int(to) < half)
			if crossComponent && !math.IsInf(got, 1) {
				t.Fatalf("cross-component pair (%d,%d) got finite %v", from, to, got)
			}
		}
	}
}

// TestCostMatrixMatchesSSSP: the batched many-to-many API must agree
// bit-for-bit with pairwise reference queries, including duplicate sources,
// duplicate targets, source==target and unreachable pairs.
func TestCostMatrixMatchesSSSP(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		var g *Graph
		var n int
		if seed%2 == 0 {
			g = NewPerturbedGrid(9, 11, 150, 8, 0.35, seed)
			n = g.NumNodes()
		} else {
			g, n = twoComponentCity(5, 5, seed)
			n *= 2
		}
		rng := rand.New(rand.NewSource(seed * 131))
		for rep := 0; rep < 20; rep++ {
			ns := 1 + rng.Intn(8)
			nt := 1 + rng.Intn(8)
			sources := make([]geo.NodeID, ns)
			targets := make([]geo.NodeID, nt)
			for i := range sources {
				sources[i] = geo.NodeID(rng.Intn(n))
			}
			for j := range targets {
				targets[j] = geo.NodeID(rng.Intn(n))
			}
			// Force duplicates and a source that is also a target.
			if ns > 2 {
				sources[ns-1] = sources[0]
			}
			if nt > 2 {
				targets[nt-1] = targets[0]
			}
			if nt > 1 {
				targets[1] = sources[0]
			}
			m := g.CostMatrix(sources, targets)
			for i, s := range sources {
				for j, tt := range targets {
					want := g.CostSSSP(s, tt)
					if s == tt {
						want = 0
					}
					if m[i][j] != want {
						t.Fatalf("seed %d: matrix[%d][%d] (cost %d->%d) = %v, want %v",
							seed, i, j, s, tt, m[i][j], want)
					}
				}
			}
		}
	}
}

// TestFillCostMatrixFallback: the helper must produce identical results for
// a closed-form network (pairwise fallback) and a Graph (batched engine).
func TestFillCostMatrixFallback(t *testing.T) {
	city := NewGridCity(8, 8, 100, 10)
	g := city.AsGraph()
	sources := []geo.NodeID{0, 5, 17, 17, 63}
	targets := []geo.NodeID{3, 0, 40, 3}
	nt := len(targets)
	closed := make([]float64, len(sources)*nt)
	explicit := make([]float64, len(sources)*nt)
	FillCostMatrix(city, sources, targets, closed)
	FillCostMatrix(g, sources, targets, explicit)
	for i := range closed {
		if closed[i] != explicit[i] {
			t.Fatalf("slot %d: closed-form %v vs graph engine %v", i, closed[i], explicit[i])
		}
	}
}

// TestFillCostMatrixWithinBudget pins the budget contract: every entry
// whose true cost is <= maxCost must be exact (bit-identical to the
// reference); beyond-budget entries may be either exact or +Inf.
func TestFillCostMatrixWithinBudget(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := NewPerturbedGrid(10, 10, 150, 8, 0.3, seed)
		rng := rand.New(rand.NewSource(seed * 389))
		n := g.NumNodes()
		for rep := 0; rep < 15; rep++ {
			sources := make([]geo.NodeID, 4)
			targets := make([]geo.NodeID, 5)
			for i := range sources {
				sources[i] = geo.NodeID(rng.Intn(n))
			}
			for j := range targets {
				targets[j] = geo.NodeID(rng.Intn(n))
			}
			budget := float64(rng.Intn(300))
			out := make([]float64, len(sources)*len(targets))
			FillCostMatrixWithin(g, sources, targets, budget, out)
			for i, s := range sources {
				for j, tt := range targets {
					got := out[i*len(targets)+j]
					want := g.CostSSSP(s, tt)
					if want <= budget && got != want {
						t.Fatalf("seed %d: in-budget entry (%d->%d, budget %v) = %v, want %v",
							seed, s, tt, budget, got, want)
					}
					if want > budget && got != want && !math.IsInf(got, 1) {
						t.Fatalf("seed %d: beyond-budget entry (%d->%d) = %v, want %v or +Inf",
							seed, s, tt, got, want)
					}
				}
			}
		}
	}
}

// TestCostPPConcurrent hammers the pooled-scratch engine from many
// goroutines under -race, cross-checking against the closed form.
func TestCostPPConcurrent(t *testing.T) {
	city := NewGridCity(12, 12, 100, 5)
	g := city.AsGraph()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			n := g.NumNodes()
			for q := 0; q < 300; q++ {
				from := geo.NodeID(rng.Intn(n))
				to := geo.NodeID(rng.Intn(n))
				if got, want := g.CostPP(from, to), city.Cost(from, to); got != want {
					select {
					case errs <- "engine mismatch under concurrency":
					default:
					}
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
}

// TestGraphCacheLRUHotSource is the FIFO->LRU regression test: a source
// that is re-queried between misses must survive eviction pressure that
// would have expelled it under insertion-order eviction.
func TestGraphCacheLRUHotSource(t *testing.T) {
	g := NewPerturbedGrid(6, 6, 100, 10, 0.2, 5)
	g.SetCacheSize(3)
	hot := geo.NodeID(0)
	g.CostSSSP(hot, 1)
	for src := 1; src < 20; src++ {
		g.CostSSSP(geo.NodeID(src), geo.NodeID((src+3)%g.NumNodes()))
		g.CostSSSP(hot, geo.NodeID(src%g.NumNodes())) // touch the hot source
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.cache) > 3 {
		t.Fatalf("cache holds %d entries, cap 3", len(g.cache))
	}
	if _, ok := g.cache[hot]; !ok {
		t.Fatal("hot source evicted despite constant hits (FIFO, not LRU)")
	}
}

// TestLandmarksBuilt sanity-checks the preprocessing: a mid-size graph gets
// landmarks, a tiny one skips them, and bounds are never negative.
func TestLandmarksBuilt(t *testing.T) {
	g := NewPerturbedGrid(10, 10, 150, 8, 0.3, 2)
	if len(g.landmarks) == 0 {
		t.Fatal("100-node graph built without landmarks")
	}
	if len(g.landFrom) != len(g.landmarks) || len(g.landTo) != len(g.landmarks) {
		t.Fatalf("landmark arrays misaligned: %d/%d/%d", len(g.landmarks), len(g.landFrom), len(g.landTo))
	}
	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 200; q++ {
		v := geo.NodeID(rng.Intn(g.NumNodes()))
		u := geo.NodeID(rng.Intn(g.NumNodes()))
		lb := g.altBound(v, u)
		if lb < 0 {
			t.Fatalf("negative ALT bound %v", lb)
		}
		if d := g.CostSSSP(v, u); lb > d {
			t.Fatalf("ALT bound %v exceeds true distance %v for (%d,%d)", lb, d, v, u)
		}
	}
	tiny := NewPerturbedGrid(3, 3, 100, 10, 0, 1)
	if len(tiny.landmarks) != 0 {
		t.Fatalf("9-node graph built %d landmarks, want 0", len(tiny.landmarks))
	}
}

func BenchmarkCostPP(b *testing.B) {
	g := NewPerturbedGrid(40, 40, 200, 8, 0.2, 9)
	n := geo.NodeID(g.NumNodes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.CostPP(geo.NodeID(i)%n, geo.NodeID(i*13+7)%n)
	}
}

// BenchmarkLegMatrixEngine measures the planner leg-matrix workload (8
// nearby events, 8x8 matrix) on the batched engine ...
func BenchmarkLegMatrixEngine(b *testing.B) {
	g := NewPerturbedGrid(40, 40, 200, 8, 0.2, 9)
	nodes, out := legWorkload(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grp := nodes[i%len(nodes)]
		g.costMatrixInto(grp, grp, math.Inf(1), out)
	}
}

// ... while BenchmarkLegMatrixColdSSSP is the same workload on the legacy
// path with a cold cache (every source misses, as on any city with more
// nodes than the LRU holds) ...
func BenchmarkLegMatrixColdSSSP(b *testing.B) {
	g := NewPerturbedGrid(40, 40, 200, 8, 0.2, 9)
	nodes, out := legWorkload(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grp := nodes[i%len(nodes)]
		g.FlushCache()
		for a, s := range grp {
			for t, d := range grp {
				out[a*len(grp)+t] = g.CostSSSP(s, d)
			}
		}
	}
}

// ... and BenchmarkLegMatrixWarmSSSP keeps the LRU across groups — the best
// case the legacy path achieved on small cities with recurring locations.
func BenchmarkLegMatrixWarmSSSP(b *testing.B) {
	g := NewPerturbedGrid(40, 40, 200, 8, 0.2, 9)
	nodes, out := legWorkload(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grp := nodes[i%len(nodes)]
		for a, s := range grp {
			for t, d := range grp {
				out[a*len(grp)+t] = g.CostSSSP(s, d)
			}
		}
	}
}

// legWorkload samples 64 groups of 8 spatially clustered nodes, the shape
// of the shareability planner's pickup/dropoff leg matrices.
func legWorkload(g *Graph) ([][]geo.NodeID, []float64) {
	rng := rand.New(rand.NewSource(17))
	n := g.NumNodes()
	side := int(math.Sqrt(float64(n)))
	groups := make([][]geo.NodeID, 64)
	for i := range groups {
		cx, cy := rng.Intn(side), rng.Intn(side)
		grp := make([]geo.NodeID, 8)
		for j := range grp {
			x := clampInt(cx+rng.Intn(9)-4, 0, side-1)
			y := clampInt(cy+rng.Intn(9)-4, 0, side-1)
			grp[j] = geo.NodeID(y*side + x)
		}
		groups[i] = grp
	}
	return groups, make([]float64, 64)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
