package roadnet

import (
	"math"

	"watter/internal/geo"
)

// Contraction-hierarchy query engine (hierarchy built by contract.go).
//
// The query is the same exact multi-target A* as pp.go's searchFrom, run
// over the shortcut-augmented graph with a two-phase state space: state
// (v, climb) relaxes upward edges (rank-increasing, plus the core plateau)
// and may switch to (w, descend) over a downward edge; state (v, descend)
// relaxes downward edges only. Every minimal float32 fold is achieved by
// some climb-then-descend path (contract.go's witness margins guarantee a
// fold-dominating replacement exists whenever a contraction removes a
// path shape), and every state label *is* an exact float32 fold of real
// original edges — a shortcut is relaxed by unpacking it back to its
// original-edge sequence and folding in path order. So the search needs
// no new exactness argument: the ALT heuristic is admissible for the fold
// metric over all real paths, a superset of the two-phase paths, and the
// finalization rule is inherited from searchFrom verbatim. The phases are
// purely pruning: the climb frontier stays on the small up-cone instead of
// reflooding the Dijkstra ball, which is where the size-independent query
// cost comes from. On top of the phases sit three more exact prunes: the
// heuristic runs with chBound's weight-based hop-budget deflation instead
// of ALT's node-count slack (initCHSlack), per-edge fold lower bounds skip
// relaxations before unpacking anything, and single-target queries prime
// the skip threshold from the landmark upper bound (ubHint) so pruning
// starts at the first pop.

// chScratch is the pooled per-query CH search state: generation-stamped
// two-phase distance labels (state = node for climbing, node+n for
// descending), the shared heuristic cache, the frontier heap, the shortcut
// unpack stack, and the same target bookkeeping as ppScratch.
//
//det:scratch pooled per-query CH search state; arrays are generation-stamped and reused across queries
type chScratch struct {
	dist []float32 // len 2n: tentative fold per (node, phase) state
	gen  []uint32
	hval []float64 // heuristic cache, per node (phases share it)
	hgen []uint32
	cur  uint32
	hcur uint32
	heap ppHeap

	// Target descent cone: the set of nodes from which some target is
	// reachable by downward edges alone, marked by walking the reverse-down
	// CSR from each target. Restricting the descend phase to the cone is
	// lossless (every down-path to a target stays inside it by definition)
	// and is what keeps the search on climb-cone x target-cone instead of
	// reflooding the city. The cone's incoming down edges are also bucketed
	// by tail node (tFirst/tNext/tEdge form per-node linked lists), so the
	// search relaxes exactly the useful down edges instead of scanning a
	// high-rank node's entire down list against the marks. Computed once
	// per target-set epoch, so a matrix's sources share one marking pass.
	coneMark []uint32
	coneQ    []int32
	coneEp   uint32
	tStamp   []uint32
	tFirst   []int32
	// Packed relax inputs per bucketed edge, copied out of the arena once
	// per target epoch so the search never touches the arena for a
	// transition/descend relaxation that fails the prefilter.
	tPack []coneEdge

	uniq    []geo.NodeID
	res     []float64
	pending []int
	colIdx  []int
}

//det:hotalloc pool miss or first query after a graph grows; steady state reuses pooled arrays
func (g *Graph) getCHScratch() *chScratch {
	sc, _ := g.chPool.Get().(*chScratch)
	if sc == nil {
		sc = &chScratch{}
	}
	if n := len(g.coords); len(sc.dist) < 2*n {
		sc.dist = make([]float32, 2*n)
		sc.gen = make([]uint32, 2*n)
		sc.hval = make([]float64, n)
		sc.hgen = make([]uint32, n)
		sc.coneMark = make([]uint32, n)
		sc.tStamp = make([]uint32, n)
		sc.tFirst = make([]int32, n)
		sc.cur = 0
		sc.hcur = 0
		sc.coneEp = 0
	}
	return sc
}

func (sc *chScratch) nextGen() {
	sc.cur++
	if sc.cur == 0 {
		for i := range sc.gen {
			sc.gen[i] = 0
		}
		sc.cur = 1
	}
	sc.heap = sc.heap[:0]
}

func (sc *chScratch) newTargetEpoch() {
	sc.hcur++
	if sc.hcur == 0 {
		for i := range sc.hgen {
			sc.hgen[i] = 0
		}
		for i := range sc.coneMark {
			sc.coneMark[i] = 0
		}
		for i := range sc.tStamp {
			sc.tStamp[i] = 0
		}
		sc.coneEp = 0
		sc.hcur = 1
	}
}

// coneEdge is one bucketed cone-incoming edge: the arena index (for the
// fold), the intrusive next pointer of its tail-node bucket, and the packed
// relax inputs.
type coneEdge struct {
	ei, next int32
	to       geo.NodeID
	w, lbm   float32
}

// buildCone marks the union of the targets' descent cones under the
// current target epoch (a node is marked iff some target is reachable
// from it by downward edges alone).
func (g *Graph) buildCone(sc *chScratch) {
	h := g.ch
	sc.coneQ = sc.coneQ[:0]
	for _, t := range sc.uniq {
		if sc.coneMark[t] != sc.hcur {
			sc.coneMark[t] = sc.hcur
			//det:hotalloc pooled scratch retains capacity across queries; grows only on first use
			sc.coneQ = append(sc.coneQ, int32(t))
		}
	}
	sc.tPack = sc.tPack[:0]
	for qi := 0; qi < len(sc.coneQ); qi++ {
		x := sc.coneQ[qi]
		for i := h.dnRevHead[x]; i < h.dnRevHead[x+1]; i++ {
			ei := h.dnRevEdge[i]
			e := &h.edges[ei]
			f := e.from
			// Bucket this cone-incoming edge under its tail node.
			if sc.tStamp[f] != sc.hcur {
				sc.tStamp[f] = sc.hcur
				sc.tFirst[f] = -1
			}
			//det:hotalloc pooled scratch retains capacity across queries; grows only on first use
			sc.tPack = append(sc.tPack, coneEdge{
				ei: ei, next: sc.tFirst[f], to: e.to,
				w: h.wLo[ei], lbm: h.lbmLo[ei],
			})
			sc.tFirst[f] = int32(len(sc.tPack) - 1)
			if sc.coneMark[f] != sc.hcur {
				sc.coneMark[f] = sc.hcur
				sc.coneQ = append(sc.coneQ, int32(f))
			}
		}
	}
	sc.coneEp = sc.hcur
}

// chFold extends the float32 fold d across arena edge ei over the edge's
// flattened original-weight sequence, in path order — the exact additions
// the reference Dijkstra performs along the unpacked path.
func (g *Graph) chFold(d float32, ei int32) float32 {
	e := &g.ch.edges[ei]
	for _, w := range g.ch.leafW[e.leafOff : e.leafOff+e.hops] {
		d += w
	}
	return d
}

// chBound is altBound with the hierarchy's (usually much tighter) fold-error
// deflation from initCHSlack. Identical +Inf semantics: an infinite bound is
// an exact unreachability proof, and the Inf-Inf NaN is rejected by the
// comparisons.
func (g *Graph) chBound(v, t geo.NodeID) float64 {
	var lb float64
	for i := range g.landmarks {
		if b := g.landTo[i][v] - g.landTo[i][t]; b > lb {
			lb = b
		}
		if b := g.landFrom[i][t] - g.landFrom[i][v]; b > lb {
			lb = b
		}
	}
	if lb <= 0 {
		return 0
	}
	lb = lb*g.ch.chMul - g.ch.chAbs
	if lb < 0 {
		return 0
	}
	return lb
}

// chCostPP is CostPP's hierarchy arm.
func (g *Graph) chCostPP(from, to geo.NodeID) float64 {
	sc := g.getCHScratch()
	//det:hotalloc pooled scratch retains capacity across queries; grows only on first use
	sc.uniq = append(sc.uniq[:0], to)
	//det:hotalloc pooled scratch retains capacity across queries; grows only on first use
	sc.res = append(sc.res[:0], 0)
	sc.newTargetEpoch()
	// Landmark upper bound on the trip (src -> L -> to): lets the search
	// scale its fold-error deflation to the trip instead of the diameter.
	ubHint := math.Inf(1)
	for i := range g.landmarks {
		if ub := g.landTo[i][from] + g.landFrom[i][to]; ub < ubHint {
			ubHint = ub
		}
	}
	g.chSearchFrom(sc, from, math.Inf(1), ubHint)
	d := sc.res[0]
	g.chPool.Put(sc)
	return d
}

// chMatrixInto is costMatrixInto's hierarchy arm: same target dedup and
// duplicate-source row reuse, one two-phase search per distinct source.
func (g *Graph) chMatrixInto(sources, targets []geo.NodeID, maxCost float64, out []float64) {
	nt := len(targets)
	sc := g.getCHScratch()
	sc.uniq = sc.uniq[:0]
	sc.colIdx = sc.colIdx[:0]
	for _, t := range targets {
		slot := -1
		for k, u := range sc.uniq {
			if u == t {
				slot = k
				break
			}
		}
		if slot < 0 {
			slot = len(sc.uniq)
			//det:hotalloc pooled scratch retains capacity across queries; grows only on first use
			sc.uniq = append(sc.uniq, t)
		}
		//det:hotalloc pooled scratch retains capacity across queries; grows only on first use
		sc.colIdx = append(sc.colIdx, slot)
	}
	if cap(sc.res) < len(sc.uniq) {
		//det:hotalloc grows the pooled result row once per high-water target count
		sc.res = make([]float64, len(sc.uniq))
	}
	sc.res = sc.res[:len(sc.uniq)]
	sc.newTargetEpoch()

	for i, s := range sources {
		dup := -1
		for j := 0; j < i; j++ {
			if sources[j] == s {
				dup = j
				break
			}
		}
		row := out[i*nt : (i+1)*nt]
		if dup >= 0 {
			copy(row, out[dup*nt:(dup+1)*nt])
			continue
		}
		g.chSearchFrom(sc, s, maxCost, 0)
		for j := 0; j < nt; j++ {
			row[j] = sc.res[sc.colIdx[j]]
		}
	}
	g.chPool.Put(sc)
}

// chSearchFrom runs one exact multi-target two-phase A* from src over
// sc.uniq, filling sc.res (+Inf for unreachable; targets beyond budget may
// be left +Inf). Structure, finalization, and budget semantics mirror
// searchFrom — see the package comment above for why the answers are
// bit-identical to the reference Dijkstra's.
//
//det:hotpath the CH query inner loop backs every Cost/CostMatrix call on hierarchy-enabled graphs; all mutable state lives in the pooled chScratch
func (g *Graph) chSearchFrom(sc *chScratch, src geo.NodeID, budget, ubHint float64) {
	sc.nextGen()
	cur := sc.cur
	inf := math.Inf(1)
	h32 := g.ch
	n := geo.NodeID(len(g.coords))
	if sc.coneEp != sc.hcur {
		g.buildCone(sc)
	}
	mcur := sc.hcur

	// Heuristic deflation for this search: the graph-wide chMul/chAbs by
	// default, tightened further for single-pair queries where ubHint (a
	// landmark upper bound on the trip) lets the hop budget scale with the
	// trip instead of the diameter. Every quantity the admissibility proof
	// bounds by the diameter is then bounded by ubHint instead: protected
	// folds stay below 2*ubHint (enforced by guardQ on the maxUBh prune and
	// implied by final distance <= ubHint for the finalize invariant), so a
	// budget of 4*ubHint/minw hops covers them with slack to spare.
	chMulQ, chAbsQ, guardQ := h32.chMul, h32.chAbs, 4*g.diam
	if h32.chTight && ubHint > 0 && !math.IsInf(ubHint, 1) {
		khop := math.Ceil(4 * ubHint / h32.minw)
		if khop < 16 {
			khop = 16
		}
		if slack := 4 * khop * chEps32; slack < 1-h32.chMul {
			chMulQ = 1 - slack
			chAbsQ = slack * 2 * ubHint
			guardQ = 2 * ubHint
		}
	}

	useALT := len(g.landmarks) > 0 && len(sc.uniq)*len(g.landmarks) <= maxHeuristicWork
	hcur := sc.hcur
	k2 := 2 * len(g.landmarks)
	//det:hotalloc non-escaping closure, stack-allocated because h never leaves chSearchFrom
	h := func(v geo.NodeID) float64 {
		if !useALT {
			return 0
		}
		if sc.hgen[v] == hcur {
			return sc.hval[v]
		}
		b := inf
		vp := h32.landPack[int(v)*k2 : int(v)*k2+k2]
		for _, t := range sc.uniq {
			tp := h32.landPack[int(t)*k2 : int(t)*k2+k2]
			var lb float64
			for i := 0; i < k2; i += 2 {
				if d := vp[i] - tp[i]; d > lb {
					lb = d
				}
				if d := tp[i+1] - vp[i+1]; d > lb {
					lb = d
				}
			}
			if lb > 0 {
				lb = lb*chMulQ - chAbsQ
			}
			if lb < 0 {
				lb = 0
			}
			if lb < b {
				b = lb
			}
		}
		sc.hval[v] = b
		sc.hgen[v] = hcur
		return b
	}
	// tdist reads a target's best tentative fold across both phase states.
	//det:hotalloc one closure header per search, amortized over thousands of relaxations
	tdist := func(t geo.NodeID) (float32, bool) {
		d, ok := float32(0), false
		if sc.gen[t] == cur {
			d, ok = sc.dist[t], true
		}
		if sc.gen[t+n] == cur && (!ok || sc.dist[t+n] < d) {
			d, ok = sc.dist[t+n], true
		}
		return d, ok
	}

	sc.pending = sc.pending[:0]
	for k := range sc.uniq {
		sc.res[k] = inf
		sc.pending = append(sc.pending, k)
	}
	// A +Inf landmark bound from src is an exact unreachability proof;
	// contraction preserves reachability, so pre-finalizing here is the
	// same optimization searchFrom makes.
	if len(g.landmarks) > 0 {
		for k := len(sc.pending) - 1; k >= 0; k-- {
			if math.IsInf(g.chBound(src, sc.uniq[sc.pending[k]]), 1) {
				sc.pending[k] = sc.pending[len(sc.pending)-1]
				sc.pending = sc.pending[:len(sc.pending)-1]
			}
		}
		if len(sc.pending) == 0 {
			return
		}
	}

	sc.dist[src] = 0
	sc.gen[src] = cur
	sc.heap.push(ppItem{key: h(src), dist: 0, node: src})

	// maxUB is the worst tentative distance among pending targets once all
	// of them have one (+Inf before that). A relaxation whose fold lower
	// bound reaches maxUB cannot improve any pending target, so skipping it
	// leaves every result bit-identical. maxUBh additionally folds in the
	// heuristic, which is only sound while the tight chMul/chAbs hop budget
	// covers every walk below maxUB — hence the 4*diam guard where it is
	// refreshed.
	maxUB := inf
	maxUBh := inf
	// Prime the pruning bounds from the landmark upper bound: every fold the
	// search must protect stays below ubHint*(1+slack) (the final distance is
	// at most ubHint times the fold error), so relaxations at or above that
	// can be skipped from the very first pop instead of only after the
	// target is reached. Single-target only — ubHint bounds one trip.
	if h32.chTight && len(sc.uniq) == 1 && ubHint > 0 && !math.IsInf(ubHint, 1) {
		ubInit := ubHint * (1 + 8*(1-chMulQ))
		maxUB = ubInit
		if ubInit <= guardQ {
			maxUBh = ubInit
		}
	}
	//det:hotalloc one closure header per search, amortized over thousands of relaxations
	relax := func(it ppItem, ei int32, st geo.NodeID, w, lbm float64) {
		// Certain lower bound on the fold across this edge: skipping on it
		// is exact, and it avoids unpacking the shortcut at all for the
		// (majority of) relaxations that cannot improve anything. The maxUB
		// test runs first: it needs no memory access, while the label test
		// reads two per-state arrays.
		lb := (float64(it.dist) + w) * lbm
		if lb >= maxUB {
			return
		}
		if sc.gen[st] == cur && lb >= float64(sc.dist[st]) {
			return
		}
		v := st
		if v >= n {
			v -= n
		}
		if lb+h(v) >= maxUBh {
			return
		}
		nd := g.chFold(it.dist, ei)
		if sc.gen[st] == cur && nd >= sc.dist[st] {
			return
		}
		sc.dist[st] = nd
		sc.gen[st] = cur
		sc.heap.push(ppItem{key: float64(nd) + h(v), dist: nd, node: st})
	}

	for len(sc.heap) > 0 {
		it := sc.heap.pop()
		// it.key lower-bounds every remaining improving path's fold, exactly
		// as in searchFrom; a target at or below it is final. The same scan
		// refreshes maxUB for the relax pruning above.
		ub, allReached := 0.0, true
		for k := len(sc.pending) - 1; k >= 0; k-- {
			ti := sc.pending[k]
			d, ok := tdist(sc.uniq[ti])
			if ok && float64(d) <= it.key {
				sc.res[ti] = float64(d)
				sc.pending[k] = sc.pending[len(sc.pending)-1]
				sc.pending = sc.pending[:len(sc.pending)-1]
				continue
			}
			if !ok {
				allReached = false
			} else if float64(d) > ub {
				ub = float64(d)
			}
		}
		if allReached {
			maxUB = ub
			if h32.chTight && ub <= guardQ {
				maxUBh = ub
			} else {
				maxUBh = inf
			}
		}
		if len(sc.pending) == 0 {
			sc.heap = sc.heap[:0]
			return
		}
		if it.key > budget {
			sc.heap = sc.heap[:0]
			return
		}
		if it.dist > sc.dist[it.node] {
			continue
		}
		v := it.node
		if v < n { // climbing: may keep climbing, or descend into a cone
			for i := h32.upHead[v]; i < h32.upHead[v+1]; i++ {
				relax(it, h32.upEdge[i], h32.upTo[i], float64(h32.upW[i]), float64(h32.upLbM[i]))
			}
			if sc.tStamp[v] == mcur {
				for j := sc.tFirst[v]; j >= 0; {
					e := &sc.tPack[j]
					relax(it, e.ei, e.to+n, float64(e.w), float64(e.lbm))
					j = e.next
				}
			}
		} else { // descending: the cone's own down edges only
			v -= n
			if sc.tStamp[v] == mcur {
				for j := sc.tFirst[v]; j >= 0; {
					e := &sc.tPack[j]
					relax(it, e.ei, e.to+n, float64(e.w), float64(e.lbm))
					j = e.next
				}
			}
		}
	}
	for _, ti := range sc.pending {
		if d, ok := tdist(sc.uniq[ti]); ok {
			sc.res[ti] = float64(d)
		}
	}
}
