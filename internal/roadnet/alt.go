package roadnet

import (
	"container/heap"
	"math"

	"watter/internal/geo"
)

// ALT preprocessing (A*, Landmarks, Triangle inequality). Build selects a
// small set of landmarks by farthest-point sampling and stores, for every
// landmark L, the distance arrays dist(L -> v) and dist(v -> L) (the latter
// via the reverse graph). A query then lower-bounds dist(v, t) with
//
//	max_L( dist(v,L) - dist(t,L), dist(L,t) - dist(L,v) )
//
// which the point-to-point engine uses as an A* heuristic.
//
// Exactness contract: the engine must reproduce the float32 left-fold
// shortest-path value of the full Dijkstra bit-for-bit. Landmark distances
// are therefore computed in float64 (error ~1e-12 relative) and every lower
// bound is deflated by a conservative slack (altMul/altAbs) covering the
// worst-case float32 fold error of any shortest path, so the heuristic is
// admissible with respect to the float32 metric, not just the real one.
// Admissibility plus the reinsertion-based search in pp.go make the engine
// exact; the deflation costs a sliver of pruning power, never correctness.

// NumLandmarks reports how many ALT landmarks Build precomputed (0 for
// tiny graphs, where plain goal-stopped search wins).
func (g *Graph) NumLandmarks() int { return len(g.landmarks) }

// defaultLandmarkCount picks how many landmarks Build precomputes. Tiny
// graphs skip ALT entirely: a plain goal-stopped Dijkstra already explores
// next to nothing, and landmark arrays would cost more than they save.
func defaultLandmarkCount(n int) int {
	if n < 32 {
		return 0
	}
	k := n / 16
	if k > 8 {
		k = 8
	}
	return k
}

// initLandmarks runs farthest-point landmark selection and fills the
// per-landmark distance arrays and the admissibility slack.
func (g *Graph) initLandmarks(k int) {
	n := len(g.coords)
	if k <= 0 || n < 2 {
		return
	}
	// Seed: the node farthest (by forward distance) from node 0; fall back
	// to node 0 for graphs where nothing is reachable. Deterministic.
	seedDist := g.dijkstraF64(0, false)
	first := geo.NodeID(0)
	bestD := -1.0
	for v, d := range seedDist {
		if !math.IsInf(d, 1) && d > bestD {
			bestD = d
			first = geo.NodeID(v)
		}
	}

	minDist := make([]float64, n) // distance to the nearest chosen landmark
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	isLandmark := make([]bool, n)

	for len(g.landmarks) < k {
		var L geo.NodeID
		if len(g.landmarks) == 0 {
			L = first
		} else {
			// Farthest-point step: the reachable node most distant from
			// every chosen landmark; ties break toward the lower id.
			L = geo.InvalidNode
			bestD = 0
			for v := 0; v < n; v++ {
				d := minDist[v]
				if isLandmark[v] || math.IsInf(d, 1) {
					continue
				}
				if d > bestD {
					bestD = d
					L = geo.NodeID(v)
				}
			}
			if L == geo.InvalidNode || bestD == 0 {
				break // graph exhausted (all reachable nodes are landmarks)
			}
		}
		isLandmark[L] = true
		from := g.dijkstraF64(L, false)
		to := g.dijkstraF64(L, true)
		g.landmarks = append(g.landmarks, L)
		g.landFrom = append(g.landFrom, from)
		g.landTo = append(g.landTo, to)
		for v := 0; v < n; v++ {
			if from[v] < minDist[v] {
				minDist[v] = from[v]
			}
		}
	}
	g.initALTSlack()
}

// initALTSlack derives the admissibility deflation from the graph size and
// an upper bound on the diameter. Any float32 left-fold of a path with at
// most n-1 hops differs from the exact sum by less than n*eps32 relative;
// a 4x margin also absorbs the float64 error of the landmark arrays.
func (g *Graph) initALTSlack() {
	const eps32 = 1.0 / (1 << 24)
	n := float64(len(g.coords))
	slack := 4 * n * eps32
	if slack >= 1 {
		// Pathological size: no sound deflation exists, disable the
		// heuristic (searches degrade to goal-stopped Dijkstra).
		g.landmarks = nil
		g.landFrom = nil
		g.landTo = nil
		return
	}
	var diam float64
	for i := range g.landFrom {
		for _, d := range g.landFrom[i] {
			if !math.IsInf(d, 1) && d > diam {
				diam = d
			}
		}
		for _, d := range g.landTo[i] {
			if !math.IsInf(d, 1) && d > diam {
				diam = d
			}
		}
	}
	g.diam = diam
	g.altMul = 1 - slack
	g.altAbs = slack * 2 * diam
}

// altBound returns the admissible ALT lower bound on the float32
// shortest-path distance from v to t (0 when no landmark helps). A +Inf
// bound is exact, not heuristic: dist(v,L)=Inf with dist(t,L) finite proves
// v cannot reach t (a v->t path would extend to v->t->L). The Inf-Inf case
// yields NaN, which every comparison rejects.
func (g *Graph) altBound(v, t geo.NodeID) float64 {
	var lb float64
	for i := range g.landmarks {
		if b := g.landTo[i][v] - g.landTo[i][t]; b > lb {
			lb = b
		}
		if b := g.landFrom[i][t] - g.landFrom[i][v]; b > lb {
			lb = b
		}
	}
	if lb <= 0 {
		return 0
	}
	lb = lb*g.altMul - g.altAbs
	if lb < 0 {
		return 0
	}
	return lb
}

// f64Item / f64PQ: a float64 Dijkstra priority queue for preprocessing.
type f64Item struct {
	node geo.NodeID
	dist float64
}

type f64PQ []f64Item

func (q f64PQ) Len() int           { return len(q) }
func (q f64PQ) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q f64PQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *f64PQ) Push(x any)        { *q = append(*q, x.(f64Item)) }
func (q *f64PQ) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// dijkstraF64 runs a float64 single-source Dijkstra over the forward CSR
// (reverse=false) or the transposed CSR (reverse=true, giving distances
// *to* src). Preprocessing only — queries never call this.
func (g *Graph) dijkstraF64(src geo.NodeID, reverse bool) []float64 {
	n := len(g.coords)
	head, adj, cost := g.headIdx, g.adjNode, g.adjCost
	if reverse {
		head, adj, cost = g.revHead, g.revNode, g.revCost
	}
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	q := f64PQ{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(&q).(f64Item)
		if it.dist > dist[it.node] {
			continue
		}
		for i := head[it.node]; i < head[it.node+1]; i++ {
			v := adj[i]
			nd := it.dist + float64(cost[i])
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(&q, f64Item{v, nd})
			}
		}
	}
	return dist
}
