package roadnet

import (
	"math/rand"

	"watter/internal/geo"
)

// ExampleNodes are the labels of the paper's Figure 1 road network, indexed
// by NodeID: ExampleNodes[0] == "a" etc.
var ExampleNodes = []string{"a", "b", "c", "d", "e", "f"}

// NewExampleNetwork builds the 6-node / 7-edge road network of the paper's
// running example (Figure 1, Example 1). Every edge takes one minute. The
// edge set is reconstructed from the distances the example relies on:
// cost(a,c)=2, cost(a,d)=1, cost(c,d)=3, cost(d,e)=1, cost(e,f)=1,
// cost(d,f)=2 (all in minutes).
func NewExampleNetwork() *Graph {
	var b GraphBuilder
	// Coordinates are only used for spatial indexing; layout roughly
	// matches the figure.
	coords := []geo.Point{
		{X: 0, Y: 0}, // a
		{X: 1, Y: 0}, // b
		{X: 2, Y: 0}, // c
		{X: 0, Y: 1}, // d
		{X: 1, Y: 1}, // e
		{X: 2, Y: 1}, // f
	}
	for _, p := range coords {
		b.AddNode(geo.Point{X: p.X * 1000, Y: p.Y * 1000})
	}
	const minute = 60.0
	a, bb, c, d, e, f := geo.NodeID(0), geo.NodeID(1), geo.NodeID(2), geo.NodeID(3), geo.NodeID(4), geo.NodeID(5)
	b.AddBidirectional(a, bb, minute)
	b.AddBidirectional(bb, c, minute)
	b.AddBidirectional(a, d, minute)
	b.AddBidirectional(d, e, minute)
	b.AddBidirectional(e, f, minute)
	b.AddBidirectional(c, f, minute)
	b.AddBidirectional(bb, e, minute)
	g, err := b.Build()
	if err != nil {
		panic(err) // unreachable: static input
	}
	g.Precompute()
	return g
}

// LatticeNetwork is a Network whose nodes form a W x H lattice addressable
// by (x, y). The dataset synthesizer places demand by cell, so any network
// a synthetic city runs on must expose the lattice addressing: GridCity
// (closed-form costs) and Lattice (explicit graph behind the full routing
// stack — ALT and, at scale, the contraction hierarchy) both do.
type LatticeNetwork interface {
	Network
	Node(x, y int) geo.NodeID
}

// Lattice is a Graph that remembers its grid shape, so callers that place
// demand by cell (the dataset synthesizer, the benchmark harness) can
// address nodes as (x, y) without re-deriving the row-major layout.
type Lattice struct {
	*Graph
	W, H int
}

// Node returns the NodeID at lattice position (x, y).
func (l *Lattice) Node(x, y int) geo.NodeID { return geo.NodeID(y*l.W + x) }

// NewPerturbedLattice is NewPerturbedGrid with the grid shape retained.
func NewPerturbedLattice(w, h int, cellMeters, speed, jitter float64, seed int64) *Lattice {
	return &Lattice{Graph: NewPerturbedGrid(w, h, cellMeters, speed, jitter, seed), W: w, H: h}
}

// NewPerturbedGrid builds an explicit W x H lattice graph whose per-edge
// travel times are the uniform base time scaled by a random factor in
// [1-jitter, 1+jitter]. It models uneven street speeds (congested vs fast
// corridors) while staying deterministic under a fixed seed.
func NewPerturbedGrid(w, h int, cellMeters, speed, jitter float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var b GraphBuilder
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			b.AddNode(geo.Point{X: float64(x) * cellMeters, Y: float64(y) * cellMeters})
		}
	}
	node := func(x, y int) geo.NodeID { return geo.NodeID(y*w + x) }
	base := cellMeters / speed
	perturb := func() float64 {
		if jitter <= 0 {
			return base
		}
		return base * (1 + (rng.Float64()*2-1)*jitter)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddBidirectional(node(x, y), node(x+1, y), perturb())
			}
			if y+1 < h {
				b.AddBidirectional(node(x, y), node(x, y+1), perturb())
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err) // unreachable: builder input is well formed by construction
	}
	return g
}
