package roadnet

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"watter/internal/geo"
)

// DIMACS road-network import/export (the 9th DIMACS Implementation
// Challenge format, the lingua franca of shortest-path benchmark inputs).
//
// A city is a pair of files: a .gr graph file
//
//	c  free-form comments
//	p sp <n> <m>
//	a <u> <v> <w>        (1-based node ids, m arc lines)
//
// and a .co coordinate file
//
//	c  free-form comments
//	p aux sp co <n>
//	v <id> <x> <y>       (1-based ids, n vertex lines)
//
// All values are integers, which is exactly what the repo's determinism
// contract wants from an interchange format: weights are travel times in
// CENTISECONDS and coordinates are planar positions in CENTIMETERS, so a
// file fixes the float32 edge weights (w/100 rounded once to float32) with
// no decimal-parsing ambiguity, and two imports of the same bytes build
// bit-identical graphs on any platform. WriteDIMACS rounds to the nearest
// centisecond/centimeter; the round trip is lossless whenever the graph
// came from a DIMACS file or generator in the first place (the property
// importer_test.go pins).

// ReadDIMACS parses a DIMACS .gr/.co pair and builds the Graph (including
// ALT preprocessing and, at chAutoMinNodes and above, the contraction
// hierarchy). Every node must receive a coordinate; arcs must stay in
// range and non-negative.
func ReadDIMACS(gr, co io.Reader) (*Graph, error) {
	n, arcs, err := readGR(gr)
	if err != nil {
		return nil, err
	}
	coords, err := readCO(co, n)
	if err != nil {
		return nil, err
	}
	var b GraphBuilder
	for _, p := range coords {
		b.AddNode(p)
	}
	for _, a := range arcs {
		b.AddEdge(a.from, a.to, float64(a.centis)/100)
	}
	return b.Build()
}

type dimacsArc struct {
	from, to geo.NodeID
	centis   int64
}

func readGR(r io.Reader) (n int, arcs []dimacsArc, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	m, line := -1, 0
	for sc.Scan() {
		line++
		f := strings.Fields(sc.Text())
		if len(f) == 0 || f[0] == "c" {
			continue
		}
		switch f[0] {
		case "p":
			if m >= 0 {
				return 0, nil, fmt.Errorf("roadnet: .gr line %d: duplicate p line", line)
			}
			if len(f) != 4 || f[1] != "sp" {
				return 0, nil, fmt.Errorf("roadnet: .gr line %d: want 'p sp <n> <m>', got %q", line, sc.Text())
			}
			if n, err = strconv.Atoi(f[2]); err != nil || n <= 0 {
				return 0, nil, fmt.Errorf("roadnet: .gr line %d: bad node count %q", line, f[2])
			}
			if m, err = strconv.Atoi(f[3]); err != nil || m < 0 {
				return 0, nil, fmt.Errorf("roadnet: .gr line %d: bad arc count %q", line, f[3])
			}
			arcs = make([]dimacsArc, 0, m)
		case "a":
			if m < 0 {
				return 0, nil, fmt.Errorf("roadnet: .gr line %d: arc before p line", line)
			}
			if len(f) != 4 {
				return 0, nil, fmt.Errorf("roadnet: .gr line %d: want 'a <u> <v> <w>', got %q", line, sc.Text())
			}
			u, err1 := strconv.Atoi(f[1])
			v, err2 := strconv.Atoi(f[2])
			w, err3 := strconv.ParseInt(f[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return 0, nil, fmt.Errorf("roadnet: .gr line %d: non-integer arc field in %q", line, sc.Text())
			}
			if u < 1 || u > n || v < 1 || v > n {
				return 0, nil, fmt.Errorf("roadnet: .gr line %d: arc (%d,%d) outside [1,%d]", line, u, v, n)
			}
			if w < 0 {
				return 0, nil, fmt.Errorf("roadnet: .gr line %d: negative weight %d", line, w)
			}
			arcs = append(arcs, dimacsArc{geo.NodeID(u - 1), geo.NodeID(v - 1), w})
		default:
			return 0, nil, fmt.Errorf("roadnet: .gr line %d: unknown record %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return 0, nil, fmt.Errorf("roadnet: reading .gr: %w", err)
	}
	if m < 0 {
		return 0, nil, fmt.Errorf("roadnet: .gr has no p line")
	}
	if len(arcs) != m {
		return 0, nil, fmt.Errorf("roadnet: .gr declares %d arcs, has %d", m, len(arcs))
	}
	return n, arcs, nil
}

func readCO(r io.Reader, n int) ([]geo.Point, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	coords := make([]geo.Point, n)
	seen := make([]bool, n)
	line, got := 0, 0
	for sc.Scan() {
		line++
		f := strings.Fields(sc.Text())
		if len(f) == 0 || f[0] == "c" {
			continue
		}
		switch f[0] {
		case "p":
			// "p aux sp co <n>" — tolerated but cross-checked when present.
			if len(f) == 5 {
				if cn, err := strconv.Atoi(f[4]); err == nil && cn != n {
					return nil, fmt.Errorf("roadnet: .co declares %d nodes, .gr has %d", cn, n)
				}
			}
		case "v":
			if len(f) != 4 {
				return nil, fmt.Errorf("roadnet: .co line %d: want 'v <id> <x> <y>', got %q", line, sc.Text())
			}
			id, err1 := strconv.Atoi(f[1])
			x, err2 := strconv.ParseInt(f[2], 10, 64)
			y, err3 := strconv.ParseInt(f[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("roadnet: .co line %d: non-integer vertex field in %q", line, sc.Text())
			}
			if id < 1 || id > n {
				return nil, fmt.Errorf("roadnet: .co line %d: vertex id %d outside [1,%d]", line, id, n)
			}
			if !seen[id-1] {
				seen[id-1] = true
				got++
			}
			coords[id-1] = geo.Point{X: float64(x) / 100, Y: float64(y) / 100}
		default:
			return nil, fmt.Errorf("roadnet: .co line %d: unknown record %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("roadnet: reading .co: %w", err)
	}
	if got != n {
		return nil, fmt.Errorf("roadnet: .co covers %d of %d nodes", got, n)
	}
	return coords, nil
}

// WriteDIMACS writes the graph as a DIMACS .gr/.co pair, rounding weights
// to centiseconds and coordinates to centimeters. Arcs appear in the
// graph's frozen CSR order (by source node, then insertion order), so the
// output is a pure function of the graph — the same graph always writes
// the same bytes.
func (g *Graph) WriteDIMACS(gr, co io.Writer) error {
	gw := bufio.NewWriter(gr)
	n := len(g.coords)
	fmt.Fprintf(gw, "p sp %d %d\n", n, len(g.adjNode))
	for u := 0; u < n; u++ {
		for i := g.headIdx[u]; i < g.headIdx[u+1]; i++ {
			fmt.Fprintf(gw, "a %d %d %d\n", u+1, g.adjNode[i]+1,
				int64(math.Round(float64(g.adjCost[i])*100)))
		}
	}
	if err := gw.Flush(); err != nil {
		return fmt.Errorf("roadnet: writing .gr: %w", err)
	}
	cw := bufio.NewWriter(co)
	fmt.Fprintf(cw, "p aux sp co %d\n", n)
	for id, p := range g.coords {
		fmt.Fprintf(cw, "v %d %d %d\n", id+1,
			int64(math.Round(p.X*100)), int64(math.Round(p.Y*100)))
	}
	if err := cw.Flush(); err != nil {
		return fmt.Errorf("roadnet: writing .co: %w", err)
	}
	return nil
}

// WriteDIMACSGrid writes a deterministic perturbed-grid city directly in
// DIMACS format: the same lattice topology and traversal order as
// NewPerturbedGrid, but with every edge weight drawn as an INTEGER number
// of centiseconds (floored at 1), so the file itself is the ground truth
// and import/export round-trips are bitwise lossless. This is the paper-
// scale city generator: a 320x320 grid yields a 102,400-node /
// 408,320-arc instance in a few MB of text.
func WriteDIMACSGrid(gr, co io.Writer, w, h int, cellMeters, speed, jitter float64, seed int64) error {
	if w < 1 || h < 1 {
		return fmt.Errorf("roadnet: grid %dx%d must be at least 1x1", w, h)
	}
	cw := bufio.NewWriter(co)
	fmt.Fprintf(cw, "c perturbed grid %dx%d cell=%gm speed=%gm/s jitter=%g seed=%d\n",
		w, h, cellMeters, speed, jitter, seed)
	fmt.Fprintf(cw, "p aux sp co %d\n", w*h)
	cell := int64(math.Round(cellMeters * 100))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fmt.Fprintf(cw, "v %d %d %d\n", y*w+x+1, int64(x)*cell, int64(y)*cell)
		}
	}
	if err := cw.Flush(); err != nil {
		return fmt.Errorf("roadnet: writing .co: %w", err)
	}

	gw := bufio.NewWriter(gr)
	rng := rand.New(rand.NewSource(seed))
	base := cellMeters / speed * 100 // centiseconds
	weight := func() int64 {
		wc := base
		if jitter > 0 {
			wc = base * (1 + (rng.Float64()*2-1)*jitter)
		}
		if c := int64(math.Round(wc)); c > 1 {
			return c
		}
		return 1
	}
	arcs := 2 * (h*(w-1) + w*(h-1))
	fmt.Fprintf(gw, "c perturbed grid %dx%d cell=%gm speed=%gm/s jitter=%g seed=%d\n",
		w, h, cellMeters, speed, jitter, seed)
	fmt.Fprintf(gw, "p sp %d %d\n", w*h, arcs)
	node := func(x, y int) int { return y*w + x + 1 }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				wc := weight()
				fmt.Fprintf(gw, "a %d %d %d\n", node(x, y), node(x+1, y), wc)
				fmt.Fprintf(gw, "a %d %d %d\n", node(x+1, y), node(x, y), wc)
			}
			if y+1 < h {
				wc := weight()
				fmt.Fprintf(gw, "a %d %d %d\n", node(x, y), node(x, y+1), wc)
				fmt.Fprintf(gw, "a %d %d %d\n", node(x, y+1), node(x, y), wc)
			}
		}
	}
	if err := gw.Flush(); err != nil {
		return fmt.Errorf("roadnet: writing .gr: %w", err)
	}
	return nil
}
