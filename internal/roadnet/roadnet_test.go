package roadnet

import (
	"math"
	"testing"
	"testing/quick"

	"watter/internal/geo"
)

func TestExampleNetworkDistances(t *testing.T) {
	g := NewExampleNetwork()
	idx := map[string]geo.NodeID{}
	for i, name := range ExampleNodes {
		idx[name] = geo.NodeID(i)
	}
	// Distances (in minutes) the paper's Example 1 depends on.
	want := []struct {
		u, v string
		min  float64
	}{
		{"a", "c", 2}, {"a", "d", 1}, {"c", "d", 3}, {"d", "e", 1},
		{"e", "f", 1}, {"d", "f", 2}, {"a", "b", 1}, {"b", "c", 1},
		{"d", "c", 3}, {"f", "d", 2},
	}
	for _, w := range want {
		got := g.Cost(idx[w.u], idx[w.v]) / 60
		if math.Abs(got-w.min) > 1e-9 {
			t.Errorf("cost(%s,%s) = %v minutes, want %v", w.u, w.v, got, w.min)
		}
	}
}

func TestExampleNetworkSymmetric(t *testing.T) {
	g := NewExampleNetwork()
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if d1, d2 := g.Cost(geo.NodeID(u), geo.NodeID(v)), g.Cost(geo.NodeID(v), geo.NodeID(u)); d1 != d2 {
				t.Fatalf("asymmetric cost(%d,%d)=%v vs %v", u, v, d1, d2)
			}
		}
	}
}

func TestGridCityMatchesExplicitGraph(t *testing.T) {
	c := NewGridCity(7, 5, 200, 8)
	g := c.AsGraph()
	if c.NumNodes() != g.NumNodes() {
		t.Fatalf("node count mismatch: %d vs %d", c.NumNodes(), g.NumNodes())
	}
	for u := 0; u < c.NumNodes(); u++ {
		for v := 0; v < c.NumNodes(); v++ {
			cu, cv := geo.NodeID(u), geo.NodeID(v)
			if closed, dij := c.Cost(cu, cv), g.Cost(cu, cv); math.Abs(closed-dij) > 1e-4 {
				t.Fatalf("cost(%d,%d): closed-form %v vs dijkstra %v", u, v, closed, dij)
			}
		}
	}
}

func TestGridCityTriangleInequality(t *testing.T) {
	c := NewGridCity(30, 30, 150, 10)
	n := uint32(c.NumNodes())
	f := func(a, b, x uint32) bool {
		na := geo.NodeID(a % n)
		nb := geo.NodeID(b % n)
		nc := geo.NodeID(x % n)
		return TriangleSlack(c, na, nb, nc) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphTriangleInequality(t *testing.T) {
	g := NewPerturbedGrid(10, 10, 200, 8, 0.4, 42)
	n := uint32(g.NumNodes())
	f := func(a, b, x uint32) bool {
		na := geo.NodeID(a % n)
		nb := geo.NodeID(b % n)
		nc := geo.NodeID(x % n)
		return TriangleSlack(g, na, nb, nc) <= 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphPathCostConsistency(t *testing.T) {
	g := NewPerturbedGrid(8, 8, 200, 8, 0.3, 7)
	for u := 0; u < g.NumNodes(); u += 5 {
		for v := 0; v < g.NumNodes(); v += 7 {
			path := g.Path(geo.NodeID(u), geo.NodeID(v))
			if path == nil {
				t.Fatalf("no path %d->%d in connected grid", u, v)
			}
			if path[0] != geo.NodeID(u) || path[len(path)-1] != geo.NodeID(v) {
				t.Fatalf("path endpoints wrong: %v", path)
			}
			var sum float64
			for i := 0; i+1 < len(path); i++ {
				step := g.Cost(path[i], path[i+1])
				sum += step
			}
			if want := g.Cost(geo.NodeID(u), geo.NodeID(v)); math.Abs(sum-want) > 1e-3 {
				t.Fatalf("path cost %v != direct cost %v for %d->%d", sum, want, u, v)
			}
		}
	}
}

func TestGridCityPath(t *testing.T) {
	c := NewGridCity(6, 6, 100, 10)
	from, to := c.Node(1, 1), c.Node(4, 3)
	path := c.Path(from, to)
	wantLen := 1 + 3 + 2 // start + dx + dy
	if len(path) != wantLen {
		t.Fatalf("path length %d, want %d", len(path), wantLen)
	}
	for i := 0; i+1 < len(path); i++ {
		if c.Cost(path[i], path[i+1])*c.Speed != c.CellMeters {
			t.Fatalf("non-adjacent step %v -> %v", path[i], path[i+1])
		}
	}
}

func TestGraphCacheEviction(t *testing.T) {
	g := NewPerturbedGrid(5, 5, 100, 10, 0, 1)
	g.SetCacheSize(3)
	// Query from more sources than the cache holds; results must stay correct.
	for round := 0; round < 3; round++ {
		for u := 0; u < g.NumNodes(); u++ {
			d := g.CostSSSP(geo.NodeID(u), geo.NodeID((u+7)%g.NumNodes()))
			if math.IsInf(d, 1) || d < 0 {
				t.Fatalf("bad distance %v", d)
			}
		}
	}
	g.mu.Lock()
	size := len(g.cache)
	g.mu.Unlock()
	if size > 3 {
		t.Fatalf("cache grew to %d entries, cap 3", size)
	}
}

func TestGraphConcurrentCost(t *testing.T) {
	g := NewPerturbedGrid(10, 10, 100, 10, 0.2, 3)
	g.SetCacheSize(8)
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- true }()
			for i := 0; i < 200; i++ {
				u := geo.NodeID((w*31 + i) % g.NumNodes())
				v := geo.NodeID((w*17 + i*3) % g.NumNodes())
				if d := g.Cost(u, v); d < 0 {
					t.Errorf("negative distance %v", d)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

func TestValidateNode(t *testing.T) {
	c := NewGridCity(3, 3, 100, 10)
	if err := ValidateNode(c, 0); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := ValidateNode(c, 8); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := ValidateNode(c, 9); err == nil {
		t.Fatal("want error for out-of-range node")
	}
	if err := ValidateNode(c, -1); err == nil {
		t.Fatal("want error for negative node")
	}
}

func TestBuilderErrors(t *testing.T) {
	var b GraphBuilder
	if _, err := b.Build(); err == nil {
		t.Fatal("want error for empty graph")
	}
	var b2 GraphBuilder
	n := b2.AddNode(geo.Point{})
	b2.AddEdge(n, 5, 10)
	if _, err := b2.Build(); err == nil {
		t.Fatal("want error for dangling edge")
	}
	var b3 GraphBuilder
	u := b3.AddNode(geo.Point{})
	v := b3.AddNode(geo.Point{X: 1})
	b3.AddEdge(u, v, -1)
	if _, err := b3.Build(); err == nil {
		t.Fatal("want error for negative edge cost")
	}
}

func TestBounds(t *testing.T) {
	c := NewGridCity(4, 3, 250, 10)
	r := c.Bounds()
	if r.Min != (geo.Point{}) {
		t.Fatalf("min = %v", r.Min)
	}
	if r.Max.X != 750 || r.Max.Y != 500 {
		t.Fatalf("max = %v", r.Max)
	}
	if !r.Contains(geo.Point{X: 100, Y: 100}) {
		t.Fatal("contains failed")
	}
}

func BenchmarkGridCityCost(b *testing.B) {
	c := NewGridCity(100, 100, 200, 8)
	n := geo.NodeID(c.NumNodes())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Cost(geo.NodeID(i)%n, geo.NodeID(i*7)%n)
	}
}

func BenchmarkGraphCostCached(b *testing.B) {
	g := NewPerturbedGrid(40, 40, 200, 8, 0.2, 9)
	g.Precompute()
	n := geo.NodeID(g.NumNodes())
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Cost(geo.NodeID(i)%n, geo.NodeID(i*13)%n)
	}
}
