package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"watter/internal/geo"
)

// TestCHMatchesALTAndSSSP is the contraction hierarchy's exactness property
// test: random jittered, uniform, and disconnected cities are driven through
// CH, ALT, and the cached full-Dijkstra reference in lockstep, asserting
// bit-identical distances for every sampled pair — including exact +Inf for
// unreachable ones.
func TestCHMatchesALTAndSSSP(t *testing.T) {
	type city struct {
		name string
		g    *Graph
	}
	var cities []city
	sizes := [][2]int{{4, 4}, {5, 7}, {9, 6}, {12, 12}, {17, 13}}
	for seed := int64(1); seed <= 8; seed++ {
		wh := sizes[int(seed)%len(sizes)]
		cities = append(cities, city{"jitter", NewPerturbedGrid(wh[0], wh[1], 150, 8, 0.4, seed)})
	}
	// Uniform grids are the tie-heavy worst case: equal-weight parallel
	// routes everywhere, so no witness search can margin-separate anything.
	cities = append(cities, city{"uniform", NewPerturbedGrid(11, 11, 150, 8, 0, 3)})
	for seed := int64(1); seed <= 3; seed++ {
		g, _ := twoComponentCity(6, 5, seed)
		cities = append(cities, city{"split", g})
	}

	for ci, c := range cities {
		g := c.g
		g.EnableHierarchy()
		n := g.NumNodes()
		rng := rand.New(rand.NewSource(int64(ci)*7919 + 5))
		for trial := 0; trial < 120; trial++ {
			from := geo.NodeID(rng.Intn(n))
			to := geo.NodeID(rng.Intn(n))
			ref := g.CostSSSP(from, to)
			alt := g.CostALT(from, to)
			ch := g.Cost(from, to)
			if !g.HasHierarchy() {
				t.Fatalf("%s[%d]: hierarchy not built", c.name, ci)
			}
			if math.Float64bits(ch) != math.Float64bits(ref) {
				t.Fatalf("%s[%d]: CH(%d,%d) = %v, reference = %v", c.name, ci, from, to, ch, ref)
			}
			if math.Float64bits(alt) != math.Float64bits(ref) {
				t.Fatalf("%s[%d]: ALT(%d,%d) = %v, reference = %v", c.name, ci, from, to, alt, ref)
			}
		}
	}
}

// TestCHMatrixMatchesReference drives the batched matrix path (what the
// route planner and worker index actually call) through the hierarchy arm
// and checks every entry against the reference Dijkstra, both with an
// unbounded budget and with a finite one (where beyond-budget entries may
// legitimately be +Inf, but in-budget entries must be bit-identical).
func TestCHMatrixMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := NewPerturbedGrid(10, 13, 150, 8, 0.35, seed)
		g.EnableHierarchy()
		n := g.NumNodes()
		rng := rand.New(rand.NewSource(seed * 1543))
		sources := make([]geo.NodeID, 7)
		targets := make([]geo.NodeID, 9)
		for i := range sources {
			sources[i] = geo.NodeID(rng.Intn(n))
		}
		for i := range targets {
			targets[i] = geo.NodeID(rng.Intn(n))
		}
		sources[3] = sources[0] // duplicate source row
		targets[4] = targets[1] // duplicate target column
		m := g.CostMatrix(sources, targets)
		for i, s := range sources {
			for j, tg := range targets {
				ref := g.CostSSSP(s, tg)
				if math.Float64bits(m[i][j]) != math.Float64bits(ref) {
					t.Fatalf("seed %d: matrix[%d][%d] = %v, reference = %v", seed, i, j, m[i][j], ref)
				}
			}
		}
		// Bounded fill: exact below budget, +Inf allowed above it.
		budget := 200.0
		out := make([]float64, len(sources)*len(targets))
		FillCostMatrixWithin(g, sources, targets, budget, out)
		for i, s := range sources {
			for j, tg := range targets {
				got := out[i*len(targets)+j]
				ref := g.CostSSSP(s, tg)
				if ref <= budget {
					if math.Float64bits(got) != math.Float64bits(ref) {
						t.Fatalf("seed %d: within[%d][%d] = %v, reference = %v", seed, i, j, got, ref)
					}
				} else if got <= budget {
					t.Fatalf("seed %d: within[%d][%d] = %v < budget but reference = %v", seed, i, j, got, ref)
				}
			}
		}
	}
}

// TestHierarchyDeterministic builds the same city twice and requires the
// two hierarchies to be identical structure-for-structure: same ranks, same
// edge arena (endpoints, children, weights), same CSR layout. This is the
// bit-stability half of the CH contract — a rebuilt process must plan the
// same routes.
func TestHierarchyDeterministic(t *testing.T) {
	build := func() *Graph {
		g := NewPerturbedGrid(14, 11, 150, 8, 0.4, 42)
		g.EnableHierarchy()
		return g
	}
	a, b := build(), build()
	ha, hb := a.ch, b.ch
	if ha.coreSize != hb.coreSize || ha.shortcuts != hb.shortcuts {
		t.Fatalf("core/shortcut mismatch: (%d,%d) vs (%d,%d)",
			ha.coreSize, ha.shortcuts, hb.coreSize, hb.shortcuts)
	}
	if len(ha.rank) != len(hb.rank) || len(ha.edges) != len(hb.edges) {
		t.Fatalf("size mismatch: ranks %d vs %d, edges %d vs %d",
			len(ha.rank), len(hb.rank), len(ha.edges), len(hb.edges))
	}
	for i := range ha.rank {
		if ha.rank[i] != hb.rank[i] {
			t.Fatalf("rank[%d]: %d vs %d", i, ha.rank[i], hb.rank[i])
		}
	}
	for i := range ha.edges {
		ea, eb := ha.edges[i], hb.edges[i]
		if ea.from != eb.from || ea.to != eb.to || ea.c1 != eb.c1 || ea.c2 != eb.c2 ||
			ea.hops != eb.hops || math.Float64bits(ea.w) != math.Float64bits(eb.w) ||
			math.Float32bits(ea.w32) != math.Float32bits(eb.w32) {
			t.Fatalf("edge[%d]: %+v vs %+v", i, ea, eb)
		}
	}
	eq32 := func(name string, x, y []int32) {
		if len(x) != len(y) {
			t.Fatalf("%s length: %d vs %d", name, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s[%d]: %d vs %d", name, i, x[i], y[i])
			}
		}
	}
	eq32("upHead", ha.upHead, hb.upHead)
	eq32("upEdge", ha.upEdge, hb.upEdge)
	eq32("dnHead", ha.dnHead, hb.dnHead)
	eq32("dnEdge", ha.dnEdge, hb.dnEdge)
}

// TestSetHierarchyToggle checks the fallback contract: SetHierarchy(false)
// routes queries through the ALT arm, and the two arms agree bitwise.
func TestSetHierarchyToggle(t *testing.T) {
	g := NewPerturbedGrid(9, 9, 150, 8, 0.3, 7)
	g.EnableHierarchy()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		from := geo.NodeID(rng.Intn(g.NumNodes()))
		to := geo.NodeID(rng.Intn(g.NumNodes()))
		on := g.Cost(from, to)
		g.SetHierarchy(false)
		off := g.Cost(from, to)
		g.SetHierarchy(true)
		if math.Float64bits(on) != math.Float64bits(off) {
			t.Fatalf("toggle mismatch at (%d,%d): ch=%v alt=%v", from, to, on, off)
		}
	}
}
