package roadnet

import (
	"math"
	"time"

	"watter/internal/geo"
)

// Contraction-hierarchy preprocessing (queried by chquery.go).
//
// Build contracts nodes one at a time in a deterministic importance order
// (priority = edge difference + deleted neighbors, ties by node ID). When a
// node v is contracted, every in/out pair (u->v, v->w) that some shortest
// path might still need is replaced by a shortcut edge u->w that *remembers
// its two halves*: a shortcut is a tree over original edges, not a scalar
// weight. That distinction is what keeps the repo's float32-fold exactness
// contract intact — the query (chquery.go) relaxes a shortcut by unpacking
// it back to its original-edge sequence and folding the weights in float32,
// in path order, exactly as the reference Dijkstra would have. The float64
// sums stored here are used only to *prune the hierarchy* (witness searches
// and parallel-edge domination), and every pruning comparison carries a
// conservative margin covering the worst-case divergence between a float32
// fold and the float64 sum. Being conservative only ever ADDS shortcuts or
// KEEPS parallel edges; it can bloat the hierarchy, never break an answer.
//
// Determinism: the priority queue breaks ties by node ID, witness searches
// are bounded by fixed constants, and every float64 sum is a left-fold in
// construction order — so two Build calls over the same input produce
// bit-identical hierarchies (TestHierarchyDeterministic).
//
// The contraction stops early, leaving an uncontracted "core" plateau
// (about n/32 nodes): late contractions of the dense core would add far
// more shortcuts than they remove, and the query simply treats the core as
// one top level it may traverse freely while climbing.

const (
	// chAutoMinNodes is the Build() threshold above which the hierarchy is
	// constructed automatically; below it the ALT engine already answers
	// queries in microseconds and preprocessing would dominate. Tests force
	// small-graph hierarchies with EnableHierarchy.
	chAutoMinNodes = 16384
	// chEps32 is the float32 unit roundoff (2^-24).
	chEps32 = 1.0 / (1 << 24)
	// chWitnessSettleCap bounds each witness search's settled nodes. Running
	// out of budget means "no witness found", which adds a (possibly
	// unnecessary) shortcut — safe, just fatter.
	chWitnessSettleCap = 64
	// chCoreDivisor sets where contraction stops: the top n/chCoreDivisor
	// nodes stay uncontracted as a core plateau the query may roam. The
	// late contractions are the expensive ones (degrees and witness-margin
	// hop counts both grow), and skipping them costs queries little — the
	// climb phase reaches the core in a few hops.
	chCoreDivisor = 32
)

// chEdge is one edge of the hierarchy's edge arena: an original road edge
// (c1 < 0, weight w32) or a shortcut whose two halves are the arena edges
// c1 then c2. w is the exact float64 sum of the unpacked original weights
// and hops their count; both are pruning metadata only. lbMul deflates a
// (label + w) sum to a certain lower bound on the float32 fold across this
// edge — the query checks it before paying for the fold, because most
// relaxations fail to improve anything. leafOff points at the edge's
// flattened original-weight sequence in hierarchy.leafW (alive edges only;
// filled by freezeCSR so queries fold a contiguous array instead of
// walking the shortcut tree).
type chEdge struct {
	from, to geo.NodeID
	w        float64
	lbMul    float64
	hops     int32
	c1, c2   int32
	leafOff  int32
	w32      float32
}

// hierarchy is the frozen contraction hierarchy: node ranks, the edge
// arena, and two CSR adjacencies over the *alive* arena edges — upEdges
// (rank-increasing, plus core-to-core) relaxed while a query climbs, and
// downEdges (rank-decreasing) relaxed while it descends.
type hierarchy struct {
	rank  []int32 // contraction order; core nodes share rank n
	edges []chEdge

	upHead, upEdge []int32
	dnHead, dnEdge []int32
	// Packed per-slot relax inputs, parallel to upEdge: the climb's inner
	// loop streams these four arrays instead of dereferencing the arena,
	// which would cost a cache miss per relaxation. upW/upLbM are rounded
	// toward -Inf so (label+upW)*upLbM stays a certain fold lower bound.
	upTo  []geo.NodeID
	upW   []float32
	upLbM []float32
	// Reverse-down CSR (downward edges indexed by head node): the query
	// walks it backward from each target to mark the target's descent cone.
	dnRevHead, dnRevEdge []int32
	// Arena-parallel rounded-down copies of w and lbMul (alive edges only),
	// so per-query cone bucketing copies float32s instead of re-rounding.
	wLo, lbmLo []float32
	// leafW holds every alive edge's unpacked original-edge weights in path
	// order, back to back (edge e owns leafW[e.leafOff : e.leafOff+e.hops]).
	leafW []float32

	shortcuts int
	coreSize  int
	diamB     float64 // the margin scale used during construction

	// CH-arm heuristic deflation (see initCHSlack). chMul/chAbs play the
	// role of altMul/altAbs but derive the fold-error hop budget from edge
	// weights instead of the node count, so the heuristic gives up far less
	// pruning power on large connected graphs. They fall back to the ALT
	// constants when the weight-based bound is unavailable or no tighter.
	chMul, chAbs float64
	chTight      bool
	minw         float64 // smallest original edge weight (chTight only)

	// landPack interleaves the per-landmark distance arrays by node
	// (landPack[v*2k+2i] = dist(v -> L_i), [v*2k+2i+1] = dist(L_i -> v)), so
	// one heuristic evaluation touches one or two cache lines instead of 2k.
	landPack []float64
}

// HasHierarchy reports whether the contraction hierarchy is built.
func (g *Graph) HasHierarchy() bool { return g.ch != nil }

// NumShortcuts reports how many shortcut edges the hierarchy added.
func (g *Graph) NumShortcuts() int {
	if g.ch == nil {
		return 0
	}
	return g.ch.shortcuts
}

// CoreSize reports how many nodes the contraction left uncontracted.
func (g *Graph) CoreSize() int {
	if g.ch == nil {
		return 0
	}
	return g.ch.coreSize
}

// EnableHierarchy builds the contraction hierarchy regardless of graph
// size (Build does it automatically above chAutoMinNodes). Idempotent.
// Must not be called concurrently with queries.
func (g *Graph) EnableHierarchy() {
	if g.ch == nil {
		g.buildHierarchy()
	}
}

// SetHierarchy toggles the CH query engine behind Cost/CostPP/CostMatrix.
// It is on whenever the hierarchy is built; turning it off falls back to
// the ALT engine (bit-identical answers — that equivalence is the property
// tests' subject). Not safe to flip concurrently with queries.
func (g *Graph) SetHierarchy(on bool) { g.chOff.Store(!on) }

func (g *Graph) chReady() bool { return g.ch != nil && !g.chOff.Load() }

// chBuilder is the transient contraction state.
type chBuilder struct {
	g     *Graph
	n     int
	edges []chEdge
	alive []bool
	out   [][]int32 // node -> arena edges with from == node
	in    [][]int32 // node -> arena edges with to == node

	contracted []bool
	deleted    []int32 // deleted-neighbors priority term
	order      []int32 // contraction sequence; -1 while uncontracted

	marginK   float64 // 8*eps32*diamB: margin per (hops+2)
	diamB     float64
	diamTight bool // diam bound came from landmarks (strongly connected)

	// Witness-search scratch (generation-stamped).
	wDist []float64
	wHops []int32
	wGen  []uint32
	wTgt  []uint32 // target stamps for the all-settled early stop
	wCur  uint32
	wHeap f64PQ

	// Per-simulation scratch.
	outsW, outsE []int32 // live out-neighbors of the contraction candidate
	shortBuf     []chEdge
	nbr          []geo.NodeID // distinct live neighbors (deleted-neighbors update)
}

// HierarchyBuildSeconds reports the wall-clock cost of the contraction
// preprocessing (0 when no hierarchy is built). Reporting only — the
// hierarchy itself is a pure function of the graph.
func (g *Graph) HierarchyBuildSeconds() float64 { return g.chBuildSecs }

// buildHierarchy contracts the graph into g.ch. Deterministic; runs once.
func (g *Graph) buildHierarchy() {
	start := time.Now()                                            //det:wallclock preprocessing wall-time for HierarchyBuildSeconds reporting; never feeds the hierarchy or any query
	defer func() { g.chBuildSecs = time.Since(start).Seconds() }() //det:wallclock observability field on the graph, outside every routing answer
	n := len(g.coords)
	b := &chBuilder{
		g:          g,
		n:          n,
		out:        make([][]int32, n),
		in:         make([][]int32, n),
		contracted: make([]bool, n),
		deleted:    make([]int32, n),
		order:      make([]int32, n),
		wDist:      make([]float64, n),
		wHops:      make([]int32, n),
		wGen:       make([]uint32, n),
		wTgt:       make([]uint32, n),
	}
	b.initDiamBound()
	b.marginK = 8 * chEps32 * b.diamB
	for i := range b.order {
		b.order[i] = -1
	}
	// Seed the arena with the original edges (exact duplicates folded away,
	// margin-dominated parallels dropped — both fold-safe, see insertEdge).
	for u := 0; u < n; u++ {
		for i := g.headIdx[u]; i < g.headIdx[u+1]; i++ {
			b.insertEdge(chEdge{
				from: geo.NodeID(u), to: g.adjNode[i],
				w: float64(g.adjCost[i]), hops: 1,
				c1: -1, c2: -1, w32: g.adjCost[i],
			})
		}
	}
	originals := len(b.edges)

	coreTarget := n / chCoreDivisor
	if coreTarget < 8 {
		coreTarget = 8
	}
	b.contractAll(coreTarget)

	h := &hierarchy{
		rank:      make([]int32, n),
		edges:     b.edges,
		shortcuts: len(b.edges) - originals,
		diamB:     b.diamB,
	}
	for v := 0; v < n; v++ {
		if b.order[v] >= 0 {
			h.rank[v] = b.order[v]
		} else {
			h.rank[v] = int32(n) // core plateau
			h.coreSize++
		}
	}
	b.freezeCSR(h)
	g.initCHSlack(h, b.diamTight)
	if k := len(g.landmarks); k > 0 {
		h.landPack = make([]float64, n*2*k)
		for v := 0; v < n; v++ {
			for i := 0; i < k; i++ {
				h.landPack[v*2*k+2*i] = g.landTo[i][v]
				h.landPack[v*2*k+2*i+1] = g.landFrom[i][v]
			}
		}
	}
	g.ch = h
}

// initCHSlack derives the CH query's heuristic deflation. The ALT constants
// assume a fold of up to n-1 additions because that is all a simple path
// can have; but when the graph is strongly connected (every pairwise
// distance is at most 2*diam) and every edge weight is at least minw, any
// walk whose fold stays below a few diameters has at most ~8*diam/minw
// hops — usually orders of magnitude fewer than n. Deflating the landmark
// bounds by that hop budget instead of n keeps the heuristic admissible for
// every path the query's finalization and pruning rules must protect (their
// folds and labels all live below 4*diam, enforced by the maxUB guard in
// chSearchFrom), while shrinking the slack band the search must explore
// around the optimal corridor by the same factor. Falls back to the ALT
// constants whenever the weight-based budget is unavailable or no tighter.
func (g *Graph) initCHSlack(h *hierarchy, diamTight bool) {
	h.chMul, h.chAbs = g.altMul, g.altAbs
	if len(g.landmarks) == 0 || !diamTight {
		return
	}
	minw := math.Inf(1)
	for _, c := range g.adjCost {
		if fc := float64(c); fc < minw {
			minw = fc
		}
	}
	if !(minw > 0) {
		return
	}
	khop := math.Ceil(8 * g.diam / minw)
	if khop < 1 {
		khop = 1
	}
	n := float64(len(g.coords))
	slack := 4 * khop * chEps32
	// Gates: the hop budget must be comfortably representable (so the
	// "k hops => fold >= k*minw*(7/8)" contradiction holds) and actually
	// tighter than the simple-path budget; otherwise keep ALT's constants.
	if khop*chEps32 > 1.0/64 || khop >= n || slack >= 4*n*chEps32 {
		return
	}
	h.chMul = 1 - slack
	h.chAbs = slack * 4 * g.diam
	h.chTight = true
	h.minw = minw
}

// f32Down converts x to the largest float32 that does not exceed it, so a
// bound computed from the converted value stays a bound.
func f32Down(x float64) float32 {
	f := float32(x)
	if float64(f) > x {
		f = math.Nextafter32(f, float32(math.Inf(-1)))
	}
	return f
}

// initDiamBound derives diamB, an upper bound on the float64 sum of any
// simple path — the scale of every pruning margin. The landmark arrays give
// a tight 2x-diameter bound when the graph is strongly connected; otherwise
// (disconnected property-test graphs, tiny forced hierarchies) the loose
// (n-1)*maxEdge bound is still sound because near-optimal folds ride on
// simple paths.
func (b *chBuilder) initDiamBound() {
	g := b.g
	var maxEdge float64
	for _, c := range g.adjCost {
		if fc := float64(c); fc > maxEdge {
			maxEdge = fc
		}
	}
	b.diamB = float64(b.n-1) * maxEdge
	if len(g.landmarks) == 0 {
		return
	}
	for _, d := range g.landFrom[0] {
		if math.IsInf(d, 1) {
			return // not strongly connected: keep the loose bound
		}
	}
	for _, d := range g.landTo[0] {
		if math.IsInf(d, 1) {
			return
		}
	}
	b.diamTight = true
	if lb := 2 * g.diam; lb < b.diamB {
		b.diamB = lb
	}
}

// margin is the fold-vs-sum divergence bound for comparing two paths with
// a combined hop count h: two float64 path sums must differ by more than
// this before the corresponding float32 folds are guaranteed to order the
// same way for every shared prefix.
func (b *chBuilder) margin(h int32) float64 { return b.marginK * float64(h+2) }

// liveOut returns u's overlay out-list, swap-compacting away edges that
// are dead or lead to contracted nodes (both conditions are permanent, so
// dropping the entries is safe; the arena still holds every edge for the
// final CSRs). The compaction is what keeps witness searches from
// re-scanning a contraction's whole history — it took the build from
// O(n^1.8) to roughly linear in practice. Deterministic: the removal
// pattern is a pure function of the operation sequence.
func (b *chBuilder) liveOut(u geo.NodeID) []int32 {
	lst := b.out[u]
	for k := 0; k < len(lst); {
		ei := lst[k]
		if !b.alive[ei] || b.contracted[b.edges[ei].to] {
			lst[k] = lst[len(lst)-1]
			lst = lst[:len(lst)-1]
			continue
		}
		k++
	}
	b.out[u] = lst
	return lst
}

// liveIn is liveOut for the overlay in-list.
func (b *chBuilder) liveIn(u geo.NodeID) []int32 {
	lst := b.in[u]
	for k := 0; k < len(lst); {
		ei := lst[k]
		if !b.alive[ei] || b.contracted[b.edges[ei].from] {
			lst[k] = lst[len(lst)-1]
			lst = lst[:len(lst)-1]
			continue
		}
		k++
	}
	b.in[u] = lst
	return lst
}

// insertEdge adds an arena edge between two uncontracted nodes, applying
// the parallel-edge rules: an exact duplicate (same original single edge)
// is folded away; a new edge whose float32 fold provably never beats an
// existing parallel edge (float64 sums more than margin apart) is dropped;
// an existing parallel the new edge provably always beats is killed. Edges
// within margin of each other coexist — the query relaxes both, so a
// near-tie can never silently lose the fold-optimal representative.
func (b *chBuilder) insertEdge(e chEdge) {
	for _, ei := range b.liveOut(e.from) {
		ex := &b.edges[ei]
		if ex.to != e.to {
			continue
		}
		if ex.hops == 1 && e.hops == 1 && ex.w32 == e.w32 {
			return // bitwise-identical original: one copy folds identically
		}
		m := b.margin(ex.hops + e.hops)
		if ex.w <= e.w-m {
			return // dominated: existing folds <= new for every prefix
		}
		if e.w <= ex.w-m {
			b.alive[ei] = false // new edge dominates the existing parallel
		}
	}
	idx := int32(len(b.edges))
	// A float32 left-fold of h non-negative additions starting from any
	// representable label loses at most a (1-eps32)^h factor against the
	// exact sum; +2 hops absorb the float64 dust in w itself.
	e.lbMul = 1 - float64(e.hops+2)*chEps32
	b.edges = append(b.edges, e)
	b.alive = append(b.alive, true)
	b.out[e.from] = append(b.out[e.from], idx)
	b.in[e.to] = append(b.in[e.to], idx)
}

// contractAll runs the lazy-update contraction loop until only coreTarget
// nodes remain uncontracted.
func (b *chBuilder) contractAll(coreTarget int) {
	type pqe struct {
		prio int32
		node geo.NodeID
	}
	less := func(x, y pqe) bool {
		if x.prio != y.prio {
			return x.prio < y.prio
		}
		return x.node < y.node
	}
	heap := make([]pqe, 0, b.n)
	push := func(e pqe) {
		heap = append(heap, e)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	pop := func() pqe {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r, s := 2*i+1, 2*i+2, i
			if l < last && less(heap[l], heap[s]) {
				s = l
			}
			if r < last && less(heap[r], heap[s]) {
				s = r
			}
			if s == i {
				break
			}
			heap[i], heap[s] = heap[s], heap[i]
			i = s
		}
		return top
	}

	for v := 0; v < b.n; v++ {
		push(pqe{b.simulate(geo.NodeID(v)), geo.NodeID(v)})
	}
	seq := int32(0)
	remaining := b.n
	for remaining > coreTarget && len(heap) > 0 {
		top := pop()
		if b.contracted[top.node] {
			continue
		}
		prio := b.simulate(top.node) // recompute lazily; fills shortBuf
		if len(heap) > 0 && less(heap[0], pqe{prio, top.node}) {
			push(pqe{prio, top.node})
			continue
		}
		b.contract(top.node, seq)
		seq++
		remaining--
	}
}

// simulate computes v's contraction priority (edge difference + deleted
// neighbors) and leaves the shortcut set a real contraction would add in
// b.shortBuf. A shortcut u->w is needed unless a bounded witness search
// (excluding v) finds a strictly shorter detour — shorter by the fold
// margin, so the detour's float32 fold beats the shortcut's for every
// prefix a query could arrive with.
func (b *chBuilder) simulate(v geo.NodeID) int32 {
	b.shortBuf = b.shortBuf[:0]
	b.outsW, b.outsE = b.outsW[:0], b.outsE[:0]
	for _, ei := range b.liveOut(v) {
		b.outsW = append(b.outsW, int32(b.edges[ei].to))
		b.outsE = append(b.outsE, ei)
	}
	liveOut := len(b.outsE)
	ins := b.liveIn(v)
	liveIn := len(ins)
	for _, ei := range ins {
		if len(b.outsW) == 0 {
			continue
		}
		ea := &b.edges[ei]
		u := ea.from
		maxW := 0.0
		for _, oe := range b.outsE {
			if w := ea.w + b.edges[oe].w; w > maxW {
				maxW = w
			}
		}
		b.witnessSearch(u, v, b.outsW, maxW)
		for k, oe := range b.outsE {
			w := geo.NodeID(b.outsW[k])
			if w == u {
				continue
			}
			eb := &b.edges[oe]
			sum := ea.w + eb.w
			hops := ea.hops + eb.hops
			if b.wGen[w] == b.wCur && sum <= 2*b.diamB &&
				b.wDist[w] < sum-b.margin(hops+b.wHops[w]) {
				continue // witness detour fold-dominates the shortcut
			}
			b.shortBuf = append(b.shortBuf, chEdge{
				from: u, to: w, w: sum, hops: hops, c1: ei, c2: oe,
			})
		}
	}
	return int32(len(b.shortBuf)-liveIn-liveOut) + b.deleted[v]
}

// contract applies the shortcut set simulate just computed for v.
func (b *chBuilder) contract(v geo.NodeID, seq int32) {
	for i := range b.shortBuf {
		b.insertEdge(b.shortBuf[i])
	}
	b.nbr = b.nbr[:0]
	for _, ei := range b.liveOut(v) {
		b.nbr = append(b.nbr, b.edges[ei].to)
	}
	for _, ei := range b.liveIn(v) {
		b.nbr = append(b.nbr, b.edges[ei].from)
	}
	b.contracted[v] = true
	b.order[v] = seq
	for i, x := range b.nbr {
		dup := false
		for _, y := range b.nbr[:i] {
			if x == y {
				dup = true
				break
			}
		}
		if !dup {
			b.deleted[x]++
		}
	}
}

// witnessSearch runs a bounded float64 Dijkstra from u over the live
// overlay excluding the contraction candidate v, stopping once the
// frontier exceeds bound, the settle budget runs out, or every node in
// targets has been settled (a settled distance is final, so continuing
// could not change what simulate reads — the early stop alters nothing
// but the build time). Tentative distances are real path sums, so an
// unsettled hit is still a valid witness; an exhausted budget just means
// "no witness", which is safe.
func (b *chBuilder) witnessSearch(u, v geo.NodeID, targets []int32, bound float64) {
	b.wCur++
	if b.wCur == 0 {
		for i := range b.wGen {
			b.wGen[i] = 0
			b.wTgt[i] = 0
		}
		b.wCur = 1
	}
	open := 0
	for _, w := range targets {
		if geo.NodeID(w) != u && b.wTgt[w] != b.wCur {
			b.wTgt[w] = b.wCur
			open++
		}
	}
	b.wHeap = b.wHeap[:0]
	b.wDist[u] = 0
	b.wHops[u] = 0
	b.wGen[u] = b.wCur
	b.wHeap = append(b.wHeap, f64Item{u, 0})
	settled := 0
	for len(b.wHeap) > 0 && settled < chWitnessSettleCap && open > 0 {
		it := b.wHeap[0]
		last := len(b.wHeap) - 1
		b.wHeap[0] = b.wHeap[last]
		b.wHeap = b.wHeap[:last]
		for i := 0; ; {
			l, r, s := 2*i+1, 2*i+2, i
			if l < last && b.wHeap[l].dist < b.wHeap[s].dist {
				s = l
			}
			if r < last && b.wHeap[r].dist < b.wHeap[s].dist {
				s = r
			}
			if s == i {
				break
			}
			b.wHeap[i], b.wHeap[s] = b.wHeap[s], b.wHeap[i]
			i = s
		}
		if it.dist > bound {
			return
		}
		if it.dist > b.wDist[it.node] {
			continue
		}
		settled++
		if b.wTgt[it.node] == b.wCur {
			b.wTgt[it.node] = b.wCur - 1
			open--
		}
		for _, ei := range b.liveOut(it.node) {
			e := &b.edges[ei]
			if e.to == v {
				continue
			}
			nd := it.dist + e.w
			if b.wGen[e.to] == b.wCur && nd >= b.wDist[e.to] {
				continue
			}
			b.wDist[e.to] = nd
			b.wHops[e.to] = b.wHops[it.node] + e.hops
			b.wGen[e.to] = b.wCur
			// Sift-up push (container/heap indirection is too slow here).
			b.wHeap = append(b.wHeap, f64Item{e.to, nd})
			for i := len(b.wHeap) - 1; i > 0; {
				p := (i - 1) / 2
				if b.wHeap[p].dist <= b.wHeap[i].dist {
					break
				}
				b.wHeap[i], b.wHeap[p] = b.wHeap[p], b.wHeap[i]
				i = p
			}
		}
	}
}

// freezeCSR splits the alive arena edges into the climb (rank-increasing
// or core-to-core) and descend (rank-decreasing) CSR adjacencies. Arena
// order is deterministic, so the CSRs are too.
func (b *chBuilder) freezeCSR(h *hierarchy) {
	n := b.n
	upCount := make([]int32, n)
	dnCount := make([]int32, n)
	up := func(e *chEdge) bool {
		rf, rt := h.rank[e.from], h.rank[e.to]
		return rt > rf || (rf == int32(n) && rt == int32(n))
	}
	nUp, nDn := 0, 0
	for i := range b.edges {
		if !b.alive[i] {
			continue
		}
		if up(&b.edges[i]) {
			upCount[b.edges[i].from]++
			nUp++
		} else {
			dnCount[b.edges[i].from]++
			nDn++
		}
	}
	h.upHead = make([]int32, n+1)
	h.dnHead = make([]int32, n+1)
	for v := 0; v < n; v++ {
		h.upHead[v+1] = h.upHead[v] + upCount[v]
		h.dnHead[v+1] = h.dnHead[v] + dnCount[v]
	}
	h.upEdge = make([]int32, nUp)
	h.dnEdge = make([]int32, nDn)
	upFill := make([]int32, n)
	dnFill := make([]int32, n)
	copy(upFill, h.upHead[:n])
	copy(dnFill, h.dnHead[:n])
	for i := range b.edges {
		if !b.alive[i] {
			continue
		}
		e := &b.edges[i]
		if up(e) {
			h.upEdge[upFill[e.from]] = int32(i)
			upFill[e.from]++
		} else {
			h.dnEdge[dnFill[e.from]] = int32(i)
			dnFill[e.from]++
		}
	}
	h.wLo = make([]float32, len(b.edges))
	h.lbmLo = make([]float32, len(b.edges))
	for i := range b.edges {
		if b.alive[i] {
			h.wLo[i] = f32Down(b.edges[i].w)
			h.lbmLo[i] = f32Down(b.edges[i].lbMul)
		}
	}
	h.upTo = make([]geo.NodeID, nUp)
	h.upW = make([]float32, nUp)
	h.upLbM = make([]float32, nUp)
	for k, ei := range h.upEdge {
		h.upTo[k] = b.edges[ei].to
		h.upW[k] = h.wLo[ei]
		h.upLbM[k] = h.lbmLo[ei]
	}
	// Transpose the downward edges by head node for the query's
	// target-cone marking pass.
	for i := range dnCount {
		dnCount[i] = 0
	}
	for _, ei := range h.dnEdge {
		dnCount[b.edges[ei].to]++
	}
	h.dnRevHead = make([]int32, n+1)
	for v := 0; v < n; v++ {
		h.dnRevHead[v+1] = h.dnRevHead[v] + dnCount[v]
	}
	h.dnRevEdge = make([]int32, nDn)
	copy(dnFill, h.dnRevHead[:n])
	for _, ei := range h.dnEdge {
		h.dnRevEdge[dnFill[b.edges[ei].to]] = ei
		dnFill[b.edges[ei].to]++
	}
	// Flatten every alive edge's shortcut tree into its original-edge
	// weight sequence, in path order (c1's leaves before c2's). Children
	// may be dominated-dead arena edges; their trees are still intact.
	var total int64
	for i := range b.edges {
		b.edges[i].leafOff = -1
		if b.alive[i] {
			total += int64(b.edges[i].hops)
		}
	}
	h.leafW = make([]float32, 0, total)
	var stk []int32
	for i := range b.edges {
		if !b.alive[i] {
			continue
		}
		h.edges[i].leafOff = int32(len(h.leafW))
		stk = append(stk[:0], int32(i))
		for len(stk) > 0 {
			e := &h.edges[stk[len(stk)-1]]
			stk = stk[:len(stk)-1]
			if e.c1 < 0 {
				h.leafW = append(h.leafW, e.w32)
				continue
			}
			stk = append(stk, e.c2, e.c1)
		}
	}
}
