package roadnet

import (
	"container/heap"
	"container/list"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"watter/internal/geo"
)

// Graph is an explicit weighted directed road graph. Point-to-point costs
// are answered by the ALT engine (see pp.go): an A* search guided by
// landmark lower bounds, precomputed at Build time, that explores only the
// corridor between the endpoints instead of the whole city.
//
// The original full single-source Dijkstra is retained behind a bounded LRU
// cache of per-source distance arrays. It backs Path (which needs prev
// chains), Precompute-pinned small graphs (where every source fits in the
// cache and Cost becomes an O(1) lookup), and CostSSSP, the reference
// implementation the equivalence tests and benchmarks compare the engine
// against.
type Graph struct {
	coords []geo.Point
	// CSR adjacency (forward) and its transpose (reverse, used by the
	// landmark preprocessing to compute distances *to* each landmark).
	headIdx []int32 // len = numNodes+1
	adjNode []geo.NodeID
	adjCost []float32
	revHead []int32
	revNode []geo.NodeID
	revCost []float32
	bounds  geo.Rect

	// ALT preprocessing (immutable after Build; see alt.go).
	landmarks []geo.NodeID
	landFrom  [][]float64 // landFrom[i][v] = dist(landmarks[i] -> v)
	landTo    [][]float64 // landTo[i][v]   = dist(v -> landmarks[i])
	altMul    float64     // multiplicative admissibility slack
	altAbs    float64     // absolute admissibility slack (seconds)

	// diam is the largest finite landmark distance observed during ALT
	// preprocessing — an observed lower bound on the diameter that doubles
	// as a sound 2x upper bound when the graph is strongly connected. The
	// contraction hierarchy's pruning margins are scaled from it.
	diam float64

	// Contraction hierarchy (see contract.go / chquery.go). Built by Build
	// for graphs >= chAutoMinNodes nodes, or on demand via EnableHierarchy;
	// chOff falls queries back to the ALT engine (bit-identical answers).
	ch          *hierarchy
	chOff       atomic.Bool
	chBuildSecs float64 // wall-clock cost of buildHierarchy (benchmark reporting only)

	// ppOff disables the point-to-point engine behind Cost (legacy cached
	// full-Dijkstra mode); pinned is set by Precompute, after which every
	// source is resident and the cache lookup is the fastest path.
	ppOff  atomic.Bool
	pinned atomic.Bool

	// ppPool / chPool recycle per-query search state (pp.go / chquery.go).
	ppPool sync.Pool
	chPool sync.Pool

	mu       sync.Mutex
	cache    map[geo.NodeID]*cacheSlot
	lru      *list.List // front = least recently used; values are geo.NodeID
	maxCache int
}

// cacheSlot pairs a distance entry with its LRU list element so a cache hit
// can refresh recency in O(1).
type cacheSlot struct {
	ent  *distEntry
	elem *list.Element
}

type distEntry struct {
	// once dedups the Dijkstra computation: the entry is published in the
	// cache before it is computed, so concurrent misses on the same source
	// block on one computation instead of each running their own.
	once sync.Once
	dist []float32
	prev []geo.NodeID
}

// edge is a temporary construction-time edge.
type edge struct {
	from, to geo.NodeID
	cost     float32
}

// GraphBuilder accumulates nodes and edges before freezing them into a
// Graph's CSR representation.
type GraphBuilder struct {
	coords []geo.Point
	edges  []edge
}

// AddNode appends a node at p and returns its NodeID.
func (b *GraphBuilder) AddNode(p geo.Point) geo.NodeID {
	b.coords = append(b.coords, p)
	return geo.NodeID(len(b.coords) - 1)
}

// AddEdge adds a directed edge with the given travel time in seconds.
func (b *GraphBuilder) AddEdge(from, to geo.NodeID, seconds float64) {
	b.edges = append(b.edges, edge{from, to, float32(seconds)})
}

// AddBidirectional adds edges in both directions with the same travel time.
func (b *GraphBuilder) AddBidirectional(u, v geo.NodeID, seconds float64) {
	b.AddEdge(u, v, seconds)
	b.AddEdge(v, u, seconds)
}

// Build freezes the builder into a Graph and runs the ALT preprocessing
// (landmark selection plus per-landmark distance arrays). The builder must
// not be reused.
func (b *GraphBuilder) Build() (*Graph, error) {
	n := len(b.coords)
	if n == 0 {
		return nil, fmt.Errorf("roadnet: graph has no nodes")
	}
	for _, e := range b.edges {
		if e.from < 0 || int(e.from) >= n || e.to < 0 || int(e.to) >= n {
			return nil, fmt.Errorf("roadnet: edge (%d,%d) references unknown node", e.from, e.to)
		}
		if e.cost < 0 {
			return nil, fmt.Errorf("roadnet: edge (%d,%d) has negative cost %f", e.from, e.to, e.cost)
		}
	}
	g := &Graph{
		coords:   b.coords,
		headIdx:  make([]int32, n+1),
		adjNode:  make([]geo.NodeID, len(b.edges)),
		adjCost:  make([]float32, len(b.edges)),
		revHead:  make([]int32, n+1),
		revNode:  make([]geo.NodeID, len(b.edges)),
		revCost:  make([]float32, len(b.edges)),
		cache:    make(map[geo.NodeID]*cacheSlot),
		lru:      list.New(),
		maxCache: 4096,
	}
	counts := make([]int32, n)
	for _, e := range b.edges {
		counts[e.from]++
	}
	for i := 0; i < n; i++ {
		g.headIdx[i+1] = g.headIdx[i] + counts[i]
	}
	fill := make([]int32, n)
	copy(fill, g.headIdx[:n])
	for _, e := range b.edges {
		g.adjNode[fill[e.from]] = e.to
		g.adjCost[fill[e.from]] = e.cost
		fill[e.from]++
	}
	for i := range counts {
		counts[i] = 0
	}
	for _, e := range b.edges {
		counts[e.to]++
	}
	for i := 0; i < n; i++ {
		g.revHead[i+1] = g.revHead[i] + counts[i]
	}
	copy(fill, g.revHead[:n])
	for _, e := range b.edges {
		g.revNode[fill[e.to]] = e.from
		g.revCost[fill[e.to]] = e.cost
		fill[e.to]++
	}
	g.bounds = boundsOf(g.coords)
	g.initLandmarks(defaultLandmarkCount(n))
	if n >= chAutoMinNodes {
		// Real-city scale: ALT query cost grows with the corridor, so the
		// contraction hierarchy pays for itself within a few leg matrices
		// (watterbench -benchroute reports the amortization). Small graphs
		// skip it; tests force it with EnableHierarchy.
		g.buildHierarchy()
	}
	return g, nil
}

func boundsOf(pts []geo.Point) geo.Rect {
	r := geo.Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// SetCacheSize bounds the number of cached single-source distance arrays.
// Safe to call at any time; existing entries are evicted lazily.
func (g *Graph) SetCacheSize(n int) {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	g.maxCache = n
	g.mu.Unlock()
}

// FlushCache drops every cached single-source distance array (and the
// Precompute pin). Used by benchmarks that measure the cold full-Dijkstra
// path.
func (g *Graph) FlushCache() {
	g.mu.Lock()
	g.cache = make(map[geo.NodeID]*cacheSlot)
	g.lru.Init()
	g.mu.Unlock()
	g.pinned.Store(false)
}

// SetPointToPoint toggles the ALT engine behind Cost. It is on by default;
// turning it off restores the legacy cached full-Dijkstra behavior. The two
// modes return bit-identical distances (enforced by the equivalence property
// tests); the toggle exists for benchmarks and those tests. Not safe to
// flip concurrently with queries.
func (g *Graph) SetPointToPoint(on bool) { g.ppOff.Store(!on) }

// NumNodes implements Network.
func (g *Graph) NumNodes() int { return len(g.coords) }

// Coord implements Network.
func (g *Graph) Coord(n geo.NodeID) geo.Point { return g.coords[n] }

// Bounds implements Network.
func (g *Graph) Bounds() geo.Rect { return g.bounds }

// Cost implements Network. Precompute-pinned graphs answer from the full
// SSSP cache in O(1); everything else goes through the point-to-point ALT
// engine, which returns the same float32 shortest-path fold bit-for-bit.
func (g *Graph) Cost(from, to geo.NodeID) float64 {
	if from == to {
		return 0
	}
	if g.pinned.Load() || g.ppOff.Load() {
		return g.costSSSP(from, to)
	}
	return g.CostPP(from, to)
}

// CostSSSP answers a point-to-point query via the legacy cached full
// single-source Dijkstra. It is the reference implementation the engine is
// validated against and the "cold Dijkstra" arm of watterbench -benchroute.
func (g *Graph) CostSSSP(from, to geo.NodeID) float64 { return g.costSSSP(from, to) }

func (g *Graph) costSSSP(from, to geo.NodeID) float64 {
	if from == to {
		return 0
	}
	e := g.source(from)
	return float64(e.dist[to])
}

// Path implements PathNetwork.
func (g *Graph) Path(from, to geo.NodeID) []geo.NodeID {
	e := g.source(from)
	if math.IsInf(float64(e.dist[to]), 1) {
		return nil
	}
	var rev []geo.NodeID
	for n := to; n != from; n = e.prev[n] {
		rev = append(rev, n)
		if len(rev) > len(g.coords) {
			return nil // defensive: broken prev chain
		}
	}
	rev = append(rev, from)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// source returns the cached full-SSSP entry for one source node,
// computing it on first use.
//
//det:hotalloc cache-miss path; pinned and warmed graphs answer from the resident entry without allocating
//det:specwrite mutex-guarded memo of a pure function of the immutable graph; the distances read back are bit-identical no matter which goroutine populated the entry or in what order
func (g *Graph) source(from geo.NodeID) *distEntry {
	g.mu.Lock()
	slot, ok := g.cache[from]
	if ok {
		// LRU: a hit refreshes recency so hot sources survive eviction
		// pressure (the cache used to be FIFO in LRU's clothing).
		g.lru.MoveToBack(slot.elem)
	} else {
		for len(g.cache) >= g.maxCache {
			// Evict least recently used sources until under the bound
			// (a loop so a shrunk maxCache is enforced, not just chased).
			// A goroutine still computing or reading a victim keeps its
			// own reference; eviction only drops the shared handle.
			front := g.lru.Front()
			g.lru.Remove(front)
			delete(g.cache, front.Value.(geo.NodeID))
		}
		slot = &cacheSlot{ent: &distEntry{}, elem: g.lru.PushBack(from)}
		g.cache[from] = slot
	}
	g.mu.Unlock()
	e := slot.ent
	e.once.Do(func() { e.dist, e.prev = g.dijkstra(from) })
	return e
}

// pqItem is a priority-queue element for Dijkstra.
type pqItem struct {
	node geo.NodeID
	dist float32
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

//det:hotalloc full SSSP runs once per cache-missed source; its arrays live in the cache afterwards
func (g *Graph) dijkstra(src geo.NodeID) (dist []float32, prev []geo.NodeID) {
	n := len(g.coords)
	dist = make([]float32, n)
	prev = make([]geo.NodeID, n)
	inf := float32(math.Inf(1))
	for i := range dist {
		dist[i] = inf
		prev[i] = geo.InvalidNode
	}
	dist[src] = 0
	q := pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > dist[it.node] {
			continue // stale entry
		}
		for i := g.headIdx[it.node]; i < g.headIdx[it.node+1]; i++ {
			v := g.adjNode[i]
			nd := it.dist + g.adjCost[i]
			if nd < dist[v] {
				dist[v] = nd
				prev[v] = it.node
				heap.Push(&q, pqItem{v, nd})
			}
		}
	}
	return dist, prev
}

// Precompute runs Dijkstra from every node and pins the results in the
// cache, turning later Cost calls into O(1) lookups. Only sensible for
// small graphs (memory is O(V^2)).
func (g *Graph) Precompute() {
	g.mu.Lock()
	if g.maxCache < len(g.coords) {
		g.maxCache = len(g.coords)
	}
	g.mu.Unlock()
	for n := 0; n < len(g.coords); n++ {
		g.source(geo.NodeID(n))
	}
	g.pinned.Store(true)
}
