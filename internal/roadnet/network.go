// Package roadnet provides the road-network substrate every WATTER component
// travels on: an explicit weighted graph with Dijkstra shortest paths (used
// for small and mid-size cities and for all correctness tests) and a
// closed-form grid-metric city (used for large-scale benchmark sweeps where
// millions of cost queries must stay cheap).
//
// The rest of the system depends only on the Network interface: a travel
// time oracle cost(l1, l2) in seconds plus enough geometry to build spatial
// indexes. The paper's shortest travel cost "cost(li, lj)" maps directly to
// Network.Cost.
package roadnet

import (
	"fmt"

	"watter/internal/geo"
)

// Network is a travel-time oracle over a fixed set of locations.
//
// Implementations must be safe for concurrent readers after construction.
type Network interface {
	// NumNodes returns the number of locations; valid NodeIDs are
	// [0, NumNodes).
	NumNodes() int
	// Coord returns the planar position of a node in meters.
	Coord(n geo.NodeID) geo.Point
	// Cost returns the shortest travel time in seconds from one node to
	// another. Cost(n, n) is 0. Unreachable pairs return +Inf.
	Cost(from, to geo.NodeID) float64
	// Bounds returns the bounding box of all node coordinates.
	Bounds() geo.Rect
}

// PathNetwork is implemented by networks that can also materialize the
// node sequence of a shortest path (used by visualization and by tests that
// validate route feasibility edge by edge).
type PathNetwork interface {
	Network
	// Path returns the node sequence of a shortest path from one node to
	// another, inclusive of both endpoints. Returns nil if unreachable.
	Path(from, to geo.NodeID) []geo.NodeID
}

// ValidateNode returns an error if n is not a node of net.
func ValidateNode(net Network, n geo.NodeID) error {
	if n < 0 || int(n) >= net.NumNodes() {
		return fmt.Errorf("roadnet: node %d out of range [0,%d)", n, net.NumNodes())
	}
	return nil
}

// TriangleSlack reports cost(a,c) - (cost(a,b) + cost(b,c)). For any
// shortest-path metric this must be <= 0 (up to floating error); property
// tests use it as an invariant.
func TriangleSlack(net Network, a, b, c geo.NodeID) float64 {
	return net.Cost(a, c) - (net.Cost(a, b) + net.Cost(b, c))
}
