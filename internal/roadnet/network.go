// Package roadnet provides the road-network substrate every WATTER component
// travels on: an explicit weighted graph with Dijkstra shortest paths (used
// for small and mid-size cities and for all correctness tests) and a
// closed-form grid-metric city (used for large-scale benchmark sweeps where
// millions of cost queries must stay cheap).
//
// The rest of the system depends only on the Network interface: a travel
// time oracle cost(l1, l2) in seconds plus enough geometry to build spatial
// indexes. The paper's shortest travel cost "cost(li, lj)" maps directly to
// Network.Cost.
package roadnet

import (
	"fmt"
	"math"

	"watter/internal/geo"
)

// Network is a travel-time oracle over a fixed set of locations.
//
// Implementations must be safe for concurrent readers after construction.
type Network interface {
	// NumNodes returns the number of locations; valid NodeIDs are
	// [0, NumNodes).
	NumNodes() int
	// Coord returns the planar position of a node in meters.
	Coord(n geo.NodeID) geo.Point
	// Cost returns the shortest travel time in seconds from one node to
	// another. Cost(n, n) is 0. Unreachable pairs return +Inf.
	Cost(from, to geo.NodeID) float64
	// Bounds returns the bounding box of all node coordinates.
	Bounds() geo.Rect
}

// PathNetwork is implemented by networks that can also materialize the
// node sequence of a shortest path (used by visualization and by tests that
// validate route feasibility edge by edge).
type PathNetwork interface {
	Network
	// Path returns the node sequence of a shortest path from one node to
	// another, inclusive of both endpoints. Returns nil if unreachable.
	Path(from, to geo.NodeID) []geo.NodeID
}

// MatrixNetwork is an optional Network extension for batched many-to-many
// cost queries: out[i][j] = Cost(sources[i], targets[j]). Implementations
// answer a whole matrix with one pruned search per distinct source instead
// of len(sources)*len(targets) independent oracle calls; Graph's ALT engine
// implements it.
type MatrixNetwork interface {
	Network
	CostMatrix(sources, targets []geo.NodeID) [][]float64
}

// matrixFiller is the zero-allocation internal form of MatrixNetwork.
type matrixFiller interface {
	costMatrixInto(sources, targets []geo.NodeID, maxCost float64, out []float64)
}

// FillCostMatrix fills out (row-major, len >= len(sources)*len(targets))
// with out[i*len(targets)+j] = Cost(sources[i], targets[j]), using the
// network's batched engine when it has one and falling back to pairwise
// Cost calls otherwise (closed-form networks like GridCity answer each pair
// in O(1), so the fallback is already optimal for them). This is the
// allocation-free call the route planner's leg matrix and the worker
// index's ring ranking are built on.
func FillCostMatrix(net Network, sources, targets []geo.NodeID, out []float64) {
	FillCostMatrixWithin(net, sources, targets, math.Inf(1), out)
}

// FillCostMatrixWithin is FillCostMatrix with a travel-time budget: entries
// whose cost exceeds maxCost may be reported as +Inf instead of their exact
// value (every entry <= maxCost is exact). A batched engine uses the budget
// to stop each search early, which keeps queries cheap when the caller only
// wants candidates within a deadline slack.
func FillCostMatrixWithin(net Network, sources, targets []geo.NodeID, maxCost float64, out []float64) {
	if m, ok := net.(matrixFiller); ok {
		m.costMatrixInto(sources, targets, maxCost, out)
		return
	}
	if m, ok := net.(MatrixNetwork); ok {
		// External batched implementations see the documented public API;
		// their exact entries satisfy the Within contract trivially.
		nt := len(targets)
		for i, row := range m.CostMatrix(sources, targets) {
			copy(out[i*nt:(i+1)*nt], row)
		}
		return
	}
	nt := len(targets)
	for i, s := range sources {
		row := out[i*nt : (i+1)*nt]
		for j, t := range targets {
			row[j] = net.Cost(s, t)
		}
	}
}

// ValidateNode returns an error if n is not a node of net.
func ValidateNode(net Network, n geo.NodeID) error {
	if n < 0 || int(n) >= net.NumNodes() {
		return fmt.Errorf("roadnet: node %d out of range [0,%d)", n, net.NumNodes())
	}
	return nil
}

// TriangleSlack reports cost(a,c) - (cost(a,b) + cost(b,c)). For any
// shortest-path metric this must be <= 0 (up to floating error); property
// tests use it as an invariant.
func TriangleSlack(net Network, a, b, c geo.NodeID) float64 {
	return net.Cost(a, c) - (net.Cost(a, b) + net.Cost(b, c))
}
