package roadnet

import (
	"math"

	"watter/internal/geo"
)

// GridCity is a closed-form road network: a W x H lattice of intersections
// spaced CellMeters apart, traversed at Speed meters/second along axis-
// aligned streets. Travel time between any two intersections is the L1
// distance divided by speed — the exact Dijkstra answer for a uniform grid
// graph, computed in O(1).
//
// Large-scale benchmark sweeps use GridCity so that the millions of
// cost(l1,l2) queries issued by the shareability graph stay allocation-free;
// correctness tests cross-check it against an explicit Graph built over the
// same lattice.
type GridCity struct {
	W, H       int
	CellMeters float64
	Speed      float64 // meters per second
}

// NewGridCity returns a lattice city. Typical calibration: 200 m blocks at
// 8 m/s (≈29 km/h) gives 25 s per block, similar to urban taxi speeds.
func NewGridCity(w, h int, cellMeters, speed float64) *GridCity {
	if w < 1 || h < 1 {
		panic("roadnet: GridCity dimensions must be >= 1")
	}
	if cellMeters <= 0 || speed <= 0 {
		panic("roadnet: GridCity cellMeters and speed must be positive")
	}
	return &GridCity{W: w, H: h, CellMeters: cellMeters, Speed: speed}
}

// NumNodes implements Network.
func (c *GridCity) NumNodes() int { return c.W * c.H }

// Node returns the NodeID of the intersection at column x, row y.
func (c *GridCity) Node(x, y int) geo.NodeID { return geo.NodeID(y*c.W + x) }

// XY returns the column and row of node n.
func (c *GridCity) XY(n geo.NodeID) (x, y int) { return int(n) % c.W, int(n) / c.W }

// Coord implements Network.
func (c *GridCity) Coord(n geo.NodeID) geo.Point {
	x, y := c.XY(n)
	return geo.Point{X: float64(x) * c.CellMeters, Y: float64(y) * c.CellMeters}
}

// Cost implements Network: L1 lattice distance over street speed.
func (c *GridCity) Cost(from, to geo.NodeID) float64 {
	fx, fy := c.XY(from)
	tx, ty := c.XY(to)
	blocks := math.Abs(float64(fx-tx)) + math.Abs(float64(fy-ty))
	return blocks * c.CellMeters / c.Speed
}

// Bounds implements Network.
func (c *GridCity) Bounds() geo.Rect {
	return geo.Rect{
		Min: geo.Point{},
		Max: geo.Point{X: float64(c.W-1) * c.CellMeters, Y: float64(c.H-1) * c.CellMeters},
	}
}

// Path implements PathNetwork with an L-shaped (x then y) shortest path.
func (c *GridCity) Path(from, to geo.NodeID) []geo.NodeID {
	fx, fy := c.XY(from)
	tx, ty := c.XY(to)
	path := []geo.NodeID{from}
	x, y := fx, fy
	for x != tx {
		if x < tx {
			x++
		} else {
			x--
		}
		path = append(path, c.Node(x, y))
	}
	for y != ty {
		if y < ty {
			y++
		} else {
			y--
		}
		path = append(path, c.Node(x, y))
	}
	return path
}

// AsGraph materializes the lattice as an explicit Graph with identical
// costs. Used by tests to validate the closed form and by experiments that
// need a "real" graph of the same shape.
func (c *GridCity) AsGraph() *Graph {
	var b GraphBuilder
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			b.AddNode(geo.Point{X: float64(x) * c.CellMeters, Y: float64(y) * c.CellMeters})
		}
	}
	sec := c.CellMeters / c.Speed
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			if x+1 < c.W {
				b.AddBidirectional(c.Node(x, y), c.Node(x+1, y), sec)
			}
			if y+1 < c.H {
				b.AddBidirectional(c.Node(x, y), c.Node(x, y+1), sec)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err) // unreachable: builder input is well formed by construction
	}
	return g
}
