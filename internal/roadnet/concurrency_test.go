package roadnet

import (
	"math/rand"
	"sync"
	"testing"

	"watter/internal/geo"
)

// TestGraphCostConcurrent hammers the Dijkstra cache from many goroutines
// and cross-checks every answer against the lattice closed form. Run under
// -race this is the safety proof for the parallel sweep engine, which
// shares one Graph across all replicate runs.
func TestGraphCostConcurrent(t *testing.T) {
	city := NewGridCity(12, 12, 100, 5)
	g := city.AsGraph()
	g.SetCacheSize(16) // force constant eviction pressure

	const goroutines = 16
	const queries = 400
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			n := g.NumNodes()
			for q := 0; q < queries; q++ {
				from := geo.NodeID(rng.Intn(n))
				to := geo.NodeID(rng.Intn(n))
				got := g.Cost(from, to)
				want := city.Cost(from, to)
				if got != want {
					select {
					case errs <- "cost mismatch under concurrency":
					default:
					}
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
}

// TestGraphPathConcurrent exercises the prev-chain reconstruction (which
// shares cache entries with Cost) under concurrent eviction.
func TestGraphPathConcurrent(t *testing.T) {
	city := NewGridCity(8, 8, 100, 5)
	g := city.AsGraph()
	g.SetCacheSize(4)

	var wg sync.WaitGroup
	bad := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			n := g.NumNodes()
			for q := 0; q < 200; q++ {
				from := geo.NodeID(rng.Intn(n))
				to := geo.NodeID(rng.Intn(n))
				path := g.Path(from, to)
				if len(path) == 0 || path[0] != from || path[len(path)-1] != to {
					select {
					case bad <- "broken path under concurrency":
					default:
					}
					return
				}
			}
		}(int64(w + 100))
	}
	wg.Wait()
	close(bad)
	if msg, open := <-bad; open {
		t.Fatal(msg)
	}
}

// TestGraphCacheShrinkEnforced: shrinking the bound below the current
// population must actually drain the cache on the next miss, not merely
// stop it growing.
func TestGraphCacheShrinkEnforced(t *testing.T) {
	city := NewGridCity(10, 10, 100, 5)
	g := city.AsGraph()
	for n := 0; n < 40; n++ {
		g.CostSSSP(geo.NodeID(n), geo.NodeID(n+1))
	}
	g.mu.Lock()
	grown := len(g.cache)
	g.mu.Unlock()
	if grown < 30 {
		t.Fatalf("warmup cached %d sources, want >= 30", grown)
	}
	g.SetCacheSize(4)
	g.CostSSSP(geo.NodeID(90), geo.NodeID(3)) // one miss triggers eviction
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.cache) > 4 || g.lru.Len() != len(g.cache) {
		t.Fatalf("cache not shrunk: %d entries (lru %d), want <= 4", len(g.cache), g.lru.Len())
	}
}

// TestGraphSetCacheSizeConcurrent resizes the cache while queries run; the
// point is purely that -race stays silent.
func TestGraphSetCacheSizeConcurrent(t *testing.T) {
	city := NewGridCity(6, 6, 100, 5)
	g := city.AsGraph()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			g.SetCacheSize(1 + i%8)
		}
	}()
	rng := rand.New(rand.NewSource(9))
	n := g.NumNodes()
	for q := 0; q < 500; q++ {
		from := geo.NodeID(rng.Intn(n))
		to := geo.NodeID(rng.Intn(n))
		if got, want := g.Cost(from, to), city.Cost(from, to); got != want {
			t.Fatalf("cost(%d,%d) = %v, want %v", from, to, got, want)
		}
	}
	<-done
}
