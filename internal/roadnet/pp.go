package roadnet

import (
	"math"

	"watter/internal/geo"
)

// Point-to-point routing engine: goal-directed A* over the CSR graph using
// the ALT lower bounds from alt.go, generalized to one-source/many-targets
// so a route planner leg matrix or a ring of dispatch candidates is filled
// by one pruned search per source instead of a full city Dijkstra each.
//
// Exactness: relaxations accumulate in float32 exactly like the reference
// Dijkstra (nd = dist[u] + w), the search keeps no closed list (worse
// entries are skipped as stale, improved nodes re-enter the queue), and a
// target's distance is only finalized once the minimum queue key — a lower
// bound on every remaining path's float32 fold, because the heuristic is
// admissible for the float32 metric — reaches it. The result is therefore
// the same min-over-paths float32 left-fold the full Dijkstra computes,
// bit for bit; the property tests enforce this on random jittered cities.
//
// Concurrency: the graph and landmark arrays are immutable after Build;
// all mutable search state lives in a pooled ppScratch, so any number of
// goroutines may query concurrently (the sweep engine shares one Graph
// across replicate runs).

// ppItem is a search frontier entry: key = dist + heuristic orders the
// queue, dist is the tentative float32 distance at insertion time.
type ppItem struct {
	key  float64
	dist float32
	node geo.NodeID
}

// ppHeap is a hand-rolled binary min-heap on key (container/heap's
// interface indirection costs ~2x on this hot path).
type ppHeap []ppItem

func (h *ppHeap) push(it ppItem) {
	q := append(*h, it)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q[p].key <= q[i].key {
			break
		}
		q[p], q[i] = q[i], q[p]
		i = p
	}
	*h = q
}

func (h *ppHeap) pop() ppItem {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && q[l].key < q[s].key {
			s = l
		}
		if r < n && q[r].key < q[s].key {
			s = r
		}
		if s == i {
			break
		}
		q[i], q[s] = q[s], q[i]
		i = s
	}
	*h = q
	return top
}

// ppScratch is the reusable per-query state: generation-stamped distance
// and heuristic arrays (O(1) reset), the frontier heap, and small target
// bookkeeping slices.
type ppScratch struct {
	dist []float32
	gen  []uint32
	// hval/hgen cache the per-node heuristic under the target-set epoch
	// hcur, which only advances when sc.uniq changes — so a matrix's
	// sources share one heuristic evaluation per node.
	hval []float64
	hgen []uint32
	cur  uint32
	hcur uint32
	heap ppHeap

	uniq    []geo.NodeID // deduplicated targets
	res     []float64    // result per uniq target
	pending []int        // uniq indices not yet finalized
	colIdx  []int        // output column -> uniq index
}

//det:hotalloc pool miss or first query after a graph grows; steady state reuses pooled arrays
func (g *Graph) getScratch() *ppScratch {
	sc, _ := g.ppPool.Get().(*ppScratch)
	if sc == nil {
		sc = &ppScratch{}
	}
	if n := len(g.coords); len(sc.dist) < n {
		sc.dist = make([]float32, n)
		sc.gen = make([]uint32, n)
		sc.hval = make([]float64, n)
		sc.hgen = make([]uint32, n)
		sc.cur = 0
	}
	return sc
}

// nextGen starts a fresh search epoch; on uint32 wraparound the stamp
// array is zeroed so stale stamps can never collide.
func (sc *ppScratch) nextGen() {
	sc.cur++
	if sc.cur == 0 {
		for i := range sc.gen {
			sc.gen[i] = 0
		}
		sc.cur = 1
	}
	sc.heap = sc.heap[:0]
}

// newTargetEpoch invalidates the cached heuristic values; callers invoke it
// once per distinct target set, not once per source.
func (sc *ppScratch) newTargetEpoch() {
	sc.hcur++
	if sc.hcur == 0 {
		for i := range sc.hgen {
			sc.hgen[i] = 0
		}
		sc.hcur = 1
	}
}

// maxHeuristicWork bounds targets x landmarks per heuristic evaluation;
// beyond it the search falls back to h = 0 (goal-stopped Dijkstra), which
// is still exact — the heuristic only prunes.
const maxHeuristicWork = 128

// CostPP returns the shortest travel time from one node to another via the
// point-to-point engine (+Inf when unreachable). Bit-identical to CostSSSP.
// Hierarchy-enabled graphs answer through the CH engine (chquery.go); the
// ALT arm remains reachable via SetHierarchy(false) or CostALT.
func (g *Graph) CostPP(from, to geo.NodeID) float64 {
	if from == to {
		return 0
	}
	if g.pinned.Load() || g.ppOff.Load() {
		return g.costSSSP(from, to)
	}
	if g.chReady() {
		return g.chCostPP(from, to)
	}
	return g.CostALT(from, to)
}

// CostALT answers a point-to-point query via the ALT engine regardless of
// whether a contraction hierarchy is built. It is the property-test and
// benchmark reference arm for the CH engine.
func (g *Graph) CostALT(from, to geo.NodeID) float64 {
	if from == to {
		return 0
	}
	sc := g.getScratch()
	//det:hotalloc pooled scratch retains capacity across queries; these appends grow it only on first use
	sc.uniq = append(sc.uniq[:0], to)
	//det:hotalloc pooled scratch retains capacity across queries; grows only on first use
	sc.res = append(sc.res[:0], 0)
	sc.newTargetEpoch()
	g.searchFrom(sc, from, math.Inf(1))
	d := sc.res[0]
	g.ppPool.Put(sc)
	return d
}

// CostMatrix returns the many-to-many travel-time matrix
// out[i][j] = Cost(sources[i], targets[j]) with one pruned multi-target
// search per distinct source. This is the batched API the route planner's
// leg matrix and the worker index's candidate rings are built on.
//
//det:hotalloc allocating public matrix API; hot callers go through FillCostMatrix, whose matrixFiller branch fills a caller-owned buffer instead
func (g *Graph) CostMatrix(sources, targets []geo.NodeID) [][]float64 {
	out := make([][]float64, len(sources))
	if len(targets) == 0 {
		return out
	}
	flat := make([]float64, len(sources)*len(targets))
	for i := range out {
		out[i] = flat[i*len(targets) : (i+1)*len(targets) : (i+1)*len(targets)]
	}
	g.costMatrixInto(sources, targets, math.Inf(1), flat)
	return out
}

// costMatrixInto implements the zero-allocation FillCostMatrix fast path:
// out is row-major with len >= len(sources)*len(targets). Entries whose
// cost exceeds maxCost may be reported as +Inf (every entry <= maxCost is
// exact); pass +Inf for the full matrix.
func (g *Graph) costMatrixInto(sources, targets []geo.NodeID, maxCost float64, out []float64) {
	nt := len(targets)
	if nt == 0 || len(sources) == 0 {
		return
	}
	if g.pinned.Load() || g.ppOff.Load() {
		for i, s := range sources {
			e := g.source(s)
			row := out[i*nt : (i+1)*nt]
			for j, t := range targets {
				row[j] = float64(e.dist[t])
			}
		}
		return
	}
	if g.chReady() {
		g.chMatrixInto(sources, targets, maxCost, out)
		return
	}
	sc := g.getScratch()
	// Deduplicate targets, remembering each output column's slot.
	sc.uniq = sc.uniq[:0]
	sc.colIdx = sc.colIdx[:0]
	for _, t := range targets {
		slot := -1
		for k, u := range sc.uniq {
			if u == t {
				slot = k
				break
			}
		}
		if slot < 0 {
			slot = len(sc.uniq)
			//det:hotalloc pooled scratch retains capacity across queries; grows only on first use
			sc.uniq = append(sc.uniq, t)
		}
		//det:hotalloc pooled scratch retains capacity across queries; grows only on first use
		sc.colIdx = append(sc.colIdx, slot)
	}
	if cap(sc.res) < len(sc.uniq) {
		//det:hotalloc grows the pooled result row once per high-water target count
		sc.res = make([]float64, len(sc.uniq))
	}
	sc.res = sc.res[:len(sc.uniq)]
	sc.newTargetEpoch() // targets are fixed: sources share heuristic values

	for i, s := range sources {
		// Duplicate sources reuse the already-computed row.
		dup := -1
		for j := 0; j < i; j++ {
			if sources[j] == s {
				dup = j
				break
			}
		}
		row := out[i*nt : (i+1)*nt]
		if dup >= 0 {
			copy(row, out[dup*nt:(dup+1)*nt])
			continue
		}
		g.searchFrom(sc, s, maxCost)
		for j := 0; j < nt; j++ {
			row[j] = sc.res[sc.colIdx[j]]
		}
	}
	g.ppPool.Put(sc)
}

// searchFrom runs one exact multi-target A* from src over sc.uniq, filling
// sc.res (aligned with sc.uniq; +Inf for unreachable targets). Targets
// farther than budget may be left at +Inf: once the minimum queue key —
// an admissible lower bound on reaching any remaining target — exceeds
// budget, no pending target can cost <= budget and the search stops.
func (g *Graph) searchFrom(sc *ppScratch, src geo.NodeID, budget float64) {
	sc.nextGen()
	cur := sc.cur
	inf := math.Inf(1)

	useALT := len(g.landmarks) > 0 && len(sc.uniq)*len(g.landmarks) <= maxHeuristicWork
	hcur := sc.hcur
	//det:hotalloc non-escaping closure, stack-allocated because h never leaves searchFrom
	h := func(v geo.NodeID) float64 {
		if !useALT {
			return 0
		}
		if sc.hgen[v] == hcur {
			return sc.hval[v]
		}
		b := inf
		for _, t := range sc.uniq {
			if bt := g.altBound(v, t); bt < b {
				b = bt
			}
		}
		sc.hval[v] = b
		sc.hgen[v] = hcur
		return b
	}

	sc.pending = sc.pending[:0]
	for k := range sc.uniq {
		sc.res[k] = inf
		sc.pending = append(sc.pending, k)
	}
	// A +Inf landmark bound from src is an exact unreachability proof
	// (see altBound); pre-finalizing such targets keeps one stranded node
	// in a matrix from forcing a full-component search per source.
	if len(g.landmarks) > 0 {
		for k := len(sc.pending) - 1; k >= 0; k-- {
			if math.IsInf(g.altBound(src, sc.uniq[sc.pending[k]]), 1) {
				sc.pending[k] = sc.pending[len(sc.pending)-1]
				sc.pending = sc.pending[:len(sc.pending)-1]
			}
		}
		if len(sc.pending) == 0 {
			return
		}
	}

	sc.dist[src] = 0
	sc.gen[src] = cur
	sc.heap.push(ppItem{key: h(src), dist: 0, node: src})

	for len(sc.heap) > 0 {
		it := sc.heap.pop()
		// it.key is the minimum over all remaining frontier entries, and
		// every improving path to a target must pass through an entry whose
		// key lower-bounds the path's float32 fold (admissible heuristic).
		// A target whose tentative distance is <= it.key is final.
		for k := len(sc.pending) - 1; k >= 0; k-- {
			ti := sc.pending[k]
			t := sc.uniq[ti]
			if sc.gen[t] == cur && float64(sc.dist[t]) <= it.key {
				sc.res[ti] = float64(sc.dist[t])
				sc.pending[k] = sc.pending[len(sc.pending)-1]
				sc.pending = sc.pending[:len(sc.pending)-1]
			}
		}
		if len(sc.pending) == 0 {
			sc.heap = sc.heap[:0]
			return
		}
		if it.key > budget {
			// Every pending target costs at least it.key > budget; the
			// caller treats beyond-budget entries as unreachable.
			sc.heap = sc.heap[:0]
			return
		}
		if it.dist > sc.dist[it.node] {
			continue // stale: a better entry for this node was processed
		}
		for i := g.headIdx[it.node]; i < g.headIdx[it.node+1]; i++ {
			v := g.adjNode[i]
			nd := it.dist + g.adjCost[i] // float32 fold, same as dijkstra()
			if sc.gen[v] == cur && nd >= sc.dist[v] {
				continue
			}
			sc.dist[v] = nd
			sc.gen[v] = cur
			sc.heap.push(ppItem{key: float64(nd) + h(v), dist: nd, node: v})
		}
	}
	// Queue exhausted: every reachable node's distance is final; targets
	// never reached stay +Inf.
	for _, ti := range sc.pending {
		t := sc.uniq[ti]
		if sc.gen[t] == cur {
			sc.res[ti] = float64(sc.dist[t])
		}
	}
}
