package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"watter/internal/geo"
	"watter/internal/order"
)

// TripCSVOptions describes how to interpret a real trip-record CSV (the
// NYC-yellow-taxi / Didi GAIA shape: one row per ride with coordinates and
// a release time). This is the bridge from the paper's actual datasets to
// this repository: given the real files, LoadTripsCSV replays them through
// the same pipeline the synthetic generators feed.
type TripCSVOptions struct {
	// Column indexes (0-based) for release seconds, pickup lat/lon,
	// dropoff lat/lon. Rows failing to parse are skipped, not fatal
	// (real trip dumps are dirty).
	ReleaseCol int
	PickupLat  int
	PickupLon  int
	DropoffLat int
	DropoffLon int
	// RidersCol is optional (-1 = every order carries one rider).
	RidersCol int
	// HasHeader skips the first row.
	HasHeader bool
	// TauScale and Eta synthesize the deadline and wait limit exactly as
	// the paper does for the real data (Section VII-A). Zero values take
	// the defaults 1.6 and 0.8.
	TauScale float64
	Eta      float64
	// MaxOrders caps how many rows are ingested (0 = all).
	MaxOrders int
}

// Georeference maps WGS84 coordinates onto the city's planar frame with an
// equirectangular projection anchored at the reference point. Sufficient
// at city scale (< 0.1 % distortion over tens of km).
type Georeference struct {
	Lat0, Lon0 float64 // maps to plane origin
	// MetersPerDegLat is ~111.32 km; MetersPerDegLon scales by cos(lat).
}

// ToPlane projects lat/lon to meters in the city frame.
func (g Georeference) ToPlane(lat, lon float64) geo.Point {
	const mPerDegLat = 111320.0
	return geo.Point{
		X: (lon - g.Lon0) * mPerDegLat * math.Cos(g.Lat0*math.Pi/180),
		Y: (lat - g.Lat0) * mPerDegLat,
	}
}

// LoadTripsCSV reads trip records and converts each row into an Order
// snapped to the nearest network node. Returns the orders plus the number
// of rows skipped as unparseable or out of bounds.
func (ct *City) LoadTripsCSV(r io.Reader, georef Georeference, opt TripCSVOptions) ([]*order.Order, int, error) {
	if opt.TauScale == 0 {
		opt.TauScale = 1.6
	}
	if opt.Eta == 0 {
		opt.Eta = 0.8
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	var (
		out     []*order.Order
		skipped int
		rowNum  int
	)
	need := maxInt(opt.ReleaseCol, opt.PickupLat, opt.PickupLon, opt.DropoffLat, opt.DropoffLon, opt.RidersCol) + 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, skipped, fmt.Errorf("dataset: csv: %w", err)
		}
		rowNum++
		if opt.HasHeader && rowNum == 1 {
			continue
		}
		if opt.MaxOrders > 0 && len(out) >= opt.MaxOrders {
			break
		}
		if len(row) < need {
			skipped++
			continue
		}
		release, err1 := strconv.ParseFloat(row[opt.ReleaseCol], 64)
		plat, err2 := strconv.ParseFloat(row[opt.PickupLat], 64)
		plon, err3 := strconv.ParseFloat(row[opt.PickupLon], 64)
		dlat, err4 := strconv.ParseFloat(row[opt.DropoffLat], 64)
		dlon, err5 := strconv.ParseFloat(row[opt.DropoffLon], 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil || release < 0 {
			skipped++
			continue
		}
		riders := 1
		if opt.RidersCol >= 0 {
			if v, err := strconv.Atoi(row[opt.RidersCol]); err == nil && v >= 1 {
				riders = v
			}
		}
		pu, okP := ct.snap(georef.ToPlane(plat, plon))
		do, okD := ct.snap(georef.ToPlane(dlat, dlon))
		if !okP || !okD || pu == do {
			skipped++
			continue
		}
		direct := ct.Net.Cost(pu, do)
		out = append(out, &order.Order{
			ID: len(out) + 1, Pickup: pu, Dropoff: do, Riders: riders,
			Release:    release,
			Deadline:   release + opt.TauScale*direct,
			WaitLimit:  opt.Eta * direct,
			DirectCost: direct,
		})
	}
	sortOrdersByRelease(out)
	for i, o := range out {
		o.ID = i + 1
	}
	return out, skipped, nil
}

// snap returns the nearest grid node; false when the point falls more than
// one block outside the city bounds.
func (ct *City) snap(p geo.Point) (geo.NodeID, bool) {
	b := ct.Net.Bounds()
	slackX := ct.Profile.CellMeters
	if p.X < b.Min.X-slackX || p.X > b.Max.X+slackX || p.Y < b.Min.Y-slackX || p.Y > b.Max.Y+slackX {
		return 0, false
	}
	x := clampInt(int(math.Round(p.X/ct.Profile.CellMeters)), 0, ct.Profile.W-1)
	y := clampInt(int(math.Round(p.Y/ct.Profile.CellMeters)), 0, ct.Profile.H-1)
	return ct.Net.Node(x, y), true
}

func sortOrdersByRelease(orders []*order.Order) {
	sort.SliceStable(orders, func(i, j int) bool { return orders[i].Release < orders[j].Release })
}

func maxInt(vs ...int) int {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
