// Package dataset generates the synthetic city workloads that stand in for
// the paper's three real datasets (NYC yellow taxis, Didi Chengdu, Didi
// Xi'an). The algorithms consume only (pickup, dropoff, release, riders)
// tuples plus a travel-time oracle, so the substitution preserves exactly
// the properties the evaluation depends on: demand concentration (NYC is
// Manhattan-concentrated, CDC/XIA are dispersed — paper Section VII-B),
// rush-hour arrival peaks, and trip-length spread. Every generator is
// deterministic under its seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/roadnet"
)

// Hotspot is a Gaussian demand center on the grid (units: grid cells).
type Hotspot struct {
	X, Y   float64 // center in cell coordinates
	Sigma  float64 // spread in cells
	Weight float64 // relative share of hotspot demand
}

// Profile describes a synthetic city.
type Profile struct {
	Name string
	// Grid geometry.
	W, H       int
	CellMeters float64
	SpeedMPS   float64
	// RoadJitter switches the city from the closed-form GridCity onto an
	// explicit perturbed-lattice road graph (per-edge travel times scaled
	// by a factor in [1-RoadJitter, 1+RoadJitter], deterministic under
	// RoadSeed). An explicit graph runs the full routing stack — ALT and,
	// at chAutoMinNodes and above, the contraction hierarchy — which is the
	// point of the MET profile: a paper-scale city whose cost oracle is a
	// real routing engine instead of an L1 formula.
	RoadJitter float64
	RoadSeed   int64
	// HotspotShare is the fraction of pickups drawn from the hotspot
	// mixture (the rest is uniform) — the concentration knob that
	// separates NYC from CDC/XIA.
	HotspotShare float64
	// DropoffHotspotShare is the same knob for dropoffs. Evening-peak taxi
	// demand is directionally imbalanced (rides flow out of the centers),
	// so this is lower than HotspotShare; the imbalance drains workers
	// away from demand centers and is a big part of why pooling beats
	// greedy insertion on real data.
	DropoffHotspotShare float64
	Hotspots            []Hotspot
	// RushHours lists [start, end, intensity] triples over the day used to
	// shape arrival times; intensity 1 is the off-peak base.
	RushHours [][3]float64
}

// NYC returns the Manhattan-like profile: elongated grid, strongly
// concentrated demand (the paper: "most orders are concentrated in the
// Manhattan area").
func NYC() Profile {
	return Profile{
		Name: "NYC", W: 60, H: 24, CellMeters: 150, SpeedMPS: 7,
		HotspotShare: 0.75, DropoffHotspotShare: 0.3,
		Hotspots: []Hotspot{
			{X: 12, Y: 12, Sigma: 3, Weight: 3}, // midtown-ish
			{X: 28, Y: 10, Sigma: 4, Weight: 2},
			{X: 45, Y: 14, Sigma: 3, Weight: 2},
			{X: 20, Y: 6, Sigma: 2.5, Weight: 1},
		},
		RushHours: [][3]float64{{7 * 3600, 10 * 3600, 3}, {17 * 3600, 20 * 3600, 3.5}},
	}
}

// CDC returns the Chengdu-like profile: square grid, moderately dispersed.
func CDC() Profile {
	return Profile{
		Name: "CDC", W: 42, H: 42, CellMeters: 160, SpeedMPS: 8,
		HotspotShare: 0.55, DropoffHotspotShare: 0.25,
		Hotspots: []Hotspot{
			{X: 21, Y: 21, Sigma: 6, Weight: 3}, // ring-road core
			{X: 10, Y: 30, Sigma: 5, Weight: 1.5},
			{X: 32, Y: 12, Sigma: 5, Weight: 1.5},
			{X: 8, Y: 8, Sigma: 4, Weight: 1},
			{X: 34, Y: 34, Sigma: 4, Weight: 1},
		},
		RushHours: [][3]float64{{7.5 * 3600, 9.5 * 3600, 2.5}, {17.5 * 3600, 19.5 * 3600, 3}},
	}
}

// XIA returns the Xi'an-like profile: dispersed demand, smaller volume.
func XIA() Profile {
	return Profile{
		Name: "XIA", W: 36, H: 36, CellMeters: 170, SpeedMPS: 8,
		HotspotShare: 0.4, DropoffHotspotShare: 0.2,
		Hotspots: []Hotspot{
			{X: 18, Y: 18, Sigma: 7, Weight: 2}, // walled city center
			{X: 8, Y: 26, Sigma: 6, Weight: 1},
			{X: 27, Y: 9, Sigma: 6, Weight: 1},
		},
		RushHours: [][3]float64{{7.5 * 3600, 9.5 * 3600, 2.2}, {18 * 3600, 20 * 3600, 2.8}},
	}
}

// MET returns the metropolis-scale profile: a 320x320 perturbed lattice
// (102,400 intersections — the size band of the paper's real road
// networks) whose cost oracle is the explicit routing engine with the
// contraction hierarchy built at construction time. Building it costs
// tens of seconds of CH preprocessing, which is the trade the profile
// exists to measure: sweeps amortize the build across millions of
// dispatch-time cost queries.
func MET() Profile {
	return Profile{
		Name: "MET", W: 320, H: 320, CellMeters: 200, SpeedMPS: 8,
		RoadJitter: 0.3, RoadSeed: 1,
		HotspotShare: 0.6, DropoffHotspotShare: 0.25,
		Hotspots: []Hotspot{
			{X: 160, Y: 160, Sigma: 30, Weight: 3}, // downtown core
			{X: 80, Y: 220, Sigma: 24, Weight: 1.5},
			{X: 240, Y: 90, Sigma: 24, Weight: 1.5},
			{X: 60, Y: 60, Sigma: 18, Weight: 1},
		},
		RushHours: [][3]float64{{7.5 * 3600, 9.5 * 3600, 2.5}, {17 * 3600, 20 * 3600, 3}},
	}
}

// ByName resolves "nyc", "cdc", "xia" or "met" (case-insensitive prefix
// match).
func ByName(name string) (Profile, error) {
	switch {
	case len(name) == 0:
		return Profile{}, fmt.Errorf("dataset: empty name")
	case name[0] == 'n' || name[0] == 'N':
		return NYC(), nil
	case name[0] == 'c' || name[0] == 'C':
		return CDC(), nil
	case name[0] == 'x' || name[0] == 'X':
		return XIA(), nil
	case name[0] == 'm' || name[0] == 'M':
		return MET(), nil
	}
	return Profile{}, fmt.Errorf("dataset: unknown city %q", name)
}

// City is a generated city: the network plus its demand profile.
type City struct {
	Profile Profile
	Net     roadnet.LatticeNetwork
}

// Build materializes the profile's road network: the closed-form GridCity
// by default, an explicit perturbed-lattice graph when RoadJitter is set.
func (p Profile) Build() *City {
	if p.RoadJitter > 0 {
		return &City{Profile: p, Net: roadnet.NewPerturbedLattice(p.W, p.H, p.CellMeters, p.SpeedMPS, p.RoadJitter, p.RoadSeed)}
	}
	return &City{Profile: p, Net: roadnet.NewGridCity(p.W, p.H, p.CellMeters, p.SpeedMPS)}
}

// WorkloadConfig parameterizes one simulated period.
type WorkloadConfig struct {
	Orders int
	Seed   int64
	// StartSeconds/HorizonSeconds select the slice of day simulated
	// (defaults: the 17:00 evening peak, 2 h window compressed so that
	// Orders arrive inside it).
	StartSeconds   float64
	HorizonSeconds float64
	// TauScale sets deadlines: tau = release + TauScale * direct (Table
	// III; default 1.6).
	TauScale float64
	// Eta sets wait limits: eta = Eta * direct (Section VII-A, default 0.8).
	Eta float64
	// MaxRiders caps per-order rider counts (1 in the paper's main runs —
	// "we treat each record as an order with one passenger").
	MaxRiders int
}

// Defaults fills zero fields with the paper's defaults.
func (c WorkloadConfig) Defaults() WorkloadConfig {
	if c.StartSeconds == 0 {
		c.StartSeconds = 17 * 3600 // evening peak by default
	}
	if c.HorizonSeconds == 0 {
		c.HorizonSeconds = 7200
	}
	if c.TauScale == 0 {
		c.TauScale = 1.6
	}
	if c.Eta == 0 {
		c.Eta = 0.8
	}
	if c.MaxRiders == 0 {
		c.MaxRiders = 1
	}
	return c
}

// Orders generates the order stream.
func (ct *City) Orders(cfg WorkloadConfig) []*order.Order {
	cfg = cfg.Defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	releases := ct.arrivalTimes(rng, cfg)
	out := make([]*order.Order, 0, cfg.Orders)
	for i := 0; i < cfg.Orders; i++ {
		pu := ct.sampleEndpoint(rng, ct.Profile.HotspotShare)
		do := ct.sampleEndpoint(rng, ct.Profile.DropoffHotspotShare)
		for tries := 0; do == pu && tries < 8; tries++ {
			do = ct.sampleEndpoint(rng, ct.Profile.DropoffHotspotShare)
		}
		if do == pu {
			continue
		}
		direct := ct.Net.Cost(pu, do)
		riders := 1
		if cfg.MaxRiders > 1 {
			riders = 1 + rng.Intn(cfg.MaxRiders)
		}
		out = append(out, &order.Order{
			ID: i + 1, Pickup: pu, Dropoff: do, Riders: riders,
			Release:    releases[i],
			Deadline:   releases[i] + cfg.TauScale*direct,
			WaitLimit:  cfg.Eta * direct,
			DirectCost: direct,
		})
	}
	return out
}

// arrivalTimes samples sorted release offsets in [0, horizon) shaped by the
// rush-hour intensity profile over the configured slice of day.
func (ct *City) arrivalTimes(rng *rand.Rand, cfg WorkloadConfig) []float64 {
	// Piecewise-constant intensity over the slice, 60 bins.
	const bins = 60
	w := make([]float64, bins)
	var total float64
	for b := 0; b < bins; b++ {
		t := cfg.StartSeconds + (float64(b)+0.5)*cfg.HorizonSeconds/bins
		w[b] = ct.intensityAt(t)
		total += w[b]
	}
	times := make([]float64, cfg.Orders)
	for i := range times {
		u := rng.Float64() * total
		b := 0
		for ; b < bins-1 && u > w[b]; b++ {
			u -= w[b]
		}
		frac := rng.Float64()
		times[i] = (float64(b) + frac) * cfg.HorizonSeconds / bins
	}
	sortFloats(times)
	return times
}

func (ct *City) intensityAt(dayTime float64) float64 {
	v := 1.0
	for _, r := range ct.Profile.RushHours {
		if dayTime >= r[0] && dayTime < r[1] {
			if r[2] > v {
				v = r[2]
			}
		}
	}
	return v
}

// sampleEndpoint draws a node: hotspot mixture with probability
// hotShare, uniform otherwise.
func (ct *City) sampleEndpoint(rng *rand.Rand, hotShare float64) geo.NodeID {
	p := ct.Profile
	if rng.Float64() >= hotShare || len(p.Hotspots) == 0 {
		return ct.Net.Node(rng.Intn(p.W), rng.Intn(p.H))
	}
	// Pick a hotspot by weight.
	var wsum float64
	for _, h := range p.Hotspots {
		wsum += h.Weight
	}
	u := rng.Float64() * wsum
	h := p.Hotspots[len(p.Hotspots)-1]
	for _, cand := range p.Hotspots {
		if u < cand.Weight {
			h = cand
			break
		}
		u -= cand.Weight
	}
	x := clampInt(int(math.Round(h.X+rng.NormFloat64()*h.Sigma)), 0, p.W-1)
	y := clampInt(int(math.Round(h.Y+rng.NormFloat64()*h.Sigma)), 0, p.H-1)
	return ct.Net.Node(x, y)
}

// Workers places m workers by sampling the order-pickup distribution
// (paper: "We uniformly sample initial locations for workers using the
// distribution of orders' pick-up locations") with capacity uniform in
// [2, maxCapacity].
func (ct *City) Workers(m int, maxCapacity int, seed int64) []*order.Worker {
	if maxCapacity < 2 {
		maxCapacity = 2
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*order.Worker, m)
	for i := range out {
		out[i] = &order.Worker{
			ID:       i + 1,
			Loc:      ct.sampleEndpoint(rng, ct.Profile.HotspotShare),
			Capacity: 2 + rng.Intn(maxCapacity-1),
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func sortFloats(xs []float64) { sort.Float64s(xs) }
