package dataset

import (
	"math"
	"sort"
	"testing"

	"watter/internal/gridindex"
	"watter/internal/roadnet"
)

func TestProfilesBuild(t *testing.T) {
	for _, p := range []Profile{NYC(), CDC(), XIA()} {
		city := p.Build()
		if city.Net.NumNodes() != p.W*p.H {
			t.Fatalf("%s: nodes %d", p.Name, city.Net.NumNodes())
		}
		if p.HotspotShare <= p.DropoffHotspotShare {
			t.Fatalf("%s: pickups must be more concentrated than dropoffs", p.Name)
		}
	}
}

// TestJitteredProfileBuild exercises the explicit-lattice Build path on a
// shrunken MET clone (the full 320x320 profile costs tens of seconds of CH
// preprocessing, which belongs in benchmarks, not tier-1 tests): the city
// must run on a real Graph and generate valid orders whose direct costs
// come from the routing engine.
func TestJitteredProfileBuild(t *testing.T) {
	p := MET()
	p.W, p.H = 14, 11
	city := p.Build()
	lat, ok := city.Net.(*roadnet.Lattice)
	if !ok {
		t.Fatalf("jittered profile built %T, want *roadnet.Lattice", city.Net)
	}
	if lat.W != 14 || lat.H != 11 || city.Net.NumNodes() != 14*11 {
		t.Fatalf("lattice shape %dx%d (%d nodes)", lat.W, lat.H, city.Net.NumNodes())
	}
	orders := city.Orders(WorkloadConfig{Orders: 120, Seed: 11})
	if len(orders) == 0 {
		t.Fatal("no orders generated")
	}
	for _, o := range orders {
		if err := o.Validate(); err != nil {
			t.Fatalf("invalid order: %v", err)
		}
		if o.DirectCost != city.Net.Cost(o.Pickup, o.Dropoff) {
			t.Fatalf("direct cost mismatch on %d", o.ID)
		}
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"nyc": "NYC", "NYC": "NYC", "cdc": "CDC", "Chengdu": "CDC",
		"xia": "XIA", "Xian": "XIA", "met": "MET", "Metro": "MET",
	} {
		p, err := ByName(name)
		if err != nil || p.Name != want {
			t.Fatalf("ByName(%q) = %v, %v", name, p.Name, err)
		}
	}
	if _, err := ByName(""); err == nil {
		t.Fatal("empty name must error")
	}
	if _, err := ByName("atlantis"); err == nil {
		t.Fatal("unknown city must error")
	}
}

func TestOrdersAreValidAndDeterministic(t *testing.T) {
	city := CDC().Build()
	cfg := WorkloadConfig{Orders: 500, Seed: 42}
	a := city.Orders(cfg)
	b := city.Orders(cfg)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lens %d/%d", len(a), len(b))
	}
	for i, o := range a {
		if err := o.Validate(); err != nil {
			t.Fatalf("invalid order: %v", err)
		}
		if o.Pickup == o.Dropoff {
			t.Fatalf("degenerate order %d", o.ID)
		}
		if o.DirectCost != city.Net.Cost(o.Pickup, o.Dropoff) {
			t.Fatalf("direct cost mismatch on %d", o.ID)
		}
		// Defaults: tau=1.6, eta=0.8.
		if math.Abs(o.Deadline-(o.Release+1.6*o.DirectCost)) > 1e-9 {
			t.Fatalf("deadline default wrong on %d", o.ID)
		}
		if math.Abs(o.WaitLimit-0.8*o.DirectCost) > 1e-9 {
			t.Fatalf("wait limit default wrong on %d", o.ID)
		}
		if *o != *b[i] {
			t.Fatalf("nondeterministic generation at %d", i)
		}
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i].Release < a[j].Release }) {
		t.Fatal("orders must be sorted by release")
	}
	last := a[len(a)-1].Release
	if last <= 0 || last > 7200 {
		t.Fatalf("releases outside horizon: %v", last)
	}
}

func TestPickupConcentrationExceedsDropoff(t *testing.T) {
	// The directional imbalance knob must be visible in the generated
	// data: pickups concentrate in fewer cells than dropoffs.
	city := NYC().Build()
	orders := city.Orders(WorkloadConfig{Orders: 4000, Seed: 7})
	ix := gridindex.New(city.Net, 10)
	puCount := make([]float64, ix.NumCells())
	doCount := make([]float64, ix.NumCells())
	for _, o := range orders {
		puCount[ix.CellOf(o.Pickup)]++
		doCount[ix.CellOf(o.Dropoff)]++
	}
	if herfindahl(puCount) <= herfindahl(doCount) {
		t.Fatalf("pickup concentration %.4f <= dropoff %.4f",
			herfindahl(puCount), herfindahl(doCount))
	}
}

// herfindahl is the sum of squared shares: higher = more concentrated.
func herfindahl(counts []float64) float64 {
	var total float64
	for _, c := range counts {
		total += c
	}
	var h float64
	for _, c := range counts {
		s := c / total
		h += s * s
	}
	return h
}

func TestNYCMoreConcentratedThanXIA(t *testing.T) {
	conc := func(p Profile) float64 {
		city := p.Build()
		orders := city.Orders(WorkloadConfig{Orders: 3000, Seed: 3})
		ix := gridindex.New(city.Net, 10)
		counts := make([]float64, ix.NumCells())
		for _, o := range orders {
			counts[ix.CellOf(o.Pickup)]++
		}
		return herfindahl(counts)
	}
	nyc, xia := conc(NYC()), conc(XIA())
	if nyc <= xia {
		t.Fatalf("NYC pickups (%.4f) must be more concentrated than XIA (%.4f)", nyc, xia)
	}
}

func TestRushHourShapesArrivals(t *testing.T) {
	// A window straddling the 17:00 CDC rush boundary: the second half
	// (in-rush) must receive more arrivals than the first (off-peak).
	city := CDC().Build()
	orders := city.Orders(WorkloadConfig{
		Orders: 4000, Seed: 5,
		StartSeconds: 16.5 * 3600, HorizonSeconds: 7200, // 16:30-18:30
	})
	var early, late int
	for _, o := range orders {
		if o.Release < 3600 {
			early++
		} else {
			late++
		}
	}
	if late <= early {
		t.Fatalf("rush hour not visible: early %d late %d", early, late)
	}
}

func TestWorkersSampling(t *testing.T) {
	city := XIA().Build()
	ws := city.Workers(200, 5, 9)
	if len(ws) != 200 {
		t.Fatalf("len = %d", len(ws))
	}
	caps := map[int]int{}
	for _, w := range ws {
		if w.Capacity < 2 || w.Capacity > 5 {
			t.Fatalf("capacity %d outside [2,5]", w.Capacity)
		}
		caps[w.Capacity]++
		if int(w.Loc) < 0 || int(w.Loc) >= city.Net.NumNodes() {
			t.Fatalf("worker loc %d off-network", w.Loc)
		}
	}
	for c := 2; c <= 5; c++ {
		if caps[c] == 0 {
			t.Fatalf("no workers with capacity %d: %v", c, caps)
		}
	}
	// Degenerate max capacity clamps to 2.
	for _, w := range city.Workers(10, 1, 9) {
		if w.Capacity != 2 {
			t.Fatalf("clamped capacity = %d", w.Capacity)
		}
	}
}

func TestMaxRiders(t *testing.T) {
	city := CDC().Build()
	orders := city.Orders(WorkloadConfig{Orders: 500, Seed: 1, MaxRiders: 3})
	seen := map[int]bool{}
	for _, o := range orders {
		if o.Riders < 1 || o.Riders > 3 {
			t.Fatalf("riders %d", o.Riders)
		}
		seen[o.Riders] = true
	}
	if !seen[2] || !seen[3] {
		t.Fatal("rider variety missing")
	}
}
