package dataset

import (
	"strconv"
	"strings"
	"testing"
)

// testGeoref anchors lat0/lon0 at the grid origin of a CDC-like city.
var testGeoref = Georeference{Lat0: 30.0, Lon0: 104.0}

func csvCity() *City { return CDC().Build() }

// ll converts a planar point (meters) back to lat/lon for test fixtures.
func ll(x, y float64) (lat, lon float64) {
	const mPerDegLat = 111320.0
	lat = 30.0 + y/mPerDegLat
	lon = 104.0 + x/(mPerDegLat*0.8660254037844387) // cos(30°)
	return
}

func row(release, px, py, dx, dy float64) string {
	plat, plon := ll(px, py)
	dlat, dlon := ll(dx, dy)
	return strings.Join([]string{
		ftoa(release), ftoa(plat), ftoa(plon), ftoa(dlat), ftoa(dlon), "1",
	}, ",")
}

// ftoa formats with enough precision for sub-meter round trips.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 8, 64) }

func TestLoadTripsCSV(t *testing.T) {
	city := csvCity()
	lines := []string{
		"release,plat,plon,dlat,dlon,riders",
		row(120, 160, 160, 3200, 160), // (1,1) -> (20,1)
		row(30, 320, 320, 160, 4800),  // (2,2) -> (1,30)
		"garbage,x,y,z,w,1",           // unparseable
		row(60, 1e7, 1e7, 160, 160),   // out of bounds pickup
	}
	orders, skipped, err := city.LoadTripsCSV(strings.NewReader(strings.Join(lines, "\n")), testGeoref, TripCSVOptions{
		ReleaseCol: 0, PickupLat: 1, PickupLon: 2, DropoffLat: 3, DropoffLon: 4,
		RidersCol: 5, HasHeader: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(orders) != 2 {
		t.Fatalf("orders = %d, want 2", len(orders))
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2", skipped)
	}
	// Sorted by release, re-IDed.
	if orders[0].Release != 30 || orders[1].Release != 120 {
		t.Fatalf("releases = %v, %v", orders[0].Release, orders[1].Release)
	}
	if orders[0].ID != 1 || orders[1].ID != 2 {
		t.Fatalf("ids = %d, %d", orders[0].ID, orders[1].ID)
	}
	for _, o := range orders {
		if err := o.Validate(); err != nil {
			t.Fatalf("invalid loaded order: %v", err)
		}
		if o.DirectCost != city.Net.Cost(o.Pickup, o.Dropoff) {
			t.Fatal("direct cost not derived from network")
		}
		// Defaults applied.
		if o.Deadline != o.Release+1.6*o.DirectCost {
			t.Fatalf("deadline default missing on %d", o.ID)
		}
	}
	// Snapping: first loaded order (release 30) goes (2,2) -> (1,30).
	if orders[0].Pickup != city.Net.Node(2, 2) || orders[0].Dropoff != city.Net.Node(1, 30) {
		t.Fatalf("snap wrong: %v -> %v", orders[0].Pickup, orders[0].Dropoff)
	}
}

func TestLoadTripsCSVMaxOrders(t *testing.T) {
	city := csvCity()
	var lines []string
	for i := 0; i < 10; i++ {
		lines = append(lines, row(float64(i), 160, 160, 1600, 1600))
	}
	orders, _, err := city.LoadTripsCSV(strings.NewReader(strings.Join(lines, "\n")), testGeoref, TripCSVOptions{
		ReleaseCol: 0, PickupLat: 1, PickupLon: 2, DropoffLat: 3, DropoffLon: 4,
		RidersCol: -1, MaxOrders: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(orders) != 4 {
		t.Fatalf("cap ignored: %d", len(orders))
	}
	for _, o := range orders {
		if o.Riders != 1 {
			t.Fatalf("riders default = %d", o.Riders)
		}
	}
}

func TestGeoreferenceRoundTrip(t *testing.T) {
	g := Georeference{Lat0: 30, Lon0: 104}
	lat, lon := ll(3000, 4000)
	p := g.ToPlane(lat, lon)
	if diff := p.X - 3000; diff > 1 || diff < -1 {
		t.Fatalf("X = %v", p.X)
	}
	if diff := p.Y - 4000; diff > 1 || diff < -1 {
		t.Fatalf("Y = %v", p.Y)
	}
}
