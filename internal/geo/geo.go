// Package geo provides the small geometric and temporal primitives shared by
// every other package in the WATTER reproduction: planar points, distances
// and the node/second conventions used throughout.
//
// Conventions:
//   - All times and durations are float64 seconds since simulation start.
//   - All coordinates are float64 meters in a planar city frame.
//   - Road-network locations are NodeID values; only internal/roadnet can
//     translate a NodeID back to a Point.
package geo

import "math"

// NodeID identifies a location (vertex) on a road network.
type NodeID int32

// InvalidNode is the zero-value-distinguishable "no node" sentinel.
const InvalidNode NodeID = -1

// Point is a planar position in meters.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Euclid returns the Euclidean distance in meters between p and q.
func (p Point) Euclid(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Manhattan returns the L1 distance in meters between p and q. Road travel
// in grid cities is well approximated by the L1 metric, which is why the
// closed-form network uses it.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Rect is an axis-aligned bounding box.
type Rect struct {
	Min, Max Point
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies inside r (inclusive of edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the closest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Lerp linearly interpolates between a and b: t=0 gives a, t=1 gives b.
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
