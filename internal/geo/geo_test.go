package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, 5}
	if got := p.Add(q); got != (Point{4, 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != (Point{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestDistances(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if got := p.Euclid(q); math.Abs(got-5) > 1e-12 {
		t.Errorf("Euclid = %v", got)
	}
	if got := p.Manhattan(q); math.Abs(got-7) > 1e-12 {
		t.Errorf("Manhattan = %v", got)
	}
}

func TestManhattanDominatesEuclid(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		if math.Abs(ax) > 1e100 || math.Abs(ay) > 1e100 || math.Abs(bx) > 1e100 || math.Abs(by) > 1e100 {
			return true // avoid overflow noise
		}
		a := Point{ax, ay}
		b := Point{bx, by}
		return a.Manhattan(b) >= a.Euclid(b)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRect(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{10, 5}}
	if r.Width() != 10 || r.Height() != 5 {
		t.Fatalf("dims = %v x %v", r.Width(), r.Height())
	}
	if !r.Contains(Point{10, 5}) || !r.Contains(Point{0, 0}) {
		t.Fatal("edges must be inclusive")
	}
	if r.Contains(Point{-0.1, 0}) || r.Contains(Point{3, 6}) {
		t.Fatal("contains outside point")
	}
	if got := r.Clamp(Point{-3, 99}); got != (Point{0, 5}) {
		t.Fatalf("Clamp = %v", got)
	}
	if got := r.Clamp(Point{4, 4}); got != (Point{4, 4}) {
		t.Fatalf("Clamp of inside point = %v", got)
	}
}

func TestLerp(t *testing.T) {
	if Lerp(2, 10, 0) != 2 || Lerp(2, 10, 1) != 10 || Lerp(2, 10, 0.5) != 6 {
		t.Fatal("Lerp wrong")
	}
}
