package exp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"watter/internal/dataset"
	"watter/internal/stats"
)

// Matrix describes a full experiment grid: the cartesian product of the
// listed dimensions, each cell replicated once per seed. Empty dimensions
// default to the corresponding Base field, so a zero Matrix with only Base
// set expands to a single job per algorithm.
type Matrix struct {
	// Base supplies every parameter a dimension below doesn't override.
	Base Params
	// Algs defaults to AlgNames.
	Algs []string
	// Cities defaults to {Base.City}.
	Cities []dataset.Profile
	// Orders, Workers, MaxCaps and TauScales default to the Base values.
	Orders    []int
	Workers   []int
	MaxCaps   []int
	TauScales []float64
	// CityCounts is the multi-city axis: each entry runs the cell as
	// NumCities proxied instances of the profile (see Params.NumCities).
	// Default {Base.NumCities}.
	CityCounts []int
	// Seeds are the replicate seeds per cell; default {Base.Seed}.
	Seeds []int64
	// RetrainPerSeed trains a separate WATTER-expect model for every
	// replicate seed (the pre-engine behavior). The default shares one
	// model per cell — trained under the first seed — across replicates,
	// which is both faster and the statistically cleaner design (the
	// paper's offline stage uses historical days, not the evaluation day).
	RetrainPerSeed bool
}

// Job is one executable (algorithm, configuration, seed) cell expansion.
type Job struct {
	// Index is the job's position in the deterministic expansion order;
	// results are reported index-aligned regardless of completion order.
	Index int
	Alg   string
	P     Params
	// Cell identifies the aggregation cell: every job dimension except the
	// replicate seed.
	Cell string
}

// Jobs expands the matrix into its deterministic job list: cities × orders
// × workers × capacities × tau × algorithms, then seeds innermost so a
// cell's replicates are adjacent.
func (m Matrix) Jobs() []Job {
	algs := m.Algs
	if len(algs) == 0 {
		algs = AlgNames
	}
	cities := m.Cities
	if len(cities) == 0 {
		cities = []dataset.Profile{m.Base.City}
	}
	orders := m.Orders
	if len(orders) == 0 {
		orders = []int{m.Base.Orders}
	}
	workers := m.Workers
	if len(workers) == 0 {
		workers = []int{m.Base.Workers}
	}
	caps := m.MaxCaps
	if len(caps) == 0 {
		caps = []int{m.Base.MaxCap}
	}
	taus := m.TauScales
	if len(taus) == 0 {
		taus = []float64{m.Base.TauScale}
	}
	cityCounts := m.CityCounts
	if len(cityCounts) == 0 {
		cityCounts = []int{m.Base.NumCities}
	}
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = []int64{m.Base.Seed}
	}
	trainSeed := m.Base.Train.Seed
	if trainSeed == 0 && !m.RetrainPerSeed {
		trainSeed = seeds[0]
	}

	var jobs []Job
	for _, city := range cities {
		for _, n := range orders {
			for _, w := range workers {
				for _, k := range caps {
					for _, tau := range taus {
						for _, nc := range cityCounts {
							for _, alg := range algs {
								cell := fmt.Sprintf("%s/%s/n%d/m%d/k%d/tau%.2f", alg, city.Name, n, w, k, tau)
								if nc > 1 {
									// Suffix only multi-city rows so existing
									// cell keys (and persisted results) are
									// unchanged.
									cell += fmt.Sprintf("/cities%d", nc)
								}
								for _, seed := range seeds {
									p := m.Base
									p.City = city
									p.Orders = n
									p.Workers = w
									p.MaxCap = k
									p.TauScale = tau
									p.NumCities = nc
									p.Seed = seed
									p.Train.Seed = trainSeed
									jobs = append(jobs, Job{Index: len(jobs), Alg: alg, P: p, Cell: cell})
								}
							}
						}
					}
				}
			}
		}
	}
	return jobs
}

// CellSummary aggregates one cell's replicates: the four paper metrics
// summarized across seeds, plus per-replicate wall-clock.
type CellSummary struct {
	Cell string
	Alg  string
	City string
	// Params is the first replicate's configuration (seeds differ per
	// replicate; everything else is cell-constant).
	Params      Params
	Seeds       []int64
	ExtraTime   stats.Summary
	UnifiedCost stats.Summary
	ServiceRate stats.Summary
	RunningTime stats.Summary
	Elapsed     stats.Welford
}

// SweepResult is a full matrix execution: raw per-job results in expansion
// order and per-cell cross-seed summaries.
type SweepResult struct {
	Jobs    []Job
	Results []*Result // index-aligned with Jobs
	Cells   []CellSummary
	// Elapsed is the sweep's wall-clock; with Parallel > 1 it is less than
	// the sum of per-job Elapsed.
	Elapsed time.Duration
}

// SweepRunner executes experiment matrices over a bounded worker pool.
// Parallelism never changes results: each job owns its environment,
// workload and metrics, and the layers shared between jobs (road-network
// distance caches, trained models) are immutable or internally
// synchronized, so per-seed metrics are bit-identical at any Parallel.
type SweepRunner struct {
	Runner *Runner
	// Parallel bounds concurrent jobs; <= 0 means GOMAXPROCS.
	Parallel int
}

// NewSweepRunner wraps a Runner (a fresh one when nil).
func NewSweepRunner(r *Runner) *SweepRunner {
	if r == nil {
		r = NewRunner()
	}
	return &SweepRunner{Runner: r}
}

// Run executes every job of the matrix and aggregates cells.
func (sr *SweepRunner) Run(m Matrix) (*SweepResult, error) {
	jobs := m.Jobs()
	if len(jobs) == 0 {
		return &SweepResult{}, nil
	}
	results := make([]*Result, len(jobs))
	start := time.Now() //det:wallclock harness-side sweep timing, reported as SweepResult.Elapsed; never feeds simulation state
	err := sr.forEach(len(jobs), func(i int) error {
		res, err := sr.Runner.RunOne(jobs[i].Alg, jobs[i].P)
		if err != nil {
			return fmt.Errorf("job %d (%s seed %d): %w", i, jobs[i].Cell, jobs[i].P.Seed, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &SweepResult{
		Jobs:    jobs,
		Results: results,
		Cells:   aggregateCells(jobs, results),
		Elapsed: time.Since(start), //det:wallclock observability field on the sweep report, outside per-seed metrics
	}, nil
}

// forEach runs exec(0..n-1) over the worker pool, stopping at the first
// error. With an effective parallelism of 1 it degenerates to a plain
// sequential loop on the calling goroutine.
func (sr *SweepRunner) forEach(n int, exec func(i int) error) error {
	parallel := sr.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			if err := exec(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	cancel := make(chan struct{})
	feed := make(chan int)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				if err := exec(i); err != nil {
					errOnce.Do(func() {
						firstErr = err
						close(cancel)
					})
					return
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case feed <- i:
		case <-cancel:
			i = n // stop feeding; drain below
		}
	}
	close(feed)
	wg.Wait()
	return firstErr
}

// aggregateCells folds index-aligned results into per-cell summaries,
// preserving first-appearance cell order.
func aggregateCells(jobs []Job, results []*Result) []CellSummary {
	type acc struct {
		first   int
		seeds   []int64
		series  [4][]float64
		elapsed stats.Welford
	}
	byCell := map[string]*acc{}
	var order []string
	for i, j := range jobs {
		a, ok := byCell[j.Cell]
		if !ok {
			a = &acc{first: i}
			byCell[j.Cell] = a
			order = append(order, j.Cell)
		}
		r := results[i]
		a.seeds = append(a.seeds, j.P.Seed)
		a.series[0] = append(a.series[0], r.Metrics.ExtraTime())
		a.series[1] = append(a.series[1], r.Metrics.UnifiedCost())
		a.series[2] = append(a.series[2], r.Metrics.ServiceRate())
		a.series[3] = append(a.series[3], r.Metrics.RunningTime())
		a.elapsed.Add(r.Elapsed.Seconds())
	}
	cells := make([]CellSummary, 0, len(order))
	for _, key := range order {
		a := byCell[key]
		j := jobs[a.first]
		cells = append(cells, CellSummary{
			Cell:        key,
			Alg:         j.Alg,
			City:        j.P.City.Name,
			Params:      j.P,
			Seeds:       a.seeds,
			ExtraTime:   stats.Summarize(a.series[0]),
			UnifiedCost: stats.Summarize(a.series[1]),
			ServiceRate: stats.Summarize(a.series[2]),
			RunningTime: stats.Summarize(a.series[3]),
			Elapsed:     a.elapsed,
		})
	}
	return cells
}

// RunFigure is the parallel equivalent of Runner.RunSweep: every (point,
// algorithm) cell of a figure sweep runs over the worker pool, and results
// come back in the same order the sequential runner produces. It is the
// single-replicate case of RunFigureSeeds (the model cache key is
// unchanged: with one seed, the pinned training seed equals the
// evaluation seed the key would have used anyway).
func (sr *SweepRunner) RunFigure(s Sweep, base Params) ([]*Result, error) {
	results, _, err := sr.RunFigureSeeds(s, base, []int64{base.Seed})
	return results, err
}

// RunFigureSeeds runs every (point, algorithm) cell of a figure sweep
// across replicate seeds, returning raw per-job results (in deterministic
// expansion order, X filled for CSV output) plus per-cell cross-seed
// summaries. Replicates share one trained model per cell unless base
// already pins Train.Seed.
func (sr *SweepRunner) RunFigureSeeds(s Sweep, base Params, seeds []int64) ([]*Result, []CellSummary, error) {
	if len(seeds) == 0 {
		seeds = []int64{base.Seed}
	}
	algs := s.Algs
	if len(algs) == 0 {
		algs = AlgNames
	}
	trainSeed := base.Train.Seed
	if trainSeed == 0 {
		trainSeed = seeds[0]
	}
	var jobs []Job
	var xs []float64
	for _, x := range s.Points {
		px := s.Apply(base, x)
		for _, alg := range algs {
			cell := fmt.Sprintf("%s/%s/%s=%g", alg, px.City.Name, s.ID, x)
			for _, seed := range seeds {
				p := px
				p.Seed = seed
				p.Train.Seed = trainSeed
				jobs = append(jobs, Job{Index: len(jobs), Alg: alg, P: p, Cell: cell})
				xs = append(xs, x)
			}
		}
	}
	results := make([]*Result, len(jobs))
	err := sr.forEach(len(jobs), func(i int) error {
		res, err := sr.Runner.RunOne(jobs[i].Alg, jobs[i].P)
		if err != nil {
			return err
		}
		res.Params = jobs[i].P
		res.X = xs[i]
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return results, aggregateCells(jobs, results), nil
}

// ReplicateSeeds returns base, base+1, ... base+n-1 — the conventional
// seed grid for n replicates.
func ReplicateSeeds(base int64, n int) []int64 {
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// SortCells orders cell summaries by (city, alg, cell) — a stable, human-
// friendly report order independent of matrix nesting.
func SortCells(cells []CellSummary) {
	sort.SliceStable(cells, func(i, j int) bool {
		if cells[i].City != cells[j].City {
			return cells[i].City < cells[j].City
		}
		if cells[i].Alg != cells[j].Alg {
			return cells[i].Alg < cells[j].Alg
		}
		return cells[i].Cell < cells[j].Cell
	})
}
