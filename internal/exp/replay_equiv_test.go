package exp

import (
	"sort"
	"testing"
	"time"

	"watter/internal/order"
	"watter/internal/platform"
	"watter/internal/sim"
)

// legacyRun is a frozen copy of the pre-redesign batch runner (sim.Run
// before the streaming core existed): pre-sorted slice, upfront horizon
// and DirectCost enrichment, one monolithic loop. It is the reference the
// adapter-over-streaming-core path must reproduce bit for bit. The only
// edit is that it enriches clones instead of the caller's orders, so the
// three arms of the equivalence test all see pristine inputs.
func legacyRun(env *sim.Env, alg sim.Algorithm, orders []*order.Order, opts sim.RunOptions) *sim.Metrics {
	if opts.TickEvery <= 0 {
		opts.TickEvery = 10
	}
	sorted := make([]*order.Order, len(orders))
	for i, o := range orders {
		c := *o
		sorted[i] = &c
	}
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Release < sorted[j].Release })

	var horizon float64
	for _, o := range sorted {
		if o.DirectCost == 0 {
			o.DirectCost = env.Net.Cost(o.Pickup, o.Dropoff)
		}
		if o.Deadline > horizon {
			horizon = o.Deadline
		}
	}
	if opts.DrainSlack > 0 {
		if len(sorted) > 0 {
			horizon = sorted[len(sorted)-1].Release + opts.DrainSlack
		} else {
			horizon = opts.DrainSlack
		}
	}

	env.Metrics = sim.Metrics{Total: len(sorted)}
	timed := func(fn func()) {
		if !opts.MeasureTime {
			fn()
			return
		}
		start := time.Now()
		fn()
		env.Metrics.DecisionSeconds += time.Since(start).Seconds()
	}

	timed(func() { alg.Init(env) })
	nextTick := opts.TickEvery
	for _, o := range sorted {
		for nextTick <= o.Release {
			env.Clock = nextTick
			t := nextTick
			timed(func() { alg.OnTick(t) })
			nextTick += opts.TickEvery
		}
		env.Clock = o.Release
		oo := o
		timed(func() { alg.OnOrder(oo, oo.Release) })
	}
	for nextTick <= horizon {
		env.Clock = nextTick
		t := nextTick
		timed(func() { alg.OnTick(t) })
		nextTick += opts.TickEvery
	}
	env.Clock = horizon
	timed(func() { alg.Finish(horizon) })
	return &env.Metrics
}

// TestReplayEquivalence is the acceptance test of the platform redesign:
// for all five algorithms, the batch adapter over the streaming core
// (sim.Run) and the full event-driven platform path (Platform.Replay with
// a subscribed, drained event bus) must both produce per-seed Metrics
// bit-identical to the frozen pre-redesign runner. Wall-clock fields are
// the documented exception (DESIGN.md §8) and are disabled here.
func TestReplayEquivalence(t *testing.T) {
	r := NewRunner()
	base := smallParams()
	for _, seed := range []int64{1, 2} {
		p := base
		p.Seed = seed
		p.Train.Seed = base.Seed // replicates share one trained model
		for _, name := range AlgNames {
			arm := func(run func(alg sim.Algorithm, orders []*order.Order, workers []*order.Worker) *sim.Metrics) *sim.Metrics {
				alg, err := r.Build(name, p)
				if err != nil {
					t.Fatalf("Build(%s): %v", name, err)
				}
				_, orders, workers := r.workload(p)
				return run(alg, orders, workers)
			}
			city := r.city(p.City)
			cfg := simConfig(p)
			opts := sim.RunOptions{TickEvery: p.TickEvery}

			legacy := arm(func(alg sim.Algorithm, orders []*order.Order, workers []*order.Worker) *sim.Metrics {
				return legacyRun(sim.NewEnv(city.Net, workers, cfg), alg, orders, opts)
			})
			adapter := arm(func(alg sim.Algorithm, orders []*order.Order, workers []*order.Worker) *sim.Metrics {
				return sim.Run(sim.NewEnv(city.Net, workers, cfg), alg, orders, opts)
			})
			var admitted, dispatched, rejected int
			streamed := arm(func(alg sim.Algorithm, orders []*order.Order, workers []*order.Worker) *sim.Metrics {
				plat, err := newPlatform(city, workers, alg, p, false)
				if err != nil {
					t.Fatalf("platform.New(%s): %v", name, err)
				}
				events := plat.Events()
				done := make(chan struct{})
				go func() {
					defer close(done)
					for ev := range events {
						switch e := ev.(type) {
						case platform.OrderAdmitted:
							admitted++
						case platform.GroupDispatched:
							dispatched += e.Size()
						case platform.OrderRejected:
							rejected++
						}
					}
				}()
				m, err := plat.Replay(orders)
				if err != nil {
					t.Fatalf("Replay(%s): %v", name, err)
				}
				<-done
				return m
			})

			if *adapter != *legacy {
				t.Fatalf("%s seed %d: adapter diverged from pre-redesign runner:\nlegacy:  %+v\nadapter: %+v",
					name, seed, *legacy, *adapter)
			}
			if *streamed != *legacy {
				t.Fatalf("%s seed %d: platform event path diverged from pre-redesign runner:\nlegacy:   %+v\nstreamed: %+v",
					name, seed, *legacy, *streamed)
			}
			if legacy.Served == 0 || legacy.Rejected == 0 {
				t.Fatalf("%s seed %d: degenerate run (%d served / %d rejected), equivalence is weak",
					name, seed, legacy.Served, legacy.Rejected)
			}
			if admitted != legacy.Total || dispatched != legacy.Served || rejected != legacy.Rejected {
				t.Fatalf("%s seed %d: event bus disagrees with metrics: admitted=%d/%d dispatched=%d/%d rejected=%d/%d",
					name, seed, admitted, legacy.Total, dispatched, legacy.Served, rejected, legacy.Rejected)
			}
		}
	}
}
