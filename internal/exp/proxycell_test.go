package exp

import (
	"strings"
	"testing"

	"watter/internal/dataset"
)

// TestProxyCellAggregatesStandaloneRuns pins the multi-city row's
// semantics: the aggregate of a cities=N cell is exactly the sum of N
// standalone single-city cells at the derived seeds — the front tier adds
// routing, not interference.
func TestProxyCellAggregatesStandaloneRuns(t *testing.T) {
	r := NewRunner()
	p := smallParams()
	p.Orders = 150
	p.Workers = 15
	p.NumCities = 3

	for _, name := range []string{"WATTER-online", "GDP"} {
		multi, err := r.RunOne(name, p)
		if err != nil {
			t.Fatal(err)
		}
		var wantTotal, wantServed, wantRejected int
		var wantExtra float64
		for i := 0; i < p.NumCities; i++ {
			pi := p
			pi.NumCities = 0
			pi.Seed = p.Seed + int64(i)*9973
			solo, err := r.RunOne(name, pi)
			if err != nil {
				t.Fatal(err)
			}
			wantTotal += solo.Metrics.Total
			wantServed += solo.Metrics.Served
			wantRejected += solo.Metrics.Rejected
			wantExtra += solo.Metrics.ExtraTime()
		}
		m := multi.Metrics
		if m.Total != wantTotal || m.Served != wantServed || m.Rejected != wantRejected {
			t.Fatalf("%s: aggregate ledger %d/%d/%d, standalone sum %d/%d/%d",
				name, m.Total, m.Served, m.Rejected, wantTotal, wantServed, wantRejected)
		}
		if m.ExtraTime() != wantExtra {
			t.Fatalf("%s: aggregate extra time %v, standalone sum %v", name, m.ExtraTime(), wantExtra)
		}
	}
}

// TestProxyCellDeterministic pins replicate stability: the same multi-city
// cell run twice yields identical deterministic metrics.
func TestProxyCellDeterministic(t *testing.T) {
	r := NewRunner()
	p := smallParams()
	p.Orders = 150
	p.Workers = 15
	p.NumCities = 2
	a, err := r.RunOne("WATTER-timeout", p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunOne("WATTER-timeout", p)
	if err != nil {
		t.Fatal(err)
	}
	ma, mb := *a.Metrics, *b.Metrics
	ma.DecisionSeconds, mb.DecisionSeconds = 0, 0
	if ma != mb {
		t.Fatalf("multi-city cell not deterministic:\na: %+v\nb: %+v", ma, mb)
	}
}

// TestMatrixCityCountsAxis pins the sweep expansion: CityCounts multiplies
// the grid, multi-city rows get a /citiesN cell suffix, and single-city
// rows keep their pre-axis cell keys.
func TestMatrixCityCountsAxis(t *testing.T) {
	m := Matrix{
		Base:       DefaultParams(dataset.CDC()),
		Algs:       []string{"WATTER-online"},
		CityCounts: []int{1, 4},
		Seeds:      []int64{1, 2},
	}
	jobs := m.Jobs()
	if len(jobs) != 4 {
		t.Fatalf("expected 2 counts x 2 seeds, got %d jobs", len(jobs))
	}
	var plain, multi int
	for _, j := range jobs {
		if strings.Contains(j.Cell, "/cities") {
			multi++
			if j.P.NumCities != 4 || !strings.HasSuffix(j.Cell, "/cities4") {
				t.Fatalf("bad multi-city job: %+v", j)
			}
		} else {
			plain++
			if j.P.NumCities != 1 {
				t.Fatalf("bad single-city job: %+v", j)
			}
		}
	}
	if plain != 2 || multi != 2 {
		t.Fatalf("axis split %d/%d", plain, multi)
	}
	// No axis: the default keeps NumCities at Base and the cell key bare.
	for _, j := range (Matrix{Base: DefaultParams(dataset.CDC()), Algs: []string{"GDP"}}).Jobs() {
		if strings.Contains(j.Cell, "/cities") || j.P.NumCities != 0 {
			t.Fatalf("default expansion grew a cities suffix: %+v", j)
		}
	}
}
