package exp

import (
	"sort"

	"watter/internal/stats"
)

// MetricSummaries maps metric name -> cross-seed summary.
type MetricSummaries map[string]stats.Summary

// RunSeeds runs one (algorithm, params) cell across several workload seeds
// and summarizes the four paper metrics, so reported numbers carry
// variance instead of a single draw.
func (r *Runner) RunSeeds(name string, p Params, seeds []int64) (MetricSummaries, error) {
	series := map[string][]float64{}
	for _, seed := range seeds {
		ps := p
		ps.Seed = seed
		res, err := r.RunOne(name, ps)
		if err != nil {
			return nil, err
		}
		m := res.Metrics
		series["extra_time"] = append(series["extra_time"], m.ExtraTime())
		series["unified_cost"] = append(series["unified_cost"], m.UnifiedCost())
		series["service_rate"] = append(series["service_rate"], m.ServiceRate())
		series["running_time"] = append(series["running_time"], m.RunningTime())
	}
	out := make(MetricSummaries, len(series))
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out[k] = stats.Summarize(series[k])
	}
	return out, nil
}
