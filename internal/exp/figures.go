package exp

import (
	"fmt"
	"io"
	"strings"

	"watter/internal/dataset"
)

// Sweep is one figure/table reproduction: a family of parameter points,
// each run for every compared algorithm, reported as the paper's four
// metric series.
type Sweep struct {
	// ID names the experiment ("fig3", "fig4", ...; see DESIGN.md E-index).
	ID string
	// Label describes the varied parameter (x axis).
	Label string
	// Points are the x values; Apply sets the corresponding field.
	Points []float64
	Apply  func(p Params, x float64) Params
	// Algs defaults to AlgNames when empty.
	Algs []string
}

// FigureSweeps returns every reproduction sweep for a city at the given
// base configuration. Scale factors below mirror the ratios of Table III:
// the paper sweeps n over 0.5x..1.25x of the default and m over 3k..6k
// against a 5k default.
func FigureSweeps(base Params) []Sweep {
	return []Sweep{
		{
			ID: "fig3", Label: "n (orders)",
			Points: []float64{0.5, 0.75, 1.0, 1.25},
			Apply: func(p Params, x float64) Params {
				p.Orders = int(float64(p.Orders) * x)
				return p
			},
		},
		{
			ID: "fig4", Label: "m (workers)",
			Points: []float64{0.6, 0.8, 1.0, 1.2},
			Apply: func(p Params, x float64) Params {
				p.Workers = int(float64(p.Workers) * x)
				return p
			},
		},
		{
			ID: "fig5", Label: "tau (deadline scale)",
			Points: []float64{1.2, 1.4, 1.6, 1.8},
			Apply: func(p Params, x float64) Params {
				p.TauScale = x
				return p
			},
		},
		{
			ID: "fig6", Label: "Kw (max capacity)",
			Points: []float64{2, 3, 4, 5},
			Apply: func(p Params, x float64) Params {
				p.MaxCap = int(x)
				return p
			},
		},
		{
			ID: "grid", Label: "grid index side (Appendix D)",
			Points: []float64{5, 10, 15, 20},
			Apply: func(p Params, x float64) Params {
				p.GridN = int(x)
				return p
			},
			Algs: []string{"WATTER-expect"},
		},
		{
			ID: "eta", Label: "eta (watching window, Appendix F)",
			Points: []float64{0.4, 0.6, 0.8, 1.0},
			Apply: func(p Params, x float64) Params {
				p.Eta = x
				return p
			},
			Algs: []string{"WATTER-expect", "WATTER-online", "WATTER-timeout"},
		},
		{
			ID: "dt", Label: "Δt (time slot, Appendix G)",
			Points: []float64{5, 10, 20, 40},
			Apply: func(p Params, x float64) Params {
				p.TickEvery = x
				return p
			},
			Algs: []string{"WATTER-expect", "WATTER-online", "WATTER-timeout"},
		},
		{
			ID: "gmm", Label: "GMM components K (ablation E9)",
			Points: []float64{1, 2, 4, 8},
			Apply: func(p Params, x float64) Params {
				p.Train.GMMComponents = int(x)
				return p
			},
			Algs: []string{"WATTER-expect"},
		},
		{
			ID: "omega", Label: "loss weight ω (ablation E10)",
			Points: []float64{0, 0.25, 0.5, 0.75, 1},
			Apply: func(p Params, x float64) Params {
				p.Train.Omega = x
				return p
			},
			Algs: []string{"WATTER-expect"},
		},
	}
}

// SweepByID finds a sweep by ID.
func SweepByID(base Params, id string) (Sweep, error) {
	for _, s := range FigureSweeps(base) {
		if s.ID == id {
			return s, nil
		}
	}
	return Sweep{}, fmt.Errorf("exp: unknown sweep %q", id)
}

// RunSweep executes every (point, algorithm) cell of the sweep
// sequentially. It is the Parallel=1 case of SweepRunner.RunFigure.
func (r *Runner) RunSweep(s Sweep, base Params) ([]*Result, error) {
	return (&SweepRunner{Runner: r, Parallel: 1}).RunFigure(s, base)
}

// PrintSweep renders the paper-style table: one block per metric, rows =
// algorithms, columns = sweep points.
func PrintSweep(w io.Writer, s Sweep, city dataset.Profile, results []*Result) {
	metrics := []struct {
		name string
		get  func(*Result) float64
		fmt  string
	}{
		{"Extra Time (s, total Φ)", func(r *Result) float64 { return r.Metrics.ExtraTime() }, "%14.0f"},
		{"Unified Cost", func(r *Result) float64 { return r.Metrics.UnifiedCost() }, "%14.0f"},
		{"Service Rate (%)", func(r *Result) float64 { return 100 * r.Metrics.ServiceRate() }, "%14.1f"},
		{"Running Time (s/order)", func(r *Result) float64 { return r.Metrics.RunningTime() }, "%14.6f"},
	}
	var algs []string
	seen := map[string]bool{}
	for _, res := range results {
		if !seen[res.Alg] {
			seen[res.Alg] = true
			algs = append(algs, res.Alg)
		}
	}
	fmt.Fprintf(w, "== %s / %s — varying %s ==\n", s.ID, city.Name, s.Label)
	for _, m := range metrics {
		fmt.Fprintf(w, "-- %s --\n", m.name)
		fmt.Fprintf(w, "%-16s", s.Label)
		for _, x := range s.Points {
			fmt.Fprintf(w, "%14v", trimFloat(x))
		}
		fmt.Fprintln(w)
		for _, alg := range algs {
			fmt.Fprintf(w, "%-16s", alg)
			for _, x := range s.Points {
				res := findResult(results, alg, x)
				if res == nil {
					fmt.Fprintf(w, "%14s", "-")
					continue
				}
				fmt.Fprintf(w, m.fmt, m.get(res))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

// PrintCells renders matrix cell summaries: one row per cell with the four
// metrics as "mean ± ci95" across replicate seeds.
func PrintCells(w io.Writer, cells []CellSummary) {
	fmt.Fprintf(w, "%-14s %-5s %6s %6s %3s %5s %4s  %-18s %-18s %-16s %-20s %-14s\n",
		"alg", "city", "n", "m", "Kw", "tau", "reps",
		"extra_time", "unified_cost", "service_rate", "running_time", "elapsed_s")
	for _, c := range cells {
		fmt.Fprintf(w, "%-14s %-5s %6d %6d %3d %5.2f %4d  %-18s %-18s %-16s %-20s %-14s\n",
			c.Alg, c.City, c.Params.Orders, c.Params.Workers, c.Params.MaxCap, c.Params.TauScale,
			len(c.Seeds),
			fmt.Sprintf("%.0f±%.0f", c.ExtraTime.Mean, c.ExtraTime.CI95()),
			fmt.Sprintf("%.0f±%.0f", c.UnifiedCost.Mean, c.UnifiedCost.CI95()),
			fmt.Sprintf("%.3f±%.3f", c.ServiceRate.Mean, c.ServiceRate.CI95()),
			fmt.Sprintf("%.2g±%.1g", c.RunningTime.Mean, c.RunningTime.CI95()),
			fmt.Sprintf("%.2f±%.2f", c.Elapsed.Mean(), c.Elapsed.CI95()))
	}
}

func findResult(results []*Result, alg string, x float64) *Result {
	for _, r := range results {
		if r.Alg == alg && r.X == x {
			return r
		}
	}
	return nil
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.2f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
