package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"watter/internal/dataset"
)

// smallParams keeps harness tests fast.
func smallParams() Params {
	p := DefaultParams(dataset.XIA())
	p.Orders = 400
	p.Workers = 40
	p.Train.HistoricalOrders = 250
	p.Train.TrainSteps = 100
	return p
}

func TestBuildAllAlgorithms(t *testing.T) {
	r := NewRunner()
	p := smallParams()
	for _, name := range AlgNames {
		alg, err := r.Build(name, p)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if alg.Name() != name {
			t.Fatalf("Build(%s).Name() = %q", name, alg.Name())
		}
	}
	if _, err := r.Build("nope", p); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}

func TestRunOneAccounting(t *testing.T) {
	r := NewRunner()
	p := smallParams()
	for _, name := range AlgNames {
		res, err := r.RunOne(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m := res.Metrics
		if m.Served+m.Rejected != m.Total || m.Total != len(workloadOrders(p)) {
			t.Fatalf("%s accounting: %+v", name, m)
		}
		if m.RunningTime() < 0 {
			t.Fatalf("%s runtime negative", name)
		}
	}
}

func workloadOrders(p Params) []int {
	_, orders, _ := Workload(p)
	ids := make([]int, len(orders))
	for i, o := range orders {
		ids[i] = o.ID
	}
	return ids
}

func TestTrainCaches(t *testing.T) {
	r := NewRunner()
	p := smallParams()
	a := r.Train(p)
	b := r.Train(p)
	if a != b {
		t.Fatal("identical params must reuse the trained model")
	}
	p2 := p
	p2.TauScale = 1.2
	if c := r.Train(p2); c == a {
		t.Fatal("different tau must retrain")
	}
}

func TestTrainProducesUsableArtifacts(t *testing.T) {
	r := NewRunner()
	tr := r.Train(smallParams())
	if tr.Trainer.ReplayLen() == 0 {
		t.Fatal("no experience collected")
	}
	if len(tr.GMM.Components) == 0 {
		t.Fatal("no GMM")
	}
	if tr.Feat.Dim() <= 0 {
		t.Fatal("featurizer broken")
	}
	// The CDF must be a valid distribution function over plausible extras.
	if tr.GMM.CDF(1e6) < 0.99 {
		t.Fatalf("CDF tail = %v", tr.GMM.CDF(1e6))
	}
}

func TestSweepDefinitions(t *testing.T) {
	base := smallParams()
	sweeps := FigureSweeps(base)
	ids := map[string]bool{}
	for _, s := range sweeps {
		if ids[s.ID] {
			t.Fatalf("duplicate sweep id %s", s.ID)
		}
		ids[s.ID] = true
		if len(s.Points) < 2 {
			t.Fatalf("%s has %d points", s.ID, len(s.Points))
		}
		// Apply must actually change the configuration.
		changed := false
		for _, x := range s.Points {
			if base2String(s.Apply(base, x)) != base2String(base) {
				changed = true
			}
		}
		if !changed {
			t.Fatalf("%s.Apply is a no-op", s.ID)
		}
	}
	for _, want := range []string{"fig3", "fig4", "fig5", "fig6", "grid", "eta", "dt", "gmm", "omega"} {
		if !ids[want] {
			t.Fatalf("missing sweep %s", want)
		}
	}
	if _, err := SweepByID(base, "fig99"); err == nil {
		t.Fatal("unknown sweep must error")
	}
}

func base2String(p Params) string {
	return fmt.Sprintf("%s/%d/%d/%.2f/%.2f/%d/%d/%.1f/%d/%.2f",
		p.City.Name, p.Orders, p.Workers, p.TauScale, p.Eta,
		p.MaxCap, p.GridN, p.TickEvery, p.Train.GMMComponents, p.Train.Omega)
}

func TestRunSweepAndPrint(t *testing.T) {
	r := NewRunner()
	base := smallParams()
	s := Sweep{
		ID: "mini", Label: "tau",
		Points: []float64{1.4, 1.8},
		Apply: func(p Params, x float64) Params {
			p.TauScale = x
			return p
		},
		Algs: []string{"WATTER-online", "GDP"},
	}
	results, err := r.RunSweep(s, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	var buf bytes.Buffer
	PrintSweep(&buf, s, base.City, results)
	out := buf.String()
	for _, needle := range []string{"Extra Time", "Unified Cost", "Service Rate", "Running Time", "WATTER-online", "GDP", "1.4", "1.8"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("table missing %q:\n%s", needle, out)
		}
	}
}

// TestTauShape: the deadline sweep must show the paper's Figure 5 shape —
// larger tau increases extra time for everyone (more slack means longer
// tolerated waits/detours and bigger penalties), and WATTER-expect beats
// WATTER-timeout throughout.
func TestTauShape(t *testing.T) {
	r := NewRunner()
	base := smallParams()
	base.Orders = 600
	base.Workers = 55
	tight := base
	tight.TauScale = 1.2
	loose := base
	loose.TauScale = 1.8
	for _, alg := range []string{"WATTER-expect", "WATTER-timeout"} {
		a, err := r.RunOne(alg, tight)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.RunOne(alg, loose)
		if err != nil {
			t.Fatal(err)
		}
		if b.Metrics.ServiceRate() < a.Metrics.ServiceRate() {
			t.Fatalf("%s: looser deadlines lowered service rate %.3f -> %.3f",
				alg, a.Metrics.ServiceRate(), b.Metrics.ServiceRate())
		}
	}
	exp1, err := r.RunOne("WATTER-expect", loose)
	if err != nil {
		t.Fatal(err)
	}
	to1, err := r.RunOne("WATTER-timeout", loose)
	if err != nil {
		t.Fatal(err)
	}
	if exp1.Metrics.ExtraTime() > to1.Metrics.ExtraTime() {
		t.Fatalf("expect (%.0f) must beat timeout (%.0f) on extra time at tau=1.8",
			exp1.Metrics.ExtraTime(), to1.Metrics.ExtraTime())
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRunner()
	base := smallParams()
	res, err := r.RunOne("WATTER-online", base)
	if err != nil {
		t.Fatal(err)
	}
	res.X = 1.5
	var buf bytes.Buffer
	if err := WriteCSV(&buf, "figX", []*Result{res}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "sweep,city,x,algorithm") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "figX,XIA,1.5,WATTER-online") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestModelKeyCoversTrainParams(t *testing.T) {
	base := smallParams()
	variants := []func(Params) Params{
		func(p Params) Params { p.Train.GMMComponents = 7; return p },
		func(p Params) Params { p.Train.Omega = 0.9; return p },
		func(p Params) Params { p.Train.Hidden = []int{8}; return p },
		func(p Params) Params { p.Train.TrainSteps = 9; return p },
		func(p Params) Params { p.Train.HistoricalOrders = 9; return p },
		func(p Params) Params { p.GridN = 7; return p },
		func(p Params) Params { p.TickEvery = 7; return p },
		func(p Params) Params { p.TauScale = 1.99; return p },
	}
	for i, v := range variants {
		if modelKey(v(base)) == modelKey(base) {
			t.Fatalf("variant %d does not change the model cache key", i)
		}
	}
}
