package exp

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"watter/internal/gmm"
	"watter/internal/gridindex"
	"watter/internal/mdp"
	"watter/internal/nn"
	"watter/internal/roadnet"
)

// trainedSnapshot is the gob wire form of a Trained bundle. The value
// network travels as its own gob blob (nn owns its encoding); featurizer
// geometry is stored as plain parameters and rebound to a network at load
// time.
type trainedSnapshot struct {
	GridN          int
	SlotSeconds    float64
	HorizonSeconds float64
	MaxWaitSlots   float64
	GMM            []gmm.Component
	Net            []byte
}

// Save serializes the trained WATTER-expect artifacts (featurizer
// geometry, GMM, value-network weights) so a model trained by wattertrain
// can be reloaded without re-simulating.
func (t *Trained) Save(w io.Writer) error {
	var netBuf bytes.Buffer
	if err := t.Net.Save(&netBuf); err != nil {
		return fmt.Errorf("exp: save network: %w", err)
	}
	snap := trainedSnapshot{
		GridN:          t.Feat.Index.N(),
		SlotSeconds:    t.Feat.SlotSeconds,
		HorizonSeconds: t.Feat.HorizonSeconds,
		MaxWaitSlots:   t.Feat.MaxWaitSlots,
		GMM:            t.GMM.Components,
		Net:            netBuf.Bytes(),
	}
	return gob.NewEncoder(w).Encode(snap)
}

// LoadTrained reads a bundle written by Trained.Save and rebinds it to the
// given network (the grid index is a function of the network bounds, so
// the model must be loaded against the same city geometry it was trained
// on; a dimension check enforces that). The returned Trained has no
// Trainer: it is an inference-only model.
func LoadTrained(r io.Reader, net roadnet.Network) (*Trained, error) {
	var snap trainedSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("exp: load: %w", err)
	}
	if snap.GridN <= 0 || len(snap.Net) == 0 {
		return nil, fmt.Errorf("exp: load: corrupt bundle")
	}
	ix := gridindex.New(net, snap.GridN)
	feat := &mdp.Featurizer{
		Index:          ix,
		SlotSeconds:    snap.SlotSeconds,
		HorizonSeconds: snap.HorizonSeconds,
		MaxWaitSlots:   snap.MaxWaitSlots,
	}
	mlp, err := nn.Load(bytes.NewReader(snap.Net))
	if err != nil {
		return nil, err
	}
	if mlp.Sizes()[0] != feat.Dim() {
		return nil, fmt.Errorf("exp: load: model expects %d-dim states, city gives %d (wrong city geometry?)",
			mlp.Sizes()[0], feat.Dim())
	}
	model := &gmm.Model{Components: snap.GMM}
	return &Trained{Feat: feat, Net: mlp, GMM: model, Theta: gmm.NewThresholdSource(model)}, nil
}
