package exp

import (
	"bytes"
	"strings"
	"testing"

	"watter/internal/dataset"
	"watter/internal/roadnet"
)

func TestTrainedSaveLoadRoundTrip(t *testing.T) {
	r := NewRunner()
	p := smallParams()
	trained := r.Train(p)

	var buf bytes.Buffer
	if err := trained.Save(&buf); err != nil {
		t.Fatal(err)
	}
	city := p.City.Build()
	loaded, err := LoadTrained(bytes.NewReader(buf.Bytes()), city.Net)
	if err != nil {
		t.Fatal(err)
	}
	// Identical predictions on an arbitrary state.
	state := make([]float64, loaded.Feat.Dim())
	for i := range state {
		state[i] = float64(i%5) / 5
	}
	if got, want := loaded.Net.Predict(state), trained.Net.Predict(state); got != want {
		t.Fatalf("prediction drift: %v vs %v", got, want)
	}
	if len(loaded.GMM.Components) != len(trained.GMM.Components) {
		t.Fatal("GMM lost components")
	}
	if loaded.Feat.SlotSeconds != trained.Feat.SlotSeconds {
		t.Fatal("featurizer params lost")
	}
}

func TestLoadTrainedRejectsWrongGeometry(t *testing.T) {
	r := NewRunner()
	p := smallParams()
	trained := r.Train(p)
	var buf bytes.Buffer
	if err := trained.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Same bytes, grotesquely different city: the grid index has the same
	// cell count (N x N), so geometry mismatches only bite when N config
	// differs; corrupting the stream must also fail loudly.
	if _, err := LoadTrained(strings.NewReader("not a gob"), roadnet.NewGridCity(3, 3, 10, 1)); err == nil {
		t.Fatal("garbage must fail")
	}
}

func TestRunSeeds(t *testing.T) {
	r := NewRunner()
	p := smallParams()
	sums, err := r.RunSeeds("WATTER-online", p, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"extra_time", "unified_cost", "service_rate", "running_time"} {
		s, ok := sums[key]
		if !ok {
			t.Fatalf("missing metric %s", key)
		}
		if s.N != 3 {
			t.Fatalf("%s: n = %d", key, s.N)
		}
		if s.Min > s.Mean || s.Mean > s.Max {
			t.Fatalf("%s: broken summary %+v", key, s)
		}
	}
	if sums["service_rate"].Mean <= 0 {
		t.Fatal("nothing served across seeds")
	}
	// Different seeds must actually vary the workload.
	if sums["extra_time"].Min == sums["extra_time"].Max {
		t.Fatal("seeds produced identical extra time — suspicious")
	}
	_ = dataset.CDC()
}
