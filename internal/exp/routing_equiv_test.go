package exp

import (
	"math"
	"math/rand"
	"testing"

	"watter/internal/baseline"
	"watter/internal/core"
	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/pool"
	"watter/internal/roadnet"
	"watter/internal/sim"
	"watter/internal/strategy"
)

// graphWorkload generates a deterministic order stream and fleet over an
// explicit Graph city (the sweep profiles use the closed-form GridCity, so
// this test builds its own city to exercise the routing engine end to end).
func graphWorkload(g *roadnet.Graph, n, m int, seed int64) ([]*order.Order, []*order.Worker) {
	rng := rand.New(rand.NewSource(seed))
	nodes := g.NumNodes()
	orders := make([]*order.Order, 0, n)
	for i := 0; i < n; i++ {
		pu := geo.NodeID(rng.Intn(nodes))
		do := geo.NodeID(rng.Intn(nodes))
		if pu == do {
			continue
		}
		direct := g.Cost(pu, do)
		release := float64(rng.Intn(400))
		orders = append(orders, &order.Order{
			ID: i + 1, Pickup: pu, Dropoff: do, Riders: 1,
			Release: release, Deadline: release + 2.5*direct + 60,
			WaitLimit: 0.8 * direct, DirectCost: direct,
		})
	}
	workers := make([]*order.Worker, m)
	for i := range workers {
		workers[i] = &order.Worker{
			ID: i + 1, Loc: geo.NodeID(rng.Intn(nodes)), Capacity: 2 + rng.Intn(3),
		}
	}
	return orders, workers
}

// TestSimMetricsEngineEquivalence is the end-to-end acceptance test for the
// routing engine: a full simulation over a Graph-backed city must produce
// bit-identical Metrics whether Cost is answered by the ALT point-to-point
// engine or by the legacy cached full Dijkstra. Wall-clock fields are the
// documented exception.
func TestSimMetricsEngineEquivalence(t *testing.T) {
	algs := map[string]func() sim.Algorithm{
		"WATTER-online":  func() sim.Algorithm { return core.New(strategy.Online{}, pool.DefaultOptions()) },
		"WATTER-timeout": func() sim.Algorithm { return core.New(strategy.Timeout{Tick: 10}, pool.DefaultOptions()) },
		"GDP":            func() sim.Algorithm { return &baseline.GDP{} },
		"GAS":            func() sim.Algorithm { return &baseline.GAS{BatchSeconds: 5} },
	}
	for name, mk := range algs {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			run := func(pointToPoint bool) sim.Metrics {
				g := roadnet.NewPerturbedGrid(12, 12, 150, 8, 0.3, 4)
				g.SetPointToPoint(pointToPoint)
				orders, workers := graphWorkload(g, 80, 15, 9)
				env := sim.NewEnv(g, workers, sim.DefaultConfig())
				opts := sim.DefaultRunOptions()
				opts.MeasureTime = false
				return *sim.Run(env, mk(), orders, opts)
			}
			engine := run(true)
			legacy := run(false)
			engine.DecisionSeconds, legacy.DecisionSeconds = 0, 0
			if engine != legacy {
				t.Fatalf("metrics diverged between engine and legacy oracle:\nengine: %+v\nlegacy: %+v", engine, legacy)
			}
			if engine.Served == 0 {
				t.Fatal("degenerate run: nothing served, equivalence is vacuous")
			}
			if rate := engine.ServiceRate(); math.IsNaN(rate) {
				t.Fatal("NaN service rate")
			}
		})
	}
}
