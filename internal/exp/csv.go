package exp

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV emits sweep results as tidy rows (one row per algorithm ×
// sweep-point × seed) for external plotting: sweep, city, x, algorithm,
// seed (distinguishes replicate rows), the four metrics and the raw
// served/rejected counts.
func WriteCSV(w io.Writer, sweepID string, results []*Result) error {
	cw := csv.NewWriter(w)
	header := []string{
		"sweep", "city", "x", "algorithm", "seed",
		"extra_time_s", "unified_cost", "service_rate", "running_time_s_per_order",
		"served", "rejected", "avg_group_size",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		m := r.Metrics
		row := []string{
			sweepID,
			r.Params.City.Name,
			fmt.Sprintf("%g", r.X),
			r.Alg,
			fmt.Sprintf("%d", r.Params.Seed),
			fmt.Sprintf("%.3f", m.ExtraTime()),
			fmt.Sprintf("%.3f", m.UnifiedCost()),
			fmt.Sprintf("%.6f", m.ServiceRate()),
			fmt.Sprintf("%.9f", m.RunningTime()),
			fmt.Sprintf("%d", m.Served),
			fmt.Sprintf("%d", m.Rejected),
			fmt.Sprintf("%.4f", m.AvgGroupSize()),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
