package exp

import (
	"testing"

	"watter/internal/pool"
	"watter/internal/sim"
)

// TestPoolCacheEquivalence is the acceptance test of the clique plan cache:
// for all five algorithms and two seeds, a full simulation with the pool's
// memoization on must produce per-seed Metrics bit-identical to one with
// every memo disabled (plan cache and leg-block store both off). The
// baselines have no pool and pin the harness path; the three WATTER
// variants exercise the cache on every insert, tick and dispatch.
func TestPoolCacheEquivalence(t *testing.T) {
	r := NewRunner()
	base := smallParams()
	for _, seed := range []int64{1, 2} {
		p := base
		p.Seed = seed
		p.Train.Seed = base.Seed // replicates share one trained model
		for _, name := range AlgNames {
			run := func(disable bool) (*sim.Metrics, pool.CacheStats) {
				alg, err := r.Build(name, p)
				if err != nil {
					t.Fatalf("Build(%s): %v", name, err)
				}
				if ps, ok := alg.(interface{ SetPoolOptions(pool.Options) }); ok {
					opt := poolOptions(p)
					opt.DisablePlanCache = disable
					ps.SetPoolOptions(opt)
				}
				city := r.city(p.City)
				_, orders, workers := r.workload(p)
				m := sim.Run(sim.NewEnv(city.Net, workers, simConfig(p)), alg, orders,
					sim.RunOptions{TickEvery: p.TickEvery})
				var st pool.CacheStats
				if pp, ok := alg.(interface{ Pool() *pool.Pool }); ok && pp.Pool() != nil {
					st = pp.Pool().CacheStats()
				}
				return m, st
			}
			cached, st := run(false)
			uncached, off := run(true)
			if *cached != *uncached {
				t.Fatalf("%s seed %d: metrics diverged with plan cache on:\ncached:   %+v\nuncached: %+v",
					name, seed, *cached, *uncached)
			}
			if cached.Served == 0 || cached.Rejected == 0 {
				t.Fatalf("%s seed %d: degenerate run (%d served / %d rejected), equivalence is weak",
					name, seed, cached.Served, cached.Rejected)
			}
			if name != "GDP" && name != "GAS" {
				if st.PlansAvoided() == 0 {
					t.Fatalf("%s seed %d: cache never hit (%+v), equivalence is vacuous", name, seed, st)
				}
				if off.Hits+off.NegativeHits+off.Misses != 0 {
					t.Fatalf("%s seed %d: disabled cache recorded traffic: %+v", name, seed, off)
				}
			}
		}
	}
}
