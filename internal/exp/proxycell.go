package exp

import (
	"fmt"
	"time"

	"watter/internal/order"
	"watter/internal/platform"
	"watter/internal/proxy"
	"watter/internal/sim"
)

// runProxyCell executes one multi-city cell: NumCities instances of the
// profile, each with its own seed-derived workload and fleet, behind one
// dispatch proxy. The row measures front-tier scale (N independent city
// simulations through one routed surface); per-city isolation means its
// aggregate is exactly the sum of N standalone runs, which the proxy
// package's bit-identity tests enforce.
func (r *Runner) runProxyCell(name string, p Params) (*Result, error) {
	city := r.city(p.City)
	specs := make([]proxy.CitySpec, 0, p.NumCities)
	workloads := make(map[string][]*order.Order, p.NumCities)
	for i := 0; i < p.NumCities; i++ {
		pi := p
		// Derived per-city seeds: city 0 replays the single-city cell's
		// exact workload; the rest are independent replicas of the same
		// demand model.
		pi.Seed = p.Seed + int64(i)*9973
		_, orders, workers := workloadIn(city, pi)
		id := fmt.Sprintf("%s-%d", p.City.Name, i+1)
		// Pre-flight the build so algorithm errors surface here, not as an
		// opaque nil inside proxy.New.
		if _, err := r.Build(name, pi); err != nil {
			return nil, err
		}
		pc := pi
		specs = append(specs, proxy.CitySpec{
			ID:      id,
			Net:     city.Net,
			Workers: workers,
			NewAlgorithm: func() sim.Algorithm {
				alg, err := r.Build(name, pc)
				if err != nil {
					return nil
				}
				return alg
			},
			Options: []platform.Option{
				platform.WithConfig(simConfig(pi)),
				platform.WithTick(pi.TickEvery),
				platform.WithMeasuredTime(true),
			},
		})
		workloads[id] = orders
	}
	px, err := proxy.New(specs)
	if err != nil {
		return nil, err
	}
	start := time.Now() //det:wallclock cell wall-time for Result.Elapsed reporting; never feeds simulation state
	perCity, err := px.Replay(workloads)
	if err != nil {
		return nil, err
	}
	var agg sim.Metrics
	for _, spec := range specs {
		m := perCity[spec.ID]
		if m == nil {
			return nil, fmt.Errorf("exp: proxy cell lost city %q", spec.ID)
		}
		agg.Total += m.Total
		agg.Served += m.Served
		agg.Rejected += m.Rejected
		agg.ServedExtra += m.ServedExtra
		agg.PenaltySum += m.PenaltySum
		agg.ResponseSum += m.ResponseSum
		agg.DetourSum += m.DetourSum
		agg.WorkerTravel += m.WorkerTravel
		agg.RejectUnified += m.RejectUnified
		agg.DecisionSeconds += m.DecisionSeconds
		for k, c := range m.GroupSizeHist {
			agg.GroupSizeHist[k] += c
		}
	}
	//det:wallclock Result.Elapsed is an observability field, outside per-seed metrics
	res := &Result{Alg: name, Params: p, Metrics: &agg, Elapsed: time.Since(start)}
	r.logf("[%s %s] cities=%d n=%d m=%d tau=%.1f: %s\n",
		p.City.Name, name, p.NumCities, p.Orders, p.Workers, p.TauScale, &agg)
	return res, nil
}
