package exp

import (
	"testing"

	"watter/internal/core"
	"watter/internal/sim"
)

// TestShardEquivalence is the acceptance test of the slot-sharded dispatch
// engine: for all five algorithms and two seeds, running the same workload
// with K ∈ {2, 4} shards must produce per-seed Metrics bit-identical to
// the sequential K = 1 check. Sharding buys cores, never different
// dispatches — the engine's speculations are consumed only while provably
// equal to what a fresh computation would return. Wall-clock fields are
// the documented exception (DESIGN.md §8) and are disabled here.
func TestShardEquivalence(t *testing.T) {
	r := NewRunner()
	base := smallParams()
	for _, seed := range []int64{1, 2} {
		for _, name := range AlgNames {
			p := base
			p.Seed = seed
			p.Train.Seed = base.Seed // replicates share one trained model
			city := r.city(p.City)
			cfg := simConfig(p)
			opts := sim.RunOptions{TickEvery: p.TickEvery}

			run := func(shards int) *sim.Metrics {
				pp := p
				pp.Shards = shards
				alg, err := r.Build(name, pp)
				if err != nil {
					t.Fatalf("Build(%s): %v", name, err)
				}
				_, orders, workers := r.workload(pp)
				return sim.Run(sim.NewEnv(city.Net, workers, cfg), alg, orders, opts)
			}

			sequential := run(1)
			if sequential.Served == 0 || sequential.Rejected == 0 {
				t.Fatalf("%s seed %d: degenerate run (%d served / %d rejected), equivalence is weak",
					name, seed, sequential.Served, sequential.Rejected)
			}
			for _, k := range []int{2, 4} {
				sharded := run(k)
				if *sharded != *sequential {
					t.Fatalf("%s seed %d: K=%d shards diverged from the sequential check:\nK=1: %+v\nK=%d: %+v",
						name, seed, k, *sequential, k, *sharded)
				}
			}
		}
	}
}

// TestShardEngineExercised guards the equivalence test against silently
// testing nothing: a sharded WATTER run must actually consume speculative
// probes and prewarmed pairs.
func TestShardEngineExercised(t *testing.T) {
	p := smallParams()
	p.Shards = 4
	alg, err := NewRunner().Build("WATTER-online", p)
	if err != nil {
		t.Fatal(err)
	}
	city, orders, workers := Workload(p)
	sim.Run(sim.NewEnv(city.Net, workers, simConfig(p)), alg, orders,
		sim.RunOptions{TickEvery: p.TickEvery})
	fw, ok := alg.(*core.Framework)
	if !ok {
		t.Fatalf("WATTER-online is %T, not *core.Framework", alg)
	}
	eng := fw.ShardEngine()
	if eng == nil {
		t.Fatal("sharded run left no engine")
	}
	st := eng.Stats()
	if st.Ticks == 0 || st.SpecOrders == 0 {
		t.Fatalf("engine speculated nothing: %+v", st)
	}
	if st.GroupHits+st.SoloHits == 0 {
		t.Fatalf("no speculative probe was ever consumed: %+v", st)
	}
	if st.PrewarmTasks == 0 {
		t.Fatalf("no pairwise plan was prewarmed: %+v", st)
	}
	if eng.Table().K() != 4 {
		t.Fatalf("table has %d shards, want 4", eng.Table().K())
	}
}
