package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"watter/internal/dataset"
	"watter/internal/sim"
)

// tinyParams is the smallest workload that still exercises pooling.
func tinyParams() Params {
	p := DefaultParams(dataset.XIA())
	p.Orders = 150
	p.Workers = 18
	p.Train.HistoricalOrders = 120
	p.Train.TrainSteps = 40
	p.Train.Hidden = []int{8}
	return p
}

func TestMatrixJobsExpansion(t *testing.T) {
	m := Matrix{
		Base:      tinyParams(),
		Algs:      []string{"GDP", "WATTER-online"},
		Orders:    []int{100, 200},
		TauScales: []float64{1.4, 1.6},
		Seeds:     []int64{1, 2, 3},
	}
	jobs := m.Jobs()
	if want := 2 * 2 * 2 * 3; len(jobs) != want {
		t.Fatalf("jobs = %d, want %d", len(jobs), want)
	}
	// Deterministic: a second expansion must be identical.
	again := m.Jobs()
	for i := range jobs {
		if jobs[i].Cell != again[i].Cell || jobs[i].P.Seed != again[i].P.Seed || jobs[i].Alg != again[i].Alg {
			t.Fatalf("expansion not deterministic at %d: %+v vs %+v", i, jobs[i], again[i])
		}
		if jobs[i].Index != i {
			t.Fatalf("job %d has Index %d", i, jobs[i].Index)
		}
	}
	// Replicates of one cell must be adjacent and share everything but seed.
	for i := 0; i < len(jobs); i += 3 {
		for k := 1; k < 3; k++ {
			a, b := jobs[i], jobs[i+k]
			if a.Cell != b.Cell || a.P.Orders != b.P.Orders || a.P.Seed == b.P.Seed {
				t.Fatalf("replicates misgrouped at %d: %+v vs %+v", i, a, b)
			}
		}
	}
	// Shared training: every job pins Train.Seed to the first seed.
	for _, j := range jobs {
		if j.P.Train.Seed != 1 {
			t.Fatalf("Train.Seed = %d, want 1", j.P.Train.Seed)
		}
	}
	m.RetrainPerSeed = true
	for _, j := range m.Jobs() {
		if j.P.Train.Seed != 0 {
			t.Fatalf("RetrainPerSeed must leave Train.Seed unset, got %d", j.P.Train.Seed)
		}
	}
}

func TestMatrixDefaultsToBase(t *testing.T) {
	base := tinyParams()
	m := Matrix{Base: base, Algs: []string{"GDP"}}
	jobs := m.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(jobs))
	}
	j := jobs[0]
	if j.P.Orders != base.Orders || j.P.Workers != base.Workers || j.P.Seed != base.Seed {
		t.Fatalf("base not propagated: %+v", j.P)
	}
}

// deterministicFields strips the wall-clock measurements (DecisionSeconds,
// Elapsed) that legitimately vary between runs.
func deterministicFields(m *sim.Metrics) string {
	c := *m
	c.DecisionSeconds = 0
	return fmt.Sprintf("%+v", c)
}

// TestSweepParallelMatchesSequential is the engine's core guarantee: the
// same matrix produces bit-identical per-seed metrics at any parallelism.
func TestSweepParallelMatchesSequential(t *testing.T) {
	m := Matrix{
		Base:   tinyParams(),
		Algs:   []string{"GDP", "GAS", "WATTER-online", "WATTER-timeout"},
		Orders: []int{120},
		Seeds:  []int64{1, 2},
	}
	seq, err := (&SweepRunner{Runner: NewRunner(), Parallel: 1}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&SweepRunner{Runner: NewRunner(), Parallel: 8}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Results) != len(par.Results) || len(seq.Results) != len(m.Jobs()) {
		t.Fatalf("result counts differ: %d vs %d", len(seq.Results), len(par.Results))
	}
	for i := range seq.Results {
		a, b := deterministicFields(seq.Results[i].Metrics), deterministicFields(par.Results[i].Metrics)
		if a != b {
			t.Fatalf("job %d (%s seed %d) diverged:\nseq: %s\npar: %s",
				i, seq.Jobs[i].Cell, seq.Jobs[i].P.Seed, a, b)
		}
	}
	// Aggregates follow: identical per-seed metrics give identical cells.
	if len(seq.Cells) != len(par.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(seq.Cells), len(par.Cells))
	}
	for i := range seq.Cells {
		if seq.Cells[i].ExtraTime != par.Cells[i].ExtraTime ||
			seq.Cells[i].ServiceRate != par.Cells[i].ServiceRate ||
			seq.Cells[i].UnifiedCost != par.Cells[i].UnifiedCost {
			t.Fatalf("cell %s aggregates diverged", seq.Cells[i].Cell)
		}
	}
}

// TestSweepRepeatable: two runs of the same engine configuration agree —
// catches residual map-iteration nondeterminism anywhere under sim.Run.
func TestSweepRepeatable(t *testing.T) {
	m := Matrix{
		Base:  tinyParams(),
		Algs:  []string{"GDP", "WATTER-timeout"},
		Seeds: []int64{5},
	}
	a, err := NewSweepRunner(nil).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSweepRunner(nil).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if deterministicFields(a.Results[i].Metrics) != deterministicFields(b.Results[i].Metrics) {
			t.Fatalf("run-to-run divergence on job %d (%s)", i, a.Jobs[i].Cell)
		}
	}
}

// TestSweepSharesTraining: replicate seeds of a WATTER-expect cell must
// train exactly one model (singleflight under concurrency).
func TestSweepSharesTraining(t *testing.T) {
	r := NewRunner()
	m := Matrix{
		Base:  tinyParams(),
		Algs:  []string{"WATTER-expect"},
		Seeds: []int64{1, 2, 3, 4},
	}
	if _, err := (&SweepRunner{Runner: r, Parallel: 4}).Run(m); err != nil {
		t.Fatal(err)
	}
	if n := r.ModelCount(); n != 1 {
		t.Fatalf("trained %d models for one cell, want 1", n)
	}
	// Per-seed retraining still available when asked for.
	r2 := NewRunner()
	m.RetrainPerSeed = true
	if _, err := (&SweepRunner{Runner: r2, Parallel: 4}).Run(m); err != nil {
		t.Fatal(err)
	}
	if n := r2.ModelCount(); n != 4 {
		t.Fatalf("RetrainPerSeed trained %d models, want 4", n)
	}
}

func TestSweepErrorPropagates(t *testing.T) {
	m := Matrix{Base: tinyParams(), Algs: []string{"GDP", "no-such-alg"}, Seeds: []int64{1, 2}}
	for _, parallel := range []int{1, 4} {
		_, err := (&SweepRunner{Runner: NewRunner(), Parallel: parallel}).Run(m)
		if err == nil || !strings.Contains(err.Error(), "no-such-alg") {
			t.Fatalf("parallel=%d: err = %v, want unknown-algorithm error", parallel, err)
		}
	}
}

func TestRunFigureMatchesRunSweep(t *testing.T) {
	base := tinyParams()
	s := Sweep{
		ID: "mini", Label: "tau",
		Points: []float64{1.4, 1.8},
		Apply: func(p Params, x float64) Params {
			p.TauScale = x
			return p
		},
		Algs: []string{"WATTER-online", "GDP"},
	}
	seq, err := NewRunner().RunSweep(s, base)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&SweepRunner{Runner: NewRunner(), Parallel: 4}).RunFigure(s, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Alg != par[i].Alg || seq[i].X != par[i].X {
			t.Fatalf("ordering diverged at %d: %s/%v vs %s/%v", i, seq[i].Alg, seq[i].X, par[i].Alg, par[i].X)
		}
		if deterministicFields(seq[i].Metrics) != deterministicFields(par[i].Metrics) {
			t.Fatalf("metrics diverged at %d (%s x=%v)", i, seq[i].Alg, seq[i].X)
		}
	}
}

func TestReplicateSeeds(t *testing.T) {
	got := ReplicateSeeds(7, 3)
	if len(got) != 3 || got[0] != 7 || got[2] != 9 {
		t.Fatalf("ReplicateSeeds = %v", got)
	}
	if got := ReplicateSeeds(1, 0); len(got) != 1 {
		t.Fatalf("n<1 must clamp to one seed, got %v", got)
	}
}

func TestPrintCells(t *testing.T) {
	m := Matrix{Base: tinyParams(), Algs: []string{"GDP"}, Seeds: []int64{1, 2}}
	res, err := NewSweepRunner(nil).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(res.Cells))
	}
	c := res.Cells[0]
	if c.ExtraTime.N != 2 || len(c.Seeds) != 2 {
		t.Fatalf("cell did not aggregate both seeds: %+v", c)
	}
	var buf bytes.Buffer
	PrintCells(&buf, res.Cells)
	out := buf.String()
	for _, needle := range []string{"GDP", "XIA", "service_rate"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("report missing %q:\n%s", needle, out)
		}
	}
}
