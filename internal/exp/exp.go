// Package exp is the experiment harness: it builds algorithms (including
// the trained WATTER-expect pipeline), runs parameter sweeps for every
// figure of the paper's evaluation (Figures 3-6 plus the appendix
// parameters), and prints the resulting tables.
package exp

import (
	"fmt"
	"io"
	"sync"
	"time"

	"watter/internal/baseline"
	"watter/internal/core"
	"watter/internal/dataset"
	"watter/internal/gmm"
	"watter/internal/gridindex"
	"watter/internal/load"
	"watter/internal/mdp"
	"watter/internal/nn"
	"watter/internal/order"
	"watter/internal/platform"
	"watter/internal/pool"
	"watter/internal/sim"
	"watter/internal/strategy"
)

// Params is one experiment configuration point.
type Params struct {
	City      dataset.Profile
	Orders    int     // n
	Workers   int     // m
	TauScale  float64 // deadline scale
	Eta       float64 // watching window scale
	MaxCap    int     // Kw
	GridN     int     // spatial index side
	TickEvery float64 // Δt
	// Shards is the dispatch engine's slot-shard count (0 and 1 both mean
	// the sequential check). Sharding parallelizes within one simulation
	// without changing any decision, so results are bit-identical at any
	// value; baselines without a shardable check ignore it.
	Shards int
	// Arrival, when its Process is set, replaces the dataset's rush-hour
	// arrival times with an open-loop arrival process schedule
	// (load.ArrivalSpec: Poisson, surge or Pareto at a configured rate) —
	// the load harness's process abstraction doubling as a sweep axis, so
	// "how does each algorithm hold up under a surge" is an ordinary
	// experiment cell. Deadlines follow the re-timed releases through
	// load.Retime; everything stays deterministic under the spec's seed.
	Arrival load.ArrivalSpec
	// NumCities runs the cell as a multi-city front tier: N instances of
	// City (seed-derived independent workloads and fleets) behind one
	// dispatch proxy, metrics aggregated across cities. 0 and 1 both mean
	// a single standalone platform. City 0 always replays the single-city
	// cell's exact workload, so cities=1 rows and plain rows agree.
	NumCities int
	Seed      int64
	// Train tunes the offline pipeline for WATTER-expect.
	Train TrainParams
}

// TrainParams sizes the offline stage (historical simulation + learning).
type TrainParams struct {
	HistoricalOrders int
	TrainSteps       int
	GMMComponents    int
	Omega            float64
	Hidden           []int
	// Seed pins the offline pipeline's random seed independently of the
	// evaluation seed. Zero means "follow Params.Seed" (every evaluation
	// seed trains its own model); the sweep engine sets it so replicate
	// runs share one trained model instead of retraining per seed.
	Seed int64
}

// trainSeed returns the seed driving the offline pipeline.
func trainSeed(p Params) int64 {
	if p.Train.Seed != 0 {
		return p.Train.Seed
	}
	return p.Seed
}

// DefaultParams returns the scaled-down defaults used by the benchmark
// harness. The paper's defaults are 100 K orders (NYC) / 50 K (CDC, XIA)
// against 5 K workers over a day; we keep comparable fleet-pressure over a
// compressed 2 h peak window at roughly 1/25 scale. Full scale is reachable
// by raising Orders/Workers proportionally.
func DefaultParams(city dataset.Profile) Params {
	orders, workers := 2000, 170
	if city.Name == "NYC" {
		orders, workers = 3000, 220
	}
	return Params{
		City: city, Orders: orders, Workers: workers, TauScale: 1.6, Eta: 0.8,
		MaxCap: 4, GridN: 10, TickEvery: 10, Seed: 1,
		Train: TrainParams{
			HistoricalOrders: 1500, TrainSteps: 1200, GMMComponents: 3,
			Omega: 0.5, Hidden: []int{64, 32},
		},
	}
}

// Result is one (algorithm, configuration) measurement.
type Result struct {
	Alg    string
	Params Params
	// X is the sweep's varied-parameter value for this cell.
	X       float64
	Metrics *sim.Metrics
	Elapsed time.Duration
}

// AlgNames lists the five compared algorithms in the paper's order.
var AlgNames = []string{"GDP", "GAS", "WATTER-expect", "WATTER-online", "WATTER-timeout"}

// Runner caches trained models per (city, train-config) so sweeps don't
// retrain for every point, and built cities per profile so concurrent runs
// share one road network (and, for Graph-backed networks, one distance
// cache). Runner is safe for concurrent use by the sweep engine: training
// is deduplicated per model key, so N workers needing the same model block
// on a single training pass.
type Runner struct {
	mu     sync.Mutex
	models map[string]*trainedEntry
	cities map[string]*dataset.City
	// Out receives progress lines; nil silences them.
	Out   io.Writer
	outMu sync.Mutex
}

// trainedEntry memoizes one offline training run (singleflight per key).
type trainedEntry struct {
	once sync.Once
	m    *Trained
}

// NewRunner returns an empty runner.
func NewRunner() *Runner {
	return &Runner{
		models: make(map[string]*trainedEntry),
		cities: make(map[string]*dataset.City),
	}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Out != nil {
		r.outMu.Lock()
		fmt.Fprintf(r.Out, format, args...)
		r.outMu.Unlock()
	}
}

// city returns the shared built city for a profile. Cities are stateless
// after construction (the workload RNG lives in the caller), so one
// instance can serve many concurrent runs.
func (r *Runner) city(p dataset.Profile) *dataset.City {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.cities[p.Name]; ok {
		return c
	}
	c := p.Build()
	r.cities[p.Name] = c
	return c
}

// Trained bundles the offline artifacts behind WATTER-expect. Net is the
// value network used online; Trainer is non-nil only for freshly trained
// models (bundles loaded from disk have no training state).
type Trained struct {
	Feat    *mdp.Featurizer
	Net     *nn.MLP
	Trainer *mdp.Trainer
	GMM     *gmm.Model
	Theta   *gmm.ThresholdSource
}

// Workload materializes the orders and workers for a configuration.
func Workload(p Params) (*dataset.City, []*order.Order, []*order.Worker) {
	return workloadIn(p.City.Build(), p)
}

// workload is Workload over the runner's shared city instance.
func (r *Runner) workload(p Params) (*dataset.City, []*order.Order, []*order.Worker) {
	return workloadIn(r.city(p.City), p)
}

func workloadIn(city *dataset.City, p Params) (*dataset.City, []*order.Order, []*order.Worker) {
	orders := city.Orders(dataset.WorkloadConfig{
		Orders: p.Orders, Seed: p.Seed, TauScale: p.TauScale, Eta: p.Eta,
	})
	if p.Arrival.Process != "" {
		// Open-loop arrival axis: keep the city's endpoint sampling, swap
		// the release schedule for the configured process over the default
		// workload window. Times returns at most as many arrivals as fit
		// the horizon; Retime drops whichever side is longer.
		wcfg := dataset.WorkloadConfig{}.Defaults()
		times, err := p.Arrival.Times(wcfg.HorizonSeconds)
		if err != nil {
			panic(fmt.Sprintf("exp: invalid arrival spec: %v", err))
		}
		orders = load.Retime(orders, times, p.TauScale)
	}
	workers := city.Workers(p.Workers, p.MaxCap, p.Seed+1000)
	return city, orders, workers
}

// simConfig maps experiment parameters onto validated platform config.
func simConfig(p Params) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.GridN = p.GridN
	cfg.Capacity = p.MaxCap
	return cfg
}

// newPlatform stands a service instance up for one configuration cell —
// the harness is a client of the same streaming API live feeds use.
func newPlatform(city *dataset.City, workers []*order.Worker, alg sim.Algorithm, p Params, measure bool) (*platform.Platform, error) {
	return platform.New(city.Net, workers,
		platform.WithConfig(simConfig(p)),
		platform.WithTick(p.TickEvery),
		platform.WithMeasuredTime(measure),
		platform.WithAlgorithm(alg),
	)
}

func poolOptions(p Params) pool.Options {
	opt := pool.DefaultOptions()
	opt.Capacity = p.MaxCap
	opt.MaxGroupSize = p.MaxCap
	return opt
}

// Train runs the offline stage for WATTER-expect on a *historical* workload
// (a different seed/day than evaluation): simulate the pooling framework
// under the timeout behavior policy, record served extra times for the GMM
// fit, collect MDP experience, then optimize the value network with the
// blended TD + target loss.
func (r *Runner) Train(p Params) *Trained {
	key := modelKey(p)
	r.mu.Lock()
	e, ok := r.models[key]
	if !ok {
		e = &trainedEntry{}
		r.models[key] = e
	}
	r.mu.Unlock()
	// Singleflight: concurrent callers needing the same model block here
	// while exactly one of them trains it.
	e.once.Do(func() { e.m = r.train(p) })
	return e.m
}

func (r *Runner) train(p Params) *Trained {
	start := time.Now() //det:wallclock training wall-time for the progress log line; never feeds model or simulation state
	seed := trainSeed(p)
	city := r.city(p.City)
	hist := city.Orders(dataset.WorkloadConfig{
		Orders: p.Train.HistoricalOrders, Seed: seed + 77, TauScale: p.TauScale, Eta: p.Eta,
	})
	workers := city.Workers(p.Workers, p.MaxCap, seed+1077)

	// Pass 1: behavior run to harvest extra times for the GMM.
	var extraTimes []float64
	fw := core.New(strategy.Timeout{Tick: p.TickEvery}, poolOptions(p))
	plat, err := newPlatform(city, workers, fw, p, false)
	if err != nil {
		panic(fmt.Errorf("exp: invalid training configuration: %w", err))
	}
	feat := mdp.NewFeaturizer(plat.Env().Index, horizonOf(hist))
	feat.SlotSeconds = p.TickEvery
	plat.Env().SetObservers(func(g *order.Group, now float64) {
		// Harvest in g.Orders order (not map order): the GMM fit folds
		// samples in sequence, so collection order must be deterministic
		// for the offline pipeline to be reproducible per seed (§8).
		for _, o := range g.Orders {
			st, ok := g.Plan.ServiceTime(o.ID)
			if !ok {
				continue
			}
			extraTimes = append(extraTimes, o.ExtraTime(st, now, 1, 1))
		}
	}, nil)
	if _, err := plat.Replay(hist); err != nil {
		panic(fmt.Errorf("exp: behavior simulation failed: %w", err))
	}

	// Fit the extra-time mixture and derive θ*.
	var model *gmm.Model
	if len(extraTimes) >= 10 {
		fitted, err := gmm.Fit(extraTimes, gmm.FitOptions{
			K: p.Train.GMMComponents, MaxIters: 200, Tol: 1e-6, Seed: seed, MinStdDev: 1,
		})
		if err == nil {
			model = fitted
		}
	}
	if model == nil {
		model = &gmm.Model{Components: []gmm.Component{{Weight: 1, Mean: 120, StdDev: 60}}}
	}
	theta := gmm.NewThresholdSource(model)

	// Pass 2: collect MDP experience under the GMM-threshold policy.
	tcfg := mdp.DefaultTrainerConfig()
	tcfg.Omega = p.Train.Omega
	tcfg.Hidden = p.Train.Hidden
	tcfg.Seed = seed
	trainer := mdp.NewTrainer(feat.Dim(), tcfg)
	fw2 := core.New(&strategy.Threshold{Source: theta, Alpha: 1, Beta: 1}, poolOptions(p))
	fw2.Tick = p.TickEvery
	col := mdp.NewCollector(fw2, feat, theta, trainer.Add)
	plat2, err := newPlatform(city, city.Workers(p.Workers, p.MaxCap, seed+1077), col, p, false)
	if err != nil {
		panic(fmt.Errorf("exp: invalid training configuration: %w", err))
	}
	if _, err := plat2.Replay(hist); err != nil {
		panic(fmt.Errorf("exp: experience collection failed: %w", err))
	}

	loss := trainer.Train(p.Train.TrainSteps)
	elapsed := time.Since(start).Round(time.Millisecond) //det:wallclock elapsed goes to the progress log only
	r.logf("[train %s] samples=%d extra-times=%d loss=%.1f elapsed=%s\n",
		p.City.Name, trainer.ReplayLen(), len(extraTimes), loss, elapsed)

	return &Trained{Feat: feat, Net: trainer.Network(), Trainer: trainer, GMM: model, Theta: theta}
}

// modelKey identifies the offline-model cache entry for a configuration.
// Every parameter that changes the offline artifacts must appear here —
// the learning hyperparameters included, or ablation sweeps would silently
// reuse one model.
func modelKey(p Params) string {
	return fmt.Sprintf("%s/n%d/m%d/tau%.2f/eta%.2f/k%d/g%d/dt%.0f/h%d/s%d/K%d/w%.3f/hid%v",
		p.City.Name, p.Train.HistoricalOrders, p.Workers, p.TauScale, p.Eta,
		p.MaxCap, p.GridN, p.TickEvery, p.Train.TrainSteps, trainSeed(p),
		p.Train.GMMComponents, p.Train.Omega, p.Train.Hidden)
}

// UseModel pre-seeds the model cache so a later Build/RunOne of
// WATTER-expect at these parameters uses the given (typically
// disk-loaded) model instead of retraining.
func (r *Runner) UseModel(p Params, m *Trained) {
	e := &trainedEntry{m: m}
	e.once.Do(func() {}) // mark resolved
	r.mu.Lock()
	r.models[modelKey(p)] = e
	r.mu.Unlock()
}

// ModelCount reports how many offline models the runner has cached or is
// currently training (used by tests to verify training deduplication).
func (r *Runner) ModelCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.models)
}

// Build constructs a ready-to-run algorithm by name. WATTER-expect
// triggers (cached) offline training.
func (r *Runner) Build(name string, p Params) (sim.Algorithm, error) {
	switch name {
	case "GDP":
		return &baseline.GDP{}, nil
	case "GAS":
		return &baseline.GAS{BatchSeconds: 5}, nil
	case "WATTER-online":
		fw := core.New(strategy.Online{}, poolOptions(p))
		fw.Tick = p.TickEvery
		fw.SetShards(p.Shards)
		return fw, nil
	case "WATTER-timeout":
		fw := core.New(strategy.Timeout{Tick: p.TickEvery}, poolOptions(p))
		fw.Tick = p.TickEvery
		fw.SetShards(p.Shards)
		return fw, nil
	case "WATTER-expect":
		trained := r.Train(p)
		fw := core.New(nil, poolOptions(p))
		fw.Tick = p.TickEvery
		fw.SetShards(p.Shards)
		src := &mdp.ValueThresholdSource{
			Net:  trained.Net,
			Feat: trained.Feat,
			Demand: func() (gridindex.Distribution, gridindex.Distribution) {
				if fw.Pool() == nil {
					return nil, nil
				}
				return fw.Pool().DemandDistributions()
			},
		}
		fw.Decide = &strategy.Threshold{Source: src, Alpha: 1, Beta: 1}
		return &expectAlg{Framework: fw, src: src}, nil
	}
	return nil, fmt.Errorf("exp: unknown algorithm %q", name)
}

// expectAlg wires the supply-distribution closure once the env exists.
type expectAlg struct {
	*core.Framework
	src *mdp.ValueThresholdSource
}

// Init implements sim.Algorithm.
func (a *expectAlg) Init(env *sim.Env) {
	a.src.Supply = env.WIndex.SupplyDistribution
	a.Framework.Init(env)
}

// MustBuild is Build for algorithm names known at compile time; it panics
// on unknown names.
func MustBuild(name string, p Params) sim.Algorithm {
	alg, err := NewRunner().Build(name, p)
	if err != nil {
		panic(err)
	}
	return alg
}

// RunOne executes one (algorithm, params) cell and returns its result.
// The cell runs as a client of the streaming platform API; invalid
// parameters surface here as construction errors instead of silent
// defaults.
func (r *Runner) RunOne(name string, p Params) (*Result, error) {
	if p.NumCities > 1 {
		return r.runProxyCell(name, p)
	}
	alg, err := r.Build(name, p)
	if err != nil {
		return nil, err
	}
	city, orders, workers := r.workload(p)
	plat, err := newPlatform(city, workers, alg, p, true)
	if err != nil {
		return nil, err
	}
	start := time.Now() //det:wallclock cell wall-time for Result.Elapsed reporting; never feeds simulation state
	metrics, err := plat.Replay(orders)
	if err != nil {
		return nil, err
	}
	//det:wallclock Result.Elapsed is an observability field, outside per-seed metrics
	res := &Result{Alg: name, Params: p, Metrics: metrics, Elapsed: time.Since(start)}
	r.logf("[%s %s] n=%d m=%d tau=%.1f: %s\n", p.City.Name, name, p.Orders, p.Workers, p.TauScale, metrics)
	return res, nil
}

func horizonOf(orders []*order.Order) float64 {
	var h float64
	for _, o := range orders {
		if o.Release > h {
			h = o.Release
		}
	}
	if h == 0 {
		h = 1
	}
	return h
}
