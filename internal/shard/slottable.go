// Package shard implements the slot-sharded dispatch engine: the layer
// that lets a single simulated city use every core of the machine without
// changing a single dispatch decision.
//
// The partitioning recipe is Codis's, translated from keyspace to space:
// the spatial grid's cells are the slots, a SlotTable assigns every slot to
// one of K shards, and slots migrate between shards ("handoff") at epoch
// barriers when load drifts. Each shard speculatively executes the
// expensive, read-only part of the periodic check for the orders whose
// pickup slot it owns — worker-probe ring searches and singleton route
// plans — on its own goroutine against a tick-start snapshot. The
// coordinator (the simulation goroutine itself) then commits decisions in
// exactly the K=1 order, consuming a speculation only while it provably
// still matches what a fresh computation would return; anything a dispatch
// may have perturbed — the cross-shard cases, where a probe's worker ring
// crossed into cells another order's dispatch touched — is recomputed on
// the spot. The result is bit-identical to the unsharded run by
// construction, and the equivalence tests pin it.
package shard

import (
	"fmt"
)

// SlotTable maps grid cells (slots) to shards. The initial assignment is K
// contiguous row-major bands of near-equal slot count; Reassign and
// Rebalance migrate individual slots afterwards, bumping the table's epoch.
// A slot is a border slot when some slot within the shareability candidate
// radius belongs to a different shard — orders there can pool with orders
// owned by a neighboring shard, which is why border work is the
// coordinator's, not a shard's.
type SlotTable struct {
	n      int // grid side: slots are the n*n cells of the spatial index
	k      int // shard count (clamped to the slot count)
	radius int // border radius, in Chebyshev cell distance
	owner  []int32
	border []bool
	epoch  uint64
}

// NewSlotTable builds a table over an n-by-n grid split into k shards.
// k is clamped to [1, n*n]; radius must be non-negative (the pool's
// candidate prefilter radius; 0 means only the cell itself).
func NewSlotTable(n, k, radius int) (*SlotTable, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: grid side must be >= 1, got %d", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("shard: shard count must be >= 1, got %d", k)
	}
	if radius < 0 {
		return nil, fmt.Errorf("shard: border radius must be >= 0, got %d", radius)
	}
	slots := n * n
	if k > slots {
		k = slots
	}
	t := &SlotTable{
		n:      n,
		k:      k,
		radius: radius,
		owner:  make([]int32, slots),
		border: make([]bool, slots),
	}
	for s := range t.owner {
		// Contiguous row-major bands: shard i owns [i*slots/k, (i+1)*slots/k).
		t.owner[s] = int32(s * k / slots)
	}
	t.recomputeBorders()
	return t, nil
}

// N returns the grid side.
func (t *SlotTable) N() int { return t.n }

// K returns the shard count.
func (t *SlotTable) K() int { return t.k }

// NumSlots returns n*n.
func (t *SlotTable) NumSlots() int { return len(t.owner) }

// Epoch returns the table's migration epoch: it advances on every Reassign
// or effective Rebalance, and shard-local state derived from the table is
// valid only within one epoch.
func (t *SlotTable) Epoch() uint64 { return t.epoch }

// ShardOf returns the shard owning the slot.
func (t *SlotTable) ShardOf(slot int) int { return int(t.owner[slot]) }

// IsBorder reports whether any slot within the candidate radius of slot is
// owned by a different shard. Border is symmetric by construction: if b
// lies within the radius of a and their owners differ, both are border
// slots (Chebyshev distance is symmetric).
func (t *SlotTable) IsBorder(slot int) bool { return t.border[slot] }

// SlotsOf returns the slots owned by the shard, ascending.
func (t *SlotTable) SlotsOf(shard int) []int {
	var out []int
	for s, o := range t.owner {
		if int(o) == shard {
			out = append(out, s)
		}
	}
	return out
}

// Reassign hands one slot to a new shard and bumps the epoch. The caller
// must quiesce shard-local state first (the engine does this at tick
// barriers).
func (t *SlotTable) Reassign(slot, shard int) error {
	if slot < 0 || slot >= len(t.owner) {
		return fmt.Errorf("shard: slot %d out of range [0,%d)", slot, len(t.owner))
	}
	if shard < 0 || shard >= t.k {
		return fmt.Errorf("shard: shard %d out of range [0,%d)", shard, t.k)
	}
	if int(t.owner[slot]) == shard {
		return nil
	}
	t.owner[slot] = int32(shard)
	t.recomputeBorders()
	t.epoch++
	return nil
}

// Rebalance migrates slots from the most- to the least-loaded shard until
// the heaviest shard carries at most twice the lightest shard's load plus
// one slot's worth, or the move budget (one band's worth of slots) runs
// out. slotLoad[s] is the work currently attributed to slot s (the engine
// passes pooled-order counts). Handoff prefers the lowest-indexed loaded
// border slot of the heavy shard so bands stay roughly contiguous. Returns
// the number of slots handed off. Deterministic: a pure function of the
// table and slotLoad.
func (t *SlotTable) Rebalance(slotLoad []int) int {
	if t.k < 2 || len(slotLoad) != len(t.owner) {
		return 0
	}
	moved := 0
	budget := len(t.owner)/t.k + 1
	for moved < budget {
		load := make([]int, t.k)
		for s, o := range t.owner {
			load[o] += slotLoad[s]
		}
		hi, lo := 0, 0
		for sh := 1; sh < t.k; sh++ {
			if load[sh] > load[hi] {
				hi = sh
			}
			if load[sh] < load[lo] {
				lo = sh
			}
		}
		if load[hi] <= 2*load[lo]+1 {
			break
		}
		// Lowest-indexed loaded slot of the heavy shard, preferring border
		// slots (they already touch foreign territory, so moving them
		// keeps the bands contiguous).
		pick := -1
		for s, o := range t.owner {
			if int(o) != hi || slotLoad[s] == 0 {
				continue
			}
			if t.border[s] {
				pick = s
				break
			}
			if pick < 0 {
				pick = s
			}
		}
		if pick < 0 {
			break
		}
		// Never move more load than would invert the imbalance.
		if slotLoad[pick] >= load[hi]-load[lo] {
			break
		}
		t.owner[pick] = int32(lo)
		moved++
	}
	if moved > 0 {
		t.recomputeBorders()
		t.epoch++
	}
	return moved
}

// Partition splits items by their cell's owning shard: given cells[i] (the
// slot item i currently occupies), it returns per-shard lists of item
// indices, ascending. The engine partitions pooled orders this way for the
// speculation fan-out and workers for load accounting; the handoff
// property test asserts the union is always the full multiset — migrating
// a slot moves its occupants between shards but never duplicates or drops
// one.
func (t *SlotTable) Partition(cells []int) [][]int {
	out := make([][]int, t.k)
	for i, c := range cells {
		sh := t.ShardOf(c)
		out[sh] = append(out[sh], i)
	}
	return out
}

// recomputeBorders refreshes the border flags after an ownership change.
func (t *SlotTable) recomputeBorders() {
	r := t.radius
	for s := range t.border {
		t.border[s] = false
		sx, sy := s%t.n, s/t.n
		own := t.owner[s]
	scan:
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				x, y := sx+dx, sy+dy
				if x < 0 || y < 0 || x >= t.n || y >= t.n {
					continue
				}
				if t.owner[y*t.n+x] != own {
					t.border[s] = true
					break scan
				}
			}
		}
	}
}
