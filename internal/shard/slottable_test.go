package shard

import (
	"math/rand"
	"testing"
)

// TestSlotTableCoversEverySlotOnce: every slot is owned by exactly one
// in-range shard, and the per-shard slot lists partition the slot set —
// for fresh tables and after arbitrary migration histories.
func TestSlotTableCoversEverySlotOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		k := 1 + rng.Intn(8)
		radius := rng.Intn(3)
		tab, err := NewSlotTable(n, k, radius)
		if err != nil {
			t.Fatal(err)
		}
		for mig := 0; mig < rng.Intn(10); mig++ {
			if err := tab.Reassign(rng.Intn(tab.NumSlots()), rng.Intn(tab.K())); err != nil {
				t.Fatal(err)
			}
		}
		seen := make([]int, tab.NumSlots())
		total := 0
		for sh := 0; sh < tab.K(); sh++ {
			for _, s := range tab.SlotsOf(sh) {
				if tab.ShardOf(s) != sh {
					t.Fatalf("n=%d k=%d: SlotsOf(%d) lists slot %d owned by %d", n, k, sh, s, tab.ShardOf(s))
				}
				seen[s]++
				total++
			}
		}
		if total != tab.NumSlots() {
			t.Fatalf("n=%d k=%d: shard lists cover %d slots, want %d", n, k, total, tab.NumSlots())
		}
		for s, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d k=%d: slot %d owned %d times", n, k, s, c)
			}
		}
	}
}

// TestSlotTableBorderSymmetric: whenever two slots within the candidate
// radius have different owners, both are border slots; and a non-border
// slot's whole radius neighborhood shares its owner.
func TestSlotTableBorderSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		k := 1 + rng.Intn(6)
		radius := rng.Intn(3)
		tab, err := NewSlotTable(n, k, radius)
		if err != nil {
			t.Fatal(err)
		}
		for mig := 0; mig < rng.Intn(8); mig++ {
			_ = tab.Reassign(rng.Intn(tab.NumSlots()), rng.Intn(tab.K()))
		}
		cheb := func(a, b int) int {
			ax, ay := a%n, a/n
			bx, by := b%n, b/n
			dx, dy := ax-bx, ay-by
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			if dx > dy {
				return dx
			}
			return dy
		}
		for a := 0; a < tab.NumSlots(); a++ {
			for b := 0; b < tab.NumSlots(); b++ {
				if cheb(a, b) > radius {
					continue
				}
				if tab.ShardOf(a) != tab.ShardOf(b) {
					if !tab.IsBorder(a) || !tab.IsBorder(b) {
						t.Fatalf("n=%d k=%d r=%d: foreign pair (%d,%d) not mutually border", n, k, radius, a, b)
					}
				} else if !tab.IsBorder(a) && tab.IsBorder(b) && cheb(a, b) == 0 {
					t.Fatalf("slot %d disagrees with itself", a)
				}
			}
		}
		for s := 0; s < tab.NumSlots(); s++ {
			if tab.IsBorder(s) {
				continue
			}
			for b := 0; b < tab.NumSlots(); b++ {
				if cheb(s, b) <= radius && tab.ShardOf(b) != tab.ShardOf(s) {
					t.Fatalf("n=%d k=%d r=%d: non-border slot %d has foreign neighbor %d", n, k, radius, s, b)
				}
			}
		}
	}
}

// TestSlotHandoffPreservesWorkerMultiset: migrating slots between shards —
// whether one Reassign at a time or a whole Rebalance — moves the workers
// filed under those slots between shards without ever duplicating or
// dropping one: the per-shard partitions always union to the exact worker
// multiset.
func TestSlotHandoffPreservesWorkerMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(8)
		k := 2 + rng.Intn(5)
		tab, err := NewSlotTable(n, k, 1+rng.Intn(2))
		if err != nil {
			t.Fatal(err)
		}
		workers := 1 + rng.Intn(60)
		cells := make([]int, workers)
		for i := range cells {
			cells[i] = rng.Intn(tab.NumSlots())
		}
		check := func(when string) {
			seen := make([]int, workers)
			for sh, part := range tab.Partition(cells) {
				if sh >= tab.K() {
					t.Fatalf("%s: shard %d out of range", when, sh)
				}
				for _, i := range part {
					seen[i]++
				}
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("%s: worker %d appears %d times after handoff", when, i, c)
				}
			}
		}
		check("fresh")
		epoch := tab.Epoch()
		for mig := 0; mig < 5; mig++ {
			if err := tab.Reassign(rng.Intn(tab.NumSlots()), rng.Intn(tab.K())); err != nil {
				t.Fatal(err)
			}
			check("after reassign")
		}
		load := make([]int, tab.NumSlots())
		for _, c := range cells {
			load[c]++
		}
		moved := tab.Rebalance(load)
		check("after rebalance")
		if moved > 0 && tab.Epoch() == epoch {
			t.Fatal("rebalance moved slots without advancing the epoch")
		}
	}
}

// TestSlotTableRebalanceReducesImbalance: a table with all load on one
// shard hands slots off deterministically and ends less imbalanced.
func TestSlotTableRebalanceReducesImbalance(t *testing.T) {
	tab, err := NewSlotTable(6, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	load := make([]int, tab.NumSlots())
	for _, s := range tab.SlotsOf(0) {
		load[s] = 5
	}
	imbalance := func() (hi, lo int) {
		per := make([]int, tab.K())
		for s, l := range load {
			per[tab.ShardOf(s)] += l
		}
		hi, lo = per[0], per[0]
		for _, v := range per[1:] {
			if v > hi {
				hi = v
			}
			if v < lo {
				lo = v
			}
		}
		return
	}
	hi0, _ := imbalance()
	moved := tab.Rebalance(load)
	if moved == 0 {
		t.Fatal("fully skewed load triggered no handoff")
	}
	hi1, lo1 := imbalance()
	if hi1 >= hi0 {
		t.Fatalf("rebalance did not shrink the heaviest shard: %d -> %d", hi0, hi1)
	}
	if hi1 > 2*lo1+1+5 {
		// One slot of slack: the mover stops when within the 2x band or a
		// single slot's load straddles the threshold.
		t.Fatalf("still badly imbalanced after rebalance: hi=%d lo=%d", hi1, lo1)
	}
	// Determinism: the same inputs migrate the same slots.
	tab2, _ := NewSlotTable(6, 3, 1)
	load2 := make([]int, tab2.NumSlots())
	for _, s := range tab2.SlotsOf(0) {
		load2[s] = 5
	}
	tab2.Rebalance(load2)
	for s := 0; s < tab.NumSlots(); s++ {
		if tab.ShardOf(s) != tab2.ShardOf(s) {
			t.Fatalf("rebalance is nondeterministic at slot %d", s)
		}
	}
}

func TestNewSlotTableValidation(t *testing.T) {
	if _, err := NewSlotTable(0, 1, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewSlotTable(4, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewSlotTable(4, 1, -1); err == nil {
		t.Fatal("negative radius accepted")
	}
	tab, err := NewSlotTable(2, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tab.K() != 4 {
		t.Fatalf("k not clamped to slot count: %d", tab.K())
	}
	if err := tab.Reassign(-1, 0); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if err := tab.Reassign(0, 99); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}
