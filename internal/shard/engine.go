package shard

import (
	"fmt"
	"sync"

	"watter/internal/gridindex"
	"watter/internal/order"
	"watter/internal/route"
)

// PoolView is the read-only slice of the shareability graph the speculation
// phase consumes. Reads run concurrently across shards, so implementations
// must tolerate concurrent calls while the pool is quiescent (the
// coordinator guarantees no pool mutation overlaps a speculation phase).
type PoolView interface {
	// Order returns the pooled order by ID (nil if absent).
	Order(id int) *order.Order
	// BestGroup returns the order's current best shared group and its
	// expiry τg; ok is false when none exists.
	BestGroup(id int) (*order.Group, float64, bool)
	// BestGroupVersion returns the order's best-group semantic version:
	// it changes exactly when the best group's member set or expiry does,
	// and stays put across refreshes that rebuild an identical group. The
	// engine keys group speculations on it, because a probe's answer
	// depends only on the group's semantics, never its pointer.
	BestGroupVersion(id int) uint64
}

// Stats counts the engine's speculation traffic over one run.
type Stats struct {
	// Ticks is the number of speculation phases run; SpecOrders the total
	// per-order speculations computed across them.
	Ticks, SpecOrders uint64
	// GroupHits/SoloHits consumed a valid speculative probe at commit;
	// GroupInvalid/SoloInvalid were discarded because a dispatch this tick
	// booked a worker the probe had considered as an in-budget candidate
	// (the cross-shard conflict case — recomputed fresh by the
	// coordinator); GroupMiss/SoloMiss found no usable speculation (e.g.
	// the best group semantically changed mid-tick).
	GroupHits, GroupInvalid, GroupMiss uint64
	SoloHits, SoloInvalid, SoloMiss    uint64
	// PlanHits consumed the cached singleton plan at commit.
	PlanHits uint64
	// PrewarmTasks counts pairwise shareability plans computed on shard
	// goroutines at insert time.
	PrewarmTasks uint64
	// SlotHandoffs counts slots migrated between shards by the epoch-
	// barrier rebalancer.
	SlotHandoffs uint64
}

// spec is one order's speculative tick work: the best-group worker probe,
// the singleton plan, and the solo worker probe, each carried with the
// dependency footprint (the candidate workers the probe costed in budget)
// that decides its validity at commit.
//
//det:scratch per-order speculation slot, written only by the owning shard within one tick
type spec struct {
	epoch uint64

	gProbed   bool
	gVer      uint64
	gw        *order.Worker
	gApproach float64
	gCands    []int32

	planKnown    bool
	soloPlan     *order.RoutePlan
	soloFeasible bool

	sProbed   bool
	sBudget   float64
	sw        *order.Worker
	sApproach float64
	sCands    []int32
}

// soloEntry memoizes one order's singleton route across ticks. The
// singleton DP is now-independent except for the final deadline check
// (now + cost > deadline), so the plan is computed once and feasibility is
// re-derived each tick with exactly the DP's comparison; a nil plan is
// permanently infeasible (rider count over capacity, or the deadline was
// already unreachable — and the feasible set only shrinks as now grows).
//
//det:scratch singleton memo entry, owned by one shard's soloMemo arena
type soloEntry struct {
	plan *order.RoutePlan
}

// soloMemo is one shard's singleton-plan memo. Each shard goroutine owns
// exactly one — written only during its own speculation slice and pruned
// between ticks by the coordinator — so memo writes are speculation-local.
//
//det:scratch per-shard memo map, single-writer by the slot partition
type soloMemo map[int]*soloEntry

// Engine is the slot-sharded dispatch engine. Phase A (BeginTick) fans the
// periodic check's expensive read-only work out over K shard goroutines —
// each shard speculates for the orders whose pickup slot it owns — while
// phase B (the caller's own sequential commit loop) consumes speculations
// through GroupProbe/SoloPlan/SoloProbe, falling back to fresh computation
// whenever a dispatch invalidated one. Dispatch commits report the worker
// they book through the worker index's move observer; a speculation is
// valid exactly while none of the candidate workers its probe costed in
// budget were booked — bookings only remove candidates (a dispatch never
// makes a worker idle within a tick), so an answer whose considered
// candidates all survived is the answer a fresh search would return.
//
// The engine is owned by one framework instance and is not safe for
// concurrent use by multiple simulation goroutines.
type Engine struct {
	table    *SlotTable
	ix       *gridindex.Index
	wi       *gridindex.WorkerIndex
	planner  *route.Planner
	capacity int

	readers []*gridindex.ProbeReader
	solo    []soloMemo // per-shard singleton plan memos

	// Per-tick state.
	view    PoolView
	now     float64
	anyIdle bool
	ids     []int
	idx     map[int]int
	specs   []spec

	// workerEpoch[id] == tickEpoch marks worker id as booked by a dispatch
	// this tick; stale stamps from earlier ticks are ignored for free.
	// Indexed by worker ID, grown on demand.
	tickEpoch   uint64
	workerEpoch []uint64

	slotLoad []int
	stats    Stats
}

// NewEngine builds a K-shard engine over the simulation's spatial index,
// worker index and planner. radius is the pool's candidate prefilter
// radius (border slots are those within radius of a foreign slot); pass
// the grid side when the prefilter is disabled. The engine installs itself
// as the worker index's move observer.
func NewEngine(k int, ix *gridindex.Index, wi *gridindex.WorkerIndex, planner *route.Planner, capacity, radius int) (*Engine, error) {
	if k < 1 {
		return nil, fmt.Errorf("shard: engine needs at least 1 shard, got %d", k)
	}
	table, err := NewSlotTable(ix.N(), k, radius)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		table:    table,
		ix:       ix,
		wi:       wi,
		planner:  planner,
		capacity: capacity,
		readers:  make([]*gridindex.ProbeReader, table.K()),
		solo:     make([]soloMemo, table.K()),
		idx:      make(map[int]int),
		slotLoad: make([]int, ix.NumCells()),
	}
	for i := range e.readers {
		e.readers[i] = wi.NewReader()
		e.solo[i] = make(soloMemo)
	}
	wi.SetMoveObserver(e.noteMove)
	return e, nil
}

// Table exposes the slot table (stats, tests).
func (e *Engine) Table() *SlotTable { return e.table }

// Stats returns a snapshot of the engine's speculation counters.
func (e *Engine) Stats() Stats { return e.stats }

// noteMove marks a dispatched worker as booked for the remainder of the
// tick; any speculation whose probe considered it as an in-budget
// candidate is no longer trusted.
func (e *Engine) noteMove(w *order.Worker, _, _ int) {
	if w.ID >= len(e.workerEpoch) {
		//det:hotalloc grows the booked-worker stamp array to the fleet's ID high-water mark once
		grown := make([]uint64, w.ID+1)
		copy(grown, e.workerEpoch)
		e.workerEpoch = grown
	}
	e.workerEpoch[w.ID] = e.tickEpoch
}

// BeginTick runs the speculation phase for one periodic check: the pooled
// order IDs are partitioned by pickup slot, overloaded shards hand slots
// off at this epoch barrier, and each shard's goroutine computes its
// orders' probes and singleton plans against the tick-start snapshot. The
// pool and the worker fleet must not be mutated until BeginTick returns
// (the framework calls it right before the sequential commit loop, which
// is the only mutator). ids must be the exact OrderIDs slice the commit
// loop will walk; now and anyIdle must be the values the loop will use.
func (e *Engine) BeginTick(view PoolView, ids []int, now float64, anyIdle bool) {
	e.tickEpoch++
	e.stats.Ticks++
	e.stats.SpecOrders += uint64(len(ids))
	e.view, e.now, e.anyIdle, e.ids = view, now, anyIdle, ids

	if cap(e.specs) < len(ids) {
		e.specs = make([]spec, len(ids))
	}
	e.specs = e.specs[:len(ids)]
	clear(e.idx)

	// Slot loads drive the epoch-barrier handoff; the per-order shard is
	// resolved against the rebalanced table.
	for i := range e.slotLoad {
		e.slotLoad[i] = 0
	}
	for _, id := range ids {
		if o := view.Order(id); o != nil {
			e.slotLoad[e.ix.CellOf(o.Pickup)]++
		}
	}
	e.stats.SlotHandoffs += uint64(e.table.Rebalance(e.slotLoad))

	k := e.table.K()
	parts := make([][]int, k)
	for i, id := range ids {
		e.idx[id] = i
		sh := 0
		if o := view.Order(id); o != nil {
			sh = e.table.ShardOf(e.ix.CellOf(o.Pickup))
		}
		parts[sh] = append(parts[sh], i)
	}

	var wg sync.WaitGroup
	for sh := 1; sh < k; sh++ {
		if len(parts[sh]) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			e.speculateShard(sh, parts[sh])
		}(sh)
	}
	e.speculateShard(0, parts[0])
	wg.Wait()

	e.pruneSolo()
}

// speculateShard computes the speculation for one shard's order indices on
// the calling goroutine. Everything here is read-only against the shared
// simulation state; writes go only to this shard's spec slots, reader and
// solo memo.
//
//det:specroot shard speculation runs concurrently against the quiescent pool snapshot
func (e *Engine) speculateShard(sh int, mine []int) {
	r := e.readers[sh]
	memo := e.solo[sh]
	for _, i := range mine {
		e.speculateOne(r, memo, i)
	}
}

//det:specroot per-order probe work, write-free outside the shard's own scratch
func (e *Engine) speculateOne(r *gridindex.ProbeReader, memo soloMemo, i int) {
	id := e.ids[i]
	sp := &e.specs[i]
	sp.epoch = e.tickEpoch
	sp.gProbed, sp.planKnown, sp.sProbed = false, false, false

	o := e.view.Order(id)
	if o == nil {
		return
	}
	// Best-group worker probe, mirroring the commit loop's gate. The
	// speculation is keyed by the best group's semantic version: the probe
	// depends only on (first pickup, riders, expiry), all of which are
	// pinned by the version, so it stays consumable across commits that
	// rebuild an identical group under a new pointer.
	if g, expiry, ok := e.view.BestGroup(id); ok && e.anyIdle {
		w, approach, cands := r.ClosestIdleWithin(g.Plan.Stops[0].Node, e.now, g.Riders(), expiry-e.now)
		sp.gVer, sp.gw, sp.gApproach = e.view.BestGroupVersion(id), w, approach
		sp.gCands = append(sp.gCands[:0], cands...)
		sp.gProbed = true
	}
	// Singleton plan (memoized across ticks) + feasibility at this now,
	// using exactly the DP's deadline comparison.
	ent := memo[id]
	if ent == nil {
		plan, feasible := e.planner.PlanGroup([]*order.Order{o}, e.now, e.capacity)
		if !feasible {
			plan = nil
		}
		ent = &soloEntry{plan: plan}
		memo[id] = ent
	}
	sp.soloPlan = ent.plan
	sp.soloFeasible = ent.plan != nil && !(e.now+ent.plan.Cost > o.Deadline)
	sp.planKnown = true
	// Solo worker probe at the plan's approach slack — the budget both the
	// horizon shrink and a solo dispatch would use.
	if sp.soloFeasible && e.anyIdle {
		budget := soloSlack(ent.plan, o, e.now)
		w, approach, cands := r.ClosestIdleWithin(ent.plan.Stops[0].Node, e.now, o.Riders, budget)
		sp.sBudget, sp.sw, sp.sApproach = budget, w, approach
		sp.sCands = append(sp.sCands[:0], cands...)
		sp.sProbed = true
	}
}

// soloSlack is sim's approachSlack specialized to a singleton plan: the
// largest worker approach the route can absorb before the order misses its
// deadline.
func soloSlack(plan *order.RoutePlan, o *order.Order, now float64) float64 {
	for i, s := range plan.Stops {
		if s.Kind == order.DropoffStop {
			return o.Deadline - now - plan.Arrive[i]
		}
	}
	return 0
}

// workersClean reports whether none of the probe's costed in-budget
// candidates were booked by a dispatch this tick.
func (e *Engine) workersClean(cands []int32) bool {
	for _, id := range cands {
		if int(id) < len(e.workerEpoch) && e.workerEpoch[id] == e.tickEpoch {
			return false
		}
	}
	return true
}

func (e *Engine) specFor(id int) *spec {
	i, ok := e.idx[id]
	if !ok {
		return nil
	}
	sp := &e.specs[i]
	if sp.epoch != e.tickEpoch {
		return nil
	}
	return sp
}

// GroupProbe returns the speculated (worker, approach) for the order's
// best group, valid only while the best group is semantically the one
// speculated against (same version) and no dispatch booked a candidate
// the probe considered. ok=false means the caller must probe fresh — the
// coordinator's cross-shard fallback.
func (e *Engine) GroupProbe(id int, g *order.Group, expiry float64) (*order.Worker, float64, bool) {
	sp := e.specFor(id)
	if sp == nil || !sp.gProbed || sp.gVer != e.view.BestGroupVersion(id) {
		e.stats.GroupMiss++
		return nil, 0, false
	}
	if !e.workersClean(sp.gCands) {
		e.stats.GroupInvalid++
		return nil, 0, false
	}
	e.stats.GroupHits++
	return sp.gw, sp.gApproach, true
}

// SoloPlan returns the speculated singleton plan and its feasibility at
// the tick's now. Plans are pure functions of the order and the clock, so
// a known plan is always valid within the tick.
func (e *Engine) SoloPlan(id int) (*order.RoutePlan, bool, bool) {
	sp := e.specFor(id)
	if sp == nil || !sp.planKnown {
		return nil, false, false
	}
	e.stats.PlanHits++
	return sp.soloPlan, sp.soloFeasible, true
}

// SoloProbe returns the speculated solo worker probe, valid only for the
// exact budget speculated and while none of its considered candidates
// were booked.
func (e *Engine) SoloProbe(id int, budget float64) (*order.Worker, float64, bool) {
	sp := e.specFor(id)
	if sp == nil || !sp.sProbed || sp.sBudget != budget {
		e.stats.SoloMiss++
		return nil, 0, false
	}
	if !e.workersClean(sp.sCands) {
		e.stats.SoloInvalid++
		return nil, 0, false
	}
	e.stats.SoloHits++
	return sp.sw, sp.sApproach, true
}

// pruneSolo drops singleton memos for orders that left the pool, keeping
// the per-shard maps proportional to the live pool. ids is sorted
// ascending (OrderIDs' contract), so membership is a binary search.
func (e *Engine) pruneSolo() {
	for _, memo := range e.solo {
		//det:unordered deletes are keyed by the loop key and containsSorted is a pure binary search over the sorted ids snapshot
		for id := range memo {
			if !containsSorted(e.ids, id) {
				delete(memo, id)
			}
		}
	}
}

func containsSorted(ids []int, id int) bool {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ids) && ids[lo] == id
}

// Run implements the pool's parallel executor: tasks are fanned out over
// the engine's shards and Run returns when all complete. Tasks must be
// independent pure computations (the pool's pairwise prewarm plans are);
// their results are merged by the caller afterwards, so scheduling order
// cannot influence any decision.
func (e *Engine) Run(tasks []func()) {
	e.stats.PrewarmTasks += uint64(len(tasks))
	k := e.table.K()
	if len(tasks) <= 1 || k == 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	if k > len(tasks) {
		k = len(tasks)
	}
	var wg sync.WaitGroup
	for w := 1; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(tasks); i += k {
				tasks[i]()
			}
		}(w)
	}
	for i := 0; i < len(tasks); i += k {
		tasks[i]()
	}
	wg.Wait()
}
