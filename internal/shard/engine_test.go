package shard

import (
	"sync/atomic"
	"testing"

	"watter/internal/geo"
	"watter/internal/gridindex"
	"watter/internal/order"
	"watter/internal/roadnet"
	"watter/internal/route"
)

// fakeView is a hand-built PoolView for engine unit tests.
type fakeView struct {
	orders map[int]*order.Order
	groups map[int]*order.Group
	expiry map[int]float64
	ver    map[int]uint64
}

func (v *fakeView) Order(id int) *order.Order { return v.orders[id] }
func (v *fakeView) BestGroup(id int) (*order.Group, float64, bool) {
	g, ok := v.groups[id]
	if !ok {
		return nil, 0, false
	}
	return g, v.expiry[id], true
}
func (v *fakeView) BestGroupVersion(id int) uint64 { return v.ver[id] }

func testOrder(net roadnet.Network, id int, pu, do geo.NodeID, release, tau float64) *order.Order {
	direct := net.Cost(pu, do)
	return &order.Order{
		ID: id, Pickup: pu, Dropoff: do, Riders: 1,
		Release: release, Deadline: release + tau*direct,
		WaitLimit: 0.8 * direct, DirectCost: direct,
	}
}

// engineFixture builds a 20x20 city with two order pairs at opposite
// corners, each with a nearby idle worker, and a 4-shard engine over it.
func engineFixture(t *testing.T) (*Engine, *fakeView, *gridindex.WorkerIndex, []*order.Worker, []int, *roadnet.GridCity) {
	t.Helper()
	net := roadnet.NewGridCity(20, 20, 100, 10)
	ix := gridindex.New(net, 10)
	planner := route.NewPlanner(net)
	workers := []*order.Worker{
		{ID: 1, Loc: net.Node(0, 0), Capacity: 4},
		{ID: 2, Loc: net.Node(19, 19), Capacity: 4},
	}
	wi := gridindex.NewWorkerIndex(ix, net, workers)

	o1 := testOrder(net, 1, net.Node(1, 1), net.Node(8, 1), 0, 2.5)
	o2 := testOrder(net, 2, net.Node(2, 1), net.Node(9, 1), 0, 2.5)
	o3 := testOrder(net, 3, net.Node(18, 18), net.Node(11, 18), 0, 2.5)
	o4 := testOrder(net, 4, net.Node(17, 18), net.Node(10, 18), 0, 2.5)
	mkGroup := func(a, b *order.Order) *order.Group {
		plan, ok := planner.PlanGroup([]*order.Order{a, b}, 0, 4)
		if !ok {
			t.Fatalf("pair (%d,%d) infeasible", a.ID, b.ID)
		}
		return &order.Group{Orders: []*order.Order{a, b}, Plan: plan}
	}
	g12, g34 := mkGroup(o1, o2), mkGroup(o3, o4)
	view := &fakeView{
		orders: map[int]*order.Order{1: o1, 2: o2, 3: o3, 4: o4},
		groups: map[int]*order.Group{1: g12, 2: g12, 3: g34, 4: g34},
		expiry: map[int]float64{1: 500, 2: 500, 3: 500, 4: 500},
		ver:    map[int]uint64{},
	}
	eng, err := NewEngine(4, ix, wi, planner, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return eng, view, wi, workers, []int{1, 2, 3, 4}, net
}

// TestEngineSpeculationMatchesFreshProbes: a valid speculation returns
// exactly what the worker index would return fresh, for both the group and
// the solo probe, and the singleton plan matches a fresh DP.
func TestEngineSpeculationMatchesFreshProbes(t *testing.T) {
	eng, view, wi, _, ids, net := engineFixture(t)
	now := 10.0
	eng.BeginTick(view, ids, now, true)
	for _, id := range ids {
		g, expiry, _ := view.BestGroup(id)
		w, approach, ok := eng.GroupProbe(id, g, expiry)
		if !ok {
			t.Fatalf("order %d: group speculation missing", id)
		}
		fw, fa := wi.ClosestIdleWithin(g.Plan.Stops[0].Node, now, g.Riders(), expiry-now)
		if w != fw || approach != fa {
			t.Fatalf("order %d: speculated (%v, %v), fresh (%v, %v)", id, w, approach, fw, fa)
		}
		o := view.Order(id)
		plan, feasible, ok := eng.SoloPlan(id)
		if !ok || !feasible {
			t.Fatalf("order %d: solo plan missing (ok=%v feasible=%v)", id, ok, feasible)
		}
		if plan.Cost != net.Cost(o.Pickup, o.Dropoff) {
			t.Fatalf("order %d: solo plan cost %v, want %v", id, plan.Cost, o.DirectCost)
		}
		budget := o.Deadline - now - plan.Arrive[len(plan.Arrive)-1]
		sw, sa, ok := eng.SoloProbe(id, budget)
		if !ok {
			t.Fatalf("order %d: solo speculation missing", id)
		}
		fsw, fsa := wi.ClosestIdleWithin(o.Pickup, now, o.Riders, budget)
		if sw != fsw || sa != fsa {
			t.Fatalf("order %d: solo speculated (%v, %v), fresh (%v, %v)", id, sw, sa, fsw, fsa)
		}
	}
	// A semantic change to the best group (version bump) or a different
	// solo budget must never be served speculatively. A pointer-identical
	// rebuild would keep the version and stay consumable — that is the
	// point of version keying.
	view.ver[1]++
	g, expiry, _ := view.BestGroup(1)
	if _, _, ok := eng.GroupProbe(1, g, expiry); ok {
		t.Fatal("speculation served across a best-group version bump")
	}
	if _, _, ok := eng.SoloProbe(1, 1e9); ok {
		t.Fatal("solo speculation served for a different budget")
	}
}

// TestEngineDispatchInvalidatesBookedCandidates: booking a worker
// invalidates exactly the speculations whose probes costed it as an
// in-budget candidate; speculations that never considered the worker stay
// valid, and the next tick starts clean.
func TestEngineDispatchInvalidatesBookedCandidates(t *testing.T) {
	eng, view, wi, workers, ids, _ := engineFixture(t)
	now := 10.0
	eng.BeginTick(view, ids, now, true)

	// Book worker 1 (origin corner) in place: busy, same cell.
	workers[0].FreeAt = now + 300
	wi.Update(workers[0])

	g1, e1, _ := view.BestGroup(1)
	if _, _, ok := eng.GroupProbe(1, g1, e1); ok {
		t.Fatal("speculation near the dispatched worker survived")
	}
	if _, _, ok := eng.SoloProbe(1, view.Order(1).Deadline-now-view.Order(1).DirectCost); ok {
		t.Fatal("solo speculation near the dispatched worker survived")
	}
	g3, e3, _ := view.BestGroup(3)
	if w, _, ok := eng.GroupProbe(3, g3, e3); !ok || w == nil || w.ID != 2 {
		t.Fatalf("distant speculation should survive, got (w=%v ok=%v)", w, ok)
	}

	// A new tick re-speculates and trusts the fresh state again.
	workers[0].FreeAt = 0
	wi.Update(workers[0])
	eng.BeginTick(view, ids, now+10, true)
	if _, _, ok := eng.GroupProbe(1, g1, e1); !ok {
		t.Fatal("fresh tick did not restore speculation")
	}
	st := eng.Stats()
	if st.Ticks != 2 || st.GroupInvalid == 0 || st.GroupHits == 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

// TestEngineSoloPlanMemoized: the singleton plan is computed once and
// reused across ticks (it is now-independent), while feasibility tracks
// the advancing clock.
func TestEngineSoloPlanMemoized(t *testing.T) {
	eng, view, _, _, ids, _ := engineFixture(t)
	eng.BeginTick(view, ids, 10, true)
	p1, feasible, ok := eng.SoloPlan(1)
	if !ok || !feasible {
		t.Fatal("solo plan missing at t=10")
	}
	eng.BeginTick(view, ids, 20, true)
	p2, _, ok := eng.SoloPlan(1)
	if !ok || p1 != p2 {
		t.Fatalf("singleton plan not memoized across ticks (%p vs %p)", p1, p2)
	}
	// Far beyond the deadline the same memoized plan reports infeasible.
	o := view.Order(1)
	eng.BeginTick(view, ids, o.Deadline+1, true)
	if _, feasible, ok := eng.SoloPlan(1); !ok || feasible {
		t.Fatalf("expired singleton still feasible (ok=%v feasible=%v)", ok, feasible)
	}
}

// TestEngineRunExecutesAllTasks: the pool's executor contract — every task
// runs exactly once, at any fan-out.
func TestEngineRunExecutesAllTasks(t *testing.T) {
	eng, _, _, _, _, _ := engineFixture(t)
	for _, n := range []int{0, 1, 2, 7, 64} {
		var ran atomic.Int64
		counts := make([]atomic.Int32, n)
		tasks := make([]func(), n)
		for i := range tasks {
			i := i
			tasks[i] = func() {
				counts[i].Add(1)
				ran.Add(1)
			}
		}
		eng.Run(tasks)
		if int(ran.Load()) != n {
			t.Fatalf("%d tasks: %d ran", n, ran.Load())
		}
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("task %d ran %d times", i, counts[i].Load())
			}
		}
	}
}
