package mdp

import (
	"watter/internal/gridindex"
	"watter/internal/nn"
	"watter/internal/order"
)

// ValueThresholdSource turns a trained value network into the online
// threshold: θ(i) = p(i) - V(s(i, now)), clamped to [0, p(i)] (Section
// VI-A: "we calculate θ(i) as p(i) - Vπ(s(i)_t)"). It is the
// strategy.ThresholdSource behind WATTER-expect.
type ValueThresholdSource struct {
	Net  *nn.MLP
	Feat *Featurizer
	// Demand and Supply fetch the live platform distributions; either may
	// be nil (zero features), which keeps the source usable before the
	// simulation starts.
	Demand func() (pickup, dropoff gridindex.Distribution)
	Supply func(now float64) gridindex.Distribution
}

// Threshold implements strategy.ThresholdSource.
func (v *ValueThresholdSource) Threshold(o *order.Order, now float64) float64 {
	var pu, do, sw gridindex.Distribution
	if v.Demand != nil {
		pu, do = v.Demand()
	}
	if v.Supply != nil {
		sw = v.Supply(now)
	}
	state := v.Feat.Features(o, now, pu, do, sw)
	val := v.Net.Predict(state)
	p := o.Penalty()
	theta := p - val
	if theta < 0 {
		theta = 0
	}
	if theta > p {
		theta = p
	}
	return theta
}
