package mdp

import (
	"watter/internal/core"
	"watter/internal/gridindex"
	"watter/internal/order"
	"watter/internal/sim"
	"watter/internal/strategy"
)

// Collector wraps the WATTER framework to generate off-policy training
// experience (paper Section VI-B): it simulates the dispatch process under
// a behavior strategy (typically the GMM-threshold strategy), snapshots
// every pooled order's state at each periodic check, and emits wait /
// dispatch / expire transitions into the trainer's replay memory.
type Collector struct {
	Inner *core.Framework
	Feat  *Featurizer
	// Theta supplies θ*(p) for the target loss (the Algorithm 3 output).
	Theta strategy.ThresholdSource
	// Emit receives finished transitions.
	Emit func(Experience)

	env   *sim.Env
	snaps map[int][]snapshot
}

type snapshot struct {
	state []float64
	time  float64
}

// NewCollector wires a framework, featurizer and threshold source.
func NewCollector(inner *core.Framework, feat *Featurizer, theta strategy.ThresholdSource, emit func(Experience)) *Collector {
	return &Collector{Inner: inner, Feat: feat, Theta: theta, Emit: emit}
}

// Name implements sim.Algorithm.
func (c *Collector) Name() string { return c.Inner.Name() + "+collect" }

// Init implements sim.Algorithm.
func (c *Collector) Init(env *sim.Env) {
	c.env = env
	c.snaps = make(map[int][]snapshot)
	env.SetObservers(c.onServe, c.onReject)
	c.Inner.Init(env)
}

// OnOrder implements sim.Algorithm: record the initial state s0, then
// delegate.
func (c *Collector) OnOrder(o *order.Order, now float64) {
	c.snaps[o.ID] = []snapshot{{state: c.features(o, now), time: now}}
	c.Inner.OnOrder(o, now)
}

// OnTick implements sim.Algorithm: delegate (dispatches happen inside),
// then snapshot the survivors' new states.
func (c *Collector) OnTick(now float64) {
	c.Inner.OnTick(now)
	pool := c.Inner.Pool()
	for _, id := range pool.OrderIDs() {
		o := pool.Order(id)
		c.snaps[id] = append(c.snaps[id], snapshot{state: c.features(o, now), time: now})
	}
}

// Finish implements sim.Algorithm.
func (c *Collector) Finish(now float64) {
	c.Inner.Finish(now)
	// Anything never resolved (shouldn't happen — Finish rejects) is
	// dropped silently.
	c.snaps = map[int][]snapshot{}
}

func (c *Collector) features(o *order.Order, now float64) []float64 {
	var pu, do, supply gridindex.Distribution
	if p := c.Inner.Pool(); p != nil {
		pu, do = p.DemandDistributions()
	}
	if c.env != nil {
		supply = c.env.WIndex.SupplyDistribution(now)
	}
	return c.Feat.Features(o, now, pu, do, supply)
}

// onServe finalizes a dispatched order's episode: wait transitions between
// consecutive snapshots, then a terminal dispatch with reward p - t_d.
func (c *Collector) onServe(g *order.Group, now float64) {
	for _, o := range g.Orders {
		snaps := c.snaps[o.ID]
		if len(snaps) == 0 {
			continue
		}
		detour := 0.0
		if g.Plan != nil {
			if st, ok := g.Plan.ServiceTime(o.ID); ok {
				detour = st - o.DirectCost
			}
		}
		c.emitWaits(o, snaps)
		last := snaps[len(snaps)-1]
		c.Emit(Experience{
			State:     last.state,
			Act:       Dispatch,
			Reward:    o.Penalty() - detour,
			Penalty:   o.Penalty(),
			ThetaStar: c.theta(o, now),
		})
		delete(c.snaps, o.ID)
	}
}

// onReject finalizes an expired order's episode: waits, then a terminal
// expired wait with reward -Δt.
func (c *Collector) onReject(o *order.Order, now float64) {
	snaps := c.snaps[o.ID]
	if len(snaps) == 0 {
		return
	}
	c.emitWaits(o, snaps)
	last := snaps[len(snaps)-1]
	dt := now - last.time
	if dt <= 0 {
		dt = c.Feat.SlotSeconds
	}
	c.Emit(Experience{
		State:     last.state,
		Act:       Wait,
		Reward:    -dt,
		Expired:   true,
		Penalty:   o.Penalty(),
		ThetaStar: c.theta(o, now),
		Dt:        dt,
	})
	delete(c.snaps, o.ID)
}

// emitWaits emits the non-terminal wait transitions s_j -> s_{j+1}.
func (c *Collector) emitWaits(o *order.Order, snaps []snapshot) {
	for j := 0; j+1 < len(snaps); j++ {
		dt := snaps[j+1].time - snaps[j].time
		if dt <= 0 {
			continue
		}
		c.Emit(Experience{
			State:     snaps[j].state,
			Act:       Wait,
			Reward:    -dt,
			Next:      snaps[j+1].state,
			Penalty:   o.Penalty(),
			ThetaStar: c.theta(o, snaps[j].time),
			Dt:        dt,
		})
	}
}

func (c *Collector) theta(o *order.Order, now float64) float64 {
	if c.Theta == nil {
		return 0
	}
	return c.Theta.Threshold(o, now)
}
