// Package mdp models WATTER's dispatch decisions as a Markov Decision
// Process (paper Section VI): each pooled order is an agent whose state is
// a spatio-temporal feature vector; a value network V(s), trained offline
// on simulated experience with a weighted TD + target loss, estimates the
// expected accumulated reward and hence the expected extra-time threshold
// θ(i) = p(i) - V(s(i)).
package mdp

import (
	"watter/internal/gridindex"
	"watter/internal/order"
)

// Featurizer quantizes an order's spatio-temporal environment into the
// state vector st = [sL, sT, sO, sW] (Section VI-A):
//
//	sL: pickup + dropoff region one-hots     (2·C dims)
//	sT: release timeslot + waited slots      (2 dims, normalized)
//	sO: pickup + dropoff demand histograms   (2·C dims)
//	sW: idle-worker supply histogram         (C dims)
//
// where C is the number of grid cells.
type Featurizer struct {
	Index *gridindex.Index
	// SlotSeconds is the time-quantization Δt (paper default 10 s).
	SlotSeconds float64
	// HorizonSeconds normalizes the release timeslot (length of the
	// simulated period).
	HorizonSeconds float64
	// MaxWaitSlots normalizes the waited-slots feature.
	MaxWaitSlots float64
}

// NewFeaturizer returns a featurizer with the paper's Δt = 10 s over the
// given horizon.
func NewFeaturizer(ix *gridindex.Index, horizon float64) *Featurizer {
	return &Featurizer{Index: ix, SlotSeconds: 10, HorizonSeconds: horizon, MaxWaitSlots: 60}
}

// Dim returns the state vector length: 5·C + 2.
func (f *Featurizer) Dim() int { return 5*f.Index.NumCells() + 2 }

// Features builds the state vector for order o at time now given the
// platform's current demand and supply distributions. Distributions may be
// nil (zeros) — useful in unit tests.
func (f *Featurizer) Features(o *order.Order, now float64, pickupDemand, dropoffDemand, supply gridindex.Distribution) []float64 {
	c := f.Index.NumCells()
	x := make([]float64, f.Dim())
	// sL: one-hot pickup and dropoff regions.
	x[f.Index.CellOf(o.Pickup)] = 1
	x[c+f.Index.CellOf(o.Dropoff)] = 1
	// sT: release timeslot and waited slots.
	slot := 0.0
	if f.HorizonSeconds > 0 {
		slot = o.Release / f.HorizonSeconds
		if slot > 1 {
			slot = 1
		}
	}
	waited := (now - o.Release) / f.SlotSeconds / f.MaxWaitSlots
	if waited < 0 {
		waited = 0
	}
	if waited > 1 {
		waited = 1
	}
	x[2*c] = slot
	x[2*c+1] = waited
	// sO and sW.
	copyDist(x[2*c+2:3*c+2], pickupDemand)
	copyDist(x[3*c+2:4*c+2], dropoffDemand)
	copyDist(x[4*c+2:5*c+2], supply)
	return x
}

func copyDist(dst []float64, src gridindex.Distribution) {
	if src == nil {
		return
	}
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	copy(dst[:n], src[:n])
}
