package mdp

import (
	"math"
	"math/rand"
	"testing"

	"watter/internal/core"
	"watter/internal/gridindex"
	"watter/internal/nn"
	"watter/internal/order"
	"watter/internal/pool"
	"watter/internal/roadnet"
	"watter/internal/sim"
	"watter/internal/strategy"
)

func testIndex() (*gridindex.Index, *roadnet.GridCity) {
	net := roadnet.NewGridCity(20, 20, 100, 10)
	return gridindex.New(net, 5), net
}

func TestFeaturizerLayout(t *testing.T) {
	ix, net := testIndex()
	f := NewFeaturizer(ix, 3600)
	c := ix.NumCells()
	if f.Dim() != 5*c+2 {
		t.Fatalf("dim = %d", f.Dim())
	}
	o := &order.Order{
		ID: 1, Pickup: net.Node(0, 0), Dropoff: net.Node(19, 19),
		Release: 1800, DirectCost: 380, Deadline: 1800 + 600,
	}
	x := f.Features(o, 1850, nil, nil, nil)
	if len(x) != f.Dim() {
		t.Fatalf("len = %d", len(x))
	}
	if x[ix.CellOf(o.Pickup)] != 1 {
		t.Fatal("pickup one-hot missing")
	}
	if x[c+ix.CellOf(o.Dropoff)] != 1 {
		t.Fatal("dropoff one-hot missing")
	}
	if math.Abs(x[2*c]-0.5) > 1e-9 {
		t.Fatalf("release slot = %v, want 0.5", x[2*c])
	}
	wantWait := 50.0 / 10 / 60
	if math.Abs(x[2*c+1]-wantWait) > 1e-9 {
		t.Fatalf("waited = %v, want %v", x[2*c+1], wantWait)
	}
	// All remaining entries zero with nil distributions.
	for i := 2*c + 2; i < len(x); i++ {
		if x[i] != 0 {
			t.Fatalf("expected zero tail, x[%d]=%v", i, x[i])
		}
	}
}

func TestFeaturizerClampsWait(t *testing.T) {
	ix, net := testIndex()
	f := NewFeaturizer(ix, 3600)
	o := &order.Order{ID: 1, Pickup: net.Node(0, 0), Dropoff: net.Node(1, 0), Release: 0}
	x := f.Features(o, 1e9, nil, nil, nil)
	c := ix.NumCells()
	if x[2*c+1] != 1 {
		t.Fatalf("wait clamp failed: %v", x[2*c+1])
	}
}

func TestFeaturizerEmbedsDistributions(t *testing.T) {
	ix, net := testIndex()
	f := NewFeaturizer(ix, 100)
	c := ix.NumCells()
	pu := make(gridindex.Distribution, c)
	do := make(gridindex.Distribution, c)
	sw := make(gridindex.Distribution, c)
	pu[3], do[7], sw[9] = 0.5, 0.25, 0.75
	o := &order.Order{ID: 1, Pickup: net.Node(0, 0), Dropoff: net.Node(1, 0)}
	x := f.Features(o, 0, pu, do, sw)
	if x[2*c+2+3] != 0.5 || x[3*c+2+7] != 0.25 || x[4*c+2+9] != 0.75 {
		t.Fatal("distribution features misplaced")
	}
}

func TestTrainerBlendedTargets(t *testing.T) {
	cfg := DefaultTrainerConfig()
	cfg.Omega = 0.75
	tr := NewTrainer(4, cfg)
	// Dispatch: td = reward.
	e := Experience{State: []float64{0, 0, 0, 0}, Act: Dispatch, Reward: 120, Penalty: 200, ThetaStar: 50}
	want := 0.75*120 + 0.25*(200-50)
	if got := tr.blendedTarget(e); math.Abs(got-want) > 1e-9 {
		t.Fatalf("dispatch target = %v, want %v", got, want)
	}
	// Expired wait: td = reward only.
	e = Experience{State: []float64{0, 0, 0, 0}, Act: Wait, Reward: -10, Expired: true, Penalty: 200, ThetaStar: 50, Dt: 10}
	want = 0.75*(-10) + 0.25*150
	if got := tr.blendedTarget(e); math.Abs(got-want) > 1e-9 {
		t.Fatalf("expired target = %v, want %v", got, want)
	}
	// Non-terminal wait uses the target network (γ=1 ⇒ plain bootstrap).
	next := []float64{1, 1, 1, 1}
	vNext := tr.target.Predict(next)
	e = Experience{State: []float64{0, 0, 0, 0}, Act: Wait, Reward: -10, Next: next, Penalty: 200, ThetaStar: 50, Dt: 10}
	want = 0.75*(-10+vNext) + 0.25*150
	if got := tr.blendedTarget(e); math.Abs(got-want) > 1e-9 {
		t.Fatalf("wait target = %v, want %v", got, want)
	}
}

func TestTrainerOmegaZeroRegressesToTheta(t *testing.T) {
	// With ω = 0 the loss is purely the target loss: V must converge to
	// p - θ* regardless of rewards.
	cfg := DefaultTrainerConfig()
	cfg.Omega = 0
	cfg.Hidden = []int{16}
	cfg.LR = 5e-3
	tr := NewTrainer(2, cfg)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		s := []float64{rng.Float64(), rng.Float64()}
		tr.Add(Experience{State: s, Act: Dispatch, Reward: 1e6, Penalty: 300, ThetaStar: 100})
	}
	tr.Train(2000)
	var worst float64
	for i := 0; i < 50; i++ {
		s := []float64{rng.Float64(), rng.Float64()}
		if d := math.Abs(tr.Network().Predict(s) - 200); d > worst {
			worst = d
		}
	}
	if worst > 25 {
		t.Fatalf("ω=0 should pin V≈200, worst error %v", worst)
	}
}

func TestTrainerReplayRing(t *testing.T) {
	cfg := DefaultTrainerConfig()
	cfg.ReplayCap = 8
	tr := NewTrainer(1, cfg)
	for i := 0; i < 20; i++ {
		tr.Add(Experience{State: []float64{float64(i)}, Act: Dispatch, Reward: 1})
	}
	if tr.ReplayLen() != 8 {
		t.Fatalf("replay len = %d, want 8", tr.ReplayLen())
	}
}

func TestValueThresholdSourceClamps(t *testing.T) {
	ix, net := testIndex()
	f := NewFeaturizer(ix, 100)
	// A fresh random network outputs near 0 => θ ≈ p.
	src := &ValueThresholdSource{Net: nn.New([]int{f.Dim(), 4, 1}, 1), Feat: f}
	o := &order.Order{
		ID: 1, Pickup: net.Node(0, 0), Dropoff: net.Node(5, 0),
		Release: 0, DirectCost: 50, Deadline: 100,
	}
	th := src.Threshold(o, 0)
	if th < 0 || th > o.Penalty() {
		t.Fatalf("threshold %v outside [0, p=%v]", th, o.Penalty())
	}
}

// TestCollectorEmitsEpisodes runs a tiny simulation through the collector
// and checks experience structure: every episode ends with exactly one
// terminal transition, waits chain states, rewards follow the Bellman
// shapes.
func TestCollectorEmitsEpisodes(t *testing.T) {
	net := roadnet.NewGridCity(20, 20, 100, 10)
	ix := gridindex.New(net, 5)
	var exps []Experience
	fw := core.New(strategy.Timeout{Tick: 10}, pool.DefaultOptions())
	feat := NewFeaturizer(ix, 600)
	col := NewCollector(fw, feat, strategy.ConstantThreshold(60), func(e Experience) {
		exps = append(exps, e)
	})

	rng := rand.New(rand.NewSource(3))
	var orders []*order.Order
	for i := 0; i < 40; i++ {
		pu := net.Node(rng.Intn(20), rng.Intn(20))
		do := net.Node(rng.Intn(20), rng.Intn(20))
		if pu == do {
			continue
		}
		direct := net.Cost(pu, do)
		rel := float64(rng.Intn(300))
		orders = append(orders, &order.Order{
			ID: i + 1, Pickup: pu, Dropoff: do, Riders: 1,
			Release: rel, Deadline: rel + 2*direct, WaitLimit: 0.8 * direct,
			DirectCost: direct,
		})
	}
	var workers []*order.Worker
	for i := 0; i < 8; i++ {
		workers = append(workers, &order.Worker{ID: i, Loc: net.Node(rng.Intn(20), rng.Intn(20)), Capacity: 4})
	}
	env := sim.NewEnv(net, workers, sim.DefaultConfig())
	opts := sim.DefaultRunOptions()
	opts.MeasureTime = false
	m := sim.Run(env, col, orders, opts)
	if m.Served+m.Rejected != len(orders) {
		t.Fatalf("accounting: %+v", m)
	}
	if len(exps) == 0 {
		t.Fatal("no experiences collected")
	}
	dispatches, expiries, waits := 0, 0, 0
	for _, e := range exps {
		switch {
		case e.Act == Dispatch:
			dispatches++
			if e.Next != nil {
				t.Fatal("dispatch must be terminal")
			}
		case e.Expired:
			expiries++
			if e.Reward >= 0 {
				t.Fatalf("expired reward %v must be negative", e.Reward)
			}
		default:
			waits++
			if e.Next == nil {
				t.Fatal("non-terminal wait must have a next state")
			}
			if e.Reward != -e.Dt {
				t.Fatalf("wait reward %v != -Δt %v", e.Reward, e.Dt)
			}
		}
		if len(e.State) != feat.Dim() {
			t.Fatalf("state dim %d", len(e.State))
		}
		if e.ThetaStar != 60 {
			t.Fatalf("θ* = %v, want 60", e.ThetaStar)
		}
	}
	if dispatches != m.Served {
		t.Fatalf("dispatch experiences %d != served %d", dispatches, m.Served)
	}
	if expiries != m.Rejected {
		t.Fatalf("expiry experiences %d != rejected %d", expiries, m.Rejected)
	}
	if waits == 0 {
		t.Fatal("timeout strategy must generate wait transitions")
	}
}

// TestEndToEndTraining: collect experience, train, and verify the value
// network produces usable thresholds that drive a full simulation.
func TestEndToEndTraining(t *testing.T) {
	net := roadnet.NewGridCity(20, 20, 100, 10)
	ix := gridindex.New(net, 5)
	feat := NewFeaturizer(ix, 600)
	cfg := DefaultTrainerConfig()
	cfg.Hidden = []int{32}
	tr := NewTrainer(feat.Dim(), cfg)

	fw := core.New(strategy.Timeout{Tick: 10}, pool.DefaultOptions())
	col := NewCollector(fw, feat, strategy.ConstantThreshold(80), func(e Experience) { tr.Add(e) })

	rng := rand.New(rand.NewSource(5))
	mkOrders := func(n int, seed int64) []*order.Order {
		r := rand.New(rand.NewSource(seed))
		var out []*order.Order
		for i := 0; i < n; i++ {
			pu := net.Node(r.Intn(20), r.Intn(20))
			do := net.Node(r.Intn(20), r.Intn(20))
			if pu == do {
				continue
			}
			direct := net.Cost(pu, do)
			rel := float64(r.Intn(300))
			out = append(out, &order.Order{
				ID: i + 1, Pickup: pu, Dropoff: do, Riders: 1,
				Release: rel, Deadline: rel + 2*direct, WaitLimit: 0.8 * direct,
				DirectCost: direct,
			})
		}
		return out
	}
	mkWorkers := func(m int) []*order.Worker {
		var out []*order.Worker
		for i := 0; i < m; i++ {
			out = append(out, &order.Worker{ID: i, Loc: net.Node(rng.Intn(20), rng.Intn(20)), Capacity: 4})
		}
		return out
	}
	opts := sim.DefaultRunOptions()
	opts.MeasureTime = false
	sim.Run(sim.NewEnv(net, mkWorkers(8), sim.DefaultConfig()), col, mkOrders(60, 1), opts)
	if tr.ReplayLen() == 0 {
		t.Fatal("no training data")
	}
	loss := tr.Train(300)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("diverged: loss %v", loss)
	}

	// Use the learned value function online.
	fw2 := core.New(nil, pool.DefaultOptions())
	src := &ValueThresholdSource{
		Net: tr.Network(), Feat: feat,
		Demand: func() (gridindex.Distribution, gridindex.Distribution) {
			return fw2.Pool().DemandDistributions()
		},
	}
	env := sim.NewEnv(net, mkWorkers(8), sim.DefaultConfig())
	src.Supply = env.WIndex.SupplyDistribution
	fw2.Decide = &strategy.Threshold{Source: src, Alpha: 1, Beta: 1}
	m := sim.Run(env, fw2, mkOrders(60, 2), opts)
	if m.Served+m.Rejected == 0 {
		t.Fatal("online run did nothing")
	}
	if m.ServiceRate() < 0.3 {
		t.Fatalf("learned policy service rate %.3f suspiciously low", m.ServiceRate())
	}
}
