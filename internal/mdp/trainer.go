package mdp

import (
	"math"
	"math/rand"

	"watter/internal/nn"
)

// Action is the agent's choice at a decision epoch.
type Action int8

const (
	// Wait holds the order in the pool for another slot.
	Wait Action = 0
	// Dispatch matches the order with its current best group.
	Dispatch Action = 1
)

// Experience is one transition of the per-order MDP (Section VI-A).
type Experience struct {
	State []float64
	Act   Action
	// Reward: p - t_d for Dispatch; -Δt for Wait (per the Bellman update).
	Reward float64
	// Next is the successor state for non-terminal waits; nil when the
	// episode ended (dispatched or expired).
	Next []float64
	// Expired marks a terminal wait (the order died in the pool).
	Expired bool
	// Penalty is p(i), ThetaStar the GMM-analytic threshold θ*(p(i)) used
	// by the target loss (Section VI-B).
	Penalty   float64
	ThetaStar float64
	// Dt is the slot length of the wait transition.
	Dt float64
}

// TrainerConfig sets the DQN-style learning hyperparameters.
type TrainerConfig struct {
	Hidden []int // hidden layer sizes, default {64, 32}
	// Gamma is the discount factor (paper sets γ = 1 so rewards add up to
	// the slack time).
	Gamma float64
	// Omega weighs TD loss against target loss: ω·losstd + (1-ω)·losstg.
	Omega float64
	// LR is the Adam learning rate.
	LR float64
	// BatchSize per gradient step.
	BatchSize int
	// SyncEvery refreshes the target network every N steps.
	SyncEvery int
	// ReplayCap bounds the replay memory (ring buffer).
	ReplayCap int
	Seed      int64
}

// DefaultTrainerConfig mirrors the paper's setting: γ=1, balanced ω.
func DefaultTrainerConfig() TrainerConfig {
	return TrainerConfig{
		Hidden: []int{64, 32}, Gamma: 1, Omega: 0.5, LR: 1e-3,
		BatchSize: 64, SyncEvery: 200, ReplayCap: 1 << 16, Seed: 1,
	}
}

// Trainer owns the main network V, the delayed-copy target network V̂ and
// the replay memory, and runs the off-policy training loop.
type Trainer struct {
	cfg    TrainerConfig
	main   *nn.MLP
	target *nn.MLP
	replay []Experience
	pos    int
	full   bool
	steps  int
	rng    *rand.Rand
}

// NewTrainer builds a trainer for states of the given dimension.
func NewTrainer(stateDim int, cfg TrainerConfig) *Trainer {
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{64, 32}
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 200
	}
	if cfg.ReplayCap <= 0 {
		cfg.ReplayCap = 1 << 16
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	if cfg.Gamma <= 0 {
		cfg.Gamma = 1
	}
	sizes := append([]int{stateDim}, cfg.Hidden...)
	sizes = append(sizes, 1)
	main := nn.New(sizes, cfg.Seed)
	return &Trainer{
		cfg:    cfg,
		main:   main,
		target: main.Clone(),
		replay: make([]Experience, 0, cfg.ReplayCap),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Add appends an experience to the replay memory (ring overwrite).
func (t *Trainer) Add(e Experience) {
	if len(t.replay) < t.cfg.ReplayCap {
		t.replay = append(t.replay, e)
		return
	}
	t.replay[t.pos] = e
	t.pos = (t.pos + 1) % t.cfg.ReplayCap
	t.full = true
}

// ReplayLen returns the number of stored experiences.
func (t *Trainer) ReplayLen() int { return len(t.replay) }

// Network returns the main value network.
func (t *Trainer) Network() *nn.MLP { return t.main }

// Step samples one minibatch and performs one gradient update; returns the
// batch loss. The combined quadratic loss ω(y_td - V)² + (1-ω)(y_tg - V)²
// is minimized by regressing V toward the blended target
// ŷ = ω·y_td + (1-ω)·y_tg, which is how the update is implemented.
func (t *Trainer) Step() float64 {
	n := len(t.replay)
	if n == 0 {
		return 0
	}
	bs := t.cfg.BatchSize
	if bs > n {
		bs = n
	}
	xs := make([][]float64, bs)
	ys := make([]float64, bs)
	for i := 0; i < bs; i++ {
		e := t.replay[t.rng.Intn(n)]
		xs[i] = e.State
		ys[i] = t.blendedTarget(e)
	}
	loss := t.main.TrainBatch(xs, ys, t.cfg.LR)
	t.steps++
	if t.steps%t.cfg.SyncEvery == 0 {
		t.target.CopyWeightsFrom(t.main)
	}
	return loss
}

// blendedTarget computes ω·y_td + (1-ω)·y_tg for one experience.
func (t *Trainer) blendedTarget(e Experience) float64 {
	var td float64
	switch {
	case e.Act == Dispatch:
		td = e.Reward // p - t_d, terminal
	case e.Expired || e.Next == nil:
		td = e.Reward // -Δt with no future (I(expired) = 1)
	default:
		td = e.Reward + math.Pow(t.cfg.Gamma, e.Dt)*t.target.Predict(e.Next)
	}
	tg := e.Penalty - e.ThetaStar
	return t.cfg.Omega*td + (1-t.cfg.Omega)*tg
}

// Train runs the given number of gradient steps and returns the mean loss
// of the final tenth (a convergence indicator for callers/logs).
func (t *Trainer) Train(steps int) float64 {
	if steps <= 0 {
		return 0
	}
	tail := steps / 10
	if tail == 0 {
		tail = 1
	}
	var sum float64
	var cnt int
	for i := 0; i < steps; i++ {
		l := t.Step()
		if i >= steps-tail {
			sum += l
			cnt++
		}
	}
	return sum / float64(cnt)
}
