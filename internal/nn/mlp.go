// Package nn is a from-scratch dense neural network on the standard
// library: an MLP with ReLU hidden activations and a linear output, trained
// with Adam on mean-squared error. It is the function approximator behind
// WATTER's state-value estimation (paper Section VI-B); at this problem's
// scale a small MLP matches the role the paper's deep network plays.
package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// MLP is a fully connected feedforward network.
type MLP struct {
	sizes []int
	// weights[l][o*in+i] connects layer l input i to output o; biases[l][o].
	weights [][]float64
	biases  [][]float64

	// Adam state (first/second moments), lazily allocated.
	mW, vW [][]float64
	mB, vB [][]float64
	step   int
}

// New creates an MLP with the given layer sizes (at least input and
// output). Weights use He initialization under a deterministic seed.
func New(sizes []int, seed int64) *MLP {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	for _, s := range sizes {
		if s < 1 {
			panic("nn: layer sizes must be positive")
		}
	}
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, in*out)
		scale := math.Sqrt(2 / float64(in))
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, make([]float64, out))
	}
	return m
}

// Sizes returns the layer sizes.
func (m *MLP) Sizes() []int { return append([]int(nil), m.sizes...) }

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.weights {
		n += len(m.weights[l]) + len(m.biases[l])
	}
	return n
}

// Forward computes the network output for input x.
func (m *MLP) Forward(x []float64) []float64 {
	if len(x) != m.sizes[0] {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), m.sizes[0]))
	}
	act := x
	last := len(m.weights) - 1
	for l := range m.weights {
		in, out := m.sizes[l], m.sizes[l+1]
		next := make([]float64, out)
		w := m.weights[l]
		for o := 0; o < out; o++ {
			s := m.biases[l][o]
			row := w[o*in : (o+1)*in]
			for i, v := range act {
				s += row[i] * v
			}
			if l != last && s < 0 {
				s = 0 // ReLU on hidden layers
			}
			next[o] = s
		}
		act = next
	}
	return act
}

// Predict returns the first output scalar (value networks have one output).
func (m *MLP) Predict(x []float64) float64 { return m.Forward(x)[0] }

// forwardAll runs Forward keeping all activations for backprop.
func (m *MLP) forwardAll(x []float64) [][]float64 {
	acts := make([][]float64, len(m.sizes))
	acts[0] = x
	last := len(m.weights) - 1
	for l := range m.weights {
		in, out := m.sizes[l], m.sizes[l+1]
		next := make([]float64, out)
		w := m.weights[l]
		for o := 0; o < out; o++ {
			s := m.biases[l][o]
			row := w[o*in : (o+1)*in]
			for i, v := range acts[l] {
				s += row[i] * v
			}
			if l != last && s < 0 {
				s = 0
			}
			next[o] = s
		}
		acts[l+1] = next
	}
	return acts
}

// TrainBatch performs one Adam step on mean-squared error between the first
// output and the targets, and returns the batch MSE before the update.
// Inputs beyond the first output unit (if any) are ignored in the loss.
func (m *MLP) TrainBatch(xs [][]float64, targets []float64, lr float64) float64 {
	if len(xs) == 0 || len(xs) != len(targets) {
		panic("nn: batch size mismatch")
	}
	m.ensureAdam()
	gradW := make([][]float64, len(m.weights))
	gradB := make([][]float64, len(m.biases))
	for l := range m.weights {
		gradW[l] = make([]float64, len(m.weights[l]))
		gradB[l] = make([]float64, len(m.biases[l]))
	}
	var loss float64
	last := len(m.weights) - 1
	for n, x := range xs {
		acts := m.forwardAll(x)
		out := acts[len(acts)-1]
		diff := out[0] - targets[n]
		loss += diff * diff
		// Backprop: delta on output layer (linear): dL/dout = 2*diff / N.
		delta := make([]float64, len(out))
		delta[0] = 2 * diff / float64(len(xs))
		for l := last; l >= 0; l-- {
			in := m.sizes[l]
			out := m.sizes[l+1]
			w := m.weights[l]
			var prevDelta []float64
			if l > 0 {
				prevDelta = make([]float64, in)
			}
			for o := 0; o < out; o++ {
				d := delta[o]
				if d == 0 {
					continue
				}
				gradB[l][o] += d
				row := w[o*in : (o+1)*in]
				grow := gradW[l][o*in : (o+1)*in]
				for i, a := range acts[l] {
					grow[i] += d * a
					if l > 0 {
						prevDelta[i] += d * row[i]
					}
				}
			}
			if l > 0 {
				// ReLU derivative of the previous layer's outputs.
				for i, a := range acts[l] {
					if a <= 0 {
						prevDelta[i] = 0
					}
				}
				delta = prevDelta
			}
		}
	}
	m.adamStep(gradW, gradB, lr)
	return loss / float64(len(xs))
}

const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

func (m *MLP) ensureAdam() {
	if m.mW != nil {
		return
	}
	alloc := func(shape [][]float64) [][]float64 {
		out := make([][]float64, len(shape))
		for i := range shape {
			out[i] = make([]float64, len(shape[i]))
		}
		return out
	}
	m.mW, m.vW = alloc(m.weights), alloc(m.weights)
	m.mB, m.vB = alloc(m.biases), alloc(m.biases)
}

func (m *MLP) adamStep(gradW, gradB [][]float64, lr float64) {
	m.step++
	c1 := 1 - math.Pow(adamBeta1, float64(m.step))
	c2 := 1 - math.Pow(adamBeta2, float64(m.step))
	update := func(w, g, mo, ve []float64) {
		for i := range w {
			mo[i] = adamBeta1*mo[i] + (1-adamBeta1)*g[i]
			ve[i] = adamBeta2*ve[i] + (1-adamBeta2)*g[i]*g[i]
			mhat := mo[i] / c1
			vhat := ve[i] / c2
			w[i] -= lr * mhat / (math.Sqrt(vhat) + adamEps)
		}
	}
	for l := range m.weights {
		update(m.weights[l], gradW[l], m.mW[l], m.vW[l])
		update(m.biases[l], gradB[l], m.mB[l], m.vB[l])
	}
}

// Clone returns a deep copy (weights only; fresh optimizer state). Used for
// target networks.
func (m *MLP) Clone() *MLP {
	c := &MLP{sizes: append([]int(nil), m.sizes...)}
	for l := range m.weights {
		c.weights = append(c.weights, append([]float64(nil), m.weights[l]...))
		c.biases = append(c.biases, append([]float64(nil), m.biases[l]...))
	}
	return c
}

// CopyWeightsFrom overwrites this network's weights with src's (the
// "delayed copy" step that refreshes a target network).
func (m *MLP) CopyWeightsFrom(src *MLP) {
	if len(m.sizes) != len(src.sizes) {
		panic("nn: architecture mismatch")
	}
	for l := range m.weights {
		copy(m.weights[l], src.weights[l])
		copy(m.biases[l], src.biases[l])
	}
}

// snapshot is the gob-serializable form of MLP.
type snapshot struct {
	Sizes   []int
	Weights [][]float64
	Biases  [][]float64
}

// Save writes the network weights to w (gob encoding).
func (m *MLP) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(snapshot{m.sizes, m.weights, m.biases})
}

// Load reads a network previously written with Save.
func Load(r io.Reader) (*MLP, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if len(s.Sizes) < 2 || len(s.Weights) != len(s.Sizes)-1 || len(s.Biases) != len(s.Sizes)-1 {
		return nil, fmt.Errorf("nn: load: corrupt snapshot")
	}
	return &MLP{sizes: s.Sizes, weights: s.Weights, biases: s.Biases}, nil
}
