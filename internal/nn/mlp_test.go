package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestForwardShapeAndDeterminism(t *testing.T) {
	m := New([]int{4, 8, 1}, 1)
	x := []float64{0.1, -0.2, 0.3, 0.4}
	y1 := m.Forward(x)
	y2 := m.Forward(x)
	if len(y1) != 1 {
		t.Fatalf("output size %d", len(y1))
	}
	if y1[0] != y2[0] {
		t.Fatal("forward pass not deterministic")
	}
	m2 := New([]int{4, 8, 1}, 1)
	if m2.Predict(x) != m.Predict(x) {
		t.Fatal("same seed must give identical nets")
	}
	m3 := New([]int{4, 8, 1}, 2)
	if m3.Predict(x) == m.Predict(x) {
		t.Fatal("different seeds should differ")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input size must panic")
		}
	}()
	New([]int{3, 1}, 1).Forward([]float64{1, 2})
}

func TestLearnsLinearFunction(t *testing.T) {
	m := New([]int{2, 16, 1}, 3)
	rng := rand.New(rand.NewSource(4))
	target := func(x []float64) float64 { return 3*x[0] - 2*x[1] + 0.5 }
	var xs [][]float64
	var ys []float64
	for i := 0; i < 256; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		xs = append(xs, x)
		ys = append(ys, target(x))
	}
	var last float64
	for epoch := 0; epoch < 400; epoch++ {
		last = m.TrainBatch(xs, ys, 1e-2)
	}
	if last > 0.01 {
		t.Fatalf("failed to fit linear function: mse %v", last)
	}
}

func TestLearnsNonlinearFunction(t *testing.T) {
	m := New([]int{1, 32, 32, 1}, 5)
	rng := rand.New(rand.NewSource(6))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 512; i++ {
		x := rng.Float64()*4 - 2
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(x))
	}
	var mse float64
	for epoch := 0; epoch < 600; epoch++ {
		mse = m.TrainBatch(xs, ys, 3e-3)
	}
	if mse > 0.02 {
		t.Fatalf("failed to fit sin: mse %v", mse)
	}
}

func TestGradientCheck(t *testing.T) {
	// Numeric gradient vs backprop on a tiny net.
	m := New([]int{2, 3, 1}, 7)
	x := []float64{0.3, -0.7}
	target := 0.42
	// Analytic gradient via a single TrainBatch with lr captured through
	// parameter delta is awkward; instead check that a training step
	// reduces loss for a small lr — a weaker but meaningful invariant —
	// and that numeric loss matches reported loss.
	lossBefore := sq(m.Predict(x) - target)
	reported := m.TrainBatch([][]float64{x}, []float64{target}, 1e-3)
	if math.Abs(reported-lossBefore) > 1e-9 {
		t.Fatalf("reported pre-update loss %v != %v", reported, lossBefore)
	}
	lossAfter := sq(m.Predict(x) - target)
	if lossAfter >= lossBefore {
		t.Fatalf("training step increased loss: %v -> %v", lossBefore, lossAfter)
	}
}

func sq(v float64) float64 { return v * v }

func TestCloneAndCopyWeights(t *testing.T) {
	m := New([]int{3, 8, 1}, 9)
	c := m.Clone()
	x := []float64{0.1, 0.2, 0.3}
	if c.Predict(x) != m.Predict(x) {
		t.Fatal("clone differs")
	}
	// Train the original; the clone must stay frozen.
	before := c.Predict(x)
	for i := 0; i < 50; i++ {
		m.TrainBatch([][]float64{x}, []float64{5}, 1e-2)
	}
	if c.Predict(x) != before {
		t.Fatal("clone aliases original weights")
	}
	// Refresh the target network.
	c.CopyWeightsFrom(m)
	if c.Predict(x) != m.Predict(x) {
		t.Fatal("CopyWeightsFrom did not sync")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := New([]int{4, 8, 1}, 11)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, -1, 0.5, 0.25}
	if got.Predict(x) != m.Predict(x) {
		t.Fatal("round trip changed predictions")
	}
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage must fail to load")
	}
}

func TestNumParams(t *testing.T) {
	m := New([]int{4, 8, 1}, 1)
	want := 4*8 + 8 + 8*1 + 1
	if got := m.NumParams(); got != want {
		t.Fatalf("params = %d, want %d", got, want)
	}
}

func BenchmarkForward502(b *testing.B) {
	m := New([]int{502, 64, 32, 1}, 1)
	x := make([]float64, 502)
	for i := range x {
		x[i] = float64(i%7) / 7
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}

func BenchmarkTrainBatch32(b *testing.B) {
	m := New([]int{502, 64, 32, 1}, 1)
	xs := make([][]float64, 32)
	ys := make([]float64, 32)
	for i := range xs {
		x := make([]float64, 502)
		for j := range x {
			x[j] = float64((i*j)%11) / 11
		}
		xs[i] = x
		ys[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainBatch(xs, ys, 1e-3)
	}
}
