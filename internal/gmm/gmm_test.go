package gmm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"watter/internal/order"
)

func sampleMixture(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		if rng.Float64() < 0.6 {
			out[i] = 100 + rng.NormFloat64()*15
		} else {
			out[i] = 300 + rng.NormFloat64()*30
		}
	}
	return out
}

func TestFitRecoversTwoModes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	samples := sampleMixture(rng, 4000)
	opt := DefaultFitOptions()
	opt.K = 2
	m, err := Fit(samples, opt)
	if err != nil {
		t.Fatal(err)
	}
	means := []float64{m.Components[0].Mean, m.Components[1].Mean}
	if means[0] > means[1] {
		means[0], means[1] = means[1], means[0]
	}
	if math.Abs(means[0]-100) > 10 {
		t.Fatalf("low mode mean %v, want ~100", means[0])
	}
	if math.Abs(means[1]-300) > 20 {
		t.Fatalf("high mode mean %v, want ~300", means[1])
	}
	// Mixture weights ~ 0.6 / 0.4.
	var wLow float64
	for _, c := range m.Components {
		if math.Abs(c.Mean-means[0]) < 1 {
			wLow = c.Weight
		}
	}
	if math.Abs(wLow-0.6) > 0.08 {
		t.Fatalf("low-mode weight %v, want ~0.6", wLow)
	}
}

func TestFitImprovesLikelihoodOverSingleGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := sampleMixture(rng, 2000)
	opt1 := DefaultFitOptions()
	opt1.K = 1
	m1, err := Fit(samples, opt1)
	if err != nil {
		t.Fatal(err)
	}
	opt2 := DefaultFitOptions()
	opt2.K = 2
	m2, err := Fit(samples, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.LogLikelihood(samples) <= m1.LogLikelihood(samples) {
		t.Fatalf("K=2 LL %v should beat K=1 LL %v on bimodal data",
			m2.LogLikelihood(samples), m1.LogLikelihood(samples))
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, DefaultFitOptions()); err == nil {
		t.Fatal("empty sample set must error")
	}
	if _, err := Fit([]float64{1, math.NaN()}, DefaultFitOptions()); err == nil {
		t.Fatal("NaN sample must error")
	}
	if _, err := Fit([]float64{math.Inf(1)}, DefaultFitOptions()); err == nil {
		t.Fatal("Inf sample must error")
	}
	// Fewer samples than K is allowed (K clamps).
	m, err := Fit([]float64{5, 6}, FitOptions{K: 8})
	if err != nil || len(m.Components) > 2 {
		t.Fatalf("K clamp failed: %v, %v", m, err)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := Fit(sampleMixture(rng, 800), DefaultFitOptions())
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return m.CDF(lo) <= m.CDF(hi)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if m.CDF(-1e9) > 1e-9 || m.CDF(1e9) < 1-1e-9 {
		t.Fatalf("CDF limits wrong: %v, %v", m.CDF(-1e9), m.CDF(1e9))
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := Fit(sampleMixture(rng, 500), DefaultFitOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoid over a wide support.
	var sum float64
	lo, hi, steps := -500.0, 1000.0, 30000
	dx := (hi - lo) / float64(steps)
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		sum += w * m.PDF(lo+float64(i)*dx)
	}
	sum *= dx
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("pdf integrates to %v", sum)
	}
}

func TestOptimalThresholdMaximizesGain(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, err := Fit(sampleMixture(rng, 1500), DefaultFitOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := 500.0
	star := OptimalThreshold(m, p)
	if star < 0 || star > p {
		t.Fatalf("θ* = %v outside [0, %v]", star, p)
	}
	best := Gain(m, p, star)
	for i := 0; i <= 1000; i++ {
		th := p * float64(i) / 1000
		if g := Gain(m, p, th); g > best+1e-6 {
			t.Fatalf("grid point θ=%v has gain %v > optimizer's %v at θ*=%v", th, g, best, star)
		}
	}
}

func TestOptimalThresholdDegenerate(t *testing.T) {
	m := &Model{Components: []Component{{Weight: 1, Mean: 100, StdDev: 10}}}
	if got := OptimalThreshold(m, 0); got != 0 {
		t.Fatalf("p=0 must give 0, got %v", got)
	}
	if got := OptimalThreshold(m, -5); got != 0 {
		t.Fatalf("negative p must give 0, got %v", got)
	}
}

func TestGradientMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, err := Fit(sampleMixture(rng, 1000), DefaultFitOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := 600.0
	golden := OptimalThreshold(m, p)
	grad := GradientThreshold(m, p, 4000, 0)
	// Compare achieved gains (θ positions can differ on flat plateaus).
	if Gain(m, p, golden)-Gain(m, p, grad) > 0.02*Gain(m, p, golden) {
		t.Fatalf("gradient ascent gain %v far below golden %v",
			Gain(m, p, grad), Gain(m, p, golden))
	}
}

func TestThresholdSourceCachesAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := Fit(sampleMixture(rng, 500), DefaultFitOptions())
	if err != nil {
		t.Fatal(err)
	}
	src := NewThresholdSource(m)
	o := &order.Order{Release: 0, Deadline: 480, DirectCost: 300} // p = 180
	th1 := src.Threshold(o, 0)
	th2 := src.Threshold(o, 50)
	if th1 != th2 {
		t.Fatalf("cache miss changed threshold: %v vs %v", th1, th2)
	}
	if th1 < 0 || th1 > o.Penalty() {
		t.Fatalf("threshold %v outside [0, p]", th1)
	}
	hopeless := &order.Order{Release: 0, Deadline: 100, DirectCost: 300} // p < 0
	if src.Threshold(hopeless, 0) != 0 {
		t.Fatal("negative-penalty order must get θ=0")
	}
}

func TestMeanAndWeights(t *testing.T) {
	m := &Model{Components: []Component{
		{Weight: 0.25, Mean: 0, StdDev: 1},
		{Weight: 0.75, Mean: 100, StdDev: 1},
	}}
	if got := m.Mean(); math.Abs(got-75) > 1e-12 {
		t.Fatalf("mixture mean = %v", got)
	}
}

func BenchmarkFitK3(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	samples := sampleMixture(rng, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(samples, DefaultFitOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalThreshold(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m, err := Fit(sampleMixture(rng, 1000), DefaultFitOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimalThreshold(m, 200+float64(i%100))
	}
}
