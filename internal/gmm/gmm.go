// Package gmm implements the distribution-fitting half of WATTER's
// threshold derivation (paper Section V-C): a one-dimensional Gaussian
// Mixture Model fitted with Expectation-Maximization over historical extra
// times, its CDF F, and the optimizer that picks the expected threshold
// θ* = argmax (p - θ)·F(θ) for each order (Algorithm 3).
package gmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Component is a single weighted Gaussian.
type Component struct {
	Weight float64
	Mean   float64
	StdDev float64
}

// Model is a mixture of Gaussians over a scalar random variable.
type Model struct {
	Components []Component
}

// FitOptions controls the EM fit.
type FitOptions struct {
	// K is the number of mixture components (paper-style default 3).
	K int
	// MaxIters bounds EM iterations.
	MaxIters int
	// Tol stops EM when the log-likelihood improves by less than this.
	Tol float64
	// Seed makes the k-means-style initialization deterministic.
	Seed int64
	// MinStdDev floors component spread to keep the CDF well conditioned.
	MinStdDev float64
}

// DefaultFitOptions returns K=3, 200 iterations, 1e-6 tolerance.
func DefaultFitOptions() FitOptions {
	return FitOptions{K: 3, MaxIters: 200, Tol: 1e-6, Seed: 1, MinStdDev: 1e-3}
}

// Fit runs EM on the samples and returns the fitted mixture.
func Fit(samples []float64, opt FitOptions) (*Model, error) {
	if opt.K <= 0 {
		opt.K = 3
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 200
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-6
	}
	if opt.MinStdDev <= 0 {
		opt.MinStdDev = 1e-3
	}
	if len(samples) == 0 {
		return nil, errors.New("gmm: no samples")
	}
	if len(samples) < opt.K {
		opt.K = len(samples)
	}
	for _, x := range samples {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("gmm: invalid sample %v", x)
		}
	}

	comps := initComponents(samples, opt)
	n := len(samples)
	k := len(comps)
	resp := make([]float64, n*k)
	prevLL := math.Inf(-1)

	for iter := 0; iter < opt.MaxIters; iter++ {
		// E-step: responsibilities and log-likelihood.
		var ll float64
		for i, x := range samples {
			var sum float64
			for j, c := range comps {
				v := c.Weight * gaussPDF(x, c.Mean, c.StdDev)
				resp[i*k+j] = v
				sum += v
			}
			if sum <= 0 {
				// Degenerate point: spread responsibility uniformly.
				for j := range comps {
					resp[i*k+j] = 1 / float64(k)
				}
				sum = 1
				ll += math.Log(1e-300)
			} else {
				for j := range comps {
					resp[i*k+j] /= sum
				}
				ll += math.Log(sum)
			}
		}
		// M-step.
		for j := range comps {
			var nk, mean float64
			for i, x := range samples {
				nk += resp[i*k+j]
				mean += resp[i*k+j] * x
			}
			if nk < 1e-10 {
				// Dead component: re-seed on a random sample.
				rng := rand.New(rand.NewSource(opt.Seed + int64(iter*k+j)))
				comps[j] = Component{Weight: 1 / float64(k), Mean: samples[rng.Intn(n)], StdDev: stddevAll(samples)}
				continue
			}
			mean /= nk
			var vr float64
			for i, x := range samples {
				d := x - mean
				vr += resp[i*k+j] * d * d
			}
			sd := math.Sqrt(vr / nk)
			if sd < opt.MinStdDev {
				sd = opt.MinStdDev
			}
			comps[j] = Component{Weight: nk / float64(n), Mean: mean, StdDev: sd}
		}
		if ll-prevLL < opt.Tol && iter > 0 {
			break
		}
		prevLL = ll
	}
	normalizeWeights(comps)
	return &Model{Components: comps}, nil
}

// initComponents seeds means on sorted-quantile centers (deterministic,
// k-means++-ish spread without randomness in the common path).
func initComponents(samples []float64, opt FitOptions) []Component {
	k := opt.K
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	sd := stddevAll(samples)
	if sd < opt.MinStdDev {
		sd = opt.MinStdDev
	}
	comps := make([]Component, k)
	for j := 0; j < k; j++ {
		q := (float64(j) + 0.5) / float64(k)
		comps[j] = Component{
			Weight: 1 / float64(k),
			Mean:   s[int(q*float64(len(s)-1))],
			StdDev: sd,
		}
	}
	return comps
}

func normalizeWeights(comps []Component) {
	var sum float64
	for _, c := range comps {
		sum += c.Weight
	}
	if sum <= 0 {
		for j := range comps {
			comps[j].Weight = 1 / float64(len(comps))
		}
		return
	}
	for j := range comps {
		comps[j].Weight /= sum
	}
}

func stddevAll(xs []float64) float64 {
	if len(xs) < 2 {
		return 1
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var vr float64
	for _, x := range xs {
		d := x - mean
		vr += d * d
	}
	return math.Sqrt(vr / float64(len(xs)))
}

func gaussPDF(x, mu, sd float64) float64 {
	z := (x - mu) / sd
	return math.Exp(-0.5*z*z) / (sd * math.Sqrt2 * math.SqrtPi)
}

// PDF evaluates the mixture density at x.
func (m *Model) PDF(x float64) float64 {
	var p float64
	for _, c := range m.Components {
		p += c.Weight * gaussPDF(x, c.Mean, c.StdDev)
	}
	return p
}

// CDF evaluates the mixture cumulative distribution F(x).
func (m *Model) CDF(x float64) float64 {
	var p float64
	for _, c := range m.Components {
		z := (x - c.Mean) / (c.StdDev * math.Sqrt2)
		p += c.Weight * 0.5 * (1 + math.Erf(z))
	}
	return p
}

// Mean returns the mixture mean.
func (m *Model) Mean() float64 {
	var mu float64
	for _, c := range m.Components {
		mu += c.Weight * c.Mean
	}
	return mu
}

// LogLikelihood evaluates the total log-likelihood of samples under m.
func (m *Model) LogLikelihood(samples []float64) float64 {
	var ll float64
	for _, x := range samples {
		p := m.PDF(x)
		if p < 1e-300 {
			p = 1e-300
		}
		ll += math.Log(p)
	}
	return ll
}
