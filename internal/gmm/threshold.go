package gmm

import (
	"math"
	"sync"

	"watter/internal/order"
)

// Gain is the reduced objective of Eq. 8 for a single order: the expected
// loss-space gain (p - θ)·F(θ) of dispatching with threshold θ.
func Gain(m *Model, p, theta float64) float64 {
	return (p - theta) * m.CDF(theta)
}

// OptimalThreshold maximizes (p - θ)·F(θ) over θ in [0, p] (Algorithm 3).
// A coarse deterministic grid brackets the maximum, then golden-section
// search refines it; the paper's convexity analysis (Section V-B) makes the
// objective unimodal on the support, and the grid stage protects against
// multimodal corner cases from extreme mixtures.
func OptimalThreshold(m *Model, p float64) float64 {
	if p <= 0 {
		return 0
	}
	const gridN = 96
	bestI, bestV := 0, math.Inf(-1)
	for i := 0; i <= gridN; i++ {
		th := p * float64(i) / gridN
		if v := Gain(m, p, th); v > bestV {
			bestV = v
			bestI = i
		}
	}
	lo := p * float64(maxInt(bestI-1, 0)) / gridN
	hi := p * float64(minInt(bestI+1, gridN)) / gridN
	return goldenMax(func(th float64) float64 { return Gain(m, p, th) }, lo, hi, 1e-6*p+1e-9)
}

// goldenMax runs golden-section search for the maximum of f on [lo, hi].
func goldenMax(f func(float64) float64, lo, hi, tol float64) float64 {
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc >= fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// GradientThreshold is the paper's literal optimizer: projected gradient
// ascent on (p - θ)·F(θ) with numeric derivative. Exposed for the ablation
// bench comparing it against the golden-section solver; both land on the
// same optimum for unimodal objectives.
func GradientThreshold(m *Model, p float64, steps int, lr float64) float64 {
	if p <= 0 {
		return 0
	}
	if steps <= 0 {
		steps = 100
	}
	if lr <= 0 {
		lr = 0.1 * p
	}
	h := 1e-5 * p
	if h <= 0 {
		h = 1e-6
	}
	// Multi-start protects against plateaus far from the optimum; the
	// objective is unimodal but its gradient is tiny in both tails.
	bestTheta, bestGain := 0.0, math.Inf(-1)
	for _, start := range []float64{0.2, 0.5, 0.8} {
		theta := start * p
		for i := 0; i < steps; i++ {
			grad := (Gain(m, p, theta+h) - Gain(m, p, theta-h)) / (2 * h)
			step := lr / (1 + float64(i)/20)
			theta += step * math.Tanh(grad) // bounded step, sign-faithful
			if theta < 0 {
				theta = 0
			}
			if theta > p {
				theta = p
			}
		}
		if g := Gain(m, p, theta); g > bestGain {
			bestGain = g
			bestTheta = theta
		}
	}
	return bestTheta
}

// ThresholdSource adapts a fitted model into the strategy.ThresholdSource
// interface: each order's threshold is the optimizer's θ*(p(i)). Results
// are memoized on the penalty value (quantized) because many orders share
// penalty magnitudes. Safe for concurrent use: trained bundles are shared
// across parallel replicate runs.
type ThresholdSource struct {
	Model *Model
	mu    sync.Mutex
	cache map[int64]float64
}

// NewThresholdSource wraps a fitted model.
func NewThresholdSource(m *Model) *ThresholdSource {
	return &ThresholdSource{Model: m, cache: make(map[int64]float64)}
}

// Threshold returns θ*(p(i)) for the order (Algorithm 3 lines 3-6).
func (s *ThresholdSource) Threshold(o *order.Order, _ float64) float64 {
	p := o.Penalty()
	if p <= 0 {
		return 0
	}
	key := int64(p * 16) // ~62 ms quantization: plenty for thresholds
	s.mu.Lock()
	v, ok := s.cache[key]
	s.mu.Unlock()
	if ok {
		return v
	}
	// OptimalThreshold is deterministic in (model, p), so concurrent misses
	// on one key compute the same value; last store wins harmlessly.
	v = OptimalThreshold(s.Model, p)
	s.mu.Lock()
	s.cache[key] = v
	s.mu.Unlock()
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
