package order

import (
	"math"
	"testing"
	"testing/quick"
)

func mkOrder(id int, release, direct, tauScale, eta float64) *Order {
	return &Order{
		ID:         id,
		Pickup:     0,
		Dropoff:    1,
		Riders:     1,
		Release:    release,
		Deadline:   release + tauScale*direct,
		WaitLimit:  eta * direct,
		DirectCost: direct,
	}
}

func TestMaxResponseAndPenalty(t *testing.T) {
	o := mkOrder(1, 100, 300, 1.6, 0.8)
	want := (1.6 - 1) * 300
	if got := o.MaxResponse(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MaxResponse = %v, want %v", got, want)
	}
	if o.Penalty() != o.MaxResponse() {
		t.Fatal("penalty must equal max response time")
	}
}

func TestTimedOutAndExpired(t *testing.T) {
	o := mkOrder(1, 100, 300, 1.6, 0.8) // wait limit 240, deadline 580
	if o.TimedOut(100 + 240) {
		t.Fatal("not timed out exactly at the limit")
	}
	if !o.TimedOut(100 + 241) {
		t.Fatal("timed out past the limit")
	}
	if o.Expired(280) {
		t.Fatal("280+300 = 580 <= deadline: not expired")
	}
	if !o.Expired(281) {
		t.Fatal("281+300 > 580: expired")
	}
}

func TestValidate(t *testing.T) {
	good := mkOrder(1, 0, 100, 1.5, 0.5)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid order rejected: %v", err)
	}
	cases := []*Order{
		{ID: 2, Riders: 0, Deadline: 10},
		{ID: 3, Riders: 1, Release: 10, Deadline: 5},
		{ID: 4, Riders: 1, Deadline: 10, WaitLimit: -1},
		{ID: 5, Riders: 1, Deadline: 10, DirectCost: -2},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("order %d should be invalid", c.ID)
		}
	}
}

func TestRoutePlanLookups(t *testing.T) {
	plan := &RoutePlan{
		Stops: []Stop{
			{Node: 0, Kind: PickupStop, OrderID: 7},
			{Node: 1, Kind: PickupStop, OrderID: 9},
			{Node: 2, Kind: DropoffStop, OrderID: 9},
			{Node: 3, Kind: DropoffStop, OrderID: 7},
		},
		Arrive: []float64{0, 60, 120, 200},
		Cost:   200,
	}
	if st, ok := plan.ServiceTime(7); !ok || st != 200 {
		t.Fatalf("ServiceTime(7) = %v,%v", st, ok)
	}
	if st, ok := plan.ServiceTime(9); !ok || st != 120 {
		t.Fatalf("ServiceTime(9) = %v,%v", st, ok)
	}
	if _, ok := plan.ServiceTime(42); ok {
		t.Fatal("unknown order must not resolve")
	}
	if pt, ok := plan.PickupTime(9); !ok || pt != 60 {
		t.Fatalf("PickupTime(9) = %v,%v", pt, ok)
	}
}

func TestGroupAccounting(t *testing.T) {
	o1 := mkOrder(1, 0, 100, 2.0, 1.0)
	o2 := mkOrder(2, 10, 150, 2.0, 1.0)
	g := &Group{
		Orders: []*Order{o1, o2},
		Plan: &RoutePlan{
			Stops: []Stop{
				{Kind: PickupStop, OrderID: 1},
				{Kind: PickupStop, OrderID: 2},
				{Kind: DropoffStop, OrderID: 2},
				{Kind: DropoffStop, OrderID: 1},
			},
			Arrive: []float64{0, 30, 190, 240},
			Cost:   240,
		},
	}
	if g.Size() != 2 || g.Riders() != 2 {
		t.Fatalf("size/riders = %d/%d", g.Size(), g.Riders())
	}
	now := 20.0
	ex := g.ExtraTimes(now, 1, 1)
	// o1: detour 240-100=140, response 20-0=20 => 160
	if math.Abs(ex[1]-160) > 1e-9 {
		t.Fatalf("extra(o1) = %v", ex[1])
	}
	// o2: detour 190-150=40, response 20-10=10 => 50
	if math.Abs(ex[2]-50) > 1e-9 {
		t.Fatalf("extra(o2) = %v", ex[2])
	}
	if avg := g.AvgExtraTime(now, 1, 1); math.Abs(avg-105) > 1e-9 {
		t.Fatalf("avg = %v", avg)
	}
	// Alpha/beta weighting.
	ex = g.ExtraTimes(now, 0, 1)
	if ex[1] != 20 || ex[2] != 10 {
		t.Fatalf("beta-only extra = %v", ex)
	}
}

func TestGroupKeyCanonical(t *testing.T) {
	a := &Group{Orders: []*Order{{ID: 5}, {ID: 2}, {ID: 19}}}
	b := &Group{Orders: []*Order{{ID: 19}, {ID: 5}, {ID: 2}}}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := &Group{Orders: []*Order{{ID: 5}, {ID: 2}}}
	if a.Key() == c.Key() {
		t.Fatal("different groups share a key")
	}
	// Key must not be ambiguous under concatenation (1,23 vs 12,3).
	d := &Group{Orders: []*Order{{ID: 1}, {ID: 23}}}
	e := &Group{Orders: []*Order{{ID: 12}, {ID: 3}}}
	if d.Key() == e.Key() {
		t.Fatal("ambiguous keys")
	}
}

func TestGroupKeyProperty(t *testing.T) {
	f := func(ids []int16) bool {
		if len(ids) == 0 {
			return true
		}
		orders := make([]*Order, len(ids))
		for i, id := range ids {
			orders[i] = &Order{ID: int(id)}
		}
		g1 := &Group{Orders: orders}
		rev := make([]*Order, len(orders))
		for i := range orders {
			rev[i] = orders[len(orders)-1-i]
		}
		g2 := &Group{Orders: rev}
		return g1.Key() == g2.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerIdle(t *testing.T) {
	w := &Worker{ID: 1, Capacity: 4, FreeAt: 100}
	if w.IdleAt(99) {
		t.Fatal("busy before FreeAt")
	}
	if !w.IdleAt(100) || !w.IdleAt(200) {
		t.Fatal("idle from FreeAt onward")
	}
}

func TestEmptyGroupAvg(t *testing.T) {
	g := &Group{}
	if g.AvgExtraTime(0, 1, 1) != 0 {
		t.Fatal("empty group average must be 0")
	}
}
