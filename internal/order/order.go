// Package order defines the domain model of the METRS problem: orders,
// workers, groups and planned routes. It is deliberately free of algorithm
// logic — the pooling framework, strategies and baselines all operate on
// these types.
package order

import (
	"fmt"
	"sort"

	"watter/internal/geo"
)

// Order is a ride request o(i) = <lp, ld, c, t, tau, eta> (paper Def. 1).
type Order struct {
	ID      int
	Pickup  geo.NodeID // lp
	Dropoff geo.NodeID // ld
	Riders  int        // c, number of passengers in the request
	Release float64    // t, seconds since simulation start

	// Deadline is tau: the latest acceptable drop-off time.
	Deadline float64
	// WaitLimit is eta: the preferred maximum waiting time before the
	// platform responds. Exceeding it does not reject the order outright
	// (per the paper it merely forces dispatch-or-reject at the next
	// opportunity).
	WaitLimit float64
	// DirectCost caches cost(lp, ld), the shortest travel time of the
	// order alone. Filled once at admission; every feasibility and metric
	// computation reuses it.
	DirectCost float64
}

// MaxResponse returns the maximum response time the order can absorb before
// its deadline constraint necessarily fails: tau - t - cost(lp, ld).
func (o *Order) MaxResponse() float64 { return o.Deadline - o.Release - o.DirectCost }

// Penalty returns the METRS rejection penalty p(i), set to the maximum
// response time (paper Section II-B).
func (o *Order) Penalty() float64 { return o.MaxResponse() }

// TimedOut reports whether the order has waited longer than its preferred
// limit eta at time now.
func (o *Order) TimedOut(now float64) bool { return now-o.Release > o.WaitLimit }

// Expired reports whether the order can no longer meet its deadline even if
// dispatched alone right now.
func (o *Order) Expired(now float64) bool { return now+o.DirectCost > o.Deadline }

// Validate returns an error when the order's fields are inconsistent.
func (o *Order) Validate() error {
	switch {
	case o.Riders < 1:
		return fmt.Errorf("order %d: riders %d < 1", o.ID, o.Riders)
	case o.Deadline < o.Release:
		return fmt.Errorf("order %d: deadline %.1f before release %.1f", o.ID, o.Deadline, o.Release)
	case o.WaitLimit < 0:
		return fmt.Errorf("order %d: negative wait limit %.1f", o.ID, o.WaitLimit)
	case o.DirectCost < 0:
		return fmt.Errorf("order %d: negative direct cost %.1f", o.ID, o.DirectCost)
	}
	return nil
}

// StopKind distinguishes pickups from dropoffs in a route.
type StopKind int8

const (
	// PickupStop boards the order's riders.
	PickupStop StopKind = iota
	// DropoffStop delivers the order's riders.
	DropoffStop
)

func (k StopKind) String() string {
	if k == PickupStop {
		return "pickup"
	}
	return "dropoff"
}

// Stop is a single location visit in a planned route.
type Stop struct {
	Node    geo.NodeID
	Kind    StopKind
	OrderID int
	Riders  int
}

// RoutePlan is a feasible route L for a group of orders, starting at
// Stops[0] at time zero (offsets are relative to route start).
type RoutePlan struct {
	Stops []Stop
	// Arrive[i] is the travel-time offset (seconds from route start) at
	// which Stops[i] is reached. Arrive[0] == 0.
	Arrive []float64
	// Cost is T(L), the total travel time of the route: Arrive[last].
	Cost float64
}

// ServiceTime returns T(L(i)) for the given order: the offset from route
// start at which the order is dropped off. The boolean is false when the
// order is not part of the plan.
func (r *RoutePlan) ServiceTime(orderID int) (float64, bool) {
	for i, s := range r.Stops {
		if s.OrderID == orderID && s.Kind == DropoffStop {
			return r.Arrive[i], true
		}
	}
	return 0, false
}

// PickupTime returns the offset at which the order is picked up.
func (r *RoutePlan) PickupTime(orderID int) (float64, bool) {
	for i, s := range r.Stops {
		if s.OrderID == orderID && s.Kind == PickupStop {
			return r.Arrive[i], true
		}
	}
	return 0, false
}

// Group is a set of orders that share one route (paper's g) together with
// the minimal-cost feasible plan found for them.
type Group struct {
	Orders []*Order
	Plan   *RoutePlan
}

// Size returns |g|.
func (g *Group) Size() int { return len(g.Orders) }

// Riders returns the total rider count of the group.
func (g *Group) Riders() int {
	total := 0
	for _, o := range g.Orders {
		total += o.Riders
	}
	return total
}

// IDs returns the sorted order IDs of the group; used as a canonical key.
func (g *Group) IDs() []int {
	ids := make([]int, len(g.Orders))
	for i, o := range g.Orders {
		ids[i] = o.ID
	}
	sort.Ints(ids)
	return ids
}

// Key returns a canonical string key for the group's member set.
func (g *Group) Key() string {
	ids := g.IDs()
	key := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		key = appendInt(key, id)
		key = append(key, ',')
	}
	return string(key)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// ExtraTime returns the order's extra time t_e = alpha*t_d + beta*t_r
// (paper Def. 6) given its service time st (offset from route start):
// detour t_d = st - cost(lp, ld), response t_r = now - t(i). Every
// extra-time computation in the system — Group.ExtraTimes/AvgExtraTime,
// the pool's cost-only candidate comparison, the training harvest — goes
// through this one function so the bits always agree.
func (o *Order) ExtraTime(st, now, alpha, beta float64) float64 {
	detour := st - o.DirectCost
	response := now - o.Release
	return alpha*detour + beta*response
}

// ExtraTimes returns, for a group dispatched at time `now`, the per-order
// extra time (paper Def. 6) keyed by order ID.
func (g *Group) ExtraTimes(now, alpha, beta float64) map[int]float64 {
	out := make(map[int]float64, len(g.Orders))
	for _, o := range g.Orders {
		st, ok := g.Plan.ServiceTime(o.ID)
		if !ok {
			continue
		}
		out[o.ID] = o.ExtraTime(st, now, alpha, beta)
	}
	return out
}

// AvgExtraTime returns the group's average extra time at dispatch time now
// (the t̄e used by the threshold-based strategy, Algorithm 2). It
// accumulates in g.Orders order — never over a map — so the value is a
// deterministic function of the group; the pool's plan cache compares
// these sums bit for bit between cached and freshly planned candidates.
func (g *Group) AvgExtraTime(now, alpha, beta float64) float64 {
	if len(g.Orders) == 0 {
		return 0
	}
	var sum float64
	for _, o := range g.Orders {
		st, ok := g.Plan.ServiceTime(o.ID)
		if !ok {
			continue
		}
		sum += o.ExtraTime(st, now, alpha, beta)
	}
	return sum / float64(len(g.Orders))
}

// Worker is a driver/vehicle w(j) = <l, k, a> (paper Def. 2). A worker
// serves one group at a time; Busy tracks the availability timeline.
type Worker struct {
	ID       int
	Loc      geo.NodeID // current location (last drop-off when busy)
	Capacity int        // k, max simultaneous riders
	// FreeAt is the simulation time at which the worker becomes idle
	// again. A worker is idle at time t iff FreeAt <= t.
	FreeAt float64
	// TravelCost accumulates the worker's total driving seconds; feeds the
	// Unified Cost metric.
	TravelCost float64
	// Served counts delivered groups.
	Served int
}

// IdleAt reports whether the worker is available at time t.
func (w *Worker) IdleAt(t float64) bool { return w.FreeAt <= t }
