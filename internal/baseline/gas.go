package baseline

import (
	"math"
	"sort"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/roadnet"
	"watter/internal/sim"
)

// GAS is the batch-based baseline: orders accumulate in fixed windows
// (5 seconds in the paper); at each window boundary, every idle worker
// grows an additive tree of feasible order groups (a group is expanded by
// adding one order at a time while a feasible route exists) and the
// (worker, group) pair with maximum utility is dispatched, repeating until
// no assignable group remains. Utility follows the SRPQ objective: the
// revenue proxy of the served orders (sum of their direct travel costs).
//
// Orders that stay unassigned carry over to later batches until their
// deadline passes, at which point they are rejected.
type GAS struct {
	// BatchSeconds is the window size; the paper uses 5 s.
	BatchSeconds float64
	// CandidateOrders bounds the per-worker order candidate set (nearest
	// by pickup); the additive tree is exponential in this number. 0
	// defaults to 10.
	CandidateOrders int
	// CandidateWorkers bounds how many idle workers enumerate trees per
	// batch round; 0 defaults to all idle workers.
	CandidateWorkers int

	env       *sim.Env
	pending   map[int]*order.Order
	nextBatch float64

	// Batching scratch for worker-to-pickup cost rows.
	candOrders []*order.Order
	pickupBuf  []geo.NodeID
	costBuf    []float64
}

// Name implements sim.Algorithm.
func (g *GAS) Name() string { return "GAS" }

// Init implements sim.Algorithm.
func (g *GAS) Init(env *sim.Env) {
	g.env = env
	g.pending = make(map[int]*order.Order)
	if g.BatchSeconds <= 0 {
		g.BatchSeconds = 5
	}
	if g.CandidateOrders <= 0 {
		g.CandidateOrders = 10
	}
	g.nextBatch = g.BatchSeconds
}

// OnOrder implements sim.Algorithm: orders wait for the batch boundary.
func (g *GAS) OnOrder(o *order.Order, now float64) {
	if o.Expired(now) {
		g.env.Reject(o, now)
		return
	}
	g.pending[o.ID] = o
}

// OnTick implements sim.Algorithm.
func (g *GAS) OnTick(now float64) {
	for now >= g.nextBatch {
		g.processBatch(g.nextBatch)
		g.nextBatch += g.BatchSeconds
	}
}

// Finish implements sim.Algorithm.
func (g *GAS) Finish(now float64) {
	g.processBatch(now)
	ids := g.pendingIDs()
	for _, id := range ids {
		g.env.Reject(g.pending[id], now)
		delete(g.pending, id)
	}
}

func (g *GAS) pendingIDs() []int {
	ids := make([]int, 0, len(g.pending))
	for id := range g.pending {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// processBatch runs the per-worker additive-tree enumeration and the
// greedy max-utility assignment loop.
func (g *GAS) processBatch(now float64) {
	// Expire stale pending orders first.
	for _, id := range g.pendingIDs() {
		if o := g.pending[id]; o.Expired(now) {
			g.env.Reject(o, now)
			delete(g.pending, id)
		}
	}
	for len(g.pending) > 0 {
		bestWorker, bestGroup, bestUtility := g.bestAssignment(now)
		if bestGroup == nil || bestUtility <= 0 {
			return // carry the remainder to the next batch
		}
		if !g.env.DispatchGroupWith(bestWorker, bestGroup, now) {
			return // should not happen: the worker was idle this round
		}
		for _, o := range bestGroup.Orders {
			delete(g.pending, o.ID)
		}
	}
}

// bestAssignment returns the highest-utility feasible group over idle
// workers. Each idle worker enumerates its additive tree over its nearest
// pending orders.
func (g *GAS) bestAssignment(now float64) (*order.Worker, *order.Group, float64) {
	pendingIDs := g.pendingIDs()
	if len(pendingIDs) == 0 {
		return nil, nil, 0
	}
	var (
		bestWorker  *order.Worker
		bestGroup   *order.Group
		bestUtility = math.Inf(-1)
	)
	tried := 0
	for _, w := range g.env.Workers {
		if !w.IdleAt(now) {
			continue
		}
		if g.CandidateWorkers > 0 && tried >= g.CandidateWorkers {
			break
		}
		tried++
		w := w
		cands := g.workerCandidates(w, pendingIDs, now)
		g.expandTree(w, cands, now, func(grp *order.Group) {
			u := utility(grp)
			if u > bestUtility+1e-9 {
				bestUtility = u
				bestGroup = grp
				bestWorker = w
			}
		})
	}
	return bestWorker, bestGroup, bestUtility
}

// workerCandidates returns the worker's nearest pending orders by pickup.
// All pickup costs for one worker are resolved in a single batched
// many-to-many call (one pruned search on a Graph-backed network instead of
// one full Dijkstra per pending order); unreachable pickups are dropped —
// no feasible route to them can exist for this worker.
func (g *GAS) workerCandidates(w *order.Worker, pendingIDs []int, now float64) []*order.Order {
	g.candOrders = g.candOrders[:0]
	g.pickupBuf = g.pickupBuf[:0]
	for _, id := range pendingIDs {
		o := g.pending[id]
		if o.Riders > w.Capacity {
			continue
		}
		g.candOrders = append(g.candOrders, o)
		g.pickupBuf = append(g.pickupBuf, o.Pickup)
	}
	if len(g.candOrders) == 0 {
		return nil
	}
	if cap(g.costBuf) < len(g.pickupBuf) {
		g.costBuf = make([]float64, len(g.pickupBuf))
	}
	g.costBuf = g.costBuf[:len(g.pickupBuf)]
	src := [1]geo.NodeID{w.Loc}
	roadnet.FillCostMatrix(g.env.Net, src[:], g.pickupBuf, g.costBuf)

	type scored struct {
		o *order.Order
		c float64
	}
	var s []scored
	for i, o := range g.candOrders {
		if math.IsInf(g.costBuf[i], 1) {
			continue
		}
		s = append(s, scored{o, g.costBuf[i]})
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].c != s[j].c {
			return s[i].c < s[j].c
		}
		return s[i].o.ID < s[j].o.ID
	})
	if len(s) > g.CandidateOrders {
		s = s[:g.CandidateOrders]
	}
	out := make([]*order.Order, len(s))
	for i, x := range s {
		out[i] = x.o
	}
	return out
}

// expandTree grows groups additively: every feasible group (with a route
// anchored at the worker's location) is visited; children add one more
// candidate order. Infeasible nodes prune their whole subtree — the
// additive-tree property that a superset of an infeasible group stays
// infeasible for the same worker holds because adding stops never shortens
// any member's service time.
func (g *GAS) expandTree(w *order.Worker, cands []*order.Order, now float64, visit func(*order.Group)) {
	var members []*order.Order
	var rec func(start int, riders int)
	rec = func(start, riders int) {
		for i := start; i < len(cands); i++ {
			o := cands[i]
			if riders+o.Riders > w.Capacity {
				continue
			}
			members = append(members, o)
			plan, ok := g.env.Planner.PlanGroupFrom(members, now, w.Capacity, w.Loc)
			if ok {
				grp := &order.Group{Orders: append([]*order.Order(nil), members...), Plan: plan}
				visit(grp)
				if len(members) < w.Capacity {
					rec(i+1, riders+o.Riders)
				}
			}
			members = members[:len(members)-1]
		}
	}
	rec(0, 0)
}

// utility is the SRPQ revenue proxy: total direct cost of served orders.
func utility(g *order.Group) float64 {
	var u float64
	for _, o := range g.Orders {
		u += o.DirectCost
	}
	return u
}
