package baseline

import (
	"math"
	"math/rand"
	"testing"

	"watter/internal/order"
	"watter/internal/roadnet"
	"watter/internal/sim"
)

func testEnv(m int) (*sim.Env, *roadnet.GridCity) {
	net := roadnet.NewGridCity(20, 20, 100, 10)
	rng := rand.New(rand.NewSource(9))
	var workers []*order.Worker
	for i := 0; i < m; i++ {
		workers = append(workers, &order.Worker{
			ID: i + 1, Loc: net.Node(rng.Intn(20), rng.Intn(20)), Capacity: 4,
		})
	}
	return sim.NewEnv(net, workers, sim.DefaultConfig()), net
}

func corridorOrders(net *roadnet.GridCity, n int, tau float64) []*order.Order {
	rng := rand.New(rand.NewSource(4))
	var out []*order.Order
	for i := 0; i < n; i++ {
		// Each burst of five shares one row, so its members overlap.
		y := (i / 5 * 3) % 20
		x := rng.Intn(4)
		pu, do := net.Node(x, y), net.Node(x+8, y)
		direct := net.Cost(pu, do)
		// Bursty arrivals: groups of five share one release instant, so
		// batch algorithms see co-pending orders.
		rel := float64(i / 5 * 30)
		out = append(out, &order.Order{
			ID: i + 1, Pickup: pu, Dropoff: do, Riders: 1,
			Release: rel, Deadline: rel + tau*direct, WaitLimit: 0.8 * direct,
			DirectCost: direct,
		})
	}
	return out
}

func TestGDPServesAndAccounts(t *testing.T) {
	env, net := testEnv(12)
	orders := corridorOrders(net, 60, 2.0)
	m := sim.Run(env, &GDP{}, orders, sim.RunOptions{TickEvery: 10})
	if m.Served+m.Rejected != len(orders) {
		t.Fatalf("accounting: %+v", m)
	}
	// GDP rejects orders whose nearest feasible worker is farther than
	// the deadline slack allows — the paper's core GDP weakness — so the
	// bar here is only a sanity floor.
	if m.ServiceRate() < 0.3 {
		t.Fatalf("GDP rate %.2f even with a corridor workload", m.ServiceRate())
	}
	if m.WorkerTravel <= 0 {
		t.Fatal("no travel recorded")
	}
	// GDP responses are immediate.
	if m.ResponseSum != 0 {
		t.Fatalf("GDP response sum %v, want 0", m.ResponseSum)
	}
}

func TestGDPRejectsImpossible(t *testing.T) {
	env, net := testEnv(1)
	o := &order.Order{
		ID: 1, Pickup: net.Node(0, 0), Dropoff: net.Node(10, 0), Riders: 1,
		Release: 0, Deadline: 1, WaitLimit: 1, DirectCost: 100,
	}
	m := sim.Run(env, &GDP{}, []*order.Order{o}, sim.RunOptions{TickEvery: 10})
	if m.Rejected != 1 {
		t.Fatalf("hopeless order not rejected: %+v", m)
	}
}

func TestGDPSharesCapacity(t *testing.T) {
	// One worker, two overlapping corridor orders released together:
	// insertion must pool them onto the same vehicle.
	net := roadnet.NewGridCity(20, 20, 100, 10)
	w := &order.Worker{ID: 1, Loc: net.Node(0, 0), Capacity: 4}
	env := sim.NewEnv(net, []*order.Worker{w}, sim.DefaultConfig())
	a := &order.Order{ID: 1, Pickup: net.Node(1, 0), Dropoff: net.Node(9, 0), Riders: 1,
		Release: 0, Deadline: 0 + 2*80, WaitLimit: 64, DirectCost: 80}
	b := &order.Order{ID: 2, Pickup: net.Node(2, 0), Dropoff: net.Node(10, 0), Riders: 1,
		Release: 1, Deadline: 1 + 2*80, WaitLimit: 64, DirectCost: 80}
	m := sim.Run(env, &GDP{}, []*order.Order{a, b}, sim.RunOptions{TickEvery: 10})
	if m.Served != 2 {
		t.Fatalf("served %d of 2 overlapping orders with one vehicle", m.Served)
	}
	// Shared service must cost less than two disjoint trips (2*(1+8)=180s
	// of travel if served back to back, ~110s shared).
	if m.WorkerTravel >= 180 {
		t.Fatalf("no sharing: travel %v", m.WorkerTravel)
	}
}

func TestGASBatchesAndGroups(t *testing.T) {
	env, net := testEnv(10)
	orders := corridorOrders(net, 50, 2.0)
	m := sim.Run(env, &GAS{BatchSeconds: 5}, orders, sim.RunOptions{TickEvery: 10})
	if m.Served+m.Rejected != len(orders) {
		t.Fatalf("accounting: %+v", m)
	}
	shared := 0
	for k := 2; k < len(m.GroupSizeHist); k++ {
		shared += m.GroupSizeHist[k]
	}
	if shared == 0 {
		t.Fatal("GAS never grouped corridor orders")
	}
	// Batch responses are bounded below by nothing but above by deadline
	// slack; the mean must be positive (orders wait for the boundary).
	if m.Served > 0 && m.ResponseSum <= 0 {
		t.Fatal("GAS responses should be positive (batch waiting)")
	}
}

func TestGASCarryOverAndExpiry(t *testing.T) {
	// No workers: every order must eventually be rejected (not lost).
	net := roadnet.NewGridCity(10, 10, 100, 10)
	env := sim.NewEnv(net, nil, sim.DefaultConfig())
	orders := corridorOrders(roadnet.NewGridCity(20, 20, 100, 10), 10, 1.5)
	for _, o := range orders {
		o.Pickup %= 100
		o.Dropoff %= 100
		if o.Pickup == o.Dropoff {
			o.Dropoff = (o.Dropoff + 1) % 100
		}
		o.DirectCost = net.Cost(o.Pickup, o.Dropoff)
		o.Deadline = o.Release + 1.5*o.DirectCost
	}
	m := sim.Run(env, &GAS{BatchSeconds: 5}, orders, sim.RunOptions{TickEvery: 10})
	if m.Rejected != len(orders) || m.Served != 0 {
		t.Fatalf("workerless GAS: %+v", m)
	}
}

func TestGASUtilityPrefersBiggerGroups(t *testing.T) {
	// One worker, three co-located identical orders in one batch: the max
	// utility group is all three together.
	net := roadnet.NewGridCity(20, 20, 100, 10)
	w := &order.Worker{ID: 1, Loc: net.Node(0, 0), Capacity: 4}
	env := sim.NewEnv(net, []*order.Worker{w}, sim.DefaultConfig())
	var orders []*order.Order
	for i := 0; i < 3; i++ {
		orders = append(orders, &order.Order{
			ID: i + 1, Pickup: net.Node(1, 0), Dropoff: net.Node(9, 0), Riders: 1,
			Release: float64(i), Deadline: float64(i) + 3*80, WaitLimit: 64, DirectCost: 80,
		})
	}
	m := sim.Run(env, &GAS{BatchSeconds: 5}, orders, sim.RunOptions{TickEvery: 10})
	if m.GroupSizeHist[3] != 1 {
		t.Fatalf("want one 3-group, hist %v", m.GroupSizeHist)
	}
}

func TestGDPDeterminism(t *testing.T) {
	run := func() *sim.Metrics {
		env, net := testEnv(8)
		return sim.Run(env, &GDP{}, corridorOrders(net, 40, 1.8), sim.RunOptions{TickEvery: 10})
	}
	a, b := run(), run()
	if a.Served != b.Served || math.Abs(a.WorkerTravel-b.WorkerTravel) > 1e-6 {
		t.Fatalf("GDP nondeterministic: %v vs %v", a, b)
	}
}

func TestGASDeterminism(t *testing.T) {
	run := func() *sim.Metrics {
		env, net := testEnv(8)
		return sim.Run(env, &GAS{BatchSeconds: 5}, corridorOrders(net, 40, 1.8), sim.RunOptions{TickEvery: 10})
	}
	a, b := run(), run()
	if a.Served != b.Served || math.Abs(a.WorkerTravel-b.WorkerTravel) > 1e-6 {
		t.Fatalf("GAS nondeterministic: %v vs %v", a, b)
	}
}
