// Package baseline implements the two comparison algorithms of the paper's
// evaluation: GDP, an online greedy-insertion dispatcher in the shape of
// Xu et al. [9], and GAS, a batch-based group enumerator in the shape of
// Zheng et al. [2]. Both run under the same simulator as the WATTER
// variants and report the same metrics.
package baseline

import (
	"math"

	"watter/internal/geo"
	"watter/internal/order"
	"watter/internal/route"
	"watter/internal/sim"
)

// GDP responds to every order immediately: it greedily inserts the pickup
// and dropoff into the route of the worker where the insertion increases
// total travel the least, and rejects the order when no feasible insertion
// exists. Workers run evolving multi-order schedules.
type GDP struct {
	// CandidateWorkers bounds how many nearby workers are tried per order
	// (spatial pruning; 0 means a reasonable default of 24).
	CandidateWorkers int

	env    *sim.Env
	states map[int]*workerState
}

type workerState struct {
	w   *order.Worker
	sch *route.Schedule
	// orders maps live order IDs in the schedule to their metadata.
	orders map[int]*order.Order
	// notify records the dispatch (insertion) time per order for the
	// detour metric: extra = dropoff - notify - direct.
	notify map[int]float64
	// done marks the prefix of sch already executed.
	done int
	// onboard counts riders currently in the vehicle.
	onboard int
	// curLoc/curTime are the location and departure time of the last
	// executed stop; between stops the vehicle is evaluated as if still
	// there (a bounded one-leg approximation, standard for insertion
	// baselines).
	curLoc  int32
	curTime float64
}

// Name implements sim.Algorithm.
func (g *GDP) Name() string { return "GDP" }

// Init implements sim.Algorithm.
func (g *GDP) Init(env *sim.Env) {
	g.env = env
	g.states = make(map[int]*workerState, len(env.Workers))
	for _, w := range env.Workers {
		g.states[w.ID] = &workerState{
			w:      w,
			sch:    &route.Schedule{},
			orders: make(map[int]*order.Order),
			notify: make(map[int]float64),
			curLoc: int32(w.Loc),
		}
	}
	if g.CandidateWorkers <= 0 {
		g.CandidateWorkers = 24
	}
}

// OnOrder implements sim.Algorithm: real-time greedy insertion.
func (g *GDP) OnOrder(o *order.Order, now float64) {
	if o.Expired(now) {
		g.env.Reject(o, now)
		return
	}
	cands := g.env.WIndex.KNearest(o.Pickup, g.CandidateWorkers, nil)
	var (
		bestState *workerState
		bestSch   *route.Schedule
		bestDelta = math.Inf(1)
	)
	for _, w := range cands {
		st := g.states[w.ID]
		g.advance(st, now)
		startLoc, startTime := g.position(st, now)
		sch, delta, ok := g.env.Planner.InsertOrder(
			remaining(st), st.orders, o, startLoc, startTime, st.w.Capacity, st.onboard)
		if !ok {
			continue
		}
		if delta < bestDelta-1e-9 {
			bestDelta = delta
			bestState = st
			bestSch = sch
		}
	}
	if bestState == nil {
		g.env.Reject(o, now)
		return
	}
	g.commit(bestState, bestSch, o, now, bestDelta)
}

// commit replaces the worker's remaining schedule with sch (which already
// contains o) and charges the travel delta.
func (g *GDP) commit(st *workerState, sch *route.Schedule, o *order.Order, now, delta float64) {
	// Keep the executed prefix, splice the new remainder.
	prefixStops := st.sch.Stops[:st.done]
	prefixTimes := st.sch.Times[:st.done]
	st.sch = &route.Schedule{
		Stops: append(append([]order.Stop{}, prefixStops...), sch.Stops...),
		Times: append(append([]float64{}, prefixTimes...), sch.Times...),
	}
	st.orders[o.ID] = o
	st.notify[o.ID] = now
	g.env.ServeWithWorker(st.w, delta)
	// Worker availability mirrors the schedule end for reporting.
	loc, t := st.sch.End(st.w.Loc, now)
	st.w.FreeAt = t
	st.w.Loc = loc
	g.env.WIndex.Update(st.w)
}

// advance executes schedule stops whose time has passed, completing
// dropoffs (metrics) and updating onboard counts.
func (g *GDP) advance(st *workerState, now float64) {
	for st.done < len(st.sch.Stops) && st.sch.Times[st.done] <= now {
		stop := st.sch.Stops[st.done]
		o := st.orders[stop.OrderID]
		switch stop.Kind {
		case order.PickupStop:
			st.onboard += stop.Riders
		case order.DropoffStop:
			st.onboard -= stop.Riders
			if o != nil {
				notify := st.notify[o.ID]
				response := notify - o.Release // ~0: GDP answers instantly
				detour := st.sch.Times[st.done] - notify - o.DirectCost
				if detour < 0 {
					detour = 0
				}
				g.env.ServeOrder(st.w, o, response, detour)
				delete(st.orders, o.ID)
				delete(st.notify, o.ID)
			}
		}
		st.curLoc = int32(stop.Node)
		st.curTime = st.sch.Times[st.done]
		st.done++
	}
}

// position returns the anchor for schedule evaluation: the last executed
// stop and its departure time for a busy worker, or the idle location at
// the current time for an idle one.
func (g *GDP) position(st *workerState, now float64) (geo.NodeID, float64) {
	if st.done < len(st.sch.Stops) {
		return geo.NodeID(st.curLoc), st.curTime
	}
	return geo.NodeID(st.curLoc), now
}

func remaining(st *workerState) *route.Schedule {
	return &route.Schedule{
		Stops: st.sch.Stops[st.done:],
		Times: st.sch.Times[st.done:],
	}
}

// OnTick implements sim.Algorithm: advance schedules so dropoff metrics
// land near their actual completion times. Iterates the worker slice, not
// the states map: metric sums are floating-point, so accumulation order
// must not depend on Go's randomized map iteration or identical seeds
// would produce run-to-run metric drift.
func (g *GDP) OnTick(now float64) {
	for _, w := range g.env.Workers {
		g.advance(g.states[w.ID], now)
	}
}

// Finish implements sim.Algorithm: run all schedules to completion.
func (g *GDP) Finish(now float64) {
	for _, w := range g.env.Workers {
		g.advance(g.states[w.ID], math.Inf(1))
	}
}
