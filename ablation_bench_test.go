package watter

import (
	"fmt"
	"math/rand"
	"testing"

	"watter/internal/dataset"
	"watter/internal/exp"
	"watter/internal/geo"
	"watter/internal/gridindex"
	"watter/internal/order"
	"watter/internal/pool"
	"watter/internal/roadnet"
	"watter/internal/route"
)

// BenchmarkCliqueEnum compares grouping bounds (DESIGN.md §5): pair-only
// (max group 2) against capacity-bounded clique enumeration (4). The
// trade-off is pool maintenance cost vs group quality.
func BenchmarkCliqueEnum(b *testing.B) {
	for _, bound := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("maxGroup=%d", bound), func(b *testing.B) {
			base := exp.DefaultParams(dataset.CDC())
			base.Orders = 500
			base.Workers = 45
			runner := exp.NewRunner()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				alg, err := runner.Build("WATTER-timeout", base)
				if err != nil {
					b.Fatal(err)
				}
				type optSetter interface{ SetMaxGroupSize(int) }
				alg.(optSetter).SetMaxGroupSize(bound)
				city, orders, workers := exp.Workload(base)
				env := NewEnvironment(city.Net, workers, DefaultConfig())
				m := Run(env, alg, orders, RunOptions{TickEvery: 10})
				b.ReportMetric(m.AvgGroupSize(), "avg-group")
				b.ReportMetric(m.UnifiedCost(), "unified-cost")
			}
		})
	}
}

// BenchmarkPoolMaintenance measures raw shareability-graph throughput:
// inserts with periodic expiry against pools of different densities.
func BenchmarkPoolMaintenance(b *testing.B) {
	net := roadnet.NewGridCity(40, 40, 150, 8)
	planner := route.NewPlanner(net)
	ix := gridindex.New(net, 10)
	for _, density := range []int{64, 256} {
		b.Run(fmt.Sprintf("pool=%d", density), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			p := pool.New(planner, ix, pool.DefaultOptions())
			// Pre-fill to the target density.
			now := 0.0
			id := 0
			mk := func() *order.Order {
				id++
				pu := net.Node(rng.Intn(40), rng.Intn(40))
				do := net.Node(rng.Intn(40), rng.Intn(40))
				if pu == do {
					do = net.Node((rng.Intn(39) + 1), rng.Intn(40))
				}
				direct := net.Cost(pu, do)
				return &order.Order{
					ID: id, Pickup: pu, Dropoff: do, Riders: 1,
					Release: now, Deadline: now + 1.8*direct, WaitLimit: 0.8 * direct,
					DirectCost: direct,
				}
			}
			for p.Len() < density {
				p.Insert(mk(), now)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				now += 1
				o := mk()
				p.Insert(o, now)
				p.Remove(o.ID, now) // keep density constant
				if i%64 == 0 {
					for _, dead := range p.ExpireEdges(now) {
						p.Remove(dead, now)
					}
					for p.Len() < density {
						p.Insert(mk(), now)
					}
				}
			}
		})
	}
}

// BenchmarkOracle compares the travel-time oracles (DESIGN.md §5): the
// closed-form grid metric, cached Dijkstra and precomputed all-pairs.
func BenchmarkOracle(b *testing.B) {
	queries := func(n int) []geo.NodeID {
		rng := rand.New(rand.NewSource(3))
		out := make([]geo.NodeID, 1024)
		for i := range out {
			out[i] = geo.NodeID(rng.Intn(n))
		}
		return out
	}
	b.Run("grid-closed-form", func(b *testing.B) {
		net := roadnet.NewGridCity(40, 40, 150, 8)
		qs := queries(net.NumNodes())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Cost(qs[i%1024], qs[(i*7+3)%1024])
		}
	})
	b.Run("dijkstra-lru", func(b *testing.B) {
		net := roadnet.NewPerturbedGrid(40, 40, 150, 8, 0.3, 1)
		net.SetCacheSize(256)
		qs := queries(net.NumNodes())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Cost(qs[i%1024], qs[(i*7+3)%1024])
		}
	})
	b.Run("dijkstra-precomputed", func(b *testing.B) {
		net := roadnet.NewPerturbedGrid(40, 40, 150, 8, 0.3, 1)
		net.Precompute()
		qs := queries(net.NumNodes())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Cost(qs[i%1024], qs[(i*7+3)%1024])
		}
	})
}
