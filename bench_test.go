// Benchmarks regenerating every table/figure of the paper's evaluation at
// reduced scale (the cmd/watterbench tool runs the same sweeps at full
// harness scale). One benchmark per figure and city; "go test -bench=.
// -benchmem" walks the entire evaluation.
package watter

import (
	"fmt"
	"testing"

	"watter/internal/dataset"
	"watter/internal/exp"
)

// benchParams returns a small configuration that keeps a full sweep cell
// affordable inside testing.B while preserving the fleet-pressure regime.
func benchParams(city dataset.Profile) exp.Params {
	p := exp.DefaultParams(city)
	p.Orders = 600
	p.Workers = 55
	p.Train.HistoricalOrders = 400
	p.Train.TrainSteps = 300
	return p
}

func benchSweep(b *testing.B, cityName, figID string) {
	profile, err := dataset.ByName(cityName)
	if err != nil {
		b.Fatal(err)
	}
	base := benchParams(profile)
	sweep, err := exp.SweepByID(base, figID)
	if err != nil {
		b.Fatal(err)
	}
	runner := exp.NewRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := runner.RunSweep(sweep, base)
		if err != nil {
			b.Fatal(err)
		}
		// Aggregate service rate keeps the work observable and guards
		// against dead-code elimination.
		var rate float64
		for _, r := range results {
			rate += r.Metrics.ServiceRate()
		}
		b.ReportMetric(rate/float64(len(results)), "avg-service-rate")
	}
}

// Figure 3: varying the number of orders n.
func BenchmarkFig3NYC(b *testing.B) { benchSweep(b, "nyc", "fig3") }
func BenchmarkFig3CDC(b *testing.B) { benchSweep(b, "cdc", "fig3") }
func BenchmarkFig3XIA(b *testing.B) { benchSweep(b, "xia", "fig3") }

// Figure 4: varying the number of workers m.
func BenchmarkFig4NYC(b *testing.B) { benchSweep(b, "nyc", "fig4") }
func BenchmarkFig4CDC(b *testing.B) { benchSweep(b, "cdc", "fig4") }
func BenchmarkFig4XIA(b *testing.B) { benchSweep(b, "xia", "fig4") }

// Figure 5: varying the deadline scale tau.
func BenchmarkFig5NYC(b *testing.B) { benchSweep(b, "nyc", "fig5") }
func BenchmarkFig5CDC(b *testing.B) { benchSweep(b, "cdc", "fig5") }
func BenchmarkFig5XIA(b *testing.B) { benchSweep(b, "xia", "fig5") }

// Figure 6: varying the vehicle capacity Kw.
func BenchmarkFig6NYC(b *testing.B) { benchSweep(b, "nyc", "fig6") }
func BenchmarkFig6CDC(b *testing.B) { benchSweep(b, "cdc", "fig6") }
func BenchmarkFig6XIA(b *testing.B) { benchSweep(b, "xia", "fig6") }

// Appendix D/F/G parameter studies and this repo's ablations (CDC only —
// the appendix studies are single-city in spirit).
func BenchmarkGridSizeCDC(b *testing.B) { benchSweep(b, "cdc", "grid") }
func BenchmarkEtaCDC(b *testing.B)      { benchSweep(b, "cdc", "eta") }
func BenchmarkDtCDC(b *testing.B)       { benchSweep(b, "cdc", "dt") }
func BenchmarkGMMKCDC(b *testing.B)     { benchSweep(b, "cdc", "gmm") }
func BenchmarkOmegaCDC(b *testing.B)    { benchSweep(b, "cdc", "omega") }

// Per-algorithm single-run benchmarks (one default cell each): how long
// one simulated evening costs per algorithm.
func benchOne(b *testing.B, alg string) {
	base := benchParams(dataset.CDC())
	runner := exp.NewRunner()
	if alg == "WATTER-expect" {
		runner.Train(base) // warm the model cache outside the timer
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := runner.RunOne(alg, base)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Metrics.ServiceRate(), "service-rate")
	}
}

func BenchmarkAlgGDP(b *testing.B)           { benchOne(b, "GDP") }
func BenchmarkAlgGAS(b *testing.B)           { benchOne(b, "GAS") }
func BenchmarkAlgWATTERExpect(b *testing.B)  { benchOne(b, "WATTER-expect") }
func BenchmarkAlgWATTEROnline(b *testing.B)  { benchOne(b, "WATTER-online") }
func BenchmarkAlgWATTERTimeout(b *testing.B) { benchOne(b, "WATTER-timeout") }

// Ablation: pool maintenance cost vs candidate radius (DESIGN.md §5).
func BenchmarkPoolRadius(b *testing.B) {
	for _, radius := range []int{1, 2, 4, -1} {
		b.Run(fmt.Sprintf("radius=%d", radius), func(b *testing.B) {
			base := benchParams(dataset.CDC())
			runner := exp.NewRunner()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				alg, err := runner.Build("WATTER-timeout", base)
				if err != nil {
					b.Fatal(err)
				}
				fw := alg.(interface{ SetCandidateRadius(int) })
				fw.SetCandidateRadius(radius)
				city, orders, workers := exp.Workload(base)
				env := NewEnvironment(city.Net, workers, DefaultConfig())
				Run(env, alg.(Algorithm), orders, RunOptions{TickEvery: 10})
			}
		})
	}
}
