module watter

go 1.24
