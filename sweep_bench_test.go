// Benchmarks for the parallel sweep engine: the same 8-cell matrix driven
// sequentially and over the worker pool. On an N-core machine the parallel
// variant should approach N× the sequential throughput; BENCH_sweep.json
// records the measured ratio per environment.
package watter

import (
	"fmt"
	"runtime"
	"testing"

	"watter/internal/dataset"
	"watter/internal/exp"
)

func benchMatrix() exp.Matrix {
	base := benchParams(dataset.CDC())
	return exp.Matrix{
		Base:   base,
		Algs:   []string{"GDP", "GAS", "WATTER-online", "WATTER-timeout"},
		Orders: []int{base.Orders, base.Orders * 5 / 4},
		Seeds:  []int64{1, 2},
	}
}

func benchEngine(b *testing.B, parallel int) {
	m := benchMatrix()
	b.ReportMetric(float64(len(m.Jobs())), "jobs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr := &exp.SweepRunner{Runner: exp.NewRunner(), Parallel: parallel}
		res, err := sr.Run(m)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

func BenchmarkSweepSequential(b *testing.B) { benchEngine(b, 1) }

func BenchmarkSweepParallel(b *testing.B) {
	b.Run(fmt.Sprintf("gomaxprocs=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		benchEngine(b, 0)
	})
}
