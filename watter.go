// Package watter is the public API of this reproduction of "Wait to be
// Faster: a Smart Pooling Framework for Dynamic Ridesharing" (ICDE 2024).
//
// The package re-exports the pieces a downstream user composes:
//
//   - road networks and synthetic cities (CityNYC/CityCDC/CityXIA, or any
//     roadnet.Network),
//   - the order pooling framework with its three dispatch strategies
//     (NewOnline, NewTimeout, NewExpect),
//   - the GDP and GAS baselines (NewGDP, NewGAS),
//   - the platform simulator (NewEnvironment, Run), and
//   - the offline pipeline behind WATTER-expect (TrainExpect).
//
// The quickest start:
//
//	city := watter.CityCDC().Build()
//	orders := city.Orders(watter.WorkloadConfig{Orders: 2000, Seed: 1})
//	workers := city.Workers(170, 4, 2)
//	env := watter.NewEnvironment(city.Net, workers, watter.DefaultConfig())
//	metrics := watter.Run(env, watter.NewOnline(), orders, watter.DefaultRunOptions())
//	fmt.Println(metrics)
//
// See examples/ for complete programs and DESIGN.md for the system map.
package watter

import (
	"watter/internal/core"
	"watter/internal/dataset"
	"watter/internal/exp"
	"watter/internal/order"
	"watter/internal/pool"
	"watter/internal/roadnet"
	"watter/internal/sim"
	"watter/internal/stats"
	"watter/internal/strategy"
)

// Re-exported domain types.
type (
	// Order is a ride request (paper Definition 1).
	Order = order.Order
	// Worker is a driver/vehicle (paper Definition 2).
	Worker = order.Worker
	// Group is a set of orders sharing one route.
	Group = order.Group
	// Metrics carries the four evaluation measurements.
	Metrics = sim.Metrics
	// Env is the simulated ridesharing platform.
	Env = sim.Env
	// Config fixes platform parameters (alpha/beta, grid size, capacity).
	Config = sim.Config
	// RunOptions tunes a simulation run (Δt, drain, timing).
	RunOptions = sim.RunOptions
	// Algorithm is any dispatch policy the simulator can drive.
	Algorithm = sim.Algorithm
	// WorkloadConfig parameterizes synthetic order generation.
	WorkloadConfig = dataset.WorkloadConfig
	// CityProfile describes a synthetic city's demand structure.
	CityProfile = dataset.Profile
	// City is a materialized synthetic city.
	City = dataset.City
	// Network is the travel-time oracle all components share.
	Network = roadnet.Network
	// MatrixNetwork is a Network with a batched many-to-many cost API
	// (one pruned search per source instead of per pair).
	MatrixNetwork = roadnet.MatrixNetwork
	// RoadGraph is an explicit road network answering point-to-point
	// queries on the ALT routing engine (landmarks precomputed at build).
	RoadGraph = roadnet.Graph
	// RoadGraphBuilder accumulates nodes and edges into a RoadGraph.
	RoadGraphBuilder = roadnet.GraphBuilder
	// PoolOptions tunes the temporal shareability graph.
	PoolOptions = pool.Options
	// ExperimentParams is one experiment configuration point.
	ExperimentParams = exp.Params
	// ExperimentResult is one (algorithm, configuration) measurement.
	ExperimentResult = exp.Result
	// SweepMatrix is a full experiment grid (algorithms × cities × loads ×
	// capacities × deadlines × replicate seeds).
	SweepMatrix = exp.Matrix
	// SweepRunner executes matrices over a bounded worker pool with
	// bit-identical results at any parallelism.
	SweepRunner = exp.SweepRunner
	// SweepResult bundles a matrix execution's raw results and summaries.
	SweepResult = exp.SweepResult
	// CellSummary aggregates one configuration cell across replicate seeds.
	CellSummary = exp.CellSummary
	// MetricSummary is a cross-seed sample summary (mean/stddev/CI95).
	MetricSummary = stats.Summary
)

// City profiles mirroring the paper's three datasets.
var (
	CityNYC = dataset.NYC
	CityCDC = dataset.CDC
	CityXIA = dataset.XIA
)

// DefaultConfig returns the paper's default platform parameters.
func DefaultConfig() Config { return sim.DefaultConfig() }

// DefaultRunOptions returns Δt = 10 s with timing enabled.
func DefaultRunOptions() RunOptions { return sim.DefaultRunOptions() }

// DefaultPoolOptions returns the default shareability-graph tuning.
func DefaultPoolOptions() PoolOptions { return pool.DefaultOptions() }

// NewEnvironment builds a simulated platform over a network and fleet.
func NewEnvironment(net Network, workers []*Worker, cfg Config) *Env {
	return sim.NewEnv(net, workers, cfg)
}

// Run drives an algorithm over an order stream and returns its metrics.
func Run(env *Env, alg Algorithm, orders []*Order, opts RunOptions) *Metrics {
	return sim.Run(env, alg, orders, opts)
}

// NewOnline returns the WATTER-online variant: every shared group is
// dispatched at the first periodic check after it forms.
func NewOnline() Algorithm {
	return core.New(strategy.Online{}, pool.DefaultOptions())
}

// NewTimeout returns the WATTER-timeout variant: groups are held as long
// as their feasibility horizon allows.
func NewTimeout() Algorithm {
	return core.New(strategy.Timeout{Tick: 10}, pool.DefaultOptions())
}

// NewConstantThreshold returns the threshold strategy with a fixed θ for
// every order — the simplest instantiation of Algorithm 2, useful as a
// baseline and for exploring the threshold's effect.
func NewConstantThreshold(theta float64) Algorithm {
	return core.New(&strategy.Threshold{
		Source: strategy.ConstantThreshold(theta), Alpha: 1, Beta: 1,
	}, pool.DefaultOptions())
}

// NewGDP returns the online greedy-insertion baseline.
func NewGDP() Algorithm { return exp.MustBuild("GDP", exp.DefaultParams(dataset.CDC())) }

// NewGAS returns the batch-based additive-tree baseline.
func NewGAS() Algorithm { return exp.MustBuild("GAS", exp.DefaultParams(dataset.CDC())) }

// TrainExpect runs the full offline pipeline (behavior simulation → GMM fit
// → value-network training) and returns the ready-to-run WATTER-expect
// algorithm for the given experiment parameters.
func TrainExpect(p ExperimentParams) (Algorithm, error) {
	return exp.NewRunner().Build("WATTER-expect", p)
}

// DefaultExperimentParams returns the scaled-down per-city defaults used by
// the benchmark harness.
func DefaultExperimentParams(city CityProfile) ExperimentParams {
	return exp.DefaultParams(city)
}

// NewSweepRunner returns a parallel sweep engine over a fresh experiment
// runner. Set Parallel to bound concurrency (0 means GOMAXPROCS):
//
//	sr := watter.NewSweepRunner()
//	res, err := sr.Run(watter.SweepMatrix{
//		Base:  watter.DefaultExperimentParams(watter.CityCDC()),
//		Algs:  []string{"WATTER-online", "GDP"},
//		Seeds: watter.ReplicateSeeds(1, 5),
//	})
func NewSweepRunner() *SweepRunner { return exp.NewSweepRunner(nil) }

// ReplicateSeeds returns the conventional seed grid base..base+n-1 for n
// replicate runs.
func ReplicateSeeds(base int64, n int) []int64 { return exp.ReplicateSeeds(base, n) }
