// Package watter is the public API of this reproduction of "Wait to be
// Faster: a Smart Pooling Framework for Dynamic Ridesharing" (ICDE 2024).
//
// The package is organized around an event-driven Platform: a validated,
// service-shaped front over the simulation machinery. Orders stream in one
// at a time (Submit), the periodic check advances on demand (Tick), and a
// typed event bus (Events) publishes admissions, dispatches, rejections and
// tick snapshots as they happen — the surface live dashboards, loggers and
// admission controllers build on. Construction goes through functional
// options that validate and return errors instead of silently defaulting:
//
//	city := watter.CityCDC().Build()
//	workers := city.Workers(170, 4, 2)
//	p, err := watter.New(city.Net, workers,
//	    watter.WithTick(10),
//	    watter.WithAlgorithm(watter.NewTimeout()),
//	)
//	if err != nil { ... }
//	events := p.Events() // subscribe before feeding
//	done := make(chan struct{})
//	go func() {
//	    defer close(done)
//	    for ev := range events {
//	        if d, ok := ev.(watter.GroupDispatched); ok {
//	            fmt.Printf("t=%.0fs worker %d takes %d orders\n", d.Time, d.WorkerID, d.Size())
//	        }
//	    }
//	}()
//	for _, o := range city.Orders(watter.WorkloadConfig{Orders: 2000, Seed: 1}) {
//	    if err := p.Submit(o); err != nil { ... }
//	}
//	metrics, err := p.Close()
//	<-done // the bus closed; let the consumer drain the tail
//
// Paper-replication mode — the batch entry point the evaluation harness
// uses — is a thin adapter over the same streaming core: Replay (or the
// legacy Run) clones a pre-materialized workload, sorts it by release and
// feeds it through, producing bit-identical metrics to the pre-redesign
// batch runner (enforced by a property test).
//
// The rest of the package re-exports the pieces a downstream user
// composes: road networks and synthetic cities (CityNYC/CityCDC/CityXIA),
// the pooling framework's three dispatch strategies (NewOnline,
// NewTimeout, NewExpect via TrainExpect), the GDP and GAS baselines, and
// the parallel experiment harness (NewSweepRunner). See examples/ for
// complete programs — examples/live is the streaming quickstart — and
// DESIGN.md for the system map.
package watter

import (
	"watter/internal/core"
	"watter/internal/dataset"
	"watter/internal/exp"
	"watter/internal/load"
	"watter/internal/order"
	"watter/internal/platform"
	"watter/internal/pool"
	"watter/internal/proxy"
	"watter/internal/roadnet"
	"watter/internal/shard"
	"watter/internal/sim"
	"watter/internal/stats"
	"watter/internal/strategy"
)

// Re-exported domain types.
type (
	// Order is a ride request (paper Definition 1).
	Order = order.Order
	// Worker is a driver/vehicle (paper Definition 2).
	Worker = order.Worker
	// Group is a set of orders sharing one route.
	Group = order.Group
	// Metrics carries the four evaluation measurements.
	Metrics = sim.Metrics
	// Env is the simulated ridesharing platform state (paper-replication
	// mode; the Platform owns one internally).
	Env = sim.Env
	// Config fixes platform parameters (alpha/beta, grid size, capacity).
	Config = sim.Config
	// RunOptions tunes a batch replay (Δt, drain, timing).
	RunOptions = sim.RunOptions
	// Algorithm is any dispatch policy the platform can drive.
	Algorithm = sim.Algorithm
	// WorkloadConfig parameterizes synthetic order generation.
	WorkloadConfig = dataset.WorkloadConfig
	// CityProfile describes a synthetic city's demand structure.
	CityProfile = dataset.Profile
	// City is a materialized synthetic city.
	City = dataset.City
	// Network is the travel-time oracle all components share.
	Network = roadnet.Network
	// MatrixNetwork is a Network with a batched many-to-many cost API
	// (one pruned search per source instead of per pair).
	MatrixNetwork = roadnet.MatrixNetwork
	// RoadGraph is an explicit road network answering point-to-point
	// queries on the ALT routing engine (landmarks precomputed at build).
	RoadGraph = roadnet.Graph
	// RoadGraphBuilder accumulates nodes and edges into a RoadGraph.
	RoadGraphBuilder = roadnet.GraphBuilder
	// PoolOptions tunes the temporal shareability graph (including
	// DisablePlanCache, the clique plan cache kill switch).
	PoolOptions = pool.Options
	// PoolCacheStats counts the shareability graph's plan-cache traffic
	// (hits, negative hits, plans avoided/materialized).
	PoolCacheStats = pool.CacheStats
	// ShardStats counts the slot-sharded dispatch engine's speculation
	// traffic (probe hits, invalidations, prewarm tasks, slot handoffs).
	ShardStats = shard.Stats
	// ExperimentParams is one experiment configuration point.
	ExperimentParams = exp.Params
	// ExperimentResult is one (algorithm, configuration) measurement.
	ExperimentResult = exp.Result
	// SweepMatrix is a full experiment grid (algorithms × cities × loads ×
	// capacities × deadlines × replicate seeds).
	SweepMatrix = exp.Matrix
	// SweepRunner executes matrices over a bounded worker pool with
	// bit-identical results at any parallelism.
	SweepRunner = exp.SweepRunner
	// SweepResult bundles a matrix execution's raw results and summaries.
	SweepResult = exp.SweepResult
	// CellSummary aggregates one configuration cell across replicate seeds.
	CellSummary = exp.CellSummary
	// MetricSummary is a cross-seed sample summary (mean/stddev/CI95).
	MetricSummary = stats.Summary
)

// The event-driven platform surface.
type (
	// Platform is a ridesharing service instance: streaming order
	// ingestion (Submit/Tick/Close), a typed event bus (Events), and
	// batch replay (Replay) over one network, fleet and algorithm.
	Platform = platform.Platform
	// PlatformOption configures New; invalid values surface as errors.
	PlatformOption = platform.Option
	// Event is one observable platform outcome; the concrete variants
	// are OrderAdmitted, GroupDispatched, OrderRejected, TickCompleted.
	Event = platform.Event
	// OrderAdmitted fires when an order enters the platform.
	OrderAdmitted = platform.OrderAdmitted
	// GroupDispatched fires when a group is booked on a worker.
	GroupDispatched = platform.GroupDispatched
	// OrderRejected fires when an order is rejected, with its penalties.
	OrderRejected = platform.OrderRejected
	// TickCompleted fires after each periodic check with a metrics
	// snapshot (all fields deterministic except DecisionSeconds).
	TickCompleted = platform.TickCompleted
	// ServiceRecord is one served order's share of a dispatch.
	ServiceRecord = platform.ServiceRecord
	// PlatformStats is the unified observability snapshot of one platform:
	// lifecycle flags, the order ledger, event-bus depth, and the shard
	// and pool-cache counters in one struct.
	PlatformStats = platform.Stats
	// OrderCounts is PlatformStats' submitted/served/rejected/pending
	// ledger.
	OrderCounts = platform.OrderCounts
)

// The multi-city front tier: one Proxy owns N independent city Platforms
// behind a single routing, journal and admin/ops surface.
type (
	// Proxy routes order streams to N city platforms, drives their
	// periodic checks from one coordinated clock, and multiplexes their
	// event buses into a single tagged journal. Per-city isolation and
	// journal-replay crash recovery are both bit-identical (proven by
	// tests; see DESIGN.md §10).
	Proxy = proxy.Proxy
	// ProxyOption configures NewProxy; invalid values surface as errors.
	ProxyOption = proxy.Option
	// CitySpec is the restart-safe blueprint of one proxied city.
	CitySpec = proxy.CitySpec
	// CityEvent is one merged-journal entry: an event tagged with its city.
	CityEvent = proxy.CityEvent
	// ProxyAdmin is the operator plane: pause/resume, crash injection,
	// manual restart, health probes and fleet stats.
	ProxyAdmin = proxy.Admin
	// ProxyStats is the fleet snapshot: every city's PlatformStats plus
	// their aggregate fold.
	ProxyStats = proxy.AdminStats
	// ProxyCityStats is one city's tagged snapshot inside ProxyStats.
	ProxyCityStats = proxy.CityStats
	// CityHealth is one city's probe report.
	CityHealth = proxy.Health
	// CityState is a city's lifecycle state as the front tier sees it.
	CityState = proxy.CityState
)

// Proxy construction options and city lifecycle states.
var (
	// WithJournalSink taps the merged journal synchronously in merge order.
	WithJournalSink = proxy.WithJournalSink
	// WithAutoRestart toggles journal-replay self-healing (default on).
	WithAutoRestart = proxy.WithAutoRestart

	// CityRunning / CityPaused / CityDown / CityClosed are the CityState
	// values probe reports carry.
	CityRunning = proxy.StateRunning
	CityPaused  = proxy.StatePaused
	CityDown    = proxy.StateDown
	CityClosed  = proxy.StateClosed
)

// The open-loop load harness (cmd/watterload is a thin CLI over it):
// synthetic arrival processes drive Submit at a configured rate on the
// virtual clock, yielding sustained throughput, admit→dispatch latency
// tails, decision slip and the modelled event-bus backpressure onset —
// all bit-identical run to run (DESIGN.md §14).
type (
	// ArrivalProcess names an arrival process family (Poisson, Surge,
	// Pareto).
	ArrivalProcess = load.Process
	// ArrivalSpec pins one arrival schedule: a pure function of (process,
	// rate, seed, horizon).
	ArrivalSpec = load.ArrivalSpec
	// LoadConfig is one open-loop load run: city, fleet, arrival process
	// and the modelled event-bus consumer.
	LoadConfig = load.Config
	// LoadResult is one run's deterministic measurements (throughput,
	// latency and slip histograms, backpressure onset, stream/journal
	// fingerprints).
	LoadResult = load.Result
	// LatencyHist is a mergeable log-bucketed (HDR-style) histogram.
	LatencyHist = load.Hist
	// RateSearchConfig brackets the maximum sustainable arrival rate.
	RateSearchConfig = load.SearchConfig
	// RateSearchResult reports the bisection outcome and every probe.
	RateSearchResult = load.SearchResult
)

// Arrival process families for ArrivalSpec.Process.
const (
	ArrivalPoisson = load.Poisson
	ArrivalSurge   = load.Surge
	ArrivalPareto  = load.Pareto
)

// Load-harness entry points.
var (
	// RunLoad executes one open-loop load run.
	RunLoad = load.Run
	// SearchMaxRate bisects for the maximum sustainable arrival rate
	// (deterministic: fixed bracket, fixed depth, virtual-clock probes).
	SearchMaxRate = load.SearchMaxRate
	// Retime rewrites a generated workload onto an arrival schedule —
	// the bridge between arrival processes and the sweep harness.
	Retime = load.Retime
)

// Lifecycle sentinels (test with errors.Is).
var (
	// ErrPlatformClosed is returned by platform operations after Close.
	ErrPlatformClosed = platform.ErrClosed
	// ErrPlatformPaused is returned while a platform (or proxied city) is
	// administratively paused.
	ErrPlatformPaused = platform.ErrPaused
	// ErrProxyClosed is returned by proxy operations after Proxy.Close.
	ErrProxyClosed = proxy.ErrClosed
	// ErrUnknownCity is returned when a city ID matches no owned platform.
	ErrUnknownCity = proxy.ErrUnknownCity
	// ErrCityDown is returned when traffic hits a crashed city and
	// auto-restart is disabled.
	ErrCityDown = proxy.ErrCityDown
)

// NewProxy builds a multi-city front tier owning one platform per spec.
// Specs are validated (unique non-empty IDs, buildable platforms) and
// every city is constructed eagerly, so configuration errors surface here:
//
//	cdc, nyc := watter.CityCDC().Build(), watter.CityNYC().Build()
//	px, err := watter.NewProxy([]watter.CitySpec{
//	    {ID: "cdc", Net: cdc.Net, Workers: cdc.Workers(170, 4, 2),
//	     NewAlgorithm: watter.NewOnline},
//	    {ID: "nyc", Net: nyc.Net, Workers: nyc.Workers(300, 4, 2),
//	     NewAlgorithm: watter.NewTimeout},
//	})
//	if err != nil { ... }
//	_ = px.Submit("cdc", o)          // routed ingestion
//	health := px.Admin().Probe()     // HA probe; wedged cities heal here
//	metrics, err := px.Close()       // per-city final metrics
func NewProxy(specs []CitySpec, opts ...ProxyOption) (*Proxy, error) {
	return proxy.New(specs, opts...)
}

// Platform construction options (see platform.New for semantics).
var (
	// WithTick sets the periodic-check interval Δt in seconds.
	WithTick = platform.WithTick
	// WithDrainSlack fixes the drain horizon to last release + slack.
	WithDrainSlack = platform.WithDrainSlack
	// WithConfig replaces the platform parameters (validated).
	WithConfig = platform.WithConfig
	// WithAlgorithm installs the dispatch policy (default WATTER-online).
	WithAlgorithm = platform.WithAlgorithm
	// WithPool tunes the shareability graph behind the algorithm.
	WithPool = platform.WithPool
	// WithShards sets the dispatch engine's slot-shard count: K > 1 runs
	// the periodic check's expensive read-only work on K goroutines with
	// bit-identical results (1, the default, is the sequential check).
	WithShards = platform.WithShards
	// WithMeasuredTime toggles wall-clock accounting of algorithm hooks.
	WithMeasuredTime = platform.WithMeasuredTime
	// WithEventBuffer sizes the event channel (default 256).
	WithEventBuffer = platform.WithEventBuffer
	// WithObserver installs a synchronous event tap (journal recorders);
	// it sees every event in order without subscribing to the channel bus.
	WithObserver = platform.WithObserver
)

// New builds an event-driven platform over a network and fleet. Every
// parameter is validated; construction fails loudly instead of silently
// coercing. With no options it runs WATTER-online at the paper's Δt = 10 s.
func New(net Network, workers []*Worker, opts ...PlatformOption) (*Platform, error) {
	return platform.New(net, workers, opts...)
}

// City profiles mirroring the paper's three datasets.
var (
	CityNYC = dataset.NYC
	CityCDC = dataset.CDC
	CityXIA = dataset.XIA
)

// DefaultConfig returns the paper's default platform parameters — the one
// blessed source of defaults (constructors validate, they don't coerce).
func DefaultConfig() Config { return sim.DefaultConfig() }

// DefaultRunOptions returns Δt = 10 s with timing enabled.
func DefaultRunOptions() RunOptions { return sim.DefaultRunOptions() }

// DefaultPoolOptions returns the default shareability-graph tuning.
func DefaultPoolOptions() PoolOptions { return pool.DefaultOptions() }

// NewEnvironment builds a simulated platform over a network and fleet
// (paper-replication mode). It panics on invalid config; the validated,
// error-returning surface is New.
func NewEnvironment(net Network, workers []*Worker, cfg Config) *Env {
	return sim.NewEnv(net, workers, cfg)
}

// Run is paper-replication mode: it replays a pre-materialized order
// stream through the streaming core and returns the final metrics. The
// caller's orders are never mutated. New + Replay is the equivalent
// validated surface; Run panics on invalid options.
func Run(env *Env, alg Algorithm, orders []*Order, opts RunOptions) *Metrics {
	return sim.Run(env, alg, orders, opts)
}

// NewOnline returns the WATTER-online variant: every shared group is
// dispatched at the first periodic check after it forms.
func NewOnline() Algorithm {
	return core.New(strategy.Online{}, pool.DefaultOptions())
}

// NewTimeout returns the WATTER-timeout variant: groups are held as long
// as their feasibility horizon allows.
func NewTimeout() Algorithm {
	return core.New(strategy.Timeout{Tick: 10}, pool.DefaultOptions())
}

// NewConstantThreshold returns the threshold strategy with a fixed θ for
// every order — the simplest instantiation of Algorithm 2, useful as a
// baseline and for exploring the threshold's effect.
func NewConstantThreshold(theta float64) Algorithm {
	return core.New(&strategy.Threshold{
		Source: strategy.ConstantThreshold(theta), Alpha: 1, Beta: 1,
	}, pool.DefaultOptions())
}

// NewGDP returns the online greedy-insertion baseline.
func NewGDP() Algorithm { return exp.MustBuild("GDP", exp.DefaultParams(dataset.CDC())) }

// NewGAS returns the batch-based additive-tree baseline.
func NewGAS() Algorithm { return exp.MustBuild("GAS", exp.DefaultParams(dataset.CDC())) }

// TrainExpect runs the full offline pipeline (behavior simulation → GMM fit
// → value-network training) and returns the ready-to-run WATTER-expect
// algorithm for the given experiment parameters.
func TrainExpect(p ExperimentParams) (Algorithm, error) {
	return exp.NewRunner().Build("WATTER-expect", p)
}

// DefaultExperimentParams returns the scaled-down per-city defaults used by
// the benchmark harness.
func DefaultExperimentParams(city CityProfile) ExperimentParams {
	return exp.DefaultParams(city)
}

// NewSweepRunner returns a parallel sweep engine over a fresh experiment
// runner. Set Parallel to bound concurrency (0 means GOMAXPROCS):
//
//	sr := watter.NewSweepRunner()
//	res, err := sr.Run(watter.SweepMatrix{
//		Base:  watter.DefaultExperimentParams(watter.CityCDC()),
//		Algs:  []string{"WATTER-online", "GDP"},
//		Seeds: watter.ReplicateSeeds(1, 5),
//	})
func NewSweepRunner() *SweepRunner { return exp.NewSweepRunner(nil) }

// ReplicateSeeds returns the conventional seed grid base..base+n-1 for n
// replicate runs.
func ReplicateSeeds(base int64, n int) []int64 { return exp.ReplicateSeeds(base, n) }
