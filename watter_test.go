package watter

import (
	"testing"

	"watter/internal/dataset"
)

func TestFacadeEndToEnd(t *testing.T) {
	city := CityXIA().Build()
	orders := city.Orders(WorkloadConfig{Orders: 300, Seed: 1})
	workers := city.Workers(30, 4, 2)
	env := NewEnvironment(city.Net, workers, DefaultConfig())
	opts := DefaultRunOptions()
	opts.MeasureTime = false
	m := Run(env, NewOnline(), orders, opts)
	if m.Served+m.Rejected != len(orders) {
		t.Fatalf("accounting: %+v", m)
	}
	if m.ServiceRate() <= 0 {
		t.Fatal("nothing served through the facade")
	}
}

// TestFacadePlatform exercises the event-driven surface end to end: a
// validated constructor, streamed submissions, live events, and metrics
// identical to batch replay of the same workload.
func TestFacadePlatform(t *testing.T) {
	city := CityXIA().Build()
	orders := city.Orders(WorkloadConfig{Orders: 300, Seed: 1})
	mkFleet := func() []*Worker { return city.Workers(30, 4, 2) }

	if _, err := New(city.Net, mkFleet(), WithTick(0)); err == nil {
		t.Fatal("invalid tick must be rejected, not coerced")
	}
	p, err := New(city.Net, mkFleet(), WithMeasuredTime(false))
	if err != nil {
		t.Fatal(err)
	}
	events := p.Events()
	var dispatched, rejected int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			switch e := ev.(type) {
			case GroupDispatched:
				dispatched += e.Size()
			case OrderRejected:
				rejected++
			}
		}
	}()
	streamed, err := p.Replay(orders)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if dispatched != streamed.Served || rejected != streamed.Rejected {
		t.Fatalf("events %d/%d vs metrics %+v", dispatched, rejected, streamed)
	}

	env := NewEnvironment(city.Net, mkFleet(), DefaultConfig())
	opts := DefaultRunOptions()
	opts.MeasureTime = false
	batch := Run(env, NewOnline(), orders, opts)
	if *batch != *streamed {
		t.Fatalf("facade replay diverged:\nbatch:  %+v\nstream: %+v", *batch, *streamed)
	}
}

func TestFacadeStrategies(t *testing.T) {
	for _, alg := range []Algorithm{NewOnline(), NewTimeout(), NewConstantThreshold(90), NewGDP(), NewGAS()} {
		if alg == nil || alg.Name() == "" {
			t.Fatalf("constructor returned unusable algorithm: %v", alg)
		}
	}
}

func TestFacadeTrainExpect(t *testing.T) {
	p := DefaultExperimentParams(CityXIA())
	p.Orders = 300
	p.Workers = 30
	p.Train.HistoricalOrders = 200
	p.Train.TrainSteps = 50
	alg, err := TrainExpect(p)
	if err != nil {
		t.Fatal(err)
	}
	if alg.Name() != "WATTER-expect" {
		t.Fatalf("name = %q", alg.Name())
	}
	city := CityXIA().Build()
	orders := city.Orders(WorkloadConfig{Orders: 300, Seed: 9})
	env := NewEnvironment(city.Net, city.Workers(30, 4, 5), DefaultConfig())
	opts := DefaultRunOptions()
	opts.MeasureTime = false
	m := Run(env, alg, orders, opts)
	if m.Served+m.Rejected != len(orders) {
		t.Fatalf("accounting: %+v", m)
	}
}

func TestCityProfilesExported(t *testing.T) {
	for _, f := range []func() CityProfile{CityNYC, CityCDC, CityXIA} {
		p := f()
		if p.Name == "" || p.W <= 0 {
			t.Fatalf("bad profile %+v", p)
		}
	}
	// Facade profiles must be the dataset package's.
	if CityNYC().Name != dataset.NYC().Name {
		t.Fatal("facade drifted from dataset package")
	}
}

// TestFacadeProxy exercises the multi-city front tier through the public
// surface: routed ingestion, unified stats, crash injection, probe-driven
// healing, and per-city final metrics.
func TestFacadeProxy(t *testing.T) {
	cdc, xia := CityCDC().Build(), CityXIA().Build()
	px, err := NewProxy([]CitySpec{
		{ID: "cdc", Net: cdc.Net, Workers: cdc.Workers(8, 4, 2),
			NewAlgorithm: NewOnline,
			Options:      []PlatformOption{WithMeasuredTime(false)}},
		{ID: "xia", Net: xia.Net, Workers: xia.Workers(8, 4, 2),
			NewAlgorithm: NewTimeout,
			Options:      []PlatformOption{WithMeasuredTime(false)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	workloads := map[string][]*Order{
		"cdc": cdc.Orders(WorkloadConfig{Orders: 30, Seed: 4}),
		"xia": xia.Orders(WorkloadConfig{Orders: 30, Seed: 5}),
	}
	half := workloads["cdc"][:15]
	for _, o := range half {
		cp := *o
		if err := px.Submit("cdc", &cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := px.Admin().Kill("cdc"); err != nil {
		t.Fatal(err)
	}
	healed := false
	for _, h := range px.Admin().Probe() {
		if h.City == "cdc" {
			if !h.Recovered || h.State != CityRunning {
				t.Fatalf("probe did not heal: %+v", h)
			}
			healed = true
		}
	}
	if !healed {
		t.Fatal("probe skipped the killed city")
	}
	workloads["cdc"] = workloads["cdc"][15:]
	metrics, err := px.Replay(workloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics) != 2 || metrics["cdc"] == nil || metrics["xia"] == nil {
		t.Fatalf("per-city metrics: %v", metrics)
	}
	st := px.Admin().Stats()
	if !st.Aggregate.Closed || st.Aggregate.Orders.Submitted != 60 {
		t.Fatalf("fleet stats: %+v", st.Aggregate)
	}
	if st.Restarts != 1 {
		t.Fatalf("restart count = %d", st.Restarts)
	}
	if _, err := px.Close(); err != nil {
		t.Fatal(err)
	}
	if err := px.Submit("cdc", half[0]); err == nil {
		t.Fatal("closed proxy accepted traffic")
	}
}
