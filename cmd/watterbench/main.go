// Command watterbench regenerates the paper's evaluation: every figure
// sweep (Figures 3-6, the appendix parameter studies, and this repo's
// ablations) on any of the three synthetic cities.
//
// Usage:
//
//	watterbench -fig fig3 -city cdc            # one figure, one city
//	watterbench -fig all -city all -scale 0.25 # the whole evaluation, tiny
//	watterbench -list                          # enumerate sweeps
//
// The -scale flag multiplies order and worker counts; 1.0 is the harness
// default (~1/25 of paper scale), 25 approximates the paper's full scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"watter/internal/dataset"
	"watter/internal/exp"
)

func main() {
	var (
		fig     = flag.String("fig", "fig3", "sweep id (fig3..fig6, grid, eta, dt, gmm, omega, or 'all')")
		city    = flag.String("city", "cdc", "city: nyc, cdc, xia, or 'all'")
		scale   = flag.Float64("scale", 1, "order/worker count multiplier")
		seed    = flag.Int64("seed", 1, "workload seed")
		quiet   = flag.Bool("quiet", false, "suppress per-run progress")
		list    = flag.Bool("list", false, "list available sweeps and exit")
		algsCSV = flag.String("algs", "", "comma-separated algorithm subset (default: sweep's own)")
		csvPath = flag.String("csv", "", "also append tidy per-cell rows to this CSV file")
	)
	flag.Parse()

	if *list {
		base := exp.DefaultParams(dataset.CDC())
		for _, s := range exp.FigureSweeps(base) {
			fmt.Printf("%-8s %s  points=%v\n", s.ID, s.Label, s.Points)
		}
		return
	}

	var cities []dataset.Profile
	if *city == "all" {
		cities = []dataset.Profile{dataset.NYC(), dataset.CDC(), dataset.XIA()}
	} else {
		p, err := dataset.ByName(*city)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cities = []dataset.Profile{p}
	}

	runner := exp.NewRunner()
	if !*quiet {
		runner.Out = os.Stderr
	}
	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		csvFile = f
	}

	for _, cityProfile := range cities {
		base := exp.DefaultParams(cityProfile)
		base.Seed = *seed
		base.Orders = int(float64(base.Orders) * *scale)
		base.Workers = int(float64(base.Workers) * *scale)
		if base.Orders < 10 || base.Workers < 1 {
			fmt.Fprintln(os.Stderr, "watterbench: scale too small")
			os.Exit(2)
		}

		var sweeps []exp.Sweep
		if *fig == "all" {
			sweeps = exp.FigureSweeps(base)
		} else {
			s, err := exp.SweepByID(base, *fig)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			sweeps = []exp.Sweep{s}
		}
		for _, s := range sweeps {
			if *algsCSV != "" {
				s.Algs = strings.Split(*algsCSV, ",")
			}
			results, err := runner.RunSweep(s, base)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			exp.PrintSweep(os.Stdout, s, cityProfile, results)
			if csvFile != nil {
				if err := exp.WriteCSV(csvFile, s.ID, results); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
	}
}
