// Command watterbench regenerates the paper's evaluation: every figure
// sweep (Figures 3-6, the appendix parameter studies, and this repo's
// ablations) on any of the three synthetic cities, executed over the
// parallel sweep engine.
//
// Usage:
//
//	watterbench -fig fig3 -city cdc                  # one figure, one city
//	watterbench -fig all -city all -scale 0.25       # the whole evaluation, tiny
//	watterbench -fig fig5 -replicates 5 -parallel 8  # mean ± CI across seeds
//	watterbench -benchsweep BENCH_sweep.json         # sequential-vs-parallel timing
//	watterbench -benchroute BENCH_routing.json       # routing engine vs cold Dijkstra
//	watterbench -benchstream BENCH_stream.json       # event bus vs batch replay
//	watterbench -benchpool BENCH_pool.json           # plan cache vs replan-always pool
//	watterbench -benchshard BENCH_shard.json         # slot-sharded vs sequential dispatch
//	watterbench -list                                # enumerate sweeps
//
// The -scale flag multiplies order and worker counts; 1.0 is the harness
// default (~1/25 of paper scale), 25 approximates the paper's full scale.
// -parallel bounds concurrent simulation jobs (0 = GOMAXPROCS); results
// are bit-identical at any parallelism.
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"watter/internal/core"
	"watter/internal/dataset"
	"watter/internal/exp"
	"watter/internal/geo"
	"watter/internal/gridindex"
	"watter/internal/order"
	"watter/internal/platform"
	"watter/internal/pool"
	"watter/internal/roadnet"
	"watter/internal/route"
	"watter/internal/shard"
	"watter/internal/sim"
	"watter/internal/strategy"
)

func main() {
	var (
		fig         = flag.String("fig", "fig3", "sweep id (fig3..fig6, grid, eta, dt, gmm, omega, or 'all')")
		city        = flag.String("city", "cdc", "city: nyc, cdc, xia, met, or 'all' (met is the 102K-node explicit-graph metropolis; 'all' stays nyc/cdc/xia)")
		scale       = flag.Float64("scale", 1, "order/worker count multiplier")
		seed        = flag.Int64("seed", 1, "workload seed (first replicate)")
		replicates  = flag.Int("replicates", 1, "seed replicates per cell (reported as mean ± CI)")
		parallel    = flag.Int("parallel", 0, "max concurrent simulation jobs (0 = GOMAXPROCS)")
		quiet       = flag.Bool("quiet", false, "suppress per-run progress")
		list        = flag.Bool("list", false, "list available sweeps and exit")
		algsCSV     = flag.String("algs", "", "comma-separated algorithm subset (default: sweep's own)")
		csvPath     = flag.String("csv", "", "also append tidy per-cell rows to this CSV file")
		benchsweep  = flag.String("benchsweep", "", "run the sequential-vs-parallel engine benchmark and write its JSON report to this file")
		benchroute  = flag.String("benchroute", "", "run the point-to-point routing engine benchmark and write its JSON report to this file")
		benchstream = flag.String("benchstream", "", "run the event-bus-vs-batch-replay benchmark and write its JSON report to this file")
		benchpool   = flag.String("benchpool", "", "run the pool-maintenance plan-cache benchmark and write its JSON report to this file")
		benchshard  = flag.String("benchshard", "", "run the slot-sharded dispatch engine benchmark and write its JSON report to this file")
		shards      = flag.Int("shards", 0, "shard count for -benchshard's sharded arm (0 = GOMAXPROCS, min 2)")
	)
	flag.Parse()

	if *list {
		base := exp.DefaultParams(dataset.CDC())
		for _, s := range exp.FigureSweeps(base) {
			fmt.Printf("%-8s %s  points=%v\n", s.ID, s.Label, s.Points)
		}
		return
	}
	if *benchsweep != "" {
		if err := runBenchSweep(*benchsweep, *scale, *seed, *parallel, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *benchroute != "" {
		if err := runBenchRoute(*benchroute, *scale, *seed, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *benchstream != "" {
		if err := runBenchStream(*benchstream, *scale, *seed, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *benchpool != "" {
		if err := runBenchPool(*benchpool, *scale, *seed, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *benchshard != "" {
		if err := runBenchShard(*benchshard, *scale, *seed, *shards, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var cities []dataset.Profile
	if *city == "all" {
		cities = []dataset.Profile{dataset.NYC(), dataset.CDC(), dataset.XIA()}
	} else {
		p, err := dataset.ByName(*city)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cities = []dataset.Profile{p}
	}

	runner := exp.NewRunner()
	if !*quiet {
		runner.Out = os.Stderr
	}
	engine := &exp.SweepRunner{Runner: runner, Parallel: *parallel}
	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		csvFile = f
	}

	for _, cityProfile := range cities {
		base := exp.DefaultParams(cityProfile)
		base.Seed = *seed
		base.Orders = int(float64(base.Orders) * *scale)
		base.Workers = int(float64(base.Workers) * *scale)
		if base.Orders < 10 || base.Workers < 1 {
			fmt.Fprintln(os.Stderr, "watterbench: scale too small")
			os.Exit(2)
		}

		var sweeps []exp.Sweep
		if *fig == "all" {
			sweeps = exp.FigureSweeps(base)
		} else {
			s, err := exp.SweepByID(base, *fig)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			sweeps = []exp.Sweep{s}
		}
		for _, s := range sweeps {
			if *algsCSV != "" {
				s.Algs = strings.Split(*algsCSV, ",")
			}
			if *replicates > 1 {
				seeds := exp.ReplicateSeeds(*seed, *replicates)
				results, cells, err := engine.RunFigureSeeds(s, base, seeds)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("== %s / %s — varying %s, %d replicates ==\n", s.ID, cityProfile.Name, s.Label, *replicates)
				exp.PrintCells(os.Stdout, cells)
				fmt.Println()
				writeCSV(csvFile, s.ID, results)
				continue
			}
			results, err := engine.RunFigure(s, base)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			exp.PrintSweep(os.Stdout, s, cityProfile, results)
			writeCSV(csvFile, s.ID, results)
		}
	}
}

func writeCSV(f *os.File, sweepID string, results []*exp.Result) {
	if f == nil {
		return
	}
	if err := exp.WriteCSV(f, sweepID, results); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// benchReport is the JSON shape of the engine benchmark (BENCH_sweep.json).
type benchReport struct {
	City              string  `json:"city"`
	Jobs              int     `json:"jobs"`
	Cells             int     `json:"cells"`
	Scale             float64 `json:"scale"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	Parallel          int     `json:"parallel"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	Speedup           float64 `json:"speedup"`
	Identical         bool    `json:"metrics_bit_identical"`
}

// runBenchSweep times one fixed CDC matrix (strategies + baselines x order
// loads x 2 seeds) sequentially and in parallel, verifies the two runs
// produced bit-identical metrics, and writes the JSON report other PRs use
// as the perf trajectory baseline.
func runBenchSweep(path string, scale float64, seed int64, parallel int, quiet bool) error {
	base := exp.DefaultParams(dataset.CDC())
	base.Seed = seed
	base.Orders = int(float64(base.Orders) * scale)
	base.Workers = int(float64(base.Workers) * scale)
	m := exp.Matrix{
		Base: base,
		// WATTER-expect is excluded: its offline training is a one-time,
		// cached cost that would swamp the sweep-throughput signal.
		Algs:   []string{"GDP", "GAS", "WATTER-online", "WATTER-timeout"},
		Orders: []int{base.Orders, base.Orders * 5 / 4},
		Seeds:  []int64{seed, seed + 1},
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}

	logf("benchsweep: %d jobs sequentially...\n", len(m.Jobs()))
	seq, err := (&exp.SweepRunner{Runner: exp.NewRunner(), Parallel: 1}).Run(m)
	if err != nil {
		return err
	}
	logf("benchsweep: %d jobs at parallel=%d...\n", len(m.Jobs()), parallel)
	par, err := (&exp.SweepRunner{Runner: exp.NewRunner(), Parallel: parallel}).Run(m)
	if err != nil {
		return err
	}

	identical := true
	for i := range seq.Results {
		a, b := *seq.Results[i].Metrics, *par.Results[i].Metrics
		a.DecisionSeconds, b.DecisionSeconds = 0, 0
		if a != b {
			identical = false
			break
		}
	}
	rep := benchReport{
		City:              "CDC",
		Jobs:              len(seq.Jobs),
		Cells:             len(seq.Cells),
		Scale:             scale,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Parallel:          parallel,
		SequentialSeconds: seq.Elapsed.Seconds(),
		ParallelSeconds:   par.Elapsed.Seconds(),
		Speedup:           seq.Elapsed.Seconds() / par.Elapsed.Seconds(),
		Identical:         identical,
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchsweep: %d jobs  sequential=%.2fs  parallel(%d)=%.2fs  speedup=%.2fx  identical=%v\n",
		rep.Jobs, rep.SequentialSeconds, rep.Parallel, rep.ParallelSeconds, rep.Speedup, rep.Identical)
	if !identical {
		return fmt.Errorf("benchsweep: parallel run diverged from sequential metrics")
	}
	return nil
}

// routeRow is one city scale in the routing engine benchmark
// (BENCH_routing.json): every query engine the graph owns — CH, ALT, cold
// and warm cached Dijkstra — timed over the same single-pair probe set.
type routeRow struct {
	City             string  `json:"city"`
	Nodes            int     `json:"nodes"`
	Landmarks        int     `json:"landmarks"`
	CHShortcuts      int     `json:"ch_shortcuts"`
	CHCore           int     `json:"ch_core"`
	CHBuildSecs      float64 `json:"ch_build_seconds"`
	Probes           int     `json:"probes"`
	CHSecs           float64 `json:"ch_seconds"`
	ALTSecs          float64 `json:"alt_seconds"`
	ColdSSSPSecs     float64 `json:"cold_dijkstra_seconds"`
	WarmSSSPSecs     float64 `json:"warm_dijkstra_seconds"`
	SpeedupCHvsALT   float64 `json:"speedup_ch_vs_alt"`
	SpeedupCHvsCold  float64 `json:"speedup_ch_vs_cold"`
	SpeedupALTvsCold float64 `json:"speedup_alt_vs_cold"`
	AmortizeProbes   float64 `json:"ch_build_amortize_probes"`
	Identical        bool    `json:"distances_bit_identical"`
	UnreachablePct   float64 `json:"unreachable_pct"`
}

// routeReport is the JSON shape of the routing engine benchmark
// (BENCH_routing.json): one row per city scale.
type routeReport struct {
	Scale      float64    `json:"scale"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Rows       []routeRow `json:"rows"`
}

// benchRouteRow times one city through all four point-to-point regimes over
// the same probe set: the contraction hierarchy, the ALT engine it replaced
// on large graphs, a cold full single-source Dijkstra per probe (the
// pre-engine behavior whenever a source misses the LRU cache) and a warm
// arm that keeps the LRU across probes (the best case the legacy path ever
// achieved, with recurring sources). Probes are single pickup→dropoff pairs
// — the dispatch loop's dominant query shape — drawn from a small source
// pool so the warm arm genuinely amortizes its Dijkstras. All four arms
// must agree bit for bit.
func benchRouteRow(city string, g *roadnet.Graph, probes int, seed int64, logf func(string, ...any)) routeRow {
	g.EnableHierarchy()
	logf("benchroute: %s — %d nodes, %d landmarks, %d shortcuts (built in %.1fs), %d probes\n",
		city, g.NumNodes(), g.NumLandmarks(), g.NumShortcuts(), g.HierarchyBuildSeconds(), probes)

	rng := rand.New(rand.NewSource(seed*7919 + int64(g.NumNodes())))
	srcPool := make([]geo.NodeID, 48)
	for i := range srcPool {
		srcPool[i] = geo.NodeID(rng.Intn(g.NumNodes()))
	}
	type probe struct{ s, t geo.NodeID }
	work := make([]probe, probes)
	for i := range work {
		s := srcPool[rng.Intn(len(srcPool))]
		t := geo.NodeID(rng.Intn(g.NumNodes()))
		for t == s {
			t = geo.NodeID(rng.Intn(g.NumNodes()))
		}
		work[i] = probe{s, t}
	}

	chOut := make([]float64, probes)
	g.SetHierarchy(true)
	start := time.Now()
	for i, p := range work {
		chOut[i] = g.CostPP(p.s, p.t)
	}
	chSecs := time.Since(start).Seconds()

	altOut := make([]float64, probes)
	start = time.Now()
	for i, p := range work {
		altOut[i] = g.CostALT(p.s, p.t)
	}
	altSecs := time.Since(start).Seconds()

	coldOut := make([]float64, probes)
	start = time.Now()
	for i, p := range work {
		g.FlushCache() // every probe's source is fresh: the cold path
		coldOut[i] = g.CostSSSP(p.s, p.t)
	}
	coldSecs := time.Since(start).Seconds()

	warmOut := make([]float64, probes)
	g.FlushCache()
	start = time.Now()
	for i, p := range work {
		// No flush: the LRU persists across probes like a live sweep.
		warmOut[i] = g.CostSSSP(p.s, p.t)
	}
	warmSecs := time.Since(start).Seconds()

	identical := true
	unreachable := 0
	for i := range chOut {
		if chOut[i] != altOut[i] || chOut[i] != coldOut[i] || chOut[i] != warmOut[i] {
			identical = false
		}
		if math.IsInf(chOut[i], 1) {
			unreachable++
		}
	}
	// Probes until the CH build has paid for itself versus staying on ALT.
	amortize := -1.0
	if perProbeGain := (altSecs - chSecs) / float64(probes); perProbeGain > 0 {
		amortize = math.Ceil(g.HierarchyBuildSeconds() / perProbeGain)
	}

	return routeRow{
		City:             city,
		Nodes:            g.NumNodes(),
		Landmarks:        g.NumLandmarks(),
		CHShortcuts:      g.NumShortcuts(),
		CHCore:           g.CoreSize(),
		CHBuildSecs:      g.HierarchyBuildSeconds(),
		Probes:           probes,
		CHSecs:           chSecs,
		ALTSecs:          altSecs,
		ColdSSSPSecs:     coldSecs,
		WarmSSSPSecs:     warmSecs,
		SpeedupCHvsALT:   altSecs / chSecs,
		SpeedupCHvsCold:  coldSecs / chSecs,
		SpeedupALTvsCold: coldSecs / altSecs,
		AmortizeProbes:   amortize,
		Identical:        identical,
		UnreachablePct:   100 * float64(unreachable) / float64(probes),
	}
}

// runBenchRoute benchmarks the routing oracle at two city scales: the
// 70x70 perturbed grid (≈4.9K nodes — above the SSSP cache, below the
// hierarchy's auto-build threshold) and the 320x320 metropolis (≈102K
// nodes, the paper's real-city scale). The metropolis is round-tripped
// through the DIMACS writer/importer, so the row also certifies that an
// imported city answers bit-identically. Each row verifies CH, ALT and
// both Dijkstra regimes agree bit for bit and records the CH build cost
// plus the probe count that amortizes it.
func runBenchRoute(path string, scale float64, seed int64, quiet bool) error {
	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}
	sideAt := func(base int, floor int) int {
		side := int(float64(base) * math.Sqrt(scale))
		if side < floor {
			side = floor
		}
		return side
	}

	small := sideAt(70, 12)
	gSmall := roadnet.NewPerturbedGrid(small, small, 200, 8, 0.3, seed)
	rows := []routeRow{
		benchRouteRow(fmt.Sprintf("perturbed-grid-%dx%d", small, small), gSmall, 4096, seed, logf),
	}

	big := sideAt(320, 40)
	var gr, co bytes.Buffer
	if err := roadnet.WriteDIMACSGrid(&gr, &co, big, big, 200, 8, 0.3, seed); err != nil {
		return err
	}
	logf("benchroute: importing %dx%d DIMACS city (%d bytes .gr)...\n", big, big, gr.Len())
	gBig, err := roadnet.ReadDIMACS(&gr, &co)
	if err != nil {
		return err
	}
	rows = append(rows,
		benchRouteRow(fmt.Sprintf("dimacs-metro-%dx%d", big, big), gBig, 384, seed, logf))

	rep := routeReport{Scale: scale, GOMAXPROCS: runtime.GOMAXPROCS(0), Rows: rows}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("benchroute: %s (%d nodes)  ch=%.3fs  alt=%.3fs  cold=%.3fs  warm=%.3fs  ch-vs-alt=%.1fx  ch-vs-cold=%.1fx  build=%.1fs (amortized in %.0f probes)  identical=%v\n",
			r.City, r.Nodes, r.CHSecs, r.ALTSecs, r.ColdSSSPSecs, r.WarmSSSPSecs,
			r.SpeedupCHvsALT, r.SpeedupCHvsCold, r.CHBuildSecs, r.AmortizeProbes, r.Identical)
		if !r.Identical {
			return fmt.Errorf("benchroute: %s: engines diverged from the Dijkstra reference", r.City)
		}
		if r.SpeedupCHvsCold <= 1 {
			return fmt.Errorf("benchroute: %s: CH (%.3fs) did not beat the cold Dijkstra path (%.3fs)", r.City, r.CHSecs, r.ColdSSSPSecs)
		}
	}
	return nil
}

// streamReport is the JSON shape of the event-bus benchmark
// (BENCH_stream.json).
type streamReport struct {
	City           string  `json:"city"`
	Alg            string  `json:"alg"`
	Orders         int     `json:"orders"`
	Workers        int     `json:"workers"`
	Scale          float64 `json:"scale"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Rounds         int     `json:"rounds"`
	BatchSeconds   float64 `json:"batch_seconds"`
	StreamSeconds  float64 `json:"stream_seconds"`
	EventsPerRun   int     `json:"events_per_run"`
	OverheadFactor float64 `json:"overhead_factor"`
	Identical      bool    `json:"metrics_bit_identical"`
}

// runBenchStream measures what the event bus costs: the same CDC workload
// runs through the legacy batch adapter (sim.Run, no sink — the exact
// pre-redesign surface) and through a Platform with a subscribed,
// actively-drained event channel. Both paths share the streaming core, so
// metrics must be bit-identical; the report tracks the wall-clock ratio
// the way BENCH_routing.json tracks the routing engine.
func runBenchStream(path string, scale float64, seed int64, quiet bool) error {
	base := exp.DefaultParams(dataset.CDC())
	base.Seed = seed
	base.Orders = int(float64(base.Orders) * scale)
	base.Workers = int(float64(base.Workers) * scale)
	if base.Orders < 10 || base.Workers < 1 {
		return fmt.Errorf("benchstream: scale %.2f too small", scale)
	}
	city := base.City.Build()
	orders := city.Orders(dataset.WorkloadConfig{
		Orders: base.Orders, Seed: base.Seed, TauScale: base.TauScale, Eta: base.Eta,
	})
	const rounds = 3
	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}
	logf("benchstream: CDC n=%d m=%d, %d rounds per arm\n", base.Orders, base.Workers, rounds)

	runBatch := func() (*sim.Metrics, float64) {
		workers := city.Workers(base.Workers, base.MaxCap, base.Seed+1000)
		cfg := sim.DefaultConfig()
		cfg.GridN = base.GridN
		cfg.Capacity = base.MaxCap
		env := sim.NewEnv(city.Net, workers, cfg)
		alg := exp.MustBuild("WATTER-online", base)
		start := time.Now()
		m := sim.Run(env, alg, orders, sim.RunOptions{TickEvery: base.TickEvery})
		return m, time.Since(start).Seconds()
	}
	runStream := func() (*sim.Metrics, float64, int, error) {
		workers := city.Workers(base.Workers, base.MaxCap, base.Seed+1000)
		cfg := sim.DefaultConfig()
		cfg.GridN = base.GridN
		cfg.Capacity = base.MaxCap
		alg := exp.MustBuild("WATTER-online", base)
		p, err := platform.New(city.Net, workers,
			platform.WithConfig(cfg),
			platform.WithTick(base.TickEvery),
			platform.WithMeasuredTime(false),
			platform.WithAlgorithm(alg),
		)
		if err != nil {
			return nil, 0, 0, err
		}
		events := p.Events()
		counted := make(chan int, 1)
		go func() {
			n := 0
			for range events {
				n++
			}
			counted <- n
		}()
		start := time.Now()
		m, err := p.Replay(orders)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return nil, 0, 0, err
		}
		return m, elapsed, <-counted, nil
	}

	var batchSecs, streamSecs float64
	var events int
	var batchM, streamM sim.Metrics
	identical := true
	for r := 0; r < rounds; r++ {
		bm, bs := runBatch()
		sm, ss, n, err := runStream()
		if err != nil {
			return err
		}
		batchSecs += bs
		streamSecs += ss
		events = n
		a, b := *bm, *sm
		a.DecisionSeconds, b.DecisionSeconds = 0, 0
		if a != b {
			identical = false
		}
		batchM, streamM = a, b
		logf("benchstream: round %d batch=%.3fs stream=%.3fs events=%d\n", r+1, bs, ss, n)
	}

	rep := streamReport{
		City:           "CDC",
		Alg:            "WATTER-online",
		Orders:         base.Orders,
		Workers:        base.Workers,
		Scale:          scale,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Rounds:         rounds,
		BatchSeconds:   batchSecs / rounds,
		StreamSeconds:  streamSecs / rounds,
		EventsPerRun:   events,
		OverheadFactor: streamSecs / batchSecs,
		Identical:      identical,
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchstream: batch=%.3fs stream+events=%.3fs overhead=%.2fx events/run=%d identical=%v\n",
		rep.BatchSeconds, rep.StreamSeconds, rep.OverheadFactor, rep.EventsPerRun, rep.Identical)
	if !identical {
		return fmt.Errorf("benchstream: streamed metrics diverged from batch replay:\nbatch:  %+v\nstream: %+v", batchM, streamM)
	}
	return nil
}

// poolReport is the JSON shape of the pool-maintenance plan-cache
// benchmark (BENCH_pool.json).
type poolReport struct {
	City              string  `json:"city"`
	Nodes             int     `json:"nodes"`
	Orders            int     `json:"pool_orders"`
	Ticks             int     `json:"ticks"`
	Scale             float64 `json:"scale"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	UncachedSeconds   float64 `json:"uncached_seconds"`
	CachedSeconds     float64 `json:"cached_seconds"`
	Speedup           float64 `json:"speedup"`
	CacheHits         uint64  `json:"cache_hits"`
	NegativeHits      uint64  `json:"negative_hits"`
	CacheMisses       uint64  `json:"cache_misses"`
	Renewed           uint64  `json:"renewed"`
	HitRate           float64 `json:"hit_rate"`
	PlansAvoided      uint64  `json:"plans_avoided"`
	PlansMaterialized uint64  `json:"plans_materialized"`
	PlansReused       uint64  `json:"plans_reused"`
	LegBlocks         int     `json:"leg_blocks"`
	DecisionsSame     bool    `json:"pool_decisions_identical"`
	SimCity           string  `json:"sim_city"`
	SimAlgs           string  `json:"sim_algs"`
	SimCachedSecs     float64 `json:"sim_cached_seconds"`
	SimUncachedSecs   float64 `json:"sim_uncached_seconds"`
	Identical         bool    `json:"metrics_bit_identical"`
}

// poolWorkload is a deterministic pool-maintenance trace: clustered orders
// on a perturbed-grid road graph, released over a two-hour-ish window.
func poolWorkload(g *roadnet.Graph, side, n int, horizon float64, seed int64) []*order.Order {
	rng := rand.New(rand.NewSource(seed*31 + 7))
	type hub struct{ x, y int }
	hubs := make([]hub, 6)
	for i := range hubs {
		hubs[i] = hub{rng.Intn(side), rng.Intn(side)}
	}
	near := func(h hub) geo.NodeID {
		x := clamp(h.x+rng.Intn(9)-4, 0, side-1)
		y := clamp(h.y+rng.Intn(9)-4, 0, side-1)
		return geo.NodeID(y*side + x)
	}
	orders := make([]*order.Order, 0, n)
	for i := 0; i < n; i++ {
		pu := near(hubs[rng.Intn(len(hubs))])
		do := near(hubs[rng.Intn(len(hubs))])
		if pu == do {
			continue
		}
		direct := g.Cost(pu, do)
		release := rng.Float64() * horizon
		tau := 1.3 + rng.Float64()*0.7
		orders = append(orders, &order.Order{
			ID: i + 1, Pickup: pu, Dropoff: do, Riders: 1 + rng.Intn(2),
			Release: release, Deadline: release + tau*direct,
			WaitLimit: 0.8 * direct, DirectCost: direct,
		})
	}
	sort.SliceStable(orders, func(i, j int) bool { return orders[i].Release < orders[j].Release })
	return orders
}

// runPoolTrace replays the workload through one pool — tick-driven expiry,
// insertion and last-call-style group dispatch, the same churn Algorithm 1
// generates — and folds every best-group decision (members, τg, plan cost,
// stops, arrivals) into an FNV digest so two arms can be compared bit for
// bit. Returns the digest, the elapsed wall time and the pool itself.
func runPoolTrace(g *roadnet.Graph, orders []*order.Order, horizon float64, disable bool) (uint64, float64, *pool.Pool) {
	ix := gridindex.New(g, 10)
	planner := route.NewPlanner(g)
	opt := pool.DefaultOptions()
	opt.DisablePlanCache = disable
	p := pool.New(planner, ix, opt)
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	// Record-type tags keep the digest injective: every record starts with
	// a tag word and hashes each field as its own word (no bit packing), so
	// two different decision streams can't collide by compensation.
	const (
		tagReject   = 1
		tagNoGroup  = 2
		tagBest     = 3
		tagDispatch = 4
	)
	start := time.Now()
	next := 0
	for now := 0.0; now <= horizon+300; now += 10 {
		for _, id := range p.ExpireEdges(now) {
			p.Remove(id, now)
			w64(tagReject)
			w64(uint64(id))
		}
		for next < len(orders) && orders[next].Release <= now {
			p.Insert(orders[next], now)
			next++
		}
		for _, id := range p.OrderIDs() {
			if !p.Contains(id) {
				continue // left earlier this pass inside a dispatched group
			}
			bg, exp, ok := p.BestGroup(id)
			if !ok {
				w64(tagNoGroup)
				w64(uint64(id))
				continue
			}
			w64(tagBest)
			w64(uint64(id))
			w64(math.Float64bits(exp))
			w64(math.Float64bits(bg.Plan.Cost))
			for i, s := range bg.Plan.Stops {
				w64(uint64(s.OrderID))
				w64(uint64(s.Node))
				w64(uint64(s.Kind))
				w64(math.Float64bits(bg.Plan.Arrive[i]))
			}
			// Last-call dispatch: the group leaves before its horizon dies.
			if exp < now+30 {
				w64(tagDispatch)
				w64(uint64(id))
				p.RemoveGroup(bg, now)
			}
		}
	}
	return h.Sum64(), time.Since(start).Seconds(), p
}

// runBenchPool measures what the clique plan cache buys on the pool
// maintenance hot path. The primary arm replays a deterministic
// insert/expire/dispatch trace on a perturbed-grid road graph twice —
// memoization on vs off — and verifies every best-group decision is
// bit-identical before reporting the wall-clock ratio. A secondary arm
// runs full CDC simulations (WATTER-online and WATTER-timeout) cache-on
// and cache-off and requires bit-identical Metrics, pinning the
// determinism contract end to end.
func runBenchPool(path string, scale float64, seed int64, quiet bool) error {
	side := int(36 * math.Sqrt(scale))
	if side < 14 {
		side = 14
	}
	n := int(900 * scale)
	if n < 60 {
		return fmt.Errorf("benchpool: scale %.2f too small", scale)
	}
	const horizon = 1800.0
	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}
	g := roadnet.NewPerturbedGrid(side, side, 200, 8, 0.3, seed)
	orders := poolWorkload(g, side, n, horizon, seed)
	logf("benchpool: %dx%d city (%d nodes), %d orders over %.0fs\n",
		side, side, g.NumNodes(), len(orders), horizon)

	ticks := int(horizon+300)/10 + 1
	uncachedDigest, uncachedSecs, _ := runPoolTrace(g, orders, horizon, true)
	logf("benchpool: uncached trace %.3fs\n", uncachedSecs)
	cachedDigest, cachedSecs, cp := runPoolTrace(g, orders, horizon, false)
	logf("benchpool: cached trace %.3fs\n", cachedSecs)
	st := cp.CacheStats()
	decisionsSame := cachedDigest == uncachedDigest

	// Sim-level determinism: full runs, cache on vs off, bit-identical.
	simAlgs := []string{"WATTER-online", "WATTER-timeout"}
	base := exp.DefaultParams(dataset.CDC())
	base.Seed = seed
	base.Orders = int(float64(base.Orders) * scale)
	base.Workers = int(float64(base.Workers) * scale)
	identical := true
	var simCached, simUncached float64
	for _, name := range simAlgs {
		runSim := func(disable bool) (*sim.Metrics, float64) {
			city := base.City.Build()
			workers := city.Workers(base.Workers, base.MaxCap, base.Seed+1000)
			cfg := sim.DefaultConfig()
			cfg.GridN = base.GridN
			cfg.Capacity = base.MaxCap
			alg := exp.MustBuild(name, base)
			if ps, ok := alg.(interface{ SetPoolOptions(pool.Options) }); ok {
				opt := pool.DefaultOptions()
				opt.Capacity = base.MaxCap
				opt.MaxGroupSize = base.MaxCap
				opt.DisablePlanCache = disable
				ps.SetPoolOptions(opt)
			}
			workload := city.Orders(dataset.WorkloadConfig{
				Orders: base.Orders, Seed: base.Seed, TauScale: base.TauScale, Eta: base.Eta,
			})
			startSim := time.Now()
			m := sim.Run(sim.NewEnv(city.Net, workers, cfg), alg, workload,
				sim.RunOptions{TickEvery: base.TickEvery})
			return m, time.Since(startSim).Seconds()
		}
		mc, sc := runSim(false)
		mu, su := runSim(true)
		simCached += sc
		simUncached += su
		if *mc != *mu {
			identical = false
			logf("benchpool: %s diverged:\ncached:   %+v\nuncached: %+v\n", name, *mc, *mu)
		}
	}

	rep := poolReport{
		City:              fmt.Sprintf("perturbed-grid-%dx%d", side, side),
		Nodes:             g.NumNodes(),
		Orders:            len(orders),
		Ticks:             ticks,
		Scale:             scale,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		UncachedSeconds:   uncachedSecs,
		CachedSeconds:     cachedSecs,
		Speedup:           uncachedSecs / cachedSecs,
		CacheHits:         st.Hits,
		NegativeHits:      st.NegativeHits,
		CacheMisses:       st.Misses,
		Renewed:           st.Renewed,
		HitRate:           st.HitRate(),
		PlansAvoided:      st.PlansAvoided(),
		PlansMaterialized: st.PlansMaterialized,
		PlansReused:       st.PlansReused,
		LegBlocks:         cp.LegBlocks(),
		DecisionsSame:     decisionsSame,
		SimCity:           "CDC",
		SimAlgs:           strings.Join(simAlgs, ","),
		SimCachedSecs:     simCached,
		SimUncachedSecs:   simUncached,
		Identical:         identical,
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchpool: uncached=%.3fs cached=%.3fs speedup=%.1fx hit-rate=%.1f%% plans-avoided=%d decisions-identical=%v metrics-identical=%v\n",
		rep.UncachedSeconds, rep.CachedSeconds, rep.Speedup, 100*rep.HitRate, rep.PlansAvoided, rep.DecisionsSame, rep.Identical)
	if !decisionsSame {
		return fmt.Errorf("benchpool: cached pool decisions diverged from the replan-always reference")
	}
	if !identical {
		return fmt.Errorf("benchpool: sim metrics diverged with the plan cache on")
	}
	if rep.HitRate <= 0 {
		return fmt.Errorf("benchpool: cache recorded no hits (rate %.3f)", rep.HitRate)
	}
	if rep.Speedup <= 1 {
		return fmt.Errorf("benchpool: cached arm (%.3fs) did not beat replan-always (%.3fs)", cachedSecs, uncachedSecs)
	}
	return nil
}

// shardReport is the JSON shape of the slot-sharded dispatch benchmark
// (BENCH_shard.json).
type shardReport struct {
	City              string  `json:"city"`
	Nodes             int     `json:"nodes"`
	Orders            int     `json:"orders"`
	Workers           int     `json:"workers"`
	Scale             float64 `json:"scale"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	Shards            int     `json:"shards"`
	Algs              string  `json:"algs"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	ShardedSeconds    float64 `json:"sharded_seconds"`
	Speedup           float64 `json:"speedup"`
	SpecOrders        uint64  `json:"spec_orders"`
	SpecHits          uint64  `json:"spec_hits"`
	SpecInvalidated   uint64  `json:"spec_invalidated"`
	SpecMisses        uint64  `json:"spec_misses"`
	SpecHitRate       float64 `json:"spec_hit_rate"`
	PrewarmTasks      uint64  `json:"prewarm_tasks"`
	SlotHandoffs      uint64  `json:"slot_handoffs"`
	Identical         bool    `json:"metrics_bit_identical"`
}

// runBenchShard measures what the slot-sharded dispatch engine buys on a
// single simulation: the same Graph-backed city workload (real ALT routing
// behind every worker probe, like production road networks) runs through
// the platform with the sequential K=1 check and with K shards, for both
// WATTER-online and WATTER-timeout. Metrics must be bit-identical — the
// engine's whole contract — and the report tracks the wall-clock ratio.
// Like BENCH_sweep.json, the recorded speedup only exceeds 1 on multi-core
// hardware: on a 1-core container the sharded arm pays the speculation
// overhead with nothing to parallelize onto, so expect ~1x there and ~Kx
// scaling with cores (the speculation phase is embarrassingly parallel).
func runBenchShard(path string, scale float64, seed int64, shards int, quiet bool) error {
	side := int(36 * math.Sqrt(scale))
	if side < 14 {
		side = 14
	}
	n := int(900 * scale)
	if n < 60 {
		return fmt.Errorf("benchshard: scale %.2f too small", scale)
	}
	m := int(90 * scale)
	if m < 10 {
		m = 10
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards < 2 {
		shards = 2 // still proves the equivalence contract on 1 core
	}
	const horizon = 1800.0
	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}
	g := roadnet.NewPerturbedGrid(side, side, 200, 8, 0.3, seed)
	orders := poolWorkload(g, side, n, horizon, seed)
	mkWorkers := func() []*order.Worker {
		rng := rand.New(rand.NewSource(seed*131 + 17))
		ws := make([]*order.Worker, m)
		for i := range ws {
			ws[i] = &order.Worker{ID: i + 1, Loc: geo.NodeID(rng.Intn(side * side)), Capacity: 4}
		}
		return ws
	}
	logf("benchshard: %dx%d city (%d nodes), %d orders, %d workers, K=%d\n",
		side, side, g.NumNodes(), len(orders), m, shards)

	algs := []string{"WATTER-online", "WATTER-timeout"}
	cfg := sim.DefaultConfig()
	runArm := func(name string, k int) (*sim.Metrics, float64, *platform.Platform, error) {
		var fw *core.Framework
		switch name {
		case "WATTER-online":
			fw = core.New(strategy.Online{}, pool.DefaultOptions())
		case "WATTER-timeout":
			fw = core.New(strategy.Timeout{Tick: 10}, pool.DefaultOptions())
		}
		p, err := platform.New(g, mkWorkers(),
			platform.WithConfig(cfg),
			platform.WithTick(10),
			platform.WithMeasuredTime(false),
			platform.WithAlgorithm(fw),
			platform.WithShards(k),
		)
		if err != nil {
			return nil, 0, nil, err
		}
		start := time.Now()
		metrics, err := p.Replay(orders)
		if err != nil {
			return nil, 0, nil, err
		}
		return metrics, time.Since(start).Seconds(), p, nil
	}

	var seqSecs, shardSecs float64
	identical := true
	var stats shard.Stats
	for _, name := range algs {
		seqM, ss, _, err := runArm(name, 1)
		if err != nil {
			return err
		}
		shardM, hs, plat, err := runArm(name, shards)
		if err != nil {
			return err
		}
		seqSecs += ss
		shardSecs += hs
		if *seqM != *shardM {
			identical = false
			logf("benchshard: %s diverged:\nK=1: %+v\nK=%d: %+v\n", name, *seqM, shards, *shardM)
		}
		if ps := plat.Stats(); ps.ShardActive {
			st := ps.Shard
			stats.Ticks += st.Ticks
			stats.SpecOrders += st.SpecOrders
			stats.GroupHits += st.GroupHits
			stats.GroupInvalid += st.GroupInvalid
			stats.GroupMiss += st.GroupMiss
			stats.SoloHits += st.SoloHits
			stats.SoloInvalid += st.SoloInvalid
			stats.SoloMiss += st.SoloMiss
			stats.PrewarmTasks += st.PrewarmTasks
			stats.SlotHandoffs += st.SlotHandoffs
		}
		logf("benchshard: %s sequential=%.3fs sharded(%d)=%.3fs identical=%v\n",
			name, ss, shards, hs, *seqM == *shardM)
	}

	hits := stats.GroupHits + stats.SoloHits
	invalid := stats.GroupInvalid + stats.SoloInvalid
	misses := stats.GroupMiss + stats.SoloMiss
	hitRate := 0.0
	if total := hits + invalid + misses; total > 0 {
		hitRate = float64(hits) / float64(total)
	}
	rep := shardReport{
		City:              fmt.Sprintf("perturbed-grid-%dx%d", side, side),
		Nodes:             g.NumNodes(),
		Orders:            len(orders),
		Workers:           m,
		Scale:             scale,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Shards:            shards,
		Algs:              strings.Join(algs, ","),
		SequentialSeconds: seqSecs,
		ShardedSeconds:    shardSecs,
		Speedup:           seqSecs / shardSecs,
		SpecOrders:        stats.SpecOrders,
		SpecHits:          hits,
		SpecInvalidated:   invalid,
		SpecMisses:        misses,
		SpecHitRate:       hitRate,
		PrewarmTasks:      stats.PrewarmTasks,
		SlotHandoffs:      stats.SlotHandoffs,
		Identical:         identical,
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchshard: sequential=%.3fs sharded(%d)=%.3fs speedup=%.2fx spec-hit-rate=%.1f%% prewarmed=%d handoffs=%d identical=%v\n",
		rep.SequentialSeconds, rep.Shards, rep.ShardedSeconds, rep.Speedup, 100*rep.SpecHitRate,
		rep.PrewarmTasks, rep.SlotHandoffs, rep.Identical)
	if !identical {
		return fmt.Errorf("benchshard: sharded metrics diverged from the sequential check")
	}
	if hits == 0 {
		return fmt.Errorf("benchshard: the engine never served a speculation (hit rate 0)")
	}
	return nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
