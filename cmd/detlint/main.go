// Command detlint is the multichecker for the repo's determinism
// contract (DESIGN.md §11–§12). It type-checks the requested packages
// from source and runs the detlint analyzers — maprange, walltime,
// globalrand, floatrange, and the interprocedural specpure, hotalloc,
// goroutinewrite — printing findings in go-vet format and exiting 1
// when any exist.
//
// Usage:
//
//	go run ./cmd/detlint [-json] [-annotations] [packages]
//
// Packages default to ./... relative to the enclosing module root. With
// -json, findings are emitted as a machine-readable report on stdout
// (CI uploads it as a workflow artifact alongside the bench reports).
// With -annotations, the tool instead prints an inventory of every
// //det: tag in the tree (location, tag, justification) and exits 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"watter/internal/detlint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON report on stdout")
	annotations := flag.Bool("annotations", false, "print an inventory of every //det: tag in the tree and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: detlint [-json] [-annotations] [packages]\n\nanalyzers:\n")
		for _, a := range detlint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	modDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	if *annotations {
		if err := printAnnotations(modDir, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			os.Exit(2)
		}
		return
	}
	diags, npkgs, err := lint(modDir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		report := struct {
			Tool     string            `json:"tool"`
			Packages int               `json:"packages"`
			Findings []jsonFinding     `json:"findings"`
			Clean    bool              `json:"clean"`
			Counts   map[string]int    `json:"counts_by_analyzer"`
			Doc      map[string]string `json:"analyzers"`
		}{
			Tool:     "detlint",
			Packages: npkgs,
			Findings: make([]jsonFinding, 0, len(diags)),
			Clean:    len(diags) == 0,
			Counts:   make(map[string]int),
			Doc:      make(map[string]string),
		}
		for _, a := range detlint.All() {
			report.Doc[a.Name] = a.Doc
		}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonFinding{
				Analyzer: d.Analyzer,
				Pos:      relPos(modDir, d),
				Message:  d.Message,
			})
			report.Counts[d.Analyzer]++
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	Pos      string `json:"pos"`
	Message  string `json:"message"`
}

// printAnnotations renders the //det: inventory (sorted, module-relative)
// as text or JSON.
func printAnnotations(modDir string, jsonOut bool) error {
	recs, err := detlint.CollectAnnotations(modDir)
	if err != nil {
		return err
	}
	if jsonOut {
		report := struct {
			Tool        string                     `json:"tool"`
			Annotations []detlint.AnnotationRecord `json:"annotations"`
			Count       int                        `json:"count"`
		}{Tool: "detlint-annotations", Annotations: recs, Count: len(recs)}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	for _, r := range recs {
		reason := r.Reason
		if reason == "" {
			reason = "(bare — fails the annotation audit)"
		}
		fmt.Printf("%s:%d: //det:%s %s\n", r.File, r.Line, r.Tag, reason)
	}
	fmt.Fprintf(os.Stderr, "detlint: %d annotation(s)\n", len(recs))
	return nil
}

// lint loads the patterns and runs the full suite, returning sorted
// findings and the number of packages analyzed.
func lint(modDir string, patterns []string) ([]detlint.Diagnostic, int, error) {
	loader, err := detlint.NewLoader(modDir)
	if err != nil {
		return nil, 0, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, 0, err
	}
	// One effects Program over every loaded package, so specpure and
	// hotalloc see cross-package calls and CHA targets.
	prog := detlint.NewProgram(pkgs)
	var all []detlint.Diagnostic
	for _, pkg := range pkgs {
		diags, err := detlint.RunWith(pkg, detlint.All(), prog)
		if err != nil {
			return nil, 0, err
		}
		all = append(all, diags...)
	}
	detlint.SortDiagnostics(all)
	return all, len(pkgs), nil
}

// relPos renders a finding position relative to the module root so
// reports are stable across checkouts.
func relPos(modDir string, d detlint.Diagnostic) string {
	p := d.Pos
	if rel, err := filepath.Rel(modDir, p.Filename); err == nil {
		p.Filename = rel
	}
	return p.String()
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
