package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSeededInjections builds a throwaway module containing one
// violation of each class the suite enforces and asserts every analyzer
// fires — the CI-facing proof that a regression in any class cannot
// land silently.
func TestSeededInjections(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module injected\n\ngo 1.24\n")
	write("bad/bad.go", `package bad

import (
	"math/rand"
	"time"
)

func MapOrderLeak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func WallClock() time.Time {
	return time.Now()
}

func GlobalRandomness(n int) int {
	return rand.Intn(n)
}

func FloatFold(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
`)
	write("effects/effects.go", `package effects

var hits int

//det:specroot speculation must not touch shared state
func Speculate(id int) {
	record(id)
}

func record(id int) {
	hits = id
}

//det:hotpath steady-state dispatch must not allocate
func HotLookup(n int) []int {
	return make([]int, n)
}

func RacyLaunch() int {
	x := 0
	go func() {
		x++
	}()
	return x
}
`)
	diags, npkgs, err := lint(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if npkgs != 2 {
		t.Fatalf("analyzed %d packages, want 2", npkgs)
	}
	got := make(map[string]int)
	for _, d := range diags {
		got[d.Analyzer]++
	}
	for _, name := range []string{
		"maprange", "walltime", "globalrand", "floatrange",
		"specpure", "hotalloc", "goroutinewrite",
	} {
		if got[name] == 0 {
			t.Errorf("injected %s violation not detected; findings: %v", name, diags)
		}
	}
}

// TestRepoIsClean runs the full suite over this repository — the same
// gate CI runs — so `go test ./...` alone already enforces the static
// determinism contract.
func TestRepoIsClean(t *testing.T) {
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	diags, npkgs, err := lint(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if npkgs == 0 {
		t.Fatal("no packages analyzed")
	}
	if len(diags) != 0 {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString("\n  " + d.String())
		}
		t.Fatalf("detlint findings in the tree:%s", b.String())
	}
}
