// Command wattersim runs one ridesharing simulation: a single city,
// workload and algorithm, reporting the four paper metrics and the
// dispatched group-size histogram.
//
// Usage:
//
//	wattersim -city nyc -alg WATTER-expect -n 3000 -m 220
//	wattersim -alg GDP -tau 1.2
//	wattersim -alg WATTER-timeout -replicates 8 -parallel 4
//	wattersim -alg WATTER-online -cities 4
//
// With -cities N the configuration runs as N instances of the city
// (independent seed-derived workloads) behind one dispatch proxy, and the
// metrics aggregate across cities.
//
// With -replicates R the same configuration runs under R consecutive
// seeds (concurrently, bounded by -parallel) and the four paper metrics
// are reported as mean ± 95% CI.
package main

import (
	"flag"
	"fmt"
	"os"

	"watter/internal/dataset"
	"watter/internal/exp"
)

func main() {
	var (
		city       = flag.String("city", "cdc", "city: nyc, cdc, xia, met")
		alg        = flag.String("alg", "WATTER-expect", "algorithm: GDP, GAS, WATTER-online, WATTER-timeout, WATTER-expect")
		n          = flag.Int("n", 0, "order count (0 = city default)")
		m          = flag.Int("m", 0, "worker count (0 = city default)")
		tau        = flag.Float64("tau", 1.6, "deadline scale")
		eta        = flag.Float64("eta", 0.8, "watching window scale")
		kw         = flag.Int("kw", 4, "max vehicle capacity")
		dt         = flag.Float64("dt", 10, "periodic check interval Δt (s)")
		cities     = flag.Int("cities", 1, "city instances behind one dispatch proxy (>1 = multi-city front tier, metrics aggregated)")
		seed       = flag.Int64("seed", 1, "workload seed (first replicate)")
		replicates = flag.Int("replicates", 1, "seed replicates (metrics become mean ± CI)")
		parallel   = flag.Int("parallel", 0, "max concurrent replicate runs (0 = GOMAXPROCS)")
		model      = flag.String("model", "", "run WATTER-expect from a saved wattertrain bundle instead of retraining")
	)
	flag.Parse()

	profile, err := dataset.ByName(*city)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p := exp.DefaultParams(profile)
	if *n > 0 {
		p.Orders = *n
	}
	if *m > 0 {
		p.Workers = *m
	}
	p.TauScale = *tau
	p.Eta = *eta
	p.MaxCap = *kw
	p.TickEvery = *dt
	p.NumCities = *cities
	p.Seed = *seed
	// Pin the offline pipeline to the first seed so replicates share one
	// trained model (identical to p.Seed for single runs).
	p.Train.Seed = *seed

	runner := exp.NewRunner()
	runner.Out = os.Stderr
	if *model != "" {
		if *alg != "WATTER-expect" {
			fmt.Fprintln(os.Stderr, "-model only applies to WATTER-expect")
			os.Exit(2)
		}
		f, err := os.Open(*model)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		loaded, err := exp.LoadTrained(f, profile.Build().Net)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runner.UseModel(p, loaded)
	}
	if *replicates > 1 {
		runReplicated(runner, *alg, p, *replicates, *parallel, profile)
		return
	}
	res, err := runner.RunOne(*alg, p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mt := res.Metrics
	fmt.Printf("city=%s alg=%s n=%d m=%d tau=%.2f eta=%.2f Kw=%d dt=%.0fs%s\n",
		profile.Name, *alg, p.Orders, p.Workers, p.TauScale, p.Eta, p.MaxCap, p.TickEvery,
		citySuffix(p.NumCities))
	fmt.Printf("  extra time (Φ):   %.0f s  (served %.0f + penalties %.0f)\n",
		mt.ExtraTime(), mt.ServedExtra, mt.PenaltySum)
	fmt.Printf("  unified cost:     %.0f\n", mt.UnifiedCost())
	fmt.Printf("  service rate:     %.1f%% (%d/%d)\n", 100*mt.ServiceRate(), mt.Served, mt.Total)
	fmt.Printf("  running time:     %.6f s/order\n", mt.RunningTime())
	fmt.Printf("  avg response:     %.1f s, avg detour: %.1f s (served orders)\n",
		safeDiv(mt.ResponseSum, mt.Served), safeDiv(mt.DetourSum, mt.Served))
	fmt.Printf("  group sizes:      ")
	for k := 1; k < len(mt.GroupSizeHist); k++ {
		if mt.GroupSizeHist[k] > 0 {
			fmt.Printf("%dx%d ", k, mt.GroupSizeHist[k])
		}
	}
	fmt.Printf("(avg %.2f)\n", mt.AvgGroupSize())
	fmt.Printf("  wall time:        %s\n", res.Elapsed.Round(1e6))
}

func citySuffix(n int) string {
	if n <= 1 {
		return ""
	}
	return fmt.Sprintf(" cities=%d", n)
}

func safeDiv(a float64, b int) float64 {
	if b == 0 {
		return 0
	}
	return a / float64(b)
}

// runReplicated executes the configuration across consecutive seeds on the
// sweep engine and reports cross-seed summaries.
func runReplicated(runner *exp.Runner, alg string, p exp.Params, replicates, parallel int, profile dataset.Profile) {
	engine := &exp.SweepRunner{Runner: runner, Parallel: parallel}
	res, err := engine.Run(exp.Matrix{
		Base:  p,
		Algs:  []string{alg},
		Seeds: exp.ReplicateSeeds(p.Seed, replicates),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	c := res.Cells[0]
	fmt.Printf("city=%s alg=%s n=%d m=%d tau=%.2f eta=%.2f Kw=%d dt=%.0fs replicates=%d seeds=%v\n",
		profile.Name, alg, p.Orders, p.Workers, p.TauScale, p.Eta, p.MaxCap, p.TickEvery,
		replicates, c.Seeds)
	fmt.Printf("  extra time (Φ):   %s\n", c.ExtraTime)
	fmt.Printf("  unified cost:     %s\n", c.UnifiedCost)
	fmt.Printf("  service rate:     %s\n", c.ServiceRate)
	fmt.Printf("  running time:     %s s/order\n", c.RunningTime)
	fmt.Printf("  wall time:        %.2fs total, %s s/run\n", res.Elapsed.Seconds(), c.Elapsed)
}
