// Command wattertrain runs WATTER's offline stage in isolation: simulate a
// historical day under the behavior policy, fit the extra-time GMM, train
// the value network with the blended TD + target loss, and save the
// network weights for later online use.
//
// Usage:
//
//	wattertrain -city nyc -hist 3000 -steps 3000 -out model-nyc.gob
//	wattersim -city nyc -alg WATTER-expect -model model-nyc.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"watter/internal/dataset"
	"watter/internal/exp"
)

func main() {
	var (
		city  = flag.String("city", "cdc", "city: nyc, cdc, xia")
		hist  = flag.Int("hist", 2000, "historical order count for experience generation")
		steps = flag.Int("steps", 2000, "gradient steps")
		k     = flag.Int("k", 3, "GMM components")
		omega = flag.Float64("omega", 0.5, "loss blend ω (1 = pure TD, 0 = pure target)")
		out   = flag.String("out", "", "write trained network weights (gob) to this file")
		seed  = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	profile, err := dataset.ByName(*city)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p := exp.DefaultParams(profile)
	p.Seed = *seed
	p.Train.HistoricalOrders = *hist
	p.Train.TrainSteps = *steps
	p.Train.GMMComponents = *k
	p.Train.Omega = *omega

	runner := exp.NewRunner()
	runner.Out = os.Stderr
	trained := runner.Train(p)

	fmt.Printf("city=%s replay=%d params=%d\n",
		profile.Name, trained.Trainer.ReplayLen(), trained.Trainer.Network().NumParams())
	fmt.Println("fitted extra-time GMM components (weight, mean s, stddev s):")
	for _, c := range trained.GMM.Components {
		fmt.Printf("  %.3f  %8.1f  %8.1f\n", c.Weight, c.Mean, c.StdDev)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trained.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved model bundle (featurizer + GMM + value net) to %s\n", *out)
	}
}
