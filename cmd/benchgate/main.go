// Command benchgate is the CI bench-regression gate: it compares freshly
// produced benchmark reports against the committed BENCH_*.json baselines
// and fails when the perf trajectory regresses. Until now CI *wrote* the
// bench JSONs but never *checked* them — a routing or caching regression
// would merge silently; benchgate turns the smoke runs into an enforced
// contract.
//
// Usage:
//
//	benchgate [-frac 0.6] [-growth 1.5] BASELINE=FRESH [BASELINE=FRESH ...]
//
// For every baseline/fresh report pair, three families of keys are gated:
//
//   - correctness flags — every baseline key matching *identical* or
//     *deterministic* that is true (metrics_bit_identical,
//     journal_deterministic, rate_search_deterministic, ...) must be true
//     in the fresh report. These are hard guarantees: any false is a bug,
//     not noise.
//   - speedups and throughput — every numeric key containing "speedup" or
//     "sustain" (sustained_orders_per_sec, max_sustainable_rate) must be
//     at least -frac of the baseline value (default 0.6x: generous enough
//     for shared CI runners, tight enough to catch a lost optimization).
//   - overheads and latency tails — lower-is-better keys containing
//     "overhead_factor" or "p99_latency" may grow to at most -growth
//     times the baseline (default 1.5x). The p999 tail is reported but
//     not gated: with a handful of observations per smoke run its bucket
//     is too jumpy to hold a ratio against ("p999_latency_s" deliberately
//     does not contain the substring "p99_latency").
//
// Reports may be flat objects or carry a "rows" array of per-scale rows
// (BENCH_routing.json, BENCH_load.json): rows are matched between
// baseline and fresh by their "city" key ("scenario" when no city key
// exists) and gated with the same families, reported as rows[<name>].<key>.
// Correctness flags are additionally absolute: any false hard flag
// anywhere in a fresh report fails the gate even when the baseline has no
// matching row — a new city scale never gets to ship with broken
// bit-identity.
//
// Exit status is non-zero when any gate fails or a report is missing, so
// the CI job fails loudly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type gateResult struct {
	pair string
	key  string
	ok   bool
	note string
}

func main() {
	frac := flag.Float64("frac", 0.6, "minimum fresh/baseline speedup fraction")
	growth := flag.Float64("growth", 1.5, "maximum fresh/baseline growth for lower-is-better factors")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no BASELINE=FRESH pairs given")
		os.Exit(2)
	}
	if *frac <= 0 || *growth < 1 {
		fmt.Fprintf(os.Stderr, "benchgate: -frac must be positive and -growth at least 1 (got %v, %v)\n", *frac, *growth)
		os.Exit(2)
	}

	var results []gateResult
	failed := false
	for _, pair := range flag.Args() {
		basePath, freshPath, ok := strings.Cut(pair, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: malformed pair %q (want BASELINE=FRESH)\n", pair)
			os.Exit(2)
		}
		rs, err := gatePair(basePath, freshPath, *frac, *growth)
		if err != nil {
			results = append(results, gateResult{pair: pair, key: "-", ok: false, note: err.Error()})
			failed = true
			continue
		}
		for _, r := range rs {
			if !r.ok {
				failed = true
			}
			results = append(results, r)
		}
	}

	for _, r := range results {
		status := "ok  "
		if !r.ok {
			status = "FAIL"
		}
		fmt.Printf("%s  %-46s %-28s %s\n", status, r.pair, r.key, r.note)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchgate: benchmark baselines regressed")
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d checks passed across %d report pairs\n", len(results), flag.NArg())
}

// gatePair loads one baseline/fresh report pair and evaluates every gated
// key of the baseline against the fresh values.
func gatePair(basePath, freshPath string, frac, growth float64) ([]gateResult, error) {
	base, err := loadReport(basePath)
	if err != nil {
		return nil, fmt.Errorf("baseline: %v", err)
	}
	fresh, err := loadReport(freshPath)
	if err != nil {
		return nil, fmt.Errorf("fresh: %v", err)
	}
	pair := fmt.Sprintf("%s=%s", basePath, freshPath)
	// Speedups are workload-dependent: comparing reports produced at
	// different -scale values would gate noise, so a mismatch is itself a
	// failure (regenerate one side at the other's scale).
	if bs, ok := base["scale"].(float64); ok {
		if fs, ok := fresh["scale"].(float64); ok && fs != bs {
			return nil, fmt.Errorf("scale mismatch: baseline %v vs fresh %v", bs, fs)
		}
	}
	base, fresh = flatten(base), flatten(fresh)
	// Gate in sorted key order so the report (and the first failure CI
	// prints) is identical run to run — the gate holds itself to the
	// determinism bar it enforces.
	keys := make([]string, 0, len(base))
	for key := range base {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var rs []gateResult
	gated := 0
	covered := make(map[string]bool)
	for _, key := range keys {
		bv := base[key]
		switch {
		case isHardFlag(key):
			bb, ok := bv.(bool)
			if !ok || !bb {
				continue // a baseline that never held the guarantee can't gate it
			}
			gated++
			covered[key] = true
			fb, ok := fresh[key].(bool)
			rs = append(rs, gateResult{
				pair: pair, key: key, ok: ok && fb,
				note: fmt.Sprintf("baseline=true fresh=%v", fresh[key]),
			})
		case strings.Contains(key, "speedup"), strings.Contains(key, "sustain"):
			bf, ok := bv.(float64)
			if !ok || bf <= 0 {
				continue
			}
			gated++
			ff, ok := fresh[key].(float64)
			floor := frac * bf
			rs = append(rs, gateResult{
				pair: pair, key: key, ok: ok && ff >= floor,
				note: fmt.Sprintf("fresh=%.3f floor=%.3f (baseline=%.3f x frac=%.2f)", ff, floor, bf, frac),
			})
		case strings.Contains(key, "overhead_factor"), strings.Contains(key, "p99_latency"):
			bf, ok := bv.(float64)
			if !ok || bf <= 0 {
				continue
			}
			gated++
			ff, ok := fresh[key].(float64)
			ceil := growth * bf
			rs = append(rs, gateResult{
				pair: pair, key: key, ok: ok && ff <= ceil,
				note: fmt.Sprintf("fresh=%.3f ceiling=%.3f (baseline=%.3f x growth=%.2f)", ff, ceil, bf, growth),
			})
		}
	}
	// Correctness flags are absolute, not merely non-regressing: a fresh
	// row the baseline has never seen (a new city scale) still must hold
	// every bit-identity guarantee it claims a flag for.
	fkeys := make([]string, 0, len(fresh))
	for key := range fresh {
		fkeys = append(fkeys, key)
	}
	sort.Strings(fkeys)
	for _, key := range fkeys {
		if covered[key] || !isHardFlag(key) {
			continue
		}
		if fb, ok := fresh[key].(bool); ok && !fb {
			gated++
			rs = append(rs, gateResult{
				pair: pair, key: key, ok: false,
				note: "fresh=false (hard guarantee, gated without baseline coverage)",
			})
		}
	}
	if gated == 0 {
		return nil, fmt.Errorf("baseline %s exposes no gated keys (identical/deterministic/speedup/sustain/overhead_factor/p99_latency)", basePath)
	}
	// Stable output: sort by key.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].key < rs[j-1].key; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	return rs, nil
}

// isHardFlag reports whether a key names a boolean guarantee gated as a
// hard pass/fail: bit-identity flags and run-to-run determinism flags.
func isHardFlag(key string) bool {
	return strings.Contains(key, "identical") || strings.Contains(key, "deterministic")
}

// flatten folds a report's "rows" array (if any) into the flat key space:
// each row becomes rows[<name>].<key> entries, matched across reports by
// the row's "city" value, then its "scenario" value (BENCH_load.json),
// then its index. Scalar keys pass through untouched, so flat reports
// gate exactly as before.
func flatten(m map[string]any) map[string]any {
	rows, ok := m["rows"].([]any)
	if !ok {
		return m
	}
	out := make(map[string]any, len(m))
	for k, v := range m {
		if k != "rows" {
			out[k] = v
		}
	}
	for i, rv := range rows {
		row, ok := rv.(map[string]any)
		if !ok {
			continue
		}
		name := fmt.Sprintf("%d", i)
		if city, ok := row["city"].(string); ok && city != "" {
			name = city
		} else if scen, ok := row["scenario"].(string); ok && scen != "" {
			name = scen
		}
		//det:unordered pure map-to-map copy under an injective key rename; consumers re-sort the flat key space
		for k, v := range row {
			if k == "city" || k == "scenario" {
				continue
			}
			out[fmt.Sprintf("rows[%s].%s", name, k)] = v
		}
	}
	return out
}

func loadReport(path string) (map[string]any, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return m, nil
}
