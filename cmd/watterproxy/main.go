// Command watterproxy demonstrates and verifies the multi-city front
// tier: N city platforms behind one dispatch proxy, with the two
// properties that make the tier honest checked end to end —
//
//   - isolation: every city's metrics under the proxy are bit-identical
//     to the same city run alone on a standalone platform;
//   - recoverability: a city killed mid-run is rebuilt from its recorded
//     event journal, and the healed run's metrics are bit-identical to an
//     uninterrupted one.
//
// Usage:
//
//	watterproxy                         # 3 cities, 2 seeds, full verify
//	watterproxy -cities 6 -alg WATTER-timeout
//	watterproxy -json /tmp/bench_proxy_ci.json   # CI report for benchgate
//
// City profiles cycle through CDC, NYC and XIA. The JSON report's
// per_city_isolation_identical and ha_restart_identical flags are gated
// by cmd/benchgate against the committed BENCH_proxy.json baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"watter/internal/dataset"
	"watter/internal/exp"
	"watter/internal/order"
	"watter/internal/platform"
	"watter/internal/proxy"
	"watter/internal/sim"
)

func main() {
	var (
		cities  = flag.Int("cities", 3, "number of proxied city platforms")
		orders  = flag.Int("orders", 400, "orders per city")
		workers = flag.Int("workers", 30, "workers per city")
		alg     = flag.String("alg", "WATTER-online", "dispatch algorithm for every city")
		seed    = flag.Int64("seed", 1, "first workload seed")
		nseeds  = flag.Int("nseeds", 2, "seed replicates (each verified independently)")
		jsonOut = flag.String("json", "", "write a machine-readable report to this file")
		quiet   = flag.Bool("quiet", false, "suppress per-city lines")
	)
	flag.Parse()
	if *cities < 1 || *orders < 1 || *workers < 1 || *nseeds < 1 {
		fmt.Fprintln(os.Stderr, "watterproxy: -cities, -orders, -workers and -nseeds must be positive")
		os.Exit(2)
	}

	isolationOK, haOK := true, true
	var proxySeconds float64
	var journalEvents, restarts, totalOrders int
	for s := 0; s < *nseeds; s++ {
		r := runSeed(*cities, *orders, *workers, *alg, *seed+int64(s)*101, *quiet)
		isolationOK = isolationOK && r.isolation
		haOK = haOK && r.ha
		proxySeconds += r.proxySeconds
		journalEvents += r.journalEvents
		restarts += r.restarts
		totalOrders += r.orders
	}

	fmt.Printf("cities=%d orders/city=%d workers/city=%d alg=%s seeds=%d\n",
		*cities, *orders, *workers, *alg, *nseeds)
	fmt.Printf("  proxy throughput:        %.0f orders/s (%d orders in %.2fs)\n",
		float64(totalOrders)/proxySeconds, totalOrders, proxySeconds)
	fmt.Printf("  journal events:          %d (%d HA restarts replayed)\n", journalEvents, restarts)
	fmt.Printf("  per-city isolation:      bit-identical=%v\n", isolationOK)
	fmt.Printf("  HA journal-replay:       bit-identical=%v\n", haOK)

	if *jsonOut != "" {
		report := map[string]any{
			"cities":                       *cities,
			"orders_per_city":              *orders,
			"workers_per_city":             *workers,
			"alg":                          *alg,
			"seeds":                        *nseeds,
			"scale":                        1,
			"gomaxprocs":                   runtime.GOMAXPROCS(0),
			"orders_total":                 totalOrders,
			"proxy_seconds":                proxySeconds,
			"orders_per_sec":               float64(totalOrders) / proxySeconds,
			"journal_events":               journalEvents,
			"ha_restarts":                  restarts,
			"per_city_isolation_identical": isolationOK,
			"ha_restart_identical":         haOK,
		}
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if !isolationOK || !haOK {
		os.Exit(1)
	}
}

type seedResult struct {
	isolation, ha bool
	proxySeconds  float64
	journalEvents int
	restarts      int
	orders        int
}

// runSeed builds one fleet of cities and runs the three arms: standalone
// platforms (the reference), the proxy (isolation proof), and the proxy
// with a mid-run crash healed from the journal (recovery proof).
func runSeed(cities, orders, workers int, alg string, seed int64, quiet bool) seedResult {
	profiles := []dataset.Profile{dataset.CDC(), dataset.NYC(), dataset.XIA()}
	runner := exp.NewRunner()

	type cityDef struct {
		spec     proxy.CitySpec
		workload []*order.Order
	}
	defs := make([]cityDef, cities)
	for i := 0; i < cities; i++ {
		profile := profiles[i%len(profiles)]
		p := exp.DefaultParams(profile)
		p.Orders = orders
		p.Workers = workers
		p.Seed = seed + int64(i)*17
		city, os_, ws := exp.Workload(p)
		cfg := sim.DefaultConfig()
		cfg.GridN = p.GridN
		cfg.Capacity = p.MaxCap
		pc := p
		defs[i] = cityDef{
			spec: proxy.CitySpec{
				ID:      fmt.Sprintf("%s-%d", profile.Name, i+1),
				Net:     city.Net,
				Workers: ws,
				NewAlgorithm: func() sim.Algorithm {
					a, err := runner.Build(alg, pc)
					if err != nil {
						return nil
					}
					return a
				},
				Options: []platform.Option{
					platform.WithConfig(cfg),
					platform.WithTick(p.TickEvery),
					platform.WithMeasuredTime(false),
				},
			},
			workload: os_,
		}
	}

	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "watterproxy: seed %d: %v\n", seed, err)
		os.Exit(1)
	}

	// Arm 1: every city standalone — the isolation reference.
	standalone := make(map[string]sim.Metrics, cities)
	for _, d := range defs {
		ws := make([]*order.Worker, len(d.spec.Workers))
		for i, w := range d.spec.Workers {
			cp := *w
			ws[i] = &cp
		}
		a := d.spec.NewAlgorithm()
		if a == nil {
			fatal(fmt.Errorf("unknown algorithm %q", alg))
		}
		p, err := platform.New(d.spec.Net, ws, append(d.spec.Options[:len(d.spec.Options):len(d.spec.Options)],
			platform.WithAlgorithm(a))...)
		if err != nil {
			fatal(err)
		}
		m, err := p.Replay(d.workload)
		if err != nil {
			fatal(err)
		}
		standalone[d.spec.ID] = strip(m)
	}

	specs := make([]proxy.CitySpec, cities)
	workloads := make(map[string][]*order.Order, cities)
	nOrders := 0
	for i, d := range defs {
		specs[i] = d.spec
		workloads[d.spec.ID] = d.workload
		nOrders += len(d.workload)
	}

	// Arm 2: the proxy, uninterrupted.
	px, err := proxy.New(specs)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	proxied, err := px.Replay(workloads)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	journalLen := len(px.Journal())

	isolation := true
	// Report in city definition order, not map order, so runs print (and
	// fail) identically.
	for _, d := range defs {
		id, want := d.spec.ID, standalone[d.spec.ID]
		got := strip(proxied[id])
		if got != want {
			isolation = false
			fmt.Fprintf(os.Stderr, "  ISOLATION BROKEN %s:\n    proxy:      %+v\n    standalone: %+v\n", id, got, want)
		} else if !quiet {
			fmt.Printf("  [seed %d] %-8s served %d/%d, isolation ok\n", seed, id, got.Served, got.Total)
		}
	}

	// Arm 3: the proxy with a mid-run crash on the middle city, detected
	// by a probe and healed by journal replay.
	victim := specs[cities/2].ID
	px2, err := proxy.New(specs)
	if err != nil {
		fatal(err)
	}
	type entry struct {
		id string
		o  *order.Order
	}
	var feed []entry
	for _, d := range defs {
		for _, o := range d.workload {
			cp := *o
			feed = append(feed, entry{d.spec.ID, &cp})
		}
	}
	for i := 1; i < len(feed); i++ {
		for j := i; j > 0 && feed[j].o.Release < feed[j-1].o.Release; j-- {
			feed[j], feed[j-1] = feed[j-1], feed[j]
		}
	}
	for i, e := range feed {
		if i == len(feed)/2 {
			if err := px2.Admin().Kill(victim); err != nil {
				fatal(err)
			}
			for _, h := range px2.Admin().Probe() {
				if h.City == victim && !h.Recovered {
					fatal(fmt.Errorf("probe failed to heal %s: %v", victim, h.Err))
				}
			}
		}
		if err := px2.Submit(e.id, e.o); err != nil {
			fatal(err)
		}
	}
	healed, err := px2.Close()
	if err != nil {
		fatal(err)
	}
	restarts := px2.Admin().Stats().Restarts

	ha := true
	for _, d := range defs {
		id, want := d.spec.ID, proxied[d.spec.ID]
		if strip(healed[id]) != strip(want) {
			ha = false
			fmt.Fprintf(os.Stderr, "  HA DIVERGENCE %s:\n    healed: %+v\n    clean:  %+v\n", id, *healed[id], *want)
		}
	}
	if !quiet {
		fmt.Printf("  [seed %d] killed %s mid-run, %d restart(s), recovery identical=%v\n",
			seed, victim, restarts, ha)
	}

	return seedResult{
		isolation:     isolation,
		ha:            ha,
		proxySeconds:  elapsed,
		journalEvents: journalLen,
		restarts:      restarts,
		orders:        nOrders,
	}
}

// strip zeroes the one documented nondeterministic metrics field.
func strip(m *sim.Metrics) sim.Metrics {
	cp := *m
	cp.DecisionSeconds = 0
	return cp
}
