// Command dimacsgen writes a deterministic perturbed-grid city as a DIMACS
// .gr/.co pair (integer centisecond weights, centimeter coordinates — see
// internal/roadnet/importer.go for the format contract). The same flags
// always produce the same bytes, so generated fixtures can be checked in
// and regenerated verifiably (`make fixtures`).
package main

import (
	"flag"
	"fmt"
	"os"

	"watter/internal/roadnet"
)

func main() {
	var (
		w      = flag.Int("w", 320, "grid width in nodes")
		h      = flag.Int("h", 320, "grid height in nodes")
		cell   = flag.Float64("cell", 200, "cell edge length in meters")
		speed  = flag.Float64("speed", 8, "base travel speed in m/s")
		jitter = flag.Float64("jitter", 0.3, "per-edge weight jitter fraction")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("out", "city", "output path prefix (writes <out>.gr and <out>.co)")
	)
	flag.Parse()

	gr, err := os.Create(*out + ".gr")
	if err != nil {
		fatal(err)
	}
	co, err := os.Create(*out + ".co")
	if err != nil {
		fatal(err)
	}
	if err := roadnet.WriteDIMACSGrid(gr, co, *w, *h, *cell, *speed, *jitter, *seed); err != nil {
		fatal(err)
	}
	if err := gr.Close(); err != nil {
		fatal(err)
	}
	if err := co.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s.gr and %s.co (%d nodes)\n", *out, *out, *w**h)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dimacsgen:", err)
	os.Exit(1)
}
