// Command watterload is the open-loop load harness CLI: it drives a
// platform with Poisson, surge and heavy-tailed (Pareto) arrival processes
// on the virtual clock, measures sustained throughput, admit→dispatch
// latency tails, decision slip and the event-bus backpressure onset, and
// brackets the maximum sustainable arrival rate by deterministic
// bisection. Where every other bench replays a finite batch and reports
// wall-clock totals, watterload answers the production question: at what
// sustained orders/sec does the platform stop keeping its decision
// promises?
//
// Usage:
//
//	watterload                          # human-readable report, CDC smoke scale
//	watterload -json BENCH_load.json    # write the CI-gated report
//	watterload -rate 2 -workers 300 -horizon 1200
//	watterload -search=false            # skip the rate bisection
//
// Every measurement is virtual-clock deterministic: each scenario runs
// twice and the report's *_deterministic flags certify that both runs
// produced bit-identical order streams and decision journals. The only
// wall-clock number in the report is wall_seconds, the harness's own
// runtime.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"watter/internal/dataset"
	"watter/internal/load"
)

// row is one scenario's slice of the BENCH_load.json report. Scenario is
// the row-matching key (benchgate pairs rows across reports by it); the
// hashes are hex strings so JSON round-trips them exactly (uint64 loses
// bits through float64).
type row struct {
	Scenario         string  `json:"scenario"`
	Process          string  `json:"process"`
	Rate             float64 `json:"rate"`
	Orders           int     `json:"orders"`
	Served           int     `json:"served"`
	Rejected         int     `json:"rejected"`
	Ticks            int     `json:"ticks"`
	Sustained        float64 `json:"sustained_orders_per_sec"`
	P50              float64 `json:"p50_latency_s"`
	P99              float64 `json:"p99_latency_s"`
	P999             float64 `json:"p999_latency_s"`
	MeanLatency      float64 `json:"mean_latency_s"`
	SlipP99          float64 `json:"slip_p99_s"`
	FracWithinTick   float64 `json:"frac_within_tick"`
	ServiceRate      float64 `json:"service_rate"`
	Onset            float64 `json:"backpressure_onset_s"`
	PeakQueueDepth   int     `json:"peak_queue_depth"`
	Buffer           int     `json:"buffer"`
	DrainPerTick     int     `json:"drain_per_tick"`
	StreamHash       string  `json:"stream_hash"`
	JournalHash      string  `json:"journal_hash"`
	StreamIdentical  bool    `json:"order_stream_deterministic"`
	JournalIdentical bool    `json:"journal_deterministic"`
}

// report is the BENCH_load.json shape benchgate learned: rows matched by
// scenario, *deterministic flags hard-gated, sustained_orders_per_sec and
// max_sustainable_rate floored at -frac of baseline, p99_latency_s capped
// at -growth of baseline.
type report struct {
	City         string  `json:"city_profile"`
	Scale        float64 `json:"scale"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Seed         int64   `json:"seed"`
	Workers      int     `json:"workers"`
	HorizonS     float64 `json:"horizon_s"`
	TickS        float64 `json:"tick_s"`
	WallSeconds  float64 `json:"wall_seconds"`
	MaxRate      float64 `json:"max_sustainable_rate,omitempty"`
	SearchQ      float64 `json:"search_quantile,omitempty"`
	SearchBudget float64 `json:"search_slip_budget_s,omitempty"`
	SearchMinSvc float64 `json:"search_min_service_rate,omitempty"`
	SearchProbes int     `json:"search_probes,omitempty"`
	SearchSame   bool    `json:"rate_search_deterministic"`
	Rows         []row   `json:"rows"`
}

func main() {
	var (
		jsonPath = flag.String("json", "", "write the machine-readable report to this file")
		quiet    = flag.Bool("quiet", false, "suppress per-scenario progress")
		cityName = flag.String("city", "cdc", "city profile: nyc, cdc, xia or met")
		workers  = flag.Int("workers", 60, "fleet size")
		horizon  = flag.Float64("horizon", 300, "arrival window in virtual seconds")
		tick     = flag.Float64("tick", 10, "periodic check interval Δt in seconds")
		seed     = flag.Int64("seed", 1, "workload and arrival seed")
		rate     = flag.Float64("rate", 1, "poisson/pareto arrival rate in orders/sec (surge uses rate/2 as its base)")
		buffer   = flag.Int("buffer", 256, "modelled event-bus buffer (platform WithEventBuffer analogue)")
		drain    = flag.Int("drain", 64, "modelled consumer drain per tick")
		bpBuffer = flag.Int("bpbuffer", 64, "starved-consumer scenario: bus buffer")
		bpDrain  = flag.Int("bpdrain", 8, "starved-consumer scenario: drain per tick")
		shards   = flag.Int("shards", 0, "dispatch engine slot-shard count (0/1 sequential)")
		scale    = flag.Float64("scale", 1, "multiplies workers and arrival rates")
		search   = flag.Bool("search", true, "bisect for the maximum sustainable rate")
		searchLo = flag.Float64("searchlo", 0.125, "rate-search bracket floor, orders/sec")
		searchHi = flag.Float64("searchhi", 2, "rate-search bracket ceiling, orders/sec")
		searchN  = flag.Int("searchiters", 4, "rate-search bisection depth")
		quantile = flag.Float64("quantile", 0.99, "slip quantile the search gates")
		slack    = flag.Float64("slack", 1, "slip budget in ticks for the search predicate")
		minSvc   = flag.Float64("minsvc", 0.5, "service-rate floor for the search predicate")
	)
	flag.Parse()
	if err := run(*jsonPath, *quiet, *cityName, *workers, *horizon, *tick, *seed, *rate,
		*buffer, *drain, *bpBuffer, *bpDrain, *shards, *scale,
		*search, *searchLo, *searchHi, *searchN, *quantile, *slack, *minSvc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(jsonPath string, quiet bool, cityName string, workers int, horizon, tick float64,
	seed int64, rate float64, buffer, drain, bpBuffer, bpDrain, shards int, scale float64,
	search bool, searchLo, searchHi float64, searchN int, quantile, slack, minSvc float64) error {
	city, err := dataset.ByName(cityName)
	if err != nil {
		return err
	}
	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}
	workers = int(float64(workers) * scale)
	rate *= scale
	searchLo *= scale
	searchHi *= scale
	base := load.Config{
		City:         city,
		Workers:      workers,
		Seed:         seed,
		Horizon:      horizon,
		Tick:         tick,
		Buffer:       buffer,
		DrainPerTick: drain,
		Shards:       shards,
	}

	//det:wallclock wall_seconds reports only the harness's own runtime, never a measurement
	start := time.Now()
	scenarios := []struct {
		name          string
		spec          load.ArrivalSpec
		buffer, drain int
	}{
		{"poisson", load.ArrivalSpec{Process: load.Poisson, Rate: rate, Seed: seed}, 0, 0},
		{"surge", load.ArrivalSpec{Process: load.Surge, Rate: rate / 2, Seed: seed}, 0, 0},
		{"pareto", load.ArrivalSpec{Process: load.Pareto, Rate: rate, Seed: seed}, 0, 0},
		// The starved-consumer scenario exists to place the backpressure
		// onset: same arrivals as the poisson row, but the modelled
		// consumer drains far slower than the bus fills.
		{"backpressure", load.ArrivalSpec{Process: load.Poisson, Rate: rate, Seed: seed}, bpBuffer, bpDrain},
	}

	rep := report{
		City:       city.Name,
		Scale:      scale,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       seed,
		Workers:    workers,
		HorizonS:   horizon,
		TickS:      tick,
		SearchSame: true,
	}
	for _, sc := range scenarios {
		cfg := base
		cfg.Arrival = sc.spec
		if sc.buffer > 0 {
			cfg.Buffer, cfg.DrainPerTick = sc.buffer, sc.drain
		}
		// Two consecutive runs: the determinism flags are measured, not
		// asserted — a false flag in the report is a real regression and
		// hard-fails the benchgate.
		a, err := load.Run(cfg)
		if err != nil {
			return fmt.Errorf("watterload: %s: %w", sc.name, err)
		}
		b, err := load.Run(cfg)
		if err != nil {
			return fmt.Errorf("watterload: %s rerun: %w", sc.name, err)
		}
		resolved := cfg.Defaults()
		r := row{
			Scenario:         sc.name,
			Process:          string(a.Process),
			Rate:             a.Rate,
			Orders:           a.Submitted,
			Served:           a.Served,
			Rejected:         a.Rejected,
			Ticks:            a.Ticks,
			Sustained:        a.SustainedRate,
			P50:              a.P50,
			P99:              a.P99,
			P999:             a.P999,
			MeanLatency:      a.Mean,
			SlipP99:          a.SlipP99,
			FracWithinTick:   a.FracWithinTick,
			ServiceRate:      a.ServiceRate,
			Onset:            a.BackpressureOnset,
			PeakQueueDepth:   a.PeakQueueDepth,
			Buffer:           resolved.Buffer,
			DrainPerTick:     resolved.DrainPerTick,
			StreamHash:       fmt.Sprintf("%016x", a.StreamHash),
			JournalHash:      fmt.Sprintf("%016x", a.JournalHash),
			StreamIdentical:  a.StreamHash == b.StreamHash,
			JournalIdentical: a.JournalHash == b.JournalHash && *a == *b,
		}
		rep.Rows = append(rep.Rows, r)
		logf("watterload: %-12s rate=%.3f/s n=%d sustained=%.3f/s svc=%.2f p50=%.1fs p99=%.1fs slip99=%.1fs onset=%.0f deterministic=%v\n",
			sc.name, r.Rate, r.Orders, r.Sustained, r.ServiceRate, r.P50, r.P99, r.SlipP99, r.Onset,
			r.StreamIdentical && r.JournalIdentical)
	}

	if search {
		sc := load.SearchConfig{
			Base:           base,
			Quantile:       quantile,
			SlackTicks:     slack,
			MinServiceRate: minSvc,
			Lo:             searchLo,
			Hi:             searchHi,
			Iters:          searchN,
		}
		sc.Base.Arrival = load.ArrivalSpec{Process: load.Poisson, Seed: seed, Rate: searchLo}
		first, err := load.SearchMaxRate(sc, logf)
		if err != nil {
			return err
		}
		second, err := load.SearchMaxRate(sc, nil)
		if err != nil {
			return err
		}
		same := first.MaxRate == second.MaxRate && len(first.Probes) == len(second.Probes)
		for i := 0; same && i < len(first.Probes); i++ {
			same = first.Probes[i] == second.Probes[i]
		}
		rep.MaxRate = first.MaxRate
		rep.SearchQ = first.Quantile
		rep.SearchBudget = first.Budget
		rep.SearchMinSvc = minSvc
		rep.SearchProbes = len(first.Probes)
		rep.SearchSame = same
		logf("watterload: max sustainable rate %.4f orders/sec (slip q%.3g ≤ %.0fs, svc ≥ %.2f) over %d probes, deterministic=%v\n",
			first.MaxRate, first.Quantile, first.Budget, minSvc, len(first.Probes), same)
	}
	//det:wallclock harness runtime for the report header; every measurement above is virtual-clock
	rep.WallSeconds = time.Since(start).Seconds()

	if jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(jsonPath, blob, 0o644); err != nil {
			return err
		}
	}
	ok := rep.SearchSame
	for _, r := range rep.Rows {
		if !r.StreamIdentical || !r.JournalIdentical {
			ok = false
		}
	}
	fmt.Printf("watterload: %d scenarios on %s (%d workers, %.0fs horizon), max sustainable %.4f orders/sec, deterministic=%v, wall=%.1fs\n",
		len(rep.Rows), rep.City, rep.Workers, rep.HorizonS, rep.MaxRate, ok, rep.WallSeconds)
	if !ok {
		return fmt.Errorf("watterload: determinism violated — two consecutive runs diverged (see *_deterministic flags)")
	}
	return nil
}
